(* Acyclic-query fast path: GYO reduction, join-tree well-formedness,
   the Yannakakis evaluator's parity with the Tarskian evaluator, and
   the Join/Semijoin algebra operators against a list model. *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* GYO reduction on known hypergraphs *)

let path2 = [ [ "x"; "y" ]; [ "y"; "z" ] ]
let path3 = [ [ "x"; "y" ]; [ "y"; "z" ]; [ "z"; "w" ] ]
let star = [ [ "h"; "a" ]; [ "h"; "b" ]; [ "h"; "c" ] ]
let triangle = [ [ "x"; "y" ]; [ "y"; "z" ]; [ "z"; "x" ] ]

let cycle4 =
  [ [ "x"; "y" ]; [ "y"; "z" ]; [ "z"; "w" ]; [ "w"; "x" ] ]

let test_gyo_acyclic () =
  check_bool "single edge" true (Hypergraph.is_acyclic [ [ "x"; "y" ] ]);
  check_bool "path of 2" true (Hypergraph.is_acyclic path2);
  check_bool "path of 3" true (Hypergraph.is_acyclic path3);
  check_bool "star" true (Hypergraph.is_acyclic star);
  check_bool "edge plus subset edge" true
    (Hypergraph.is_acyclic [ [ "x"; "y" ]; [ "x" ] ]);
  check_bool "duplicate edges" true
    (Hypergraph.is_acyclic [ [ "x"; "y" ]; [ "x"; "y" ] ]);
  check_bool "disconnected edges" true
    (Hypergraph.is_acyclic [ [ "x" ]; [ "y" ] ]);
  (* the triangle covered by a 3-ary edge is acyclic again *)
  check_bool "covered triangle" true
    (Hypergraph.is_acyclic (triangle @ [ [ "x"; "y"; "z" ] ]))

let test_gyo_cyclic () =
  check_bool "triangle" false (Hypergraph.is_acyclic triangle);
  check_bool "4-cycle" false (Hypergraph.is_acyclic cycle4);
  check_bool "triangle plus pendant" false
    (Hypergraph.is_acyclic (triangle @ [ [ "x"; "p" ] ]))

(* ------------------------------------------------------------------ *)
(* Join-tree well-formedness: every edge exactly once, and the nodes
   containing any given variable form a connected subtree (the
   running-intersection property). *)

let tree_ids tree =
  Hypergraph.fold (fun acc (n : Hypergraph.tree) -> n.edge :: acc) [] tree

let running_intersection tree =
  (* parent map over edge ids *)
  let parents = Hashtbl.create 16 in
  let rec walk (n : Hypergraph.tree) =
    List.iter
      (fun (c : Hypergraph.tree) ->
        Hashtbl.replace parents c.edge n;
        walk c)
      n.children
  in
  walk tree;
  let nodes =
    Hypergraph.fold (fun acc (n : Hypergraph.tree) -> n :: acc) [] tree
  in
  let vars =
    List.sort_uniq compare (List.concat_map (fun (n : Hypergraph.tree) -> n.vars) nodes)
  in
  List.for_all
    (fun v ->
      let marked =
        List.filter (fun (n : Hypergraph.tree) -> List.mem v n.vars) nodes
      in
      (* a subtree has exactly one marked node whose parent is unmarked *)
      let roots =
        List.filter
          (fun (n : Hypergraph.tree) ->
            match Hashtbl.find_opt parents n.edge with
            | None -> true
            | Some (p : Hypergraph.tree) -> not (List.mem v p.vars))
          marked
      in
      List.length roots = 1)
    vars

let test_join_tree_well_formed () =
  List.iter
    (fun edges ->
      match Hypergraph.join_tree edges with
      | None -> Alcotest.fail "expected acyclic"
      | Some tree ->
        let n = List.length edges in
        check Alcotest.(list int) "covers every edge once"
          (List.init n Fun.id)
          (List.sort compare (tree_ids tree));
        check_bool "running intersection" true (running_intersection tree))
    [
      [ [ "x"; "y" ] ];
      path2;
      path3;
      star;
      [ [ "x"; "y" ]; [ "x" ] ];
      [ [ "x" ]; [ "y" ] ];
      triangle @ [ [ "x"; "y"; "z" ] ];
      [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "d" ]; [ "b"; "e" ]; [ "f" ] ];
    ]

(* ------------------------------------------------------------------ *)
(* Shared database for evaluator tests *)

let vocabulary =
  Vocabulary.make ~constants:[ "a"; "b" ]
    ~predicates:[ ("P", 1); ("R", 2); ("S", 2); ("T", 2) ]

let db =
  Database.make ~vocabulary
    ~domain:[ "a"; "b"; "c"; "d" ]
    ~constants:[ ("a", "a"); ("b", "b") ]
    ~relations:
      [
        ("P", Relation.of_tuples 1 [ [ "a" ]; [ "c" ] ]);
        ( "R",
          Relation.of_tuples 2
            [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "d" ]; [ "a"; "a" ] ] );
        ( "S",
          Relation.of_tuples 2 [ [ "b"; "c" ]; [ "c"; "a" ]; [ "d"; "d" ] ] );
        ("T", Relation.of_tuples 2 [ [ "c"; "a" ]; [ "d"; "b" ] ]);
      ]

let q s = Logicaldb.query s

(* ------------------------------------------------------------------ *)
(* Semijoin-pass idempotence: running the full reducer a second time
   changes nothing. *)

let test_reducer_idempotent () =
  let query = q "(x, w). exists y. exists z. R(x, y) /\\ S(y, z) /\\ T(z, w)" in
  match Yannakakis.plan db query with
  | None -> Alcotest.fail "path CQ should be detected"
  | Some p ->
    let tree = Option.get p.Yannakakis.tree in
    let rels () =
      Array.map
        (fun (a : Yannakakis.atom) ->
          {
            Yannakakis.Internal.vars = Term.vars_of a.args;
            rel = Database.relation db a.pred;
          })
        p.Yannakakis.atoms
    in
    let once = rels () in
    Yannakakis.Internal.reducer_passes once tree;
    let twice = Array.map (fun nr -> nr) once in
    Yannakakis.Internal.reducer_passes twice tree;
    Array.iteri
      (fun i (nr : Yannakakis.Internal.nrel) ->
        check Support.relation_testable
          (Printf.sprintf "atom %d stable" i)
          nr.rel twice.(i).rel)
      once

(* ------------------------------------------------------------------ *)
(* Yannakakis vs the Tarskian evaluator on fixed queries *)

let expect_fast query =
  match Yannakakis.answer db query with
  | None -> Alcotest.fail ("fast path refused: " ^ Pretty.query_to_string query)
  | Some r ->
    check Support.relation_testable
      (Pretty.query_to_string query)
      (Eval.answer db query) r

let expect_fallback query =
  check_bool
    ("fallback expected: " ^ Pretty.query_to_string query)
    true
    (Yannakakis.answer db query = None)

let test_parity_fixed () =
  expect_fast (q "(x, z). exists y. R(x, y) /\\ S(y, z)");
  expect_fast (q "(x, w). exists y. exists z. R(x, y) /\\ S(y, z) /\\ T(z, w)");
  expect_fast (q "(h). exists x. exists y. R(h, x) /\\ S(h, y) /\\ P(h)");
  expect_fast (q "(x). R(x, x)");
  expect_fast (q "(x, y). R(x, y)");
  expect_fast (q "(). exists x. exists y. R(x, y) /\\ P(x)");
  (* disconnected conjuncts: cartesian product across tree pieces *)
  expect_fast (q "(x, y). P(x) /\\ (exists z. S(y, z))");
  (* constants inside atoms *)
  expect_fast (Query.make [ "x" ] (Formula.atom "R" [ Term.var "x"; Term.const "b" ]));
  (* ground guard atom *)
  expect_fast
    (Query.make [ "x" ]
       (Formula.and_
          (Formula.atom "P" [ Term.var "x" ])
          (Formula.atom "R" [ Term.const "a"; Term.const "b" ])));
  (* boolean query, no variable atoms at all *)
  expect_fast
    (Query.make []
       (Formula.atom "R" [ Term.const "a"; Term.const "b" ]));
  expect_fast (Query.boolean Formula.True)

let test_fallback_fixed () =
  (* cyclic *)
  expect_fallback
    (q "(x). exists y. exists z. R(x, y) /\\ S(y, z) /\\ T(z, x)");
  (* not conjunctive *)
  expect_fallback (q "(x). P(x) \\/ (exists y. R(x, y))");
  expect_fallback (q "(x). ~P(x)");
  expect_fallback (q "(x). forall y. R(x, y)");
  expect_fallback (q "(x, y). R(x, y) /\\ x = y");
  (* head variable in no atom *)
  expect_fallback (q "(x). exists y. P(y)");
  (* unknown predicate / wrong arity: errors stay on the naive path *)
  expect_fallback (Query.make [ "x" ] (Formula.atom "Q" [ Term.var "x" ]));
  expect_fallback (Query.make [ "x" ] (Formula.atom "P" [ Term.var "x"; Term.var "x" ]));
  (* unknown constant *)
  expect_fallback
    (Query.make [ "x" ] (Formula.atom "R" [ Term.var "x"; Term.const "zz" ]))

(* A compiled conjunctive plan picks up Join/Semijoin nodes through the
   optimizer — the plan-level half of the fast path. *)
let rec has_join = function
  | Algebra.Join _ | Algebra.Semijoin _ -> true
  | Algebra.Base _ | Algebra.Virtual _ | Algebra.Domain | Algebra.Empty _ ->
    false
  | Algebra.Select (_, e) | Algebra.Project (_, e) -> has_join e
  | Algebra.Product (a, b)
  | Algebra.Union (a, b)
  | Algebra.Inter (a, b)
  | Algebra.Diff (a, b) -> has_join a || has_join b

let test_optimizer_fuses_conjunctions () =
  let query = q "(x). exists y. R(x, y) /\\ P(y)" in
  let plan = Optimizer.optimize db (Compile.query db query) in
  check_bool "optimized plan contains a join" true (has_join plan);
  check Support.relation_testable "fused plan agrees with Eval"
    (Eval.answer db query) (Algebra.run db plan);
  let path = q "(x, z). exists y. R(x, y) /\\ S(y, z)" in
  let plan = Optimizer.optimize db (Compile.query db path) in
  check_bool "path plan contains a join" true (has_join plan);
  check Support.relation_testable "path plan agrees with Eval"
    (Eval.answer db path) (Algebra.run db plan)

(* ------------------------------------------------------------------ *)
(* QCheck: Join/Semijoin vs the list model *)

let gen_join_case =
  let open QCheck2.Gen in
  let elements = [ "a"; "b"; "c" ] in
  let* ka = int_range 1 3 and* kb = int_range 1 3 in
  let gen_tuple k = list_repeat k (oneofl elements) in
  let* ta = list_size (int_bound 8) (gen_tuple ka)
  and* tb = list_size (int_bound 8) (gen_tuple kb) in
  let* pairs =
    list_size (int_bound 2) (pair (int_bound (ka - 1)) (int_bound (kb - 1)))
  in
  return (ka, kb, ta, tb, pairs)

let join_case_db ka kb ta tb =
  let vocabulary =
    Vocabulary.make ~constants:[] ~predicates:[ ("A", ka); ("B", kb) ]
  in
  Database.make ~vocabulary ~domain:[ "a"; "b"; "c" ] ~constants:[]
    ~relations:
      [ ("A", Relation.of_tuples ka ta); ("B", Relation.of_tuples kb tb) ]

let matches pairs u v =
  List.for_all (fun (i, j) -> List.nth u i = List.nth v j) pairs

let join_vs_list_model =
  QCheck2.Test.make ~count:300 ~name:"Join = list model"
    gen_join_case
    (fun (ka, kb, ta, tb, pairs) ->
      let db = join_case_db ka kb ta tb in
      let expect =
        Relation.of_tuples (ka + kb)
          (List.concat_map
             (fun u ->
               List.filter_map
                 (fun v -> if matches pairs u v then Some (u @ v) else None)
                 tb)
             ta)
      in
      Relation.equal expect
        (Algebra.run db (Algebra.Join (pairs, Algebra.Base "A", Algebra.Base "B"))))

let semijoin_vs_list_model =
  QCheck2.Test.make ~count:300 ~name:"Semijoin = list model"
    gen_join_case
    (fun (ka, kb, ta, tb, pairs) ->
      let db = join_case_db ka kb ta tb in
      let expect =
        Relation.of_tuples ka
          (List.filter (fun u -> List.exists (matches pairs u) tb) ta)
      in
      Relation.equal expect
        (Algebra.run db
           (Algebra.Semijoin (pairs, Algebra.Base "A", Algebra.Base "B"))))

(* The interned kernel's Join/Semijoin agree with the string kernel
   (on the discrete structure of a CW database, which is where the
   interned evaluator runs). *)
let interned_join_parity =
  QCheck2.Test.make ~count:300 ~name:"interned Join/Semijoin = strings"
    gen_join_case
    (fun (ka, kb, ta, tb, pairs) ->
      let vocabulary =
        Vocabulary.make ~constants:[ "a"; "b"; "c" ]
          ~predicates:[ ("A", ka); ("B", kb) ]
      in
      let cw =
        Cw_database.make ~vocabulary
          ~facts:
            (List.map (fun args -> { Cw_database.pred = "A"; args }) ta
            @ List.map (fun args -> { Cw_database.pred = "B"; args }) tb)
          ~distinct:[]
      in
      let db = Ph.ph1 cw in
      let scan = Iscan.prepare cw in
      let tab = Iscan.symtab scan in
      let idb = (Iscan.discrete scan).Iscan.idb in
      List.for_all
        (fun expr ->
          match Iplan.of_algebra tab expr with
          | None -> false
          | Some plan ->
            Relation.equal (Algebra.run db expr)
              (Irel.to_relation tab (Iplan.run idb plan)))
        [
          Algebra.Join (pairs, Algebra.Base "A", Algebra.Base "B");
          Algebra.Semijoin (pairs, Algebra.Base "A", Algebra.Base "B");
        ])

(* QCheck: fast-path answers equal Eval answers on random queries; the
   fallback branch is "true" by construction and exercised by the
   acq-parity fuzz oracle. *)
let yannakakis_parity =
  QCheck2.Test.make ~count:250 ~name:"Yannakakis = Eval on random queries"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (cw, query) ->
      let pb = Ph.ph1 cw in
      match Yannakakis.answer pb query with
      | None -> true
      | Some r -> Relation.equal r (Eval.answer pb query))

let suite =
  [
    Alcotest.test_case "GYO accepts acyclic hypergraphs" `Quick
      test_gyo_acyclic;
    Alcotest.test_case "GYO rejects cyclic hypergraphs" `Quick test_gyo_cyclic;
    Alcotest.test_case "join trees are well-formed" `Quick
      test_join_tree_well_formed;
    Alcotest.test_case "semijoin passes are idempotent" `Quick
      test_reducer_idempotent;
    Alcotest.test_case "fast path = Eval on fixed queries" `Quick
      test_parity_fixed;
    Alcotest.test_case "ineligible queries fall back" `Quick
      test_fallback_fixed;
    Alcotest.test_case "optimizer fuses conjunctions to joins" `Quick
      test_optimizer_fuses_conjunctions;
    Support.qcheck_case join_vs_list_model;
    Support.qcheck_case semijoin_vs_list_model;
    Support.qcheck_case interned_join_parity;
    Support.qcheck_case yannakakis_parity;
  ]
