(* Tests for countermodel explanations and Monte-Carlo refutation. *)

open Logicaldb

let check_bool = Alcotest.(check bool)

let socrates = Support.socrates_db ()
let q s = Parser.query s

(* --- Explain --- *)

let test_explain_certain () =
  match Explain.boolean socrates (q "(). TEACHES(socrates, plato)") with
  | Explain.Certain -> ()
  | Explain.Refuted_by p ->
    Alcotest.failf "unexpected refutation: %a" Partition.pp p

let test_explain_refutation_is_genuine () =
  (* ~TEACHES(mystery, plato) fails exactly when mystery merges with
     socrates; the returned partition must actually refute. *)
  let query = q "(). ~TEACHES(mystery, plato)" in
  match Explain.boolean socrates query with
  | Explain.Certain -> Alcotest.fail "expected a refutation"
  | Explain.Refuted_by p ->
    check_bool "countermodel really refutes" false
      (Eval.satisfies (Partition.quotient p) (Query.body query));
    check_bool "countermodel merges mystery and socrates" true
      (String.equal
         (Partition.representative p "mystery")
         (Partition.representative p "socrates"))

let test_explain_member () =
  let teaches = q "(x). exists y. TEACHES(x, y)" in
  (match Explain.member socrates teaches [ "socrates" ] with
  | Explain.Certain -> ()
  | Explain.Refuted_by _ -> Alcotest.fail "socrates certainly teaches");
  match Explain.member socrates teaches [ "mystery" ] with
  | Explain.Certain -> Alcotest.fail "mystery does not certainly teach"
  | Explain.Refuted_by p ->
    (* In that world, mystery's image must not teach. *)
    check_bool "refuting world" false
      (Eval.member (Partition.quotient p) teaches
         [ Partition.representative p "mystery" ])

(* Explain agrees with the engine verdict. *)
let explain_agrees_with_engine =
  QCheck2.Test.make ~count:120 ~name:"explain = certain_boolean"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let query = Query.boolean sentence in
      let verdict = Explain.boolean db query in
      let certain = Certain.certain_boolean db query in
      match verdict with
      | Explain.Certain -> certain
      | Explain.Refuted_by p ->
        (not certain)
        && not (Eval.satisfies (Partition.quotient p) sentence))

(* --- Sampling --- *)

let test_sampling_refutes_open_negation () =
  (* With enough samples the merged world always shows up for this tiny
     database (3 constants). *)
  check_bool "refuted" true
    (Sampling.boolean ~samples:64 ~seed:7 socrates
       (q "(). ~TEACHES(mystery, plato)")
    = Sampling.Not_certain)

let test_sampling_never_refutes_certain () =
  check_bool "no false refutation" true
    (Sampling.boolean ~samples:64 ~seed:7 socrates
       (q "(). TEACHES(socrates, plato)")
    = Sampling.Probably_certain)

(* Completeness (one-sidedness): Not_certain implies really not
   certain. *)
let sampling_refutations_sound =
  QCheck2.Test.make ~count:120 ~name:"sampling refutations are genuine"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let query = Query.boolean sentence in
      match Sampling.boolean ~samples:8 ~seed:11 db query with
      | Sampling.Not_certain -> not (Certain.certain_boolean db query)
      | Sampling.Probably_certain -> true)

(* Certain sentences always survive sampling. *)
let sampling_passes_certain =
  QCheck2.Test.make ~count:120 ~name:"certain sentences survive sampling"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let query = Query.boolean sentence in
      QCheck2.assume (Certain.certain_boolean db query);
      Sampling.boolean ~samples:16 ~seed:3 db query
      = Sampling.Probably_certain)

(* Random partitions are valid (never merge a distinct pair). *)
let random_partitions_valid =
  QCheck2.Test.make ~count:150 ~name:"sampled partitions respect axioms"
    ~print:Support.print_db Support.gen_cw_database
    (fun db ->
      let state = Random.State.make [| 99 |] in
      List.for_all
        (fun _ ->
          let p = Sampling.random_partition ~state db in
          List.for_all
            (fun (c, d) ->
              not
                (String.equal
                   (Partition.representative p c)
                   (Partition.representative p d)))
            (Cw_database.distinct_pairs db))
        (List.init 10 Fun.id))

(* --- degenerate shapes: zero-arity relations, minimal domains,
   vacuous heads --- *)

(* A zero-arity predicate is propositional: its completion axiom
   decides ~P() in every world. *)
let test_explain_zero_arity () =
  let db =
    database ~predicates:[ ("P", 0) ] ~constants:[ "a" ] ()
  in
  (match Explain.boolean db (q "(). ~P()") with
  | Explain.Certain -> ()
  | Explain.Refuted_by p ->
    Alcotest.failf "completion axiom refuted: %a" Partition.pp p);
  let with_fact =
    database ~predicates:[ ("P", 0) ] ~constants:[ "a" ]
      ~facts:[ ("P", []) ] ()
  in
  match Explain.boolean with_fact (q "(). P()") with
  | Explain.Certain -> ()
  | Explain.Refuted_by p -> Alcotest.failf "fact axiom refuted: %a" Partition.pp p

let test_sampling_zero_arity () =
  let db =
    database ~predicates:[ ("P", 0) ] ~constants:[ "a" ] ()
  in
  check_bool "propositional certainty survives sampling" true
    (Sampling.boolean ~samples:1 ~seed:0 db (q "(). ~P()")
    = Sampling.Probably_certain);
  check_bool "propositional falsity is refuted by any sample" true
    (Sampling.boolean ~samples:1 ~seed:0 db (q "(). P()")
    = Sampling.Not_certain)

(* One constant: the partition space is the single discrete world, so
   explain and one-sample sampling are both exact. *)
let test_single_constant_domain () =
  let db =
    database ~predicates:[ ("P", 1) ] ~constants:[ "a" ] ()
  in
  (match Explain.boolean db (q "(). P(a)") with
  | Explain.Certain -> Alcotest.fail "P(a) has no supporting fact"
  | Explain.Refuted_by p ->
    check_bool "the refuting world is the only world" true
      (String.equal (Partition.representative p "a") "a"));
  check_bool "one sample decides a one-world database" true
    (Sampling.boolean ~samples:1 ~seed:0 db (q "(). P(a)")
    = Sampling.Not_certain);
  check_bool "~P(a) is certain there" true
    (Sampling.boolean ~samples:1 ~seed:0 db (q "(). ~P(a)")
    = Sampling.Probably_certain)

(* A head variable absent from the body ranges over the whole constant
   set; the body [true] makes every constant a certain member. *)
let test_vacuous_head_member () =
  let db =
    database ~predicates:[ ("P", 1) ] ~constants:[ "a"; "b" ] ()
  in
  let vacuous = q "(x). true" in
  (match Explain.member db vacuous [ "a" ] with
  | Explain.Certain -> ()
  | Explain.Refuted_by p ->
    Alcotest.failf "true refuted: %a" Partition.pp p);
  check_bool "sampling agrees on the vacuous head" true
    (Sampling.member ~samples:1 ~seed:0 db vacuous [ "b" ]
    = Sampling.Probably_certain)

let test_sampling_rejects_bad_sample_counts () =
  Alcotest.check_raises "samples:0 is rejected"
    (Invalid_argument "Sampling: need at least one sample")
    (fun () ->
      ignore (Sampling.boolean ~samples:0 ~seed:0 socrates (q "(). true")))

let suite =
  [
    Alcotest.test_case "explain certain" `Quick test_explain_certain;
    Alcotest.test_case "explain zero-arity" `Quick test_explain_zero_arity;
    Alcotest.test_case "sampling zero-arity" `Quick test_sampling_zero_arity;
    Alcotest.test_case "single-constant domain" `Quick
      test_single_constant_domain;
    Alcotest.test_case "vacuous head member" `Quick test_vacuous_head_member;
    Alcotest.test_case "sampling rejects samples:0" `Quick
      test_sampling_rejects_bad_sample_counts;
    Alcotest.test_case "explain refutation" `Quick
      test_explain_refutation_is_genuine;
    Alcotest.test_case "explain member" `Quick test_explain_member;
    Support.qcheck_case explain_agrees_with_engine;
    Alcotest.test_case "sampling refutes open negation" `Quick
      test_sampling_refutes_open_negation;
    Alcotest.test_case "sampling spares certain facts" `Quick
      test_sampling_never_refutes_certain;
    Support.qcheck_case sampling_refutations_sound;
    Support.qcheck_case sampling_passes_certain;
    Support.qcheck_case random_partitions_valid;
  ]
