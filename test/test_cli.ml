(* End-to-end exit-code taxonomy of bin/ldb.exe (documented in
   README.md): 0 affirmative, 1 refuted/empty, 2 usage/file/parse
   errors, 124 budget exhausted under --on-budget fail, 130
   interrupted by SIGINT. *)

open Logicaldb

let exe = "../bin/ldb.exe"

(* Run the binary with stdin/stderr on /dev/null, returning the exit
   code and captured stdout. *)
let run_ldb args =
  let out_file = Filename.temp_file "ldb_cli" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out_file)
    (fun () ->
      let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      let out =
        Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      let null_err = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      let pid =
        Unix.create_process exe (Array.of_list (exe :: args)) null_in out
          null_err
      in
      Unix.close null_in;
      Unix.close out;
      Unix.close null_err;
      let _, status = Unix.waitpid [] pid in
      let code =
        match status with
        | Unix.WEXITED n -> n
        | Unix.WSIGNALED n -> Alcotest.failf "killed by signal %d" n
        | Unix.WSTOPPED n -> Alcotest.failf "stopped by signal %d" n
      in
      let ic = open_in out_file in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (code, text))

let with_db f =
  let path = Filename.temp_file "ldb_cli" ".ldb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Ldb_format.print (Support.socrates_db ()));
      close_out oc;
      f path)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_exit msg expected (code, _) = Alcotest.(check int) msg expected code

let test_exit_ok () =
  with_db (fun db ->
      let code, out = run_ldb [ "query"; db; "(). TEACHES(socrates, plato)" ] in
      Alcotest.(check int) "affirmative verdict" 0 code;
      Alcotest.(check bool) "prints true" true (contains out "true"))

let test_exit_refuted () =
  with_db (fun db ->
      check_exit "false verdict" 1
        (run_ldb [ "query"; db; "(). TEACHES(plato, socrates)" ]);
      check_exit "empty relation" 1
        (run_ldb [ "query"; db; "(x). TEACHES(x, socrates)" ]))

let test_exit_usage () =
  with_db (fun db ->
      check_exit "query syntax error" 2 (run_ldb [ "query"; db; "((" ]);
      check_exit "missing database file" 2
        (run_ldb [ "query"; "/nonexistent.ldb"; "(). P(a)" ]);
      check_exit "unknown option" 2 (run_ldb [ "query"; db; "(). P(a)"; "--nonsense" ]);
      check_exit "budget with a budgetless engine" 2
        (run_ldb
           [ "query"; db; "(). TEACHES(socrates, plato)"; "-e"; "approx"; "--timeout"; "1" ]))

let test_exit_budget_exhausted () =
  with_db (fun db ->
      (* Certainly true, so the countermodel search must visit every
         structure — a one-structure cap always trips, and under the
         fail policy that is exit 124. *)
      check_exit "budget exhausted" 124
        (run_ldb
           [
             "query"; db; "(). TEACHES(socrates, plato)";
             "--max-structures"; "1"; "--on-budget"; "fail";
           ]))

let test_budget_approx_degrades () =
  with_db (fun db ->
      let code, out =
        run_ldb
          [
            "query"; db; "(). TEACHES(socrates, plato)";
            "--timeout"; "3600"; "--max-structures"; "1";
            "--on-budget"; "approx"; "--stats";
          ]
      in
      Alcotest.(check int) "sound fallback verdict" 0 code;
      Alcotest.(check bool) "qualified as a lower bound" true
        (contains out "lower bound");
      Alcotest.(check bool) "provenance in stats" true
        (contains out "Theorem-11 approximation"))

let test_kernel_flag () =
  with_db (fun db ->
      (* Every kernel name answers identically; an unknown name is a
         cmdliner enum error, exit 2. *)
      let reference = run_ldb [ "query"; db; "(x, y). TEACHES(x, y)" ] in
      List.iter
        (fun kernel ->
          let code, out =
            run_ldb
              [ "query"; db; "(x, y). TEACHES(x, y)"; "--kernel"; kernel ]
          in
          Alcotest.(check int) (kernel ^ " exit code") (fst reference) code;
          Alcotest.(check string)
            (kernel ^ " answer") (snd reference) out)
        [ "strings"; "interned"; "compiled" ];
      let code, out =
        run_ldb
          [
            "query"; db; "(). TEACHES(socrates, plato)";
            "--kernel"; "compiled"; "--stats";
          ]
      in
      Alcotest.(check int) "compiled verdict" 0 code;
      Alcotest.(check bool) "compiled prints stats" true
        (contains out "structures:");
      check_exit "unknown kernel name" 2
        (run_ldb
           [ "query"; db; "(). TEACHES(socrates, plato)"; "--kernel"; "jit" ]);
      check_exit "mutate accepts --kernel compiled" 0
        (run_ldb
           [
             "mutate"; db; "--insert"; "TEACHES(plato, mystery)";
             "--query"; "(x). exists y. TEACHES(x, y)";
             "--kernel"; "compiled";
           ]);
      check_exit "mutate rejects unknown kernel" 2
        (run_ldb
           [
             "mutate"; db; "--insert"; "TEACHES(plato, mystery)";
             "--query"; "(x). exists y. TEACHES(x, y)";
             "--kernel"; "jit";
           ]))

let test_exit_sigint () =
  let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "fuzz"; "--count"; "100000000"; "--no-typed"; "--no-shrink" |]
      null_in null_out null_out
  in
  Unix.close null_in;
  Unix.close null_out;
  (* Give the campaign time to be mid-scan, then interrupt it. *)
  Unix.sleepf 1.0;
  Unix.kill pid Sys.sigint;
  let _, status = Unix.waitpid [] pid in
  match status with
  | Unix.WEXITED 130 -> ()
  | Unix.WEXITED n -> Alcotest.failf "exit %d, expected 130" n
  | Unix.WSIGNALED n -> Alcotest.failf "killed by signal %d, expected exit 130" n
  | Unix.WSTOPPED _ -> Alcotest.fail "stopped, expected exit 130"

let suite =
  [
    Alcotest.test_case "exit 0: affirmative" `Quick test_exit_ok;
    Alcotest.test_case "exit 1: refuted or empty" `Quick test_exit_refuted;
    Alcotest.test_case "exit 2: usage and file errors" `Quick test_exit_usage;
    Alcotest.test_case "exit 124: budget exhausted under fail" `Quick
      test_exit_budget_exhausted;
    Alcotest.test_case "--on-budget approx prints a qualified answer" `Quick
      test_budget_approx_degrades;
    Alcotest.test_case "--kernel selects a kernel; unknown names exit 2"
      `Quick test_kernel_flag;
    Alcotest.test_case "exit 130: SIGINT" `Quick test_exit_sigint;
  ]
