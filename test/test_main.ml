let () =
  Alcotest.run "logicaldb"
    [
      ("logic", Test_logic.suite);
      ("parser", Test_parser.suite);
      ("relational", Test_relational.suite);
      ("cwdb", Test_cwdb.suite);
      ("certain", Test_certain.suite);
      ("interned", Test_interned.suite);
      ("compiled", Test_compiled.suite);
      ("approx", Test_approx.suite);
      ("reiter", Test_reiter.suite);
      ("typed", Test_typed.suite);
      ("precise-simulation", Test_precise.suite);
      ("reductions", Test_reductions.suite);
      ("format", Test_format.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("optimizer", Test_optimizer.suite);
      ("acq", Test_acq.suite);
      ("semantics-ground-truth", Test_semantics.suite);
      ("explain-sampling", Test_explain_sampling.suite);
      ("theory", Test_theory.suite);
      ("coverage", Test_coverage.suite);
      ("obs", Test_obs.suite);
      ("fuzz", Test_fuzz.suite);
      ("resilience", Test_resilience.suite);
      ("incr", Test_incr.suite);
      ("serve", Test_serve.suite);
      ("durable", Test_durable.suite);
      ("cli", Test_cli.suite);
    ]
