(* Tests for the interned evaluation kernel: Irel set algebra against a
   list model, enumeration-order parity with Partition.all_valid,
   Iplan/Ieval against the string evaluators, end-to-end kernel parity
   (including stats and positional budget caps), and the shared
   enumeration-cap contracts. *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let socrates = Support.socrates_db ()
let personnel = Support.personnel_db ()
let ripper = Support.ripper_db ()

let q s = Parser.query s

(* --- Irel against a sorted-list model ------------------------------- *)

let to_model t =
  Array.to_list (Array.map Array.to_list (Irel.rows t))

let norm rows = List.sort_uniq compare (List.map Array.to_list rows)

let strictly_sorted t =
  let rows = Irel.rows t in
  let ok = ref true in
  for i = 1 to Array.length rows - 1 do
    if Irel.compare_rows rows.(i - 1) rows.(i) >= 0 then ok := false
  done;
  !ok

let model_testable = Alcotest.(list (list int))

let gen_rows =
  QCheck2.Gen.(list_size (0 -- 12) (array_repeat 2 (0 -- 4)))

let irel_matches_list_model =
  QCheck2.Test.make ~count:300 ~name:"Irel ops = sorted-list model"
    ~print:(fun (a, b) ->
      Printf.sprintf "a = %s\nb = %s"
        (String.concat " " (List.map (fun r -> Fmt.str "%a" Fmt.(Dump.list int) (Array.to_list r)) a))
        (String.concat " " (List.map (fun r -> Fmt.str "%a" Fmt.(Dump.list int) (Array.to_list r)) b)))
    QCheck2.Gen.(pair gen_rows gen_rows)
    (fun (rows_a, rows_b) ->
      let a = Irel.of_rows 2 rows_a and b = Irel.of_rows 2 rows_b in
      let ma = norm rows_a and mb = norm rows_b in
      to_model a = ma
      && to_model (Irel.union a b) = List.sort_uniq compare (ma @ mb)
      && to_model (Irel.inter a b) = List.filter (fun r -> List.mem r mb) ma
      && to_model (Irel.diff a b)
         = List.filter (fun r -> not (List.mem r mb)) ma
      && Irel.subset a b = List.for_all (fun r -> List.mem r mb) ma
      && Irel.equal a b = (ma = mb)
      && List.for_all
           (fun r -> Irel.mem (Array.of_list r) a = List.mem r ma)
           (List.sort_uniq compare (ma @ mb @ [ [ 0; 0 ]; [ 4; 4 ] ]))
      && to_model (Irel.filter (fun r -> r.(0) mod 2 = 0) a)
         = List.filter (fun r -> List.nth r 0 mod 2 = 0) ma
      && to_model (Irel.project [| 1; 0 |] a)
         = List.sort_uniq compare (List.map List.rev ma)
      && to_model (Irel.product a b)
         = List.sort_uniq compare
             (List.concat_map (fun ra -> List.map (fun rb -> ra @ rb) mb) ma)
      && strictly_sorted (Irel.union a b)
      && strictly_sorted (Irel.product a b)
      && strictly_sorted (Irel.project [| 1; 0 |] a))

let test_irel_full_and_subsets () =
  let full = Irel.full ~domain:[| 0; 2 |] 3 in
  check_int "full cardinality" 8 (Irel.cardinal full);
  check_bool "full is sorted" true (strictly_sorted full);
  check model_testable "full enumerates in lexicographic order"
    [
      [ 0; 0; 0 ]; [ 0; 0; 2 ]; [ 0; 2; 0 ]; [ 0; 2; 2 ];
      [ 2; 0; 0 ]; [ 2; 0; 2 ]; [ 2; 2; 0 ]; [ 2; 2; 2 ];
    ]
    (to_model full);
  check model_testable "nullary full is the unit relation" [ [] ]
    (to_model (Irel.full ~domain:[||] 0));
  check_bool "empty domain, positive arity" true
    (Irel.is_empty (Irel.full ~domain:[||] 2));
  let two = Irel.of_rows 1 [ [| 3 |]; [| 7 |] ] in
  let subsets = List.of_seq (Irel.subsets two) in
  check_int "2^2 subsets" 4 (List.length subsets);
  check model_testable "subset mask order" []
    (to_model (List.nth subsets 0));
  check model_testable "last subset is the whole relation"
    [ [ 3 ]; [ 7 ] ]
    (to_model (List.nth subsets 3))

(* The caps must trip on exactly the same inputs with exactly the same
   messages as the string-side Relation, since the fuzz oracles compare
   raised exceptions across kernels. *)
let test_irel_cap_parity () =
  let boundary = Irel.full ~domain:(Array.init 1024 Fun.id) 2 in
  check_int "1024^2 = 2^20 sits exactly at the cap" (1024 * 1024)
    (Irel.cardinal boundary);
  (match Irel.full ~domain:(Array.init 1025 Fun.id) 2 with
  | _ -> Alcotest.fail "1025^2 must exceed the cap"
  | exception Invalid_argument msg ->
    check Alcotest.string "cap message matches Relation.full"
      "Relation.full: 1025^2 tuples exceeds the enumeration cap" msg);
  (* 3^45 overflows a naive 63-bit product; the saturating check must
     still raise cleanly rather than wrap around. *)
  (match Irel.full ~domain:[| 0; 1; 2 |] 45 with
  | _ -> Alcotest.fail "3^45 must exceed the cap"
  | exception Invalid_argument _ -> ())

(* --- Symtab: dense codes in sorted-name order ------------------------ *)

let test_symtab_codes () =
  let tab = Symtab.make ripper in
  let constants = Cw_database.constants ripper in
  check_int "one code per constant" (List.length constants) (Symtab.size tab);
  List.iteri
    (fun i c ->
      check_int (Printf.sprintf "code of %s is its sorted index" c) i
        (Symtab.code tab c);
      check Alcotest.string "name round-trips" c (Symtab.name tab i))
    constants;
  check Alcotest.(option int) "unknown constant has no code" None
    (Symtab.code_opt tab "not-a-constant");
  List.iter
    (fun (c, d) ->
      check_bool
        (Printf.sprintf "distinct %s %s" c d)
        true
        (Symtab.distinct tab (Symtab.code tab c) (Symtab.code tab d)))
    (Cw_database.distinct_pairs ripper)

(* --- enumeration-order parity with Partition.all_valid --------------- *)

(* The positional budget-cap contract requires the interned stream to
   visit renamings in exactly [Partition.all_valid]'s order, for both
   orders. Compare the full sequence of representative maps. *)
let renames_of_partitions db order =
  let constants = Cw_database.constants db in
  Partition.all_valid ~order db
  |> Seq.map (fun p -> List.map (Partition.representative p) constants)
  |> List.of_seq

let renames_of_iscan db order =
  let plan = Iscan.prepare db in
  let tab = Iscan.symtab plan in
  let constants = Cw_database.constants db in
  Iscan.structure_thunks ~order plan
  |> Seq.map (fun thunk ->
         let s = (thunk ()).Iscan.rename in
         List.map (fun c -> Symtab.name tab s.(Symtab.code tab c)) constants)
  |> List.of_seq

let test_stream_order_parity () =
  List.iter
    (fun (db, db_name) ->
      List.iter
        (fun (order, order_name) ->
          check
            Alcotest.(list (list string))
            (Printf.sprintf "%s/%s stream order" db_name order_name)
            (renames_of_partitions db order)
            (renames_of_iscan db order))
        [ (Partition.Fresh_first, "Fresh_first");
          (Partition.Merge_first, "Merge_first") ])
    [ (socrates, "socrates"); (personnel, "personnel"); (ripper, "ripper") ]

let test_mapping_stream_parity () =
  (* The naive stream mirrors Mapping.all_respecting: same count, and
     the discrete renaming appears exactly once. *)
  let plan = Iscan.prepare socrates in
  let n = Symtab.size (Iscan.symtab plan) in
  let identity = Array.init n Fun.id in
  let renames =
    Iscan.mapping_thunks plan
    |> Seq.map (fun thunk -> (thunk ()).Iscan.rename)
    |> List.of_seq
  in
  check_int "respecting-mapping count"
    (List.length (List.of_seq (Mapping.all_respecting socrates)))
    (List.length renames);
  check_int "identity appears once" 1
    (List.length (List.filter (fun r -> r = identity) renames))

(* --- Iplan / Ieval against the string evaluators --------------------- *)

let queries_for db =
  ignore db;
  [
    "(x). exists y. TEACHES(x, y)";
    "(x). ~(exists y. TEACHES(x, y))";
    "(x, y). TEACHES(x, y) \\/ TEACHES(y, x)";
    "(). exists x. TEACHES(x, plato)";
  ]

let test_iplan_matches_algebra () =
  let db = socrates in
  let ph1 = Ph.ph1 db in
  let plan = Iscan.prepare db in
  let tab = Iscan.symtab plan in
  let idb = (Iscan.discrete plan).Iscan.idb in
  List.iter
    (fun text ->
      let query = q text in
      match Compile.prepared ph1 query with
      | None -> Alcotest.fail ("query did not compile: " ^ text)
      | Some algebra ->
        (match Iplan.of_algebra tab algebra with
        | None -> Alcotest.fail ("plan did not intern: " ^ text)
        | Some iplan ->
          check Support.relation_testable
            (Printf.sprintf "Iplan.run = Algebra.run on %s" text)
            (Algebra.run ph1 algebra)
            (Irel.to_relation tab (Iplan.run idb iplan))))
    (queries_for db)

let test_ieval_matches_eval () =
  (* Second-order quantifiers fall outside the algebra, so they reach
     the Ieval fallback — compare it against the string Eval on the
     discrete structure. *)
  let db = socrates in
  let ph1 = Ph.ph1 db in
  let plan = Iscan.prepare db in
  let tab = Iscan.symtab plan in
  let idb = (Iscan.discrete plan).Iscan.idb in
  List.iter
    (fun text ->
      let query = q text in
      check Support.relation_testable
        (Printf.sprintf "Ieval.answer = Eval.answer on %s" text)
        (Eval.answer ph1 query)
        (Irel.to_relation tab (Ieval.answer idb query)))
    ("(x). exists2 Q/1. Q(x) /\\ exists y. TEACHES(x, y)"
    :: queries_for db)

(* --- end-to-end kernel parity (results and stats) -------------------- *)

let stats_signature (s : Certain.stats) =
  (s.structures, s.evaluations, s.early_exit, s.pruned_candidates,
   s.interrupted = None)

let test_kernel_parity_exhaustive () =
  let cases =
    [
      (socrates, "(x). exists y. TEACHES(x, y)");
      (socrates, "(x). ~(exists y. TEACHES(x, y))");
      (personnel, "(x). ~(exists y. EMP_DEPT(x, y))");
      (ripper, "(). exists x. MURDERER(x) /\\ POLITICIAN(x)");
      (ripper, "(x). MURDERER(x) -> x != victoria");
    ]
  in
  List.iter
    (fun (db, text) ->
      let query = q text in
      List.iter
        (fun algorithm ->
          List.iter
            (fun order ->
              List.iter
                (fun domains ->
                  let run kernel =
                    if Query.is_boolean query then
                      let v, s =
                        Certain.certain_boolean_stats ~kernel ~algorithm ~order
                          ~domains db query
                      in
                      (`Bool v, s)
                    else
                      let v, s =
                        Certain.answer_stats ~kernel ~algorithm ~order ~domains
                          db query
                      in
                      (`Rel v, s)
                  in
                  let label what =
                    Printf.sprintf "%s on %s (domains=%d)" what text domains
                  in
                  let v_i, s_i = run Certain.Interned in
                  let v_s, s_s = run Certain.Strings in
                  (match (v_i, v_s) with
                  | `Bool a, `Bool b -> check_bool (label "verdict") b a
                  | `Rel a, `Rel b ->
                    check Support.relation_testable (label "answer") b a
                  | _ -> assert false);
                  (* Parallel schedules may stop different numbers of
                     structures after an early exit; the stats contract
                     is exact only sequentially. *)
                  if domains = 1 then
                    check
                      Alcotest.(
                        pair
                          (pair int int)
                          (pair (pair bool int) bool))
                      (label "stats")
                      (let a, b, c, d, e = stats_signature s_s in
                       ((a, b), ((c, d), e)))
                      (let a, b, c, d, e = stats_signature s_i in
                       ((a, b), ((c, d), e))))
                [ 1; 3 ])
            [ Certain.Fresh_first; Certain.Merge_first ])
        [ Certain.Kernel_partitions; Certain.Naive_mappings ])
    cases

let test_possible_parity () =
  List.iter
    (fun (db, text) ->
      let query = q text in
      check Support.relation_testable text
        (Certain.possible_answer ~kernel:Certain.Strings db query)
        (Certain.possible_answer ~kernel:Certain.Interned db query))
    [
      (socrates, "(x). exists y. TEACHES(x, y)");
      (ripper, "(x). MURDERER(x) /\\ POLITICIAN(x)");
    ]

(* --- positional budget caps are kernel-independent ------------------- *)

let test_budget_positional_parity () =
  let query = q "(x). ~(exists y. TEACHES(x, y))" in
  List.iter
    (fun cap ->
      List.iter
        (fun domains ->
          let run kernel =
            let cancel = Cancel.create ~max_structures:cap () in
            Certain.answer_stats ~kernel ~domains ~cancel socrates query
          in
          let r_s, s_s = run Certain.Strings in
          List.iter
            (fun (kernel, kname) ->
              let r_i, s_i = run kernel in
              let label what =
                Printf.sprintf "%s (%s) under cap %d, domains %d" what kname
                  cap domains
              in
              check Support.relation_testable (label "capped answer") r_s r_i;
              check_int (label "structures") s_s.Certain.structures
                s_i.Certain.structures;
              check_bool (label "interrupted agrees") true
                (s_i.Certain.interrupted = s_s.Certain.interrupted))
            [ (Certain.Interned, "interned"); (Certain.Compiled, "compiled") ])
        [ 1; 4 ])
    [ 1; 2; 3; 5; 8 ]

(* --- the naive-mapping cap trips identically across kernels ---------- *)

let test_mapping_cap_parity () =
  (* 9 constants: 9^9 ≈ 3.9·10^8 exceeds the 2^24 mapping cap, so the
     Naive_mappings algorithm must refuse — with the same exception and
     message from both kernels. *)
  let db =
    database
      ~constants:
        [ "c0"; "c1"; "c2"; "c3"; "c4"; "c5"; "c6"; "c7"; "c8" ]
      ~predicates:[ ("P", 1) ]
      ~facts:[ ("P", [ "c0" ]) ]
      ()
  in
  let query = q "(). exists x. P(x)" in
  let trip kernel =
    match
      Certain.certain_boolean ~kernel ~algorithm:Certain.Naive_mappings db
        query
    with
    | _ -> Alcotest.fail "9^9 mappings must exceed the enumeration cap"
    | exception Invalid_argument msg -> msg
  in
  check Alcotest.string "cap messages agree" (trip Certain.Strings)
    (trip Certain.Interned)

let suite =
  [
    Support.qcheck_case irel_matches_list_model;
    Alcotest.test_case "Irel full and subsets" `Quick
      test_irel_full_and_subsets;
    Alcotest.test_case "Irel enumeration-cap parity" `Quick
      test_irel_cap_parity;
    Alcotest.test_case "Symtab dense codes" `Quick test_symtab_codes;
    Alcotest.test_case "partition-stream order parity" `Quick
      test_stream_order_parity;
    Alcotest.test_case "naive-mapping stream parity" `Quick
      test_mapping_stream_parity;
    Alcotest.test_case "Iplan matches Algebra.run" `Quick
      test_iplan_matches_algebra;
    Alcotest.test_case "Ieval matches Eval.answer" `Quick
      test_ieval_matches_eval;
    Alcotest.test_case "kernel parity: results and stats" `Quick
      test_kernel_parity_exhaustive;
    Alcotest.test_case "kernel parity: possible answers" `Quick
      test_possible_parity;
    Alcotest.test_case "budget caps are kernel-positional" `Quick
      test_budget_positional_parity;
    Alcotest.test_case "naive-mapping cap parity" `Quick
      test_mapping_cap_parity;
  ]
