(* Tests for the relational-algebra optimizer: per-rule unit tests and
   the semantics-preservation property on compiled random queries. *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)

let vocabulary =
  Vocabulary.make ~constants:[ "a"; "b" ] ~predicates:[ ("P", 1); ("R", 2) ]

let db =
  Database.make ~vocabulary ~domain:[ "a"; "b"; "c" ]
    ~constants:[ ("a", "a"); ("b", "b") ]
    ~relations:
      [
        ("P", Relation.of_tuples 1 [ [ "a" ] ]);
        ("R", Relation.of_tuples 2 [ [ "a"; "b" ]; [ "b"; "c" ] ]);
      ]

let algebra_testable =
  Alcotest.testable Algebra.pp ( = )

let opt e = Optimizer.optimize db e

let test_trivial_selections () =
  check algebra_testable "eq same column" (Algebra.Base "R")
    (opt (Algebra.Select (Algebra.Cols_eq (0, 0), Algebra.Base "R")));
  check algebra_testable "neq same column" (Algebra.Empty 2)
    (opt (Algebra.Select (Algebra.Cols_neq (1, 1), Algebra.Base "R")));
  check algebra_testable "select over empty" (Algebra.Empty 2)
    (opt (Algebra.Select (Algebra.Cols_eq (0, 1), Algebra.Empty 2)))

let test_projection_rules () =
  check algebra_testable "identity projection" (Algebra.Base "R")
    (opt (Algebra.Project ([ 0; 1 ], Algebra.Base "R")));
  check algebra_testable "projection fusion"
    (Algebra.Project ([ 1 ], Algebra.Base "R"))
    (opt (Algebra.Project ([ 0 ], Algebra.Project ([ 1; 0 ], Algebra.Base "R"))));
  check algebra_testable "project over empty" (Algebra.Empty 1)
    (opt (Algebra.Project ([ 0 ], Algebra.Empty 2)))

let test_empty_folding () =
  let r = Algebra.Base "R" in
  check algebra_testable "union empty" r (opt (Algebra.Union (Algebra.Empty 2, r)));
  check algebra_testable "inter empty" (Algebra.Empty 2)
    (opt (Algebra.Inter (r, Algebra.Empty 2)));
  check algebra_testable "diff from empty" (Algebra.Empty 2)
    (opt (Algebra.Diff (Algebra.Empty 2, r)));
  check algebra_testable "diff of empty" r (opt (Algebra.Diff (r, Algebra.Empty 2)));
  check algebra_testable "product with empty" (Algebra.Empty 3)
    (opt (Algebra.Product (r, Algebra.Empty 1)))

let test_idempotence () =
  let p = Algebra.Base "P" in
  check algebra_testable "union self" p (opt (Algebra.Union (p, p)));
  check algebra_testable "inter self" p (opt (Algebra.Inter (p, p)));
  check algebra_testable "diff self" (Algebra.Empty 1) (opt (Algebra.Diff (p, p)))

let test_universal_absorption () =
  let r = Algebra.Base "R" in
  let full2 = Algebra.Product (Algebra.Domain, Algebra.Domain) in
  check algebra_testable "inter with full" r (opt (Algebra.Inter (full2, r)));
  check algebra_testable "union with full" full2 (opt (Algebra.Union (r, full2)));
  check algebra_testable "diff from full twice (double complement)" r
    (opt (Algebra.Diff (full2, Algebra.Diff (full2, r))));
  check algebra_testable "diff against full" (Algebra.Empty 2)
    (opt (Algebra.Diff (r, full2)))

let test_pushdown_product () =
  let e =
    Algebra.Select
      (Algebra.Col_eq_const (2, "a"), Algebra.Product (Algebra.Base "R", Algebra.Base "P"))
  in
  check algebra_testable "pushed into right side"
    (Algebra.Product
       (Algebra.Base "R", Algebra.Select (Algebra.Col_eq_const (0, "a"), Algebra.Base "P")))
    (opt e);
  let e2 =
    Algebra.Select
      (Algebra.Cols_eq (0, 1), Algebra.Product (Algebra.Base "R", Algebra.Base "P"))
  in
  check algebra_testable "pushed into left side"
    (Algebra.Product
       (Algebra.Select (Algebra.Cols_eq (0, 1), Algebra.Base "R"), Algebra.Base "P"))
    (opt e2);
  (* A spanning equality fuses product and selection into an equi-join;
     a spanning disequality stays put. *)
  let e3 =
    Algebra.Select
      (Algebra.Cols_eq (0, 2), Algebra.Product (Algebra.Base "R", Algebra.Base "P"))
  in
  check algebra_testable "spanning equality fused to join"
    (Algebra.Join ([ (0, 0) ], Algebra.Base "R", Algebra.Base "P"))
    (opt e3);
  let e4 =
    Algebra.Select
      (Algebra.Cols_neq (0, 2), Algebra.Product (Algebra.Base "R", Algebra.Base "P"))
  in
  check algebra_testable "spanning disequality kept" e4 (opt e4)

let test_pushdown_project () =
  let e =
    Algebra.Select
      (Algebra.Col_eq_const (0, "b"), Algebra.Project ([ 1 ], Algebra.Base "R"))
  in
  check algebra_testable "remapped through projection"
    (Algebra.Project
       ([ 1 ], Algebra.Select (Algebra.Col_eq_const (1, "b"), Algebra.Base "R")))
    (opt e)

let test_optimized_runs_agree_fixed () =
  List.iter
    (fun e ->
      check Support.relation_testable
        (Fmt.str "%a" Algebra.pp e)
        (Algebra.run db e)
        (Algebra.run db (opt e)))
    [
      Algebra.Select
        (Algebra.Cols_eq (0, 1), Algebra.Product (Algebra.Base "R", Algebra.Base "P"));
      Algebra.Diff
        ( Algebra.Product (Algebra.Domain, Algebra.Domain),
          Algebra.Base "R" );
      Algebra.Project
        ( [ 1; 1; 0 ],
          Algebra.Select (Algebra.Col_eq_const (0, "a"), Algebra.Base "R") );
      Algebra.Union
        ( Algebra.Inter (Algebra.Base "P", Algebra.Base "P"),
          Algebra.Project ([ 0 ], Algebra.Base "R") );
    ]

(* Property: on plans compiled from random queries, optimization
   preserves results and never grows the plan's evaluation cost class
   (checked as: same answers). *)
let optimizer_preserves_semantics =
  QCheck2.Test.make ~count:250 ~name:"optimize preserves run results"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:2)
    (fun (cw, query) ->
      let pb = Ph.ph1 cw in
      let plan = Compile.query pb query in
      Relation.equal (Algebra.run pb plan)
        (Algebra.run pb (Optimizer.optimize pb plan)))

(* Random raw algebra trees (not only compiler output): generated
   bottom-up so every node is well-formed against the schema. *)
let gen_algebra : Algebra.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf =
    oneofl
      [ Algebra.Base "P"; Algebra.Base "R"; Algebra.Domain; Algebra.Empty 1;
        Algebra.Empty 2 ]
  in
  let arity_of e = Algebra.arity db e in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        let* choice = int_bound 7 in
        match choice with
        | 0 -> leaf
        | 1 ->
          let* e = self (depth - 1) in
          let k = arity_of e in
          if k = 0 then return e
          else
            let* i = int_bound (k - 1) in
            let* j = int_bound (k - 1) in
            let* sel =
              oneofl
                [
                  Algebra.Cols_eq (i, j);
                  Algebra.Cols_neq (i, j);
                  Algebra.Col_eq_const (i, "a");
                  Algebra.Col_neq_const (i, "b");
                ]
            in
            return (Algebra.Select (sel, e))
        | 2 ->
          let* e = self (depth - 1) in
          let k = arity_of e in
          if k = 0 then return e
          else
            let* cols = list_size (int_range 1 3) (int_bound (k - 1)) in
            return (Algebra.Project (cols, e))
        | 3 ->
          let* a = self (depth - 1) in
          let* b = self (depth - 1) in
          return (Algebra.Product (a, b))
        | 4 ->
          let* a = self (depth - 1) in
          let* b = self (depth - 1) in
          let ka = arity_of a and kb = arity_of b in
          if ka = 0 || kb = 0 then return (Algebra.Product (a, b))
          else
            let* pairs =
              list_size (int_bound 2)
                (pair (int_bound (ka - 1)) (int_bound (kb - 1)))
            in
            let* semi = bool in
            return
              (if semi then Algebra.Semijoin (pairs, a, b)
               else Algebra.Join (pairs, a, b))
        | _ ->
          let* a = self (depth - 1) in
          let* b = self (depth - 1) in
          let ka = arity_of a and kb = arity_of b in
          if ka <> kb then return (Algebra.Product (a, b))
          else
            let* op = int_bound 2 in
            return
              (match op with
              | 0 -> Algebra.Union (a, b)
              | 1 -> Algebra.Inter (a, b)
              | _ -> Algebra.Diff (a, b)))
    3

let optimizer_on_raw_trees =
  QCheck2.Test.make ~count:300 ~name:"optimize preserves raw algebra trees"
    ~print:(Fmt.str "%a" Algebra.pp) gen_algebra
    (fun e ->
      Relation.equal (Algebra.run db e) (Algebra.run db (Optimizer.optimize db e)))

let optimizer_never_grows =
  QCheck2.Test.make ~count:300 ~name:"optimize never grows the plan"
    ~print:(Fmt.str "%a" Algebra.pp) gen_algebra
    (fun e ->
      (* Selection pushdown through Union may add nodes; everything
         else shrinks. Allow the bounded growth it can cause: one extra
         Select per Union under each pushed selection. *)
      Algebra.size (Optimizer.optimize db e) <= 2 * Algebra.size e)

(* The optimized approximation backend agrees with the others. *)
let optimized_backend_agrees =
  QCheck2.Test.make ~count:150 ~name:"optimized backend = direct"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      Relation.equal
        (Approx.answer ~backend:Approx.Direct db query)
        (Approx.answer ~backend:Approx.Algebra_optimized db query))

let suite =
  [
    Alcotest.test_case "trivial selections" `Quick test_trivial_selections;
    Alcotest.test_case "projection rules" `Quick test_projection_rules;
    Alcotest.test_case "empty folding" `Quick test_empty_folding;
    Alcotest.test_case "idempotence" `Quick test_idempotence;
    Alcotest.test_case "universal absorption" `Quick test_universal_absorption;
    Alcotest.test_case "pushdown through product" `Quick test_pushdown_product;
    Alcotest.test_case "pushdown through project" `Quick test_pushdown_project;
    Alcotest.test_case "optimized runs agree" `Quick
      test_optimized_runs_agree_fixed;
    Support.qcheck_case optimizer_preserves_semantics;
    Support.qcheck_case optimizer_on_raw_trees;
    Support.qcheck_case optimizer_never_grows;
    Support.qcheck_case optimized_backend_agrees;
  ]
