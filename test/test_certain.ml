(* Tests for the exact certain-answer engines (Theorem 1, Corollary 2). *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)

let socrates = Support.socrates_db ()
let personnel = Support.personnel_db ()
let ripper = Support.ripper_db ()

let q s = Parser.query s

(* --- basic certain-answer semantics --- *)

let test_positive_fact_certain () =
  (* A stored fact is certainly true. *)
  check_bool "stored fact" true
    (Certain.certain_boolean socrates (q "(). TEACHES(socrates, plato)"));
  check_bool "existential over fact" true
    (Certain.certain_boolean socrates (q "(). exists x. TEACHES(socrates, x)"))

let test_absent_fact_not_certain () =
  check_bool "absent fact not certain" false
    (Certain.certain_boolean socrates (q "(). TEACHES(plato, socrates)"))

let test_negation_with_unknowns () =
  (* ¬TEACHES(mystery, plato) is NOT certain: mystery might equal
     socrates. *)
  check_bool "unknown identity blocks negation" false
    (Certain.certain_boolean socrates (q "(). ~TEACHES(mystery, plato)"));
  (* But ¬TEACHES(plato, plato) is certain: plato ≠ socrates is an
     axiom, so no model lets plato teach. *)
  check_bool "provable negation" true
    (Certain.certain_boolean socrates (q "(). ~TEACHES(plato, plato)"))

let test_inequality_queries () =
  check_bool "axiom inequality certain" true
    (Certain.certain_boolean socrates (q "(). socrates != plato"));
  check_bool "open identity not certain" false
    (Certain.certain_boolean socrates (q "(). mystery != socrates"));
  (* Nor is the equality certain. *)
  check_bool "open identity not certainly equal" false
    (Certain.certain_boolean socrates (q "(). mystery = socrates"))

let test_disjunctive_knowledge () =
  (* In the ripper database, jack is distinct from victoria, disraeli is
     distinct from victoria, but jack vs disraeli is open. So
     "some murderer is a politician" is not certain, and "every
     murderer differs from victoria" is. *)
  check_bool "open conjecture" false
    (Certain.certain_boolean ripper
       (q "(). exists x. MURDERER(x) /\\ POLITICIAN(x)"));
  check_bool "but possible" true
    (Certain.possible_boolean ripper
       (q "(). exists x. MURDERER(x) /\\ POLITICIAN(x)"));
  check_bool "certain separation" true
    (Certain.certain_boolean ripper
       (q "(). forall x. MURDERER(x) -> x != victoria"))

let test_certain_member_and_answer () =
  let teaches_someone = q "(x). exists y. TEACHES(x, y)" in
  check_bool "socrates teaches" true
    (Certain.certain_member socrates teaches_someone [ "socrates" ]);
  check_bool "plato does not certainly teach" false
    (Certain.certain_member socrates teaches_someone [ "plato" ]);
  (* mystery teaches in the worlds where mystery = socrates only. *)
  check_bool "mystery does not certainly teach" false
    (Certain.certain_member socrates teaches_someone [ "mystery" ]);
  check Support.relation_testable "answer set"
    (Relation.of_tuples 1 [ [ "socrates" ] ])
    (Certain.answer socrates teaches_someone)

let test_corollary2_fully_specified () =
  (* Corollary 2: on a fully specified database the certain answer is
     the Ph₁ answer, for any query, including negation. *)
  let queries =
    [
      q "(x). exists y. EMP_DEPT(x, y)";
      q "(x). ~(exists y. EMP_DEPT(x, y))";
      q "(x, y). exists z. EMP_DEPT(x, z) /\\ DEPT_MGR(z, y)";
      q "(x). forall y. EMP_DEPT(x, y) -> y = toys";
    ]
  in
  let pb = Ph.ph1 personnel in
  List.iter
    (fun query ->
      check Support.relation_testable
        (Pretty.query_to_string query)
        (Eval.answer pb query)
        (Certain.answer personnel query))
    queries

let test_stats_early_exit () =
  (* The countermodel search stops early: a query false already on the
     discrete partition examines exactly one structure. *)
  let _, stats =
    Certain.certain_boolean_stats socrates (q "(). TEACHES(plato, plato)")
  in
  check Alcotest.int "early exit" 1 stats.Certain.structures;
  check Alcotest.bool "early exit flagged" true stats.Certain.early_exit;
  (* A certain query visits every valid partition (3 for socrates). *)
  let _, stats =
    Certain.certain_boolean_stats socrates (q "(). TEACHES(socrates, plato)")
  in
  check Alcotest.int "full scan" 3 stats.Certain.structures;
  check Alcotest.bool "no early exit" false stats.Certain.early_exit

let test_answer_stats_pruning () =
  (* |C|^1 = 3 candidates; the discrete (Ph₁) answer holds only
     socrates, so 2 candidates are pruned without per-structure work. *)
  let relation, stats =
    Certain.answer_stats socrates (q "(x). exists y. TEACHES(x, y)")
  in
  check Support.relation_testable "pruned answer"
    (Relation.of_tuples 1 [ [ "socrates" ] ])
    relation;
  check Alcotest.int "pruned candidates" 2 stats.Certain.pruned_candidates;
  check Alcotest.bool "no early exit" false stats.Certain.early_exit;
  (* An empty discrete answer decides the query on the seed alone. *)
  let relation, stats =
    Certain.answer_stats socrates (q "(x). TEACHES(x, socrates)")
  in
  check Alcotest.bool "empty answer" true (Relation.is_empty relation);
  check Alcotest.int "seed-only scan" 1 stats.Certain.structures;
  check Alcotest.bool "early exit on empty seed" true stats.Certain.early_exit

let test_validation_errors () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Certain.certain_boolean socrates (q "(). NOPE(socrates)"));
  expect_invalid (fun () ->
      Certain.certain_member socrates (q "(). TEACHES(socrates, plato)") []);
  expect_invalid (fun () ->
      Certain.certain_boolean socrates (q "(x). TEACHES(x, plato)"))

(* --- equivalence of the two engines (Theorem 1 + kernel argument) --- *)

let engines_agree_boolean =
  QCheck2.Test.make ~count:120 ~name:"naive = kernel partitions (boolean)"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let query = Query.boolean sentence in
      Certain.certain_boolean ~algorithm:Certain.Naive_mappings db query
      = Certain.certain_boolean ~algorithm:Certain.Kernel_partitions db query)

let engines_agree_answers =
  QCheck2.Test.make ~count:60 ~name:"naive = kernel partitions (answers)"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      Relation.equal
        (Certain.answer ~algorithm:Certain.Naive_mappings db query)
        (Certain.answer ~algorithm:Certain.Kernel_partitions db query))

(* Theorem 1 restated directly: membership in the certain answer equals
   universal satisfaction over all respecting mappings. *)
let theorem1_definition =
  QCheck2.Test.make ~count:60 ~name:"theorem 1 characterization"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      let constants = Cw_database.constants db in
      List.for_all
        (fun c ->
          let by_engine = Certain.certain_member db query [ c ] in
          let by_definition =
            Seq.for_all
              (fun h ->
                Eval.member (Mapping.image_db h) query [ Mapping.apply h c ])
              (Mapping.all_respecting db)
          in
          by_engine = by_definition)
        constants)

(* Corollary 2 as a property: once fully specified, certain answers
   equal Ph₁ answers. *)
let corollary2_property =
  QCheck2.Test.make ~count:100 ~name:"corollary 2 (fully specified)"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      let full = Cw_database.fully_specify db in
      Relation.equal
        (Certain.answer full query)
        (Eval.answer (Ph.ph1 full) query))

(* Monotonicity in knowledge: adding uniqueness axioms can only grow
   the set of certain answers (more axioms → fewer models). *)
let more_axioms_more_answers =
  QCheck2.Test.make ~count:100 ~name:"uniqueness axioms grow certain answers"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      Relation.subset (Certain.answer db query)
        (Certain.answer (Cw_database.fully_specify db) query))

(* Certain implies possible. *)
let certain_implies_possible =
  QCheck2.Test.make ~count:100 ~name:"certain ⊆ possible"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      Relation.subset (Certain.answer db query)
        (Certain.possible_answer db query))

(* The two algorithms agree on the dual modality as well. *)
let engines_agree_possible =
  QCheck2.Test.make ~count:60 ~name:"naive = kernel partitions (possible)"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      Relation.equal
        (Certain.possible_answer ~algorithm:Certain.Naive_mappings db query)
        (Certain.possible_answer ~algorithm:Certain.Kernel_partitions db query))

(* The parallel scheduler changes only the work distribution: every
   entry point returns exactly the sequential result, and the
   (deterministic) early-exit flag agrees. *)
let parallel_agrees_boolean =
  QCheck2.Test.make ~count:80 ~name:"domains=4 = sequential (boolean paths)"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let query = Query.boolean sentence in
      let seq_v, seq_s = Certain.certain_boolean_stats db query in
      let par_v, par_s = Certain.certain_boolean_stats ~domains:4 db query in
      let pos_seq, pos_seq_s = Certain.possible_boolean_stats db query in
      let pos_par, pos_par_s =
        Certain.possible_boolean_stats ~domains:4 db query
      in
      seq_v = par_v
      && seq_s.Certain.early_exit = par_s.Certain.early_exit
      && seq_s.Certain.early_exit = not seq_v
      && pos_seq = pos_par
      && pos_seq_s.Certain.early_exit = pos_par_s.Certain.early_exit
      && pos_seq_s.Certain.early_exit = pos_seq)

let parallel_agrees_answers =
  QCheck2.Test.make ~count:60 ~name:"domains=4 = sequential (answer paths)"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      let seq_a, seq_s = Certain.answer_stats db query in
      let par_a, par_s = Certain.answer_stats ~domains:4 db query in
      let pos_seq, pos_seq_s = Certain.possible_answer_stats db query in
      let pos_par, pos_par_s =
        Certain.possible_answer_stats ~domains:4 db query
      in
      Relation.equal seq_a par_a
      && seq_s.Certain.early_exit = par_s.Certain.early_exit
      && seq_s.Certain.pruned_candidates = par_s.Certain.pruned_candidates
      && Relation.equal pos_seq pos_par
      && pos_seq_s.Certain.early_exit = pos_par_s.Certain.early_exit)

let parallel_agrees_member =
  QCheck2.Test.make ~count:60 ~name:"domains=4 = sequential (member paths)"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      List.for_all
        (fun c ->
          Certain.certain_member db query [ c ]
          = Certain.certain_member ~domains:4 db query [ c ]
          && Certain.possible_member db query [ c ]
             = Certain.possible_member ~domains:4 db query [ c ])
        (Cw_database.constants db))

(* Parallelism composes with the naive reference algorithm too. *)
let parallel_agrees_naive =
  QCheck2.Test.make ~count:40 ~name:"domains=4 naive = sequential kernel"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let query = Query.boolean sentence in
      Certain.certain_boolean ~algorithm:Certain.Naive_mappings ~domains:4 db
        query
      = Certain.certain_boolean ~algorithm:Certain.Kernel_partitions db query)

(* The visit order changes only the search path, never the verdict. *)
let orders_agree =
  QCheck2.Test.make ~count:120 ~name:"fresh-first = merge-first verdicts"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let query = Query.boolean sentence in
      Certain.certain_boolean ~order:Certain.Fresh_first db query
      = Certain.certain_boolean ~order:Certain.Merge_first db query)

(* Boolean duality: possible φ = ¬ certain ¬φ. *)
let possible_duality =
  QCheck2.Test.make ~count:120 ~name:"possible = ¬certain¬"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      Certain.possible_boolean db (Query.boolean sentence)
      = not (Certain.certain_boolean db (Query.boolean (Formula.Not sentence))))

let suite =
  [
    Alcotest.test_case "stored facts certain" `Quick test_positive_fact_certain;
    Alcotest.test_case "absent facts not certain" `Quick
      test_absent_fact_not_certain;
    Alcotest.test_case "negation with unknowns" `Quick
      test_negation_with_unknowns;
    Alcotest.test_case "inequality queries" `Quick test_inequality_queries;
    Alcotest.test_case "ripper scenario" `Quick test_disjunctive_knowledge;
    Alcotest.test_case "member and answer" `Quick test_certain_member_and_answer;
    Alcotest.test_case "corollary 2 examples" `Quick
      test_corollary2_fully_specified;
    Alcotest.test_case "stats and early exit" `Quick test_stats_early_exit;
    Alcotest.test_case "answer pruning stats" `Quick test_answer_stats_pruning;
    Alcotest.test_case "validation" `Quick test_validation_errors;
    Support.qcheck_case engines_agree_boolean;
    Support.qcheck_case engines_agree_answers;
    Support.qcheck_case engines_agree_possible;
    Support.qcheck_case parallel_agrees_boolean;
    Support.qcheck_case parallel_agrees_answers;
    Support.qcheck_case parallel_agrees_member;
    Support.qcheck_case parallel_agrees_naive;
    Support.qcheck_case theorem1_definition;
    Support.qcheck_case corollary2_property;
    Support.qcheck_case more_axioms_more_answers;
    Support.qcheck_case certain_implies_possible;
    Support.qcheck_case orders_agree;
    Support.qcheck_case possible_duality;
  ]
