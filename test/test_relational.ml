(* Tests for relations, physical databases, the Tarskian evaluator and
   the relational-algebra pipeline. *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let r2 tuples = Relation.of_tuples 2 tuples
let r1 tuples = Relation.of_tuples 1 tuples

(* --- relations --- *)

let test_relation_basics () =
  let r = r2 [ [ "a"; "b" ]; [ "a"; "b" ]; [ "b"; "c" ] ] in
  check_int "dedup" 2 (Relation.cardinal r);
  check_bool "mem" true (Relation.mem [ "a"; "b" ] r);
  check_bool "not mem" false (Relation.mem [ "b"; "a" ] r);
  check_int "arity" 2 (Relation.arity r);
  check_bool "empty relation is empty" true (Relation.is_empty (Relation.empty 3))

let test_relation_arity_checks () =
  Alcotest.check_raises "bad tuple arity"
    (Invalid_argument "Relation: tuple (a) has arity 1, expected 2")
    (fun () -> ignore (Relation.add [ "a" ] (Relation.empty 2)));
  Alcotest.check_raises "union arity"
    (Invalid_argument "Relation: arity mismatch (1 vs 2)")
    (fun () -> ignore (Relation.union (Relation.empty 1) (Relation.empty 2)))

let test_relation_set_ops () =
  let a = r1 [ [ "x" ]; [ "y" ] ] and b = r1 [ [ "y" ]; [ "z" ] ] in
  check_int "union" 3 (Relation.cardinal (Relation.union a b));
  check_int "inter" 1 (Relation.cardinal (Relation.inter a b));
  check_int "diff" 1 (Relation.cardinal (Relation.diff a b));
  check_bool "subset" true (Relation.subset (Relation.inter a b) a)

let test_relation_product_full () =
  let a = r1 [ [ "x" ] ] and b = r2 [ [ "p"; "q" ] ] in
  let p = Relation.product a b in
  check_int "product arity" 3 (Relation.arity p);
  check_bool "product tuple" true (Relation.mem [ "x"; "p"; "q" ] p);
  let full = Relation.full ~domain:[ "a"; "b" ] 2 in
  check_int "full size" 4 (Relation.cardinal full)

(* Regression for the enumeration-cap arithmetic: the cap check is
   exact saturating integer arithmetic, so the boundary is judged
   precisely and huge [n^k] products cannot overflow into a false
   pass. *)
let test_relation_full_cap_boundary () =
  let domain n = List.init n (Printf.sprintf "c%d") in
  let expect_cap n k =
    match Relation.full ~domain:(domain n) k with
    | _ -> Alcotest.failf "%d^%d must exceed the enumeration cap" n k
    | exception Invalid_argument msg ->
      check Alcotest.string "cap message"
        (Printf.sprintf
           "Relation.full: %d^%d tuples exceeds the enumeration cap" n k)
        msg
  in
  (* Just over the 2^20 cap. *)
  expect_cap 1025 2;
  (* 3^45 ≈ 3·10^21 and 2000^7 ≈ 10^23 overflow a naive 63-bit
     accumulator; the saturating check must refuse cleanly, not wrap
     around into a false pass. *)
  expect_cap 3 45;
  expect_cap 2000 7;
  (* Degenerate shapes stay exempt from the cap: an empty domain or a
     nullary head never enumerates more than one tuple. *)
  check_int "k = 0 is the unit relation" 1
    (Relation.cardinal (Relation.full ~domain:(domain 2000) 0));
  let none = Relation.full ~domain:[] 3 in
  check_int "empty domain" 0 (Relation.cardinal none);
  check_int "empty domain keeps the arity" 3 (Relation.arity none);
  (* A large in-cap instance still builds. *)
  check_int "100^2 under the cap" 10_000
    (Relation.cardinal (Relation.full ~domain:(domain 100) 2))

let test_relation_subsets () =
  let r = r1 [ [ "x" ]; [ "y" ] ] in
  let subsets = List.of_seq (Relation.subsets r) in
  check_int "2^2 subsets" 4 (List.length subsets);
  check_bool "empty included" true
    (List.exists Relation.is_empty subsets);
  check_bool "full included" true (List.exists (Relation.equal r) subsets)

(* --- databases --- *)

let vocabulary =
  Vocabulary.make ~constants:[ "a"; "b" ] ~predicates:[ ("P", 1); ("R", 2) ]

let sample_db () =
  Database.make ~vocabulary ~domain:[ "a"; "b"; "c" ]
    ~constants:[ ("a", "a"); ("b", "b") ]
    ~relations:[ ("P", r1 [ [ "a" ] ]); ("R", r2 [ [ "a"; "b" ]; [ "b"; "c" ] ]) ]

let test_database_basics () =
  let db = sample_db () in
  check_int "domain size" 3 (Database.domain_size db);
  check Alcotest.string "constant" "a" (Database.constant db "a");
  check_int "relation size" 2 (Relation.cardinal (Database.relation db "R"));
  check_int "total size" 3 (Database.size db)

let test_database_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Database.make ~vocabulary ~domain:[] ~constants:[] ~relations:[]);
  expect_invalid (fun () ->
      (* missing constant interpretation *)
      Database.make ~vocabulary ~domain:[ "a" ] ~constants:[ ("a", "a") ]
        ~relations:[]);
  expect_invalid (fun () ->
      (* tuple outside the domain *)
      Database.make ~vocabulary ~domain:[ "a"; "b" ]
        ~constants:[ ("a", "a"); ("b", "b") ]
        ~relations:[ ("P", r1 [ [ "zzz" ] ]) ]);
  expect_invalid (fun () ->
      (* arity clash *)
      Database.make ~vocabulary ~domain:[ "a"; "b" ]
        ~constants:[ ("a", "a"); ("b", "b") ]
        ~relations:[ ("P", r2 [] ) ])

let test_database_missing_relation_defaults_empty () =
  let db =
    Database.make ~vocabulary ~domain:[ "a"; "b" ]
      ~constants:[ ("a", "a"); ("b", "b") ]
      ~relations:[]
  in
  check_bool "P empty" true (Relation.is_empty (Database.relation db "P"))

let test_map_elements () =
  let db = sample_db () in
  let collapse e = if String.equal e "c" then "b" else e in
  let db' = Database.map_elements collapse db in
  check_int "collapsed domain" 2 (Database.domain_size db');
  check_bool "R image" true (Relation.mem [ "b"; "b" ] (Database.relation db' "R"))

let test_isomorphic () =
  let v = Vocabulary.make ~constants:[ "a" ] ~predicates:[ ("P", 1) ] in
  let d1 =
    Database.make ~vocabulary:v ~domain:[ "a"; "x" ] ~constants:[ ("a", "a") ]
      ~relations:[ ("P", r1 [ [ "x" ] ]) ]
  in
  let d2 =
    Database.make ~vocabulary:v ~domain:[ "a"; "y" ] ~constants:[ ("a", "a") ]
      ~relations:[ ("P", r1 [ [ "y" ] ]) ]
  in
  let d3 =
    Database.make ~vocabulary:v ~domain:[ "a"; "y" ] ~constants:[ ("a", "a") ]
      ~relations:[ ("P", r1 [ [ "a" ] ]) ]
  in
  check_bool "isomorphic" true (Database.isomorphic d1 d2);
  check_bool "not isomorphic" false (Database.isomorphic d1 d3)

(* --- evaluation --- *)

let parse = Parser.formula

let test_eval_atoms () =
  let db = sample_db () in
  check_bool "fact" true (Eval.satisfies db (parse "P(a)"));
  check_bool "no fact" false (Eval.satisfies db (parse "P(b)"));
  check_bool "eq" true (Eval.satisfies db (parse "a = a"));
  check_bool "neq" true (Eval.satisfies db (parse "a != b"))

let test_eval_quantifiers () =
  let db = sample_db () in
  check_bool "exists" true (Eval.satisfies db (parse "exists x. P(x)"));
  check_bool "forall fails" false (Eval.satisfies db (parse "forall x. P(x)"));
  (* c is in the domain but not a constant: reachable only through
     quantification. *)
  check_bool "chain" true
    (Eval.satisfies db (parse "exists x, y. R(a, x) /\\ R(x, y)"))

let test_eval_connectives () =
  let db = sample_db () in
  check_bool "implies" true (Eval.satisfies db (parse "P(b) -> P(a)"));
  check_bool "iff" true (Eval.satisfies db (parse "P(a) <-> ~P(b)"));
  check_bool "true" true (Eval.satisfies db Formula.True);
  check_bool "false" false (Eval.satisfies db Formula.False)

let test_eval_second_order () =
  let db = sample_db () in
  (* ∃Q ∀x Q(x): take Q = the whole domain. *)
  check_bool "SO exists" true
    (Eval.satisfies db (parse "exists2 Q/1. forall x. Q(x)"));
  (* ∀Q ∃x Q(x) fails: Q = ∅. *)
  check_bool "SO forall" false
    (Eval.satisfies db (parse "forall2 Q/1. exists x. Q(x)"));
  (* ∀Q (Q ⊇ P ∨ Q misses some P element) — tautology-ish sanity:
     ∀Q ∃x (Q(x) \/ ~Q(x)). *)
  check_bool "SO tautology" true
    (Eval.satisfies db (parse "forall2 Q/1. forall x. Q(x) \\/ ~Q(x)"))

let test_eval_errors () =
  let db = sample_db () in
  let expect_error f =
    match f () with
    | exception Eval.Eval_error _ -> ()
    | _ -> Alcotest.fail "expected Eval_error"
  in
  expect_error (fun () -> Eval.satisfies db (parse "UNKNOWN(a)"));
  expect_error (fun () -> Eval.satisfies db (parse "P(zzz)"));
  expect_error (fun () -> Eval.satisfies db (Formula.Atom ("P", [ Term.var "x" ])))

let test_eval_answer () =
  let db = sample_db () in
  let q = Parser.query "(x, y). R(x, y)" in
  let ans = Eval.answer db q in
  check Support.relation_testable "answer"
    (r2 [ [ "a"; "b" ]; [ "b"; "c" ] ])
    ans;
  check_bool "member" true (Eval.member db q [ "a"; "b" ]);
  check_bool "not member" false (Eval.member db q [ "b"; "a" ])

let test_eval_virtuals () =
  let db = sample_db () in
  let virtuals name =
    if String.equal name "GT" then
      Some (function [ x; y ] -> String.compare x y > 0 | _ -> false)
    else None
  in
  check_bool "virtual atom" true
    (Eval.satisfies ~virtuals db (parse "GT(b, a)"));
  check_bool "virtual atom false" false
    (Eval.satisfies ~virtuals db (parse "GT(a, b)"))

(* --- algebra --- *)

let test_algebra_basics () =
  let db = sample_db () in
  let open Algebra in
  check Support.relation_testable "base" (r2 [ [ "a"; "b" ]; [ "b"; "c" ] ])
    (run db (Base "R"));
  check Support.relation_testable "select"
    (r2 [ [ "a"; "b" ] ])
    (run db (Select (Col_eq_const (0, "a"), Base "R")));
  check Support.relation_testable "project"
    (r1 [ [ "b" ]; [ "c" ] ])
    (run db (Project ([ 1 ], Base "R")));
  check_int "product" 1 (Relation.cardinal (run db (Product (Base "P", Base "P"))));
  check_int "domain" 3 (Relation.cardinal (run db Domain))

let test_algebra_errors () =
  let db = sample_db () in
  let expect_error e =
    match Algebra.run db e with
    | exception Eval.Eval_error _ -> ()
    | _ -> Alcotest.fail "expected Eval_error"
  in
  expect_error (Algebra.Base "NOPE");
  expect_error (Algebra.Project ([ 5 ], Algebra.Base "R"));
  expect_error (Algebra.Union (Algebra.Base "P", Algebra.Base "R"))

let test_compile_simple () =
  let db = sample_db () in
  let q = Parser.query "(x). P(x)" in
  check Support.relation_testable "compiled atom" (r1 [ [ "a" ] ])
    (Compile.answer db q);
  let q2 = Parser.query "(x). exists y. R(x, y)" in
  check Support.relation_testable "compiled exists"
    (r1 [ [ "a" ]; [ "b" ] ])
    (Compile.answer db q2);
  let q3 = Parser.query "(x). ~P(x)" in
  check Support.relation_testable "compiled negation"
    (r1 [ [ "b" ]; [ "c" ] ])
    (Compile.answer db q3)

let test_compile_tricky () =
  let db = sample_db () in
  (* Repeated variable in an atom. *)
  let q = Parser.query "(x). R(x, x)" in
  check Support.relation_testable "repeated var" (Relation.empty 1)
    (Compile.answer db q);
  (* Constant argument. *)
  let q2 = Parser.query "(y). R(a, y)" in
  check Support.relation_testable "constant arg" (r1 [ [ "b" ] ])
    (Compile.answer db q2);
  (* Head variable absent from the body column set. *)
  let q3 = Parser.query "(x, y). P(x)" in
  check_int "padding" 3 (Relation.cardinal (Compile.answer db q3));
  (* Forall. *)
  let q4 = Parser.query "(x). forall y. R(x, y) -> P(y)" in
  (* R(a,b) with P(b) false: a out. R(b,c), P(c) false: b out. c has
     no R edges: vacuous. *)
  check Support.relation_testable "forall" (r1 [ [ "c" ] ])
    (Compile.answer db q4)

let test_compile_shadowed_binders () =
  let db = sample_db () in
  (* Three binders named [x] nested under an in-scope [x]: the rename
     of the innermost binder must avoid the columns introduced by the
     outer renames, not just the names occurring in its own body.
     Regression — a bounded retry here aliased the innermost column to
     an enclosing one, turning the inner [y = x] into a comparison
     against the forall-bound column and emptying the answer. *)
  let q = Parser.query "(x). exists y, x. forall x. exists x. y = x" in
  check Support.relation_testable "deep shadowing"
    (Eval.answer db q) (Compile.answer db q);
  check_int "body is a tautology" 3 (Relation.cardinal (Compile.answer db q));
  let q2 = Parser.query "(x). exists x. forall x. exists x. P(x)" in
  check Support.relation_testable "shadowed head variable"
    (Eval.answer db q2) (Compile.answer db q2)

(* Property: compiled algebra agrees with the Tarskian evaluator on
   random FO queries over Ph₁ of random CW databases. *)
let algebra_agrees_with_eval =
  QCheck2.Test.make ~count:300 ~name:"algebra = tarskian evaluation"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:2)
    (fun (db, q) ->
      let pb = Ph.ph1 db in
      Relation.equal (Eval.answer pb q) (Compile.answer pb q))

let algebra_agrees_with_eval_boolean =
  QCheck2.Test.make ~count:300 ~name:"algebra = evaluation (sentences)"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let pb = Ph.ph1 db in
      let q = Query.boolean sentence in
      let compiled = not (Relation.is_empty (Compile.answer pb q)) in
      compiled = Eval.satisfies pb sentence)

let suite =
  [
    Alcotest.test_case "relation basics" `Quick test_relation_basics;
    Alcotest.test_case "relation arity checks" `Quick test_relation_arity_checks;
    Alcotest.test_case "relation set ops" `Quick test_relation_set_ops;
    Alcotest.test_case "product and full" `Quick test_relation_product_full;
    Alcotest.test_case "full cap boundary" `Quick
      test_relation_full_cap_boundary;
    Alcotest.test_case "subsets" `Quick test_relation_subsets;
    Alcotest.test_case "database basics" `Quick test_database_basics;
    Alcotest.test_case "database validation" `Quick test_database_validation;
    Alcotest.test_case "default empty relations" `Quick
      test_database_missing_relation_defaults_empty;
    Alcotest.test_case "map elements" `Quick test_map_elements;
    Alcotest.test_case "isomorphism" `Quick test_isomorphic;
    Alcotest.test_case "eval atoms" `Quick test_eval_atoms;
    Alcotest.test_case "eval quantifiers" `Quick test_eval_quantifiers;
    Alcotest.test_case "eval connectives" `Quick test_eval_connectives;
    Alcotest.test_case "eval second order" `Quick test_eval_second_order;
    Alcotest.test_case "eval errors" `Quick test_eval_errors;
    Alcotest.test_case "eval answer" `Quick test_eval_answer;
    Alcotest.test_case "eval virtuals" `Quick test_eval_virtuals;
    Alcotest.test_case "algebra basics" `Quick test_algebra_basics;
    Alcotest.test_case "algebra errors" `Quick test_algebra_errors;
    Alcotest.test_case "compile simple" `Quick test_compile_simple;
    Alcotest.test_case "compile tricky" `Quick test_compile_tricky;
    Alcotest.test_case "compile shadowed binders" `Quick
      test_compile_shadowed_binders;
    Support.qcheck_case algebra_agrees_with_eval;
    Support.qcheck_case algebra_agrees_with_eval_boolean;
  ]
