(* End-to-end tests for the ldb serve daemon: protocol round-trips,
   concurrent-client parity with the engine and the one-shot CLI,
   plan-cache counters, busy backpressure, per-request budgets, SIGINT
   teardown, and trace-file integrity on error exit paths. The server
   runs in-process (Serve.run on a systhread) except for the signal
   test, which spawns ../bin/ldb.exe like test_cli does. *)

open Logicaldb
module J = Serve_json
module Client = Serve_client

let exe = "../bin/ldb.exe"

(* Same harness as test_cli's run_ldb, duplicated so the suites stay
   independent: stdin/stderr on /dev/null, stdout captured. *)
let run_ldb args =
  let out_file = Filename.temp_file "ldb_serve" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out_file)
    (fun () ->
      let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      let out =
        Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      let null_err = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      let pid =
        Unix.create_process exe (Array.of_list (exe :: args)) null_in out
          null_err
      in
      Unix.close null_in;
      Unix.close out;
      Unix.close null_err;
      let _, status = Unix.waitpid [] pid in
      let code =
        match status with
        | Unix.WEXITED n -> n
        | Unix.WSIGNALED n -> Alcotest.failf "killed by signal %d" n
        | Unix.WSTOPPED n -> Alcotest.failf "stopped by signal %d" n
      in
      let ic = open_in out_file in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (code, text))

let with_db f =
  let path = Filename.temp_file "ldb_serve" ".ldb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Ldb_format.print (Support.socrates_db ()));
      close_out oc;
      f path)

(* A fresh socket path: temp_file reserves a unique name, but the file
   itself must not exist when the client first connects (connecting to
   a regular file is ENOTSOCK, which connect_retry rightly does not
   retry). *)
let temp_socket () =
  let path = Filename.temp_file "ldb_serve" ".sock" in
  Sys.remove path;
  path

let with_server ?(workers = 2) ?(queue = 8) ?(debug_sleep = false) f =
  let socket = temp_socket () in
  let config =
    {
      Serve.default_config with
      socket_path = socket;
      workers;
      queue_capacity = queue;
      debug_sleep;
    }
  in
  let server = Thread.create (fun () -> Serve.run config) () in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Client.connect socket in
         ignore (Client.request c (J.Obj [ ("op", J.Str "shutdown") ]));
         Client.close c
       with _ -> ());
      Thread.join server;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () -> f socket)

let with_client socket f =
  let c = Client.connect_retry socket in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* --- request/response helpers ------------------------------------- *)

let rpc c fields = Client.request c (J.Obj fields)
let op name rest = ("op", J.Str name) :: rest

let code resp =
  match J.str_field "code" resp with
  | Some c -> c
  | None -> Alcotest.failf "response without a code: %s" (J.to_string resp)

let check_code msg expected resp =
  Alcotest.(check string) msg expected (code resp)

let load c name path =
  rpc c (op "load" [ ("db", J.Str name); ("path", J.Str path) ])

let query ?(extra = []) c db q =
  rpc c (op "query" ([ ("db", J.Str db); ("query", J.Str q) ] @ extra))

let boolean ?(extra = []) c db q =
  rpc c (op "boolean" ([ ("db", J.Str db); ("query", J.Str q) ] @ extra))

let rows resp =
  match J.member "rows" resp with
  | Some (J.List rs) ->
    List.map
      (function
        | J.List cells -> List.filter_map J.to_str cells
        | _ -> Alcotest.failf "malformed row in %s" (J.to_string resp))
      rs
    |> List.sort compare
  | _ -> Alcotest.failf "response without rows: %s" (J.to_string resp)

(* --- protocol round-trips ------------------------------------------ *)

let test_roundtrip () =
  with_db (fun db_path ->
      with_server (fun socket ->
          with_client socket (fun c ->
              let r = load c "g" db_path in
              check_code "load ok" "ok" r;
              Alcotest.(check (option (float 0.)))
                "constants counted" (Some 3.)
                (J.num_field "constants" r);
              let r = query c "g" "(x, y). TEACHES(x, y)" in
              check_code "query ok" "ok" r;
              Alcotest.(check (list (list string)))
                "certain tuples"
                [ [ "socrates"; "plato" ] ]
                (rows r);
              Alcotest.(check (option string))
                "unbudgeted answer is exact" (Some "exact")
                (J.str_field "qualified" r);
              let r = boolean c "g" "(). TEACHES(socrates, plato)" in
              check_code "boolean ok" "ok" r;
              Alcotest.(check (option bool))
                "affirmative verdict" (Some true) (J.bool_field "value" r);
              (* the error taxonomy on the wire *)
              check_code "unknown database" "semantic_error"
                (query c "nope" "(x). TEACHES(x, x)");
              check_code "query syntax error" "parse_error" (query c "g" "((");
              check_code "vocabulary violation" "semantic_error"
                (query c "g" "(x). UNKNOWN(x)");
              check_code "non-boolean query under op boolean" "semantic_error"
                (boolean c "g" "(x). TEACHES(x, x)");
              check_code "malformed JSON line" "parse_error"
                (Client.request_line c "this is not json");
              check_code "unknown op" "parse_error" (rpc c (op "frobnicate" []));
              check_code "sleep rejected without --debug-sleep" "semantic_error"
                (rpc c (op "sleep" [ ("ms", J.Num 1.) ]));
              (* close ends this connection, not the server *)
              check_code "close ok" "ok" (rpc c (op "close" []));
              (match rpc c (op "stats" []) with
              | exception (End_of_file | Sys_error _) -> ()
              | resp ->
                Alcotest.failf "connection survived close: %s"
                  (J.to_string resp));
              with_client socket (fun c2 ->
                  check_code "server still answering" "ok"
                    (rpc c2 (op "stats" []))))))

(* --- concurrent-client parity -------------------------------------- *)

let parity_queries =
  [
    "(x, y). TEACHES(x, y)";
    "(x). exists y. TEACHES(x, y)";
    "(x). TEACHES(socrates, x)";
  ]

let test_concurrent_parity () =
  with_db (fun db_path ->
      with_server (fun socket ->
          with_client socket (fun setup ->
              check_code "load" "ok" (load setup "g" db_path));
          let reference = Support.socrates_db () in
          let expected q =
            Certain.answer reference (Parser.query q)
            |> Relation.tuples |> List.sort compare
          in
          let failures = Atomic.make 0 in
          let client_thread k =
            let c = Client.connect socket in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                for i = 0 to 2 do
                  List.iter
                    (fun q ->
                      let extra =
                        if (k + i) mod 2 = 0 then []
                        else [ ("kernel", J.Str "strings") ]
                      in
                      let r = query ~extra c "g" q in
                      let good =
                        code r = "ok"
                        && J.member "rows" r <> None
                        && rows r = expected q
                      in
                      if not good then Atomic.incr failures)
                    parity_queries
                done)
          in
          let threads = List.init 4 (fun k -> Thread.create client_thread k) in
          List.iter Thread.join threads;
          Alcotest.(check int)
            "every concurrent answer equals the engine's" 0
            (Atomic.get failures);
          (* and the one-shot CLI on the same database file *)
          let cli_code, out = run_ldb [ "query"; db_path; List.hd parity_queries ] in
          Alcotest.(check int) "one-shot exit 0" 0 cli_code;
          let cli_rows =
            String.split_on_char '\n' out
            |> List.filter (fun l -> l <> "" && l.[0] <> '(')
            |> List.map (fun l ->
                   String.split_on_char ',' l |> List.map String.trim)
            |> List.sort compare
          in
          with_client socket (fun c ->
              Alcotest.(check (list (list string)))
                "served rows equal one-shot ldb query rows" cli_rows
                (rows (query c "g" (List.hd parity_queries))))))

(* --- mutations on resident databases ------------------------------- *)

let insert c db fact =
  rpc c (op "insert" [ ("db", J.Str db); ("fact", J.Str fact) ])

let retract c db fact =
  rpc c (op "retract" [ ("db", J.Str db); ("fact", J.Str fact) ])

let close_unknown ?to_ c db left right =
  let base = [ ("db", J.Str db); ("left", J.Str left); ("right", J.Str right) ] in
  let fields =
    match to_ with None -> base | Some v -> base @ [ ("to", J.Str v) ]
  in
  rpc c (op "close_unknown" fields)

let delta_of resp =
  match J.num_field "delta" resp with
  | Some d -> int_of_float d
  | None -> Alcotest.failf "response without delta: %s" (J.to_string resp)

let test_mutations () =
  with_db (fun db_path ->
      with_server (fun socket ->
          with_client socket (fun c ->
              check_code "load" "ok" (load c "g" db_path);
              let q = "(x, y). TEACHES(x, y)" in
              let r = query c "g" q in
              Alcotest.(check int) "queries report the delta epoch" 0
                (delta_of r);
              (* insert: answers change, the delta epoch moves, and the
                 plan cache re-binds exactly once *)
              let r = insert c "g" "TEACHES(mystery, socrates)" in
              check_code "insert ok" "ok" r;
              Alcotest.(check int) "insert bumps the delta" 1 (delta_of r);
              Alcotest.(check (option (float 0.)))
                "fact counted" (Some 2.) (J.num_field "facts" r);
              let r = query c "g" q in
              Alcotest.(check (list (list string)))
                "query sees the inserted fact"
                [ [ "mystery"; "socrates" ]; [ "socrates"; "plato" ] ]
                (rows r);
              Alcotest.(check int) "query reports the new delta" 1 (delta_of r);
              Alcotest.(check (option string))
                "mutation invalidated the cached plan" (Some "miss")
                (J.str_field "cache" r);
              Alcotest.(check (option string))
                "re-binding happens once per delta" (Some "hit")
                (J.str_field "cache" (query c "g" q));
              (* retract restores the original answers *)
              let r = retract c "g" "TEACHES(mystery, socrates)" in
              check_code "retract ok" "ok" r;
              Alcotest.(check int) "retract bumps the delta" 2 (delta_of r);
              Alcotest.(check (list (list string)))
                "query sees the retraction"
                [ [ "socrates"; "plato" ] ]
                (rows (query c "g" q));
              (* closing unknowns: distinct prunes, equal merges *)
              let r = close_unknown ~to_:"distinct" c "g" "socrates" "mystery" in
              check_code "close to distinct ok" "ok" r;
              Alcotest.(check int) "distinct bumps the delta" 3 (delta_of r);
              let r = close_unknown ~to_:"equal" c "g" "plato" "mystery" in
              check_code "close to equal ok" "ok" r;
              Alcotest.(check (option (float 0.)))
                "merge dropped a constant" (Some 2.)
                (J.num_field "constants" r);
              Alcotest.(check (list (list string)))
                "answers survive the merge"
                [ [ "socrates"; "plato" ] ]
                (rows (query c "g" q));
              (* the error taxonomy for mutations *)
              check_code "fact syntax error" "parse_error"
                (insert c "g" "((");
              check_code "non-ground fact" "semantic_error"
                (insert c "g" "TEACHES(x, plato)");
              check_code "unknown predicate" "semantic_error"
                (insert c "g" "NOPE(socrates)");
              check_code "retracting an absent fact" "semantic_error"
                (retract c "g" "TEACHES(plato, plato)");
              check_code "unknown database" "semantic_error"
                (insert c "nope" "TEACHES(socrates, plato)");
              check_code "bad to value" "semantic_error"
                (close_unknown ~to_:"sideways" c "g" "socrates" "plato");
              check_code "missing to field" "parse_error"
                (close_unknown c "g" "socrates" "plato");
              check_code "merging a distinct pair" "semantic_error"
                (close_unknown ~to_:"equal" c "g" "socrates" "plato");
              (* per-session counters surface in stats *)
              let stats = rpc c (op "stats" []) in
              match J.member "sessions" stats with
              | Some sessions -> (
                match J.member "g" sessions with
                | Some s ->
                  Alcotest.(check (option (float 0.)))
                    "session delta in stats" (Some 4.) (J.num_field "delta" s)
                | None -> Alcotest.fail "stats sessions without db g")
              | None -> Alcotest.fail "stats without sessions")))

(* Mutating through the server must land on the same database the
   one-shot pipeline produces: serve insert+query ≡ ldb mutate + ldb
   query on files. *)
let test_mutation_cli_parity () =
  with_db (fun db_path ->
      let q = "(x, y). TEACHES(x, y)" in
      let delta_fact = "TEACHES(mystery, plato)" in
      let mutated = Filename.temp_file "ldb_serve" ".ldb" in
      Fun.protect
        ~finally:(fun () -> Sys.remove mutated)
        (fun () ->
          let code, _ =
            run_ldb
              [ "mutate"; db_path; "--insert"; delta_fact; "--output"; mutated ]
          in
          Alcotest.(check int) "ldb mutate exit 0" 0 code;
          let code, out = run_ldb [ "query"; mutated; q ] in
          Alcotest.(check int) "one-shot query exit 0" 0 code;
          let cli_rows =
            String.split_on_char '\n' out
            |> List.filter (fun l -> l <> "" && l.[0] <> '(')
            |> List.map (fun l ->
                   String.split_on_char ',' l |> List.map String.trim)
            |> List.sort compare
          in
          with_server (fun socket ->
              with_client socket (fun c ->
                  check_code "load" "ok" (load c "g" db_path);
                  check_code "serve insert" "ok" (insert c "g" delta_fact);
                  Alcotest.(check (list (list string)))
                    "served rows equal mutate-then-query rows" cli_rows
                    (rows (query c "g" q))))))

(* --- plan-cache counters ------------------------------------------- *)

let test_plan_cache () =
  with_db (fun db_path ->
      with_server (fun socket ->
          with_client socket (fun c ->
              check_code "load" "ok" (load c "g" db_path);
              let q = "(x). exists y. TEACHES(x, y)" in
              let cache r =
                match J.str_field "cache" r with
                | Some v -> v
                | None ->
                  Alcotest.failf "response without a cache field: %s"
                    (J.to_string r)
              in
              Alcotest.(check string)
                "first compile misses" "miss"
                (cache (query c "g" q));
              Alcotest.(check string)
                "repeat hits" "hit"
                (cache (query c "g" q));
              Alcotest.(check string)
                "other kernel is a distinct plan" "miss"
                (cache (query ~extra:[ ("kernel", J.Str "strings") ] c "g" q));
              check_code "reload" "ok" (load c "g" db_path);
              Alcotest.(check string)
                "reload bumps the generation and invalidates" "miss"
                (cache (query c "g" q));
              let stats = rpc c (op "stats" []) in
              let counter k =
                match J.member "plan_cache" stats with
                | Some obj ->
                  (match J.num_field k obj with
                  | Some n -> int_of_float n
                  | None -> Alcotest.failf "plan_cache without %s" k)
                | None -> Alcotest.fail "stats without plan_cache"
              in
              Alcotest.(check int) "hits counted" 1 (counter "hits");
              Alcotest.(check int) "misses counted" 3 (counter "misses");
              Alcotest.(check int) "three plans resident" 3 (counter "entries"))))

(* --- busy / backpressure ------------------------------------------- *)

let test_busy_backpressure () =
  with_server ~workers:1 ~queue:1 ~debug_sleep:true (fun socket ->
      let sleep_req c ms = rpc c (op "sleep" [ ("ms", J.Num ms) ]) in
      let c1 = Client.connect_retry socket in
      let c2 = Client.connect_retry socket in
      let c3 = Client.connect_retry socket in
      Fun.protect
        ~finally:(fun () -> List.iter Client.close [ c1; c2; c3 ])
        (fun () ->
          let r1 = ref J.Null and r2 = ref J.Null in
          (* First request occupies the single worker, second fills the
             one-slot queue, third must be rejected immediately. *)
          let t1 = Thread.create (fun () -> r1 := sleep_req c1 800.) () in
          Thread.delay 0.2;
          let t2 = Thread.create (fun () -> r2 := sleep_req c2 800.) () in
          Thread.delay 0.2;
          check_code "full queue rejects with busy" "busy" (sleep_req c3 10.);
          Thread.join t1;
          Thread.join t2;
          check_code "in-flight request still completed" "ok" !r1;
          check_code "queued request still completed" "ok" !r2))

(* Same contention setup, but the third client retries through the
   busy window instead of giving up: request_retry resends (busy means
   the request was never admitted, so resending is safe even for
   mutations) with growing jittered backoff until a slot frees up. *)
let test_busy_retry () =
  with_server ~workers:1 ~queue:1 ~debug_sleep:true (fun socket ->
      let sleep_req c ms = rpc c (op "sleep" [ ("ms", J.Num ms) ]) in
      let c1 = Client.connect_retry socket in
      let c2 = Client.connect_retry socket in
      let c3 = Client.connect_retry socket in
      Fun.protect
        ~finally:(fun () -> List.iter Client.close [ c1; c2; c3 ])
        (fun () ->
          let t1 = Thread.create (fun () -> ignore (sleep_req c1 600.)) () in
          Thread.delay 0.2;
          let t2 = Thread.create (fun () -> ignore (sleep_req c2 600.)) () in
          Thread.delay 0.2;
          check_code "without retries the full queue answers busy" "busy"
            (sleep_req c3 10.);
          check_code "with retries the request lands once a slot frees" "ok"
            (Client.request_retry ~retries:8 ~backoff_ms:50 c3
               (J.Obj (op "sleep" [ ("ms", J.Num 10.) ])));
          Thread.join t1;
          Thread.join t2))

(* --- stale sockets -------------------------------------------------- *)

let test_stale_socket () =
  (* A dead socket file — left by a kill -9 — is probed (connect gets
     ECONNREFUSED) and silently replaced. *)
  let path = temp_socket () in
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead;
  Alcotest.(check bool) "dead socket file is on disk" true
    (Sys.file_exists path);
  with_db (fun db_path ->
      let config =
        {
          Serve.default_config with
          socket_path = path;
          preload = [ ("g", db_path) ];
        }
      in
      let server = Thread.create (fun () -> Serve.run config) () in
      Fun.protect
        ~finally:(fun () ->
          (try
             let c = Client.connect_retry path in
             ignore (Client.request c (J.Obj [ ("op", J.Str "shutdown") ]));
             Client.close c
           with _ -> ());
          Thread.join server;
          if Sys.file_exists path then Sys.remove path)
        (fun () ->
          let c = Client.connect_retry path in
          check_code "server replaced the dead socket and serves" "ok"
            (query c "g" "(x, y). TEACHES(x, y)");
          Client.close c));
  (* A live socket — another server instance — must be refused, not
     hijacked: the exe exits 2 without disturbing the running one. *)
  with_db (fun db_path ->
      with_server (fun socket ->
          with_client socket (fun c ->
              check_code "first server up" "ok" (load c "g" db_path);
              let code, _ = run_ldb [ "serve"; "--socket"; socket ] in
              Alcotest.(check int) "second server refused with exit 2" 2 code;
              check_code "first server undisturbed" "ok"
                (query c "g" "(x, y). TEACHES(x, y)"))));
  (* A path that exists but is not a socket is never deleted. *)
  let regular = Filename.temp_file "ldb_serve" ".notasock" in
  Fun.protect
    ~finally:(fun () -> Sys.remove regular)
    (fun () ->
      let code, _ = run_ldb [ "serve"; "--socket"; regular ] in
      Alcotest.(check int) "non-socket path refused with exit 2" 2 code;
      Alcotest.(check bool) "and left in place" true (Sys.file_exists regular))

(* --- per-request budgets ------------------------------------------- *)

let test_budget_exhausted () =
  with_db (fun db_path ->
      with_server (fun socket ->
          with_client socket (fun c ->
              check_code "load" "ok" (load c "g" db_path);
              (* Certainly true, so the countermodel search must visit
                 every structure — a one-structure cap always trips. *)
              let q = "(). TEACHES(socrates, plato)" in
              let capped = [ ("max_structures", J.Num 1.) ] in
              let r = boolean ~extra:capped c "g" q in
              check_code "cap trips under the default fail policy"
                "exhausted" r;
              Alcotest.(check bool)
                "trip records its cause" true
                (J.str_field "tripped" r <> None);
              let r =
                boolean
                  ~extra:(("policy", J.Str "partial") :: capped)
                  c "g" q
              in
              check_code "partial degrades instead of failing" "ok" r;
              (match J.str_field "qualified" r with
              | Some ("lower_bound" | "upper_bound") -> ()
              | other ->
                Alcotest.failf "partial answer not qualified as a bound: %s"
                  (Option.value ~default:"<none>" other));
              (* an uncapped request on the same connection is unaffected *)
              let r = boolean c "g" q in
              check_code "next request runs unbudgeted" "ok" r;
              Alcotest.(check (option string))
                "and is exact again" (Some "exact")
                (J.str_field "qualified" r))))

(* --- trace-file integrity on error exit paths ---------------------- *)

(* Every line of a --trace=json:FILE trace must parse as one JSON
   object, also when the process left through a non-zero exit after
   events were already buffered (the at_exit flush in bin/ldb). *)
let check_trace_wellformed ?(expect_events = false) path =
  let ic = open_in path in
  let lines = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then begin
            incr lines;
            match J.parse line with
            | J.Obj _ -> ()
            | _ -> Alcotest.failf "trace line is not an object: %s" line
            | exception J.Parse_error msg ->
              Alcotest.failf "unparseable trace line (%s): %s" msg line
          end
        done
      with End_of_file -> ());
  if expect_events then
    Alcotest.(check bool) "trace recorded events" true (!lines > 0)

let test_trace_flush_on_exit () =
  with_db (fun db_path ->
      let trace = Filename.temp_file "ldb_serve" ".trace" in
      Fun.protect
        ~finally:(fun () -> Sys.remove trace)
        (fun () ->
          (* exit 124: the budget trips after the resilience layer has
             already emitted span and counter events *)
          let cli_code, _ =
            run_ldb
              [
                "query"; db_path; "(). TEACHES(socrates, plato)";
                "--max-structures"; "1"; "--on-budget"; "fail";
                "--trace"; "json:" ^ trace;
              ]
          in
          Alcotest.(check int) "budget exit" 124 cli_code;
          check_trace_wellformed ~expect_events:true trace;
          (* exit 2: error path still leaves a well-formed (possibly
             empty) closed trace *)
          let cli_code, _ =
            run_ldb [ "query"; db_path; "(("; "--trace"; "json:" ^ trace ]
          in
          Alcotest.(check int) "usage exit" 2 cli_code;
          check_trace_wellformed trace))

(* --- SIGINT: exit 130 with every domain joined --------------------- *)

let test_serve_sigint () =
  with_db (fun db_path ->
      let socket = temp_socket () in
      let trace = Filename.temp_file "ldb_serve" ".trace" in
      let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      let pid =
        Unix.create_process exe
          [|
            exe; "serve"; "--socket"; socket; "--debug-sleep";
            "--db"; "g=" ^ db_path; "--trace"; "json:" ^ trace;
          |]
          null_in null_out null_out
      in
      Unix.close null_in;
      Unix.close null_out;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          if Sys.file_exists socket then Sys.remove socket;
          Sys.remove trace)
        (fun () ->
          let c = Client.connect_retry socket in
          check_code "preloaded database answers" "ok"
            (query c "g" "(x, y). TEACHES(x, y)");
          (* Park a request on the worker pool, then interrupt the
             server mid-service. *)
          let in_flight =
            Thread.create
              (fun () ->
                try ignore (rpc c (op "sleep" [ ("ms", J.Num 1500.) ]))
                with _ -> ())
              ()
          in
          Thread.delay 0.3;
          Unix.kill pid Sys.sigint;
          let _, status = Unix.waitpid [] pid in
          Thread.join in_flight;
          (try Client.close c with _ -> ());
          (match status with
          | Unix.WEXITED 130 -> ()
          | Unix.WEXITED n -> Alcotest.failf "exit %d, expected 130" n
          | Unix.WSIGNALED n ->
            Alcotest.failf "killed by signal %d, expected exit 130" n
          | Unix.WSTOPPED _ -> Alcotest.fail "stopped, expected exit 130");
          (* Teardown ran: the socket file is gone (it is removed after
             the pool's domains are joined, so its absence also pins
             the join) and the trace was flushed and closed whole. *)
          Alcotest.(check bool)
            "teardown removed the socket file" false
            (Sys.file_exists socket);
          check_trace_wellformed ~expect_events:true trace))

let suite =
  [
    Alcotest.test_case "protocol round-trips and error codes" `Quick
      test_roundtrip;
    Alcotest.test_case "concurrent clients match engine and one-shot CLI"
      `Quick test_concurrent_parity;
    Alcotest.test_case "mutations: ops, errors, epochs, invalidation" `Quick
      test_mutations;
    Alcotest.test_case "serve mutations match mutate-then-query CLI" `Quick
      test_mutation_cli_parity;
    Alcotest.test_case "plan cache: hit/miss/invalidate counters" `Quick
      test_plan_cache;
    Alcotest.test_case "full queue answers busy" `Quick test_busy_backpressure;
    Alcotest.test_case "request_retry rides out the busy window" `Quick
      test_busy_retry;
    Alcotest.test_case "stale sockets: dead replaced, live and files refused"
      `Quick test_stale_socket;
    Alcotest.test_case "per-request budget trips to exhausted" `Quick
      test_budget_exhausted;
    Alcotest.test_case "trace files are well-formed on error exits" `Quick
      test_trace_flush_on_exit;
    Alcotest.test_case "SIGINT mid-service exits 130, domains joined" `Quick
      test_serve_sigint;
  ]
