(* Unit and regression tests for Incr_session: mutation semantics and
   parity with the fresh engine, epoch accounting, and — deterministically —
   the memo-hit counters that make incremental evaluation incremental.
   The counter tests use measured deltas against the session's own
   stats, so they pin behaviour (every structure memoized, independent
   deltas keep hitting, merges reset) without hardcoding the partition
   count of the fixture. *)

open Logicaldb
module Session = Incr_session

let fact pred args = { Cw_database.pred; args }

(* Two predicates, three constants, no uniqueness axioms: every
   constant pair is unknown, so the partition stream has several
   structures and the P/R slots can be invalidated independently. *)
let base_db () =
  database
    ~predicates:[ ("P", 1); ("R", 2) ]
    ~constants:[ "a"; "b"; "c" ]
    ~facts:[ ("P", [ "a" ]); ("R", [ "a"; "b" ]) ]
    ()

let q_r = query "(x). exists y. R(x, y)"
let q_p = query "(x). ~P(x)"

let tuples rel = Relation.tuples rel |> List.sort compare

let session_answer s q =
  let rel, _ = Certain.prepared_answer_stats (Session.prepare s q) in
  tuples rel

let check_parity msg s =
  List.iter
    (fun q ->
      Alcotest.(check (list (list string)))
        (msg ^ ": " ^ Pretty.query_to_string q)
        (tuples (Certain.answer (Session.db s) q))
        (session_answer s q))
    [ q_r; q_p ]

(* --- parity across every mutation kind ----------------------------- *)

let test_mutation_parity () =
  let s = Session.create (base_db ()) in
  check_parity "fresh session" s;
  Session.insert s (fact "R" [ "b"; "c" ]);
  check_parity "after insert" s;
  Session.insert s (fact "P" [ "b" ]);
  check_parity "after second insert" s;
  Session.retract s (fact "R" [ "a"; "b" ]);
  check_parity "after retract" s;
  Session.close_unknown s "a" "b" ~to_:`Distinct;
  check_parity "after close to distinct" s;
  Session.close_unknown s "a" "c" ~to_:`Equal;
  check_parity "after close to equal" s;
  (* the merge kept "a" and dropped "c" *)
  Alcotest.(check (list string))
    "merge dropped the second constant" [ "a"; "b" ]
    (Cw_database.constants (Session.db s));
  (* boolean path parity on the mutated database *)
  let bq = query "(). exists x. P(x)" in
  let got, _ = Certain.prepared_certain_boolean_stats (Session.prepare s bq) in
  Alcotest.(check bool)
    "boolean parity on mutated db"
    (Certain.certain_boolean (Session.db s) bq)
    got

(* --- epoch accounting ---------------------------------------------- *)

let test_epochs () =
  let s = Session.create (base_db ()) in
  let delta () = Session.delta_epoch s in
  Alcotest.(check int) "starts at zero" 0 (delta ());
  Session.insert s (fact "P" [ "b" ]);
  Alcotest.(check int) "insert bumps" 1 (delta ());
  Session.insert s (fact "P" [ "b" ]);
  Alcotest.(check int) "re-inserting a present fact is a no-op" 1 (delta ());
  Session.retract s (fact "P" [ "b" ]);
  Alcotest.(check int) "retract bumps" 2 (delta ());
  (match Session.retract s (fact "P" [ "b" ]) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "retracting an absent fact must raise");
  Alcotest.(check int) "failed retract does not bump" 2 (delta ());
  (match Session.insert s (fact "NOPE" [ "a" ]) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "inserting outside the vocabulary must raise");
  Session.close_unknown s "a" "b" ~to_:`Distinct;
  Alcotest.(check int) "close to distinct bumps" 3 (delta ());
  Session.close_unknown s "a" "b" ~to_:`Distinct;
  Alcotest.(check int) "re-closing a distinct pair is a no-op" 3 (delta ());
  (match Session.close_unknown s "a" "b" ~to_:`Equal with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "merging a distinct pair must raise");
  Session.close_unknown s "a" "c" ~to_:`Equal;
  let st = Session.stats s in
  Alcotest.(check int) "merge bumps the delta epoch" 4 st.s_delta_epoch;
  Alcotest.(check int) "merge bumps the tab epoch" 1 st.s_tab_epoch

(* --- the memo-hit regression ---------------------------------------- *)

(* The contract, in counters: a first evaluation misses once per
   structure examined; re-running the same query answers every
   structure from the memo; a delta on a predicate the query never
   reads leaves the memo warm; a delta on a read predicate invalidates
   it wholesale. *)
let test_memo_hits () =
  let s = Session.create (base_db ()) in
  let eval q = ignore (Certain.prepared_answer_stats (Session.prepare s q)) in
  let counters () =
    let st = Session.stats s in
    (st.s_memo_hits, st.s_memo_misses)
  in
  eval q_r;
  let h1, m1 = counters () in
  Alcotest.(check int) "no hits on a cold session" 0 h1;
  Alcotest.(check bool) "first run computes every structure" true (m1 > 1);
  eval q_r;
  let h2, m2 = counters () in
  Alcotest.(check int) "re-run answers every structure from the memo" m1 h2;
  Alcotest.(check int) "re-run computes nothing" m1 m2;
  (* a delta on P cannot disturb a query that only reads R *)
  Session.insert s (fact "P" [ "c" ]);
  eval q_r;
  let h3, m3 = counters () in
  Alcotest.(check int) "independent delta keeps the memo warm" (2 * m1) h3;
  Alcotest.(check int) "independent delta recomputes nothing" m1 m3;
  (* a delta on R invalidates the whole memo for q_r *)
  Session.insert s (fact "R" [ "b"; "c" ]);
  eval q_r;
  let h4, m4 = counters () in
  Alcotest.(check int) "dependent delta yields no hits" h3 h4;
  Alcotest.(check bool) "dependent delta recomputes" true (m4 > m3);
  (* the slot cache is finer: the delta on R rebuilt only R's slots *)
  let st = Session.stats s in
  Alcotest.(check bool) "untouched slots were reused" true (st.s_slot_reuses > 0)

(* Closing a pair to distinct prunes the partition stream but keeps
   both the structure cache and the memo valid for the survivors. *)
let test_distinct_keeps_memos () =
  let s = Session.create (base_db ()) in
  let eval q = ignore (Certain.prepared_answer_stats (Session.prepare s q)) in
  eval q_r;
  let st1 = Session.stats s in
  Session.close_unknown s "a" "b" ~to_:`Distinct;
  eval q_r;
  let st2 = Session.stats s in
  Alcotest.(check int)
    "no recomputation after closing to distinct" st1.s_memo_misses
    st2.s_memo_misses;
  let hits = st2.s_memo_hits - st1.s_memo_hits in
  Alcotest.(check bool) "surviving structures hit the memo" true (hits > 0);
  Alcotest.(check bool)
    "the stream shrank (fewer structures than were first computed)" true
    (hits < st1.s_memo_misses)

(* A merge re-codes the constants and is the one mutation that resets
   the structure cache and every memo. *)
let test_merge_resets () =
  let s = Session.create (base_db ()) in
  let eval q = ignore (Certain.prepared_answer_stats (Session.prepare s q)) in
  eval q_p;
  Session.close_unknown s "a" "c" ~to_:`Equal;
  let st1 = Session.stats s in
  Alcotest.(check int) "merge empties the structure cache" 0
    st1.s_structures_cached;
  eval q_p;
  let st2 = Session.stats s in
  Alcotest.(check int) "no stale hits across a merge" st1.s_memo_hits
    st2.s_memo_hits;
  Alcotest.(check bool) "post-merge run recomputes" true
    (st2.s_memo_misses > st1.s_memo_misses)

(* --- prepared queries capture one immutable view --------------------- *)

let test_prepared_snapshot () =
  let s = Session.create (base_db ()) in
  let before = Session.db s in
  let p = Session.prepare s q_r in
  Session.insert s (fact "R" [ "c"; "c" ]);
  let old_rel, _ = Certain.prepared_answer_stats p in
  Alcotest.(check (list (list string)))
    "a prepared query still sees its view after a mutation"
    (tuples (Certain.answer before q_r))
    (tuples old_rel);
  Alcotest.(check (list (list string)))
    "while a fresh prepare sees the delta"
    (tuples (Certain.answer (Session.db s) q_r))
    (session_answer s q_r)

let suite =
  [
    Alcotest.test_case "mutations keep parity with the fresh engine" `Quick
      test_mutation_parity;
    Alcotest.test_case "epoch accounting across mutations" `Quick test_epochs;
    Alcotest.test_case "memo hit/miss regression" `Quick test_memo_hits;
    Alcotest.test_case "close-to-distinct keeps caches warm" `Quick
      test_distinct_keeps_memos;
    Alcotest.test_case "merge resets caches" `Quick test_merge_resets;
    Alcotest.test_case "prepared queries snapshot their view" `Quick
      test_prepared_snapshot;
  ]
