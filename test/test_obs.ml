(* The observability layer: span nesting, counter aggregation, ring
   buffer semantics, sink plumbing, JSON-lines output — and the
   regression tying the engine's stats record to the per-domain trace
   counters. *)

open Logicaldb

(* Collect the events emitted while [f] runs. *)
let collect ?capacity f =
  let buf = Obs.buffer ?capacity () in
  let result = Obs.with_sink (Obs.buffer_sink buf) f in
  (result, Obs.events buf, buf)

let span_opens evs =
  List.filter_map
    (function
      | Obs.Span_open { id; parent; name; _ } -> Some (name, id, parent)
      | _ -> None)
    evs

let span_closes evs =
  List.filter_map
    (function
      | Obs.Span_close { name; elapsed_ns; _ } -> Some (name, elapsed_ns)
      | _ -> None)
    evs

(* --- spans ---------------------------------------------------------- *)

let test_span_nesting () =
  let result, evs, _ =
    collect (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span "first" (fun () -> ())
            |> fun () -> Obs.span "second" (fun () -> 41 + 1)))
  in
  Alcotest.(check int) "span passes the result through" 42 result;
  (match span_opens evs with
  | [ ("outer", outer_id, None); ("first", _, p1); ("second", _, p2) ] ->
    Alcotest.(check (option int)) "first nests under outer" (Some outer_id) p1;
    Alcotest.(check (option int)) "second nests under outer" (Some outer_id) p2
  | opens ->
    Alcotest.failf "unexpected span_open sequence (%d events)"
      (List.length opens));
  Alcotest.(check (list string))
    "closes in stack order"
    [ "first"; "second"; "outer" ]
    (List.map fst (span_closes evs));
  List.iter
    (fun (name, elapsed) ->
      if Int64.compare elapsed 0L < 0 then
        Alcotest.failf "span %s has negative elapsed time" name)
    (span_closes evs)

let test_span_forest () =
  let _, evs, _ =
    collect (fun () ->
        Obs.span "root" (fun () ->
            Obs.span "child" (fun () -> Obs.count "inner" 7)))
  in
  match Obs.spans evs with
  | [ { Obs.tree_name = "root"; tree_children = [ child ]; _ } ] ->
    Alcotest.(check string) "child name" "child" child.Obs.tree_name;
    Alcotest.(check (list (pair string int)))
      "counter attributed to the innermost span"
      [ ("inner", 7) ]
      child.Obs.tree_counts
  | _ -> Alcotest.fail "expected a single root with one child"

let test_span_exception_safety () =
  let exception Boom in
  let raised = ref false in
  let _, evs, _ =
    collect (fun () ->
        (try Obs.span "doomed" (fun () -> raise Boom)
         with Boom -> raised := true);
        (* The stack must have been popped: a fresh span is a root. *)
        Obs.span "after" (fun () -> ()))
  in
  Alcotest.(check bool) "exception propagated" true !raised;
  Alcotest.(check (list string))
    "doomed still closed"
    [ "doomed"; "after" ]
    (List.map fst (span_closes evs));
  match span_opens evs with
  | [ _; ("after", _, parent) ] ->
    Alcotest.(check (option int)) "stack popped on exception" None parent
  | _ -> Alcotest.fail "expected exactly two spans"

let test_disabled_is_noop () =
  (* No sink installed: both calls must be inert passthroughs. *)
  Alcotest.(check bool) "no ambient sink" false (Obs.enabled ());
  let r = Obs.span "ignored" (fun () -> Obs.count "ignored" 1; "ok") in
  Alcotest.(check string) "span passthrough" "ok" r

(* --- counters ------------------------------------------------------- *)

let test_counter_aggregation () =
  let _, evs, _ =
    collect (fun () ->
        Obs.count "a" 1;
        Obs.count "b" 10;
        Obs.count "a" 2;
        Obs.count "b" (-3))
  in
  Alcotest.(check (list (pair string int)))
    "totals sum per name, sorted"
    [ ("a", 3); ("b", 7) ]
    (Obs.counter_totals evs);
  match Obs.counters_by_domain evs with
  | [ ("a", [ (_, 3) ]); ("b", [ (_, 7) ]) ] -> ()
  | _ -> Alcotest.fail "per-domain breakdown should have one domain per name"

let test_ring_capacity () =
  let _, evs, buf =
    collect ~capacity:4 (fun () ->
        for i = 1 to 10 do
          Obs.count "tick" i
        done)
  in
  Alcotest.(check int) "keeps only the capacity" 4 (List.length evs);
  Alcotest.(check int) "drop count" 6 (Obs.dropped buf);
  Alcotest.(check (list (pair string int)))
    "keeps the newest events"
    [ ("tick", 7 + 8 + 9 + 10) ]
    (Obs.counter_totals evs);
  Obs.reset buf;
  Alcotest.(check int) "reset empties" 0 (List.length (Obs.events buf));
  Alcotest.(check int) "reset clears drops" 0 (Obs.dropped buf)

let test_tee () =
  let b1 = Obs.buffer () and b2 = Obs.buffer () in
  Obs.with_sink
    (Obs.tee [ Obs.buffer_sink b1; Obs.buffer_sink b2 ])
    (fun () -> Obs.span "s" (fun () -> Obs.count "c" 5));
  Alcotest.(check int) "both sinks see all events" (List.length (Obs.events b1))
    (List.length (Obs.events b2));
  Alcotest.(check (list (pair string int)))
    "same counters" (Obs.counter_totals (Obs.events b1))
    (Obs.counter_totals (Obs.events b2))

(* --- JSON lines ----------------------------------------------------- *)

(* A tiny recursive-descent JSON parser — just enough to assert that
   every line the jsonl sink writes is well-formed JSON. Returns unit;
   raises Failure on malformed input. *)
let check_json (s : string) : unit =
  let pos = ref 0 in
  let n = String.length s in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = failwith (Printf.sprintf "%s at %d in %s" msg !pos s) in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      advance ()
    done
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let parse_number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let seen = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        seen := true;
        advance ()
      done;
      if not !seen then fail "expected digits"
    in
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let parse_word w =
    if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
    then pos := !pos + String.length w
    else fail ("expected " ^ w)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
    | Some 't' -> parse_word "true"
    | Some 'f' -> parse_word "false"
    | Some 'n' -> parse_word "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "unexpected character"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let test_jsonl_parseable () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.with_sink (Obs.jsonl_sink oc) (fun () ->
          Obs.span "outer \"quoted\\name\"" (fun () ->
              Obs.count "structures" 3;
              Obs.span "inner" (fun () -> ())));
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "five events, five lines" 5 (List.length lines);
      List.iter check_json lines;
      (* Every line is an object naming its event type. *)
      List.iter
        (fun line ->
          if not (String.length line > 9 && String.sub line 0 9 = {|{"type":"|})
          then Alcotest.failf "line lacks a type field: %s" line)
        lines)

let test_json_escaping () =
  let json = Obs.event_to_json
      (Obs.Count { name = "weird \"name\"\n\t\\"; span = None; domain = 0; value = 1 })
  in
  check_json json

(* --- the stats/trace regression ------------------------------------ *)

(* A database large enough that a domains=4 scan actually distributes
   chunks: 8 constants, 4 of them unseparated (many kernel
   partitions). *)
let regression_db () =
  database
    ~predicates:[ ("P", 1); ("R", 2) ]
    ~constants:[ "a"; "b"; "c"; "d"; "u1"; "u2"; "u3"; "u4" ]
    ~facts:
      [
        ("P", [ "a" ]);
        ("P", [ "u1" ]);
        ("R", [ "a"; "b" ]);
        ("R", [ "b"; "c" ]);
        ("R", [ "u2"; "d" ]);
      ]
    ~distinct:[ ("a", "b"); ("a", "c"); ("b", "c"); ("c", "d") ]
    ()

let test_stats_match_trace_counters () =
  let db = regression_db () in
  let q = query "(x). ~P(x)" in
  let (_, stats), evs, buf =
    collect (fun () -> Certain.answer_stats ~domains:4 db q)
  in
  Alcotest.(check int) "no events dropped" 0 (Obs.dropped buf);
  let by_domain = Obs.counters_by_domain evs in
  let total name =
    match List.assoc_opt name by_domain with
    | None -> 0
    | Some per -> List.fold_left (fun acc (_, v) -> acc + v) 0 per
  in
  Alcotest.(check int)
    "stats.structures = sum of per-domain certain.structures"
    stats.Certain.structures
    (total "certain.structures");
  Alcotest.(check int)
    "stats.evaluations = sum of per-domain certain.evaluations"
    stats.Certain.evaluations
    (total "certain.evaluations");
  Alcotest.(check int)
    "stats.pruned_candidates = certain.pruned"
    stats.Certain.pruned_candidates (total "certain.pruned");
  Alcotest.(check int)
    "stats.early_exit = certain.early_exit"
    (if stats.Certain.early_exit then 1 else 0)
    (total "certain.early_exit");
  Alcotest.(check bool)
    "parallel scan requested at least two domains" true
    (stats.Certain.domains_used >= 2);
  (* The same equalities must hold for a sequential scan. *)
  let (_, seq_stats), seq_evs, _ =
    collect (fun () -> Certain.answer_stats db q)
  in
  Alcotest.(check int)
    "sequential structures match too"
    seq_stats.Certain.structures
    (List.fold_left
       (fun acc ev ->
         match ev with
         | Obs.Count { name = "certain.structures"; value; _ } -> acc + value
         | _ -> acc)
       0 seq_evs);
  Alcotest.(check int) "sequential domains_used" 1 seq_stats.Certain.domains_used

let test_parallel_equals_sequential_under_trace () =
  (* Tracing must not perturb results. *)
  let db = regression_db () in
  let q = query "(x). exists y. R(x, y)" in
  let bare = Certain.answer db q in
  let traced, _, _ = collect (fun () -> Certain.answer ~domains:4 db q) in
  Alcotest.(check bool) "same answer" true (Relation.equal bare traced)

(* --- sink hardening ------------------------------------------------- *)

let test_raising_sink_is_contained () =
  (* A sink whose emit raises from worker domains must be caught,
     counted and disabled — the parallel engine's verdict unchanged. *)
  let db = regression_db () in
  let q = query "(x). exists y. R(x, y)" in
  let bare = Certain.answer db q in
  let errors_before = Obs.sink_errors () in
  let result, disabled_mid_run =
    Obs.with_sink
      (Faults.raising_sink ())
      (fun () ->
        let r = Certain.answer ~domains:4 db q in
        (r, not (Obs.enabled ())))
  in
  Alcotest.(check bool) "same answer under a raising sink" true
    (Relation.equal bare result);
  Alcotest.(check bool) "failed sink was disabled in place" true
    disabled_mid_run;
  Alcotest.(check bool) "errors were counted" true
    (Obs.sink_errors () > errors_before)

let test_raising_flush_is_contained () =
  (* after:max_int — emit stays healthy, only the uninstall flush
     raises; with_sink must still return normally. *)
  let errors_before = Obs.sink_errors () in
  let result =
    Obs.with_sink
      (Faults.raising_sink ~after:max_int ())
      (fun () -> Obs.span "quiet" (fun () -> 7))
  in
  Alcotest.(check int) "result survives a raising flush" 7 result;
  Alcotest.(check bool) "flush error counted" true
    (Obs.sink_errors () > errors_before)

let suite =
  [
    Alcotest.test_case "span nesting and close order" `Quick test_span_nesting;
    Alcotest.test_case "span forest reconstruction" `Quick test_span_forest;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "disabled layer is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "counter aggregation" `Quick test_counter_aggregation;
    Alcotest.test_case "ring buffer capacity and reset" `Quick test_ring_capacity;
    Alcotest.test_case "tee duplicates the stream" `Quick test_tee;
    Alcotest.test_case "jsonl output is parseable" `Quick test_jsonl_parseable;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "stats equal per-domain trace counters (domains=4)"
      `Quick test_stats_match_trace_counters;
    Alcotest.test_case "tracing does not change answers" `Quick
      test_parallel_equals_sequential_under_trace;
    Alcotest.test_case "raising sink under domains=4 is contained" `Quick
      test_raising_sink_is_contained;
    Alcotest.test_case "raising flush is contained" `Quick
      test_raising_flush_is_contained;
  ]
