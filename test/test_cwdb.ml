(* Tests for CW logical databases: construction, axioms, Ph₁/Ph₂,
   mappings, partitions, virtual NE. *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let socrates = Support.socrates_db ()

(* --- construction and validation --- *)

let test_make_validation () =
  let v = Vocabulary.make ~constants:[ "a" ] ~predicates:[ ("P", 1) ] in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Cw_database.make ~vocabulary:v
        ~facts:[ { Cw_database.pred = "Q"; args = [ "a" ] } ]
        ~distinct:[]);
  expect_invalid (fun () ->
      Cw_database.make ~vocabulary:v
        ~facts:[ { Cw_database.pred = "P"; args = [ "a"; "a" ] } ]
        ~distinct:[]);
  expect_invalid (fun () ->
      Cw_database.make ~vocabulary:v ~facts:[] ~distinct:[ ("a", "a") ]);
  expect_invalid (fun () ->
      Cw_database.make ~vocabulary:v ~facts:[] ~distinct:[ ("a", "zzz") ]);
  expect_invalid (fun () ->
      Cw_database.make
        ~vocabulary:(Vocabulary.make ~constants:[] ~predicates:[])
        ~facts:[] ~distinct:[])

let test_distinct_pairs_normalized () =
  let db =
    database ~constants:[ "a"; "b" ] ~distinct:[ ("b", "a"); ("a", "b") ] ()
  in
  check
    Alcotest.(list (pair string string))
    "normalized and deduplicated"
    [ ("a", "b") ]
    (Cw_database.distinct_pairs db);
  check_bool "symmetric lookup" true (Cw_database.are_distinct db "b" "a")

let test_fully_specified () =
  check_bool "socrates not fully specified" false
    (Cw_database.is_fully_specified socrates);
  let full = Cw_database.fully_specify socrates in
  check_bool "now fully specified" true (Cw_database.is_fully_specified full);
  check_int "all pairs" 3 (List.length (Cw_database.distinct_pairs full))

let test_known_unknown () =
  (* mystery is separated from nobody; socrates and plato are separated
     from each other but not from mystery, so nothing is fully known. *)
  check
    Alcotest.(list string)
    "unknowns"
    [ "mystery"; "plato"; "socrates" ]
    (Cw_database.unknown_values socrates);
  let full = Cw_database.fully_specify socrates in
  check Alcotest.(list string) "no unknowns once fully specified" []
    (Cw_database.unknown_values full)

(* --- the five-component theory --- *)

let test_axioms_shapes () =
  check_int "atomic facts" 1 (List.length (Axioms.atomic_facts socrates));
  check_int "uniqueness" 1 (List.length (Axioms.uniqueness socrates));
  let closure = Axioms.domain_closure socrates in
  check Support.formula_testable "domain closure"
    (Parser.formula "forall x. x = mystery \\/ x = plato \\/ x = socrates")
    closure;
  let completion = Axioms.completion socrates "TEACHES" in
  check Support.formula_testable "completion"
    (Parser.formula
       "forall x0, x1. TEACHES(x0, x1) -> x0 = socrates /\\ x1 = plato")
    completion

let test_completion_empty_predicate () =
  let db = database ~predicates:[ ("P", 1) ] ~constants:[ "a" ] () in
  check Support.formula_testable "empty completion"
    (Parser.formula "forall x0. ~P(x0)")
    (Axioms.completion db "P")

let test_ph1_is_model () =
  check_bool "Ph1 satisfies T" true (Axioms.is_model socrates (Ph.ph1 socrates));
  check_bool "Ph1 satisfies T (personnel)" true
    (Axioms.is_model (Support.personnel_db ()) (Ph.ph1 (Support.personnel_db ())))

let test_non_model () =
  (* Dropping a fact from Ph1 falsifies the atomic fact axiom. *)
  let ph1 = Ph.ph1 socrates in
  let broken = Database.with_relation ph1 "TEACHES" (Relation.empty 2) in
  check_bool "missing fact" false (Axioms.is_model socrates broken);
  (* Adding a tuple violates the completion axiom. *)
  let extended =
    Database.with_relation ph1 "TEACHES"
      (Relation.of_tuples 2 [ [ "socrates"; "plato" ]; [ "plato"; "plato" ] ])
  in
  check_bool "extra fact" false (Axioms.is_model socrates extended)

(* --- Ph₁ / Ph₂ --- *)

let test_ph1 () =
  let pb = Ph.ph1 socrates in
  check
    Alcotest.(list string)
    "domain = C"
    [ "mystery"; "plato"; "socrates" ]
    (Database.domain pb);
  check Alcotest.string "identity on constants" "plato"
    (Database.constant pb "plato");
  check_bool "facts stored" true
    (Relation.mem [ "socrates"; "plato" ] (Database.relation pb "TEACHES"))

let test_ph2 () =
  let pb = Ph.ph2 socrates in
  let ne = Database.relation pb Ph.ne_predicate in
  check_int "NE stored symmetrically" 2 (Relation.cardinal ne);
  check_bool "NE pair" true (Relation.mem [ "plato"; "socrates" ] ne);
  check_bool "NE mirror" true (Relation.mem [ "socrates"; "plato" ] ne);
  (* NE must not leak into Ph1. *)
  check_bool "ph1 has no NE" true
    (Option.is_none (Database.relation_opt (Ph.ph1 socrates) Ph.ne_predicate))

(* --- mappings --- *)

let test_mapping_basics () =
  let h = Mapping.of_assoc socrates [ ("mystery", "socrates") ] in
  check Alcotest.string "mapped" "socrates" (Mapping.apply h "mystery");
  check Alcotest.string "identity elsewhere" "plato" (Mapping.apply h "plato");
  check_bool "respects" true (Mapping.respects h);
  let bad = Mapping.of_assoc socrates [ ("socrates", "plato") ] in
  check_bool "violates uniqueness" false (Mapping.respects bad)

let test_mapping_image () =
  let h = Mapping.of_assoc socrates [ ("mystery", "socrates") ] in
  let image = Mapping.image_db h in
  check_int "collapsed domain" 2 (Database.domain_size image);
  check Alcotest.string "constant moved" "socrates"
    (Database.constant image "mystery");
  (* The image of a respecting mapping is still a model of T
     (paper, proof of Theorem 1). *)
  check_bool "image is a model" true (Axioms.is_model socrates image)

let contains_substring haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_mapping_duplicate_bindings () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument msg ->
      check_bool "message names the constant" true
        (contains_substring msg "mystery")
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  (* Contradictory duplicate: the old assoc lookup silently kept the
     first binding. *)
  expect_invalid (fun () ->
      Mapping.of_assoc socrates
        [ ("mystery", "socrates"); ("mystery", "plato") ]);
  (* Even a consistent duplicate is rejected. *)
  expect_invalid (fun () ->
      Mapping.of_assoc socrates
        [ ("mystery", "socrates"); ("mystery", "socrates") ])

let test_mapping_counting_exact () =
  (* 13^13 = 302875106592253 does not round-trip through the old
     float-based counter's [int_of_float]-under-cap path; the integer
     counter is exact and the cap error fires before any enumeration. *)
  let db13 = database ~constants:(List.init 13 (Printf.sprintf "c%d")) () in
  check_bool "13^13 exact" true (Mapping.count_all db13 = 302875106592253);
  (* The cap check runs before the sequence is built, so the error is
     raised by the [Mapping.all] call itself, not by forcing. *)
  (match ignore (Mapping.all db13 : Mapping.t Seq.t) with
  | exception Invalid_argument msg ->
    check_bool "cap error mentions the size" true
      (contains_substring msg "13^13")
  | () -> Alcotest.fail "expected the enumeration cap to fire");
  (* Below the cap the enumeration is exhaustive: 2^2 = 4. *)
  let db2 = database ~constants:[ "a"; "b" ] () in
  check_int "2^2 enumerated" 4 (List.length (List.of_seq (Mapping.all db2)));
  check_bool "count_all saturates instead of overflowing" true
    (Mapping.count_all
       (database ~constants:(List.init 30 (Printf.sprintf "c%d")) ())
    = max_int)

let test_mapping_enumeration () =
  let all = List.of_seq (Mapping.all socrates) in
  check_int "3^3 mappings" 27 (List.length all);
  let respecting = List.of_seq (Mapping.all_respecting socrates) in
  (* h(socrates) ≠ h(plato): 27 minus mappings sending both to the same
     element. Count directly instead of trusting arithmetic. *)
  let direct =
    List.length (List.filter Mapping.respects all)
  in
  check_int "respecting count matches filter" direct (List.length respecting);
  check_bool "identity respects" true
    (List.exists (Mapping.equal (Mapping.identity socrates)) respecting)

(* --- partitions --- *)

let test_partition_discrete () =
  let p = Partition.discrete socrates in
  check_int "three singleton blocks" 3 (List.length (Partition.blocks p));
  check Alcotest.string "self representative" "plato"
    (Partition.representative p "plato")

let test_partition_of_blocks () =
  let p =
    Partition.of_blocks socrates [ [ "mystery"; "socrates" ]; [ "plato" ] ]
  in
  check Alcotest.string "merged representative" "mystery"
    (Partition.representative p "socrates");
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  (* merging a distinct pair *)
  expect_invalid (fun () ->
      Partition.of_blocks socrates [ [ "socrates"; "plato" ]; [ "mystery" ] ]);
  (* missing constant *)
  expect_invalid (fun () -> Partition.of_blocks socrates [ [ "socrates" ] ]);
  (* double coverage *)
  expect_invalid (fun () ->
      Partition.of_blocks socrates
        [ [ "socrates"; "mystery" ]; [ "plato"; "mystery" ] ])

let test_partition_enumeration () =
  (* Partitions of {mystery, plato, socrates} whose blocks avoid the
     pair (socrates, plato): 5 total partitions of a 3-set, minus
     {sp}{m} and {spm}, leaving 3. *)
  check_int "valid partitions" 3 (Partition.count_valid socrates);
  let all = List.of_seq (Partition.all_valid socrates) in
  check_bool "discrete first" true
    (Partition.equal (List.hd all) (Partition.discrete socrates));
  (* A fully specified database admits only the discrete partition. *)
  check_int "fully specified: 1 partition" 1
    (Partition.count_valid (Cw_database.fully_specify socrates))

let test_partition_orders () =
  (* Both orders enumerate the same set of partitions. *)
  let sort ps =
    List.sort compare (List.map Partition.blocks ps)
  in
  check
    Alcotest.(list (list (list string)))
    "same partition set"
    (sort (List.of_seq (Partition.all_valid ~order:Partition.Fresh_first socrates)))
    (sort (List.of_seq (Partition.all_valid ~order:Partition.Merge_first socrates)));
  (* Merge-first on an unconstrained database starts with the single
     all-in-one block. *)
  let free = database ~constants:[ "a"; "b"; "c" ] () in
  (match List.of_seq (Partition.all_valid ~order:Partition.Merge_first free) with
  | first :: _ ->
    check Alcotest.int "one block first" 1 (List.length (Partition.blocks first))
  | [] -> Alcotest.fail "no partitions");
  (* Fresh-first starts discrete. *)
  match List.of_seq (Partition.all_valid ~order:Partition.Fresh_first free) with
  | first :: _ ->
    check Alcotest.int "discrete first" 3 (List.length (Partition.blocks first))
  | [] -> Alcotest.fail "no partitions"

let test_partition_enumeration_large () =
  (* Regression for the left-nested [Seq.append] in [all_valid]: with
     |C| = 10 and no distinct pairs every partition is valid, so the
     stream has Bell(10) = 115975 elements. The quadratic nesting made
     this walk take minutes; the right-nested stream finishes in well
     under the budget. *)
  let db = database ~constants:(List.init 10 (Printf.sprintf "c%d")) () in
  let started = Unix.gettimeofday () in
  let count = Seq.fold_left (fun n _ -> n + 1) 0 (Partition.all_valid db) in
  let elapsed = Unix.gettimeofday () -. started in
  check_int "Bell(10) partitions" 115975 count;
  check_int "count_valid agrees" 115975 (Partition.count_valid db);
  check_bool
    (Printf.sprintf "enumeration under 30s budget (took %.1fs)" elapsed)
    true (elapsed < 30.0)

let test_partition_quotient_is_model () =
  List.iter
    (fun p -> check_bool "quotient is a model" true
        (Axioms.is_model socrates (Partition.quotient p)))
    (List.of_seq (Partition.all_valid socrates))

(* Kernel-partition count equals the number of distinct kernels of
   respecting mappings (sanity of the symmetry argument). *)
let partition_counts_match_mappings =
  QCheck2.Test.make ~count:60 ~name:"partitions = mapping kernels"
    ~print:Support.print_db Support.gen_cw_database
    (fun db ->
      let kernels = Hashtbl.create 16 in
      Seq.iter
        (fun h ->
          let constants = Cw_database.constants db in
          let blocks = Hashtbl.create 8 in
          List.iter
            (fun c ->
              let img = Mapping.apply h c in
              let cur =
                Option.value ~default:[] (Hashtbl.find_opt blocks img)
              in
              Hashtbl.replace blocks img (c :: cur))
            constants;
          let kernel =
            Hashtbl.fold (fun _ cs acc -> List.sort compare cs :: acc) blocks []
            |> List.sort compare
          in
          Hashtbl.replace kernels kernel ())
        (Mapping.all_respecting db);
      Hashtbl.length kernels = Partition.count_valid db)

(* --- virtual NE --- *)

let test_ne_virtual_socrates () =
  let nev = Ne_virtual.make socrates in
  (* Everybody is unknown here (mystery separates nobody). *)
  check_int "unknowns" 3 (List.length (Ne_virtual.unknowns nev));
  check_bool "stored pair" true (Ne_virtual.holds nev "socrates" "plato");
  check_bool "unknown pair absent" false (Ne_virtual.holds nev "mystery" "plato")

let test_ne_virtual_fully_specified () =
  let full = Cw_database.fully_specify socrates in
  let nev = Ne_virtual.make full in
  check_int "no unknowns" 0 (List.length (Ne_virtual.unknowns nev));
  check_int "nothing stored" 0 (List.length (Ne_virtual.stored_pairs nev));
  check_bool "reduces to inequality" true (Ne_virtual.holds nev "plato" "socrates");
  check_bool "never reflexive" false (Ne_virtual.holds nev "plato" "plato")

(* Virtual NE agrees with the explicit NE of Ph₂ on every pair. *)
let ne_virtual_agrees =
  QCheck2.Test.make ~count:150 ~name:"virtual NE = explicit NE"
    ~print:Support.print_db Support.gen_cw_database
    (fun db ->
      let nev = Ne_virtual.make db in
      let ne = Database.relation (Ph.ph2 db) Ph.ne_predicate in
      let constants = Cw_database.constants db in
      List.for_all
        (fun c ->
          List.for_all
            (fun d -> Ne_virtual.holds nev c d = Relation.mem [ c; d ] ne)
            constants)
        constants)

(* Virtual NE storage never exceeds explicit storage. *)
let ne_virtual_compact =
  QCheck2.Test.make ~count:150 ~name:"virtual NE storage bound"
    ~print:Support.print_db Support.gen_cw_database
    (fun db ->
      let nev = Ne_virtual.make db in
      Ne_virtual.storage_size nev
      <= Ne_virtual.explicit_size db + List.length (Ne_virtual.unknowns nev))

(* --- query checks --- *)

let test_query_check () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  Query_check.validate socrates (Parser.query "(x). TEACHES(x, plato)");
  expect_invalid (fun () ->
      Query_check.validate socrates (Parser.query "(x). NOPE(x)"));
  expect_invalid (fun () ->
      Query_check.validate socrates (Parser.query "(x). TEACHES(x)"));
  expect_invalid (fun () ->
      Query_check.validate socrates (Parser.query "(x). TEACHES(x, aristotle)"));
  expect_invalid (fun () ->
      Query_check.validate_tuple socrates
        (Parser.query "(x). TEACHES(x, plato)")
        [ "a"; "b" ])

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "distinct pairs normalized" `Quick
      test_distinct_pairs_normalized;
    Alcotest.test_case "fully specified" `Quick test_fully_specified;
    Alcotest.test_case "known/unknown values" `Quick test_known_unknown;
    Alcotest.test_case "axiom shapes" `Quick test_axioms_shapes;
    Alcotest.test_case "empty completion" `Quick test_completion_empty_predicate;
    Alcotest.test_case "Ph1 is a model" `Quick test_ph1_is_model;
    Alcotest.test_case "non-models rejected" `Quick test_non_model;
    Alcotest.test_case "Ph1 construction" `Quick test_ph1;
    Alcotest.test_case "Ph2 construction" `Quick test_ph2;
    Alcotest.test_case "mapping basics" `Quick test_mapping_basics;
    Alcotest.test_case "mapping image" `Quick test_mapping_image;
    Alcotest.test_case "mapping duplicate bindings" `Quick
      test_mapping_duplicate_bindings;
    Alcotest.test_case "mapping counting exact" `Quick
      test_mapping_counting_exact;
    Alcotest.test_case "mapping enumeration" `Quick test_mapping_enumeration;
    Alcotest.test_case "discrete partition" `Quick test_partition_discrete;
    Alcotest.test_case "partition of blocks" `Quick test_partition_of_blocks;
    Alcotest.test_case "partition enumeration" `Quick test_partition_enumeration;
    Alcotest.test_case "partition orders" `Quick test_partition_orders;
    Alcotest.test_case "partition enumeration |C|=10" `Slow
      test_partition_enumeration_large;
    Alcotest.test_case "quotients are models" `Quick
      test_partition_quotient_is_model;
    Support.qcheck_case partition_counts_match_mappings;
    Alcotest.test_case "virtual NE (socrates)" `Quick test_ne_virtual_socrates;
    Alcotest.test_case "virtual NE (fully specified)" `Quick
      test_ne_virtual_fully_specified;
    Support.qcheck_case ne_virtual_agrees;
    Support.qcheck_case ne_virtual_compact;
    Alcotest.test_case "query checks" `Quick test_query_check;
  ]
