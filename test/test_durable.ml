(* Durability and crash recovery: WAL framing and scanning, torn-tail
   truncation at every byte boundary, mid-log corruption refusal,
   snapshot/recovery edge cases, directed fault injection, the
   `ldb recover` CLI against the checked-in corpus, and the daemon
   end-to-end paths — kill -9 replay, restart recovery and SIGTERM
   drain. The library-level tests drive Wal / Snapshot / Recovery /
   Durable_store directly; the daemon tests spawn ../bin/ldb.exe. *)

open Logicaldb
module Session = Incr_session
module Store = Durable_store
module J = Serve_json
module Client = Serve_client

let exe = "../bin/ldb.exe"

(* --- harness -------------------------------------------------------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "ldb_durable" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

let run_ldb args =
  let out_file = Filename.temp_file "ldb_durable" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out_file)
    (fun () ->
      let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      let out = Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      let null_err = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      let pid =
        Unix.create_process exe (Array.of_list (exe :: args)) null_in out
          null_err
      in
      Unix.close null_in;
      Unix.close out;
      Unix.close null_err;
      let _, status = Unix.waitpid [] pid in
      let code =
        match status with
        | Unix.WEXITED n -> n
        | Unix.WSIGNALED n -> Alcotest.failf "killed by signal %d" n
        | Unix.WSTOPPED n -> Alcotest.failf "stopped by signal %d" n
      in
      let ic = open_in out_file in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (code, text))

let seed_db () = Support.socrates_db ()

let fact pred args = { Cw_database.pred; args }
let ins pred args = Session.Insert (fact pred args)
let db_equal = Alcotest.testable Cw_database.pp Cw_database.equal

(* A deterministic 4-record script over the socrates vocabulary,
   exercising every WAL tag: insert, retract, close-distinct,
   close-equal (merge). *)
let script =
  [
    ins "TEACHES" [ "mystery"; "socrates" ];
    Session.Retract (fact "TEACHES" [ "socrates"; "plato" ]);
    Session.Close { left = "socrates"; right = "mystery"; equal = false };
    Session.Close { left = "plato"; right = "mystery"; equal = true };
  ]

let apply_script db ms =
  let s = Session.create db in
  List.iter (fun m -> ignore (Session.apply s m)) ms;
  s

(* --- WAL framing ---------------------------------------------------- *)

let test_wal_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Wal.path dir in
      let w = Wal.open_ ~sync:Wal.Always path in
      List.iteri (fun i m -> Wal.append w ~seq:(i + 1) m) script;
      let counters = Wal.counters w in
      Alcotest.(check int) "appends counted" 4 counters.Wal.c_appends;
      Alcotest.(check bool) "every append fsynced" true
        (counters.Wal.c_fsyncs >= 4);
      Wal.close w;
      let scan = Wal.scan path in
      Alcotest.(check int) "all records scanned" 4
        (List.length scan.Wal.entries);
      Alcotest.(check int) "no torn tail" 0 scan.Wal.torn;
      Alcotest.(check (list int)) "sequence numbers are contiguous"
        [ 1; 2; 3; 4 ]
        (List.map (fun e -> e.Wal.e_seq) scan.Wal.entries);
      List.iter2
        (fun m e ->
          Alcotest.(check bool) "mutation round-trips" true
            (m = e.Wal.e_mutation))
        script scan.Wal.entries;
      (* a missing file scans as an empty, clean log *)
      let empty = Wal.scan (Filename.concat dir "absent.log") in
      Alcotest.(check int) "missing file: no entries" 0
        (List.length empty.Wal.entries))

let test_wal_torn_every_byte () =
  with_temp_dir (fun dir ->
      let path = Wal.path dir in
      let w = Wal.open_ ~sync:Wal.Always path in
      List.iteri (fun i m -> Wal.append w ~seq:(i + 1) m) script;
      Wal.close w;
      let full = Wal.scan path in
      let last = List.nth full.Wal.entries 3 in
      let whole = In_channel.with_open_bin path In_channel.input_all in
      (* Truncate the file at every byte inside the final record: the
         scan must keep exactly the first three records and flag the
         remainder as torn — never raise, never resurrect a partial
         record. *)
      let torn_path = Filename.concat dir "torn.log" in
      for cut = last.Wal.e_off to String.length whole - 1 do
        Out_channel.with_open_bin torn_path (fun oc ->
            Out_channel.output_string oc (String.sub whole 0 cut));
        let scan = Wal.scan torn_path in
        Alcotest.(check int)
          (Printf.sprintf "cut at byte %d keeps 3 records" cut)
          3
          (List.length scan.Wal.entries);
        Alcotest.(check int)
          (Printf.sprintf "cut at byte %d: good ends at the boundary" cut)
          last.Wal.e_off scan.Wal.good;
        Alcotest.(check int)
          (Printf.sprintf "cut at byte %d: tail is torn" cut)
          (cut - last.Wal.e_off) scan.Wal.torn;
        (* truncation repairs it *)
        Wal.truncate_torn torn_path ~good:scan.Wal.good;
        let clean = Wal.scan torn_path in
        Alcotest.(check int) "truncated log is clean" 0 clean.Wal.torn
      done)

let test_wal_midlog_corrupt () =
  with_temp_dir (fun dir ->
      let path = Wal.path dir in
      let w = Wal.open_ ~sync:Wal.Always path in
      List.iteri (fun i m -> Wal.append w ~seq:(i + 1) m) script;
      Wal.close w;
      let full = Wal.scan path in
      let first = List.hd full.Wal.entries in
      let last = List.nth full.Wal.entries 3 in
      (* Flip a payload bit of record 1: its CRC fails with intact
         records after it — that is not a torn tail, it is lost
         acknowledged history, and the scan must refuse. *)
      let payload_bit = (first.Wal.e_off + 4 + 8) * 8 + 3 in
      Wal.corrupt path ~bit:payload_bit;
      (match Wal.scan path with
      | exception Wal.Corrupt { offset; _ } ->
        Alcotest.(check int) "corruption located at record 1" first.Wal.e_off
          offset
      | _ -> Alcotest.fail "mid-log corruption not detected");
      Wal.corrupt path ~bit:payload_bit (* flip back *);
      Alcotest.(check int) "repaired log scans whole" 4
        (List.length (Wal.scan path).Wal.entries);
      (* The same flip in the FINAL record is indistinguishable from a
         torn tail and is treated as one. *)
      let final_bit = (last.Wal.e_off + 4 + 8) * 8 + 3 in
      Wal.corrupt path ~bit:final_bit;
      let scan = Wal.scan path in
      Alcotest.(check int) "final-record damage keeps the prefix" 3
        (List.length scan.Wal.entries);
      Alcotest.(check bool) "and reports a torn tail" true (scan.Wal.torn > 0))

(* --- recovery edges -------------------------------------------------- *)

let test_recovery_edges () =
  let db = seed_db () in
  (* empty WAL: a store that never committed recovers to its seed *)
  with_temp_dir (fun dir ->
      let store = Store.create ~dir db in
      Store.abandon store;
      let r = Recovery.recover dir in
      Alcotest.check db_equal "empty log recovers the seed" db
        (Session.db r.Recovery.r_session);
      Alcotest.(check int) "seq 0" 0 r.Recovery.r_seq;
      Alcotest.(check int) "nothing replayed" 0 r.Recovery.r_replayed);
  (* snapshot-only: after a checkpoint the log is empty and recovery
     reads state from the snapshot alone *)
  with_temp_dir (fun dir ->
      let store = Store.create ~dir ~snapshot_every:0 db in
      List.iter (fun m -> ignore (Store.commit store m)) script;
      Store.checkpoint store;
      Store.abandon store;
      let r = Recovery.recover dir in
      Alcotest.(check int) "snapshot carries the whole history" 4
        r.Recovery.r_snapshot_seq;
      Alcotest.(check int) "nothing replayed" 0 r.Recovery.r_replayed;
      Alcotest.check db_equal "snapshot-only state"
        (Session.db (apply_script db script))
        (Session.db r.Recovery.r_session);
      Alcotest.(check int) "delta epoch survives the checkpoint"
        (Session.delta_epoch (apply_script db script))
        r.Recovery.r_delta);
  (* auto-checkpoint: snapshot_every=2 checkpoints mid-script, recovery
     composes snapshot + log tail *)
  with_temp_dir (fun dir ->
      let store = Store.create ~dir ~snapshot_every:2 db in
      List.iter (fun m -> ignore (Store.commit store m)) script;
      ignore (Store.commit store (ins "TEACHES" [ "plato"; "plato" ]));
      Alcotest.(check bool) "auto-checkpoint fired" true
        (Store.snapshots store >= 2);
      Store.abandon store;
      let r = Recovery.recover dir in
      Alcotest.(check int) "recovered through snapshot and tail" 5
        r.Recovery.r_seq;
      Alcotest.(check bool) "tail shorter than the script" true
        (r.Recovery.r_replayed < 5);
      Alcotest.check db_equal "composed state"
        (Session.db
           (apply_script db (script @ [ ins "TEACHES" [ "plato"; "plato" ] ])))
        (Session.db r.Recovery.r_session))

(* closing socrates|plato as distinct is a no-op: TEACHES(socrates,
   plato) already separates them under the unique-name reading *)
let already_distinct =
  Session.Close { left = "socrates"; right = "plato"; equal = false }

let test_noops_and_invalid () =
  let db = seed_db () in
  with_temp_dir (fun dir ->
      let store = Store.create ~dir ~snapshot_every:0 db in
      (* no-op mutations are acknowledged but never logged: replaying
         them would bump the delta epoch recovery must not invent *)
      let before = (Store.wal_counters store).Wal.c_appends in
      (match Store.commit store (ins "TEACHES" [ "socrates"; "plato" ]) with
      | `Noop -> ()
      | `Applied _ -> Alcotest.fail "inserting a present fact applied");
      ignore (Store.commit store already_distinct);
      Alcotest.(check int) "no-ops not logged" before
        (Store.wal_counters store).Wal.c_appends;
      Alcotest.(check int) "no-ops do not advance seq" 0 (Store.seq store);
      (* invalid mutations raise and leave no trace in the log *)
      (match Store.commit store (Session.Retract (fact "TEACHES" [ "plato"; "socrates" ])) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "retracting an absent fact succeeded");
      Alcotest.(check int) "failed commits not logged" before
        (Store.wal_counters store).Wal.c_appends;
      Store.abandon store;
      let r = Recovery.recover dir in
      Alcotest.(check int) "recovered seq 0" 0 r.Recovery.r_seq;
      Alcotest.(check int) "recovered delta 0" 0 r.Recovery.r_delta)

let test_sync_modes () =
  List.iter
    (fun (s, name) ->
      Alcotest.(check (option string))
        ("sync mode " ^ name ^ " round-trips") (Some name)
        (Option.map Wal.sync_to_string (Wal.sync_of_string name));
      Alcotest.(check bool) "to_string agrees" true
        (String.equal (Wal.sync_to_string s) name))
    [ (Wal.Always, "always"); (Wal.Batch, "batch"); (Wal.Never, "never") ];
  Alcotest.(check bool) "unknown mode rejected" true
    (Wal.sync_of_string "sometimes" = None);
  let db = seed_db () in
  List.iter
    (fun sync ->
      with_temp_dir (fun dir ->
          let store = Store.create ~dir ~sync ~snapshot_every:0 db in
          List.iter (fun m -> ignore (Store.commit store m)) script;
          Store.flush store;
          (if sync <> Wal.Never then
             Alcotest.(check bool) "flush fsynced" true
               ((Store.wal_counters store).Wal.c_fsyncs >= 1));
          Store.close store;
          let r = Recovery.recover dir in
          Alcotest.check db_equal
            ("recovery under sync=" ^ Wal.sync_to_string sync)
            (Session.db (apply_script db script))
            (Session.db r.Recovery.r_session)))
    [ Wal.Always; Wal.Batch; Wal.Never ]

let test_merge_distinct_replay () =
  let db = seed_db () in
  with_temp_dir (fun dir ->
      let store = Store.create ~dir ~snapshot_every:0 db in
      List.iter (fun m -> ignore (Store.commit store m)) script;
      Store.abandon store;
      let r = Recovery.recover dir in
      let expected = apply_script db script in
      Alcotest.check db_equal "merge and distinct replay"
        (Session.db expected)
        (Session.db r.Recovery.r_session);
      Alcotest.(check int) "delta epochs agree"
        (Session.delta_epoch expected)
        r.Recovery.r_delta;
      (* the merged constant is really gone from the recovered state *)
      Alcotest.(check bool) "merge dropped the constant" false
        (List.mem "mystery"
           (Cw_database.constants (Session.db r.Recovery.r_session))))

let test_name_encoding () =
  List.iter
    (fun name ->
      let e = Recovery.encode_name name in
      Alcotest.(check string) ("round-trip " ^ String.escaped name) name
        (Recovery.decode_name e);
      Alcotest.(check bool) "encoded name has no separators" false
        (String.contains e '/'))
    [ "g"; "my db"; "a/b"; ".hidden"; "caf\xc3\xa9"; "x%20y"; "UPPER_low.9-" ];
  with_temp_dir (fun data_dir ->
      let db = seed_db () in
      List.iter
        (fun name ->
          let dir = Recovery.db_dir ~data_dir ~name in
          ignore (Store.create ~dir db))
        [ "beta"; "a/b"; "alpha" ];
      Alcotest.(check (list string)) "list decodes and sorts"
        [ "a/b"; "alpha"; "beta" ]
        (Recovery.list ~data_dir))

let test_directed_append_crash () =
  let db = seed_db () in
  with_temp_dir (fun dir ->
      let store = Store.create ~dir ~snapshot_every:0 db in
      ignore (Store.commit store (List.hd script));
      (* rate 1.0: the very next fault point — wal.append, before any
         byte is written — fires. The in-flight mutation must not
         survive recovery. *)
      (match
         Faults.with_faults ~seed:7 ~rate:1.0 (fun () ->
             Store.commit store (List.nth script 1))
       with
      | exception Faults.Injected "wal.append" -> ()
      | exception Faults.Injected p -> Alcotest.failf "unexpected point %s" p
      | _ -> Alcotest.fail "fault plan at rate 1.0 did not fire");
      Store.abandon store;
      let r = Recovery.recover dir in
      Alcotest.(check int) "only the acknowledged commit survives" 1
        r.Recovery.r_seq;
      Alcotest.check db_equal "crashed mutation absent"
        (Session.db (apply_script db [ List.hd script ]))
        (Session.db r.Recovery.r_session))

let test_recovery_kernel_parity () =
  let db = seed_db () in
  with_temp_dir (fun dir ->
      let store = Store.create ~dir ~snapshot_every:0 db in
      List.iter (fun m -> ignore (Store.commit store m)) script;
      Store.abandon store;
      let r = Recovery.recover dir in
      let q = Parser.query "(x, y). TEACHES(x, y)" in
      let reference = Certain.answer (Session.db r.Recovery.r_session) q in
      List.iter
        (fun kernel ->
          let got, _ =
            Certain.prepared_answer_stats
              (Session.prepare ~kernel r.Recovery.r_session q)
          in
          Alcotest.check Support.relation_testable
            "recovered session answers identically under both kernels"
            reference got)
        [ Certain.Interned; Certain.Compiled ])

(* --- the recover CLI and the checked-in corpus ---------------------- *)

let test_recover_cli () =
  let db = seed_db () in
  with_temp_dir (fun data_dir ->
      let dir = Recovery.db_dir ~data_dir ~name:"g" in
      let store = Store.create ~dir ~snapshot_every:0 db in
      List.iter (fun m -> ignore (Store.commit store m)) script;
      Store.abandon store;
      (* verify is read-only: the log keeps its records *)
      let code, out = run_ldb [ "recover"; data_dir; "--verify" ] in
      Alcotest.(check int) "verify exits 0" 0 code;
      Alcotest.(check bool) "verify reports the database" true
        (String.length out > 0);
      Alcotest.(check int) "verify left the log alone" 4
        (List.length (Wal.scan (Wal.path dir)).Wal.entries);
      (* recover compacts: replayed records move into the snapshot *)
      let code, _ = run_ldb [ "recover"; data_dir ] in
      Alcotest.(check int) "recover exits 0" 0 code;
      Alcotest.(check int) "recover compacted the log" 0
        (List.length (Wal.scan (Wal.path dir)).Wal.entries);
      Alcotest.(check int) "snapshot carries the state" 4
        (match Snapshot.read dir with
        | Some meta -> meta.Snapshot.seq
        | None -> -1);
      (* mid-log corruption under the CLI: exit 2, nothing rewritten *)
      let store = Store.open_ ~dir () |> fst in
      List.iter (fun m -> ignore (Store.commit store m))
        [
          ins "TEACHES" [ "plato"; "plato" ];
          ins "TEACHES" [ "socrates"; "socrates" ];
        ];
      Store.abandon store;
      let scan = Wal.scan (Wal.path dir) in
      let first = List.hd scan.Wal.entries in
      let size_before = (Unix.stat (Wal.path dir)).Unix.st_size in
      Wal.corrupt (Wal.path dir) ~bit:((first.Wal.e_off + 4 + 8) * 8);
      let code, _ = run_ldb [ "recover"; data_dir ] in
      Alcotest.(check int) "corrupted log refused with exit 2" 2 code;
      Alcotest.(check int) "refusal rewrote nothing" size_before
        (Unix.stat (Wal.path dir)).Unix.st_size)

let test_corpus () =
  let corpus name = Filename.concat "corpus/durable" name in
  let code, _ = run_ldb [ "recover"; corpus "good"; "--verify" ] in
  Alcotest.(check int) "good corpus verifies" 0 code;
  let code, out = run_ldb [ "recover"; corpus "torn"; "--verify" ] in
  Alcotest.(check int) "torn corpus verifies (tail ignored)" 0 code;
  Alcotest.(check bool) "torn tail reported" true
    (String.length out > 0);
  let code, _ = run_ldb [ "recover"; corpus "corrupt"; "--verify" ] in
  Alcotest.(check int) "corrupt corpus refused with exit 2" 2 code;
  let code, _ = run_ldb [ "recover"; corpus "corrupt" ] in
  Alcotest.(check int) "recover refuses it too" 2 code

(* --- daemon end-to-end ---------------------------------------------- *)

let temp_socket () =
  let path = Filename.temp_file "ldb_durable" ".sock" in
  Sys.remove path;
  path

let with_seed_file f =
  let path = Filename.temp_file "ldb_durable" ".ldb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Ldb_format.print (seed_db ()));
      close_out oc;
      f path)

let spawn_serve args =
  let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: "serve" :: args))
      null_in null_out null_out
  in
  Unix.close null_in;
  Unix.close null_out;
  pid

let rpc c fields = Client.request c (J.Obj fields)
let op name rest = ("op", J.Str name) :: rest

let code resp =
  match J.str_field "code" resp with
  | Some c -> c
  | None -> Alcotest.failf "response without a code: %s" (J.to_string resp)

let rows resp =
  match J.member "rows" resp with
  | Some (J.List rs) ->
    List.map
      (function
        | J.List cells -> List.filter_map J.to_str cells
        | _ -> Alcotest.failf "malformed row in %s" (J.to_string resp))
      rs
    |> List.sort compare
  | _ -> Alcotest.failf "response without rows: %s" (J.to_string resp)

let test_kill9_replay () =
  with_seed_file (fun seed ->
      with_temp_dir (fun data_dir ->
          let socket = temp_socket () in
          let pid =
            spawn_serve
              [
                "--socket"; socket; "--db"; "g=" ^ seed;
                "--data-dir"; data_dir; "--sync"; "always";
              ]
          in
          let acked = ref [] in
          Fun.protect
            ~finally:(fun () ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
              if Sys.file_exists socket then Sys.remove socket)
            (fun () ->
              let c = Client.connect_retry socket in
              (* acknowledged durable mutations... *)
              List.iter
                (fun f ->
                  let r =
                    rpc c (op "insert" [ ("db", J.Str "g"); ("fact", J.Str f) ])
                  in
                  Alcotest.(check string) "insert acked" "ok" (code r);
                  Alcotest.(check (option bool)) "ack is durable" (Some true)
                    (J.bool_field "durable" r);
                  acked := f :: !acked)
                [
                  "TEACHES(mystery, socrates)";
                  "TEACHES(plato, mystery)";
                  "TEACHES(plato, socrates)";
                ];
              (* ...then the process dies without any shutdown path *)
              Unix.kill pid Sys.sigkill;
              ignore (Unix.waitpid [] pid));
          (* the directory verifies and holds every acknowledged seq *)
          let code_, out = run_ldb [ "recover"; data_dir; "--verify" ] in
          Alcotest.(check int) "post-kill verify exits 0" 0 code_;
          Alcotest.(check bool) "verify reports seq 3" true
            (let rec has_sub i =
               i + 5 <= String.length out
               && (String.sub out i 5 = "seq 3" || has_sub (i + 1))
             in
             has_sub 0);
          (* a restart with the SAME command line must serve the
             recovered state, not re-load the seed file *)
          let socket2 = temp_socket () in
          let pid2 =
            spawn_serve
              [
                "--socket"; socket2; "--db"; "g=" ^ seed;
                "--data-dir"; data_dir; "--sync"; "always";
              ]
          in
          Fun.protect
            ~finally:(fun () ->
              (try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ());
              (try ignore (Unix.waitpid [] pid2) with Unix.Unix_error _ -> ());
              if Sys.file_exists socket2 then Sys.remove socket2)
            (fun () ->
              let c = Client.connect_retry socket2 in
              let r =
                rpc c
                  (op "query"
                     [
                       ("db", J.Str "g");
                       ("query", J.Str "(x, y). TEACHES(x, y)");
                     ])
              in
              Alcotest.(check string) "recovered db answers" "ok" (code r);
              Alcotest.(check (list (list string)))
                "every acknowledged mutation survived kill -9"
                [
                  [ "mystery"; "socrates" ];
                  [ "plato"; "mystery" ];
                  [ "plato"; "socrates" ];
                  [ "socrates"; "plato" ];
                ]
                (rows r);
              ignore (rpc c (op "shutdown" []));
              (try Client.close c with _ -> ()))))

let test_sigterm_drain () =
  with_seed_file (fun seed ->
      with_temp_dir (fun data_dir ->
          let socket = temp_socket () in
          let pid =
            spawn_serve
              [
                "--socket"; socket; "--db"; "g=" ^ seed;
                "--data-dir"; data_dir; "--workers"; "1"; "--debug-sleep";
              ]
          in
          Fun.protect
            ~finally:(fun () ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
              if Sys.file_exists socket then Sys.remove socket)
            (fun () ->
              let c1 = Client.connect_retry socket in
              let c2 = Client.connect_retry socket in
              (* Hold the single worker, queue a mutation behind it,
                 then ask for termination: the drain must still answer
                 the queued insert before the process exits 0. *)
              let sleeper =
                Thread.create
                  (fun () ->
                    try ignore (rpc c1 (op "sleep" [ ("ms", J.Num 400.) ]))
                    with _ -> ())
                  ()
              in
              Thread.delay 0.15;
              let insert_resp = ref None in
              let inserter =
                Thread.create
                  (fun () ->
                    try
                      insert_resp :=
                        Some
                          (rpc c2
                             (op "insert"
                                [
                                  ("db", J.Str "g");
                                  ("fact", J.Str "TEACHES(mystery, socrates)");
                                ]))
                    with _ -> ())
                  ()
              in
              Thread.delay 0.15;
              Unix.kill pid Sys.sigterm;
              let _, status = Unix.waitpid [] pid in
              Thread.join sleeper;
              Thread.join inserter;
              (try Client.close c1 with _ -> ());
              (try Client.close c2 with _ -> ());
              (match status with
              | Unix.WEXITED 0 -> ()
              | Unix.WEXITED n -> Alcotest.failf "exit %d, expected 0" n
              | Unix.WSIGNALED n ->
                Alcotest.failf "killed by signal %d, expected exit 0" n
              | Unix.WSTOPPED _ -> Alcotest.fail "stopped, expected exit 0");
              Alcotest.(check bool) "drain removed the socket file" false
                (Sys.file_exists socket);
              (match !insert_resp with
              | Some r ->
                Alcotest.(check string) "queued mutation answered during drain"
                  "ok" (code r)
              | None -> Alcotest.fail "queued mutation lost in drain");
              (* the drained, checkpointed directory replays the ack *)
              let r =
                Recovery.recover (Recovery.db_dir ~data_dir ~name:"g")
              in
              Alcotest.(check int) "acked mutation durable after drain" 1
                r.Recovery.r_seq)))

let suite =
  [
    Alcotest.test_case "wal: records round-trip through scan" `Quick
      test_wal_roundtrip;
    Alcotest.test_case "wal: torn tail at every byte boundary" `Quick
      test_wal_torn_every_byte;
    Alcotest.test_case "wal: mid-log corruption refused, tail damage torn"
      `Quick test_wal_midlog_corrupt;
    Alcotest.test_case "recovery: empty log, snapshot-only, auto-checkpoint"
      `Quick test_recovery_edges;
    Alcotest.test_case "store: no-ops unlogged, invalid mutations clean"
      `Quick test_noops_and_invalid;
    Alcotest.test_case "sync modes round-trip and recover equally" `Quick
      test_sync_modes;
    Alcotest.test_case "merge and distinct replay faithfully" `Quick
      test_merge_distinct_replay;
    Alcotest.test_case "database names encode into directory names" `Quick
      test_name_encoding;
    Alcotest.test_case "directed append crash loses only the in-flight record"
      `Quick test_directed_append_crash;
    Alcotest.test_case "recovered sessions answer identically per kernel"
      `Quick test_recovery_kernel_parity;
    Alcotest.test_case "ldb recover: verify and compact" `Quick
      test_recover_cli;
    Alcotest.test_case "checked-in corpus: good, torn, corrupt" `Quick
      test_corpus;
    Alcotest.test_case "kill -9 mid-traffic: acked mutations replay" `Quick
      test_kill9_replay;
    Alcotest.test_case "SIGTERM drains the queue, checkpoints, exits 0"
      `Quick test_sigterm_drain;
  ]
