(* Regenerates the checked-in durability corpus under
   test/corpus/durable/ — three serve data directories the recovery
   tests and the CI crash-smoke job feed to `ldb recover --verify`:

     good/g/     a clean lineage: snapshot at seq 0 plus a 4-record log
     torn/g/     the same lineage with the final record cut mid-CRC
                 (a crash landed mid-write; recovery truncates it)
     corrupt/g/  the same lineage with one payload bit of record 1
                 flipped (bit rot before intact records; recovery must
                 refuse with exit 2, acknowledged history is gone)

   Deterministic: same tool version, same bytes. Run from the repo
   root after changing the WAL format:

     dune exec test/gen_corpus.exe -- test/corpus/durable
*)

open Logicaldb
module Session = Incr_session
module Store = Durable_store

let db () =
  Ldb_format.parse
    "predicate TEACHES/2\n\
     constant socrates plato mystery\n\
     fact TEACHES(socrates, plato)\n\
     distinct socrates plato\n"

let fact pred args = { Cw_database.pred; args }

let script =
  [
    Session.Insert (fact "TEACHES" [ "mystery"; "socrates" ]);
    Session.Retract (fact "TEACHES" [ "socrates"; "plato" ]);
    Session.Close { left = "socrates"; right = "mystery"; equal = false };
    Session.Insert (fact "TEACHES" [ "plato"; "mystery" ]);
  ]

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let build root name =
  let data_dir = Filename.concat root name in
  if Sys.file_exists data_dir then rm_rf data_dir;
  let dir = Recovery.db_dir ~data_dir ~name:"g" in
  let store = Store.create ~dir ~sync:Wal.Always ~snapshot_every:0 (db ()) in
  List.iter (fun m -> ignore (Store.commit store m)) script;
  Store.abandon store;
  dir

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  ignore (build root "good");
  let torn = build root "torn" in
  let scan = Wal.scan (Wal.path torn) in
  let last = List.nth scan.Wal.entries (List.length scan.Wal.entries - 1) in
  let cut = last.Wal.e_off + last.Wal.e_len - 2 in
  let fd = Unix.openfile (Wal.path torn) [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd cut;
  Unix.close fd;
  let corrupt = build root "corrupt" in
  let scan = Wal.scan (Wal.path corrupt) in
  let first = List.hd scan.Wal.entries in
  Wal.corrupt (Wal.path corrupt) ~bit:((first.Wal.e_off + 4 + 8) * 8 + 1);
  Printf.printf "corpus written under %s: good torn corrupt\n" root
