(* Coverage sweep: exercises API surfaces not covered by the focused
   suites — printers, error paths, small helpers. *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- printers produce the documented concrete syntax --- *)

let test_pretty_precedence_table () =
  let cases =
    [
      (* (formula, expected rendering) *)
      ("A() /\\ B() \\/ C()", "A() /\\ B() \\/ C()");
      ("(A() \\/ B()) /\\ C()", "(A() \\/ B()) /\\ C()");
      ("~(A() /\\ B())", "~(A() /\\ B())");
      ("~A() /\\ ~B()", "~A() /\\ ~B()");
      ("A() -> B() -> C()", "A() -> B() -> C()");
      ("(A() -> B()) -> C()", "(A() -> B()) -> C()");
      ("(exists x. P(x)) /\\ A()", "(exists x. P(x)) /\\ A()");
      ("exists x. P(x) /\\ A()", "exists x. P(x) /\\ A()");
      ("x != y \\/ x = y", "x != y \\/ x = y");
    ]
  in
  List.iter
    (fun (input, expected) ->
      let f = Parser.formula ~free_vars:[ "x"; "y" ] input in
      check_str input expected (Pretty.formula_to_string f))
    cases

let test_lexer_positions () =
  let tokens = Lexer.tokenize "P(x) /\\ Q" in
  let positions = List.map (fun t -> t.Lexer.pos) tokens in
  check (Alcotest.list Alcotest.int) "byte offsets" [ 0; 1; 2; 3; 5; 8; 9 ]
    positions

let test_parse_error_positions () =
  (match Parser.formula "P(x) @@" with
  | exception Lexer.Lex_error (5, _) -> ()
  | exception Lexer.Lex_error (n, _) -> Alcotest.failf "wrong position %d" n
  | _ -> Alcotest.fail "expected a lexical error");
  match Parser.formula "P(x) /\\" with
  | exception Parser.Parse_error (_, msg) ->
    check_bool "mentions expectation" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected a parse error"

(* --- query API corners --- *)

let test_query_api () =
  let q = Parser.query "(x, y). R(x, y)" in
  check_int "arity" 2 (Query.arity q);
  (* map_body validates the new body's free variables. *)
  (match
     Query.map_body (fun _ -> Formula.Atom ("P", [ Term.var "z" ])) q
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "free variable outside head must be rejected");
  (* instantiate arity check *)
  (match Query.instantiate q [ "a" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch must be rejected");
  (* duplicate head *)
  match Query.make [ "x"; "x" ] Formula.True with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate head must be rejected"

let test_fresh_var () =
  let f = Parser.formula ~free_vars:[ "x"; "x0" ] "R(x, x0)" in
  let fresh = Formula.fresh_var ~base:"x" [ f ] in
  check_bool "fresh avoids x and x0" true
    ((not (String.equal fresh "x")) && not (String.equal fresh "x0"))

(* --- relation helpers --- *)

let test_relation_map_and_errors () =
  let r = Relation.of_tuples 1 [ [ "a" ]; [ "b" ] ] in
  let upper = Relation.map (List.map String.uppercase_ascii) r in
  check_bool "mapped" true (Relation.mem [ "A" ] upper);
  (match Relation.map (fun t -> t @ t) r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity-changing map must be rejected");
  match Relation.empty (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative arity must be rejected"

(* --- mapping corners --- *)

let test_mapping_errors () =
  let db = Support.socrates_db () in
  (match Mapping.of_assoc db [ ("socrates", "unknown_person") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-constant target must be rejected");
  let h = Mapping.identity db in
  match Mapping.apply h "not_a_constant" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_mapping_count () =
  let db = Support.socrates_db () in
  check_bool "3^3" true (Mapping.count_all db = 27)

(* --- axioms helpers --- *)

let test_unique_conjunction () =
  let db = Support.socrates_db () in
  check Support.formula_testable "single axiom"
    (Parser.formula "plato != socrates")
    (Axioms.unique_conjunction db);
  let free = database ~constants:[ "a" ] () in
  check Support.formula_testable "empty conjunction" Formula.True
    (Axioms.unique_conjunction free)

(* --- Ne_virtual defining formula --- *)

let test_ne_defining_formula () =
  (* The documented defining formula evaluates like the virtual NE when
     U and NE' are materialized as relations. *)
  let db = Support.socrates_db () in
  let nev = Ne_virtual.make db in
  let constants = Cw_database.constants db in
  let vocabulary =
    Vocabulary.make ~constants
      ~predicates:[ ("U", 1); ("NE'", 2) ]
  in
  let u_rel =
    Relation.of_tuples 1 (List.map (fun c -> [ c ]) (Ne_virtual.unknowns nev))
  in
  let ne'_rel =
    Relation.of_tuples 2
      (List.concat_map
         (fun (c, d) -> [ [ c; d ]; [ d; c ] ])
         (Ne_virtual.stored_pairs nev))
  in
  let pb =
    Database.make ~vocabulary ~domain:constants
      ~constants:(List.map (fun c -> (c, c)) constants)
      ~relations:[ ("U", u_rel); ("NE'", ne'_rel) ]
  in
  List.iter
    (fun c ->
      List.iter
        (fun d ->
          let by_formula =
            Eval.holds pb [ ("x", c); ("y", d) ] Ne_virtual.defining_formula
          in
          check_bool
            (Printf.sprintf "NE(%s, %s)" c d)
            (Ne_virtual.holds nev c d) by_formula)
        constants)
    constants

(* --- graph helpers --- *)

let test_graph_corners () =
  (match Graph.make ~vertices:2 ~edges:[ (0, 5) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range edge must be rejected");
  (match Graph.random ~vertices:3 ~edge_probability:1.5 ~seed:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad probability must be rejected");
  let g = Graph.random ~vertices:4 ~edge_probability:1.0 ~seed:0 in
  check_int "p=1.0 gives K4 edges" 6 (List.length (Graph.edges g));
  let g0 = Graph.random ~vertices:4 ~edge_probability:0.0 ~seed:0 in
  check_int "p=0.0 gives no edges" 0 (List.length (Graph.edges g0));
  (* determinism *)
  let a = Graph.random ~vertices:6 ~edge_probability:0.5 ~seed:9 in
  let b = Graph.random ~vertices:6 ~edge_probability:0.5 ~seed:9 in
  check_bool "deterministic in seed" true (Graph.edges a = Graph.edges b)

(* --- qbf corners --- *)

let test_qbf_corners () =
  (match
     Qbf.make ~blocks:[ 1 ]
       ~matrix:(Qbf.Lit { positive = true; var = { Qbf.block = 2; index = 1 } })
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range block must be rejected");
  (match Qbf.make ~blocks:[] ~matrix:(Qbf.Lit { positive = true; var = { Qbf.block = 1; index = 1 } }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty block list must be rejected");
  (* matrix with Not *)
  let t =
    Qbf.make ~blocks:[ 1 ]
      ~matrix:
        (Qbf.Not (Qbf.Lit { positive = false; var = { Qbf.block = 1; index = 1 } }))
  in
  (* ∀x ¬¬x = ∀x x = false *)
  check_bool "double negation in matrix" false (Qbf.eval t);
  (* empty clause list means true *)
  check_bool "empty cnf" true (Qbf.eval (Qbf.of_cnf3 ~blocks:[ 1 ] []))

(* --- typed layer corners --- *)

let test_ty_vocabulary_untyped () =
  let v =
    Ty_vocabulary.make ~types:[ "t" ]
      ~constants:[ ("a", "t") ]
      ~predicates:[ ("P", [ "t"; "t" ]) ]
  in
  let u = Ty_vocabulary.untyped v in
  check_bool "user predicate kept" true (Vocabulary.mem_predicate u "P");
  check_int "user predicate arity" 2 (Vocabulary.arity u "P");
  check_bool "type predicate added" true (Vocabulary.mem_predicate u "ty$t");
  check_bool "constant kept" true (Vocabulary.mem_constant u "a")

(* --- theory pretty-printing does not raise --- *)

let test_pp_smoke () =
  let db = Support.socrates_db () in
  let strings =
    [
      Fmt.str "%a" Cw_database.pp db;
      Fmt.str "%a" Database.pp (Ph.ph2 db);
      Fmt.str "%a" Vocabulary.pp (Cw_database.vocabulary db);
      Fmt.str "%a" Theory.pp (Theory.of_cw db);
      Fmt.str "%a" Mapping.pp (Mapping.identity db);
      Fmt.str "%a" Partition.pp (Partition.discrete db);
      Fmt.str "%a" Graph.pp (Graph.cycle 4);
      Fmt.str "%a" Qbf.pp (Qbf.random_cnf3 ~blocks:[ 1; 1 ] ~clauses:2 ~seed:1);
      Fmt.str "%a" Relation.pp (Relation.full ~domain:[ "a"; "b" ] 1);
    ]
  in
  List.iter (fun s -> check_bool "nonempty" true (String.length s > 0)) strings

(* --- the public fuzzing generator --- *)

let test_generate_well_formed () =
  let db = Support.socrates_db () in
  let vocabulary = Cw_database.vocabulary db in
  let state = Random.State.make [| 2026 |] in
  for _ = 1 to 200 do
    (* Sentences are closed and evaluable on Ph1. *)
    let s = Generate.sentence ~state vocabulary in
    check (Alcotest.list Alcotest.string) "closed" [] (Formula.free_vars s);
    ignore (Eval.satisfies (Ph.ph1 db) s);
    (* Queries pass vocabulary validation and evaluate everywhere. *)
    let q = Generate.query ~state vocabulary ~arity:1 in
    Query_check.validate db q;
    ignore (Certain.answer db q)
  done

let test_generate_profiles () =
  let vocabulary =
    Vocabulary.make ~constants:[ "a" ] ~predicates:[ ("P", 1) ]
  in
  let state = Random.State.make [| 7 |] in
  for _ = 1 to 100 do
    let s =
      Generate.formula
        ~profile:
          {
            Generate.default_profile with
            depth = 4;
            allow_negation = false;
            allow_quantifiers = false;
          }
        ~state vocabulary ~vars:[ "x" ]
    in
    check_bool "negation-free profile is positive" true (Formula.is_positive s);
    check_bool "quantifier-free profile" true
      (Option.is_some (Formula.fo_sigma_rank s) && Formula.fo_sigma_rank s = Some 0)
  done;
  (* Determinism in the seed. *)
  let gen seed =
    Generate.sentence ~state:(Random.State.make [| seed |]) vocabulary
  in
  check Support.formula_testable "deterministic" (gen 5) (gen 5)

let suite =
  [
    Alcotest.test_case "generator well-formedness" `Quick
      test_generate_well_formed;
    Alcotest.test_case "generator profiles" `Quick test_generate_profiles;
    Alcotest.test_case "pretty precedence table" `Quick
      test_pretty_precedence_table;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "parse error positions" `Quick test_parse_error_positions;
    Alcotest.test_case "query api corners" `Quick test_query_api;
    Alcotest.test_case "fresh var" `Quick test_fresh_var;
    Alcotest.test_case "relation map/errors" `Quick test_relation_map_and_errors;
    Alcotest.test_case "mapping errors" `Quick test_mapping_errors;
    Alcotest.test_case "mapping count" `Quick test_mapping_count;
    Alcotest.test_case "unique conjunction" `Quick test_unique_conjunction;
    Alcotest.test_case "NE defining formula" `Quick test_ne_defining_formula;
    Alcotest.test_case "graph corners" `Quick test_graph_corners;
    Alcotest.test_case "qbf corners" `Quick test_qbf_corners;
    Alcotest.test_case "typed untyped vocabulary" `Quick
      test_ty_vocabulary_untyped;
    Alcotest.test_case "printer smoke" `Quick test_pp_smoke;
  ]
