(* Tests for the differential fuzzing subsystem: generator determinism,
   oracle cleanliness on a fixed-seed stream, corpus round-trips and
   regression replay, shrinker sanity, and the parser-hardening
   regressions the noise fuzzer guards. *)

open Logicaldb

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let instance_to_string i = Fmt.to_to_string Fuzz_gen.pp_instance i

(* --- generator determinism: the acceptance criterion that the same
   seed reproduces the identical instance stream --- *)

let test_gen_deterministic () =
  List.iter
    (fun index ->
      let a = Fuzz_gen.instance ~seed:42 index in
      let b = Fuzz_gen.instance ~seed:42 index in
      Alcotest.(check string)
        (Printf.sprintf "instance %d is a pure function of (seed, index)" index)
        (instance_to_string a) (instance_to_string b);
      check_bool "databases equal" true (Cw_database.equal a.Fuzz_gen.db b.Fuzz_gen.db);
      check_bool "queries equal" true (Query.equal a.Fuzz_gen.query b.Fuzz_gen.query))
    [ 0; 1; 17; 99 ]

let test_gen_stream_matches_point_access () =
  let streamed = List.of_seq (Fuzz_gen.stream ~seed:7 ~count:20 ()) in
  check_int "stream length" 20 (List.length streamed);
  List.iteri
    (fun index streamed ->
      let direct = Fuzz_gen.instance ~seed:7 index in
      check_bool
        (Printf.sprintf "stream element %d = direct access" index)
        true
        (String.equal (instance_to_string streamed) (instance_to_string direct)))
    streamed

let test_gen_seeds_disjoint () =
  let a = Fuzz_gen.instance ~seed:1 0 in
  let b = Fuzz_gen.instance ~seed:2 0 in
  check_bool "different seeds give different instances" false
    (String.equal (instance_to_string a) (instance_to_string b))

let test_gen_unknown_density_extremes () =
  (* Density 0 must produce fully specified databases (Theorem 12's
     precondition); density 1 must leave every identity open. *)
  let closed = { Fuzz_gen.default with unknown_density = 0.0 } in
  let open_ = { Fuzz_gen.default with unknown_density = 1.0 } in
  List.iter
    (fun index ->
      let i = Fuzz_gen.instance ~config:closed ~seed:5 index in
      check_bool "density 0 is fully specified" true
        (Cw_database.is_fully_specified i.Fuzz_gen.db);
      let i = Fuzz_gen.instance ~config:open_ ~seed:5 index in
      check_int "density 1 has no uniqueness axioms" 0
        (List.length (Cw_database.distinct_pairs i.Fuzz_gen.db)))
    [ 0; 1; 2; 3; 4 ]

let test_gen_validates_config () =
  Alcotest.check_raises "negative density rejected"
    (Invalid_argument "Fuzz.Gen: unknown_density must lie in [0, 1]")
    (fun () ->
      ignore
        (Fuzz_gen.instance
           ~config:{ Fuzz_gen.default with unknown_density = -0.1 }
           ~seed:0 0))

(* --- the differential driver on a fixed seed: the CI smoke property
   in miniature --- *)

let test_driver_clean_stream () =
  let outcome =
    Fuzz.run
      ~config:{ Fuzz.default with seed = 42; count = 150; noise = 300 }
      ()
  in
  check_bool
    (Fmt.str "no oracle violations: %a" Fuzz.pp_outcome outcome)
    true (Fuzz.clean outcome);
  check_int "all instances ran" 150 outcome.Fuzz.instances;
  check_int "typed lane ran per instance" 150 outcome.Fuzz.checked_typed

let test_driver_domains_do_not_change_the_stream () =
  (* The acceptance criterion: the instance stream is identical across
     domain counts (generation never consults the oracle config). *)
  let with_domains n =
    List.of_seq (Fuzz_gen.stream ~seed:42 ~count:10 ())
    |> List.map instance_to_string
    |> fun stream ->
    ignore
      (Fuzz.run ~config:{ Fuzz.default with seed = 42; count = 5; domains = n } ());
    stream
  in
  Alcotest.(check (list string))
    "streams under domains=1 and domains=3 coincide" (with_domains 1)
    (with_domains 3)

(* --- oracles catch seeded bugs: a broken engine result must be
   flagged (the oracle battery is not vacuously green) --- *)

let test_oracle_flags_unsoundness () =
  (* ~P(x) with the identity of a and b open: the naive-tables baseline
     over-answers {b}, and an oracle using it as "exact" would object.
     Here we check the real oracles accept the real engines, and that
     the approximation on this canonical case is strictly below the
     naive baseline — the gap Theorem 11 is about. *)
  let db =
    database ~predicates:[ ("P", 1) ] ~constants:[ "a"; "b" ]
      ~facts:[ ("P", [ "a" ]) ] ()
  in
  let q = Parser.query "(x). ~P(x)" in
  check_int "oracle battery passes the real engines" 0
    (List.length (Fuzz_oracle.check db q));
  check_bool "approx is strictly below naive tables here" true
    (Relation.cardinal (Approx.answer db q)
    < Relation.cardinal (Naive_tables.answer db q))

(* --- corpus round-trips and regression replay --- *)

let test_corpus_roundtrip () =
  List.iter
    (fun index ->
      let i = Fuzz_gen.instance ~seed:11 index in
      let case =
        {
          Fuzz_corpus.oracle = Some "approx-sound";
          query = i.Fuzz_gen.query;
          db = i.Fuzz_gen.db;
        }
      in
      let reparsed = Fuzz_corpus.parse (Fuzz_corpus.print case) in
      check_bool "database survives the corpus format" true
        (Cw_database.equal case.Fuzz_corpus.db reparsed.Fuzz_corpus.db);
      check_bool "query survives the corpus format" true
        (Query.equal case.Fuzz_corpus.query reparsed.Fuzz_corpus.query);
      Alcotest.(check (option string))
        "oracle id survives" case.Fuzz_corpus.oracle reparsed.Fuzz_corpus.oracle)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_corpus_rejects_garbage () =
  let expect_error text =
    match Fuzz_corpus.parse text with
    | _ -> Alcotest.failf "accepted %S" text
    | exception Fuzz_corpus.Corpus_error _ -> ()
  in
  expect_error "";
  expect_error "query (). true\n";
  expect_error "mystery line\n==\nconstant a\n";
  expect_error "query ((((\n==\nconstant a\n"

let test_corpus_regressions_replay_clean () =
  (* The committed shrunk regressions under test/corpus/ must keep
     passing: these encode previously-interesting instances. *)
  let cases = Fuzz_corpus.load_dir "corpus" in
  check_bool "regression corpus is non-empty" true (cases <> []);
  let violations = Fuzz.replay cases in
  List.iter
    (fun (label, v) ->
      Alcotest.failf "%s: %a" label Fuzz_oracle.pp_violation v)
    violations

(* --- shrinker --- *)

let test_shrink_minimizes () =
  let db =
    database ~predicates:[ ("P", 1); ("R", 2) ]
      ~constants:[ "a"; "b"; "c" ]
      ~facts:[ ("P", [ "a" ]); ("R", [ "a"; "b" ]); ("R", [ "b"; "c" ]) ]
      ()
  in
  let query = Parser.query "(x). ~P(x) /\\ exists y. R(x, y)" in
  let case = { Fuzz_shrink.db; query } in
  (* Minimize against "the approximation answers strictly less than
     naive tables" — a semantic property that needs negation and an
     open identity, so the shrinker must keep both alive. *)
  let still_failing (c : Fuzz_shrink.case) =
    Relation.cardinal (Approx.answer c.Fuzz_shrink.db c.Fuzz_shrink.query)
    < Relation.cardinal (Naive_tables.answer c.Fuzz_shrink.db c.Fuzz_shrink.query)
  in
  check_bool "the starting case has the property" true (still_failing case);
  let shrunk = Fuzz_shrink.minimize ~still_failing case in
  check_bool "the property survives shrinking" true (still_failing shrunk);
  check_bool "the cost went down" true
    (Fuzz_shrink.cost shrunk < Fuzz_shrink.cost case);
  check_bool "no candidate improves further (local minimum)" true
    (List.for_all
       (fun c ->
         Fuzz_shrink.cost c >= Fuzz_shrink.cost shrunk || not (still_failing c))
       (Fuzz_shrink.candidates shrunk))

let test_shrink_closes_unknowns () =
  (* Moving from 0 to all uniqueness axioms must be reachable: on a
     predicate-free property the minimum has every identity closed. *)
  let db = database ~predicates:[ ("P", 1) ] ~constants:[ "a"; "b" ] () in
  let case = { Fuzz_shrink.db; query = Parser.query "(). true" } in
  let shrunk = Fuzz_shrink.minimize ~still_failing:(fun _ -> true) case in
  check_bool "all identities closed in the minimum" true
    (Cw_database.is_fully_specified shrunk.Fuzz_shrink.db)

(* --- parser hardening: the regressions behind satellite 2 --- *)

let test_parser_survives_deep_nesting () =
  (* 200k of [~] used to overflow the OCaml stack; the nesting cap now
     raises a positioned Parse_error instead. *)
  let deep = String.make 200_000 '~' ^ "true" in
  (match Parser.formula deep with
  | _ -> Alcotest.fail "a 200k-deep formula should not parse"
  | exception Parser.Parse_error (_, msg) ->
    check_bool "error mentions the nesting cap" true
      (String.length msg > 0)
  | exception Stack_overflow -> Alcotest.fail "nesting cap missed");
  let parens = String.concat "" (List.init 50_000 (fun _ -> "(")) ^ "true" in
  match Parser.formula parens with
  | _ -> Alcotest.fail "unbalanced parens should not parse"
  | exception Parser.Parse_error _ -> ()
  | exception Stack_overflow -> Alcotest.fail "nesting cap missed (parens)"

let test_lexer_survives_huge_integers () =
  (* An over-long digit run used to raise Failure from int_of_string;
     it now lexes as an identifier — a perfectly good constant name in
     term position (vocabulary checks happen later, in the engines). *)
  match Parser.formula "P(99999999999999999999999999)" with
  | Formula.Atom ("P", [ Term.Const huge ]) ->
    check_bool "digit run became a constant" true
      (String.equal huge "99999999999999999999999999")
  | _ -> Alcotest.fail "unexpected parse"
  | exception Failure _ -> Alcotest.fail "huge literal leaked Failure"

let test_noise_inputs_raise_only_documented_exceptions () =
  List.iter
    (fun input ->
      match Fuzz_noise.check_input input with
      | [] -> ()
      | crashes ->
        Alcotest.failf "%a" (Fmt.list Fuzz_noise.pp_crash) crashes)
    [
      String.make 100_000 '~' ^ "true";
      "99999999999999999999999999";
      "(x). P(x";
      "predicate P/99999999999999999999";
      "fact P(\x00\xff)";
      "";
      "((((((((((";
    ]

let test_noise_run_clean () =
  let crashes = Fuzz_noise.run ~seed:3 ~count:400 in
  List.iter
    (fun c -> Alcotest.failf "%a" Fuzz_noise.pp_crash c)
    crashes

let suite =
  [
    Alcotest.test_case "generator is deterministic" `Quick
      test_gen_deterministic;
    Alcotest.test_case "stream = point access" `Quick
      test_gen_stream_matches_point_access;
    Alcotest.test_case "seeds are disjoint" `Quick test_gen_seeds_disjoint;
    Alcotest.test_case "unknown-density extremes" `Quick
      test_gen_unknown_density_extremes;
    Alcotest.test_case "config validation" `Quick test_gen_validates_config;
    Alcotest.test_case "driver: clean fixed-seed stream" `Quick
      test_driver_clean_stream;
    Alcotest.test_case "driver: stream independent of domains" `Quick
      test_driver_domains_do_not_change_the_stream;
    Alcotest.test_case "oracle battery on the canonical gap" `Quick
      test_oracle_flags_unsoundness;
    Alcotest.test_case "corpus round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus rejects garbage" `Quick
      test_corpus_rejects_garbage;
    Alcotest.test_case "corpus regressions replay clean" `Quick
      test_corpus_regressions_replay_clean;
    Alcotest.test_case "shrinker minimizes" `Quick test_shrink_minimizes;
    Alcotest.test_case "shrinker closes unknowns" `Quick
      test_shrink_closes_unknowns;
    Alcotest.test_case "parser: deep nesting capped" `Quick
      test_parser_survives_deep_nesting;
    Alcotest.test_case "lexer: huge integers" `Quick
      test_lexer_survives_huge_integers;
    Alcotest.test_case "noise: documented exceptions only" `Quick
      test_noise_inputs_raise_only_documented_exceptions;
    Alcotest.test_case "noise: seeded run is clean" `Quick
      test_noise_run_clean;
  ]
