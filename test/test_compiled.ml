(* Tests for the flat-code kernel (Icode): compiled-program indices
   stay in bounds for the symtab they were compiled against,
   compile-then-exec agrees with the interpreters (Iplan.run / Ieval)
   on generated plans and generated (db, query) instances, the packed
   membership probe agrees with materialize-then-mem, and the
   arity-specialized row comparators agree with Irel.compare_rows. *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let socrates = Support.socrates_db ()
let ripper = Support.ripper_db ()

let q s = Parser.query s

(* --- arity-specialized comparators vs the generic order -------------- *)

let sign c = compare c 0

let gen_row k = QCheck2.Gen.(array_repeat k (0 -- 6))

let comparators_agree =
  QCheck2.Test.make ~count:500
    ~name:"compare_rows1/2/3 = Irel.compare_rows"
    ~print:(fun ((a1, b1), ((a2, b2), (a3, b3))) ->
      Fmt.str "%a %a | %a %a | %a %a"
        Fmt.(Dump.array int) a1 Fmt.(Dump.array int) b1
        Fmt.(Dump.array int) a2 Fmt.(Dump.array int) b2
        Fmt.(Dump.array int) a3 Fmt.(Dump.array int) b3)
    QCheck2.Gen.(
      pair
        (pair (gen_row 1) (gen_row 1))
        (pair (pair (gen_row 2) (gen_row 2)) (pair (gen_row 3) (gen_row 3))))
    (fun ((a1, b1), ((a2, b2), (a3, b3))) ->
      sign (Icode.compare_rows1 a1 b1) = sign (Irel.compare_rows a1 b1)
      && sign (Icode.compare_rows2 a2 b2) = sign (Irel.compare_rows a2 b2)
      && sign (Icode.compare_rows3 a3 b3) = sign (Irel.compare_rows a3 b3))

let mem_row_agrees =
  QCheck2.Test.make ~count:300 ~name:"mem_row = Irel.mem"
    QCheck2.Gen.(
      pair (list_size (0 -- 10) (gen_row 2)) (gen_row 2))
    (fun (rows, probe) ->
      let rel = Irel.of_rows 2 rows in
      Icode.mem_row probe rel = Irel.mem probe rel)

(* --- a generator of well-formed interned plans ----------------------- *)

(* Plans are generated against the socrates symtab: one binary base
   relation, a handful of constant codes. [gen_plan k] produces a plan
   of output arity [k]; set operations always pair equal arities, so
   every generated plan is one [Iplan.run] accepts. *)

let plan_ctx =
  let plan = Iscan.prepare socrates in
  let tab = Iscan.symtab plan in
  (tab, (Iscan.discrete plan).Iscan.idb, plan)

let gen_plan =
  let tab, _, _ = plan_ctx in
  let n = Symtab.size tab in
  let open QCheck2.Gen in
  let gen_leaf k =
    let leaves =
      (if k = 1 then [ pure Iplan.Domain ] else [])
      @ (if k = Symtab.rel_arity tab 0 then [ pure (Iplan.Base 0) ] else [])
      @ [ pure (Iplan.Empty k) ]
    in
    oneof leaves
  in
  let gen_sel k =
    if k = 0 then
      map2
        (fun c d -> Iplan.Consts_eq (c, d))
        (0 -- (n - 1)) (0 -- (n - 1))
    else
      oneof
        [
          map2 (fun i j -> Iplan.Cols_eq (i mod k, j mod k)) (0 -- 7) (0 -- 7);
          map2 (fun i j -> Iplan.Cols_neq (i mod k, j mod k)) (0 -- 7) (0 -- 7);
          map2
            (fun i c -> Iplan.Col_eq_const (i mod k, c))
            (0 -- 7) (0 -- (n - 1));
          map2
            (fun i c -> Iplan.Col_neq_const (i mod k, c))
            (0 -- 7) (0 -- (n - 1));
          map2 (fun c d -> Iplan.Consts_neq (c, d)) (0 -- (n - 1)) (0 -- (n - 1));
        ]
  in
  let rec gen k depth =
    if depth = 0 then gen_leaf k
    else
      let sub = gen k (depth - 1) in
      let cases =
        [
          sub;
          map2 (fun sel p -> Iplan.Select (sel, p)) (gen_sel k) sub;
          (* project from a wider subplan down to arity k *)
          (let m = min 3 (k + 1) in
           map2
             (fun cols p -> Iplan.Project (cols, p))
             (array_repeat k (0 -- (m - 1)))
             (gen m (depth - 1)));
          map2 (fun a b -> Iplan.Union (a, b)) sub sub;
          map2 (fun a b -> Iplan.Inter (a, b)) sub sub;
          map2 (fun a b -> Iplan.Diff (a, b)) sub sub;
        ]
        @
        if k >= 1 then
          [
            (* product splitting k into 1 + (k-1) *)
            map2
              (fun a b -> Iplan.Product (a, b))
              (gen 1 (depth - 1))
              (gen (k - 1) (depth - 1));
          ]
        else []
      in
      oneof cases
  in
  let* k = 0 -- 3 in
  gen k 3

let rec plan_to_string = function
  | Iplan.Base s -> Printf.sprintf "Base %d" s
  | Iplan.Domain -> "Domain"
  | Iplan.Empty k -> Printf.sprintf "Empty %d" k
  | Iplan.Select (_, p) -> Printf.sprintf "Select(_, %s)" (plan_to_string p)
  | Iplan.Project (cols, p) ->
    Printf.sprintf "Project(%s, %s)"
      (String.concat "," (List.map string_of_int (Array.to_list cols)))
      (plan_to_string p)
  | Iplan.Product (a, b) ->
    Printf.sprintf "Product(%s, %s)" (plan_to_string a) (plan_to_string b)
  | Iplan.Join (_, a, b) ->
    Printf.sprintf "Join(%s, %s)" (plan_to_string a) (plan_to_string b)
  | Iplan.Semijoin (_, a, b) ->
    Printf.sprintf "Semijoin(%s, %s)" (plan_to_string a) (plan_to_string b)
  | Iplan.Union (a, b) ->
    Printf.sprintf "Union(%s, %s)" (plan_to_string a) (plan_to_string b)
  | Iplan.Inter (a, b) ->
    Printf.sprintf "Inter(%s, %s)" (plan_to_string a) (plan_to_string b)
  | Iplan.Diff (a, b) ->
    Printf.sprintf "Diff(%s, %s)" (plan_to_string a) (plan_to_string b)

(* Every compiled instruction's resolved indices must be meaningful for
   the symtab the program was compiled against. *)
let instr_in_bounds tab stack_cap instr =
  let n = Symtab.size tab in
  let pow_ok d = d >= 1 in
  ignore stack_cap;
  match instr with
  | Icode.Load { slot; arity } ->
    slot >= 0 && slot < Symtab.rel_count tab && arity = Symtab.rel_arity tab slot
  | Icode.Load_domain -> true
  | Icode.Load_empty { arity } -> arity >= 0
  | Icode.Sel_cols { div_i; div_j; _ } -> pow_ok div_i && pow_ok div_j
  | Icode.Sel_col_const { div; code; _ } -> pow_ok div && code >= 0 && code < n
  | Icode.Sel_consts { code_c; code_d; _ } ->
    code_c >= 0 && code_c < n && code_d >= 0 && code_d < n
  | Icode.Proj { divs; arity } -> arity >= 0 && Array.for_all pow_ok divs
  | Icode.Prod { mult; arity } -> mult >= 1 && arity >= 0
  | Icode.Union | Icode.Inter | Icode.Diff -> true

let compiled_plan_in_bounds_and_agrees =
  let tab, idb, _ = plan_ctx in
  QCheck2.Test.make ~count:500 ~name:"compile_plan: bounds + exec = Iplan.run"
    ~print:plan_to_string gen_plan
    (fun plan ->
      let prog = Icode.compile_plan tab plan in
      let bounds_ok =
        match Icode.instrs prog with
        | None -> true (* interpreter fallback carries no indices *)
        | Some code ->
          Array.for_all (instr_in_bounds tab (Icode.max_stack prog)) code
          && Icode.max_stack prog >= 1
      in
      bounds_ok && Irel.equal (Icode.exec idb prog) (Iplan.run idb plan))

let exec_member_agrees =
  (* The packed membership probe must agree with materialize-then-mem
     on every structure of the scan and every candidate row — including
     rows that rename onto each other. *)
  let tab, _, plan = plan_ctx in
  QCheck2.Test.make ~count:200 ~name:"exec_member = mem after rename"
    ~print:plan_to_string gen_plan
    (fun iplan ->
      let prog = Icode.compile_plan tab iplan in
      let k = Icode.out_arity prog in
      let candidates =
        Irel.rows (Irel.full ~domain:(Array.init (Symtab.size tab) Fun.id) k)
      in
      Iscan.structure_thunks plan
      |> Seq.for_all (fun thunk ->
             let s = thunk () in
             let ia = Icode.exec s.Iscan.idb prog in
             let member =
               Icode.exec_member s.Iscan.idb prog ~rename:s.Iscan.rename
             in
             Array.for_all
               (fun row ->
                 member row
                 = Irel.mem
                     (Array.map (fun c -> s.Iscan.rename.(c)) row)
                     ia)
               candidates))

(* --- compiled formulas against Ieval on generated instances ---------- *)

(* Reuse the fuzzer's (db, query) generator: for each instance, the
   compiled evaluators must agree with Ieval on every structure of the
   partition stream — answers, member verdicts and sentence verdicts,
   including which Eval_error (if any) escapes. *)

let eval_outcome f =
  match f () with
  | v -> Result.Ok v
  | exception Eval.Eval_error msg -> Error msg

let compiled_formulas_match_ieval =
  QCheck2.Test.make ~count:60 ~name:"compiled formulas = Ieval on instances"
    ~print:(fun seed -> Printf.sprintf "instance seed %d" seed)
    QCheck2.Gen.(0 -- 10_000)
    (fun seed ->
      let i = Fuzz_gen.instance ~seed 0 in
      let db = i.Fuzz_gen.db and query = i.Fuzz_gen.query in
      let plan = Iscan.prepare db in
      let tab = Iscan.symtab plan in
      let ca = Icode.compile_answer tab query in
      let cm = Icode.compile_member tab query in
      let body = Query.body query in
      let cs =
        if Query.is_boolean query then Some (Icode.compile_sentence tab body)
        else None
      in
      Iscan.structure_thunks plan
      |> Seq.for_all (fun thunk ->
             let s = thunk () in
             let idb = s.Iscan.idb in
             let answers_agree =
               match
                 ( eval_outcome (fun () -> Icode.run_answer idb ca),
                   eval_outcome (fun () -> Ieval.answer idb query) )
               with
               | Result.Ok a, Result.Ok b -> Irel.equal a b
               | Error a, Error b -> String.equal a b
               | _ -> false
             in
             let members_agree =
               let k = Query.arity query in
               let universe = Idb.universe idb in
               k > 2 (* keep the probe grid small *)
               || Irel.rows (Irel.full ~domain:universe k)
                  |> Array.for_all (fun row ->
                         match
                           ( eval_outcome (fun () ->
                                 Icode.run_member idb cm row),
                             eval_outcome (fun () -> Ieval.member idb query row)
                           )
                         with
                         | Result.Ok a, Result.Ok b -> Bool.equal a b
                         | Error a, Error b -> String.equal a b
                         | _ -> false)
             in
             let sentences_agree =
               match cs with
               | None -> true
               | Some cs -> (
                 match
                   ( eval_outcome (fun () -> Icode.run_sentence idb cs),
                     eval_outcome (fun () -> Ieval.satisfies idb body) )
                 with
                 | Result.Ok a, Result.Ok b -> Bool.equal a b
                 | Error a, Error b -> String.equal a b
                 | _ -> false)
             in
             answers_agree && members_agree && sentences_agree))

(* --- register/slot bounds of compiled formulas ----------------------- *)

let test_check_bounds () =
  List.iter
    (fun (db, text) ->
      let query = q text in
      let plan = Iscan.prepare db in
      let tab = Iscan.symtab plan in
      let depth_bound =
        (* binder depth can never exceed the formula size; the compiled
           register file must stay within it *)
        String.length text
      in
      List.iter
        (fun c ->
          check_bool
            (Printf.sprintf "registers bounded on %s" text)
            true
            (Icode.check_regs c >= 0 && Icode.check_regs c <= depth_bound);
          check_bool
            (Printf.sprintf "SO registers bounded on %s" text)
            true
            (Icode.check_sos c >= 0 && Icode.check_sos c <= depth_bound);
          List.iter
            (fun slot ->
              check_bool
                (Printf.sprintf "slot %d in range on %s" slot text)
                true
                (slot >= 0 && slot < Symtab.rel_count tab))
            (Icode.check_slots c))
        [
          Icode.compile_answer tab query;
          Icode.compile_member tab query;
          Icode.compile_sentence tab (Query.body query)
          (* free-variable errors are deferred to run time, so
             compiling an open body as a sentence is fine here *);
        ])
    [
      (socrates, "(x). exists y. TEACHES(x, y)");
      (socrates, "(x). exists2 Q/1. Q(x) /\\ exists y. TEACHES(x, y)");
      (ripper, "(x). MURDERER(x) /\\ ~POLITICIAN(x)");
      (ripper, "(). forall x. MURDERER(x) -> x != victoria");
    ]

(* --- engine-level spot checks ---------------------------------------- *)

let test_compiled_engine_parity () =
  List.iter
    (fun (db, text) ->
      let query = q text in
      let run kernel =
        if Query.is_boolean query then
          `Bool (Certain.certain_boolean ~kernel db query)
        else `Rel (Certain.answer ~kernel db query)
      in
      match (run Certain.Compiled, run Certain.Interned) with
      | `Bool a, `Bool b -> check_bool text b a
      | `Rel a, `Rel b -> check Support.relation_testable text b a
      | _ -> assert false)
    [
      (socrates, "(x). exists y. TEACHES(x, y)");
      (socrates, "(x). ~(exists y. TEACHES(x, y))");
      (ripper, "(). exists x. MURDERER(x) /\\ POLITICIAN(x)");
      (ripper, "(x). MURDERER(x) -> x != victoria");
      (socrates, "(x). exists2 Q/1. Q(x) /\\ exists y. TEACHES(x, y)");
    ]

let test_compiled_possible_parity () =
  List.iter
    (fun (db, text) ->
      let query = q text in
      check Support.relation_testable text
        (Certain.possible_answer ~kernel:Certain.Interned db query)
        (Certain.possible_answer ~kernel:Certain.Compiled db query))
    [
      (socrates, "(x). exists y. TEACHES(x, y)");
      (ripper, "(x). MURDERER(x) /\\ POLITICIAN(x)");
    ]

let test_compiled_error_parity () =
  (* Compile-time-detectable errors must surface at run time with the
     interpreter's message, and only when evaluation reaches them. *)
  let plan = Iscan.prepare socrates in
  let tab = Iscan.symtab plan in
  let idb = (Iscan.discrete plan).Iscan.idb in
  let trip f = match f () with _ -> None | exception Eval.Eval_error m -> Some m in
  let cases =
    [
      ("(). exists x. NOPRED(x)", "unknown predicate NOPRED");
      ("(). exists x. TEACHES(x)", "predicate TEACHES used with arity 1, declared 2");
      ("(). TEACHES(socrates, nobody)", "unknown constant nobody");
    ]
  in
  List.iter
    (fun (text, expected) ->
      let query = q text in
      let cs = Icode.compile_sentence tab (Query.body query) in
      check
        Alcotest.(option string)
        text (Some expected)
        (trip (fun () -> Icode.run_sentence idb cs));
      check
        Alcotest.(option string)
        (text ^ " (ieval)")
        (trip (fun () -> Ieval.satisfies idb (Query.body query)))
        (trip (fun () -> Icode.run_sentence idb cs)))
    cases;
  (* Short-circuiting hides the error exactly as in the interpreter. *)
  let hidden = q "(). true \\/ NOPRED(socrates)" in
  let cs = Icode.compile_sentence tab (Query.body hidden) in
  check_bool "short-circuit hides the bad atom" true
    (Icode.run_sentence idb cs);
  let member_arity = Icode.compile_member tab (q "(x). TEACHES(x, x)") in
  check
    Alcotest.(option string)
    "member arity check"
    (Some "Eval.member: tuple arity differs from the query head")
    (trip (fun () -> Icode.run_member idb member_arity [| 0; 1 |]))

let test_compiled_stats_parity () =
  let query = q "(x). ~(exists y. TEACHES(x, y))" in
  let sig_of (s : Certain.stats) =
    (s.structures, s.evaluations, s.early_exit, s.pruned_candidates)
  in
  let _, s_c = Certain.answer_stats ~kernel:Certain.Compiled socrates query in
  let _, s_i = Certain.answer_stats ~kernel:Certain.Interned socrates query in
  check
    Alcotest.(pair (pair int int) (pair bool int))
    "stats agree"
    (let a, b, c, d = sig_of s_i in
     ((a, b), (c, d)))
    (let a, b, c, d = sig_of s_c in
     ((a, b), (c, d)))

let suite =
  [
    Support.qcheck_case comparators_agree;
    Support.qcheck_case mem_row_agrees;
    Support.qcheck_case compiled_plan_in_bounds_and_agrees;
    Support.qcheck_case exec_member_agrees;
    Support.qcheck_case compiled_formulas_match_ieval;
    Alcotest.test_case "compiled check bounds" `Quick test_check_bounds;
    Alcotest.test_case "engine parity (certain)" `Quick
      test_compiled_engine_parity;
    Alcotest.test_case "engine parity (possible)" `Quick
      test_compiled_possible_parity;
    Alcotest.test_case "error-message parity" `Quick
      test_compiled_error_parity;
    Alcotest.test_case "stats parity" `Quick test_compiled_stats_parity;
  ]
