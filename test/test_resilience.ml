(* The resilience layer: budget validation, qualified degradation
   under each policy, determinism of capped scans across worker counts
   and structure orders, deadline trips, and seeded fault injection. *)

open Logicaldb

let relation = Support.relation_testable

(* Eight constants, four of them unseparated: enough kernel partitions
   that a small structure cap always trips before the scan finishes,
   and a domains=4 scan actually distributes chunks. *)
let big_db () =
  database
    ~predicates:[ ("P", 1); ("R", 2) ]
    ~constants:[ "a"; "b"; "c"; "d"; "u1"; "u2"; "u3"; "u4" ]
    ~facts:
      [
        ("P", [ "a" ]);
        ("P", [ "u1" ]);
        ("R", [ "a"; "b" ]);
        ("R", [ "b"; "c" ]);
        ("R", [ "u2"; "d" ]);
      ]
    ~distinct:[ ("a", "b"); ("a", "c"); ("b", "c"); ("c", "d") ]
    ()

(* [(x). P(x)] has the non-empty certain answer {a, u1} on [big_db]:
   the survivor set never empties, so a capped scan never decides
   early — it always runs into the cap. *)
let certain_query () = query "(x). P(x)"

(* [(x). ~P(x)] has an empty certain answer but many initial
   survivors: pruning makes progress structure by structure, which is
   what the Partial upper bound should reflect. *)
let pruning_query () = query "(x). ~P(x)"

(* --- budgets -------------------------------------------------------- *)

let test_budget_validation () =
  Alcotest.check_raises "zero timeout"
    (Invalid_argument "Budget.make: timeout must be finite and positive")
    (fun () -> ignore (Budget.make ~timeout:0. ()));
  Alcotest.check_raises "infinite timeout"
    (Invalid_argument "Budget.make: timeout must be finite and positive")
    (fun () -> ignore (Budget.make ~timeout:Float.infinity ()));
  Alcotest.check_raises "zero structure cap"
    (Invalid_argument "Budget.make: max_structures must be positive")
    (fun () -> ignore (Budget.make ~max_structures:0 ()));
  Alcotest.check_raises "negative evaluation cap"
    (Invalid_argument "Budget.make: max_evaluations must be positive")
    (fun () -> ignore (Budget.make ~max_evaluations:(-3) ()));
  Alcotest.(check bool) "unlimited" true (Budget.is_unlimited Budget.unlimited);
  Alcotest.(check bool)
    "limited" false
    (Budget.is_unlimited (Budget.make ~max_structures:5 ()));
  Alcotest.(check string)
    "rendering" "timeout=2s structures<=500"
    (Budget.to_string (Budget.make ~timeout:2. ~max_structures:500 ()))

let test_unlimited_is_exact () =
  let db = big_db () and q = certain_query () in
  let exact = Certain.answer db q in
  let result, stats = Resilient.answer_stats db q in
  (match result with
  | Resilient.Exact r -> Alcotest.check relation "equals the engine" exact r
  | _ -> Alcotest.fail "unlimited budget did not return Exact");
  (match stats.Resilient.source with
  | Resilient.Exact_scan -> ()
  | s -> Alcotest.failf "source %s, expected exact scan" (Resilient.source_to_string s));
  Alcotest.(check bool) "no trip recorded" true (stats.Resilient.tripped = None);
  Alcotest.(check bool)
    "no failure recorded" true
    (stats.Resilient.scan_failure = None)

(* --- degradation per policy ----------------------------------------- *)

let tight = Budget.make ~max_structures:1 ()

let test_policy_fail () =
  let db = big_db () and q = certain_query () in
  let result, stats = Resilient.answer_stats ~policy:Resilient.Fail ~budget:tight db q in
  (match result with
  | Resilient.Exhausted -> ()
  | _ -> Alcotest.fail "Fail policy did not return Exhausted");
  (match stats.Resilient.tripped with
  | Some Cancel.Structures -> ()
  | Some r -> Alcotest.failf "tripped %s, expected structure cap" (Cancel.reason_to_string r)
  | None -> Alcotest.fail "no trip recorded");
  (match stats.Resilient.source with
  | Resilient.No_answer -> ()
  | s -> Alcotest.failf "source %s, expected no answer" (Resilient.source_to_string s))

let test_policy_partial_is_upper_bound () =
  let db = big_db () and q = pruning_query () in
  let exact = Certain.answer db q in
  let result, stats =
    Resilient.answer_stats ~policy:Resilient.Partial ~budget:tight db q
  in
  (match result with
  | Resilient.Upper_bound r ->
    Alcotest.(check bool) "exact within survivors" true (Relation.subset exact r)
  | _ -> Alcotest.fail "Partial policy did not return Upper_bound");
  Alcotest.(check bool) "trip recorded" true (stats.Resilient.tripped <> None);
  Alcotest.(check bool) "scan stats kept" true (stats.Resilient.scan <> None)

let test_policy_approx_is_lower_bound () =
  let db = big_db () and q = certain_query () in
  let exact = Certain.answer db q in
  let result, stats =
    Resilient.answer_stats ~policy:Resilient.Approx ~budget:tight db q
  in
  (match result with
  | Resilient.Lower_bound r ->
    Alcotest.(check bool) "Theorem 11" true (Relation.subset r exact)
  | _ -> Alcotest.fail "Approx policy did not return Lower_bound");
  match stats.Resilient.source with
  | Resilient.Approx_fallback -> ()
  | s -> Alcotest.failf "source %s, expected fallback" (Resilient.source_to_string s)

let test_evaluation_cap_reason () =
  let db = big_db () and q = certain_query () in
  let _, stats =
    Resilient.answer_stats ~policy:Resilient.Fail
      ~budget:(Budget.make ~max_evaluations:1 ())
      db q
  in
  match stats.Resilient.tripped with
  | Some Cancel.Evaluations -> ()
  | Some r -> Alcotest.failf "tripped %s, expected evaluation cap" (Cancel.reason_to_string r)
  | None -> Alcotest.fail "no trip recorded"

let test_boolean_policies () =
  let db = big_db () in
  let q = query "(). P(a)" in
  (* Certainly true: the scan finds no countermodel, so a tight cap
     always trips before the verdict is earned. *)
  (match Resilient.boolean ~policy:Resilient.Fail ~budget:tight db q with
  | Resilient.Exhausted -> ()
  | _ -> Alcotest.fail "Fail did not exhaust");
  (match Resilient.boolean ~policy:Resilient.Approx ~budget:tight db q with
  | Resilient.Lower_bound v ->
    (* sound: an affirmative lower bound entails certainty *)
    if v then
      Alcotest.(check bool) "lower bound is sound" true (Certain.certain_boolean db q)
  | _ -> Alcotest.fail "Approx did not return Lower_bound");
  Alcotest.check_raises "answer variables rejected"
    (Invalid_argument "Resilient.boolean: the query has answer variables")
    (fun () -> ignore (Resilient.boolean db (certain_query ())))

let test_timeout_trips_deadline () =
  let db = big_db () and q = certain_query () in
  let exact = Certain.answer db q in
  let result, stats =
    Resilient.answer_stats ~policy:Resilient.Approx
      ~budget:(Budget.make ~timeout:1e-6 ())
      db q
  in
  (match result with
  | Resilient.Lower_bound r ->
    Alcotest.(check bool) "still sound" true (Relation.subset r exact)
  | Resilient.Exact r ->
    (* a machine fast enough to finish inside a microsecond is allowed *)
    Alcotest.check relation "exact then" exact r
  | _ -> Alcotest.fail "unexpected qualified result under a deadline");
  match (result, stats.Resilient.tripped) with
  | Resilient.Lower_bound _, Some Cancel.Deadline -> ()
  | Resilient.Lower_bound _, trip ->
    Alcotest.failf "degraded with trip %s, expected deadline"
      (match trip with
      | Some r -> Cancel.reason_to_string r
      | None -> "(none)")
  | _ -> ()

(* --- determinism of capped scans ------------------------------------ *)

(* Same budget, same order: the positional structure-cap truncation
   must yield the identical qualified result and structures stat
   whatever the worker-domain count and (for the order-independent
   Approx fallback) whatever the structure order. *)

let capped = Budget.make ~max_structures:3 ()

let run_approx ~domains ~order db q =
  Resilient.answer_stats ~policy:Resilient.Approx ~budget:capped ~domains ~order
    db q

let test_approx_determinism_across_schedules () =
  let db = big_db () and q = certain_query () in
  let configs =
    [
      (1, Certain.Fresh_first);
      (4, Certain.Fresh_first);
      (1, Certain.Merge_first);
      (4, Certain.Merge_first);
    ]
  in
  let outcomes =
    List.map (fun (domains, order) -> run_approx ~domains ~order db q) configs
  in
  let structures (_, stats) =
    match stats.Resilient.scan with
    | Some scan -> scan.Certain.structures
    | None -> Alcotest.fail "scan stats missing"
  in
  let value (result, _) =
    match result with
    | Resilient.Lower_bound r -> r
    | _ -> Alcotest.fail "capped Approx scan did not degrade"
  in
  match outcomes with
  | first :: rest ->
    List.iteri
      (fun i other ->
        Alcotest.check relation
          (Printf.sprintf "qualified value, config %d" (i + 1))
          (value first) (value other);
        Alcotest.(check int)
          (Printf.sprintf "structures stat, config %d" (i + 1))
          (structures first) (structures other))
      rest
  | [] -> assert false

let test_partial_determinism_across_domains () =
  let db = big_db () and q = pruning_query () in
  let run domains =
    Resilient.answer_stats ~policy:Resilient.Partial ~budget:capped ~domains db q
  in
  let r1, s1 = run 1 and r4, s4 = run 4 in
  (match (r1, r4) with
  | Resilient.Upper_bound a, Resilient.Upper_bound b ->
    Alcotest.check relation "same survivor set" a b
  | _ -> Alcotest.fail "capped Partial scan did not degrade");
  match (s1.Resilient.scan, s4.Resilient.scan) with
  | Some a, Some b ->
    Alcotest.(check int) "same structures stat" a.Certain.structures
      b.Certain.structures
  | _ -> Alcotest.fail "scan stats missing"

(* --- fault injection ------------------------------------------------ *)

let test_fault_degrades_not_crashes () =
  let db = big_db () and q = certain_query () in
  let exact = Certain.answer db q in
  (* rate 1.0: the very first cancellation probe raises inside the
     scan. Approx must absorb it into the fallback... *)
  let result, stats =
    Faults.with_faults ~seed:11 ~rate:1.0 (fun () ->
        Resilient.answer_stats ~policy:Resilient.Approx ~domains:2 db q)
  in
  (match result with
  | Resilient.Lower_bound r ->
    Alcotest.(check bool) "fallback still sound" true (Relation.subset r exact)
  | _ -> Alcotest.fail "injected fault did not degrade to the fallback");
  Alcotest.(check bool)
    "failure recorded honestly" true
    (stats.Resilient.scan_failure <> None);
  (* ... while Fail honors its propagation contract. *)
  match
    Faults.with_faults ~seed:11 ~rate:1.0 (fun () ->
        Resilient.answer ~policy:Resilient.Fail db q)
  with
  | _ -> Alcotest.fail "Fail policy swallowed an injected fault"
  | exception Faults.Injected "scan.worker" -> ()

let test_fault_determinism () =
  let db = big_db () and q = certain_query () in
  let run () =
    Faults.with_faults ~seed:4242 ~rate:0.3 (fun () ->
        Resilient.answer_stats ~policy:Resilient.Approx ~domains:1 db q)
  in
  let r1, s1 = run () and r2, s2 = run () in
  (match (r1, r2) with
  | Resilient.Lower_bound a, Resilient.Lower_bound b
  | Resilient.Exact a, Resilient.Exact b ->
    Alcotest.check relation "same value" a b
  | _ -> Alcotest.fail "same seed, different qualified constructors");
  Alcotest.(check (option string))
    "same recorded failure" s1.Resilient.scan_failure s2.Resilient.scan_failure

let test_fault_point_corpus_read () =
  let path = Filename.temp_file "resilience" ".fuzz" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let case =
        { Fuzz_corpus.oracle = None; query = certain_query (); db = big_db () }
      in
      Fuzz_corpus.save path case;
      (match
         Faults.with_faults ~seed:1 ~rate:1.0 (fun () -> Fuzz_corpus.load path)
       with
      | _ -> Alcotest.fail "armed corpus read did not fault"
      | exception Faults.Injected "corpus.read" -> ());
      Alcotest.(check bool) "plan restored" false (Faults.armed ());
      let roundtripped = Fuzz_corpus.load path in
      Alcotest.check Support.query_testable "disarmed read works" case.query
        roundtripped.Fuzz_corpus.query)

(* [Engine.now_ns] is the monotonic [Obs.now_ns] clock, so recorded
   scan durations can never be negative — unlike the wall-clock time it
   replaced, which could step backwards under clock adjustment. *)
let test_wall_ns_monotonic () =
  let db = big_db () and q = certain_query () in
  let _, stats = Certain.answer_stats db q in
  Alcotest.(check bool) "raw scan wall_ns >= 0" true
    (Int64.compare stats.Certain.wall_ns 0L >= 0);
  let _, rstats =
    Resilient.answer_stats ~policy:Resilient.Partial ~budget:tight db q
  in
  match rstats.Resilient.scan with
  | Some scan ->
    Alcotest.(check bool) "budgeted scan wall_ns >= 0" true
      (Int64.compare scan.Certain.wall_ns 0L >= 0)
  | None -> Alcotest.fail "scan stats missing"

(* All three evaluation kernels must degrade identically: same
   qualified constructor and value, same provenance, same scan counters
   (wall-clock excluded). The string kernel is the reference; interned
   and compiled are on trial. The fuzz-side twin is the
   [resilient-kernel-parity] oracle, which additionally runs under
   injected faults. *)
let test_kernel_parity_under_budget () =
  let db = big_db () in
  List.iter
    (fun q ->
      List.iter
        (fun policy ->
          let run kernel =
            Resilient.answer_stats ~policy ~kernel ~budget:tight db q
          in
          let r_s, s_s = run Certain.Strings in
          List.iter
            (fun (kernel, kname) ->
              let r_i, s_i = run kernel in
              (match (r_s, r_i) with
              | Resilient.Exact x, Resilient.Exact y
              | Resilient.Lower_bound x, Resilient.Lower_bound y
              | Resilient.Upper_bound x, Resilient.Upper_bound y ->
                Alcotest.check relation
                  (kname ^ ": same qualified value") x y
              | Resilient.Exhausted, Resilient.Exhausted -> ()
              | _ ->
                Alcotest.failf
                  "%s disagrees with strings on the qualified constructor"
                  kname);
              Alcotest.(check string)
                (kname ^ ": same source")
                (Resilient.source_to_string s_s.Resilient.source)
                (Resilient.source_to_string s_i.Resilient.source);
              Alcotest.(check (option string))
                (kname ^ ": same trip provenance")
                (Option.map Cancel.reason_to_string s_s.Resilient.tripped)
                (Option.map Cancel.reason_to_string s_i.Resilient.tripped);
              match (s_s.Resilient.scan, s_i.Resilient.scan) with
              | Some a, Some b ->
                Alcotest.(check (pair int int))
                  (kname ^ ": same scan counters")
                  (a.Certain.structures, a.Certain.evaluations)
                  (b.Certain.structures, b.Certain.evaluations)
              | None, None -> ()
              | _ ->
                Alcotest.failf "%s disagrees on scan-stats presence" kname)
            [ (Certain.Interned, "interned"); (Certain.Compiled, "compiled") ])
        [ Resilient.Fail; Resilient.Partial; Resilient.Approx ])
    [ certain_query (); pruning_query () ]

(* The acceptance oracle: the resilient-* invariants hold over a
   seeded instance stream with fault injection enabled (the full >= 1k
   run is CI's fault-smoke job; this keeps a fast regression here). *)
let test_fuzz_oracle_with_faults () =
  let outcome =
    Fuzz.run
      ~config:
        {
          Fuzz.default with
          count = 60;
          typed = false;
          shrink = false;
          faults = true;
        }
      ()
  in
  if not (Fuzz.clean outcome) then
    Alcotest.failf "resilience fuzz violations:@.%a" Fuzz.pp_outcome outcome

let suite =
  [
    Alcotest.test_case "budget validation and rendering" `Quick
      test_budget_validation;
    Alcotest.test_case "unlimited budget is exact" `Quick test_unlimited_is_exact;
    Alcotest.test_case "Fail policy exhausts on the structure cap" `Quick
      test_policy_fail;
    Alcotest.test_case "Partial policy returns an upper bound" `Quick
      test_policy_partial_is_upper_bound;
    Alcotest.test_case "Approx policy returns a sound lower bound" `Quick
      test_policy_approx_is_lower_bound;
    Alcotest.test_case "evaluation cap reports its own reason" `Quick
      test_evaluation_cap_reason;
    Alcotest.test_case "Boolean queries degrade the same way" `Quick
      test_boolean_policies;
    Alcotest.test_case "timeout trips the deadline" `Quick
      test_timeout_trips_deadline;
    Alcotest.test_case "capped Approx scan is deterministic across schedules"
      `Quick test_approx_determinism_across_schedules;
    Alcotest.test_case "capped Partial scan is deterministic across domains"
      `Quick test_partial_determinism_across_domains;
    Alcotest.test_case "injected worker fault degrades, never crashes" `Quick
      test_fault_degrades_not_crashes;
    Alcotest.test_case "fault injection is deterministic per seed" `Quick
      test_fault_determinism;
    Alcotest.test_case "corpus read is an injectable fault point" `Quick
      test_fault_point_corpus_read;
    Alcotest.test_case "scan durations come from the monotonic clock" `Quick
      test_wall_ns_monotonic;
    Alcotest.test_case "kernels degrade identically under a budget" `Quick
      test_kernel_parity_under_budget;
    Alcotest.test_case "fuzz oracles hold under fault injection" `Quick
      test_fuzz_oracle_with_faults;
  ]
