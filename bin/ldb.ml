(* ldb — command-line front end for CW logical databases.

   ldb info      DB.ldb                      inspect a database
   ldb axioms    DB.ldb                      print the full theory
   ldb query     DB.ldb "(x). P(x)"          evaluate a query
   ldb compile   DB.ldb "(x). ~P(x)"         show Q-hat and the algebra plan
   ldb worlds    DB.ldb                      enumerate possible-world shapes
   ldb mutate    DB.ldb --insert "P(a)"      apply mutations to a database file
   ldb fuzz      --seed 42 --count 10000     differential fuzzing with oracles

   Exit codes (documented in README.md, tested in test/test_cli.ml):
     0    success — affirmative verdict / non-empty answer / clean fuzz run
     1    refuted or empty — false verdict, empty relation, oracle violations
     2    usage, file, parse or type errors
     124  budget exhausted under --on-budget fail
     130  interrupted (SIGINT) *)

open Cmdliner
module Cterm = Cmdliner.Term
open Logicaldb

(* --- shared arguments and helpers --- *)

let db_arg =
  let doc = "Database file in .ldb format." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DB" ~doc)

let query_arg =
  let doc = "Query, e.g. \"(x, y). exists z. R(x, z) /\\\\ R(z, y)\"." in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc)

let handle f =
  try f () with
  | Ldb_format.Syntax_error (line, msg) ->
    Fmt.epr "syntax error at line %d: %s@." line msg;
    exit 2
  | Parser.Parse_error (pos, msg) ->
    Fmt.epr "query syntax error at offset %d: %s@." pos msg;
    exit 2
  | Lexer.Lex_error (pos, msg) ->
    Fmt.epr "query lexical error at offset %d: %s@." pos msg;
    exit 2
  | Invalid_argument msg ->
    Fmt.epr "error: %s@." msg;
    exit 2
  | Eval.Eval_error msg ->
    Fmt.epr "evaluation error: %s@." msg;
    exit 2
  | Fuzz_corpus.Corpus_error msg ->
    Fmt.epr "corpus error: %s@." msg;
    exit 2
  | Recovery.Corrupt msg ->
    Fmt.epr "unrecoverable: %s@." msg;
    exit 2
  | Wal.Corrupt { offset; reason } ->
    Fmt.epr "unrecoverable: WAL corrupt at byte %d: %s@." offset reason;
    exit 2
  | Snapshot.Corrupt msg ->
    Fmt.epr "unrecoverable: %s@." msg;
    exit 2
  | Sys_error msg ->
    Fmt.epr "error: %s@." msg;
    exit 2

(* .tldb files hold typed databases; everything else is untyped. *)
type loaded =
  | Untyped of Cw_database.t
  | Typed of Ty_database.t

let load_any path =
  if Filename.check_suffix path ".tldb" then Typed (Tldb_format.load path)
  else Untyped (Ldb_format.load path)

(* Generic commands work on the untyped elaboration. *)
let load path =
  match load_any path with
  | Untyped db -> db
  | Typed tdb -> Ty_database.to_cw tdb

(* --- info --- *)

let info_cmd =
  let run path =
    handle (fun () ->
        let db = load path in
        let constants = Cw_database.constants db in
        Fmt.pr "constants (%d): %s@." (List.length constants)
          (String.concat ", " constants);
        Fmt.pr "predicates: %s@."
          (String.concat ", "
             (List.map
                (fun (p, k) -> Printf.sprintf "%s/%d" p k)
                (Vocabulary.predicates (Cw_database.vocabulary db))));
        Fmt.pr "facts: %d@." (List.length (Cw_database.facts db));
        Fmt.pr "uniqueness axioms: %d@."
          (List.length (Cw_database.distinct_pairs db));
        Fmt.pr "fully specified: %b@." (Cw_database.is_fully_specified db);
        Fmt.pr "unknown values: %s@."
          (match Cw_database.unknown_values db with
          | [] -> "(none)"
          | us -> String.concat ", " us);
        let cap = 1_000_000 in
        let count = Partition.count_valid_up_to cap db in
        Fmt.pr "possible-world shapes (kernel partitions): %s@."
          (if count >= cap then Printf.sprintf ">= %d" cap
           else string_of_int count))
  in
  let doc = "Show a database's vocabulary, axioms and unknowns." in
  Cmd.v (Cmd.info "info" ~doc) Cterm.(const run $ db_arg)

(* --- axioms --- *)

let axioms_cmd =
  let run path =
    handle (fun () ->
        let db = load path in
        List.iter
          (fun f -> Fmt.pr "%a@." Pretty.pp_formula f)
          (Axioms.theory db))
  in
  let doc =
    "Print the five-component theory (facts, uniqueness, domain closure, \
     completions)."
  in
  Cmd.v (Cmd.info "axioms" ~doc) Cterm.(const run $ db_arg)

(* --- query --- *)

type engine =
  | Exact
  | Approximate
  | Possible

let engine_arg =
  let doc =
    "Evaluation engine: $(b,exact) (Theorem 1 certain answers), \
     $(b,approx) (Section 5 sound approximation), or $(b,possible) \
     (dual modality)."
  in
  Arg.(
    value
    & opt (enum [ ("exact", Exact); ("approx", Approximate); ("possible", Possible) ]) Exact
    & info [ "engine"; "e" ] ~docv:"ENGINE" ~doc)

let algorithm_arg =
  let doc = "Exact algorithm: $(b,partitions) or $(b,naive)." in
  Arg.(
    value
    & opt
        (enum
           [
             ("partitions", Certain.Kernel_partitions);
             ("naive", Certain.Naive_mappings);
           ])
        Certain.Kernel_partitions
    & info [ "algorithm" ] ~docv:"ALGO" ~doc)

let kernel_arg =
  let doc =
    "Evaluation kernel for the exact/possible engines: $(b,interned) \
     (integer-coded constants, array tuples, incremental quotients — the \
     default), $(b,compiled) (the interned scan with plans and formulas \
     flattened to packed-integer flat code; fastest) or $(b,strings) (the \
     original string-keyed path, kept as the differential-testing \
     reference)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("interned", Certain.Interned);
             ("compiled", Certain.Compiled);
             ("strings", Certain.Strings);
           ])
        Certain.Interned
    & info [ "kernel" ] ~docv:"KERNEL" ~doc)

let backend_arg =
  let doc =
    "Approximation back end: $(b,direct) (Tarskian evaluator), \
     $(b,algebra) (compiled relational algebra) or $(b,optimized) \
     (optimized algebra with the acyclic-query fast path: acyclic \
     conjunctive queries are evaluated by Yannakakis's semijoin-reduced \
     join-tree algorithm, everything else falls back to the optimized \
     plan)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("direct", Approx.Direct);
             ("algebra", Approx.Algebra);
             ("optimized", Approx.Algebra_optimized);
           ])
        Approx.Direct
    & info [ "backend" ] ~docv:"BACKEND" ~doc)

let explain_arg =
  let doc =
    "Before evaluating, print the query plan: the optimized algebra \
     expression, and — when the acyclic-query fast path applies — the \
     join tree with each node's variable coverage and the semijoin \
     schedule of both reducer passes."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let domains_arg =
  let doc =
    "Worker domains for the exact/possible engines (1 = sequential)."
  in
  Arg.(value & opt int 1 & info [ "domains"; "j" ] ~docv:"N" ~doc)

let stats_arg =
  let doc =
    "Print structure/evaluation counters, pruning and wall time after the \
     answer."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let timeout_arg =
  let doc = "Budget: wall-clock limit for the exact scan, in seconds." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS" ~doc)

let max_structures_arg =
  let doc = "Budget: maximum structures the exact scan may examine." in
  Arg.(value & opt (some int) None & info [ "max-structures" ] ~docv:"N" ~doc)

let max_evaluations_arg =
  let doc = "Budget: maximum query evaluations the exact scan may perform." in
  Arg.(value & opt (some int) None & info [ "max-evaluations" ] ~docv:"N" ~doc)

let policy_arg =
  let doc =
    "What to do when the budget trips: $(b,fail) (report exhaustion, exit \
     124), $(b,partial) (print the interrupted scan's unrefuted survivors — \
     an upper bound), or $(b,approx) (fall back to the Section 5 sound \
     approximation — a lower bound)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("fail", Resilient.Fail);
             ("partial", Resilient.Partial);
             ("approx", Resilient.Approx);
           ])
        Resilient.Fail
    & info [ "on-budget" ] ~docv:"POLICY" ~doc)

let trace_arg =
  let doc =
    "Trace the evaluation through the observability layer. Plain $(b,--trace) \
     prints a nested span tree (per-phase timings, per-domain counters) after \
     the answer; $(b,--trace=json:FILE) appends one JSON object per event to \
     FILE instead (JSON-lines)."
  in
  Arg.(
    value
    & opt ~vopt:(Some "console") (some string) None
    & info [ "trace" ] ~docv:"console|json:FILE" ~doc)

let metrics_arg =
  let doc =
    "Print the aggregated counter table (totals and per-domain breakdown) \
     after the answer."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let print_stats stats =
  Fmt.pr
    "structures: %d  evaluations: %d  early exit: %b  pruned candidates: %d  \
     wall: %.1f ms  domains: %d@."
    stats.Certain.structures stats.Certain.evaluations
    stats.Certain.early_exit stats.Certain.pruned_candidates
    (Int64.to_float stats.Certain.wall_ns /. 1e6)
    stats.Certain.domains_used

(* Run [f] with whatever sinks --trace / --metrics ask for, then render
   the buffered output. The console trace already includes the counter
   table, so --metrics adds its own buffer only when the trace is
   absent or going to a JSON file.

   Teardown must survive every exit path. [exit] inside [f] (the error
   helpers, a non-zero status) bypasses Fun.protect, and Stdlib.exit
   flushes only the std channels — a --trace=json:FILE channel would
   silently lose its buffered tail. So the single idempotent [finish]
   (uninstall-and-flush the sink, then close the file) is both the
   Fun.protect finalizer and an at_exit handler; whichever fires first
   wins, and an exception after a partial trace write still leaves a
   complete, closed JSON-lines file. *)
let with_observability ~trace ~metrics f =
  let sinks = ref [] in
  let finishers = ref [] in
  (match trace with
  | None -> ()
  | Some "console" ->
    sinks := Obs.console_sink Fmt.stdout :: !sinks
  | Some spec when String.length spec > 5 && String.sub spec 0 5 = "json:" ->
    let path = String.sub spec 5 (String.length spec - 5) in
    let oc = open_out path in
    sinks := Obs.jsonl_sink oc :: !sinks;
    finishers :=
      (fun () ->
        close_out_noerr oc;
        Fmt.pr "(trace written to %s)@." path)
      :: !finishers
  | Some spec ->
    Fmt.epr "error: --trace expects no value or json:FILE, got %S@." spec;
    exit 2);
  if metrics && trace <> Some "console" then begin
    let buf = Obs.buffer () in
    sinks := Obs.buffer_sink buf :: !sinks;
    finishers :=
      (fun () -> Obs.pp_counters Fmt.stdout (Obs.events buf)) :: !finishers
  end;
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      (* Uninstall flushes the sink (and so the trace channel) before
         the close below; with no sink installed it is a no-op. *)
      Obs.uninstall ();
      List.iter (fun g -> g ()) (List.rev !finishers)
    end
  in
  at_exit finish;
  (match !sinks with
  | [] -> ()
  | [ sink ] -> Obs.install sink
  | sinks -> Obs.install (Obs.tee sinks));
  Fun.protect ~finally:finish f

let print_relation answer =
  Relation.iter
    (fun tuple -> Fmt.pr "%s@." (String.concat ", " tuple))
    answer;
  Fmt.pr "(%d tuples)@." (Relation.cardinal answer)

(* Exit-status side of the taxonomy: a false verdict or an empty answer
   is "refuted" (1), anything affirmative is 0. *)
let boolean_status v = if v then 0 else 1
let relation_status r = if Relation.cardinal r = 0 then 1 else 0

(* Typed query evaluation for .tldb databases: typed syntax, typed
   typechecking, then the untyped engines through the elaboration. *)
let run_typed_query tdb query_text engine =
  let q =
    try Ty_parser.query query_text
    with Ty_parser.Parse_error (pos, msg) ->
      Fmt.epr "typed query syntax error at offset %d: %s@." pos msg;
      exit 2
  in
  (try Ty_query.typecheck (Ty_database.vocabulary tdb) q
   with Ty_formula.Type_error msg ->
     Fmt.epr "type error: %s@." msg;
     exit 2);
  if q.Ty_query.head = [] then begin
    let verdict =
      match engine with
      | Exact -> Ty_query.certain_boolean tdb q
      | Approximate -> Ty_query.approx_boolean tdb q
      | Possible ->
        not
          (Ty_query.certain_boolean tdb
             (Ty_query.boolean (Ty_formula.Not q.Ty_query.body)))
    in
    Fmt.pr "%b@." verdict;
    boolean_status verdict
  end
  else begin
    let answer =
      match engine with
      | Exact -> Ty_query.certain_answer tdb q
      | Approximate -> Ty_query.approx_answer tdb q
      | Possible -> Ty_query.possible_answer tdb q
    in
    print_relation answer;
    relation_status answer
  end

(* The resilient path: evaluate under a limited budget and render the
   qualified result with its provenance. *)
let print_qualified_note = function
  | Resilient.Exact _ -> ()
  | Resilient.Lower_bound _ ->
    Fmt.pr "(lower bound: Theorem-11 sound approximation)@."
  | Resilient.Upper_bound _ ->
    Fmt.pr "(upper bound: unrefuted survivors of the interrupted scan)@."
  | Resilient.Exhausted -> ()

let run_resilient db q ~policy ~algorithm ~domains ~kernel ~stats ~budget =
  let exhausted () =
    Fmt.epr "budget exhausted (%s)@." (Budget.to_string budget);
    124
  in
  if Query.is_boolean q then begin
    let result, rstats =
      Resilient.boolean_stats ~policy ~algorithm ~domains ~kernel ~budget db q
    in
    let status =
      match result with
      | Resilient.Exhausted -> exhausted ()
      | Resilient.Exact v | Resilient.Lower_bound v | Resilient.Upper_bound v
        ->
        Fmt.pr "%b@." v;
        print_qualified_note result;
        boolean_status v
    in
    if stats then Fmt.pr "%a@." Resilient.pp_stats rstats;
    status
  end
  else begin
    let result, rstats =
      Resilient.answer_stats ~policy ~algorithm ~domains ~kernel ~budget db q
    in
    let status =
      match result with
      | Resilient.Exhausted -> exhausted ()
      | Resilient.Exact r | Resilient.Lower_bound r | Resilient.Upper_bound r
        ->
        print_relation r;
        print_qualified_note result;
        relation_status r
    in
    if stats then Fmt.pr "%a@." Resilient.pp_stats rstats;
    status
  end

(* --explain: show how the query will be evaluated before running it.
   For the approx engine the plan is over Ph2 of the Semantic-mode hat
   (the default pipeline); for the exact/possible engines it is the
   reusable prepared plan, executed against every image structure. *)
let print_plan db q engine =
  (match engine with
  | Approximate -> (
    let hat = Translate.query Translate.Semantic q in
    let ph2 = Ph.ph2 db in
    match Yannakakis.plan ~virtuals:(Disagree.virtuals db) ph2 hat with
    | Some p ->
      Fmt.pr "plan: acyclic-CQ fast path (Yannakakis)@.%a@."
        Yannakakis.pp_plan p
    | None -> (
      match Compile.prepared ph2 hat with
      | Some plan ->
        Fmt.pr "plan: not an acyclic CQ — optimized algebra fallback@.  %a@."
          Algebra.pp plan
      | None ->
        Fmt.pr
          "plan: outside the relational algebra — Tarskian evaluator@."))
  | Exact | Possible -> (
    match Compile.prepared (Ph.ph1 db) q with
    | Some plan ->
      Fmt.pr "plan: optimized algebra, run per structure@.  %a@." Algebra.pp
        plan
    | None ->
      Fmt.pr "plan: outside the relational algebra — Tarskian evaluator@."));
  Fmt.pr "@."

let query_cmd =
  let run path query_text engine algorithm kernel backend explain domains
      stats trace metrics timeout max_structures max_evaluations policy =
    let status = ref 0 in
    handle (fun () ->
        let budget =
          Budget.make ?timeout ?max_structures ?max_evaluations ()
        in
        with_observability ~trace ~metrics (fun () ->
        match load_any path with
        | Typed tdb ->
          if explain then begin
            Fmt.epr "error: --explain applies to untyped .ldb databases@.";
            exit 2
          end;
          if not (Budget.is_unlimited budget) then begin
            Fmt.epr
              "error: budget options (--timeout, --max-structures, \
               --max-evaluations) apply to untyped .ldb databases@.";
            exit 2
          end;
          status := run_typed_query tdb query_text engine
        | Untyped db ->
        let q = Parser.query query_text in
        if explain then begin
          Query_check.validate db q;
          print_plan db q engine
        end;
        if not (Budget.is_unlimited budget) then begin
          if engine <> Exact then begin
            Fmt.epr
              "error: budget options require --engine exact (the approx and \
               possible engines take no budget)@.";
            exit 2
          end;
          status :=
            run_resilient db q ~policy ~algorithm ~domains ~kernel ~stats
              ~budget
        end
        else begin
        if Query.is_boolean q then begin
          let verdict, counters =
            match engine with
            | Exact ->
              let v, s =
                Certain.certain_boolean_stats ~algorithm ~domains ~kernel db q
              in
              (v, Some s)
            | Approximate -> (Approx.boolean db q, None)
            | Possible ->
              let v, s =
                Certain.possible_boolean_stats ~algorithm ~domains ~kernel db
                  q
              in
              (v, Some s)
          in
          Fmt.pr "%b@." verdict;
          status := boolean_status verdict;
          if stats then Option.iter print_stats counters
        end
        else begin
          let answer, counters =
            match engine with
            | Exact ->
              let r, s =
                Certain.answer_stats ~algorithm ~domains ~kernel db q
              in
              (r, Some s)
            | Approximate -> (Approx.answer ~backend db q, None)
            | Possible ->
              let r, s =
                Certain.possible_answer_stats ~algorithm ~domains ~kernel db q
              in
              (r, Some s)
          in
          print_relation answer;
          status := relation_status answer;
          if stats then Option.iter print_stats counters
        end;
        if engine = Approximate then
          match Approx.completeness db q with
          | Approx.Complete_fully_specified ->
            Fmt.pr "(exact: database fully specified — Theorem 12)@."
          | Approx.Complete_positive ->
            Fmt.pr "(exact: positive query — Theorem 13)@."
          | Approx.Sound_only ->
            Fmt.pr "(sound but possibly incomplete — Theorem 11)@."
        end));
    if !status <> 0 then exit !status
  in
  let doc =
    "Evaluate a query over a logical database, optionally under an \
     evaluation budget (--timeout / --max-structures / --max-evaluations) \
     with a degradation policy (--on-budget)."
  in
  Cmd.v
    (Cmd.info "query" ~doc)
    Cterm.(
      const run $ db_arg $ query_arg $ engine_arg $ algorithm_arg
      $ kernel_arg $ backend_arg $ explain_arg $ domains_arg $ stats_arg
      $ trace_arg $ metrics_arg $ timeout_arg $ max_structures_arg
      $ max_evaluations_arg $ policy_arg)

(* --- compile --- *)

let compile_cmd =
  let run path query_text =
    handle (fun () ->
        let db = load path in
        let q = Parser.query query_text in
        Query_check.validate db q;
        let hat_sem = Translate.query Translate.Semantic q in
        let hat_syn = Translate.query Translate.Syntactic q in
        Fmt.pr "Q           = %a@." Pretty.pp_query q;
        Fmt.pr "Q^ semantic = %a@." Pretty.pp_query hat_sem;
        Fmt.pr "Q^ syntactic formula size: %d (semantic: %d)@."
          (Formula.size (Query.body hat_syn))
          (Formula.size (Query.body hat_sem));
        let ph2 = Ph.ph2 db in
        let plan = Compile.query ph2 hat_sem in
        let optimized = Optimizer.optimize ph2 plan in
        Fmt.pr "algebra plan (%d nodes):@.%a@." (Algebra.size plan) Algebra.pp
          plan;
        Fmt.pr "optimized plan (%d nodes):@.%a@." (Algebra.size optimized)
          Algebra.pp optimized)
  in
  let doc =
    "Show the Section 5 translation Q-hat and its relational-algebra plan."
  in
  Cmd.v (Cmd.info "compile" ~doc) Cterm.(const run $ db_arg $ query_arg)

(* --- worlds --- *)

let worlds_cmd =
  let limit_arg =
    let doc = "Print at most $(docv) worlds." in
    Arg.(value & opt int 20 & info [ "limit"; "n" ] ~docv:"N" ~doc)
  in
  let run path limit =
    handle (fun () ->
        let db = load path in
        Seq.iter
          (fun p -> Fmt.pr "%a@." Partition.pp p)
          (Seq.take limit (Partition.all_valid db));
        let total = Partition.count_valid_up_to 1_000_000 db in
        if total > limit then Fmt.pr "... (%d shapes in total)@." total)
  in
  let doc =
    "Enumerate the kernel partitions — the shapes of the database's possible \
     worlds (Theorem 1)."
  in
  Cmd.v (Cmd.info "worlds" ~doc) Cterm.(const run $ db_arg $ limit_arg)

(* --- explain --- *)

let explain_cmd =
  let run path query_text =
    handle (fun () ->
        let db = load path in
        let q = Parser.query query_text in
        if Query.is_boolean q then
          Fmt.pr "%a@." Explain.pp_verdict
            (Explain.boolean ~order:Partition.Merge_first db q)
        else begin
          (* Explain each constant tuple of the (small) candidate
             space. *)
          let constants = Cw_database.constants db in
          if Query.arity q <> 1 then
            Fmt.epr "explain handles Boolean and unary queries@."
          else
            List.iter
              (fun c ->
                Fmt.pr "%-12s %a@." c Explain.pp_verdict
                  (Explain.member ~order:Partition.Merge_first db q [ c ]))
              constants
        end)
  in
  let doc =
    "Explain certain-answer verdicts: print a possible-world shape \
     (constant merging) refuting each non-certain answer."
  in
  Cmd.v (Cmd.info "explain" ~doc) Cterm.(const run $ db_arg $ query_arg)

(* --- fuzz --- *)

let fuzz_cmd =
  let seed_arg =
    let doc = "Random seed; the same seed yields the identical instance stream." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let count_arg =
    let doc = "Number of differential instances to run." in
    Arg.(value & opt int 1000 & info [ "count"; "n" ] ~docv:"N" ~doc)
  in
  let max_depth_arg =
    let doc = "Maximum connective nesting of generated query bodies." in
    Arg.(value & opt int 3 & info [ "max-depth" ] ~docv:"D" ~doc)
  in
  let unknown_density_arg =
    let doc =
      "Probability that a constant pair lacks a uniqueness axiom (0 = fully \
       specified databases, 1 = every identity open)."
    in
    Arg.(value & opt float 0.5 & info [ "unknown-density" ] ~docv:"P" ~doc)
  in
  let noise_arg =
    let doc =
      "Additionally feed $(docv) byte-level noise inputs to every parser \
       entry point, reporting undocumented exceptions."
    in
    Arg.(value & opt int 0 & info [ "noise" ] ~docv:"N" ~doc)
  in
  let replay_arg =
    let doc =
      "Instead of generating instances, replay corpus case(s): $(docv) is a \
       .fuzz file or a directory of them."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"PATH" ~doc)
  in
  let corpus_dir_arg =
    let doc = "Write each (shrunk) failing case as a .fuzz file under $(docv)." in
    Arg.(value & opt (some string) None & info [ "corpus-dir" ] ~docv:"DIR" ~doc)
  in
  let no_shrink_arg =
    let doc = "Report failures as generated, without minimization." in
    Arg.(value & flag & info [ "no-shrink" ] ~doc)
  in
  let no_typed_arg =
    let doc = "Skip the typed-lane instances." in
    Arg.(value & flag & info [ "no-typed" ] ~doc)
  in
  let faults_arg =
    let doc =
      "Arm seeded fault injection per instance (worker-chunk kills, raising \
       observability sinks) and run the resilience-safety oracle: no \
       injected exception may escape a degrading policy, and the \
       qualified-answer bounds must hold under fire."
    in
    Arg.(value & flag & info [ "faults" ] ~doc)
  in
  let min_acq_detected_arg =
    let doc =
      "Fail (exit 1) unless at least $(docv) instances took the \
       acyclic-query fast path — guards the [acq-parity] oracle against \
       an acyclicity test so strict it always falls back."
    in
    Arg.(value & opt int 0 & info [ "min-acq-detected" ] ~docv:"N" ~doc)
  in
  let run seed count max_depth unknown_density noise replay corpus_dir
      no_shrink no_typed faults min_acq_detected domains trace metrics =
    handle (fun () ->
        with_observability ~trace ~metrics (fun () ->
            Fuzz_oracle.reset_acq_detection ();
            match replay with
            | Some path ->
              let cases =
                if Sys.is_directory path then Fuzz_corpus.load_dir path
                else [ (path, Fuzz_corpus.load path) ]
              in
              if cases = [] then begin
                Fmt.epr "no .fuzz cases under %s@." path;
                exit 2
              end;
              let violations = Fuzz.replay ~domains cases in
              if violations = [] then
                Fmt.pr "replayed %d case(s), no oracle violations@."
                  (List.length cases)
              else begin
                List.iter
                  (fun (label, v) ->
                    Fmt.pr "%s: %a@." label Fuzz_oracle.pp_violation v)
                  violations;
                exit 1
              end
            | None ->
              let config =
                {
                  Fuzz.seed;
                  count;
                  domains;
                  noise;
                  typed = not no_typed;
                  shrink = not no_shrink;
                  faults;
                  corpus_dir;
                  gen =
                    {
                      Fuzz_gen.default with
                      unknown_density;
                      profile =
                        {
                          Generate.default_profile with
                          depth = max_depth;
                        };
                    };
                  progress =
                    (if count >= 2000 then
                       Some
                         (fun i ->
                           if i > 0 && i mod 1000 = 0 then
                             Fmt.epr "... %d/%d@." i count)
                     else None);
                }
              in
              let outcome = Fuzz.run ~config () in
              Fmt.pr "%a@." Fuzz.pp_outcome outcome;
              let detected, total = Fuzz_oracle.acq_detection () in
              if total > 0 then
                Fmt.pr "acq fast path taken on %d/%d instances (%.1f%%)@."
                  detected total
                  (100.0 *. float_of_int detected /. float_of_int total);
              if not (Fuzz.clean outcome) then exit 1;
              if detected < min_acq_detected then begin
                Fmt.epr
                  "error: only %d instances took the acq fast path \
                   (--min-acq-detected %d)@."
                  detected min_acq_detected;
                exit 1
              end))
  in
  let doc =
    "Differential fuzzing of the engines with theorem-level oracles: random \
     (LB, Q) instances run through the exact engine (both algorithms and \
     orderings, sequential and parallel), the Section 5 approximation (all \
     back ends), and the naive-tables baseline, checking Theorem 11 \
     soundness, Theorem 12/13 completeness, modal duality and parse/print \
     round-trips. Failures are greedily shrunk. Exit status 1 on any \
     violation."
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Cterm.(
      const run $ seed_arg $ count_arg $ max_depth_arg $ unknown_density_arg
      $ noise_arg $ replay_arg $ corpus_dir_arg $ no_shrink_arg $ no_typed_arg
      $ faults_arg $ min_acq_detected_arg $ domains_arg $ trace_arg
      $ metrics_arg)

(* --- repl --- *)

let repl_cmd =
  let run path =
    handle (fun () ->
        let db = ref (load path) in
        let engine = ref Exact in
        let engine_name () =
          match !engine with
          | Exact -> "exact"
          | Approximate -> "approx"
          | Possible -> "possible"
        in
        let help () =
          print_string
            "commands:\n\
            \  (x, y). FORMULA   evaluate a query (empty head = Boolean)\n\
            \  :engine exact|approx|possible\n\
            \  :info             database summary\n\
            \  :axioms           print the theory\n\
            \  :assert P(c, d)   add an atomic fact axiom\n\
            \  :distinct c d     add a uniqueness axiom\n\
            \  :help  :quit\n"
        in
        let evaluate line =
          let q = Parser.query line in
          if Query.is_boolean q then
            let verdict =
              match !engine with
              | Exact -> Certain.certain_boolean !db q
              | Approximate -> Approx.boolean !db q
              | Possible -> Certain.possible_boolean !db q
            in
            Fmt.pr "%b@." verdict
          else begin
            let answer =
              match !engine with
              | Exact -> Certain.answer !db q
              | Approximate -> Approx.answer !db q
              | Possible -> Certain.possible_answer !db q
            in
            Relation.iter
              (fun tuple -> Fmt.pr "%s@." (String.concat ", " tuple))
              answer;
            Fmt.pr "(%d tuples)@." (Relation.cardinal answer)
          end
        in
        let command line =
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ ":quit" ] | [ ":q" ] -> raise Exit
          | [ ":help" ] -> help ()
          | [ ":info" ] ->
            Fmt.pr "%a@." Cw_database.pp !db;
            Fmt.pr "fully specified: %b@." (Cw_database.is_fully_specified !db)
          | [ ":axioms" ] ->
            List.iter
              (fun f -> Fmt.pr "%a@." Pretty.pp_formula f)
              (Axioms.theory !db)
          | [ ":engine"; e ] -> (
            match e with
            | "exact" -> engine := Exact
            | "approx" -> engine := Approximate
            | "possible" -> engine := Possible
            | _ -> Fmt.pr "unknown engine %s@." e)
          | ":assert" :: rest ->
            let text = String.concat " " rest in
            (match Parser.formula text with
            | Formula.Atom (p, ts) when List.for_all Term.is_const ts ->
              let args =
                List.filter_map
                  (function Term.Const c -> Some c | Term.Var _ -> None)
                  ts
              in
              db := Cw_database.add_fact !db { Cw_database.pred = p; args };
              Fmt.pr "ok@."
            | _ -> Fmt.pr "only ground atoms can be asserted@.")
          | [ ":distinct"; c; d ] ->
            db := Cw_database.add_distinct !db c d;
            Fmt.pr "ok@."
          | _ -> Fmt.pr "unknown command (:help for help)@."
        in
        Fmt.pr "logical database REPL — engine %s; :help for commands@."
          (engine_name ());
        try
          while true do
            Fmt.pr "ldb> %!";
            let line = try input_line stdin with End_of_file -> raise Exit in
            let line = String.trim line in
            if String.equal line "" then ()
            else if line.[0] = ':' then
              try command line with
              | Invalid_argument msg -> Fmt.pr "error: %s@." msg
              | Parser.Parse_error (_, msg) | Lexer.Lex_error (_, msg) ->
                Fmt.pr "syntax error: %s@." msg
            else
              try evaluate line with
              | Invalid_argument msg -> Fmt.pr "error: %s@." msg
              | Parser.Parse_error (_, msg) | Lexer.Lex_error (_, msg) ->
                Fmt.pr "syntax error: %s@." msg
              | Eval.Eval_error msg -> Fmt.pr "evaluation error: %s@." msg
          done
        with Exit -> Fmt.pr "bye@.")
  in
  let doc = "Interactive query session over a logical database." in
  Cmd.v (Cmd.info "repl" ~doc) Cterm.(const run $ db_arg)

(* --- mutate --- *)

let mutate_cmd =
  let insert_arg =
    let doc = "Add the atomic fact axiom $(docv), e.g. \"P(a, b)\"; repeatable." in
    Arg.(value & opt_all string [] & info [ "insert"; "i" ] ~docv:"FACT" ~doc)
  in
  let retract_arg =
    let doc = "Remove the atomic fact axiom $(docv); repeatable. Retracting \
               an absent fact is an error." in
    Arg.(value & opt_all string [] & info [ "retract"; "r" ] ~docv:"FACT" ~doc)
  in
  let distinct_arg =
    let doc =
      "Close the unknown pair $(docv) to distinct (add the uniqueness axiom); \
       repeatable. Example: --distinct a,b"
    in
    Arg.(
      value
      & opt_all (pair ~sep:',' string string) []
      & info [ "distinct" ] ~docv:"C,D" ~doc)
  in
  let merge_arg =
    let doc =
      "Close the unknown pair $(docv) to equal: DROP merges into KEEP; \
       repeatable. Example: --merge a,b keeps a. Errors if the pair carries \
       a uniqueness axiom."
    in
    Arg.(
      value
      & opt_all (pair ~sep:',' string string) []
      & info [ "merge" ] ~docv:"KEEP,DROP" ~doc)
  in
  let output_arg =
    let doc = "Write the mutated database to $(docv) (default: in place)." in
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"PATH" ~doc)
  in
  let parse_ground_fact text =
    match Parser.formula text with
    | Formula.Atom (p, ts) when List.for_all Term.is_const ts ->
      {
        Cw_database.pred = p;
        args =
          List.filter_map
            (function Term.Const c -> Some c | Term.Var _ -> None)
            ts;
      }
    | _ ->
      Fmt.epr "error: %S is not a ground atom (expected e.g. \"P(a, b)\")@."
        text;
      exit 2
  in
  let query_arg =
    let doc =
      "After applying the mutations, evaluate $(docv) (certain answer) \
       against the resident session and print the result — exercising the \
       same incremental prepare path a server would."
    in
    Arg.(
      value & opt (some string) None & info [ "query"; "q" ] ~docv:"QUERY" ~doc)
  in
  let run path inserts retracts distincts merges output query_text kernel =
    handle (fun () ->
        let session = Incr_session.create (load path) in
        (* Group order is fixed (inserts, retracts, distinct, merge) —
           flags of different kinds do not interleave. *)
        List.iter
          (fun t -> Incr_session.insert session (parse_ground_fact t))
          inserts;
        List.iter
          (fun t -> Incr_session.retract session (parse_ground_fact t))
          retracts;
        List.iter
          (fun (c, d) -> Incr_session.close_unknown session c d ~to_:`Distinct)
          distincts;
        List.iter
          (fun (keep, drop) ->
            Incr_session.close_unknown session keep drop ~to_:`Equal)
          merges;
        let out = Option.value output ~default:path in
        if Filename.check_suffix out ".tldb" then begin
          Fmt.epr
            "error: mutate writes the untyped .ldb format (got %S)@." out;
          exit 2
        end;
        Ldb_format.save out (Incr_session.db session);
        Fmt.pr "%s: delta %d, %d facts@." out
          (Incr_session.delta_epoch session)
          (List.length (Cw_database.facts (Incr_session.db session)));
        match query_text with
        | None -> ()
        | Some text ->
          let q = Parser.query text in
          let prepared =
            match kernel with
            | Certain.Strings ->
              (* Sessions cache interned structures, so the strings
                 kernel prepares against the mutated database directly
                 — same answers, by the kernel-parity contract. *)
              Certain.prepare ~kernel (Incr_session.db session) q
            | Certain.Interned | Certain.Compiled ->
              Incr_session.prepare ~kernel session q
          in
          if Query.is_boolean q then
            let verdict, _ = Certain.prepared_certain_boolean_stats prepared in
            Fmt.pr "%b@." verdict
          else
            let answer, _ = Certain.prepared_answer_stats prepared in
            print_relation answer)
  in
  let doc =
    "Apply mutations to a database file: $(b,--insert)/$(b,--retract) atomic \
     fact axioms, $(b,--distinct) to close an unknown pair to distinct, \
     $(b,--merge) to close it to equal. The same operations are available \
     on a resident server via the insert/retract/close_unknown wire ops \
     (see docs/PROTOCOL.md); this one-shot form is their file-to-file \
     counterpart."
  in
  Cmd.v
    (Cmd.info "mutate" ~doc)
    Cterm.(
      const run $ db_arg $ insert_arg $ retract_arg $ distinct_arg $ merge_arg
      $ output_arg $ query_arg $ kernel_arg)

(* --- serve --- *)

let serve_cmd =
  let socket_arg =
    let doc = "Unix-domain socket path to listen on." in
    Arg.(
      required
      & opt (some string) None
      & info [ "socket"; "s" ] ~docv:"PATH" ~doc)
  in
  let workers_arg =
    let doc = "Worker domains in the shared evaluation pool." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc =
      "Waiting requests admitted before new ones are rejected with the \
       $(b,busy) code (admission control)."
    in
    Arg.(value & opt int 16 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let preload_arg =
    let doc =
      "Load $(docv) at startup and keep it resident; repeatable. Example: \
       --db g=graph.ldb"
    in
    Arg.(value & opt_all string [] & info [ "db" ] ~docv:"NAME=PATH" ~doc)
  in
  let debug_sleep_arg =
    let doc =
      "Accept the $(b,sleep) debug op (tests use it to hold workers busy and \
       observe backpressure deterministically)."
    in
    Arg.(value & flag & info [ "debug-sleep" ] ~doc)
  in
  let data_dir_arg =
    let doc =
      "Run durable: every loaded database gets a write-ahead log and \
       periodic snapshots in a subdirectory of $(docv), each acknowledged \
       mutation is logged before its ok response, and startup recovers \
       whatever the directory holds before accepting clients."
    in
    Arg.(
      value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR" ~doc)
  in
  let sync_arg =
    let doc =
      "WAL fsync policy (with --data-dir): $(b,always) fsyncs before every \
       ack, $(b,batch) coalesces fsyncs in a background thread (bounded \
       delay), $(b,never) leaves it to the OS."
    in
    Arg.(value & opt string "always" & info [ "sync" ] ~docv:"MODE" ~doc)
  in
  let snapshot_every_arg =
    let doc =
      "Checkpoint (fresh snapshot, truncated log) every $(docv) logged \
       mutations; 0 disables auto-checkpointing (with --data-dir)."
    in
    Arg.(value & opt int 64 & info [ "snapshot-every" ] ~docv:"N" ~doc)
  in
  let parse_preload spec =
    match String.index_opt spec '=' with
    | Some i when i > 0 && i < String.length spec - 1 ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
    | _ ->
      Fmt.epr "error: --db expects NAME=PATH, got %S@." spec;
      exit 2
  in
  let run socket workers queue preload debug_sleep data_dir sync
      snapshot_every trace metrics =
    handle (fun () ->
        let preload = List.map parse_preload preload in
        let sync =
          match Wal.sync_of_string sync with
          | Some s -> s
          | None ->
            Fmt.epr "error: --sync expects always|batch|never, got %S@." sync;
            exit 2
        in
        let durability =
          Option.map
            (fun data_dir -> { Serve.data_dir; sync; snapshot_every })
            data_dir
        in
        with_observability ~trace ~metrics (fun () ->
            Serve.run
              {
                Serve.socket_path = socket;
                workers;
                queue_capacity = queue;
                debug_sleep;
                preload;
                durability;
              };
            Fmt.pr "serve: clean shutdown@."))
  in
  let doc =
    "Run a resident query server on a Unix-domain socket: line-delimited \
     JSON requests (op: load/query/boolean/insert/retract/close_unknown/\
     stats/close/shutdown). Each loaded database is an incremental session: \
     mutations invalidate only what they touch, so a query after a small \
     delta reuses the cached quotient structures and per-structure results. \
     In-flight queries multiplex over a fixed pool of worker domains with a \
     bounded queue (full queue => $(b,busy)); per-request budgets \
     (timeout_ms, max_structures, max_evaluations) map budget exhaustion to \
     the $(b,exhausted) code. With $(b,--data-dir) the server is durable: \
     acknowledged mutations survive kill -9 via a per-database write-ahead \
     log with snapshot compaction, replayed on the next startup. SIGTERM \
     drains gracefully (queued requests answered, stores checkpointed, \
     exit 0). The full wire protocol is specified in docs/PROTOCOL.md."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Cterm.(
      const run $ socket_arg $ workers_arg $ queue_arg $ preload_arg
      $ debug_sleep_arg $ data_dir_arg $ sync_arg $ snapshot_every_arg
      $ trace_arg $ metrics_arg)

(* --- recover --- *)

let recover_cmd =
  let dir_arg =
    let doc = "Data directory ($(b,ldb serve --data-dir)'s)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let db_name_arg =
    let doc = "Recover only the named database (default: all found)." in
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"NAME" ~doc)
  in
  let verify_arg =
    let doc =
      "Read-only: run the full recovery checks without truncating torn \
       tails or compacting."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let run dir db_name verify =
    handle (fun () ->
        let names =
          match db_name with
          | Some n -> [ n ]
          | None -> Recovery.list ~data_dir:dir
        in
        if names = [] then begin
          Fmt.epr "error: no database directories under %s@." dir;
          exit 2
        end;
        List.iter
          (fun name ->
            let db_dir = Recovery.db_dir ~data_dir:dir ~name in
            let report =
              if verify then Recovery.verify db_dir
              else Recovery.recover db_dir
            in
            (* Compaction: fold the replayed tail into a fresh snapshot
               so the next serve startup is replay-free. *)
            if (not verify) && report.Recovery.r_replayed > 0 then begin
              let store, _ = Durable_store.open_ ~dir:db_dir () in
              Durable_store.checkpoint store;
              Durable_store.close store
            end;
            Fmt.pr
              "%s: %s seq %d (snapshot %d, replayed %d, skipped %d%s)@."
              name
              (if verify then "ok at" else "recovered to")
              report.Recovery.r_seq report.Recovery.r_snapshot_seq
              report.Recovery.r_replayed report.Recovery.r_skipped
              (if report.Recovery.r_torn_bytes > 0 then
                 Printf.sprintf ", torn tail %d bytes"
                   report.Recovery.r_torn_bytes
               else ""))
          names)
  in
  let doc =
    "Recover (or, with $(b,--verify), just check) the databases in a serve \
     data directory: load each snapshot, validate the write-ahead log, \
     truncate any torn tail, replay the acknowledged records, and compact \
     into a fresh snapshot. Exits 2 with a clear message on unrecoverable \
     mid-log corruption — acknowledged history is never silently dropped."
  in
  Cmd.v (Cmd.info "recover" ~doc) Cterm.(const run $ dir_arg $ db_name_arg $ verify_arg)

let main =
  let doc = "query closed-world logical databases (Vardi, PODS 1985)" in
  Cmd.group
    (Cmd.info "ldb" ~version:"1.0.0" ~doc)
    [
      info_cmd;
      axioms_cmd;
      query_cmd;
      compile_cmd;
      worlds_cmd;
      explain_cmd;
      fuzz_cmd;
      repl_cmd;
      mutate_cmd;
      serve_cmd;
      recover_cmd;
    ]

(* Evaluate without cmdliner's exception catcher so the exit-code
   taxonomy stays ours: cmdliner's default "internal error" code is
   124, which would collide with budget exhaustion. Ctrl-C raises
   Sys.Break (catch_break), which flushes any installed sink before
   exiting 130; other escaped exceptions exit 125. *)
let () =
  Sys.catch_break true;
  match Cmd.eval_value ~catch:false main with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term | `Exn) -> exit 2
  | exception Sys.Break ->
    Obs.uninstall ();
    Fmt.epr "interrupted@.";
    exit 130
  | exception e ->
    Obs.uninstall ();
    Fmt.epr "fatal: %s@." (Printexc.to_string e);
    exit 125
