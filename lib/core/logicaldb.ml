(** Public facade for the logical-database library — everything a user
    needs to build, query, and experiment with Reiter/Vardi closed-world
    logical databases.

    The layering mirrors the paper:
    - {!Term} / {!Vocabulary} / {!Formula} / {!Query} / {!Parser} /
      {!Pretty} — first- and second-order logic over relational
      vocabularies (Section 2.1);
    - {!Tuple} / {!Relation} / {!Database} / {!Eval} / {!Algebra} /
      {!Compile} — physical databases and their query processors
      (Sections 2.1, 5);
    - {!Cw_database} / {!Axioms} / {!Ph} / {!Mapping} / {!Partition} /
      {!Ne_virtual} — CW logical databases (Sections 2.2, 3.1, 5);
    - {!Certain} — exact certain-answer evaluation via Theorem 1, on
      top of the integer-coded kernel {!Symtab} / {!Irel} / {!Iplan} /
      {!Ieval} / {!Iscan} (with the string path selectable via
      [~kernel:Strings]);
    - {!Approx} / {!Translate} / {!Alpha} / {!Disagree} /
      {!Precise_simulation} — the Section 3.2 precise simulation and
      the Section 5 approximation algorithm;
    - {!Graph} / {!Qbf} / {!Three_col} / {!Qbf_fo} / {!Qbf_so} — the
      hardness reductions of Theorems 5, 7 and 9;
    - {!Obs} — structured tracing and metrics across all engines
      (spans, per-domain counters, console/JSON-lines sinks);
    - {!Incr_session} — incremental evaluation: a resident database
      with insert/retract/close-unknown mutations that persists the
      symtab, the partition-tree quotients, and per-structure
      evaluation results across queries, invalidating only what a
      delta touches;
    - {!Wal} / {!Snapshot} / {!Recovery} / {!Durable_store} —
      durability: a per-database write-ahead log with CRC'd records,
      atomically-renamed snapshots, and startup recovery that replays
      the log tail through an {!Incr_session};
    - {!Serve} / {!Serve_client} / {!Serve_protocol} / {!Plan_cache} /
      {!Serve_pool} — the [ldb serve] daemon: resident databases, a
      shared worker-domain pool with admission control, and a shared
      plan cache behind a line-delimited JSON socket protocol;
    - {!Ldb_format} — a text format for databases.

    {2 Quick start}

    {[
      let db =
        Logicaldb.database
          ~predicates:[ ("TEACHES", 2) ]
          ~constants:[ "socrates"; "plato"; "mystery" ]
          ~facts:[ ("TEACHES", [ "socrates"; "plato" ]) ]
          ~distinct:[ ("socrates", "plato") ]

      let q = Logicaldb.query "(x). exists y. TEACHES(x, y)"
      let exact = Logicaldb.certain_answer db q
      let fast = Logicaldb.approx_answer db q
    ]} *)

(* Logic layer *)
module Term = Vardi_logic.Term
module Vocabulary = Vardi_logic.Vocabulary
module Formula = Vardi_logic.Formula
module Nnf = Vardi_logic.Nnf
module Prenex = Vardi_logic.Prenex
module Simplify = Vardi_logic.Simplify
module Generate = Vardi_logic.Generate
module Query = Vardi_logic.Query
module Pretty = Vardi_logic.Pretty
module Parser = Vardi_logic.Parser
module Lexer = Vardi_logic.Lexer

(* Relational layer *)
module Tuple = Vardi_relational.Tuple
module Relation = Vardi_relational.Relation
module Database = Vardi_relational.Database
module Eval = Vardi_relational.Eval
module Algebra = Vardi_relational.Algebra
module Compile = Vardi_relational.Compile
module Optimizer = Vardi_relational.Optimizer
module Hypergraph = Vardi_relational.Hypergraph
module Yannakakis = Vardi_relational.Yannakakis

(* CW logical databases *)
module Cw_database = Vardi_cwdb.Cw_database
module Axioms = Vardi_cwdb.Axioms
module Ph = Vardi_cwdb.Ph
module Mapping = Vardi_cwdb.Mapping
module Partition = Vardi_cwdb.Partition
module Ne_virtual = Vardi_cwdb.Ne_virtual
module Query_check = Vardi_cwdb.Query_check

(* Interned evaluation kernel (integer-coded hot path of Certain) *)
module Symtab = Vardi_interned.Symtab
module Irel = Vardi_interned.Irel
module Idb = Vardi_interned.Idb
module Iplan = Vardi_interned.Iplan
module Ieval = Vardi_interned.Ieval
module Iscan = Vardi_interned.Iscan
module Icode = Vardi_interned.Icode

(* Engines *)
module Certain = Vardi_certain.Engine
module Cancel = Vardi_certain.Cancel
module Explain = Vardi_certain.Explain
module Sampling = Vardi_certain.Sampling
module Approx = Vardi_approx.Evaluate
module Translate = Vardi_approx.Translate
module Alpha = Vardi_approx.Alpha
module Disagree = Vardi_approx.Disagree
module Precise_simulation = Vardi_approx.Precise_simulation
module Reiter = Vardi_approx.Reiter
module Naive_tables = Vardi_approx.Naive_tables

(* Typed layer (Reiter's extended relational theories with types) *)
module Ty_vocabulary = Vardi_typed.Ty_vocabulary
module Ty_formula = Vardi_typed.Ty_formula
module Ty_database = Vardi_typed.Ty_database
module Ty_query = Vardi_typed.Ty_query
module Ty_parser = Vardi_typed.Ty_parser

(* Reductions and baselines *)
module Graph = Vardi_reductions.Graph
module Qbf = Vardi_reductions.Qbf
module Three_col = Vardi_reductions.Three_col
module Qbf_fo = Vardi_reductions.Qbf_fo
module Qbf_so = Vardi_reductions.Qbf_so

(* General theories (bounded-model reference semantics) *)
module Theory = Vardi_theory.Theory

(* Observability: structured tracing + metrics (spans, counters, sinks) *)
module Obs = Vardi_obs.Obs

(* Resilience: budgets, cooperative cancellation, graceful degradation
   from the exact engine to the Theorem-11 sound approximation, and
   seeded fault injection *)
module Budget = Vardi_resilience.Budget
module Resilient = Vardi_resilience.Resilient
module Faults = Vardi_resilience.Faults

(* Incremental evaluation: resident databases with mutations that keep
   the interned kernel's heavy state warm across queries *)
module Incr_session = Vardi_incr.Session

(* Durability: per-database write-ahead log, atomic snapshots, and
   startup recovery for the serve daemon's resident sessions *)
module Wal = Vardi_durable.Wal
module Snapshot = Vardi_durable.Snapshot
module Recovery = Vardi_durable.Recovery
module Durable_store = Vardi_durable.Store

(* Serving: resident concurrent query server over a Unix-domain
   socket — line-delimited JSON protocol, shared worker-domain pool
   with bounded-queue admission control, shared plan cache *)
module Serve = Vardi_serve.Server
module Serve_client = Vardi_serve.Client
module Serve_protocol = Vardi_serve.Protocol
module Serve_json = Vardi_serve.Json
module Serve_pool = Vardi_serve.Pool
module Plan_cache = Vardi_serve.Plan_cache
module Domain_guard = Vardi_certain.Domain_guard

(* Persistence *)
module Ldb_format = Vardi_format.Ldb_format
module Tldb_format = Vardi_format.Tldb_format

(* Property-based differential fuzzing of the engines *)
module Fuzz = Vardi_fuzz.Driver
module Fuzz_gen = Vardi_fuzz.Gen
module Fuzz_oracle = Vardi_fuzz.Oracle
module Fuzz_shrink = Vardi_fuzz.Shrink
module Fuzz_corpus = Vardi_fuzz.Corpus
module Fuzz_noise = Vardi_fuzz.Noise

(** {1 Convenience constructors} *)

(** [database ~predicates ~constants ~facts ~distinct] builds a CW
    logical database in one call; constants mentioned in facts or
    distinct pairs are declared implicitly.
    @raise Invalid_argument per {!Cw_database.make}. *)
let database ?(predicates = []) ?(constants = []) ?(facts = [])
    ?(distinct = []) () =
  let fact_constants = List.concat_map (fun (_, args) -> args) facts in
  let distinct_constants =
    List.concat_map (fun (c, d) -> [ c; d ]) distinct
  in
  let vocabulary =
    Vocabulary.make
      ~constants:(constants @ fact_constants @ distinct_constants)
      ~predicates
  in
  Cw_database.make ~vocabulary
    ~facts:(List.map (fun (pred, args) -> { Cw_database.pred; args }) facts)
    ~distinct

(** [query s] parses a query, e.g.
    ["(x, y). exists z. (EMP(x, z) /\\ MGR(z, y))"].
    @raise Parser.Parse_error / {!Lexer.Lex_error} on bad syntax. *)
let query = Parser.query

(** [certain_answer db q] is the exact [Q(LB)] (Theorem 1 semantics;
    exponential in the number of unknown constants). *)
let certain_answer db q = Certain.answer db q

(** [approx_answer db q] is the sound approximation [Q̂(Ph₂(LB))]
    (Section 5; polynomial data complexity). *)
let approx_answer db q = Approx.answer db q

(** [certain db s] decides a Boolean query given as a formula string,
    e.g. [certain db "exists x. TEACHES(x, plato)"]. *)
let certain db s = Certain.certain_boolean db (Query.boolean (Parser.formula s))

(** [approx_certain db s] — the approximation's verdict on a Boolean
    query; [true] implies [certain db s]. *)
let approx_certain db s = Approx.boolean db (Query.boolean (Parser.formula s))
