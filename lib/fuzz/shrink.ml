module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query
module Vocabulary = Vardi_logic.Vocabulary
module Cw_database = Vardi_cwdb.Cw_database
module Obs = Vardi_obs.Obs

type case = {
  db : Cw_database.t;
  query : Query.t;
}

(* Smaller is better. Unknown pairs weigh double so that closing an
   unknown (adding a uniqueness axiom — which *grows* the axiom list)
   still counts as progress: it removes more incompleteness than it
   adds text. *)
let cost { db; query } =
  let constants = Cw_database.constants db in
  let n = List.length constants in
  let unknown_pairs = (n * (n - 1) / 2) - List.length (Cw_database.distinct_pairs db) in
  Cw_database.size db + (2 * unknown_pairs)
  + Formula.size (Query.body query)
  + List.length (Query.head query)

(* --- candidate moves, cheapest first --- *)

let remove_nth n xs = List.filteri (fun i _ -> i <> n) xs

let drop_fact { db; query } =
  let facts = Cw_database.facts db in
  List.init (List.length facts) (fun i ->
      {
        db =
          Cw_database.make
            ~vocabulary:(Cw_database.vocabulary db)
            ~facts:(remove_nth i facts)
            ~distinct:(Cw_database.distinct_pairs db);
        query;
      })

(* Close an unknown identity: add the missing uniqueness axiom. *)
let close_unknown { db; query } =
  let constants = Cw_database.constants db in
  let missing =
    List.concat_map
      (fun c ->
        List.filter_map
          (fun d ->
            if String.compare c d < 0 && not (Cw_database.are_distinct db c d)
            then Some (c, d)
            else None)
          constants)
      constants
  in
  List.map
    (fun (c, d) -> { db = Cw_database.add_distinct db c d; query })
    missing

(* Drop a constant nobody mentions (the vocabulary must keep >= 1). *)
let drop_constant { db; query } =
  let voc = Cw_database.vocabulary db in
  let constants = Vocabulary.constants voc in
  if List.length constants <= 1 then []
  else
    let used =
      List.concat_map (fun f -> f.Cw_database.args) (Cw_database.facts db)
      @ List.concat_map
          (fun (c, d) -> [ c; d ])
          (Cw_database.distinct_pairs db)
      @ Formula.constants (Query.body query)
    in
    List.filter_map
      (fun c ->
        if List.mem c used then None
        else
          Some
            {
              db =
                Cw_database.make
                  ~vocabulary:
                    (Vocabulary.make
                       ~constants:(List.filter (fun d -> not (String.equal c d)) constants)
                       ~predicates:(Vocabulary.predicates voc))
                  ~facts:(Cw_database.facts db)
                  ~distinct:(Cw_database.distinct_pairs db);
              query;
            })
      constants

(* Structurally smaller bodies: replace a subformula by one of its
   children, or by True/False. *)
let subformula_replacements f =
  let open Formula in
  let rec shrinks f =
    let leaves = match f with True | False -> [] | _ -> [ True; False ] in
    let local =
      match f with
      | True | False | Eq _ | Atom _ -> []
      | Not g -> [ g ]
      | And (g, h) | Or (g, h) | Implies (g, h) | Iff (g, h) -> [ g; h ]
      | Exists (_, g) | Forall (_, g) -> [ g ]
      | Exists2 (_, _, g) | Forall2 (_, _, g) -> [ g ]
    in
    let deeper =
      match f with
      | True | False | Eq _ | Atom _ -> []
      | Not g -> List.map not_ (shrinks g)
      | And (g, h) ->
        List.map (fun g' -> And (g', h)) (shrinks g)
        @ List.map (fun h' -> And (g, h')) (shrinks h)
      | Or (g, h) ->
        List.map (fun g' -> Or (g', h)) (shrinks g)
        @ List.map (fun h' -> Or (g, h')) (shrinks h)
      | Implies (g, h) ->
        List.map (fun g' -> Implies (g', h)) (shrinks g)
        @ List.map (fun h' -> Implies (g, h')) (shrinks h)
      | Iff (g, h) ->
        List.map (fun g' -> Iff (g', h)) (shrinks g)
        @ List.map (fun h' -> Iff (g, h')) (shrinks h)
      | Exists (x, g) -> List.map (fun g' -> Exists (x, g')) (shrinks g)
      | Forall (x, g) -> List.map (fun g' -> Forall (x, g')) (shrinks g)
      | Exists2 (p, k, g) -> List.map (fun g' -> Exists2 (p, k, g')) (shrinks g)
      | Forall2 (p, k, g) -> List.map (fun g' -> Forall2 (p, k, g')) (shrinks g)
    in
    local @ leaves @ deeper
  in
  shrinks f

let shrink_body { db; query } =
  List.filter_map
    (fun body ->
      (* Query.make rejects bodies whose free variables escaped the
         head; such replacements are simply not candidates. *)
      match Query.make (Query.head query) body with
      | query -> Some { db; query }
      | exception Invalid_argument _ -> None)
    (subformula_replacements (Query.body query))

(* Drop head variables the body never mentions. *)
let shrink_head { db; query } =
  let free = Formula.free_vars (Query.body query) in
  let head = Query.head query in
  List.filter_map
    (fun x ->
      if List.mem x free then None
      else
        Some
          {
            db;
            query =
              Query.make
                (List.filter (fun y -> not (String.equal x y)) head)
                (Query.body query);
          })
    head

let candidates case =
  List.concat
    [
      shrink_body case;
      drop_fact case;
      close_unknown case;
      shrink_head case;
      drop_constant case;
    ]

let max_steps = 500

let minimize ~still_failing case =
  Obs.span "fuzz.shrink" (fun () ->
      let rec go steps case =
        if steps >= max_steps then case
        else
          let current = cost case in
          let improvement =
            List.find_opt
              (fun candidate ->
                cost candidate < current
                && (try still_failing candidate with _ -> false))
              (candidates case)
          in
          match improvement with
          | None -> case
          | Some smaller ->
            Obs.count "fuzz.shrink_steps" 1;
            go (steps + 1) smaller
      in
      go 0 case)
