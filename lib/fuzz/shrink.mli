(** Greedy shrinking of failing fuzz instances.

    Given a case that violates an oracle, repeatedly try strictly
    cost-reducing moves — replace a subformula by a child or by
    [True]/[False], drop a fact, close an unknown identity (add the
    missing uniqueness axiom), drop an unused head variable, drop an
    unreferenced constant — keeping a move only when the caller's
    predicate confirms the {e same} failure persists. First-improvement
    greedy descent, capped at an internal step budget; the result is a
    local minimum, typically a handful of facts and a one-connective
    body. *)

type case = {
  db : Vardi_cwdb.Cw_database.t;
  query : Vardi_logic.Query.t;
}

(** The metric minimized: database size plus formula size plus head
    arity, with {e unknown} (axiom-less) constant pairs weighted double
    — so closing an unknown counts as progress even though it adds an
    axiom. Exposed for the test suite. *)
val cost : case -> int

(** All one-step shrink candidates of a case (not filtered by any
    failure predicate). Exposed for the test suite. *)
val candidates : case -> case list

(** [minimize ~still_failing case] greedily descends while
    [still_failing] holds on a cheaper candidate. [still_failing]
    should re-run the violated oracle and check the {e same} oracle id
    still fires (a predicate that raises is treated as [false]). Emits
    a [fuzz.shrink] span and a [fuzz.shrink_steps] counter. *)
val minimize : still_failing:(case -> bool) -> case -> case
