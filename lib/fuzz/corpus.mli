(** Replayable corpus files for shrunk fuzzing regressions.

    A corpus case is one [(LB, Q)] pair plus the oracle it once
    violated, stored as a small line-oriented text file (conventional
    extension [.fuzz]):

    {v
    oracle approx-sound
    query (x). ~P(x)
    ==
    predicate P/1
    constant a b
    fact P(a)
    v}

    Header lines [oracle <id>] (optional) and [query <text>], a [==]
    separator, then the database in {!Vardi_format.Ldb_format} concrete
    syntax. The test suite replays every file under [test/corpus/]
    through the oracles on each [dune runtest]. *)

exception Corpus_error of string

type case = {
  oracle : string option;
      (** the oracle this case once violated, when recorded *)
  query : Vardi_logic.Query.t;
  db : Vardi_cwdb.Cw_database.t;
}

val print : case -> string

(** @raise Corpus_error on malformed input. *)
val parse : string -> case

val save : string -> case -> unit

(** @raise Corpus_error (with the path prefixed) on malformed input;
    [Sys_error] on I/O failure. *)
val load : string -> case

(** [load_dir dir] loads every [*.fuzz] file under [dir], sorted by
    name; an unreadable directory yields []. *)
val load_dir : string -> (string * case) list
