(** Byte-level noise fuzzing of the parsers.

    Feeds random and mutated inputs to every parser entry point
    ({!Vardi_logic.Parser.formula}/[query], {!Vardi_typed.Ty_parser},
    {!Vardi_format.Ldb_format.parse}, {!Vardi_format.Tldb_format.parse})
    and reports any exception outside the documented contract —
    [Parse_error], [Lex_error], [Syntax_error], [Type_error], and
    parser-layer [Invalid_argument] are expected; [Stack_overflow],
    [Assert_failure], [Failure] or a runtime [Invalid_argument]
    ("index out of bounds" and friends) are crashes.

    Inputs mix a syntax-biased fragment alphabet (so the fuzz reaches
    past the lexer), raw bytes, and mutations of well-formed seeds
    (truncation, splicing, byte flips). Input [i] of seed [s] depends
    only on [(s, i)], like {!Gen}. *)

type crash = {
  target : string;  (** entry point, e.g. ["parser.query"] *)
  input : string;  (** the offending input, verbatim *)
  exn : string;  (** the undocumented exception raised *)
}

val pp_crash : crash Fmt.t

(** [check_input s] runs every parser target on [s] and returns the
    contract violations (normal termination and documented exceptions
    yield none). *)
val check_input : string -> crash list

(** [run ~seed ~count] fuzzes [count] inputs through every target.
    Emits a [fuzz.noise] span and [fuzz.noise_inputs] /
    [fuzz.violations] counters. *)
val run : seed:int -> count:int -> crash list
