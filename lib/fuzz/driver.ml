module Query = Vardi_logic.Query
module Pretty = Vardi_logic.Pretty
module Cw_database = Vardi_cwdb.Cw_database
module Obs = Vardi_obs.Obs

type config = {
  seed : int;
  count : int;
  domains : int;
  gen : Gen.config;
  typed : bool;
  noise : int;
  shrink : bool;
  faults : bool;
  corpus_dir : string option;
  progress : (int -> unit) option;
}

let default =
  {
    seed = 42;
    count = 1000;
    domains = 2;
    gen = Gen.default;
    typed = true;
    noise = 0;
    shrink = true;
    faults = false;
    corpus_dir = None;
    progress = None;
  }

(* Per-instance fault seed: derived from the campaign seed and the
   instance index so a failure report's coordinates replay the same
   injection decisions, yet neighboring instances draw different
   faults. *)
let faults_seed config index =
  if config.faults then Some (Hashtbl.hash (config.seed, index, "faults"))
  else None

type failure = {
  index : int;
  violation : Oracle.violation;
  case : Shrink.case;
  shrunk : Shrink.case option;
}

type outcome = {
  instances : int;
  checked_typed : int;
  failures : failure list;
  crashes : Noise.crash list;
}

let clean outcome = outcome.failures = [] && outcome.crashes = []

(* An instance is minimized against the oracle that fired: a candidate
   counts as still failing only when the *same* oracle id recurs. The
   instance's own fault seed is kept so fault-dependent failures stay
   reproducible while shrinking. *)
let shrink_failure config ?faults_seed violation case =
  let still_failing (candidate : Shrink.case) =
    List.exists
      (fun (v : Oracle.violation) -> String.equal v.oracle violation.Oracle.oracle)
      (Oracle.check ~domains:config.domains ?faults_seed candidate.Shrink.db
         candidate.Shrink.query)
  in
  Shrink.minimize ~still_failing case

let save_failure dir index failure =
  let case = Option.value failure.shrunk ~default:failure.case in
  let path = Filename.concat dir (Printf.sprintf "failure-%04d.fuzz" index) in
  Corpus.save path
    {
      Corpus.oracle = Some failure.violation.Oracle.oracle;
      query = case.Shrink.query;
      db = case.Shrink.db;
    };
  path

let check_case ~domains ~index (case : Shrink.case) config =
  let faults_seed = faults_seed config index in
  match Oracle.check ~domains ?faults_seed case.Shrink.db case.Shrink.query with
  | [] -> []
  | violations ->
    List.map
      (fun violation ->
        let shrunk =
          if config.shrink then
            Some (shrink_failure config ?faults_seed violation case)
          else None
        in
        { index; violation; case; shrunk })
      violations

let run ?(config = default) () =
  Gen.validate_config config.gen;
  if config.count < 0 then invalid_arg "Fuzz.Driver: count must be non-negative";
  if config.noise < 0 then invalid_arg "Fuzz.Driver: noise must be non-negative";
  Obs.span "fuzz.run" (fun () ->
      let failures = ref [] in
      let checked_typed = ref 0 in
      for index = 0 to config.count - 1 do
        Obs.count "fuzz.instances" 1;
        (match config.progress with Some f -> f index | None -> ());
        let instance = Gen.instance ~config:config.gen ~seed:config.seed index in
        let case = { Shrink.db = instance.Gen.db; query = instance.Gen.query } in
        failures :=
          List.rev_append
            (check_case ~domains:config.domains ~index case config)
            !failures;
        if config.typed then begin
          incr checked_typed;
          let typed =
            Gen.typed_instance ~config:config.gen ~seed:config.seed index
          in
          List.iter
            (fun violation ->
              (* Typed cases shrink in the untyped image: record them
                 unshrunk, with the elaborated database for replay. *)
              failures :=
                {
                  index;
                  violation;
                  case =
                    {
                      Shrink.db = Vardi_typed.Ty_database.to_cw typed.Gen.tdb;
                      query = Vardi_typed.Ty_query.erase typed.Gen.tquery;
                    };
                  shrunk = None;
                }
                :: !failures)
            (Oracle.check_typed typed.Gen.tdb typed.Gen.tquery)
        end
      done;
      let crashes =
        if config.noise > 0 then
          Noise.run ~seed:config.seed ~count:config.noise
        else []
      in
      let failures = List.rev !failures in
      (match config.corpus_dir with
      | Some dir when failures <> [] ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iteri (fun i f -> ignore (save_failure dir i f)) failures
      | _ -> ());
      {
        instances = config.count;
        checked_typed = !checked_typed;
        failures;
        crashes;
      })

let replay ?(domains = default.domains) cases =
  List.concat_map
    (fun (label, (case : Corpus.case)) ->
      Obs.count "fuzz.instances" 1;
      let violations = Oracle.check ~domains case.Corpus.db case.Corpus.query in
      List.map (fun v -> (label, v)) violations)
    cases

let pp_failure ppf f =
  let case = Option.value f.shrunk ~default:f.case in
  Fmt.pf ppf "@[<v>instance %d: %a@,query: %a@,%a@]" f.index Oracle.pp_violation
    f.violation Pretty.pp_query case.Shrink.query Cw_database.pp case.Shrink.db

let pp_outcome ppf o =
  if clean o then
    Fmt.pf ppf "%d instances (%d typed), no oracle violations" o.instances
      o.checked_typed
  else
    Fmt.pf ppf "@[<v>%d instances (%d typed): %d violation(s), %d crash(es)@,%a%a@]"
      o.instances o.checked_typed (List.length o.failures)
      (List.length o.crashes)
      (Fmt.list ~sep:Fmt.cut pp_failure)
      o.failures
      (Fmt.list ~sep:Fmt.cut Noise.pp_crash)
      o.crashes
