(** Seeded generation of fuzzing instances: a CW logical database with
    controllable unknown-density plus a random FO (or typed) query over
    its vocabulary.

    Reproducibility contract: instance [i] of a run with seed [s]
    depends only on [(s, i)] — never on the platform, the worker-domain
    count the oracles later use, or the previous instances — so a
    failure can be regenerated directly from its coordinates and the
    same seed yields the identical instance stream everywhere. *)

type config = {
  max_constants : int;  (** constants per database, 1 .. this (default 4) *)
  max_predicates : int;  (** predicates, 1 .. this (default 3) *)
  max_arity : int;  (** predicate arity, 0 .. this — 0-ary included (default 2) *)
  max_facts : int;  (** atomic facts, 0 .. this, pre-dedup (default 6) *)
  unknown_density : float;
    (** probability that a constant pair {e lacks} a uniqueness axiom:
        [0.] generates fully specified databases (the Theorem 12 oracle
        then demands approx = exact), [1.] leaves every identity open
        (default 0.5) *)
  max_query_arity : int;  (** query head size, 0 .. this — Boolean included (default 2) *)
  profile : Vardi_logic.Generate.profile;  (** formula shape (depth, quantifier depth) *)
}

val default : config

(** @raise Invalid_argument on out-of-range fields (also raised by the
    generators below, which validate their config first). *)
val validate_config : config -> unit

type instance = {
  seed : int;
  index : int;
  db : Vardi_cwdb.Cw_database.t;
  query : Vardi_logic.Query.t;
}

(** [instance ~seed index] is the [index]-th instance of the seeded
    stream. *)
val instance : ?config:config -> seed:int -> int -> instance

(** [stream ~seed ~count ()] is instances [0 .. count-1], lazily. *)
val stream : ?config:config -> seed:int -> count:int -> unit -> instance Seq.t

val pp_instance : instance Fmt.t

(** {1 Typed instances}

    The same shape over {!Vardi_typed}: a typed vocabulary of one or
    two sorts, constants and predicate signatures drawn over them, and
    a well-typed query (generation respects signatures, so
    {!Vardi_typed.Ty_query.typecheck} succeeds by construction). The
    typed stream is seeded independently of the untyped one. *)

type typed_instance = {
  tseed : int;
  tindex : int;
  tdb : Vardi_typed.Ty_database.t;
  tquery : Vardi_typed.Ty_query.t;
}

val typed_instance : ?config:config -> seed:int -> int -> typed_instance
val pp_typed_instance : typed_instance Fmt.t
