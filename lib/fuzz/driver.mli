(** The differential fuzzing driver.

    Streams seeded instances from {!Gen}, runs each through the
    {!Oracle} battery (and, per instance, a typed-lane instance through
    {!Oracle.check_typed}), greedily {!Shrink}s every failure against
    the oracle that fired, optionally noise-fuzzes the parsers
    ({!Noise}) and writes replayable {!Corpus} files.

    Reproducibility: the instance stream depends only on
    [(config.seed, index)] — identical across runs, platforms and
    [domains] settings — so [seed]+[index] coordinates in a failure
    report pinpoint one regenerable instance. *)

type config = {
  seed : int;
  count : int;  (** differential instances to run (default 1000) *)
  domains : int;
      (** worker domains for the parallel-engine oracle (default 2) *)
  gen : Gen.config;  (** instance shapes *)
  typed : bool;  (** also run the typed lane per instance (default true) *)
  noise : int;  (** parser noise-fuzz inputs to run after the stream
                    (default 0 = skip) *)
  shrink : bool;  (** minimize failures before reporting (default true) *)
  faults : bool;
      (** run the [resilient-fault-safety] oracle per instance under a
          fault plan whose seed derives from [(seed, index)]
          (default false) *)
  corpus_dir : string option;
      (** when set, write each (shrunk) failure as a [.fuzz] file here *)
  progress : (int -> unit) option;
      (** called with each instance index before it runs *)
}

val default : config

type failure = {
  index : int;  (** instance index within the stream *)
  violation : Oracle.violation;
  case : Shrink.case;  (** the instance as generated *)
  shrunk : Shrink.case option;  (** minimized form, when [config.shrink] *)
}

type outcome = {
  instances : int;
  checked_typed : int;
  failures : failure list;
  crashes : Noise.crash list;
}

(** No failures and no crashes. *)
val clean : outcome -> bool

(** [run ~config ()] executes the campaign. Never raises on engine
    misbehavior (that becomes a {!failure}); raises [Invalid_argument]
    on a malformed [config]. Emits a [fuzz.run] span and
    [fuzz.instances] / [fuzz.checks] / [fuzz.violations] /
    [fuzz.shrink_steps] counters. *)
val run : ?config:config -> unit -> outcome

(** [replay cases] re-checks labeled corpus cases (as loaded by
    {!Corpus.load_dir}) and returns the violations per label — the
    regression-replay entry point used by the test suite and
    [ldb fuzz --replay]. *)
val replay :
  ?domains:int ->
  (string * Corpus.case) list ->
  (string * Oracle.violation) list

val pp_failure : failure Fmt.t
val pp_outcome : outcome Fmt.t
