module Vocabulary = Vardi_logic.Vocabulary
module Generate = Vardi_logic.Generate
module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query
module Cw_database = Vardi_cwdb.Cw_database
module Ty_vocabulary = Vardi_typed.Ty_vocabulary
module Ty_formula = Vardi_typed.Ty_formula
module Ty_database = Vardi_typed.Ty_database
module Ty_query = Vardi_typed.Ty_query

type config = {
  max_constants : int;
  max_predicates : int;
  max_arity : int;
  max_facts : int;
  unknown_density : float;
  max_query_arity : int;
  profile : Generate.profile;
}

let default =
  {
    max_constants = 4;
    max_predicates = 3;
    max_arity = 2;
    max_facts = 6;
    unknown_density = 0.5;
    max_query_arity = 2;
    profile = Generate.default_profile;
  }

let validate_config c =
  if c.max_constants < 1 then
    invalid_arg "Fuzz.Gen: max_constants must be at least 1";
  if c.max_predicates < 1 then
    invalid_arg "Fuzz.Gen: max_predicates must be at least 1";
  if c.max_arity < 0 then invalid_arg "Fuzz.Gen: max_arity must be non-negative";
  if c.max_facts < 0 then invalid_arg "Fuzz.Gen: max_facts must be non-negative";
  if not (c.unknown_density >= 0.0 && c.unknown_density <= 1.0) then
    invalid_arg "Fuzz.Gen: unknown_density must lie in [0, 1]";
  if c.max_query_arity < 0 then
    invalid_arg "Fuzz.Gen: max_query_arity must be non-negative"

type instance = {
  seed : int;
  index : int;
  db : Cw_database.t;
  query : Query.t;
}

(* Every instance derives its own [Random.State.t] from [(seed, index)]
   alone, so the stream is identical across runs, platforms and worker
   counts, and any single instance can be regenerated without replaying
   its predecessors. *)
let state_of ~seed index = Random.State.make [| 0x1dbf; seed; index |]

let pick state xs = List.nth xs (Random.State.int state (List.length xs))

let all_pairs constants =
  let rec go = function
    | [] -> []
    | c :: rest -> List.map (fun d -> (c, d)) rest @ go rest
  in
  go constants

let database config ~state =
  let vocabulary =
    Generate.vocabulary ~max_constants:config.max_constants
      ~max_predicates:config.max_predicates ~max_arity:config.max_arity ~state
      ()
  in
  let constants = Vocabulary.constants vocabulary in
  let predicates = Vocabulary.predicates vocabulary in
  let n_facts = Random.State.int state (config.max_facts + 1) in
  let facts =
    List.init n_facts (fun _ ->
        let p, k = pick state predicates in
        {
          Cw_database.pred = p;
          args = List.init k (fun _ -> pick state constants);
        })
  in
  let distinct =
    List.filter
      (fun _ -> Random.State.float state 1.0 >= config.unknown_density)
      (all_pairs constants)
  in
  Cw_database.make ~vocabulary ~facts ~distinct

let instance ?(config = default) ~seed index =
  validate_config config;
  let state = state_of ~seed index in
  let db = database config ~state in
  let arity = Random.State.int state (config.max_query_arity + 1) in
  let query =
    Generate.query ~profile:config.profile ~state
      (Cw_database.vocabulary db)
      ~arity
  in
  { seed; index; db; query }

let stream ?(config = default) ~seed ~count () =
  validate_config config;
  Seq.init count (fun index -> instance ~config ~seed index)

let pp_instance ppf i =
  Fmt.pf ppf "@[<v>instance %d/%d@,%a@,query: %a@]" i.seed i.index
    Cw_database.pp i.db Vardi_logic.Pretty.pp_query i.query

(* ------------------------------------------------------------------ *)
(* Typed instances (Reiter's extended relational theories).            *)

type typed_instance = {
  tseed : int;
  tindex : int;
  tdb : Ty_database.t;
  tquery : Ty_query.t;
}

let typed_state_of ~seed index = Random.State.make [| 0x71db; seed; index |]

(* A typed term of type [tau]: a variable of that type from [env] or a
   constant of that type. [None] when the type is uninhabited. *)
let typed_term state voc env tau =
  let vars = List.filter (fun (_, t) -> String.equal t tau) env in
  let consts = Ty_vocabulary.constants_of_type voc tau in
  match vars, consts with
  | [], [] -> None
  | [], _ -> Some (Term.const (pick state consts))
  | _, [] -> Some (Term.var (fst (pick state vars)))
  | _, _ ->
    Some
      (if Random.State.bool state then Term.var (fst (pick state vars))
       else Term.const (pick state consts))

let typed_atom state voc env =
  let inhabited_types =
    List.filter
      (fun tau -> typed_term state voc env tau <> None)
      (Ty_vocabulary.types voc)
  in
  let equality () =
    match inhabited_types with
    | [] -> Ty_formula.True
    | _ -> (
      let tau = pick state inhabited_types in
      match typed_term state voc env tau, typed_term state voc env tau with
      | Some s, Some t -> Ty_formula.Eq (s, t)
      | _ -> Ty_formula.True)
  in
  let applicable =
    List.filter
      (fun (_, signature) ->
        List.for_all
          (fun tau -> typed_term state voc env tau <> None)
          signature)
      (Ty_vocabulary.predicates voc)
  in
  if applicable = [] || Random.State.int state 4 = 0 then equality ()
  else
    let p, signature = pick state applicable in
    Ty_formula.Atom
      ( p,
        List.map
          (fun tau -> Option.get (typed_term state voc env tau))
          signature )

let typed_var_pool = [ "gx"; "gy"; "gz" ]

let typed_formula ~profile ~state voc ~env =
  let open Generate in
  (* Rebinding a pool variable at another type must shadow the outer
     binding, or atoms below could use it at its stale type. *)
  let bind x tau env =
    (x, tau) :: List.filter (fun (y, _) -> not (String.equal x y)) env
  in
  let rec go depth qdepth env =
    if depth = 0 then typed_atom state voc env
    else
      let sub () = go (depth - 1) qdepth env in
      let quantifiers_ok = profile.allow_quantifiers && qdepth > 0 in
      match Random.State.int state 10 with
      | 0 | 1 -> typed_atom state voc env
      | 2 | 3 -> Ty_formula.And (sub (), sub ())
      | 4 | 5 -> Ty_formula.Or (sub (), sub ())
      | 6 when profile.allow_negation -> Ty_formula.Not (sub ())
      | 7 when profile.allow_negation -> Ty_formula.Implies (sub (), sub ())
      | 8 when quantifiers_ok ->
        let x = pick state typed_var_pool in
        let tau = pick state (Ty_vocabulary.types voc) in
        Ty_formula.Exists (x, tau, go (depth - 1) (qdepth - 1) (bind x tau env))
      | 9 when quantifiers_ok ->
        let x = pick state typed_var_pool in
        let tau = pick state (Ty_vocabulary.types voc) in
        Ty_formula.Forall (x, tau, go (depth - 1) (qdepth - 1) (bind x tau env))
      | _ -> typed_atom state voc env
  in
  go profile.depth profile.quantifier_depth env

let type_pool = [ "s"; "t" ]

let typed_instance ?(config = default) ~seed index =
  validate_config config;
  let state = typed_state_of ~seed index in
  let types = List.filteri (fun i _ -> i <= Random.State.int state 2) type_pool in
  let constant_names =
    List.init
      (1 + Random.State.int state config.max_constants)
      (fun i ->
        match List.nth_opt Generate.constant_pool i with
        | Some name -> name
        | None -> Printf.sprintf "c%d" i)
  in
  let constants =
    List.map (fun c -> (c, pick state types)) constant_names
  in
  let predicates =
    List.init
      (1 + Random.State.int state config.max_predicates)
      (fun i ->
        let name =
          match List.nth_opt Generate.predicate_pool i with
          | Some name -> name
          | None -> Printf.sprintf "P%d" i
        in
        let arity = Random.State.int state (config.max_arity + 1) in
        (name, List.init arity (fun _ -> pick state types)))
  in
  let voc = Ty_vocabulary.make ~types ~constants ~predicates in
  let n_facts = Random.State.int state (config.max_facts + 1) in
  let facts =
    List.filter_map
      (fun _ ->
        let p, signature = pick state predicates in
        let args =
          List.map (fun tau -> Ty_vocabulary.constants_of_type voc tau) signature
        in
        if List.exists (fun choices -> choices = []) args then None
        else Some (p, List.map (pick state) args))
      (List.init n_facts Fun.id)
  in
  let distinct =
    List.filter
      (fun (c, d) ->
        String.equal
          (Ty_vocabulary.constant_type voc c)
          (Ty_vocabulary.constant_type voc d)
        && Random.State.float state 1.0 >= config.unknown_density)
      (all_pairs constant_names)
  in
  let tdb = Ty_database.make ~vocabulary:voc ~facts ~distinct in
  let arity = Random.State.int state (config.max_query_arity + 1) in
  let head =
    List.init arity (fun i -> (Printf.sprintf "q%d" i, pick state types))
  in
  let body = typed_formula ~profile:config.profile ~state voc ~env:head in
  let tquery = Ty_query.make head body in
  { tseed = seed; tindex = index; tdb; tquery }

let pp_typed_instance ppf i =
  Fmt.pf ppf "@[<v>typed instance %d/%d@,%a@,query: %a@]" i.tseed i.tindex
    Ty_database.pp i.tdb Ty_query.pp i.tquery
