(** Theorem-level oracles for differential fuzzing.

    Each oracle states a property the paper proves (or the
    implementation documents) and checks it by running the same
    [(LB, Q)] instance through independent code paths:

    - [exact-merge-first], [exact-naive-mappings], [exact-parallel]:
      the exact certain-answer engine agrees with itself across
      structure orders, algorithms (Theorem 1's literal mapping
      enumeration vs kernel partitions) and worker-domain counts;
    - [kernel-parity]: the interned evaluation kernel
      ({!Vardi_interned}) agrees with the string-keyed reference kernel
      on [answer]/[certain_boolean] and
      [possible_answer]/[possible_boolean], under both algorithms, both
      structure orders, and [domains ∈ {1, 4}];
    - [approx-sound]: Theorem 11, [A(Q, LB) ⊆ Q(LB)];
    - [approx-complete]: Theorems 12/13 — equality whenever
      {!Vardi_approx.Evaluate.completeness} says a completeness
      theorem applies;
    - [approx-backend-algebra], [approx-backend-optimized]: the
      Tarskian, algebra and optimized-algebra backends agree;
    - [acq-parity]: the acyclic-query fast path
      ({!Vardi_relational.Yannakakis}) is answer-identical to the
      Tarskian evaluator on [Ph₁(LB)] whenever it detects an acyclic
      CQ, and the optimized algebra plan agrees on both the detected
      and the fallback branch; {!acq_detection} exposes the
      detected/total counts so campaigns can gate on a minimum
      detection rate;
    - [naive-tables-positive]: on positive queries the naive-tables
      baseline equals the certain answer (Imielinski–Lipski);
    - [certain-subset-possible], [possible-duality]: modal sanity —
      certain ⊆ possible, and for sentences
      [possible φ ⟺ ¬certain(¬φ)];
    - [member-consistency]: [certain_member] agrees pointwise with the
      materialized {!Vardi_certain.Engine.answer};
    - [resilient-qualified]: the {!Vardi_resilience.Resilient}
      qualified-answer lattice — under every policy and a
      one-structure budget, [Lower_bound a ⊆ Q(LB) ⊆ Upper_bound a]
      and [Exact a = Q(LB)], against the raw engine's exact answer;
    - [resilient-stats-honest]: resilience stats never claim more than
      the result delivers ([source] matches the constructor, every
      degradation records its cause, [Exact] records none);
    - [resilient-fault-safety] (only with [faults_seed]): under an
      armed {!Vardi_resilience.Faults} plan, no injected exception
      escapes a degrading policy, the lattice bounds still hold, and a
      raising Obs sink is caught, counted and disabled without
      changing the engine's verdict;
    - [resilient-kernel-parity] (only with [faults_seed]): under
      separately-armed fault plans with the same seed, the strings and
      interned kernels degrade identically — same qualified
      constructor and value, same [source]/[tripped]/[scan_failure]
      provenance, same scan counters (wall-clock excluded), and under
      the [Fail] policy the same propagated fault;
    - [crash-recovery] (only with [faults_seed]): a random mutation
      script runs against a {!Vardi_durable.Store} (sync [Always],
      checkpoint every 4 records) with fault injection armed; the
      process is "killed" at whichever durability fault point fires
      ([wal.append], [wal.append.short], [wal.fsync], [snapshot.write],
      [snapshot.write.short]) and the directory recovered. The
      recovered session must equal — database, delta epoch and query
      answers — a fresh session that applied exactly the durable
      prefix determined by the crash point (append crashes lose the
      in-flight mutation, fsync/snapshot crashes keep it), and a
      second recovery pass must land on the same state;
    - [query-roundtrip], [ldb-roundtrip]: pretty-printed queries and
      databases reparse to equal values;
    - typed lane: [typed-approx-sound], [typed-query-roundtrip],
      [tldb-roundtrip] — the same properties through the
      {!Vardi_typed} elaboration.

    An engine exception on a well-formed instance is reported as a
    violation of the oracle whose check raised it (crash oracle), so
    the driver never dies mid-stream.

    The reference algorithms with exponential enumeration
    ([Naive_mappings], the [member-consistency] tuple sweep) are
    skipped when their search space exceeds a small internal budget;
    the default engine paths are always checked. *)

type violation = {
  oracle : string;  (** oracle identifier, one of {!oracle_ids} *)
  detail : string;  (** human-readable discrepancy description *)
}

val pp_violation : violation Fmt.t

(** All oracle identifiers that can appear in {!violation.oracle}. *)
val oracle_ids : string list

(** [check ?domains ?faults_seed db q] runs every applicable oracle and
    returns the violations, in check order (empty means the instance
    passed). [domains] (default 2) is the worker count for the
    parallel-engine comparison. [faults_seed] additionally runs the
    [resilient-fault-safety] oracle under a fault plan armed with that
    seed (rate 0.2), plus [resilient-kernel-parity] under the same
    seed — omitted by default because injection perturbs timing, not
    correctness. Emits a [fuzz.oracle] span and
    [fuzz.checks] / [fuzz.violations] counters. *)
val check :
  ?domains:int ->
  ?faults_seed:int ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  violation list

(** [acq_detection ()] is [(detected, total)]: how many [acq-parity]
    checks took the Yannakakis fast path out of how many ran since the
    last {!reset_acq_detection}. Process-global, updated atomically. *)
val acq_detection : unit -> int * int

val reset_acq_detection : unit -> unit

(** [check_typed tdb tq] runs the typed-lane oracles. *)
val check_typed :
  Vardi_typed.Ty_database.t -> Vardi_typed.Ty_query.t -> violation list
