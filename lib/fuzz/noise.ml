module Lexer = Vardi_logic.Lexer
module Parser = Vardi_logic.Parser
module Ty_parser = Vardi_typed.Ty_parser
module Ty_formula = Vardi_typed.Ty_formula
module Ldb_format = Vardi_format.Ldb_format
module Tldb_format = Vardi_format.Tldb_format
module Obs = Vardi_obs.Obs

type crash = {
  target : string;
  input : string;
  exn : string;
}

let pp_crash ppf c =
  Fmt.pf ppf "[%s] raised %s on input %S" c.target c.exn c.input

(* Exceptions the parsers document. [Invalid_argument] is accepted only
   when it carries a parser-layer message: the runtime's own messages
   ("index out of bounds", "String.sub", ...) would mean an unguarded
   primitive, which is exactly the bug class this hunts. *)
let runtime_invalid_arg_markers =
  [ "index out of bounds"; "String."; "Bytes."; "Array."; "List."; "Char." ]

let allowed = function
  | Parser.Parse_error _ | Lexer.Lex_error _ | Ty_parser.Parse_error _
  | Ldb_format.Syntax_error _ | Tldb_format.Syntax_error _
  | Ty_formula.Type_error _ ->
    true
  | Invalid_argument message ->
    not
      (List.exists
         (fun marker ->
           String.length message >= String.length marker
           && String.equal (String.sub message 0 (String.length marker)) marker)
         runtime_invalid_arg_markers)
  | _ -> false

type target = {
  name : string;
  run : string -> unit;
}

let targets =
  [
    { name = "parser.formula"; run = (fun s -> ignore (Parser.formula s)) };
    { name = "parser.query"; run = (fun s -> ignore (Parser.query s)) };
    { name = "ty_parser.query"; run = (fun s -> ignore (Ty_parser.query s)) };
    { name = "ldb_format.parse"; run = (fun s -> ignore (Ldb_format.parse s)) };
    {
      name = "tldb_format.parse";
      run = (fun s -> ignore (Tldb_format.parse s));
    };
  ]

(* Alphabet biased toward the concrete syntax so the fuzz reaches past
   the lexer: raw bytes alone almost never form a token stream. *)
let syntax_fragments =
  [|
    "("; ")"; ","; "."; "/"; ":"; "="; "!="; "/\\"; "\\/"; "~"; "->"; "<->";
    "exists"; "forall"; "exists2"; "forall2"; "true"; "false"; "not";
    "P"; "Q"; "x"; "y"; "a"; "b"; "0"; "42"; "9999999999999999999999";
    " "; "\n"; "\t"; "#"; "predicate"; "constant"; "fact"; "distinct";
    "fully_specified"; "type"; "\xff"; "\x00"; "e";
  |]

let random_input state =
  let pieces = 1 + Random.State.int state 40 in
  let buffer = Buffer.create 64 in
  for _ = 1 to pieces do
    if Random.State.int state 4 = 0 then
      Buffer.add_char buffer (Char.chr (Random.State.int state 256))
    else
      Buffer.add_string buffer
        syntax_fragments.(Random.State.int state (Array.length syntax_fragments))
  done;
  Buffer.contents buffer

(* Mutations of well-formed seeds: truncate, splice noise into the
   middle, or flip one byte. Valid-prefix inputs exercise deeper error
   paths than pure noise. *)
let seeds =
  [
    "(x). P(x) /\\ ~Q(x, a)";
    "(). exists x. forall y. P(x) -> x = y";
    "(x, y). P(x) \\/ (Q(y, b) <-> ~x = y)";
    "predicate P/2\nconstant a b\nfact P(a, b)\ndistinct a b\n";
    "type s\nconstant a : s\npredicate P(s)\nfact P(a)\n";
    "(x : s). exists y : s. P(x, y)";
  ]

let mutate state seed =
  let n = String.length seed in
  match Random.State.int state 3 with
  | 0 -> String.sub seed 0 (Random.State.int state (n + 1))
  | 1 ->
    let at = Random.State.int state (n + 1) in
    String.sub seed 0 at ^ random_input state
    ^ String.sub seed at (n - at)
  | _ ->
    if n = 0 then seed
    else
      let at = Random.State.int state n in
      String.mapi
        (fun i c ->
          if i = at then Char.chr (Random.State.int state 256) else c)
        seed

let input_of state =
  if Random.State.int state 3 = 0 then
    mutate state (List.nth seeds (Random.State.int state (List.length seeds)))
  else random_input state

let state_of ~seed index = Random.State.make [| 0x0153; seed; index |]

let check_input input =
  List.filter_map
    (fun target ->
      match target.run input with
      | () -> None
      | exception e ->
        if allowed e then None
        else Some { target = target.name; input; exn = Printexc.to_string e })
    targets

let run ~seed ~count =
  Obs.span "fuzz.noise" (fun () ->
      let crashes = ref [] in
      for index = 0 to count - 1 do
        let state = state_of ~seed index in
        let input = input_of state in
        Obs.count "fuzz.noise_inputs" 1;
        List.iter
          (fun crash ->
            Obs.count "fuzz.violations" 1;
            crashes := crash :: !crashes)
          (check_input input)
      done;
      List.rev !crashes)
