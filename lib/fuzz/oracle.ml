module Formula = Vardi_logic.Formula
module Query = Vardi_logic.Query
module Parser = Vardi_logic.Parser
module Pretty = Vardi_logic.Pretty
module Vocabulary = Vardi_logic.Vocabulary
module Relation = Vardi_relational.Relation
module Eval = Vardi_relational.Eval
module Compile = Vardi_relational.Compile
module Algebra = Vardi_relational.Algebra
module Yannakakis = Vardi_relational.Yannakakis
module Ph = Vardi_cwdb.Ph
module Cw_database = Vardi_cwdb.Cw_database
module Query_check = Vardi_cwdb.Query_check
module Certain = Vardi_certain.Engine
module Session = Vardi_incr.Session
module Cancel = Vardi_certain.Cancel
module Approx = Vardi_approx.Evaluate
module Naive_tables = Vardi_approx.Naive_tables
module Ty_database = Vardi_typed.Ty_database
module Ty_query = Vardi_typed.Ty_query
module Ty_parser = Vardi_typed.Ty_parser
module Ldb_format = Vardi_format.Ldb_format
module Tldb_format = Vardi_format.Tldb_format
module Obs = Vardi_obs.Obs
module Resilient = Vardi_resilience.Resilient
module Budget = Vardi_resilience.Budget
module Faults = Vardi_resilience.Faults
module Wal = Vardi_durable.Wal
module Recovery = Vardi_durable.Recovery
module Store = Vardi_durable.Store

type violation = {
  oracle : string;
  detail : string;
}

let pp_violation ppf v = Fmt.pf ppf "[%s] %s" v.oracle v.detail

let oracle_ids =
  [
    "exact-reference";
    "exact-merge-first";
    "exact-naive-mappings";
    "exact-parallel";
    "kernel-parity";
    "approx-backend-algebra";
    "approx-backend-optimized";
    "acq-parity";
    "approx-sound";
    "approx-complete";
    "naive-tables-positive";
    "certain-subset-possible";
    "possible-duality";
    "member-consistency";
    "resilient-qualified";
    "resilient-stats-honest";
    "resilient-fault-safety";
    "resilient-kernel-parity";
    "query-roundtrip";
    "ldb-roundtrip";
    "typed-approx-sound";
    "typed-query-roundtrip";
    "tldb-roundtrip";
    "incremental-parity";
    "crash-recovery";
  ]

(* Enumeration budgets: the generated databases are tiny, but a caller
   may fuzz bigger shapes; skip the reference algorithms (not the
   default engine) when their search space explodes. *)
let naive_mapping_budget = 5_000
let member_budget = 1_000

let pow_up_to cap base exponent =
  let rec go acc n = if n = 0 || acc > cap then acc else go (acc * base) (n - 1) in
  if base = 0 then if exponent = 0 then 1 else 0 else go 1 exponent

type ctx = {
  mutable violations : violation list;
  mutable checks : int;
}

let add ctx oracle detail =
  Obs.count "fuzz.violations" 1;
  ctx.violations <- { oracle; detail } :: ctx.violations

(* Run one engine call under an oracle's name: an exception from a
   well-formed instance is itself a violation (crash oracle).
   Sys.Break is an async interrupt, not a crash — it must propagate or
   Ctrl-C could not stop a fuzz campaign. *)
let guard ctx oracle f =
  ctx.checks <- ctx.checks + 1;
  match f () with
  | value -> Some value
  | exception Sys.Break -> raise Sys.Break
  | exception e ->
    add ctx oracle (Printf.sprintf "raised %s" (Printexc.to_string e));
    None

let rel = Fmt.to_to_string Relation.pp

let expect_equal_rel ctx oracle ~reference ~label f =
  match guard ctx oracle f with
  | None -> ()
  | Some actual ->
    if not (Relation.equal reference actual) then
      add ctx oracle
        (Printf.sprintf "%s disagrees: reference %s, got %s" label
           (rel reference) (rel actual))

let expect_equal_bool ctx oracle ~reference ~label f =
  match guard ctx oracle f with
  | None -> ()
  | Some actual ->
    if actual <> reference then
      add ctx oracle
        (Printf.sprintf "%s disagrees: reference %b, got %b" label reference
           actual)

(* --- shared round-trip oracles --- *)

let check_query_roundtrip ctx q =
  match
    guard ctx "query-roundtrip" (fun () ->
        Parser.query (Pretty.query_to_string q))
  with
  | None -> ()
  | Some q' ->
    if not (Query.equal q q') then
      add ctx "query-roundtrip"
        (Printf.sprintf "printed %S, reparsed as %S"
           (Pretty.query_to_string q)
           (Pretty.query_to_string q'))

let check_ldb_roundtrip ctx db =
  match
    guard ctx "ldb-roundtrip" (fun () -> Ldb_format.parse (Ldb_format.print db))
  with
  | None -> ()
  | Some db' ->
    if not (Cw_database.equal db db') then
      add ctx "ldb-roundtrip"
        (Printf.sprintf "printed form reparses differently:\n%s"
           (Ldb_format.print db))

(* --- the differential engine oracles --- *)

let check_boolean ctx ~domains db q =
  match
    guard ctx "exact-reference" (fun () ->
        Certain.certain_boolean ~algorithm:Certain.Kernel_partitions
          ~order:Certain.Fresh_first db q)
  with
  | None -> ()
  | Some exact ->
    expect_equal_bool ctx "exact-merge-first" ~reference:exact
      ~label:"Merge_first order" (fun () ->
        Certain.certain_boolean ~order:Certain.Merge_first db q);
    let n = List.length (Cw_database.constants db) in
    if pow_up_to naive_mapping_budget n n <= naive_mapping_budget then
      expect_equal_bool ctx "exact-naive-mappings" ~reference:exact
        ~label:"Naive_mappings algorithm" (fun () ->
          Certain.certain_boolean ~algorithm:Certain.Naive_mappings db q);
    expect_equal_bool ctx "exact-parallel" ~reference:exact
      ~label:(Printf.sprintf "domains=%d" domains) (fun () ->
        Certain.certain_boolean ~domains db q);
    (match
       guard ctx "approx-sound" (fun () -> Approx.boolean db q)
     with
    | None -> ()
    | Some approx ->
      if approx && not exact then
        add ctx "approx-sound"
          (Printf.sprintf "approximation affirms a non-certain sentence");
      (match Approx.completeness db q with
      | Approx.Sound_only -> ()
      | Approx.Complete_fully_specified | Approx.Complete_positive ->
        if approx <> exact then
          add ctx "approx-complete"
            (Printf.sprintf
               "completeness theorem applies but approx %b <> exact %b" approx
               exact)));
    if Query.is_positive q then
      expect_equal_bool ctx "naive-tables-positive" ~reference:exact
        ~label:"naive tables on a positive query" (fun () ->
          Naive_tables.boolean db q);
    (match
       guard ctx "possible-duality" (fun () -> Certain.possible_boolean db q)
     with
    | None -> ()
    | Some possible ->
      if exact && not possible then
        add ctx "certain-subset-possible"
          "certainly true but not even possibly true";
      expect_equal_bool ctx "possible-duality" ~reference:possible
        ~label:"possible = ~certain(~phi)" (fun () ->
          not
            (Certain.certain_boolean db
               (Query.boolean (Formula.Not (Query.body q))))))

let check_relational ctx ~domains db q =
  match
    guard ctx "exact-reference" (fun () ->
        Certain.answer ~algorithm:Certain.Kernel_partitions
          ~order:Certain.Fresh_first db q)
  with
  | None -> ()
  | Some exact ->
    expect_equal_rel ctx "exact-merge-first" ~reference:exact
      ~label:"Merge_first order" (fun () ->
        Certain.answer ~order:Certain.Merge_first db q);
    let n = List.length (Cw_database.constants db) in
    if pow_up_to naive_mapping_budget n n <= naive_mapping_budget then
      expect_equal_rel ctx "exact-naive-mappings" ~reference:exact
        ~label:"Naive_mappings algorithm" (fun () ->
          Certain.answer ~algorithm:Certain.Naive_mappings db q);
    expect_equal_rel ctx "exact-parallel" ~reference:exact
      ~label:(Printf.sprintf "domains=%d" domains) (fun () ->
        Certain.answer ~domains db q);
    (match
       guard ctx "approx-sound" (fun () -> Approx.answer db q)
     with
    | None -> ()
    | Some approx ->
      if not (Relation.subset approx exact) then
        add ctx "approx-sound"
          (Printf.sprintf "Theorem 11 violated: approx %s not within exact %s"
             (rel approx) (rel exact));
      (match Approx.completeness db q with
      | Approx.Sound_only -> ()
      | Approx.Complete_fully_specified | Approx.Complete_positive ->
        if not (Relation.equal approx exact) then
          add ctx "approx-complete"
            (Printf.sprintf
               "completeness theorem applies but approx %s <> exact %s"
               (rel approx) (rel exact)));
      expect_equal_rel ctx "approx-backend-algebra" ~reference:approx
        ~label:"Algebra backend" (fun () ->
          Approx.answer ~backend:Approx.Algebra db q);
      expect_equal_rel ctx "approx-backend-optimized" ~reference:approx
        ~label:"optimized Algebra backend" (fun () ->
          Approx.answer ~backend:Approx.Algebra_optimized db q));
    if Query.is_positive q then
      expect_equal_rel ctx "naive-tables-positive" ~reference:exact
        ~label:"naive tables on a positive query" (fun () ->
          Naive_tables.answer db q);
    (match
       guard ctx "certain-subset-possible" (fun () ->
           Certain.possible_answer db q)
     with
    | None -> ()
    | Some possible ->
      if not (Relation.subset exact possible) then
        add ctx "certain-subset-possible"
          (Printf.sprintf "certain %s not within possible %s" (rel exact)
             (rel possible)));
    let k = Query.arity q in
    let constants = Cw_database.constants db in
    if pow_up_to member_budget (List.length constants) k <= member_budget then
      let rec tuples k =
        if k = 0 then [ [] ]
        else
          List.concat_map
            (fun tl -> List.map (fun c -> c :: tl) constants)
            (tuples (k - 1))
      in
      List.iter
        (fun tuple ->
          expect_equal_bool ctx "member-consistency"
            ~reference:(Relation.mem tuple exact)
            ~label:
              (Printf.sprintf "certain_member on (%s)"
                 (String.concat ", " tuple))
            (fun () -> Certain.certain_member db q tuple))
        (tuples k)

(* --- the acq-parity oracle ---

   The acyclic-query fast path (hypergraph → join tree → semijoin
   reduction) must be answer-identical to the naive evaluators on
   every query, whichever branch the dispatcher takes. Both branches
   are checked against the Tarskian [Eval] reference on [Ph₁(LB)]:
   when detection succeeds, the Yannakakis answer AND the optimized
   algebra plan must agree with it; when it falls back, the optimized
   plan alone is compared (the fast path never ran). The
   detected/total counters are exposed so a campaign can assert a
   detection-rate floor — a too-strict acyclicity test that always
   falls back would otherwise pass silently. *)

let acq_detected = Atomic.make 0
let acq_total = Atomic.make 0

let acq_detection () = (Atomic.get acq_detected, Atomic.get acq_total)

let reset_acq_detection () =
  Atomic.set acq_detected 0;
  Atomic.set acq_total 0

let check_acq_parity ctx db q =
  let oracle = "acq-parity" in
  let pb = Ph.ph1 db in
  match guard ctx oracle (fun () -> Yannakakis.answer pb q) with
  | None -> ()
  | Some dispatch ->
    Atomic.incr acq_total;
    if dispatch <> None then begin
      Atomic.incr acq_detected;
      Obs.count "fuzz.acq_detected" 1
    end;
    (match guard ctx oracle (fun () -> Eval.answer pb q) with
    | None -> ()
    | Some reference ->
      (match dispatch with
      | Some fast ->
        if not (Relation.equal reference fast) then
          add ctx oracle
            (Printf.sprintf
               "Yannakakis fast path disagrees: reference %s, got %s"
               (rel reference) (rel fast))
      | None -> ());
      (* [prepared] compiles + optimizes once; [None] (second-order
         query) has no algebra path to compare. *)
      match guard ctx oracle (fun () -> Compile.prepared pb q) with
      | None | Some None -> ()
      | Some (Some plan) ->
        expect_equal_rel ctx oracle ~reference
          ~label:
            (if dispatch = None then "optimized plan (fallback branch)"
             else "optimized plan (detected branch)")
          (fun () -> Algebra.run pb plan))

(* --- the kernel-parity oracle ---

   A three-way differential: the interned kernel (integer codes, array
   tuples, shared-prefix quotients) and the compiled kernel (packed
   flat code, register-allocated formula closures) must both be
   observationally identical to the original string kernel: same
   answers on every entry point, under both algorithms, both structure
   orders, sequential and parallel. The string side is the reference —
   it is the simplest implementation — and the other two are on
   trial. *)

let check_kernel_parity ctx db q =
  let n = List.length (Cw_database.constants db) in
  let algorithms =
    (Certain.Kernel_partitions, "Kernel_partitions")
    ::
    (if pow_up_to naive_mapping_budget n n <= naive_mapping_budget then
       [ (Certain.Naive_mappings, "Naive_mappings") ]
     else [])
  in
  let orders =
    [ (Certain.Fresh_first, "Fresh_first"); (Certain.Merge_first, "Merge_first") ]
  in
  let boolean = Query.is_boolean q in
  List.iter
    (fun (algorithm, alg_name) ->
      List.iter
        (fun (order, ord_name) ->
          List.iter
            (fun domains ->
              let label what =
                Printf.sprintf "%s under %s/%s/domains=%d" what alg_name
                  ord_name domains
              in
              let certain ~kernel () =
                if boolean then
                  `Bool
                    (Certain.certain_boolean ~kernel ~algorithm ~order ~domains
                       db q)
                else `Rel (Certain.answer ~kernel ~algorithm ~order ~domains db q)
              and possible ~kernel () =
                if boolean then
                  `Bool
                    (Certain.possible_boolean ~kernel ~algorithm ~order ~domains
                       db q)
                else
                  `Rel
                    (Certain.possible_answer ~kernel ~algorithm ~order ~domains
                       db q)
              in
              let on_trial =
                [ (Certain.Interned, "interned"); (Certain.Compiled, "compiled") ]
              in
              List.iter
                (fun (what, run) ->
                  match guard ctx "kernel-parity" (run ~kernel:Certain.Strings)
                  with
                  | None -> ()
                  | Some (`Bool reference) ->
                    List.iter
                      (fun (kernel, kname) ->
                        expect_equal_bool ctx "kernel-parity" ~reference
                          ~label:(label (what ^ "/" ^ kname)) (fun () ->
                            match run ~kernel () with
                            | `Bool b -> b
                            | `Rel _ -> assert false))
                      on_trial
                  | Some (`Rel reference) ->
                    List.iter
                      (fun (kernel, kname) ->
                        expect_equal_rel ctx "kernel-parity" ~reference
                          ~label:(label (what ^ "/" ^ kname)) (fun () ->
                            match run ~kernel () with
                            | `Rel r -> r
                            | `Bool _ -> assert false))
                      on_trial)
                [
                  ((if boolean then "certain_boolean" else "answer"), certain);
                  ( (if boolean then "possible_boolean" else "possible_answer"),
                    possible );
                ])
            [ 1; 4 ])
        orders)
    algorithms

(* --- resilience oracles ---

   [resilient-qualified] is the qualified-answer lattice, checked
   differentially: whatever the policy and however tight the budget,
   [Lower_bound a ⊆ Q(LB) ⊆ Upper_bound a] and [Exact a = Q(LB)],
   against an exact answer computed by the raw engine outside any
   budget. [resilient-stats-honest] pins the provenance contract: the
   stats never claim more than the result delivers. With a fault seed,
   [resilient-fault-safety] re-checks both under an armed fault plan
   and additionally proves no injected exception leaks through a
   degrading policy nor through a hardened Obs sink. *)

let qualified_bounds ctx ~policy_name ~exact ~subset ~equal ~show result =
  let claim fmt = Printf.ksprintf (add ctx "resilient-qualified") fmt in
  match result with
  | Resilient.Exact v ->
    if not (equal v exact) then
      claim "[%s] Exact %s but the exact answer is %s" policy_name (show v)
        (show exact)
  | Resilient.Lower_bound v ->
    if not (subset v exact) then
      claim "[%s] Lower_bound %s not within exact %s" policy_name (show v)
        (show exact)
  | Resilient.Upper_bound v ->
    if not (subset exact v) then
      claim "[%s] Upper_bound %s does not contain exact %s" policy_name
        (show v) (show exact)
  | Resilient.Exhausted ->
    if policy_name <> "Fail" then
      claim "[%s] Exhausted outside the Fail policy" policy_name

let stats_honest ctx ~policy_name result (stats : Resilient.stats) =
  let expect cond fmt =
    Printf.ksprintf
      (fun msg ->
        if not cond then
          add ctx "resilient-stats-honest"
            (Printf.sprintf "[%s] %s" policy_name msg))
      fmt
  in
  let source_matches =
    match (result, stats.Resilient.source) with
    | Resilient.Exact _, Resilient.Exact_scan
    | Resilient.Upper_bound _, Resilient.Partial_scan
    | Resilient.Lower_bound _, Resilient.Approx_fallback
    | Resilient.Exhausted, Resilient.No_answer ->
      true
    | _ -> false
  in
  expect source_matches "source %S does not match the result constructor"
    (Resilient.source_to_string stats.Resilient.source);
  match result with
  | Resilient.Exact _ ->
    expect
      (stats.Resilient.tripped = None && stats.Resilient.scan_failure = None)
      "Exact result but a degradation cause is recorded";
    expect (stats.Resilient.scan <> None) "Exact result without scan stats"
  | Resilient.Exhausted | Resilient.Upper_bound _ ->
    expect (stats.Resilient.tripped <> None)
      "degraded result without a tripped budget dimension"
  | Resilient.Lower_bound _ ->
    expect
      (stats.Resilient.tripped <> None || stats.Resilient.scan_failure <> None)
      "fallback taken without a recorded cause"

let policies =
  [
    (Resilient.Fail, "Fail");
    (Resilient.Partial, "Partial");
    (Resilient.Approx, "Approx");
  ]

(* One structure is never enough for the generated instances unless the
   scan decides on the seed structure itself, so this budget makes the
   degradation paths fire on most instances while still exercising the
   decided-within-budget corner on the rest. *)
let trip_budget = Budget.make ~max_structures:1 ()

let check_resilient_bool ctx db q =
  match
    guard ctx "resilient-qualified" (fun () -> Certain.certain_boolean db q)
  with
  | None -> ()
  | Some exact ->
    let subset a b = (not a) || b in
    let check_one ~policy_name run =
      match guard ctx "resilient-qualified" run with
      | None -> ()
      | Some (result, stats) ->
        qualified_bounds ctx ~policy_name ~exact ~subset ~equal:Bool.equal
          ~show:string_of_bool result;
        stats_honest ctx ~policy_name result stats
    in
    check_one ~policy_name:"Fail" (fun () ->
        match Resilient.boolean_stats db q with
        | (Resilient.Exact _, _) as r -> r
        | other, stats ->
          add ctx "resilient-qualified"
            (Fmt.str "unlimited budget degraded to %a"
               (Resilient.pp_qualified Fmt.bool) other);
          (other, stats));
    List.iter
      (fun (policy, policy_name) ->
        check_one ~policy_name (fun () ->
            Resilient.boolean_stats ~policy ~budget:trip_budget db q))
      policies

let check_resilient_rel ctx db q =
  match guard ctx "resilient-qualified" (fun () -> Certain.answer db q) with
  | None -> ()
  | Some exact ->
    let check_one ~policy_name run =
      match guard ctx "resilient-qualified" run with
      | None -> ()
      | Some (result, stats) ->
        qualified_bounds ctx ~policy_name ~exact ~subset:Relation.subset
          ~equal:Relation.equal ~show:rel result;
        stats_honest ctx ~policy_name result stats
    in
    check_one ~policy_name:"Fail" (fun () ->
        match Resilient.answer_stats db q with
        | (Resilient.Exact _, _) as r -> r
        | other, stats ->
          add ctx "resilient-qualified"
            (Fmt.str "unlimited budget degraded to %a"
               (Resilient.pp_qualified Relation.pp) other);
          (other, stats));
    List.iter
      (fun (policy, policy_name) ->
        check_one ~policy_name (fun () ->
            Resilient.answer_stats ~policy ~budget:trip_budget db q))
      policies

let check_fault_safety ctx ~domains ~seed db q =
  let boolean = Query.is_boolean q in
  (* Degrading policies must contain an armed fault plan: whatever the
     injection kills, no exception escapes and the bound still holds.
     The raw engine computes the exact reference without a token, so no
     fault point sits on its path even while the plan is armed. *)
  List.iter
    (fun (policy, policy_name) ->
      match
        guard ctx "resilient-fault-safety" (fun () ->
            Faults.with_faults ~seed ~rate:0.2 (fun () ->
                if boolean then (
                  let result, stats =
                    Resilient.boolean_stats ~policy ~budget:trip_budget db q
                  in
                  let exact = Certain.certain_boolean db q in
                  qualified_bounds ctx ~policy_name ~exact
                    ~subset:(fun a b -> (not a) || b)
                    ~equal:Bool.equal ~show:string_of_bool result;
                  stats_honest ctx ~policy_name result stats)
                else
                  let result, stats =
                    Resilient.answer_stats ~policy ~budget:trip_budget db q
                  in
                  let exact = Certain.answer db q in
                  qualified_bounds ctx ~policy_name ~exact
                    ~subset:Relation.subset ~equal:Relation.equal ~show:rel
                    result;
                  stats_honest ctx ~policy_name result stats))
      with
      | Some () | None -> ())
    [ (Resilient.Partial, "Partial"); (Resilient.Approx, "Approx") ];
  (* A raising Obs sink must be caught, counted and disabled without
     perturbing the engine's verdict — skipped when the caller already
     has a real sink installed (we must not clobber their trace). *)
  if not (Obs.enabled ()) then begin
    let errors_before = Obs.sink_errors () in
    (match
       guard ctx "resilient-fault-safety" (fun () ->
           let reference =
             if boolean then `Bool (Certain.certain_boolean db q)
             else `Rel (Certain.answer db q)
           in
           let under_sink =
             Obs.with_sink
               (Faults.raising_sink ())
               (fun () ->
                 if boolean then `Bool (Certain.certain_boolean ~domains db q)
                 else `Rel (Certain.answer ~domains db q))
           in
           (reference, under_sink))
     with
    | None -> ()
    | Some (reference, under_sink) ->
      let agrees =
        match (reference, under_sink) with
        | `Bool a, `Bool b -> Bool.equal a b
        | `Rel a, `Rel b -> Relation.equal a b
        | _ -> false
      in
      if not agrees then
        add ctx "resilient-fault-safety"
          "a raising Obs sink changed the engine's verdict";
      if Obs.sink_errors () <= errors_before then
        add ctx "resilient-fault-safety"
          "a raising Obs sink was never caught or counted";
      if Obs.enabled () then
        add ctx "resilient-fault-safety"
          "a raising Obs sink was left installed")
  end

(* --- the resilient kernel-parity oracle ---

   Cancellation and fault provenance must not depend on the kernel.
   The budget token is checked only by the shared scan scheduler —
   never from inside [Ieval]'s bounded-SO fallback or the strings
   evaluator — and the fault probe rides the same check, so a trip (or
   an injected fault) observed by the strings kernel must be observed
   at the same position by the interned kernel: same qualified
   constructor and value, same [source]/[tripped]/[scan_failure]
   provenance, same scan counters. Each kernel runs under its own
   separately-armed fault plan with the same seed ([Faults.arm] resets
   the visit counter), so both see identical injection decisions as
   long as their probe sequences agree — which is exactly the parity
   on trial. Wall-clock and [domains_used] are excluded; deadline
   budgets are not used here (wall-clock trips are inherently
   schedule-dependent). *)

let resilient_summary ~show (result, (stats : Resilient.stats)) =
  let reason = function
    | None -> "-"
    | Some r -> Cancel.reason_to_string r
  in
  let qualified =
    match result with
    | Resilient.Exact v -> "Exact " ^ show v
    | Resilient.Lower_bound v -> "Lower_bound " ^ show v
    | Resilient.Upper_bound v -> "Upper_bound " ^ show v
    | Resilient.Exhausted -> "Exhausted"
  in
  let scan =
    match stats.Resilient.scan with
    | None -> "none"
    | Some s ->
      Printf.sprintf "{structures=%d evaluations=%d early_exit=%b tripped=%s}"
        s.Certain.structures s.Certain.evaluations s.Certain.early_exit
        (reason s.Certain.interrupted)
  in
  Printf.sprintf "%s source=%s tripped=%s failure=%s scan=%s" qualified
    (Resilient.source_to_string stats.Resilient.source)
    (reason stats.Resilient.tripped)
    (Option.value stats.Resilient.scan_failure ~default:"-")
    scan

let check_resilient_kernel_parity ctx ~seed db q =
  let boolean = Query.is_boolean q in
  let summarize ~kernel ~policy () =
    Faults.with_faults ~seed ~rate:0.2 (fun () ->
        (* Under [Fail] an injected fault propagates by contract; that
           raise is part of the observable behavior, so it goes into
           the summary rather than through [guard]'s crash oracle —
           both kernels must then raise the same exception. *)
        match
          if boolean then
            resilient_summary ~show:string_of_bool
              (Resilient.boolean_stats ~kernel ~policy ~budget:trip_budget db
                 q)
          else
            resilient_summary ~show:rel
              (Resilient.answer_stats ~kernel ~policy ~budget:trip_budget db q)
        with
        | summary -> summary
        | exception Sys.Break -> raise Sys.Break
        | exception e -> "raised " ^ Printexc.to_string e)
  in
  List.iter
    (fun (policy, policy_name) ->
      match
        guard ctx "resilient-kernel-parity"
          (summarize ~kernel:Certain.Strings ~policy)
      with
      | None -> ()
      | Some strings ->
        (* Each kernel replays the same armed fault plan (same seed),
           so the summaries — including which probe tripped — must
           match position for position. *)
        List.iter
          (fun (kernel, kname) ->
            match
              guard ctx "resilient-kernel-parity" (summarize ~kernel ~policy)
            with
            | Some on_trial ->
              if not (String.equal strings on_trial) then
                add ctx "resilient-kernel-parity"
                  (Printf.sprintf
                     "[%s] kernels diverge under faults:\n\
                     \  strings:  %s\n\
                     \  %s: %s" policy_name strings kname on_trial)
            | None -> ())
          [ (Certain.Interned, "interned"); (Certain.Compiled, "compiled") ])
    policies

(* --- the incremental-parity oracle ---

   An [Incr_session] with a random mutation sequence applied must stay
   observationally identical to from-scratch evaluation on the mutated
   database: same answers under both structure orders and both session
   kernels (interned and compiled), and — the positional contract — identical
   resilient summaries under a tripping budget (same qualified
   constructor, same provenance, same scan counters; a memo hit must
   occupy exactly the stream position a fresh evaluation would). The
   mutation sequence is derived deterministically from the instance, so
   a violation replays from the driver's seed alone. *)

let check_incremental_parity ctx db q =
  let oracle = "incremental-parity" in
  let seed = Hashtbl.hash (Ldb_format.print db, Pretty.query_to_string q) in
  let state = Random.State.make [| seed; 0x1 |] in
  match guard ctx oracle (fun () -> Session.create db) with
  | None -> ()
  | Some session ->
    let boolean = Query.is_boolean q in
    let pick l = List.nth l (Random.State.int state (List.length l)) in
    let preds = Vocabulary.predicates (Cw_database.vocabulary db) in
    (* One random mutation; [false] when the drawn mutation does not
       apply (empty database, merge that would invalidate the query or
       hit a uniqueness axiom, ...) — the step is simply skipped. *)
    let mutate () =
      let current = Session.db session in
      let constants = Cw_database.constants current in
      match Random.State.int state 4 with
      | 0 when preds <> [] ->
        let p, k = pick preds in
        let fact =
          { Cw_database.pred = p; args = List.init k (fun _ -> pick constants) }
        in
        Session.insert session fact;
        true
      | 1 -> (
        match Cw_database.facts current with
        | [] -> false
        | facts ->
          Session.retract session (pick facts);
          true)
      | 2 when List.length constants >= 2 ->
        let c = pick constants and d = pick constants in
        if String.equal c d then false
        else begin
          Session.close_unknown session c d ~to_:`Distinct;
          true
        end
      | 3 when List.length constants >= 2 ->
        let keep = pick constants and drop = pick constants in
        if String.equal keep drop || Cw_database.are_distinct current keep drop
        then false
        else begin
          (* A merge drops a constant the query may mention; probe the
             merged database first and skip the step if the query would
             no longer validate. *)
          match
            Query_check.validate
              (Cw_database.merge_constants current ~keep ~drop)
              q
          with
          | () ->
            Session.close_unknown session keep drop ~to_:`Equal;
            true
          | exception Invalid_argument _ -> false
        end
      | _ -> false
    in
    let compare_at step =
      let current = Session.db session in
      let fresh ~kernel =
        if boolean then `Bool (Certain.certain_boolean ~kernel current q)
        else `Rel (Certain.answer ~kernel current q)
      in
      let reference = guard ctx oracle (fun () -> fresh ~kernel:Certain.Strings)
      in
      List.iter
        (fun (order, ord_name) ->
          let label what =
            Printf.sprintf "step %d, %s under %s" step what ord_name
          in
          (* Answers: incremental vs the fresh strings kernel (the
             fresh interned/compiled kernels are covered by
             [kernel-parity]), under both session kernels. *)
          List.iter
            (fun (kernel, kname) ->
              match reference with
              | None -> ()
              | Some (`Bool reference) ->
                expect_equal_bool ctx oracle ~reference
                  ~label:(label ("session answer/" ^ kname)) (fun () ->
                    fst
                      (Certain.prepared_certain_boolean_stats ~order
                         (Session.prepare ~kernel session q)))
              | Some (`Rel reference) ->
                expect_equal_rel ctx oracle ~reference
                  ~label:(label ("session answer/" ^ kname)) (fun () ->
                    fst
                      (Certain.prepared_answer_stats ~order
                         (Session.prepare ~kernel session q))))
            [ (Certain.Interned, "interned"); (Certain.Compiled, "compiled") ];
          (* Budgets: fresh-prepared and session-prepared must trip at
             the same stream position with the same provenance. *)
          List.iter
            (fun (policy, policy_name) ->
              let summarize prepared () =
                if boolean then
                  resilient_summary ~show:string_of_bool
                    (Resilient.prepared_boolean_stats ~policy ~order
                       ~budget:trip_budget prepared)
                else
                  resilient_summary ~show:rel
                    (Resilient.prepared_answer_stats ~policy ~order
                       ~budget:trip_budget prepared)
              in
              List.iter
                (fun (kernel, kname) ->
                  match
                    ( guard ctx oracle
                        (summarize (Certain.prepare ~kernel current q)),
                      guard ctx oracle
                        (summarize (Session.prepare ~kernel session q)) )
                  with
                  | Some fresh_summary, Some incr_summary ->
                    if not (String.equal fresh_summary incr_summary) then
                      add ctx oracle
                        (Printf.sprintf
                           "%s: budget behavior diverges:\n\
                           \  fresh:       %s\n\
                           \  incremental: %s"
                           (label
                              ("policy " ^ policy_name ^ "/" ^ kname))
                           fresh_summary incr_summary)
                  | _ -> ())
                [
                  (Certain.Interned, "interned");
                  (Certain.Compiled, "compiled");
                ])
            [ (Resilient.Fail, "Fail"); (Resilient.Partial, "Partial") ])
        [
          (Certain.Fresh_first, "Fresh_first");
          (Certain.Merge_first, "Merge_first");
        ]
    in
    compare_at 0;
    for step = 1 to 3 do
      match guard ctx oracle (fun () -> mutate ()) with
      | Some true -> compare_at step
      | Some false | None -> ()
    done

(* --- crash-recovery -------------------------------------------------

   Durability oracle for the write-ahead log (Theorem 1 state as the
   recoverable object): run a random mutation script against a
   [Durable_store] with fault injection armed, "kill" the process at
   whatever fault point fires ([Store.abandon] — the file descriptor is
   dropped without flushing or checkpointing), then recover the
   directory and demand the recovered session equals a fresh session
   that applied exactly the durable prefix of the script.

   Which prefix is durable is determined by the crash point, and that
   determinism is the contract under test:

   - ["wal.append"] / ["wal.append.short"]: the record was not (fully)
     written, so the in-flight mutation must NOT survive — recovery
     sees the acknowledged prefix only (truncating the torn tail in the
     short-write case).
   - ["wal.fsync"] / ["snapshot.write"] / ["snapshot.write.short"]: the
     record was fully written before the crash, so the in-flight
     mutation MUST survive even though the client never saw an ack
     (fsync crash) or the checkpoint was interrupted (snapshot crash —
     the stale tmp file is swept, the previous snapshot + log win).

   Answers and delta epochs must agree, not just the databases: a
   recovered session that answers through stale caches or restarts its
   epoch would pass a database-only check. *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let check_crash_recovery ctx ~seed db q =
  let oracle = "crash-recovery" in
  let state = Random.State.make [| seed; 0xC4A5 |] in
  let dir = Filename.temp_file "ldb-crashrec" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ())
  @@ fun () ->
  match
    guard ctx oracle (fun () ->
        Store.create ~dir ~sync:Wal.Always ~snapshot_every:4 db)
  with
  | None -> ()
  | Some store ->
    let pick l = List.nth l (Random.State.int state (List.length l)) in
    let preds = Vocabulary.predicates (Cw_database.vocabulary db) in
    (* Draw the next mutation, valid against [current] (the store
       probes validity itself and would raise [Invalid_argument] on an
       invalid one — the generator only proposes applicable steps, the
       same vocabulary walk as [check_incremental_parity]). *)
    let gen current =
      let constants = Cw_database.constants current in
      match Random.State.int state 4 with
      | 0 when preds <> [] ->
        let p, k = pick preds in
        Some
          (Session.Insert
             {
               Cw_database.pred = p;
               args = List.init k (fun _ -> pick constants);
             })
      | 1 -> (
        match Cw_database.facts current with
        | [] -> None
        | facts -> Some (Session.Retract (pick facts)))
      | 2 when List.length constants >= 2 ->
        let c = pick constants and d = pick constants in
        if String.equal c d then None
        else Some (Session.Close { left = c; right = d; equal = false })
      | 3 when List.length constants >= 2 ->
        let keep = pick constants and drop = pick constants in
        if String.equal keep drop || Cw_database.are_distinct current keep drop
        then None
        else (
          match
            Query_check.validate
              (Cw_database.merge_constants current ~keep ~drop)
              q
          with
          | () -> Some (Session.Close { left = keep; right = drop; equal = true })
          | exception Invalid_argument _ -> None)
      | _ -> None
    in
    let script_len = 8 + Random.State.int state 8 in
    (* Mutations whose commit returned normally (acknowledged), newest
       first; [crashed] records the fault point and the in-flight
       mutation when injection fired mid-commit. *)
    let acked = ref [] in
    let crashed = ref None in
    (match
       guard ctx oracle (fun () ->
           Faults.with_faults ~seed ~rate:0.1 (fun () ->
               let step = ref 0 in
               while !step < script_len && !crashed = None do
                 incr step;
                 let current = Session.db (Store.session store) in
                 match gen current with
                 | None -> ()
                 | Some m -> (
                   match Store.commit store m with
                   | `Applied _ | `Noop -> acked := m :: !acked
                   | exception Faults.Injected point ->
                     crashed := Some (point, m))
               done))
     with
    | None -> ()
    | Some () ->
      Store.abandon store;
      let durable =
        match !crashed with
        | None -> List.rev !acked
        | Some (("wal.fsync" | "snapshot.write" | "snapshot.write.short"), m)
          ->
          List.rev (m :: !acked)
        | Some (_, _) ->
          (* "wal.append" / "wal.append.short": nothing (fully) hit the
             log for the in-flight mutation. *)
          List.rev !acked
      in
      let where =
        match !crashed with
        | None -> Printf.sprintf "clean kill after %d commits" (List.length !acked)
        | Some (point, _) ->
          Printf.sprintf "crash at %s after %d commits" point
            (List.length !acked)
      in
      (match
         guard ctx oracle (fun () ->
             let reference = Session.create db in
             List.iter (fun m -> ignore (Session.apply reference m)) durable;
             let report = Recovery.recover dir in
             (reference, report))
       with
      | None -> ()
      | Some (reference, report) ->
        let edb = Session.db reference in
        let rdb = Session.db report.Recovery.r_session in
        ctx.checks <- ctx.checks + 1;
        if not (Cw_database.equal rdb edb) then
          add ctx oracle
            (Printf.sprintf
               "%s: recovered database differs from the durable prefix:\n\
               \  expected: %s\n\
               \  recovered: %s"
               where (Ldb_format.print edb) (Ldb_format.print rdb));
        ctx.checks <- ctx.checks + 1;
        let edelta = Session.delta_epoch reference
        and rdelta = Session.delta_epoch report.Recovery.r_session in
        if rdelta <> edelta then
          add ctx oracle
            (Printf.sprintf
               "%s: recovered delta epoch %d, expected %d (the epoch must \
                count replayed mutations or compiled-plan reuse breaks)"
               where rdelta edelta);
        (* The recovered session must answer live, not just hold the
           right facts. *)
        (if Query.is_boolean q then
           expect_equal_bool ctx oracle
             ~reference:(Certain.certain_boolean edb q)
             ~label:(where ^ ", recovered session answer") (fun () ->
               fst
                 (Certain.prepared_certain_boolean_stats
                    (Session.prepare report.Recovery.r_session q)))
         else
           expect_equal_rel ctx oracle ~reference:(Certain.answer edb q)
             ~label:(where ^ ", recovered session answer") (fun () ->
               fst
                 (Certain.prepared_answer_stats
                    (Session.prepare report.Recovery.r_session q))));
        (* Recovery is idempotent: a second, read-only pass over the
           (now truncated) directory lands on the same state. *)
        (match guard ctx oracle (fun () -> Recovery.verify dir) with
        | None -> ()
        | Some again ->
          ctx.checks <- ctx.checks + 1;
          if not (Cw_database.equal (Session.db again.Recovery.r_session) edb)
          then
            add ctx oracle
              (Printf.sprintf "%s: second recovery pass diverged" where))))

let check ?(domains = 2) ?faults_seed db q =
  let ctx = { violations = []; checks = 0 } in
  Obs.span "fuzz.oracle" (fun () ->
      check_query_roundtrip ctx q;
      check_ldb_roundtrip ctx db;
      if Query.is_boolean q then check_boolean ctx ~domains db q
      else check_relational ctx ~domains db q;
      check_acq_parity ctx db q;
      check_kernel_parity ctx db q;
      if Query.is_boolean q then check_resilient_bool ctx db q
      else check_resilient_rel ctx db q;
      (match faults_seed with
      | Some seed ->
        check_fault_safety ctx ~domains ~seed db q;
        check_resilient_kernel_parity ctx ~seed db q;
        check_crash_recovery ctx ~seed db q
      | None -> ());
      check_incremental_parity ctx db q;
      Obs.count "fuzz.checks" ctx.checks);
  List.rev ctx.violations

(* --- typed oracles --- *)

let ty_query_to_string = Fmt.to_to_string Ty_parser.pp_query

let check_typed tdb tq =
  let ctx = { violations = []; checks = 0 } in
  Obs.span "fuzz.oracle_typed" (fun () ->
      (match
         guard ctx "typed-query-roundtrip" (fun () ->
             Ty_parser.query (ty_query_to_string tq))
       with
      | None -> ()
      | Some tq' ->
        if
          not
            (String.equal (ty_query_to_string tq) (ty_query_to_string tq'))
        then
          add ctx "typed-query-roundtrip"
            (Printf.sprintf "printed %S, reparsed as %S"
               (ty_query_to_string tq) (ty_query_to_string tq')));
      (match
         guard ctx "tldb-roundtrip" (fun () ->
             Tldb_format.parse (Tldb_format.print tdb))
       with
      | None -> ()
      | Some tdb' ->
        if
          not
            (Cw_database.equal (Ty_database.to_cw tdb)
               (Ty_database.to_cw tdb'))
        then
          add ctx "tldb-roundtrip"
            (Printf.sprintf "printed form describes a different database:\n%s"
               (Tldb_format.print tdb)));
      (match
         ( guard ctx "typed-approx-sound" (fun () ->
               Ty_query.approx_answer tdb tq),
           guard ctx "typed-approx-sound" (fun () ->
               Ty_query.certain_answer tdb tq) )
       with
      | Some approx, Some exact ->
        if not (Relation.subset approx exact) then
          add ctx "typed-approx-sound"
            (Printf.sprintf
               "Theorem 11 violated through the typed elaboration: approx %s \
                not within exact %s"
               (rel approx) (rel exact))
      | _ -> ());
      Obs.count "fuzz.checks" ctx.checks);
  List.rev ctx.violations
