module Query = Vardi_logic.Query
module Parser = Vardi_logic.Parser
module Pretty = Vardi_logic.Pretty
module Cw_database = Vardi_cwdb.Cw_database
module Ldb_format = Vardi_format.Ldb_format

exception Corpus_error of string

type case = {
  oracle : string option;
  query : Query.t;
  db : Cw_database.t;
}

(* Header lines (oracle, query), a "==" separator, then the database in
   .ldb concrete syntax. Line-oriented so the shrunk regressions under
   test/corpus/ diff cleanly. *)

let print { oracle; query; db } =
  let buffer = Buffer.create 256 in
  (match oracle with
  | Some id -> Buffer.add_string buffer (Printf.sprintf "oracle %s\n" id)
  | None -> ());
  Buffer.add_string buffer
    (Printf.sprintf "query %s\n" (Pretty.query_to_string query));
  Buffer.add_string buffer "==\n";
  Buffer.add_string buffer (Ldb_format.print db);
  Buffer.contents buffer

let strip_prefix ~prefix line =
  if String.length line > String.length prefix
     && String.equal (String.sub line 0 (String.length prefix)) prefix
  then
    Some
      (String.trim
         (String.sub line (String.length prefix)
            (String.length line - String.length prefix)))
  else None

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec header oracle query = function
    | [] -> raise (Corpus_error "missing \"==\" separator")
    | line :: rest -> (
      match String.trim line with
      | "" -> header oracle query rest
      | "==" -> (
        match query with
        | None -> raise (Corpus_error "missing \"query\" line")
        | Some q -> (oracle, q, String.concat "\n" rest))
      | trimmed -> (
        match strip_prefix ~prefix:"oracle " trimmed with
        | Some id -> header (Some id) query rest
        | None -> (
          match strip_prefix ~prefix:"query " trimmed with
          | Some text -> (
            match Parser.query text with
            | q -> header oracle (Some q) rest
            | exception e ->
              raise
                (Corpus_error
                   (Printf.sprintf "bad query %S: %s" text
                      (Printexc.to_string e))))
          | None ->
            raise (Corpus_error (Printf.sprintf "unrecognized line %S" trimmed))
          )))
  in
  let oracle, query, body = header None None lines in
  let db =
    match Ldb_format.parse body with
    | db -> db
    | exception Ldb_format.Syntax_error (line, message) ->
      raise
        (Corpus_error (Printf.sprintf "bad database, line %d: %s" line message))
  in
  { oracle; query; db }

let save path case =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (print case))

let load path =
  (* Fault surface: a failing file read, injectable by the resilience
     fuzzer. Visits before the file is opened so a firing leaks no fd. *)
  Vardi_resilience.Faults.point "corpus.read";
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match parse text with
  | case -> case
  | exception Corpus_error message ->
    raise (Corpus_error (Printf.sprintf "%s: %s" path message))

let load_dir dir =
  match Sys.readdir dir with
  | entries ->
    Array.sort String.compare entries;
    Array.to_list entries
    |> List.filter (fun name -> Filename.check_suffix name ".fuzz")
    |> List.map (fun name ->
           let path = Filename.concat dir name in
           (path, load path))
  | exception Sys_error _ -> []
