(** A plain-text format for {e typed} CW logical databases ([.tldb]
    files). Line-oriented; [#] comments; blank lines ignored.

    {v
    type person course
    constant alice bob db_teacher : person
    constant databases logic : course
    predicate ENROLLED(person, course)
    fact ENROLLED(alice, databases)
    distinct alice bob
    fully_specified
    v}

    - [type NAME...] declares types;
    - [constant NAME... : TYPE] declares constants of one type;
    - [predicate NAME(TYPE, ...)] declares a predicate ([NAME()] for a
      propositional one);
    - [fact P(c1, ..., ck)] adds an atomic fact axiom;
    - [distinct c d] adds a (same-type) uniqueness axiom;
    - [fully_specified] closes every type after reading all lines. *)

exception Syntax_error of int * string

(** [parse text].
    @raise Syntax_error on malformed lines; [Invalid_argument] on
    semantic violations (from {!Vardi_typed.Ty_database.make}). *)
val parse : string -> Vardi_typed.Ty_database.t

val load : string -> Vardi_typed.Ty_database.t

(** [print db]; [parse (print db)] describes the same database. *)
val print : Vardi_typed.Ty_database.t -> string

val save : string -> Vardi_typed.Ty_database.t -> unit
