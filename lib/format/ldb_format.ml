module Vocabulary = Vardi_logic.Vocabulary
module Cw_database = Vardi_cwdb.Cw_database

exception Syntax_error of int * string

let fail line fmt = Format.kasprintf (fun s -> raise (Syntax_error (line, s))) fmt

let is_space c = c = ' ' || c = '\t' || c = '\r'

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let trim = String.trim

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> not (String.equal w ""))

let valid_name name =
  String.length name > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '\'')
       name

let check_name lineno what name =
  if not (valid_name name) then fail lineno "invalid %s name %S" what name

(* [fact P(c1, c2)] — parse the part after the keyword. *)
let parse_fact lineno rest =
  let rest = trim rest in
  match String.index_opt rest '(' with
  | None -> fail lineno "fact needs the form P(c1, ..., ck)"
  | Some open_paren ->
    let pred = trim (String.sub rest 0 open_paren) in
    check_name lineno "predicate" pred;
    if
      String.length rest = 0
      || rest.[String.length rest - 1] <> ')'
    then fail lineno "fact misses the closing ')'";
    let inside =
      String.sub rest (open_paren + 1) (String.length rest - open_paren - 2)
    in
    let args =
      if String.for_all is_space inside then []
      else
        String.split_on_char ',' inside
        |> List.map trim
    in
    List.iter (check_name lineno "constant") args;
    { Cw_database.pred; args }

type accumulator = {
  mutable constants : string list;
  mutable predicates : (string * int) list;
  mutable facts : Cw_database.fact list;
  mutable distinct : (string * string) list;
  mutable fully_specified : bool;
}

let parse_line acc lineno line =
  let line = trim (strip_comment line) in
  if String.equal line "" then ()
  else
    match split_words line with
    | [ "fully_specified" ] -> acc.fully_specified <- true
    | "predicate" :: rest ->
      List.iter
        (fun decl ->
          match String.split_on_char '/' decl with
          | [ name; arity ] -> (
            check_name lineno "predicate" name;
            match int_of_string_opt arity with
            | Some k when k >= 0 ->
              acc.predicates <- (name, k) :: acc.predicates
            | Some _ | None -> fail lineno "invalid arity %S" arity)
          | _ -> fail lineno "predicate declarations look like NAME/ARITY")
        rest
    | "constant" :: names ->
      List.iter (check_name lineno "constant") names;
      acc.constants <- List.rev_append names acc.constants
    | "distinct" :: ([ _; _ ] as pair) -> (
      match pair with
      | [ c; d ] ->
        check_name lineno "constant" c;
        check_name lineno "constant" d;
        acc.constants <- d :: c :: acc.constants;
        acc.distinct <- (c, d) :: acc.distinct
      | _ -> assert false)
    | "distinct" :: _ -> fail lineno "distinct takes exactly two constants"
    | "fact" :: _ ->
      let rest = String.sub line 4 (String.length line - 4) in
      let fact = parse_fact lineno rest in
      acc.constants <- List.rev_append fact.args acc.constants;
      acc.facts <- fact :: acc.facts
    | word :: _ -> fail lineno "unknown directive %S" word
    | [] -> ()

let parse text =
  let acc =
    {
      constants = [];
      predicates = [];
      facts = [];
      distinct = [];
      fully_specified = false;
    }
  in
  List.iteri
    (fun i line -> parse_line acc (i + 1) line)
    (String.split_on_char '\n' text);
  let vocabulary =
    Vocabulary.make
      ~constants:(List.rev acc.constants)
      ~predicates:(List.rev acc.predicates)
  in
  let db =
    Cw_database.make ~vocabulary ~facts:(List.rev acc.facts)
      ~distinct:(List.rev acc.distinct)
  in
  if acc.fully_specified then Cw_database.fully_specify db else db

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let print db =
  let buffer = Buffer.create 256 in
  let vocabulary = Cw_database.vocabulary db in
  List.iter
    (fun (p, k) -> Buffer.add_string buffer (Printf.sprintf "predicate %s/%d\n" p k))
    (Vocabulary.predicates vocabulary);
  (match Cw_database.constants db with
  | [] -> ()
  | constants ->
    Buffer.add_string buffer
      (Printf.sprintf "constant %s\n" (String.concat " " constants)));
  List.iter
    (fun { Cw_database.pred; args } ->
      Buffer.add_string buffer
        (Printf.sprintf "fact %s(%s)\n" pred (String.concat ", " args)))
    (Cw_database.facts db);
  List.iter
    (fun (c, d) -> Buffer.add_string buffer (Printf.sprintf "distinct %s %s\n" c d))
    (Cw_database.distinct_pairs db);
  Buffer.contents buffer

let save path db =
  let oc = open_out path in
  output_string oc (print db);
  close_out oc
