(** A plain-text format for CW logical databases ([.ldb] files).

    Line-oriented; [#] starts a comment; blank lines ignored.

    {v
    # a database with one unknown identity
    predicate TEACHES/2
    constant socrates plato
    fact TEACHES(socrates, plato)
    distinct socrates plato
    fully_specified
    v}

    - [predicate NAME/ARITY] declares a predicate;
    - [constant NAME...] declares constants (constants appearing in
      facts or [distinct] lines are declared implicitly);
    - [fact P(c1, ..., ck)] adds an atomic fact axiom;
    - [distinct c d] adds the uniqueness axiom [¬(c = d)];
    - [fully_specified] (anywhere) closes the database with all
      uniqueness axioms after reading every line. *)

exception Syntax_error of int * string
(** [(line_number, message)], 1-based. *)

(** [parse text] reads a database from a string.
    @raise Syntax_error on malformed lines, and [Invalid_argument] on
    semantic violations (arity clash etc., from
    {!Vardi_cwdb.Cw_database.make}). *)
val parse : string -> Vardi_cwdb.Cw_database.t

(** [load path] reads a database from a file.
    @raise Sys_error when unreadable; otherwise as {!parse}. *)
val load : string -> Vardi_cwdb.Cw_database.t

(** [print db] renders a database; [parse (print db)] is equal to
    [db]. *)
val print : Vardi_cwdb.Cw_database.t -> string

(** [save path db]. *)
val save : string -> Vardi_cwdb.Cw_database.t -> unit
