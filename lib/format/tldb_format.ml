module Ty_vocabulary = Vardi_typed.Ty_vocabulary
module Ty_database = Vardi_typed.Ty_database

exception Syntax_error of int * string

let fail line fmt = Format.kasprintf (fun s -> raise (Syntax_error (line, s))) fmt

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> not (String.equal w ""))

let valid_name name =
  String.length name > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '\'')
       name

let check_name lineno what name =
  if not (valid_name name) then fail lineno "invalid %s name %S" what name

(* [P(t1, t2)] — used for both predicate declarations (types inside)
   and facts (constants inside). *)
let parse_application lineno what rest =
  let rest = String.trim rest in
  match String.index_opt rest '(' with
  | None -> fail lineno "%s needs the form NAME(...)" what
  | Some open_paren ->
    let name = String.trim (String.sub rest 0 open_paren) in
    check_name lineno what name;
    if String.length rest = 0 || rest.[String.length rest - 1] <> ')' then
      fail lineno "%s misses the closing ')'" what;
    let inside =
      String.sub rest (open_paren + 1) (String.length rest - open_paren - 2)
    in
    let args =
      if String.trim inside = "" then []
      else String.split_on_char ',' inside |> List.map String.trim
    in
    List.iter (check_name lineno "argument") args;
    (name, args)

type accumulator = {
  mutable types : string list;
  mutable constants : (string * string) list;
  mutable predicates : (string * string list) list;
  mutable facts : (string * string list) list;
  mutable distinct : (string * string) list;
  mutable fully_specified : bool;
}

(* [constant a b c : tau] *)
let parse_constants acc lineno words =
  let rec split_at_colon before = function
    | [] -> fail lineno "constant declarations need ': TYPE'"
    | ":" :: [ tau ] -> (List.rev before, tau)
    | ":" :: _ -> fail lineno "exactly one type after ':'"
    | w :: rest -> split_at_colon (w :: before) rest
  in
  let names, tau = split_at_colon [] words in
  if names = [] then fail lineno "constant declaration names nothing";
  List.iter (check_name lineno "constant") names;
  check_name lineno "type" tau;
  acc.constants <- acc.constants @ List.map (fun c -> (c, tau)) names

let parse_line acc lineno line =
  let line = String.trim (strip_comment line) in
  if String.equal line "" then ()
  else
    match split_words line with
    | [ "fully_specified" ] -> acc.fully_specified <- true
    | "type" :: names ->
      List.iter (check_name lineno "type") names;
      acc.types <- acc.types @ names
    | "constant" :: words -> parse_constants acc lineno words
    | "predicate" :: _ ->
      let rest = String.sub line 9 (String.length line - 9) in
      let name, signature = parse_application lineno "predicate" rest in
      acc.predicates <- acc.predicates @ [ (name, signature) ]
    | "fact" :: _ ->
      let rest = String.sub line 4 (String.length line - 4) in
      let name, args = parse_application lineno "fact" rest in
      acc.facts <- acc.facts @ [ (name, args) ]
    | [ "distinct"; c; d ] ->
      check_name lineno "constant" c;
      check_name lineno "constant" d;
      acc.distinct <- acc.distinct @ [ (c, d) ]
    | "distinct" :: _ -> fail lineno "distinct takes exactly two constants"
    | word :: _ -> fail lineno "unknown directive %S" word
    | [] -> ()

let parse text =
  let acc =
    {
      types = [];
      constants = [];
      predicates = [];
      facts = [];
      distinct = [];
      fully_specified = false;
    }
  in
  List.iteri (fun i line -> parse_line acc (i + 1) line) (String.split_on_char '\n' text);
  let vocabulary =
    Ty_vocabulary.make ~types:acc.types ~constants:acc.constants
      ~predicates:acc.predicates
  in
  let db =
    Ty_database.make ~vocabulary ~facts:acc.facts ~distinct:acc.distinct
  in
  if acc.fully_specified then Ty_database.fully_specify db else db

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let print db =
  let buffer = Buffer.create 256 in
  let vocabulary = Ty_database.vocabulary db in
  Buffer.add_string buffer
    (Printf.sprintf "type %s\n" (String.concat " " (Ty_vocabulary.types vocabulary)));
  List.iter
    (fun tau ->
      match Ty_vocabulary.constants_of_type vocabulary tau with
      | [] -> ()
      | constants ->
        Buffer.add_string buffer
          (Printf.sprintf "constant %s : %s\n" (String.concat " " constants) tau))
    (Ty_vocabulary.types vocabulary);
  List.iter
    (fun (p, signature) ->
      Buffer.add_string buffer
        (Printf.sprintf "predicate %s(%s)\n" p (String.concat ", " signature)))
    (Ty_vocabulary.predicates vocabulary);
  let cw = Ty_database.to_cw db in
  List.iter
    (fun { Vardi_cwdb.Cw_database.pred; args } ->
      (* The elaboration adds ty$ facts; keep only user facts. *)
      if not (String.length pred >= 3 && String.equal (String.sub pred 0 3) "ty$")
      then
        Buffer.add_string buffer
          (Printf.sprintf "fact %s(%s)\n" pred (String.concat ", " args)))
    (Vardi_cwdb.Cw_database.facts cw);
  (* Same-type uniqueness axioms only (cross-type ones are implied). *)
  List.iter
    (fun (c, d) ->
      let tau c = Ty_vocabulary.constant_type vocabulary c in
      if String.equal (tau c) (tau d) then
        Buffer.add_string buffer (Printf.sprintf "distinct %s %s\n" c d))
    (Vardi_cwdb.Cw_database.distinct_pairs cw);
  Buffer.contents buffer

let save path db =
  let oc = open_out path in
  output_string oc (print db);
  close_out oc
