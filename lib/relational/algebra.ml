type selection =
  | Cols_eq of int * int
  | Cols_neq of int * int
  | Col_eq_const of int * string
  | Col_neq_const of int * string
  | Consts_eq of string * string
  | Consts_neq of string * string

type t =
  | Base of string
  | Virtual of string * int
  | Domain
  | Empty of int
  | Select of selection * t
  | Project of int list * t
  | Product of t * t
  | Join of (int * int) list * t * t
  | Semijoin of (int * int) list * t * t
  | Union of t * t
  | Inter of t * t
  | Diff of t * t

let error fmt = Format.kasprintf (fun s -> raise (Eval.Eval_error s)) fmt

let check_join_pairs ~ka ~kb pairs =
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= ka then
        error "Algebra: join column $%d out of range (left arity %d)" i ka;
      if j < 0 || j >= kb then
        error "Algebra: join column $%d out of range (right arity %d)" j kb)
    pairs

let rec arity db = function
  | Base p -> (
    match Database.relation_opt db p with
    | Some r -> Relation.arity r
    | None -> error "Algebra: unknown base relation %s" p)
  | Virtual (_, k) -> k
  | Domain -> 1
  | Empty k -> k
  | Select (sel, e) ->
    let k = arity db e in
    let check i =
      if i < 0 || i >= k then
        error "Algebra: selection column %d out of range (arity %d)" i k
    in
    (match sel with
    | Cols_eq (i, j) | Cols_neq (i, j) ->
      check i;
      check j
    | Col_eq_const (i, _) | Col_neq_const (i, _) -> check i
    | Consts_eq _ | Consts_neq _ -> ());
    k
  | Project (cols, e) ->
    let k = arity db e in
    List.iter
      (fun i ->
        if i < 0 || i >= k then
          error "Algebra: projection column %d out of range (arity %d)" i k)
      cols;
    List.length cols
  | Product (a, b) -> arity db a + arity db b
  | Join (pairs, a, b) ->
    let ka = arity db a and kb = arity db b in
    check_join_pairs ~ka ~kb pairs;
    ka + kb
  | Semijoin (pairs, a, b) ->
    let ka = arity db a and kb = arity db b in
    check_join_pairs ~ka ~kb pairs;
    ka
  | Union (a, b) | Inter (a, b) | Diff (a, b) ->
    let ka = arity db a and kb = arity db b in
    if ka <> kb then
      error "Algebra: set operation on arities %d and %d" ka kb;
    ka

let constant_of db c =
  try Database.constant db c
  with Not_found -> error "Algebra: unknown constant %s" c

let run ?(virtuals = Eval.no_virtuals) db expr =
  (* Validate the whole tree (arities, column ranges) up front so run
     failures always surface as Eval_error. *)
  let _ = arity db expr in
  let rec go expr =
    match expr with
    | Base p -> (
      match Database.relation_opt db p with
      | Some r -> r
      | None -> error "Algebra: unknown base relation %s" p)
    | Virtual (name, k) -> (
      match virtuals name with
      | None -> error "Algebra: no implementation for virtual relation %s" name
      | Some check ->
        Relation.filter check (Relation.full ~domain:(Database.domain db) k))
    | Domain ->
      Relation.of_tuples 1 (List.map (fun e -> [ e ]) (Database.domain db))
    | Empty k -> Relation.empty k
    | Select (sel, e) ->
      let r = go e in
      let keep row =
        let arr = Array.of_list row in
        match sel with
        | Cols_eq (i, j) -> String.equal arr.(i) arr.(j)
        | Cols_neq (i, j) -> not (String.equal arr.(i) arr.(j))
        | Col_eq_const (i, c) -> String.equal arr.(i) (constant_of db c)
        | Col_neq_const (i, c) -> not (String.equal arr.(i) (constant_of db c))
        | Consts_eq (c, d) -> String.equal (constant_of db c) (constant_of db d)
        | Consts_neq (c, d) ->
          not (String.equal (constant_of db c) (constant_of db d))
      in
      Relation.filter keep r
    | Project (cols, e) ->
      let r = go e in
      Relation.fold
        (fun row acc ->
          let arr = Array.of_list row in
          Relation.add (List.map (fun i -> arr.(i)) cols) acc)
        r
        (Relation.empty (List.length cols))
    | Product (a, b) -> Relation.product (go a) (go b)
    | Join (pairs, a, b) ->
      let ra = go a and rb = go b in
      let lcols = List.map fst pairs and rcols = List.map snd pairs in
      let key arr cols = List.map (fun i -> arr.(i)) cols in
      let table : (string list, string list list) Hashtbl.t =
        Hashtbl.create 64
      in
      Relation.fold
        (fun row () ->
          let k = key (Array.of_list row) rcols in
          let prev = try Hashtbl.find table k with Not_found -> [] in
          Hashtbl.replace table k (row :: prev))
        rb ();
      let out = Relation.arity ra + Relation.arity rb in
      Relation.fold
        (fun row acc ->
          let k = key (Array.of_list row) lcols in
          match Hashtbl.find_opt table k with
          | None -> acc
          | Some matches ->
            List.fold_left
              (fun acc rrow -> Relation.add (row @ rrow) acc)
              acc matches)
        ra (Relation.empty out)
    | Semijoin (pairs, a, b) ->
      let ra = go a and rb = go b in
      let lcols = List.map fst pairs and rcols = List.map snd pairs in
      let key arr cols = List.map (fun i -> arr.(i)) cols in
      let keys : (string list, unit) Hashtbl.t = Hashtbl.create 64 in
      Relation.fold
        (fun row () -> Hashtbl.replace keys (key (Array.of_list row) rcols) ())
        rb ();
      Relation.filter
        (fun row -> Hashtbl.mem keys (key (Array.of_list row) lcols))
        ra
    | Union (a, b) -> Relation.union (go a) (go b)
    | Inter (a, b) -> Relation.inter (go a) (go b)
    | Diff (a, b) -> Relation.diff (go a) (go b)
  in
  go expr

let rec size = function
  | Base _ | Virtual _ | Domain | Empty _ -> 1
  | Select (_, e) | Project (_, e) -> 1 + size e
  | Product (a, b)
  | Join (_, a, b)
  | Semijoin (_, a, b)
  | Union (a, b)
  | Inter (a, b)
  | Diff (a, b) -> 1 + size a + size b

let pp_selection ppf = function
  | Cols_eq (i, j) -> Fmt.pf ppf "$%d = $%d" i j
  | Cols_neq (i, j) -> Fmt.pf ppf "$%d != $%d" i j
  | Col_eq_const (i, c) -> Fmt.pf ppf "$%d = %s" i c
  | Col_neq_const (i, c) -> Fmt.pf ppf "$%d != %s" i c
  | Consts_eq (c, d) -> Fmt.pf ppf "%s = %s" c d
  | Consts_neq (c, d) -> Fmt.pf ppf "%s != %s" c d

let pp_pairs =
  Fmt.(list ~sep:comma (fun ppf (i, j) -> pf ppf "$%d=$%d" i j))

let rec pp ppf = function
  | Base p -> Fmt.string ppf p
  | Virtual (name, k) -> Fmt.pf ppf "virtual(%s/%d)" name k
  | Domain -> Fmt.string ppf "DOM"
  | Empty k -> Fmt.pf ppf "empty/%d" k
  | Select (sel, e) -> Fmt.pf ppf "select[%a](%a)" pp_selection sel pp e
  | Project (cols, e) ->
    Fmt.pf ppf "project[%a](%a)" Fmt.(list ~sep:comma int) cols pp e
  | Product (a, b) -> Fmt.pf ppf "(%a x %a)" pp a pp b
  | Join (pairs, a, b) ->
    Fmt.pf ppf "join[%a](%a, %a)" pp_pairs pairs pp a pp b
  | Semijoin (pairs, a, b) ->
    Fmt.pf ppf "semijoin[%a](%a, %a)" pp_pairs pairs pp a pp b
  | Union (a, b) -> Fmt.pf ppf "(%a U %a)" pp a pp b
  | Inter (a, b) -> Fmt.pf ppf "(%a n %a)" pp a pp b
  | Diff (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
