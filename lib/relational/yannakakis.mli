(** Yannakakis's algorithm: semijoin-reduced evaluation of acyclic
    conjunctive queries.

    The naive compilation of a conjunction pads every atom to the full
    variable width with domain products; its intermediates grow like
    [D^#vars]. When the query is an acyclic CQ — existential
    quantifiers and conjunctions over positive predicate atoms whose
    join hypergraph passes {!Hypergraph} GYO reduction — this module
    evaluates it over the join tree instead: a bottom-up and a top-down
    semijoin pass make every atom relation globally consistent (the
    full reducer), then bottom-up joins assemble the answer, projecting
    each subtree result down to head variables plus the variables
    shared with its parent. Cost is polynomial in input + output.

    Detection is deliberately conservative: anything outside the
    supported fragment (equality atoms, negation, disjunction,
    universal or second-order quantification, shadowed variables,
    unknown predicates or constants, arity mismatches, head variables
    occurring in no atom, cyclic hypergraphs) yields [None], and the
    caller falls back to the {!Optimizer}/{!Algebra} or {!Eval} path.
    The soundness invariant — identical answers on both paths — is
    enforced by the [acq-parity] fuzz oracle and the test suite. *)

type atom = { pred : string; args : Vardi_logic.Term.t list }

type plan = {
  head : string list;
  answer_arity : int;
  guards : atom list;  (** variable-free atoms, evaluated as gates *)
  atoms : atom array;  (** atoms with variables; edge ids index this *)
  tree : Hypergraph.tree option;  (** [None] when [atoms] is empty *)
}

(** [plan ?virtuals db q] is [Some p] iff [q] is an acyclic CQ fully
    resolvable against [db] (and [virtuals], for computed predicates
    like the approximation's [alpha$P]). *)
val plan :
  ?virtuals:Eval.virtuals -> Database.t -> Vardi_logic.Query.t -> plan option

(** [run ?virtuals db p] evaluates a plan produced against the same
    database schema. *)
val run : ?virtuals:Eval.virtuals -> Database.t -> plan -> Relation.t

(** [answer ?virtuals db q] is [run] of [plan] when the query is
    eligible; [None] means "use the fallback evaluator". On [Some r],
    [r] equals [Eval.answer ?virtuals db q]. *)
val answer :
  ?virtuals:Eval.virtuals ->
  Database.t ->
  Vardi_logic.Query.t ->
  Relation.t option

(** Renders the join tree (atom per node, with covered variables) and
    the semijoin schedule of both reducer passes. *)
val pp_plan : plan Fmt.t

val pp_atom : atom Fmt.t

(**/**)

(** Schema-carrying relations and the reducer internals, exposed for
    the property tests (semijoin-pass idempotence, join/semijoin
    list-model parity). *)
module Internal : sig
  type nrel = { vars : string list; rel : Relation.t }

  val semijoin : nrel -> nrel -> nrel
  val join : nrel -> nrel -> nrel
  val project : string list -> nrel -> nrel
  val reducer_passes : nrel array -> Hypergraph.tree -> unit
end
