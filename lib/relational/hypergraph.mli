(** Join hypergraphs and GYO acyclicity.

    A conjunctive query's hypergraph has one hyperedge per atom — the
    atom's set of variables. The query is {e acyclic} exactly when GYO
    ear reduction empties the hypergraph, and the reduction order
    yields a {e join tree}: a tree over the atoms in which, for every
    variable, the atoms containing it form a connected subtree (the
    running-intersection property). {!Yannakakis} evaluates acyclic
    queries over such a tree in time polynomial in input + output. *)

type tree = {
  edge : int;  (** index into the input edge list *)
  vars : string list;  (** the edge's variables, deduplicated *)
  children : tree list;
}

(** [join_tree edges] is [Some t] with [t] a join tree covering every
    edge exactly once iff the hypergraph is acyclic, [None] otherwise.
    Edges that share no variable with the rest (disconnected
    components) are attached below the root; the join across them is a
    cartesian product, which keeps the tree semantics exact.
    @raise Invalid_argument on an empty edge list. *)
val join_tree : string list list -> tree option

val is_acyclic : string list list -> bool

(** Pre-order fold over a tree. *)
val fold : ('a -> tree -> 'a) -> 'a -> tree -> 'a

val tree_size : tree -> int
