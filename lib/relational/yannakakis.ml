module F = Vardi_logic.Formula
module T = Vardi_logic.Term
module Q = Vardi_logic.Query

type atom = { pred : string; args : T.t list }

let atom_vars a = T.vars_of a.args

let pp_atom ppf a =
  Fmt.pf ppf "@[<h>%s(%a)@]" a.pred Fmt.(list ~sep:(any ", ") T.pp) a.args

(* ------------------------------------------------------------------ *)
(* Named relations: a relation together with the variable owning each
   column. All Yannakakis-side operators are schema-driven joins and
   semijoins over these. *)

module Internal = struct
  type nrel = { vars : string list; rel : Relation.t }

  let key_fn vars wanted =
    let pos = List.mapi (fun i v -> (v, i)) vars in
    let idx = List.map (fun v -> List.assoc v pos) wanted in
    fun row ->
      let arr = Array.of_list row in
      List.map (fun i -> arr.(i)) idx

  (* keep the rows of [a] that agree with some row of [b] on the shared
     variables; [a]'s schema is unchanged *)
  let semijoin a b =
    let shared = List.filter (fun v -> List.mem v b.vars) a.vars in
    if shared = [] then
      if Relation.is_empty b.rel then
        { a with rel = Relation.empty (Relation.arity a.rel) }
      else a
    else begin
      let bkey = key_fn b.vars shared and akey = key_fn a.vars shared in
      let keys : (string list, unit) Hashtbl.t = Hashtbl.create 64 in
      Relation.iter (fun row -> Hashtbl.replace keys (bkey row) ()) b.rel;
      { a with rel = Relation.filter (fun row -> Hashtbl.mem keys (akey row)) a.rel }
    end

  (* natural join; output schema is [a.vars] then [b]'s remaining vars *)
  let join a b =
    let shared = List.filter (fun v -> List.mem v a.vars) b.vars in
    let b_rest = List.filter (fun v -> not (List.mem v a.vars)) b.vars in
    let out_vars = a.vars @ b_rest in
    let bkey = key_fn b.vars shared and akey = key_fn a.vars shared in
    let brest = key_fn b.vars b_rest in
    let table : (string list, string list list) Hashtbl.t =
      Hashtbl.create 64
    in
    Relation.iter
      (fun row ->
        let k = bkey row in
        let prev = try Hashtbl.find table k with Not_found -> [] in
        Hashtbl.replace table k (brest row :: prev))
      b.rel;
    let rel =
      Relation.fold
        (fun row acc ->
          match Hashtbl.find_opt table (akey row) with
          | None -> acc
          | Some rests ->
            List.fold_left
              (fun acc rest -> Relation.add (row @ rest) acc)
              acc rests)
        a.rel
        (Relation.empty (List.length out_vars))
    in
    { vars = out_vars; rel }

  (* project onto [vs] (must all be present), in [vs] order *)
  let project vs a =
    let keyf = key_fn a.vars vs in
    {
      vars = vs;
      rel =
        Relation.fold
          (fun row acc -> Relation.add (keyf row) acc)
          a.rel
          (Relation.empty (List.length vs));
    }

  (* The full reducer: one bottom-up then one top-down semijoin pass
     over the join tree makes every node globally consistent. Mutates
     [rels] (indexed by edge id) in place. *)
  let rec reduce_up rels (node : Hypergraph.tree) =
    List.iter (reduce_up rels) node.children;
    List.iter
      (fun (c : Hypergraph.tree) ->
        rels.(node.edge) <- semijoin rels.(node.edge) rels.(c.edge))
      node.children

  let rec reduce_down rels (node : Hypergraph.tree) =
    List.iter
      (fun (c : Hypergraph.tree) ->
        rels.(c.edge) <- semijoin rels.(c.edge) rels.(node.edge);
        reduce_down rels c)
      node.children

  let reducer_passes rels tree =
    reduce_up rels tree;
    reduce_down rels tree

  let union_vars a b =
    a @ List.filter (fun v -> not (List.mem v a)) b

  (* Bottom-up joins with early projection: each subtree result keeps
     only head variables and variables shared with its parent (the
     running-intersection property makes dropping the rest exact). *)
  let rec assemble rels head ~keep (node : Hypergraph.tree) =
    let acc =
      List.fold_left
        (fun acc c ->
          join acc (assemble rels head ~keep:(union_vars head node.vars) c))
        rels.(node.edge) node.children
    in
    project (List.filter (fun v -> List.mem v acc.vars) keep) acc
end

open Internal

(* ------------------------------------------------------------------ *)
(* Detection: is the query an acyclic conjunctive query this module can
   evaluate? The body must be existential quantifiers and conjunctions
   over positive predicate atoms (no Eq, no negation, no disjunction,
   no second-order structure), every atom must resolve against the
   database schema or the virtual hooks with matching arity and known
   constants, every head variable must occur in some atom, and the join
   hypergraph must pass GYO reduction. Everything else returns [None]
   and takes the fallback path — which also keeps error behavior
   (unknown predicates, arity mismatches) on the naive evaluator. *)

type plan = {
  head : string list;
  answer_arity : int;
  guards : atom list;  (** variable-free atoms, evaluated as gates *)
  atoms : atom array;  (** atoms with variables; edge ids index this *)
  tree : Hypergraph.tree option;  (** [None] when [atoms] is empty *)
}

let rec conjuncts ~scope f acc =
  match f with
  | F.True -> Some acc
  | F.And (a, b) -> (
    match conjuncts ~scope a acc with
    | Some acc -> conjuncts ~scope b acc
    | None -> None)
  | F.Exists (x, f') ->
    (* reject shadowing so variable names identify columns globally *)
    if List.mem x scope then None else conjuncts ~scope:(x :: scope) f' acc
  | F.Atom (p, args) -> Some ({ pred = p; args } :: acc)
  | F.False | F.Eq _ | F.Not _ | F.Or _ | F.Implies _ | F.Iff _ | F.Forall _
  | F.Exists2 _ | F.Forall2 _ ->
    None

let atom_supported ~virtuals db a =
  let schema_ok =
    match Database.relation_opt db a.pred with
    | Some r -> Relation.arity r = List.length a.args
    | None -> virtuals a.pred <> None
  in
  schema_ok
  && List.for_all
       (fun c ->
         match Database.constant db c with
         | (_ : Tuple.element) -> true
         | exception Not_found -> false)
       (T.consts_of a.args)

let plan ?(virtuals = Eval.no_virtuals) db q =
  match conjuncts ~scope:(Q.head q) (Q.body q) [] with
  | None -> None
  | Some atoms_rev ->
    let atoms = List.rev atoms_rev in
    if not (List.for_all (atom_supported ~virtuals db) atoms) then None
    else
      let guards, var_atoms =
        List.partition (fun a -> atom_vars a = []) atoms
      in
      let covered = List.concat_map atom_vars var_atoms in
      if not (List.for_all (fun v -> List.mem v covered) (Q.head q)) then
        None
      else if var_atoms = [] then
        Some
          {
            head = Q.head q;
            answer_arity = Q.arity q;
            guards;
            atoms = [||];
            tree = None;
          }
      else (
        match Hypergraph.join_tree (List.map atom_vars var_atoms) with
        | None -> None (* cyclic: fall back *)
        | Some tree ->
          Some
            {
              head = Q.head q;
              answer_arity = Q.arity q;
              guards;
              atoms = Array.of_list var_atoms;
              tree = Some tree;
            })

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let element_of db = function
  | T.Const c -> Database.constant db c
  | T.Var v ->
    raise
      (Eval.Eval_error
         (Printf.sprintf "Yannakakis: unexpected free variable %s" v))

(* Materialize one atom as a named relation over its distinct
   variables: constant positions are selected on, repeated variables
   equated, and the columns projected down to first occurrences. *)
let atom_nrel ~virtuals db a =
  let base =
    match Database.relation_opt db a.pred with
    | Some r -> r
    | None -> (
      match virtuals a.pred with
      | Some check ->
        Relation.filter check
          (Relation.full ~domain:(Database.domain db)
             (List.length a.args))
      | None ->
        raise
          (Eval.Eval_error
             (Printf.sprintf "Yannakakis: no implementation for %s" a.pred)))
  in
  let argv = Array.of_list a.args in
  let vars = atom_vars a in
  let first_pos =
    List.map
      (fun v ->
        let rec find i =
          if argv.(i) = T.Var v then i else find (i + 1)
        in
        find 0)
      vars
  in
  let rel =
    Relation.fold
      (fun row acc ->
        let arr = Array.of_list row in
        let ok =
          Array.for_all Fun.id
            (Array.mapi
               (fun i t ->
                 match t with
                 | T.Const c -> arr.(i) = Database.constant db c
                 | T.Var v ->
                   let rec first j =
                     if argv.(j) = T.Var v then j else first (j + 1)
                   in
                   arr.(i) = arr.(first 0))
               argv)
        in
        if ok then
          Relation.add (List.map (fun i -> arr.(i)) first_pos) acc
        else acc)
      base
      (Relation.empty (List.length vars))
  in
  { vars; rel }

let guard_holds ~virtuals db a =
  let vals = List.map (element_of db) a.args in
  match Database.relation_opt db a.pred with
  | Some r -> Relation.mem vals r
  | None -> (
    match virtuals a.pred with
    | Some check -> check vals
    | None ->
      raise
        (Eval.Eval_error
           (Printf.sprintf "Yannakakis: no implementation for %s" a.pred)))

let run ?(virtuals = Eval.no_virtuals) db p =
  if not (List.for_all (guard_holds ~virtuals db) p.guards) then
    Relation.empty p.answer_arity
  else
    match p.tree with
    | None ->
      (* no variable atoms: the (boolean) query reduced to its guards *)
      Relation.of_tuples p.answer_arity [ [] ]
    | Some tree ->
      let rels = Array.map (atom_nrel ~virtuals db) p.atoms in
      reducer_passes rels tree;
      let result = assemble rels p.head ~keep:p.head tree in
      (* [assemble] keeps head variables in [keep] order, so the
         schema is exactly the head *)
      assert (result.vars = p.head);
      result.rel

let answer ?(virtuals = Eval.no_virtuals) db q =
  Option.map (run ~virtuals db) (plan ~virtuals db q)

(* ------------------------------------------------------------------ *)
(* Explain *)

let pp_plan ppf p =
  match p.tree with
  | None ->
    Fmt.pf ppf "acyclic CQ, no variable atoms; guards: %a"
      Fmt.(list ~sep:comma pp_atom)
      p.guards
  | Some tree ->
    let atom e = p.atoms.(e) in
    let rec pp_tree indent ppf (n : Hypergraph.tree) =
      Fmt.pf ppf "%s%a  covers {%s}" indent pp_atom (atom n.edge)
        (String.concat " " n.vars);
      List.iter
        (fun c -> Fmt.pf ppf "@,%a" (pp_tree (indent ^ "  ")) c)
        n.children
    in
    let rec up_order (n : Hypergraph.tree) =
      List.concat_map up_order n.children
      @ List.map (fun (c : Hypergraph.tree) -> (n.edge, c.edge)) n.children
    in
    let rec down_order (n : Hypergraph.tree) =
      List.concat_map
        (fun (c : Hypergraph.tree) -> (c.edge, n.edge) :: down_order c)
        n.children
    in
    let pp_pass ppf (a, b) =
      Fmt.pf ppf "%a <| %a" pp_atom (atom a) pp_atom (atom b)
    in
    let pp_passes ppf = function
      | [] -> Fmt.string ppf "(none)"
      | ps -> Fmt.(list ~sep:(any "; ") pp_pass) ppf ps
    in
    Fmt.pf ppf
      "@[<v>join tree (%d atoms):@,%a@,semijoin order (up): %a@,semijoin order (down): %a@]"
      (Array.length p.atoms) (pp_tree "  ") tree pp_passes (up_order tree)
      pp_passes (down_order tree);
    if p.guards <> [] then
      Fmt.pf ppf "@,ground guards: %a" Fmt.(list ~sep:comma pp_atom) p.guards
