(* GYO (Graham–Yu–Özsoyoğlu) ear reduction over join hypergraphs.

   A hyperedge is the variable set of one conjunct; the hypergraph is
   acyclic exactly when repeatedly removing "ears" empties it. An edge
   [e] is an ear when every one of its vertices either occurs in no
   other live edge (isolated) or is covered by one single witness edge
   [w]; removing [e] and recording [w] as its parent yields a join tree
   with the running-intersection property. *)

type tree = { edge : int; vars : string list; children : tree list }

let dedup vars =
  List.rev
    (List.fold_left
       (fun acc v -> if List.mem v acc then acc else v :: acc)
       [] vars)

let rec fold f acc t = List.fold_left (fold f) (f acc t) t.children

let tree_size t = fold (fun n _ -> n + 1) 0 t

let join_tree edges =
  let n = List.length edges in
  if n = 0 then invalid_arg "Hypergraph.join_tree: no edges";
  let vars = Array.of_list (List.map dedup edges) in
  let alive = Array.make n true in
  (* How many live edges contain each vertex. *)
  let count : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let bump v d =
    let c = try Hashtbl.find count v with Not_found -> 0 in
    Hashtbl.replace count v (c + d)
  in
  Array.iter (List.iter (fun v -> bump v 1)) vars;
  (* parent.(e) = Some w: e was removed as an ear witnessed by w;
     Some (-1): all of e's vertices were isolated (disconnected ear). *)
  let parent = Array.make n None in
  let remaining = ref n in
  let remove e w =
    alive.(e) <- false;
    List.iter (fun v -> bump v (-1)) vars.(e);
    parent.(e) <- Some w;
    decr remaining
  in
  let find_ear () =
    let rec try_edge e =
      if e >= n then None
      else if not alive.(e) then try_edge (e + 1)
      else
        let shared =
          List.filter (fun v -> Hashtbl.find count v >= 2) vars.(e)
        in
        if shared = [] then Some (e, -1)
        else
          let witness = ref (-1) in
          for w = 0 to n - 1 do
            if
              !witness < 0 && w <> e && alive.(w)
              && List.for_all (fun v -> List.mem v vars.(w)) shared
            then witness := w
          done;
          if !witness >= 0 then Some (e, !witness) else try_edge (e + 1)
    in
    try_edge 0
  in
  let rec reduce () =
    if !remaining > 1 then
      match find_ear () with
      | Some (e, w) ->
        remove e w;
        reduce ()
      | None -> ()
  in
  reduce ();
  if !remaining > 1 then None
  else begin
    (* The last live edge roots the tree; disconnected ears hang off
       the root (they share no variables with it, by construction). *)
    let root = ref 0 in
    for e = 0 to n - 1 do
      if alive.(e) then root := e
    done;
    let children = Array.make n [] in
    Array.iteri
      (fun e p ->
        match p with
        | None -> ()
        | Some w ->
          let w = if w < 0 then !root else w in
          children.(w) <- e :: children.(w))
      parent;
    let rec build e =
      { edge = e; vars = vars.(e); children = List.map build children.(e) }
    in
    Some (build !root)
  end

let is_acyclic edges = Option.is_some (join_tree edges)
