open Algebra

(* Columns inspected by a selection, or [] for row-independent ones. *)
let selection_columns = function
  | Cols_eq (i, j) | Cols_neq (i, j) -> [ i; j ]
  | Col_eq_const (i, _) | Col_neq_const (i, _) -> [ i ]
  | Consts_eq _ | Consts_neq _ -> []

let shift_selection offset = function
  | Cols_eq (i, j) -> Cols_eq (i - offset, j - offset)
  | Cols_neq (i, j) -> Cols_neq (i - offset, j - offset)
  | Col_eq_const (i, c) -> Col_eq_const (i - offset, c)
  | Col_neq_const (i, c) -> Col_neq_const (i - offset, c)
  | (Consts_eq _ | Consts_neq _) as s -> s

(* Remap a selection's columns through a projection list: output column
   [i] of [Project (cols, e)] is input column [List.nth cols i]. *)
let remap_selection cols = function
  | Cols_eq (i, j) -> Cols_eq (List.nth cols i, List.nth cols j)
  | Cols_neq (i, j) -> Cols_neq (List.nth cols i, List.nth cols j)
  | Col_eq_const (i, c) -> Col_eq_const (List.nth cols i, c)
  | Col_neq_const (i, c) -> Col_neq_const (List.nth cols i, c)
  | (Consts_eq _ | Consts_neq _) as s -> s

let is_identity_projection cols k =
  List.length cols = k && List.mapi (fun i c -> i = c) cols |> List.for_all Fun.id

(* Universal expressions denote the full relation D^k. Every expression
   evaluates to a subset of D^k (database validation keeps all stored
   and virtual tuples inside the domain), which justifies absorbing
   universals in set operations and cancelling double complements. *)
let rec is_universal = function
  | Domain -> true
  | Product (a, b) -> is_universal a && is_universal b
  | Base _ | Virtual _ | Empty _ | Select _ | Project _ | Join _ | Semijoin _
  | Union _ | Inter _ | Diff _ ->
    false

(* --- cylinder recognition, the shape {!Compile} emits for atoms ---

   A "cylinder" is an expression of the form: a core expression, padded
   with full-domain [Domain] columns via [Product], with the columns
   possibly permuted by a [Project]. Column [i] of the cylinder is
   either [Core j] (column [j] of the core) or [Pad] (free over the
   domain). [Inter] of two cylinders is exactly an equi-join of their
   cores — fusing it avoids materializing the padded operands. *)
type cyl_col = Core of int | Pad

let rec cylinder db e =
  match e with
  | Product (a, Domain) ->
    Option.map
      (fun (core, cols) -> (core, Array.append cols [| Pad |]))
      (cylinder db a)
  | Product (Domain, a) ->
    Option.map
      (fun (core, cols) -> (core, Array.append [| Pad |] cols))
      (cylinder db a)
  | Project (cols, inner) -> (
    match cylinder db inner with
    | None -> None
    | Some (core, ccols) ->
      (* A projection of a cylinder is a cylinder: dropping or
         duplicating core columns projects the core, and dropped pad
         columns are full over a nonempty domain. Only a pad column
         used more than once breaks the shape — two copies of one pad
         are correlated, not independent. *)
      let seen = Array.make (Array.length ccols) 0 in
      List.iter (fun i -> seen.(i) <- seen.(i) + 1) cols;
      let pads_ok =
        Array.for_all Fun.id
          (Array.mapi
             (fun i c ->
               match c with Pad -> seen.(i) <= 1 | Core _ -> true)
             ccols)
      in
      if not pads_ok then None
      else begin
        (* core column indices used by the output, in output order *)
        let used =
          List.filter_map
            (fun i -> match ccols.(i) with Core j -> Some j | Pad -> None)
            cols
        in
        let core_arity = Algebra.arity db core in
        let core' =
          if is_identity_projection used core_arity then core
          else Project (used, core)
        in
        let next = ref 0 in
        let out =
          Array.of_list
            (List.map
               (fun i ->
                 match ccols.(i) with
                 | Core _ ->
                   let j = !next in
                   incr next;
                   Core j
                 | Pad -> Pad)
               cols)
        in
        Some (core', out)
      end)
  | Base _ | Virtual _ | Domain | Empty _ | Select _ | Join _ | Semijoin _
  | Product _ | Union _ | Inter _ | Diff _ ->
    let k = Algebra.arity db e in
    Some (e, Array.init k (fun i -> Core i))

(* Fuse [Inter (a, b)] of two cylinders into an equi-join of their
   cores. Output column classes: Core/Core becomes a join pair,
   Core/Pad takes the core value, Pad/Pad stays a fresh Domain pad.
   Only fires when at least one side actually has pads (otherwise the
   [Inter] is already as good) and the domain is nonempty (dropped pad
   columns are only exact over a nonempty domain). *)
let fuse_inter db a b =
  if Database.domain db = [] then None
  else
    match (cylinder db a, cylinder db b) with
    | Some (core_a, ca), Some (core_b, cb)
      when Array.exists (fun c -> c = Pad) ca
           || Array.exists (fun c -> c = Pad) cb ->
      let ma = Algebra.arity db core_a and mb = Algebra.arity db core_b in
      let k = Array.length ca in
      let pairs = ref [] and padpads = ref 0 in
      let out = Array.make k 0 in
      for i = 0 to k - 1 do
        match (ca.(i), cb.(i)) with
        | Core x, Core y ->
          pairs := (x, y) :: !pairs;
          out.(i) <- x
        | Core x, Pad -> out.(i) <- x
        | Pad, Core y -> out.(i) <- ma + y
        | Pad, Pad ->
          out.(i) <- ma + mb + !padpads;
          incr padpads
      done;
      let joined = Join (List.rev !pairs, core_a, core_b) in
      let padded = ref joined in
      for _ = 1 to !padpads do
        padded := Product (!padded, Domain)
      done;
      Some (Project (Array.to_list out, !padded))
    | _ -> None

(* One top-level rewrite step; [None] when no rule applies. Children
   are already in normal form when this is called. *)
let step db expr =
  let arity e = Algebra.arity db e in
  match expr with
  (* --- trivial selections --- *)
  | Select (Cols_eq (i, j), e) when i = j -> Some e
  | Select (Cols_neq (i, j), e) when i = j -> Some (Empty (arity e))
  | Select (_, (Empty _ as e)) -> Some e
  (* --- selection pushdown --- *)
  | Select (sel, Project (cols, e)) ->
    Some (Project (cols, Select (remap_selection cols sel, e)))
  | Select (sel, Union (a, b)) -> Some (Union (Select (sel, a), Select (sel, b)))
  | Select (sel, Inter (a, b)) -> Some (Inter (Select (sel, a), b))
  | Select (sel, Diff (a, b)) -> Some (Diff (Select (sel, a), b))
  | Select (sel, Product (a, b)) ->
    let ka = arity a in
    let cols = selection_columns sel in
    if List.for_all (fun c -> c < ka) cols then
      Some (Product (Select (sel, a), b))
    else if List.for_all (fun c -> c >= ka) cols then
      Some (Product (a, Select (shift_selection ka sel, b)))
    else (
      (* spanning equality: fuse the product into an equi-join *)
      match sel with
      | Cols_eq (i, j) when i < ka && j >= ka ->
        Some (Join ([ (i, j - ka) ], a, b))
      | Cols_eq (i, j) when j < ka && i >= ka ->
        Some (Join ([ (j, i - ka) ], a, b))
      | _ -> None)
  | Select (sel, Join (pairs, a, b)) -> (
    let ka = arity a in
    let cols = selection_columns sel in
    if List.for_all (fun c -> c < ka) cols then
      Some (Join (pairs, Select (sel, a), b))
    else if List.for_all (fun c -> c >= ka) cols then
      Some (Join (pairs, a, Select (shift_selection ka sel, b)))
    else
      match sel with
      | Cols_eq (i, j) when i < ka && j >= ka ->
        Some (Join ((i, j - ka) :: pairs, a, b))
      | Cols_eq (i, j) when j < ka && i >= ka ->
        Some (Join ((j, i - ka) :: pairs, a, b))
      | _ -> None)
  | Select (sel, Semijoin (pairs, a, b)) ->
    (* a semijoin's output columns are exactly the left operand's *)
    Some (Semijoin (pairs, Select (sel, a), b))
  (* --- projections --- *)
  | Project (cols, e) when is_identity_projection cols (arity e) -> Some e
  | Project (cols1, Project (cols2, e)) ->
    let cols2 = Array.of_list cols2 in
    Some (Project (List.map (fun i -> cols2.(i)) cols1, e))
  | Project (cols, Empty _) -> Some (Empty (List.length cols))
  | Project (cols, Join (pairs, a, b)) ->
    let ka = arity a in
    if List.for_all (fun c -> c < ka) cols then
      Some (Project (cols, Semijoin (pairs, a, b)))
    else if List.for_all (fun c -> c >= ka) cols then
      Some
        (Project
           ( List.map (fun c -> c - ka) cols,
             Semijoin (List.map (fun (i, j) -> (j, i)) pairs, b, a) ))
    else None
  (* --- join folding --- *)
  | Join ([], a, b) -> Some (Product (a, b))
  | Join (_, (Empty _ as a), b) | Join (_, a, (Empty _ as b)) ->
    Some (Empty (arity a + arity b))
  | Semijoin (_, (Empty _ as e), _) -> Some e
  | Semijoin (_, a, Empty _) -> Some (Empty (arity a))
  | Semijoin (_, a, u) when is_universal u && Database.domain db <> [] ->
    (* a universal right side is nonempty and contains every key *)
    Some a
  (* --- constant folding on set operations --- *)
  | Union (Empty _, e) | Union (e, Empty _) -> Some e
  | Inter ((Empty _ as e), _) | Inter (_, (Empty _ as e)) -> Some e
  | Diff ((Empty _ as e), _) -> Some e
  | Diff (e, Empty _) -> Some e
  | Product ((Empty _ as a), b) -> Some (Empty (arity a + arity b))
  | Product (a, (Empty _ as b)) -> Some (Empty (arity a + arity b))
  (* --- idempotence (syntactic) --- *)
  | Union (a, b) when a = b -> Some a
  | Inter (a, b) when a = b -> Some a
  | Diff (a, b) when a = b -> Some (Empty (arity a))
  (* --- universal absorption and double complement --- *)
  | Inter (u, e) when is_universal u -> Some e
  | Inter (e, u) when is_universal u -> Some e
  | Union (u, _) when is_universal u -> Some u
  | Union (_, u) when is_universal u -> Some u
  | Diff (e, u) when is_universal u -> Some (Empty (arity e))
  | Diff (u1, Diff (u2, e)) when is_universal u1 && is_universal u2 -> Some e
  (* --- join fusion on padded conjunctions --- *)
  | Inter (a, b) -> fuse_inter db a b
  | Base _ | Virtual _ | Domain | Empty _ | Select _ | Project _ | Product _
  | Join _ | Semijoin _ | Union _ | Diff _ ->
    None

let optimize db expr =
  (* Validate once up front so rewrites can assume well-formedness. *)
  let _ = Algebra.arity db expr in
  let rec normalize expr =
    let expr' =
      match expr with
      | Base _ | Virtual _ | Domain | Empty _ -> expr
      | Select (sel, e) -> Select (sel, normalize e)
      | Project (cols, e) -> Project (cols, normalize e)
      | Product (a, b) -> Product (normalize a, normalize b)
      | Join (pairs, a, b) -> Join (pairs, normalize a, normalize b)
      | Semijoin (pairs, a, b) -> Semijoin (pairs, normalize a, normalize b)
      | Union (a, b) -> Union (normalize a, normalize b)
      | Inter (a, b) -> Inter (normalize a, normalize b)
      | Diff (a, b) -> Diff (normalize a, normalize b)
    in
    match step db expr' with
    | Some rewritten -> normalize rewritten
    | None -> expr'
  in
  normalize expr
