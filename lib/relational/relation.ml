module Tuple_set = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type t = {
  arity : int;
  tuples : Tuple_set.t;
}

let max_enumeration = 1 lsl 20

let empty k =
  if k < 0 then invalid_arg "Relation.empty: negative arity";
  { arity = k; tuples = Tuple_set.empty }

let check_arity r tuple =
  if Tuple.arity tuple <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation: tuple %s has arity %d, expected %d"
         (Tuple.to_string tuple) (Tuple.arity tuple) r.arity)

let add tuple r =
  check_arity r tuple;
  { r with tuples = Tuple_set.add tuple r.tuples }

let of_tuples k tuples = List.fold_left (fun r t -> add t r) (empty k) tuples

let arity r = r.arity
let cardinal r = Tuple_set.cardinal r.tuples
let is_empty r = Tuple_set.is_empty r.tuples
let mem tuple r = Tuple_set.mem tuple r.tuples
let tuples r = Tuple_set.elements r.tuples

let fold f r acc = Tuple_set.fold f r.tuples acc
let iter f r = Tuple_set.iter f r.tuples
let exists p r = Tuple_set.exists p r.tuples
let for_all p r = Tuple_set.for_all p r.tuples
let filter p r = { r with tuples = Tuple_set.filter p r.tuples }

let map f r =
  fold
    (fun tuple acc ->
      let tuple' = f tuple in
      if Tuple.arity tuple' <> r.arity then
        invalid_arg "Relation.map: arity not preserved";
      add tuple' acc)
    r (empty r.arity)

let same_arity a b =
  if a.arity <> b.arity then
    invalid_arg
      (Printf.sprintf "Relation: arity mismatch (%d vs %d)" a.arity b.arity)

let union a b =
  same_arity a b;
  { a with tuples = Tuple_set.union a.tuples b.tuples }

let inter a b =
  same_arity a b;
  { a with tuples = Tuple_set.inter a.tuples b.tuples }

let diff a b =
  same_arity a b;
  { a with tuples = Tuple_set.diff a.tuples b.tuples }

let subset a b =
  same_arity a b;
  Tuple_set.subset a.tuples b.tuples

let equal a b = a.arity = b.arity && Tuple_set.equal a.tuples b.tuples

let compare a b =
  let c = Int.compare a.arity b.arity in
  if c <> 0 then c else Tuple_set.compare a.tuples b.tuples

let product a b =
  let result = empty (a.arity + b.arity) in
  fold
    (fun ta acc -> fold (fun tb acc -> add (ta @ tb) acc) b acc)
    a result

let full ~domain k =
  if k < 0 then invalid_arg "Relation.full: negative arity";
  let n = List.length domain in
  (* Exact integer cap check, mirroring the Mapping.count_all fix:
     [acc > cap / n] implies [acc * n > cap], and the product never
     overflows below the cap — the old [Float.of_int n ** Float.of_int
     k] comparison lost precision past 2^53 and could misjudge the
     boundary. *)
  let over_cap =
    k > 0 && n > 0
    &&
    let rec go acc i =
      if i = 0 then false
      else if acc > max_enumeration / n then true
      else go (acc * n) (i - 1)
    in
    go 1 k
  in
  if over_cap then
    invalid_arg
      (Printf.sprintf "Relation.full: %d^%d tuples exceeds the enumeration cap"
         n k);
  let rec build k =
    if k = 0 then [ [] ]
    else
      let rest = build (k - 1) in
      List.concat_map (fun e -> List.map (fun t -> e :: t) rest) domain
  in
  of_tuples k (build k)

let subsets r =
  let n = cardinal r in
  if n > 20 then
    invalid_arg
      (Printf.sprintf
         "Relation.subsets: 2^%d subsets exceeds the enumeration cap" n);
  let elements = Array.of_list (tuples r) in
  let total = 1 lsl n in
  let subset_of_mask mask =
    let rec collect i acc =
      if i >= n then acc
      else if mask land (1 lsl i) <> 0 then
        collect (i + 1) (add elements.(i) acc)
      else collect (i + 1) acc
    in
    collect 0 (empty r.arity)
  in
  Seq.map subset_of_mask (Seq.init total Fun.id)

let pp ppf r =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any "; ") Tuple.pp) (tuples r)
