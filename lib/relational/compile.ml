module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query

exception Unsupported of string

let index_of vars x =
  let rec go i = function
    | [] -> raise (Unsupported (Printf.sprintf "variable %s not in scope" x))
    | y :: rest -> if String.equal x y then i else go (i + 1) rest
  in
  go 0 vars

(* D^k as an algebra expression; D^0 is the nullary relation holding
   the empty tuple (encoded as a projection of Domain to no columns). *)
let full_rel k =
  if k = 0 then Algebra.Project ([], Algebra.Domain)
  else
    let rec build k =
      if k = 1 then Algebra.Domain
      else Algebra.Product (Algebra.Domain, build (k - 1))
    in
    build k

let rec compile db vars f =
  let k = List.length vars in
  let full = full_rel k in
  match f with
  | Formula.True -> full
  | Formula.False -> Algebra.Empty k
  | Formula.Eq (s, t) -> compile_eq vars full s t
  | Formula.Atom (p, ts) -> compile_atom db vars p ts
  | Formula.Not f -> Algebra.Diff (full, compile db vars f)
  | Formula.And (f, g) -> Algebra.Inter (compile db vars f, compile db vars g)
  | Formula.Or (f, g) -> Algebra.Union (compile db vars f, compile db vars g)
  | Formula.Implies (f, g) ->
    Algebra.Union (Algebra.Diff (full, compile db vars f), compile db vars g)
  | Formula.Iff (f, g) ->
    let cf = compile db vars f and cg = compile db vars g in
    Algebra.Union
      (Algebra.Inter (cf, cg), Algebra.Inter (Algebra.Diff (full, cf), Algebra.Diff (full, cg)))
  | Formula.Exists (x, f) ->
    (* Rename a shadowed binder so the extended column list stays
       duplicate-free. The candidate must avoid [vars] too, not just
       the body's variables: with binders nested under the same name,
       a fixed number of retries can land on a column introduced by an
       enclosing rename, silently aliasing two quantifiers. *)
    let x', f' =
      if List.mem x vars then begin
        let rec pick base =
          let candidate = Formula.fresh_var ~base [ f ] in
          if List.mem candidate vars then pick (candidate ^ "'")
          else candidate
        in
        let x' = pick x in
        (x', Formula.substitute
               (fun y ->
                 if String.equal y x then Some (Term.Var x') else None)
               f)
      end
      else (x, f)
    in
    let inner = compile db (vars @ [ x' ]) f' in
    Algebra.Project (List.init k Fun.id, inner)
  | Formula.Forall (x, f) ->
    compile db vars (Formula.Not (Formula.Exists (x, Formula.Not f)))
  | Formula.Exists2 _ | Formula.Forall2 _ ->
    raise (Unsupported "second-order quantifier")

and compile_eq vars full s t =
  match s, t with
  | Term.Var x, Term.Var y ->
    Algebra.Select (Algebra.Cols_eq (index_of vars x, index_of vars y), full)
  | Term.Var x, Term.Const c | Term.Const c, Term.Var x ->
    Algebra.Select (Algebra.Col_eq_const (index_of vars x, c), full)
  | Term.Const c, Term.Const d ->
    Algebra.Select (Algebra.Consts_eq (c, d), full)

and compile_atom db vars p ts =
  let k = List.length vars in
  let m = List.length ts in
  let base =
    match Database.relation_opt db p with
    | Some r ->
      if Relation.arity r <> m then
        raise
          (Unsupported
             (Printf.sprintf "atom %s has arity %d, schema says %d" p m
                (Relation.arity r)));
      Algebra.Base p
    | None -> Algebra.Virtual (p, m)
  in
  (* Constrain constant arguments and repeated variables in place. *)
  let constrained =
    List.fold_left
      (fun (expr, seen, pos) t ->
        match t with
        | Term.Const c ->
          (Algebra.Select (Algebra.Col_eq_const (pos, c), expr), seen, pos + 1)
        | Term.Var x -> (
          match List.assoc_opt x seen with
          | Some first ->
            (Algebra.Select (Algebra.Cols_eq (first, pos), expr), seen, pos + 1)
          | None -> (expr, (x, pos) :: seen, pos + 1)))
      (base, [], 0) ts
  in
  let expr, seen, _ = constrained in
  (* Pad with Domain columns for the target variables not used by the
     atom, then project into target order. Pad column for the i-th
     missing variable sits at [m + i]. *)
  let missing =
    List.filter (fun v -> not (List.mem_assoc v seen)) vars
  in
  let padded =
    List.fold_left (fun e _ -> Algebra.Product (e, Algebra.Domain)) expr missing
  in
  let column v =
    match List.assoc_opt v seen with
    | Some pos -> pos
    | None ->
      let rec find i = function
        | [] -> assert false
        | w :: rest -> if String.equal v w then i else find (i + 1) rest
      in
      m + find 0 missing
  in
  let cols = List.map column vars in
  if cols = List.init k Fun.id && List.length missing = 0 && m = k then expr
  else Algebra.Project (cols, padded)

let check_no_duplicates vars =
  let rec go = function
    | [] -> ()
    | v :: rest ->
      if List.mem v rest then
        invalid_arg (Printf.sprintf "Compile: duplicate variable %s" v);
      go rest
  in
  go vars

let formula db ~vars f =
  check_no_duplicates vars;
  List.iter
    (fun x ->
      if not (List.mem x vars) then
        raise (Unsupported (Printf.sprintf "free variable %s not in vars" x)))
    (Formula.free_vars f);
  compile db vars f

let query db q = formula db ~vars:(Query.head q) (Query.body q)

let prepared db q =
  let normalized =
    Query.make (Query.head q) (Vardi_logic.Nnf.transform (Query.body q))
  in
  match query db normalized with
  | plan -> Some (Optimizer.optimize db plan)
  | exception Unsupported _ -> None

let answer ?virtuals db q = Algebra.run ?virtuals db (query db q)
