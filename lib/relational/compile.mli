(** Compilation of first-order queries to relational algebra.

    Because every database here is finite and the CW domain-closure
    axiom closes the domain, compilation uses {e active-domain}
    semantics: each subformula is compiled to a relation over the full
    ordered variable list, padding with [Domain] products; then
    [∧ ↦ ∩], [∨ ↦ ∪], [¬ ↦ D^k ∖ ·], [∃x ↦ project], [∀x ↦ ¬∃x¬].
    This mirrors how the Section 5 approximation would run on a
    standard relational system.

    Second-order quantifiers are not compilable; atoms whose name is
    not in the database schema compile to [Algebra.Virtual] nodes so
    the [α_P] predicates of the approximation algorithm can be plugged
    in at run time. *)

exception Unsupported of string

(** [formula db ~vars f] compiles [f] to an expression whose column
    [i] holds the value of [List.nth vars i].
    @raise Unsupported on second-order quantifiers, or when a free
    variable of [f] is missing from [vars].
    @raise Invalid_argument when [vars] contains duplicates. *)
val formula :
  Database.t -> vars:string list -> Vardi_logic.Formula.t -> Algebra.t

(** [query db q] compiles a whole query; columns follow the head. *)
val query : Database.t -> Vardi_logic.Query.t -> Algebra.t

(** [prepared db q] is a reusable evaluation plan: the query is pushed
    to negation normal form once, compiled once, and optimized once.
    Base relations and constant symbols are resolved at {e run} time,
    so the same plan can be executed against any database sharing
    [db]'s vocabulary — in particular against every image database
    [h(Ph₁(LB))] of the certain-answer engine, where the constant
    interpretation varies with [h]. [None] when the query falls outside
    the algebra (second-order quantifiers). *)
val prepared : Database.t -> Vardi_logic.Query.t -> Algebra.t option

(** [answer ?virtuals db q] compiles and runs [q] — the end-to-end
    "DBMS" pipeline used by the ablation bench. *)
val answer :
  ?virtuals:Eval.virtuals -> Database.t -> Vardi_logic.Query.t -> Relation.t
