(** A positional relational algebra — the "standard database management
    system" on which Section 5 implements logical databases.

    Expressions denote relations whose columns are numbered from 0.
    Constant symbols inside selections are resolved through the
    database's constant interpretation at evaluation time. *)

type selection =
  | Cols_eq of int * int              (** keep rows with [row.(i) = row.(j)] *)
  | Cols_neq of int * int
  | Col_eq_const of int * string      (** [row.(i) = I(c)] for constant symbol [c] *)
  | Col_neq_const of int * string
  | Consts_eq of string * string      (** row-independent: [I(c) = I(d)] *)
  | Consts_neq of string * string

type t =
  | Base of string                    (** a stored relation *)
  | Virtual of string * int           (** computed relation, materialized from
                                          {!Eval.virtuals} over [D^arity] *)
  | Domain                            (** the unary relation holding all of [D] *)
  | Empty of int                      (** the empty [k]-ary relation *)
  | Select of selection * t
  | Project of int list * t           (** output column [i] is input column
                                          [cols.(i)]; may duplicate and reorder *)
  | Product of t * t
  | Join of (int * int) list * t * t
                                      (** equi-join: keeps [u ++ v] for
                                          [u] in the left and [v] in the right
                                          operand with [u.(i) = v.(j)] for every
                                          pair [(i, j)]; output arity is the sum
                                          of the operand arities. Evaluated as a
                                          hash join — semantically equal to the
                                          corresponding [Select]s over
                                          [Product], without materializing the
                                          cartesian product. An empty pair list
                                          degenerates to [Product]. *)
  | Semijoin of (int * int) list * t * t
                                      (** keeps the left rows that agree with at
                                          least one right row on every pair;
                                          output arity is the left arity. An
                                          empty pair list keeps the left operand
                                          iff the right operand is nonempty. *)
  | Union of t * t
  | Inter of t * t
  | Diff of t * t

(** [arity db e] is the output arity of [e] against [db]'s schema.
    @raise Eval.Eval_error on unknown base relations, column indexes
    out of range, or arity mismatches between set-operation operands. *)
val arity : Database.t -> t -> int

(** [run ?virtuals db e] evaluates [e] bottom-up.
    @raise Eval.Eval_error as {!arity} does, and when a [Virtual] node
    has no entry in [virtuals]. *)
val run : ?virtuals:Eval.virtuals -> Database.t -> t -> Relation.t

(** Number of nodes, a cost measure for the ablation benches. *)
val size : t -> int

val pp : t Fmt.t
