module Cw_database = Vardi_cwdb.Cw_database
module Vocabulary = Vardi_logic.Vocabulary

type t = {
  constants : string array;
  codes : (string, int) Hashtbl.t;
  incompatible : bool array;  (* n*n row-major uniqueness-axiom matrix *)
  distinct_pairs : (int * int) array;
  rel_names : string array;
  rel_arities : int array;
  rel_slots : (string, int) Hashtbl.t;
}

let make db =
  let constants = Array.of_list (Cw_database.constants db) in
  let n = Array.length constants in
  let codes = Hashtbl.create (2 * (n + 1)) in
  Array.iteri (fun i c -> Hashtbl.replace codes c i) constants;
  let incompatible = Array.make (n * n) false in
  let distinct_pairs =
    Array.of_list
      (List.map
         (fun (c, d) ->
           let i = Hashtbl.find codes c and j = Hashtbl.find codes d in
           incompatible.((i * n) + j) <- true;
           incompatible.((j * n) + i) <- true;
           (i, j))
         (Cw_database.distinct_pairs db))
  in
  let predicates = Vocabulary.predicates (Cw_database.vocabulary db) in
  let rel_names = Array.of_list (List.map fst predicates) in
  let rel_arities = Array.of_list (List.map snd predicates) in
  let rel_slots = Hashtbl.create 16 in
  Array.iteri (fun s p -> Hashtbl.replace rel_slots p s) rel_names;
  {
    constants;
    codes;
    incompatible;
    distinct_pairs;
    rel_names;
    rel_arities;
    rel_slots;
  }

let size t = Array.length t.constants
let name t code = t.constants.(code)
let code t c = Hashtbl.find t.codes c
let code_opt t c = Hashtbl.find_opt t.codes c
let distinct t i j = t.incompatible.((i * Array.length t.constants) + j)
let distinct_pairs t = t.distinct_pairs
let rel_count t = Array.length t.rel_names
let rel_name t slot = t.rel_names.(slot)
let rel_arity t slot = t.rel_arities.(slot)
let rel_slot t p = Hashtbl.find_opt t.rel_slots p

let code_tuple t tuple = Array.of_list (List.map (code t) tuple)
let name_tuple t row = Array.to_list (Array.map (name t) row)
