(** Interned relations: sorted arrays of immutable [int array] rows.

    The integer-coded mirror of {!Vardi_relational.Relation}. Rows are
    kept strictly sorted under monomorphic lexicographic comparison, so
    the set operations are single-pass linear merges with one result
    allocation and membership is a binary search. Because constant
    codes are assigned in sorted-name order (see {!Symtab}), row order
    here coincides with string-tuple order on the other side of the
    boundary.

    Enumeration caps ({!full}, {!subsets}) and their error messages
    mirror the string side exactly, so the two kernels fail identically
    — a property the differential fuzz oracle relies on. *)

type row = int array

type t

val max_enumeration : int

val compare_rows : row -> row -> int

val empty : int -> t
val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

(** The sorted row array itself — do not mutate. *)
val rows : t -> row array

val of_rows : int -> row list -> t
val of_row_array : int -> row array -> t

(** [of_sorted k rows]: build from an array already strictly increasing
    in {!compare_rows}. Arities are checked, order is trusted, and the
    array is adopted without copying — the caller must not mutate it.
    For producers (like the compiled kernel) whose output order is
    guaranteed by construction. *)
val of_sorted : int -> row array -> t

val mem : row -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

(** [add_rows t rows] is [t] with [rows] merged in (batch union). *)
val add_rows : t -> row list -> t

val fold : (row -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (row -> unit) -> t -> unit
val exists : (row -> bool) -> t -> bool
val for_all : (row -> bool) -> t -> bool
val filter : (row -> bool) -> t -> t

(** [map k f t] applies [f] to every row; the results must have arity
    [k]. *)
val map : int -> (row -> row) -> t -> t

val project : int array -> t -> t
val product : t -> t -> t

(** [full ~domain k]: every [k]-tuple over the element codes in
    [domain] (ascending). Cap and error message mirror
    [Relation.full]. *)
val full : domain:int array -> int -> t

(** All subsets, in the same mask order as [Relation.subsets]; capped
    at 20 rows with the mirrored message. *)
val subsets : t -> t Seq.t

(** Boundary conversions — the only places codes become strings. *)
val to_relation : Symtab.t -> t -> Vardi_relational.Relation.t

val of_relation : Symtab.t -> Vardi_relational.Relation.t -> t

val pp : t Fmt.t
