(** The interned structure stream: Theorem 1's scan over
    uniqueness-respecting renamings, evaluated entirely on codes.

    {!prepare} interns the database once; {!structure_thunks} then
    yields the kernel-partition stream in {e exactly} the order of
    [Partition.all_valid] — same restricted-growth branch order, same
    [Fresh_first]/[Merge_first] choice points — so positional budget
    caps truncate both kernels at the same structure. Unlike the string
    path, which rebuilds every quotient from scratch through
    [Mapping.image_db], the interned stream is incremental: a tree node
    extends its parent by assigning one constant, copying only the
    relation slots touched by the facts that become final at that
    depth and sharing everything else ({e copy-on-extend}).

    {!mapping_thunks} is the interned [Naive_mappings] mirror, with
    [Mapping.all]'s enumeration order, cap and error message.

    Both streams defer the expensive per-structure work (the leaf
    extension, or the whole image) into the returned thunks, matching
    the engine's scheduler contract: enumeration under the puller lock,
    construction in the claiming worker domain. *)

type structure = {
  idb : Idb.t;
  rename : int array;  (** constant code -> representative code *)
}

type plan

(** Intern the database: build the symtab, code every fact, and bucket
    facts by the depth at which they become final.

    [?tab] reuses an existing symtab instead of building one — the
    incremental session's fact-only fast path (inserting or retracting
    a fact changes neither the constant coding nor the distinct
    matrix). The caller is responsible for the tab actually matching
    [db]; passing a stale tab silently miscodes facts. *)
val prepare : ?tab:Symtab.t -> Vardi_cwdb.Cw_database.t -> plan

val symtab : plan -> Symtab.t

(** The discrete structure (identity renaming — Ph₁ itself). *)
val discrete : plan -> structure

val structure_thunks :
  ?order:Vardi_cwdb.Partition.order -> plan -> (unit -> structure) Seq.t

val mapping_thunks : plan -> (unit -> structure) Seq.t

(** {1 Renaming streams}

    The two streams above with image construction stripped out: the
    same enumeration recursion, choice points, uniqueness filters, caps
    and error messages, yielding only the representative arrays.
    Position [i] of [renamings] names the same renaming as position [i]
    of [structure_thunks] (and [mapping_renamings] mirrors
    [mapping_thunks] likewise) — the contract that lets an incremental
    session substitute cached structures for stream positions without
    moving positional budget caps. *)

val renamings : ?order:Vardi_cwdb.Partition.order -> plan -> int array Seq.t
val mapping_renamings : plan -> int array Seq.t

(** [image plan map] builds the whole quotient structure under the
    completed renaming [map]; equal (as interned structures) to the
    structure the thunk streams produce for the same renaming. *)
val image : plan -> int array -> structure

(** [image_slot plan map slot] rebuilds a single relation slot of
    [image plan map] — the incremental session's per-slot cache
    refresh, so a delta on one predicate re-derives only that
    predicate's rows. *)
val image_slot : plan -> int array -> int -> Irel.t
