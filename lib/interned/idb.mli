(** An interned image database: the integer-coded counterpart of
    {!Vardi_relational.Database} for one structure of the scan.

    Elements are constant codes (the renaming maps codes to
    representative codes, so the universe is a subset of the symtab's
    code range); the constant interpretation is a dense array — for an
    image under renaming [h], [interp c = h(c)]. *)

type t = {
  tab : Symtab.t;
  interp : int array;  (** constant code -> element code *)
  universe : int array;  (** ascending element codes *)
  rels : Irel.t array;  (** indexed by symtab slot *)
}

val tab : t -> Symtab.t
val universe : t -> int array
val interp : t -> int -> int
val relation : t -> int -> Irel.t
val relation_opt : t -> string -> Irel.t option
