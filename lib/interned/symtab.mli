(** Per-scan constant interning.

    A symtab is built once per certain-answer scan from the CW database
    and maps every constant of [C] to a dense code — its index in the
    sorted constant list, so code order coincides with name order and
    interned relations sort identically to their string counterparts.
    The uniqueness axioms become a boolean matrix over codes, and
    predicates become dense relation slots in vocabulary order.

    The table is immutable after {!make}; its lifetime is one scan, so
    codes are never shared across databases. *)

type t

(** [make db] interns the constants, uniqueness axioms and predicate
    schema of [db]. Codes follow [Cw_database.constants db] (sorted);
    slots follow [Vocabulary.predicates] (sorted). *)
val make : Vardi_cwdb.Cw_database.t -> t

(** Number of constants (codes are [0 .. size - 1]). *)
val size : t -> int

val name : t -> int -> string
val code : t -> string -> int

(** [None] when the string is not a constant of the database. *)
val code_opt : t -> string -> int option

(** [distinct t i j] iff the constants coded [i] and [j] carry a
    uniqueness axiom. *)
val distinct : t -> int -> int -> bool

(** The uniqueness axioms as code pairs, in
    [Cw_database.distinct_pairs] order. *)
val distinct_pairs : t -> (int * int) array

val rel_count : t -> int
val rel_name : t -> int -> string
val rel_arity : t -> int -> int
val rel_slot : t -> string -> int option

(** Boundary conversions between string tuples and code rows. *)
val code_tuple : t -> string list -> int array

val name_tuple : t -> int array -> string list
