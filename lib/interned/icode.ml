module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query
module Eval = Vardi_relational.Eval

(* Compiled mirror of [Iplan.run] and [Ieval]. Two halves:

   - relational plans flatten to a postfix instruction array executed
     over a stack of *packed* relations: a row of arity k over a
     symtab of n codes is the single integer Σ row.(i)·n^(k-1-i).
     Packing is strictly monotone in [Irel.compare_rows] (fixed radix,
     fixed arity), so sorted row arrays pack to sorted int arrays and
     every set operation becomes an immediate-int merge — no row
     allocation, no comparison closure, no AST dispatch per structure.
   - formulas compile to closure chains over a register file indexed
     by binder depth, replacing the interpreter's assoc-list
     environments.

   Parity with the interpreters is the overriding contract: the fuzz
   battery diffs answers, error messages and trip positions across all
   three kernels, so anything this module cannot compile *identically*
   (packing overflow, malformed plans whose interpreted failure mode is
   lazy) falls back to the interpreter rather than approximating. *)

(* --- arity-specialized row comparators ----------------------------- *)

let compare_rows1 (a : int array) (b : int array) = Int.compare a.(0) b.(0)

let compare_rows2 (a : int array) (b : int array) =
  let c = Int.compare a.(0) b.(0) in
  if c <> 0 then c else Int.compare a.(1) b.(1)

let compare_rows3 (a : int array) (b : int array) =
  let c = Int.compare a.(0) b.(0) in
  if c <> 0 then c
  else
    let c = Int.compare a.(1) b.(1) in
    if c <> 0 then c else Int.compare a.(2) b.(2)

let search_with cmp rows row =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let c = cmp row (Array.unsafe_get rows mid) in
      if c = 0 then true else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length rows)

let mem_row row rel =
  Array.length row = Irel.arity rel
  &&
  let rows = Irel.rows rel in
  match Array.length row with
  | 1 -> search_with compare_rows1 rows row
  | 2 -> search_with compare_rows2 rows row
  | 3 -> search_with compare_rows3 rows row
  | _ -> Irel.mem row rel

(* Scalar variants for the atom hot path: no probe-row allocation. *)

let mem1 rows v0 =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let c = Int.compare v0 (Array.unsafe_get rows mid).(0) in
      if c = 0 then true else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length rows)

let mem2 rows v0 v1 =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let r = Array.unsafe_get rows mid in
      let c = Int.compare v0 r.(0) in
      let c = if c <> 0 then c else Int.compare v1 r.(1) in
      if c = 0 then true else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length rows)

let mem3 rows v0 v1 v2 =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let r = Array.unsafe_get rows mid in
      let c = Int.compare v0 r.(0) in
      let c = if c <> 0 then c else Int.compare v1 r.(1) in
      let c = if c <> 0 then c else Int.compare v2 r.(2) in
      if c = 0 then true else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length rows)

(* --- compiled relational plans ------------------------------------- *)

type instr =
  | Load of { slot : int; arity : int }
  | Load_domain
  | Load_empty of { arity : int }
  | Sel_cols of { div_i : int; div_j : int; keep_equal : bool }
  | Sel_col_const of { div : int; code : int; keep_equal : bool }
  | Sel_consts of { code_c : int; code_d : int; keep_equal : bool }
  | Proj of { divs : int array; arity : int }
  | Prod of { mult : int; arity : int }
  | Union
  | Inter
  | Diff

type packed = {
  p_code : instr array;
  p_n : int;  (* packing radix = symtab size *)
  p_out : int;  (* output arity *)
  p_stack : int;  (* operand-stack high-water mark *)
}

type prog =
  | Packed of packed
  | Interp of { plan : Iplan.t; out : int }

exception Unpackable

(* n^k, refusing to overflow the packed-int range. Requires n >= 1. *)
let pow_exn n k =
  let rec go acc i =
    if i = 0 then acc
    else if acc > max_int / n then raise Unpackable
    else go (acc * n) (i - 1)
  in
  go 1 k

(* Best-effort output arity for the fallback program (tests only; the
   interpreter itself never consults it). *)
let rec fallback_arity tab = function
  | Iplan.Base s ->
    if s >= 0 && s < Symtab.rel_count tab then Symtab.rel_arity tab s else 0
  | Iplan.Domain -> 1
  | Iplan.Empty k -> k
  | Iplan.Select (_, e) -> fallback_arity tab e
  | Iplan.Project (cols, _) -> Array.length cols
  | Iplan.Product (a, b) | Iplan.Join (_, a, b) ->
    fallback_arity tab a + fallback_arity tab b
  | Iplan.Semijoin (_, a, _)
  | Iplan.Union (a, _)
  | Iplan.Inter (a, _)
  | Iplan.Diff (a, _) ->
    fallback_arity tab a

(* One walk: validates (slot/column ranges, arity agreement, packing
   feasibility — [Unpackable] punts to the interpreter, preserving the
   interpreter's failure behavior for malformed plans), resolves
   operands, and emits postfix code with stack-depth accounting. *)
let compile_plan tab plan =
  let n = Symtab.size tab in
  match
    if n < 1 then raise Unpackable;
    let code = ref [] in
    let depth = ref 0 and maxd = ref 0 in
    let emit ins delta =
      code := ins :: !code;
      depth := !depth + delta;
      if !depth > !maxd then maxd := !depth
    in
    let rec go p =
      match p with
      | Iplan.Base s ->
        if s < 0 || s >= Symtab.rel_count tab then raise Unpackable;
        let k = Symtab.rel_arity tab s in
        ignore (pow_exn n k);
        emit (Load { slot = s; arity = k }) 1;
        k
      | Iplan.Domain ->
        emit Load_domain 1;
        1
      | Iplan.Empty k ->
        if k < 0 then raise Unpackable;
        ignore (pow_exn n k);
        emit (Load_empty { arity = k }) 1;
        k
      | Iplan.Select (sel, e) ->
        let k = go e in
        let div i =
          if i < 0 || i >= k then raise Unpackable;
          pow_exn n (k - 1 - i)
        in
        (match sel with
        | Iplan.Cols_eq (i, j) ->
          emit (Sel_cols { div_i = div i; div_j = div j; keep_equal = true }) 0
        | Iplan.Cols_neq (i, j) ->
          emit (Sel_cols { div_i = div i; div_j = div j; keep_equal = false }) 0
        | Iplan.Col_eq_const (i, c) ->
          emit (Sel_col_const { div = div i; code = c; keep_equal = true }) 0
        | Iplan.Col_neq_const (i, c) ->
          emit (Sel_col_const { div = div i; code = c; keep_equal = false }) 0
        | Iplan.Consts_eq (c, d) ->
          emit (Sel_consts { code_c = c; code_d = d; keep_equal = true }) 0
        | Iplan.Consts_neq (c, d) ->
          emit (Sel_consts { code_c = c; code_d = d; keep_equal = false }) 0);
        k
      | Iplan.Project (cols, e) ->
        let k = go e in
        let divs =
          Array.map
            (fun i ->
              if i < 0 || i >= k then raise Unpackable;
              pow_exn n (k - 1 - i))
            cols
        in
        let ka = Array.length cols in
        ignore (pow_exn n ka);
        emit (Proj { divs; arity = ka }) 0;
        ka
      | Iplan.Product (a, b) ->
        let ka = go a in
        let kb = go b in
        ignore (pow_exn n (ka + kb));
        emit (Prod { mult = pow_exn n kb; arity = ka + kb }) (-1);
        ka + kb
      | Iplan.Union (a, b) ->
        let ka = go a in
        let kb = go b in
        if ka <> kb then raise Unpackable;
        emit Union (-1);
        ka
      | Iplan.Inter (a, b) ->
        let ka = go a in
        let kb = go b in
        if ka <> kb then raise Unpackable;
        emit Inter (-1);
        ka
      | Iplan.Diff (a, b) ->
        let ka = go a in
        let kb = go b in
        if ka <> kb then raise Unpackable;
        emit Diff (-1);
        ka
      | Iplan.Join _ | Iplan.Semijoin _ ->
        (* Hash joins need materialized row access, not packed ints;
           run the whole plan on the interpreter instead. *)
        raise Unpackable
    in
    let out = go plan in
    Packed
      {
        p_code = Array.of_list (List.rev !code);
        p_n = n;
        p_out = out;
        p_stack = !maxd;
      }
  with
  | prog -> prog
  | exception Unpackable -> Interp { plan; out = fallback_arity tab plan }

let instrs = function
  | Packed p -> Some p.p_code
  | Interp _ -> None

let out_arity = function Packed p -> p.p_out | Interp i -> i.out

let max_stack = function Packed p -> p.p_stack | Interp _ -> 0

(* Packed-set primitives. All outputs are fresh arrays (or an operand
   passed through untouched), so operands are never mutated and the
   universe array can be pushed directly for [Load_domain]. *)

let pack_rel n rel =
  let rows = Irel.rows rel in
  let len = Array.length rows in
  let out = Array.make len 0 in
  for i = 0 to len - 1 do
    let row = Array.unsafe_get rows i in
    let k = Array.length row in
    let acc = ref 0 in
    for j = 0 to k - 1 do
      acc := (!acc * n) + Array.unsafe_get row j
    done;
    Array.unsafe_set out i !acc
  done;
  out

let filter_cols src div_i div_j n keep =
  let len = Array.length src in
  if len = 0 then src
  else begin
    let out = Array.make len 0 in
    let w = ref 0 in
    for i = 0 to len - 1 do
      let v = Array.unsafe_get src i in
      if (v / div_i mod n = v / div_j mod n) = keep then begin
        Array.unsafe_set out !w v;
        incr w
      end
    done;
    if !w = len then src else Array.sub out 0 !w
  end

let filter_col_const src div e n keep =
  let len = Array.length src in
  if len = 0 then src
  else begin
    let out = Array.make len 0 in
    let w = ref 0 in
    for i = 0 to len - 1 do
      let v = Array.unsafe_get src i in
      if (v / div mod n = e) = keep then begin
        Array.unsafe_set out !w v;
        incr w
      end
    done;
    if !w = len then src else Array.sub out 0 !w
  end

(* In-place sort + dedup over a fresh int array (projection output). *)
let sort_dedup_ints (a : int array) =
  let len = Array.length a in
  if len <= 1 then a
  else begin
    if len <= 32 then
      for i = 1 to len - 1 do
        let v = Array.unsafe_get a i in
        let j = ref (i - 1) in
        while !j >= 0 && Array.unsafe_get a !j > v do
          Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
          decr j
        done;
        Array.unsafe_set a (!j + 1) v
      done
    else Array.sort Int.compare a;
    let w = ref 1 in
    for r = 1 to len - 1 do
      if Array.unsafe_get a r <> Array.unsafe_get a (!w - 1) then begin
        Array.unsafe_set a !w (Array.unsafe_get a r);
        incr w
      end
    done;
    if !w = len then a else Array.sub a 0 !w
  end

let project_packed src divs n =
  let k = Array.length divs in
  let len = Array.length src in
  let out = Array.make len 0 in
  for i = 0 to len - 1 do
    let v = Array.unsafe_get src i in
    let acc = ref 0 in
    for j = 0 to k - 1 do
      acc := (!acc * n) + (v / Array.unsafe_get divs j mod n)
    done;
    Array.unsafe_set out i !acc
  done;
  sort_dedup_ints out

(* Row-major product over sorted factors is sorted and duplicate-free:
   b's values are < mult, so a.(i)*mult blocks are disjoint. *)
let product_packed a b mult =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make (la * lb) 0 in
    for i = 0 to la - 1 do
      let base = Array.unsafe_get a i * mult in
      let off = i * lb in
      for j = 0 to lb - 1 do
        Array.unsafe_set out (off + j) (base + Array.unsafe_get b j)
      done
    done;
    out
  end

let union_ints a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) 0 in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < la && !j < lb do
      let x = Array.unsafe_get a !i and y = Array.unsafe_get b !j in
      if x < y then begin
        Array.unsafe_set out !w x;
        incr i
      end
      else if x > y then begin
        Array.unsafe_set out !w y;
        incr j
      end
      else begin
        Array.unsafe_set out !w x;
        incr i;
        incr j
      end;
      incr w
    done;
    while !i < la do
      Array.unsafe_set out !w (Array.unsafe_get a !i);
      incr i;
      incr w
    done;
    while !j < lb do
      Array.unsafe_set out !w (Array.unsafe_get b !j);
      incr j;
      incr w
    done;
    if !w = la + lb then out else Array.sub out 0 !w
  end

let inter_ints a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make (min la lb) 0 in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < la && !j < lb do
      let x = Array.unsafe_get a !i and y = Array.unsafe_get b !j in
      if x < y then incr i
      else if x > y then incr j
      else begin
        Array.unsafe_set out !w x;
        incr i;
        incr j;
        incr w
      end
    done;
    Array.sub out 0 !w
  end

let diff_ints a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then a
  else begin
    let out = Array.make la 0 in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < la && !j < lb do
      let x = Array.unsafe_get a !i and y = Array.unsafe_get b !j in
      if x < y then begin
        Array.unsafe_set out !w x;
        incr i;
        incr w
      end
      else if x > y then incr j
      else begin
        incr i;
        incr j
      end
    done;
    while !i < la do
      Array.unsafe_set out !w (Array.unsafe_get a !i);
      incr i;
      incr w
    done;
    if !w = la then a else Array.sub out 0 !w
  end

let exec_packed_raw idb p =
  let n = p.p_n in
  let code = p.p_code in
  let stack = Array.make (max p.p_stack 1) [||] in
  let sp = ref 0 in
  for ip = 0 to Array.length code - 1 do
    (match Array.unsafe_get code ip with
    | Load { slot; arity = _ } ->
      stack.(!sp) <- pack_rel n (Idb.relation idb slot);
      incr sp
    | Load_domain ->
      (* Ascending element codes are already the packed arity-1 set. *)
      stack.(!sp) <- Idb.universe idb;
      incr sp
    | Load_empty _ ->
      stack.(!sp) <- [||];
      incr sp
    | Sel_cols { div_i; div_j; keep_equal } ->
      let top = !sp - 1 in
      stack.(top) <- filter_cols stack.(top) div_i div_j n keep_equal
    | Sel_col_const { div; code; keep_equal } ->
      let e = Idb.interp idb code in
      let top = !sp - 1 in
      stack.(top) <- filter_col_const stack.(top) div e n keep_equal
    | Sel_consts { code_c; code_d; keep_equal } ->
      if (Idb.interp idb code_c = Idb.interp idb code_d) <> keep_equal then
        stack.(!sp - 1) <- [||]
    | Proj { divs; arity = _ } ->
      let top = !sp - 1 in
      stack.(top) <- project_packed stack.(top) divs n
    | Prod { mult; arity = _ } ->
      let b = stack.(!sp - 1) and a = stack.(!sp - 2) in
      decr sp;
      stack.(!sp - 1) <- product_packed a b mult
    | Union ->
      let b = stack.(!sp - 1) and a = stack.(!sp - 2) in
      decr sp;
      stack.(!sp - 1) <- union_ints a b
    | Inter ->
      let b = stack.(!sp - 1) and a = stack.(!sp - 2) in
      decr sp;
      stack.(!sp - 1) <- inter_ints a b
    | Diff ->
      let b = stack.(!sp - 1) and a = stack.(!sp - 2) in
      decr sp;
      stack.(!sp - 1) <- diff_ints a b)
  done;
  stack.(0)

let exec_packed idb p =
  let packed = exec_packed_raw idb p in
  let n = p.p_n in
  let k = p.p_out in
  let len = Array.length packed in
  let rows = Array.make len [||] in
  for i = 0 to len - 1 do
    let row = Array.make k 0 in
    let v = ref (Array.unsafe_get packed i) in
    for pos = k - 1 downto 0 do
      Array.unsafe_set row pos (!v mod n);
      v := !v / n
    done;
    Array.unsafe_set rows i row
  done;
  Irel.of_sorted k rows

let exec idb = function
  | Packed p -> exec_packed idb p
  | Interp { plan; _ } -> Iplan.run idb plan

(* Membership in the structure's image answer without materializing it
   as rows: candidate rows (over constant codes) rename and pack to a
   single key, searched in the sorted packed result. Equivalent to
   [Irel.mem (Array.map rename row) (exec idb prog)] — packing is
   injective at fixed radix and arity — but allocation-free per probe.
   The interpreter fallback materializes, exactly as [exec] would. *)
let exec_member idb prog ~rename =
  match prog with
  | Packed p ->
    let vals = exec_packed_raw idb p in
    let n = p.p_n in
    fun (row : int array) ->
      let key = ref 0 in
      for i = 0 to Array.length row - 1 do
        key := (!key * n) + Array.unsafe_get rename (Array.unsafe_get row i)
      done;
      let key = !key in
      let rec go lo hi =
        if lo >= hi then false
        else
          let mid = (lo + hi) / 2 in
          let v = Array.unsafe_get vals mid in
          if key = v then true else if key < v then go lo mid else go (mid + 1) hi
      in
      go 0 (Array.length vals)
  | Interp { plan; _ } ->
    let ia = Iplan.run idb plan in
    fun row -> Irel.mem (Array.map (fun c -> Array.unsafe_get rename c) row) ia

(* --- compiled formulas --------------------------------------------- *)

type rt = {
  r_idb : Idb.t;
  regs : int array;  (* first-order binders, indexed by depth *)
  sos : Irel.t array;  (* second-order binders *)
}

type check = {
  c_head : int;  (* head arity (0 for sentences) *)
  c_regs : int;
  c_sos : int;
  c_slots : int list;
  c_run : rt -> bool;
}

(* Compile-time-detectable errors become closures that raise the
   interpreter's exact error at the same evaluation point, so
   short-circuiting hides exactly the errors [Ieval] would hide. *)
let msg fmt = Format.asprintf fmt

let eval_error m = raise (Eval.Eval_error m)

type cstate = {
  st_tab : Symtab.t;
  mutable st_regs : int;
  mutable st_sos : int;
  mutable st_slots : int list;
}

let cterm st vars = function
  | Term.Var x -> (
    match List.assoc_opt x vars with
    | Some r -> fun rt -> Array.unsafe_get rt.regs r
    | None ->
      let m = msg "unbound variable %s" x in
      fun (_ : rt) -> eval_error m)
  | Term.Const c -> (
    match Symtab.code_opt st.st_tab c with
    | Some code -> fun rt -> Idb.interp rt.r_idb code
    | None ->
      let m = msg "unknown constant %s" c in
      fun (_ : rt) -> eval_error m)

(* [Ieval] evaluates every argument (left to right) before the
   predicate lookup, so an erroring argument outranks an unknown
   predicate — the raising path below preserves that order. *)
let eval_args_then_raise args m =
  let arr = Array.of_list args in
  fun rt ->
    Array.iter (fun a -> ignore (a rt : int)) arr;
    eval_error m

let compile_atom st vars sos p ts =
  let args = List.map (cterm st vars) ts in
  let nargs = List.length args in
  let row_of arr rt =
    let row = Array.make nargs 0 in
    for i = 0 to nargs - 1 do
      row.(i) <- (Array.unsafe_get arr i) rt
    done;
    row
  in
  match List.assoc_opt p sos with
  | Some (sreg, k) ->
    if nargs <> k then
      eval_args_then_raise args
        (msg "predicate variable %s used with arity %d" p nargs)
    else
      let arr = Array.of_list args in
      fun rt -> mem_row (row_of arr rt) rt.sos.(sreg)
  | None -> (
    match Symtab.rel_slot st.st_tab p with
    | Some slot ->
      let declared = Symtab.rel_arity st.st_tab slot in
      if nargs <> declared then
        eval_args_then_raise args
          (msg "predicate %s used with arity %d, declared %d" p nargs declared)
      else begin
        st.st_slots <- slot :: st.st_slots;
        match args with
        | [ a0 ] ->
          fun rt ->
            let v0 = a0 rt in
            mem1 (Irel.rows (Idb.relation rt.r_idb slot)) v0
        | [ a0; a1 ] ->
          fun rt ->
            let v0 = a0 rt in
            let v1 = a1 rt in
            mem2 (Irel.rows (Idb.relation rt.r_idb slot)) v0 v1
        | [ a0; a1; a2 ] ->
          fun rt ->
            let v0 = a0 rt in
            let v1 = a1 rt in
            let v2 = a2 rt in
            mem3 (Irel.rows (Idb.relation rt.r_idb slot)) v0 v1 v2
        | _ ->
          let arr = Array.of_list args in
          fun rt -> mem_row (row_of arr rt) (Idb.relation rt.r_idb slot)
      end
    | None -> eval_args_then_raise args (msg "unknown predicate %s" p))

(* [vars]/[sos] map names to registers; [depth]/[sdepth] are the next
   free registers. Sibling binders deliberately share a register —
   allocation is by depth, and the state records the high-water mark. *)
let rec compile st vars sos depth sdepth f =
  match f with
  | Formula.True -> fun (_ : rt) -> true
  | Formula.False -> fun (_ : rt) -> false
  | Formula.Eq (s, t) ->
    let es = cterm st vars s and et = cterm st vars t in
    fun rt -> es rt = et rt
  | Formula.Atom (p, ts) -> compile_atom st vars sos p ts
  | Formula.Not f ->
    let cf = compile st vars sos depth sdepth f in
    fun rt -> not (cf rt)
  | Formula.And (f, g) ->
    let cf = compile st vars sos depth sdepth f in
    let cg = compile st vars sos depth sdepth g in
    fun rt -> cf rt && cg rt
  | Formula.Or (f, g) ->
    let cf = compile st vars sos depth sdepth f in
    let cg = compile st vars sos depth sdepth g in
    fun rt -> cf rt || cg rt
  | Formula.Implies (f, g) ->
    let cf = compile st vars sos depth sdepth f in
    let cg = compile st vars sos depth sdepth g in
    fun rt -> (not (cf rt)) || cg rt
  | Formula.Iff (f, g) ->
    let cf = compile st vars sos depth sdepth f in
    let cg = compile st vars sos depth sdepth g in
    fun rt -> Bool.equal (cf rt) (cg rt)
  | Formula.Exists (x, f) ->
    let r = depth in
    if depth + 1 > st.st_regs then st.st_regs <- depth + 1;
    let body = compile st ((x, r) :: vars) sos (depth + 1) sdepth f in
    fun rt ->
      let u = Idb.universe rt.r_idb in
      let len = Array.length u in
      let rec go i =
        i < len
        && ((rt.regs.(r) <- Array.unsafe_get u i;
             body rt)
           || go (i + 1))
      in
      go 0
  | Formula.Forall (x, f) ->
    let r = depth in
    if depth + 1 > st.st_regs then st.st_regs <- depth + 1;
    let body = compile st ((x, r) :: vars) sos (depth + 1) sdepth f in
    fun rt ->
      let u = Idb.universe rt.r_idb in
      let len = Array.length u in
      let rec go i =
        i >= len
        || ((rt.regs.(r) <- Array.unsafe_get u i;
             body rt)
           && go (i + 1))
      in
      go 0
  | Formula.Exists2 (p, k, f) ->
    let s = sdepth in
    if sdepth + 1 > st.st_sos then st.st_sos <- sdepth + 1;
    let body = compile st vars ((p, (s, k)) :: sos) depth (sdepth + 1) f in
    fun rt ->
      Seq.exists
        (fun rel ->
          rt.sos.(s) <- rel;
          body rt)
        (Irel.subsets (Irel.full ~domain:(Idb.universe rt.r_idb) k))
  | Formula.Forall2 (p, k, f) ->
    let s = sdepth in
    if sdepth + 1 > st.st_sos then st.st_sos <- sdepth + 1;
    let body = compile st vars ((p, (s, k)) :: sos) depth (sdepth + 1) f in
    fun rt ->
      Seq.for_all
        (fun rel ->
          rt.sos.(s) <- rel;
          body rt)
        (Irel.subsets (Irel.full ~domain:(Idb.universe rt.r_idb) k))

let compile_body tab vars depth f =
  let st = { st_tab = tab; st_regs = depth; st_sos = 0; st_slots = [] } in
  let run = compile st vars [] depth 0 f in
  (st, run)

let failing_check head m =
  {
    c_head = head;
    c_regs = head;
    c_sos = 0;
    c_slots = [];
    c_run = (fun (_ : rt) -> eval_error m);
  }

let compile_sentence tab f =
  match Formula.free_vars f with
  | [] ->
    let st, run = compile_body tab [] 0 f in
    {
      c_head = 0;
      c_regs = st.st_regs;
      c_sos = st.st_sos;
      c_slots = st.st_slots;
      c_run = run;
    }
  | x :: _ -> failing_check 0 (msg "sentence has free variable %s" x)

let fresh_rt idb c regs =
  { r_idb = idb; regs; sos = Array.make c.c_sos (Irel.empty 0) }

let run_sentence idb c = c.c_run (fresh_rt idb c (Array.make c.c_regs 0))

(* Head registers 0..k-1. For [member] the env is built head-first so a
   duplicated head variable resolves to its FIRST occurrence; for
   [answer] the interpreter prepends per position so the LAST wins —
   both mirrored here by list order. *)
let compile_member tab q =
  let head = Query.head q in
  let k = List.length head in
  let vars = List.mapi (fun i x -> (x, i)) head in
  let st, run = compile_body tab vars k (Query.body q) in
  {
    c_head = k;
    c_regs = st.st_regs;
    c_sos = st.st_sos;
    c_slots = st.st_slots;
    c_run = run;
  }

let run_member idb c row =
  if Array.length row <> c.c_head then
    eval_error "Eval.member: tuple arity differs from the query head";
  let regs = Array.make c.c_regs 0 in
  Array.blit row 0 regs 0 c.c_head;
  c.c_run (fresh_rt idb c regs)

let compile_answer tab q =
  let head = Query.head q in
  let k = List.length head in
  let vars = List.rev (List.mapi (fun i x -> (x, i)) head) in
  let st, run = compile_body tab vars k (Query.body q) in
  {
    c_head = k;
    c_regs = st.st_regs;
    c_sos = st.st_sos;
    c_slots = st.st_slots;
    c_run = run;
  }

let run_answer idb c =
  let k = c.c_head in
  let domain = Idb.universe idb in
  let n = Array.length domain in
  let rt = fresh_rt idb c (Array.make c.c_regs 0) in
  let rows = ref [] in
  let rec assign pos =
    if pos = k then begin
      if c.c_run rt then rows := Array.sub rt.regs 0 k :: !rows
    end
    else
      for i = 0 to n - 1 do
        rt.regs.(pos) <- Array.unsafe_get domain i;
        assign (pos + 1)
      done
  in
  assign 0;
  Irel.of_rows k !rows

let check_regs c = c.c_regs
let check_sos c = c.c_sos
let check_slots c = c.c_slots
