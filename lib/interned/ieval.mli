(** Interned Tarskian evaluation — the integer-coded mirror of
    {!Vardi_relational.Eval}, over an {!Idb.t}.

    Used by the engine's decision entry points ([member]/[satisfies])
    and as the fallback for whole-answer evaluation when a query falls
    outside the relational algebra (second-order quantifiers). Raises
    {!Vardi_relational.Eval.Eval_error} with messages identical to the
    string evaluator. *)

val holds : Idb.t -> (string * int) list -> Vardi_logic.Formula.t -> bool

val satisfies : Idb.t -> Vardi_logic.Formula.t -> bool

(** [member idb q row] — [row] holds element codes, already renamed by
    the structure's mapping. *)
val member : Idb.t -> Vardi_logic.Query.t -> int array -> bool

val answer : Idb.t -> Vardi_logic.Query.t -> Irel.t
