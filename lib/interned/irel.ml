module Relation = Vardi_relational.Relation

type row = int array

type t = {
  arity : int;
  rows : row array;  (* strictly increasing in [compare_rows] *)
}

let max_enumeration = 1 lsl 20

(* Monomorphic lexicographic comparison. Rows inside one relation all
   share its arity, so the length tie-break only matters for stray
   caller-supplied rows — kept for total-order safety. *)
let compare_rows (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let n = if la < lb then la else lb in
  let rec go i =
    if i = n then Int.compare la lb
    else
      let c = Int.compare (Array.unsafe_get a i) (Array.unsafe_get b i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal_rows a b = compare_rows a b = 0

let empty k =
  if k < 0 then invalid_arg "Irel.empty: negative arity";
  { arity = k; rows = [||] }

let arity t = t.arity
let cardinal t = Array.length t.rows
let is_empty t = Array.length t.rows = 0
let rows t = t.rows

(* Sort then squeeze out duplicates in place; returns a fresh array
   only when duplicates were present. *)
let sort_dedup arr =
  let n = Array.length arr in
  if n <= 1 then arr
  else begin
    Array.sort compare_rows arr;
    let w = ref 1 in
    for r = 1 to n - 1 do
      if not (equal_rows arr.(r) arr.(!w - 1)) then begin
        arr.(!w) <- arr.(r);
        incr w
      end
    done;
    if !w = n then arr else Array.sub arr 0 !w
  end

let check_row t row =
  if Array.length row <> t.arity then
    invalid_arg
      (Printf.sprintf "Irel: row has arity %d, expected %d" (Array.length row)
         t.arity)

let of_rows k rows_list =
  let t = empty k in
  List.iter (check_row t) rows_list;
  { arity = k; rows = sort_dedup (Array.of_list rows_list) }

let of_row_array k arr =
  let t = empty k in
  Array.iter (check_row t) arr;
  { arity = k; rows = sort_dedup (Array.copy arr) }

(* Trusted constructor for producers that guarantee order themselves
   (the compiled kernel's unpack step): arities are still checked, the
   sort and the defensive copy are skipped. *)
let of_sorted k arr =
  let t = empty k in
  Array.iter (check_row t) arr;
  { arity = k; rows = arr }

let mem row t =
  let rows = t.rows in
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let c = compare_rows row (Array.unsafe_get rows mid) in
      if c = 0 then true
      else if c < 0 then search lo mid
      else search (mid + 1) hi
  in
  Array.length row = t.arity && search 0 (Array.length rows)

let same_arity a b =
  if a.arity <> b.arity then
    invalid_arg
      (Printf.sprintf "Relation: arity mismatch (%d vs %d)" a.arity b.arity)

(* Linear merges over the sorted row arrays: one pass, one result
   allocation, no per-element boxing. *)

let union a b =
  same_arity a b;
  if is_empty a then b
  else if is_empty b then a
  else begin
    let ra = a.rows and rb = b.rows in
    let la = Array.length ra and lb = Array.length rb in
    let out = Array.make (la + lb) ra.(0) in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < la && !j < lb do
      let c = compare_rows ra.(!i) rb.(!j) in
      if c < 0 then begin
        out.(!w) <- ra.(!i);
        incr i
      end
      else if c > 0 then begin
        out.(!w) <- rb.(!j);
        incr j
      end
      else begin
        out.(!w) <- ra.(!i);
        incr i;
        incr j
      end;
      incr w
    done;
    while !i < la do
      out.(!w) <- ra.(!i);
      incr i;
      incr w
    done;
    while !j < lb do
      out.(!w) <- rb.(!j);
      incr j;
      incr w
    done;
    { a with rows = (if !w = la + lb then out else Array.sub out 0 !w) }
  end

let inter a b =
  same_arity a b;
  if is_empty a || is_empty b then { a with rows = [||] }
  else begin
    let ra = a.rows and rb = b.rows in
    let la = Array.length ra and lb = Array.length rb in
    let out = Array.make (min la lb) ra.(0) in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < la && !j < lb do
      let c = compare_rows ra.(!i) rb.(!j) in
      if c < 0 then incr i
      else if c > 0 then incr j
      else begin
        out.(!w) <- ra.(!i);
        incr i;
        incr j;
        incr w
      end
    done;
    { a with rows = Array.sub out 0 !w }
  end

let diff a b =
  same_arity a b;
  if is_empty a || is_empty b then a
  else begin
    let ra = a.rows and rb = b.rows in
    let la = Array.length ra and lb = Array.length rb in
    let out = Array.make la ra.(0) in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < la && !j < lb do
      let c = compare_rows ra.(!i) rb.(!j) in
      if c < 0 then begin
        out.(!w) <- ra.(!i);
        incr i;
        incr w
      end
      else if c > 0 then incr j
      else begin
        incr i;
        incr j
      end
    done;
    while !i < la do
      out.(!w) <- ra.(!i);
      incr i;
      incr w
    done;
    if !w = la then a else { a with rows = Array.sub out 0 !w }
  end

let subset a b =
  same_arity a b;
  Array.for_all (fun row -> mem row b) a.rows

let equal a b =
  a.arity = b.arity
  && Array.length a.rows = Array.length b.rows
  && Array.for_all2 equal_rows a.rows b.rows

let add_rows t extra =
  match extra with
  | [] -> t
  | _ ->
    List.iter (check_row t) extra;
    let batch = sort_dedup (Array.of_list extra) in
    union t { t with rows = batch }

let fold f t acc =
  Array.fold_left (fun acc row -> f row acc) acc t.rows

let iter f t = Array.iter f t.rows
let exists p t = Array.exists p t.rows
let for_all p t = Array.for_all p t.rows

let filter p t =
  let n = Array.length t.rows in
  if n = 0 then t
  else begin
    let out = Array.make n t.rows.(0) in
    let w = ref 0 in
    for i = 0 to n - 1 do
      let row = Array.unsafe_get t.rows i in
      if p row then begin
        out.(!w) <- row;
        incr w
      end
    done;
    if !w = n then t else { t with rows = Array.sub out 0 !w }
  end

let map k f t =
  let out = Array.map f t.rows in
  Array.iter
    (fun row ->
      if Array.length row <> k then invalid_arg "Irel.map: arity not preserved")
    out;
  { arity = k; rows = sort_dedup out }

let project cols t =
  Array.iter
    (fun i ->
      if i < 0 || i >= t.arity then
        invalid_arg
          (Printf.sprintf "Irel.project: column %d out of range (arity %d)" i
             t.arity))
    cols;
  let k = Array.length cols in
  let out =
    Array.map (fun row -> Array.map (fun i -> Array.unsafe_get row i) cols)
      t.rows
  in
  { arity = k; rows = sort_dedup out }

let product a b =
  let k = a.arity + b.arity in
  let la = Array.length a.rows and lb = Array.length b.rows in
  if la = 0 || lb = 0 then empty k
  else begin
    let out = Array.make (la * lb) [||] in
    for i = 0 to la - 1 do
      let ra = a.rows.(i) in
      for j = 0 to lb - 1 do
        out.((i * lb) + j) <- Array.append ra b.rows.(j)
      done
    done;
    (* Row-major over two sorted factors is already sorted and
       duplicate-free. *)
    { arity = k; rows = out }
  end

(* Exact integer cap check: [acc > cap / n] implies [acc * n > cap],
   and the converse product never overflows because it stays below the
   cap. Mirrors the string-side [Relation.full] so the two kernels trip
   (or don't) on identical inputs with identical messages. *)
let full_over_cap n k =
  k > 0 && n > 0
  &&
  let rec go acc i =
    if i = 0 then false
    else if acc > max_enumeration / n then true
    else go (acc * n) (i - 1)
  in
  go 1 k

let full ~domain k =
  if k < 0 then invalid_arg "Relation.full: negative arity";
  let n = Array.length domain in
  if full_over_cap n k then
    invalid_arg
      (Printf.sprintf "Relation.full: %d^%d tuples exceeds the enumeration cap"
         n k);
  if k = 0 then { arity = 0; rows = [| [||] |] }
  else if n = 0 then empty k
  else begin
    let total =
      let rec go acc i = if i = 0 then acc else go (acc * n) (i - 1) in
      go 1 k
    in
    let out = Array.make total [||] in
    (* Row index read in base n, most-significant digit first, keeps
       the output sorted as long as [domain] is ascending. *)
    for idx = 0 to total - 1 do
      let row = Array.make k 0 in
      let v = ref idx in
      for pos = k - 1 downto 0 do
        row.(pos) <- domain.(!v mod n);
        v := !v / n
      done;
      out.(idx) <- row
    done;
    { arity = k; rows = out }
  end

let subsets t =
  let n = cardinal t in
  if n > 20 then
    invalid_arg
      (Printf.sprintf
         "Relation.subsets: 2^%d subsets exceeds the enumeration cap" n);
  let total = 1 lsl n in
  let subset_of_mask mask =
    let size = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then incr size
    done;
    let out = Array.make !size [||] in
    let w = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        out.(!w) <- t.rows.(i);
        incr w
      end
    done;
    { t with rows = out }
  in
  Seq.map subset_of_mask (Seq.init total Fun.id)

(* --- boundary conversions ------------------------------------------ *)

let to_relation tab t =
  Relation.of_tuples t.arity
    (Array.to_list (Array.map (Symtab.name_tuple tab) t.rows))

let of_relation tab r =
  let rows =
    List.map (Symtab.code_tuple tab) (Relation.tuples r)
  in
  of_rows (Relation.arity r) rows

let pp ppf t =
  let pp_row ppf row =
    Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") int) row
  in
  Fmt.pf ppf "{%a}" Fmt.(array ~sep:(any "; ") pp_row) t.rows
