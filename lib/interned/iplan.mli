(** Interned relational-algebra plans.

    The integer-coded mirror of {!Vardi_relational.Algebra}: base
    relations are symtab slots, constant symbols are codes. A plan is
    interned {e once} per scan with {!of_algebra} and then executed
    against every image database with {!run}, which performs no string
    work and no per-run validation. *)

type selection =
  | Cols_eq of int * int
  | Cols_neq of int * int
  | Col_eq_const of int * int
  | Col_neq_const of int * int
  | Consts_eq of int * int
  | Consts_neq of int * int

type t =
  | Base of int
  | Domain
  | Empty of int
  | Select of selection * t
  | Project of int array * t
  | Product of t * t
  | Join of (int * int) list * t * t
      (** hash equi-join; mirrors [Algebra.Join] *)
  | Semijoin of (int * int) list * t * t
  | Union of t * t
  | Inter of t * t
  | Diff of t * t

(** [None] when the expression contains a virtual relation or a symbol
    outside the symtab; callers fall back to {!Ieval}. *)
val of_algebra : Symtab.t -> Vardi_relational.Algebra.t -> t option

val run : Idb.t -> t -> Irel.t
