module Algebra = Vardi_relational.Algebra

type selection =
  | Cols_eq of int * int
  | Cols_neq of int * int
  | Col_eq_const of int * int  (* column, constant code *)
  | Col_neq_const of int * int
  | Consts_eq of int * int  (* constant codes *)
  | Consts_neq of int * int

type t =
  | Base of int  (* symtab slot *)
  | Domain
  | Empty of int
  | Select of selection * t
  | Project of int array * t
  | Product of t * t
  | Join of (int * int) list * t * t
  | Semijoin of (int * int) list * t * t
  | Union of t * t
  | Inter of t * t
  | Diff of t * t

(* Symbol resolution happens once, here: base relations become slots
   and constant symbols become codes, so [run] never touches a string.
   [None] on anything the interned runner cannot execute — virtual
   relations, or symbols outside the symtab (neither occurs for plans
   compiled from a validated query over Ph1, but the fallback to the
   interned Tarskian evaluator keeps this total). *)
let of_algebra tab expr =
  let slot p = Symtab.rel_slot tab p in
  let code c = Symtab.code_opt tab c in
  let ( let* ) = Option.bind in
  let selection = function
    | Algebra.Cols_eq (i, j) -> Some (Cols_eq (i, j))
    | Algebra.Cols_neq (i, j) -> Some (Cols_neq (i, j))
    | Algebra.Col_eq_const (i, c) ->
      let* c = code c in
      Some (Col_eq_const (i, c))
    | Algebra.Col_neq_const (i, c) ->
      let* c = code c in
      Some (Col_neq_const (i, c))
    | Algebra.Consts_eq (c, d) ->
      let* c = code c in
      let* d = code d in
      Some (Consts_eq (c, d))
    | Algebra.Consts_neq (c, d) ->
      let* c = code c in
      let* d = code d in
      Some (Consts_neq (c, d))
  in
  let rec go = function
    | Algebra.Base p ->
      let* s = slot p in
      Some (Base s)
    | Algebra.Virtual _ -> None
    | Algebra.Domain -> Some Domain
    | Algebra.Empty k -> Some (Empty k)
    | Algebra.Select (sel, e) ->
      let* sel = selection sel in
      let* e = go e in
      Some (Select (sel, e))
    | Algebra.Project (cols, e) ->
      let* e = go e in
      Some (Project (Array.of_list cols, e))
    | Algebra.Product (a, b) ->
      let* a = go a in
      let* b = go b in
      Some (Product (a, b))
    | Algebra.Join (pairs, a, b) ->
      let* a = go a in
      let* b = go b in
      Some (Join (pairs, a, b))
    | Algebra.Semijoin (pairs, a, b) ->
      let* a = go a in
      let* b = go b in
      Some (Semijoin (pairs, a, b))
    | Algebra.Union (a, b) ->
      let* a = go a in
      let* b = go b in
      Some (Union (a, b))
    | Algebra.Inter (a, b) ->
      let* a = go a in
      let* b = go b in
      Some (Inter (a, b))
    | Algebra.Diff (a, b) ->
      let* a = go a in
      let* b = go b in
      Some (Diff (a, b))
  in
  go expr

(* No per-run validation: the plan was validated symbolically when the
   string-side compiler built it, and interning cannot introduce arity
   errors. This is part of the speedup — [Algebra.run] re-walks the
   tree computing arities on every structure. *)
let rec run idb plan =
  match plan with
  | Base slot -> Idb.relation idb slot
  | Domain ->
    Irel.of_row_array 1 (Array.map (fun e -> [| e |]) (Idb.universe idb))
  | Empty k -> Irel.empty k
  | Select (sel, e) ->
    let r = run idb e in
    let keep =
      match sel with
      | Cols_eq (i, j) -> fun (row : int array) -> row.(i) = row.(j)
      | Cols_neq (i, j) -> fun row -> row.(i) <> row.(j)
      | Col_eq_const (i, c) ->
        let e = Idb.interp idb c in
        fun row -> row.(i) = e
      | Col_neq_const (i, c) ->
        let e = Idb.interp idb c in
        fun row -> row.(i) <> e
      | Consts_eq (c, d) ->
        let b = Idb.interp idb c = Idb.interp idb d in
        fun _ -> b
      | Consts_neq (c, d) ->
        let b = Idb.interp idb c <> Idb.interp idb d in
        fun _ -> b
    in
    Irel.filter keep r
  | Project (cols, e) -> Irel.project cols (run idb e)
  | Product (a, b) -> Irel.product (run idb a) (run idb b)
  | Join (pairs, a, b) ->
    let ra = run idb a and rb = run idb b in
    let lcols = Array.of_list (List.map fst pairs)
    and rcols = Array.of_list (List.map snd pairs) in
    let key (row : Irel.row) cols =
      Array.to_list (Array.map (fun i -> row.(i)) cols)
    in
    let table : (int list, Irel.row list) Hashtbl.t = Hashtbl.create 64 in
    Irel.iter
      (fun row ->
        let k = key row rcols in
        let prev = try Hashtbl.find table k with Not_found -> [] in
        Hashtbl.replace table k (row :: prev))
      rb;
    let out = Irel.arity ra + Irel.arity rb in
    let acc = ref [] in
    Irel.iter
      (fun row ->
        match Hashtbl.find_opt table (key row lcols) with
        | None -> ()
        | Some matches ->
          List.iter
            (fun rrow -> acc := Array.append row rrow :: !acc)
            matches)
      ra;
    Irel.of_rows out !acc
  | Semijoin (pairs, a, b) ->
    let ra = run idb a and rb = run idb b in
    let lcols = Array.of_list (List.map fst pairs)
    and rcols = Array.of_list (List.map snd pairs) in
    let key (row : Irel.row) cols =
      Array.to_list (Array.map (fun i -> row.(i)) cols)
    in
    let keys : (int list, unit) Hashtbl.t = Hashtbl.create 64 in
    Irel.iter (fun row -> Hashtbl.replace keys (key row rcols) ()) rb;
    Irel.filter (fun row -> Hashtbl.mem keys (key row lcols)) ra
  | Union (a, b) -> Irel.union (run idb a) (run idb b)
  | Inter (a, b) -> Irel.inter (run idb a) (run idb b)
  | Diff (a, b) -> Irel.diff (run idb a) (run idb b)
