(** Flat-code compilation of the Theorem-1 hot loop.

    [Iplan.run] and [Ieval.eval] still walk an AST for every structure
    of the scan; after the PR-5 interning win that dispatch is the
    dominant per-structure cost. This module compiles both evaluators
    once per prepared query, in the WAM/PAIP tradition of flattening an
    interpreter into straight-line code with resolved operands:

    - {e Relational plans} ({!compile_plan}) become a postfix
      {e instruction array} over a value stack. Slot indexes, column
      divisors and constant codes are resolved at compile time. When
      the symtab's code range allows it, every intermediate relation is
      {e packed}: a row of arity [k] becomes the single integer
      [Σ row.(i)·n^(k-1-i)] (radix [n] = symtab size), so the
      per-tuple path runs entirely on immediate integers — sorts,
      merges and membership never chase a pointer and never call a
      comparison closure, and row order is preserved because packing is
      monotone in lexicographic order. Plans whose intermediate
      arities overflow the packing radix fall back to {!Iplan.run}
      (identical semantics, just unflattened).
    - {e Formulas} ({!compile_sentence}, {!compile_member},
      {!compile_answer}) become closure chains over a mutable
      {e register file}: each first-order binder is assigned a fixed
      [int] register at compile time and each second-order binder a
      relation register, replacing [Ieval]'s assoc-list environments;
      variable and predicate names are gone before the first structure
      is evaluated. Atom membership uses the arity-specialized
      comparators below. The bounded-SO fallback enumerates
      [Irel.subsets (Irel.full ...)] exactly as [Ieval] does, with the
      same caps and messages.

    Observational equivalence with [Iplan.run]/[Ieval] is a hard
    contract (the three-way kernel-parity fuzz oracle enforces it):
    same answers, and the same [Eval.Eval_error]s with byte-identical
    messages {e at the same evaluation points} — compile-time-detectable
    errors (unknown predicate, arity clash, unbound variable) are
    compiled to raising code at the offending node, so short-circuit
    evaluation hides exactly the errors the interpreter would hide.
    All compiled values are immutable and every [run_*]/[exec] call
    allocates its own register file and stack, so one compiled program
    may be evaluated concurrently from any number of domains. *)

(** {1 Arity-specialized row comparators}

    Unrolled mirrors of {!Irel.compare_rows} for the small arities that
    dominate real queries; both arguments must have arity exactly 1, 2
    or 3 respectively. The generic path stays [Irel.compare_rows]. *)

val compare_rows1 : Irel.row -> Irel.row -> int
val compare_rows2 : Irel.row -> Irel.row -> int
val compare_rows3 : Irel.row -> Irel.row -> int

(** [mem_row row rel] = [Irel.mem row rel], dispatching to an unrolled
    binary search for arities 1-3 and to [Irel.mem] otherwise. *)
val mem_row : Irel.row -> Irel.t -> bool

(** {1 Compiled relational plans} *)

(** One packed-mode instruction. Exposed so the compiler tests can
    check every resolved index against the symtab it was compiled
    from; execution never re-validates. *)
type instr =
  | Load of { slot : int; arity : int }  (** push base relation, packed *)
  | Load_domain  (** push the universe (arity 1; packed = the codes) *)
  | Load_empty of { arity : int }
  | Sel_cols of { div_i : int; div_j : int; keep_equal : bool }
      (** keep rows whose columns at divisors [div_i]/[div_j] agree
          (disagree when [keep_equal] is false) *)
  | Sel_col_const of { div : int; code : int; keep_equal : bool }
      (** column against the interpretation of constant [code] *)
  | Sel_consts of { code_c : int; code_d : int; keep_equal : bool }
      (** row-independent constant test *)
  | Proj of { divs : int array; arity : int }
      (** output column [j] is the input column extracted by
          [divs.(j)]; repacked in radix [n] *)
  | Prod of { mult : int; arity : int }
      (** packed product: [a·mult + b] with [mult = n^arity(b)];
          [arity] is the output arity *)
  | Union
  | Inter
  | Diff

type prog

(** [compile_plan tab plan] resolves [plan] against [tab] once. *)
val compile_plan : Symtab.t -> Iplan.t -> prog

(** [exec idb prog] evaluates the compiled plan against one image
    database. Equal to [Iplan.run idb plan] for the source plan. *)
val exec : Idb.t -> prog -> Irel.t

(** [exec_member idb prog ~rename row] = [Irel.mem
    (Array.map (fun c -> rename.(c)) row) (exec idb prog)], evaluated
    once per structure and probed allocation-free per row: candidate
    rows over constant codes rename and pack to a single integer key
    searched in the packed result. The engine's survivor-filter hot
    path. *)
val exec_member : Idb.t -> prog -> rename:int array -> int array -> bool

(** The instruction array, or [None] when the plan fell back to the
    AST interpreter (packing radix overflow). For the bounds tests. *)
val instrs : prog -> instr array option

val out_arity : prog -> int

(** Operand-stack high-water mark the executor will allocate. *)
val max_stack : prog -> int

(** {1 Compiled formulas} *)

type check

(** [compile_sentence tab f] compiles a closed formula; mirrors
    [Ieval.satisfies] (including the free-variable error, deferred to
    run time). *)
val compile_sentence : Symtab.t -> Vardi_logic.Formula.t -> check

(** [run_sentence idb c]: one per-structure Boolean check. *)
val run_sentence : Idb.t -> check -> bool

(** [compile_member tab q] compiles the query body with the head
    variables pre-bound to registers [0 .. arity-1]; mirrors
    [Ieval.member]. *)
val compile_member : Symtab.t -> Vardi_logic.Query.t -> check

(** [run_member idb c row]: [row] holds element codes (the candidate
    tuple already renamed), loaded into the head registers. *)
val run_member : Idb.t -> check -> int array -> bool

(** [compile_answer tab q] compiles the direct-enumeration answer path
    — the bounded-SO fallback used when the query has no relational
    plan; mirrors [Ieval.answer]. *)
val compile_answer : Symtab.t -> Vardi_logic.Query.t -> check

val run_answer : Idb.t -> check -> Irel.t

(** Compile-time register-file sizes and every base-relation slot the
    compiled formula dereferences — for the bounds tests. *)
val check_regs : check -> int

val check_sos : check -> int
val check_slots : check -> int list
