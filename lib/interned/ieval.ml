module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query
module Eval = Vardi_relational.Eval

(* The interned mirror of [Vardi_relational.Eval]: Tarskian evaluation
   over an [Idb.t], raising [Eval.Eval_error] with messages identical
   to the string side so the two kernels fail indistinguishably.
   Environments are small assoc lists — query nesting depth bounds
   their length, and lookup beats a map below a dozen entries. *)

type context = {
  idb : Idb.t;
  env : (string * int) list;  (* individual variables -> element code *)
  so_env : (string * Irel.t) list;  (* second-order variables *)
}

let error fmt = Format.kasprintf (fun s -> raise (Eval.Eval_error s)) fmt

let element ctx = function
  | Term.Var x -> (
    match List.assoc_opt x ctx.env with
    | Some e -> e
    | None -> error "unbound variable %s" x)
  | Term.Const c -> (
    match Symtab.code_opt (Idb.tab ctx.idb) c with
    | Some code -> Idb.interp ctx.idb code
    | None -> error "unknown constant %s" c)

let atom_holds ctx p args =
  match List.assoc_opt p ctx.so_env with
  | Some r ->
    if Irel.arity r <> Array.length args then
      error "predicate variable %s used with arity %d" p (Array.length args);
    Irel.mem args r
  | None -> (
    match Idb.relation_opt ctx.idb p with
    | Some r ->
      if Irel.arity r <> Array.length args then
        error "predicate %s used with arity %d, declared %d" p
          (Array.length args) (Irel.arity r);
      Irel.mem args r
    | None -> error "unknown predicate %s" p)

let rec eval ctx formula =
  match formula with
  | Formula.True -> true
  | Formula.False -> false
  | Formula.Eq (s, t) -> element ctx s = element ctx t
  | Formula.Atom (p, ts) ->
    atom_holds ctx p (Array.of_list (List.map (element ctx) ts))
  | Formula.Not f -> not (eval ctx f)
  | Formula.And (f, g) -> eval ctx f && eval ctx g
  | Formula.Or (f, g) -> eval ctx f || eval ctx g
  | Formula.Implies (f, g) -> (not (eval ctx f)) || eval ctx g
  | Formula.Iff (f, g) -> Bool.equal (eval ctx f) (eval ctx g)
  | Formula.Exists (x, f) ->
    Array.exists
      (fun e -> eval { ctx with env = (x, e) :: ctx.env } f)
      (Idb.universe ctx.idb)
  | Formula.Forall (x, f) ->
    Array.for_all
      (fun e -> eval { ctx with env = (x, e) :: ctx.env } f)
      (Idb.universe ctx.idb)
  | Formula.Exists2 (p, k, f) ->
    Seq.exists
      (fun r -> eval { ctx with so_env = (p, r) :: ctx.so_env } f)
      (all_relations ctx k)
  | Formula.Forall2 (p, k, f) ->
    Seq.for_all
      (fun r -> eval { ctx with so_env = (p, r) :: ctx.so_env } f)
      (all_relations ctx k)

and all_relations ctx k =
  Irel.subsets (Irel.full ~domain:(Idb.universe ctx.idb) k)

let holds idb env formula = eval { idb; env; so_env = [] } formula

let satisfies idb sentence =
  match Formula.free_vars sentence with
  | [] -> holds idb [] sentence
  | x :: _ -> error "sentence has free variable %s" x

(* [row] holds element codes (the tuple already renamed). *)
let member idb q row =
  let head = Query.head q in
  if Array.length row <> List.length head then
    error "Eval.member: tuple arity differs from the query head";
  holds idb (List.mapi (fun i x -> (x, row.(i))) head) (Query.body q)

let answer idb q =
  let head = Query.head q in
  let k = List.length head in
  let domain = Idb.universe idb in
  let n = Array.length domain in
  let body = Query.body q in
  let rows = ref [] in
  let row = Array.make k 0 in
  let rec assign pos env =
    if pos = k then begin
      if eval { idb; env; so_env = [] } body then rows := Array.copy row :: !rows
    end
    else
      for i = 0 to n - 1 do
        row.(pos) <- domain.(i);
        assign (pos + 1) ((List.nth head pos, domain.(i)) :: env)
      done
  in
  assign 0 [];
  Irel.of_rows k !rows
