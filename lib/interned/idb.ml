type t = {
  tab : Symtab.t;
  interp : int array;  (* constant code -> element code *)
  universe : int array;  (* ascending element codes *)
  rels : Irel.t array;  (* indexed by symtab slot *)
}

let tab t = t.tab
let universe t = t.universe
let interp t code = t.interp.(code)
let relation t slot = t.rels.(slot)

let relation_opt t p =
  Option.map (fun slot -> t.rels.(slot)) (Symtab.rel_slot t.tab p)
