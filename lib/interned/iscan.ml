module Cw_database = Vardi_cwdb.Cw_database
module Partition = Vardi_cwdb.Partition

type structure = {
  idb : Idb.t;
  rename : int array;  (* constant code -> representative code *)
}

type plan = {
  tab : Symtab.t;
  n : int;
  (* Root relations: empty except for nullary facts, which no renaming
     can touch. *)
  base : Irel.t array;
  (* Per-depth fact buckets, grouped by relation slot: the facts whose
     maximum argument code is [d] become final the moment constant [d]
     is assigned a representative, and are folded into the image
     exactly once, at that depth of the enumeration tree. *)
  pending : (int * int array list) list array;
  (* All facts as (slot, arg codes), for paths that build whole images
     at once (the discrete seed and the naive-mapping algorithm). *)
  facts_by_slot : int array list array;
}

let mapping_cap = 1 lsl 24

let prepare ?tab db =
  let tab = match tab with Some t -> t | None -> Symtab.make db in
  let n = Symtab.size tab in
  let k = Symtab.rel_count tab in
  let base = Array.init k (fun s -> Irel.empty (Symtab.rel_arity tab s)) in
  let raw_pending = Array.make (max n 1) [] in
  let facts_by_slot = Array.make k [] in
  List.iter
    (fun { Cw_database.pred; args } ->
      let slot =
        match Symtab.rel_slot tab pred with
        | Some s -> s
        | None -> assert false (* facts are checked against the vocabulary *)
      in
      let codes = Symtab.code_tuple tab args in
      facts_by_slot.(slot) <- codes :: facts_by_slot.(slot);
      let d = Array.fold_left max (-1) codes in
      if d < 0 then base.(slot) <- Irel.add_rows base.(slot) [ codes ]
      else raw_pending.(d) <- (slot, codes) :: raw_pending.(d))
    (Cw_database.facts db);
  (* Group each bucket by slot once, here, so [extend] touches each
     affected relation exactly once with a ready-made batch. *)
  let pending =
    Array.map
      (fun bucket ->
        List.fold_left
          (fun groups (slot, codes) ->
            match List.assoc_opt slot groups with
            | Some rows ->
              (slot, codes :: rows) :: List.remove_assoc slot groups
            | None -> (slot, [ codes ]) :: groups)
          [] bucket)
      raw_pending
  in
  { tab; n; base; pending; facts_by_slot }

let symtab plan = plan.tab

(* --- the kernel-partition stream ----------------------------------- *)

(* One node of the restricted-growth enumeration tree: constants
   [0 .. depth-1] have representatives; [blocks] mirrors
   [Partition.all_valid]'s block list exactly (newest block first,
   members in descending insertion order) so the two streams visit
   partitions in the same order — the positional budget-cap contract
   depends on it. [rels] is the interned image of the facts finalized
   so far; extending a node copies only the relation slots its depth's
   fact bucket touches, sharing every other slot with the parent. *)
type node = {
  depth : int;
  repr : int array;
  blocks : (int * int list) list;  (* (representative, members) *)
  rels : Irel.t array;
}

type choice =
  | Fresh
  | Join of int

let root plan =
  {
    depth = 0;
    repr = Array.make (max plan.n 1) (-1);
    blocks = [];
    rels = plan.base;
  }

let extend plan node choice =
  let c = node.depth in
  let repr = Array.copy node.repr in
  let blocks =
    match choice with
    | Fresh ->
      repr.(c) <- c;
      (c, [ c ]) :: node.blocks
    | Join i ->
      let r, _ = List.nth node.blocks i in
      repr.(c) <- r;
      List.mapi
        (fun j (br, ms) -> if j = i then (br, c :: ms) else (br, ms))
        node.blocks
  in
  let rels =
    match plan.pending.(c) with
    | [] -> node.rels
    | groups ->
      let rels = Array.copy node.rels in
      List.iter
        (fun (slot, argss) ->
          let rows =
            List.map
              (fun args ->
                Array.map (fun a -> Array.unsafe_get repr a) args)
              argss
          in
          rels.(slot) <- Irel.add_rows rels.(slot) rows)
        groups;
      rels
  in
  { depth = c + 1; repr; blocks; rels }

(* Blocks are created with strictly increasing representatives (a fresh
   block's representative is the current constant), and the list is
   newest-first, so reversing it yields the universe already sorted. *)
let finish plan node =
  let universe = Array.of_list (List.rev_map fst node.blocks) in
  let idb =
    { Idb.tab = plan.tab; interp = node.repr; universe; rels = node.rels }
  in
  { idb; rename = node.repr }

(* The enumeration step (node extension bookkeeping) runs wherever the
   sequence is forced — the scheduler's critical section — while the
   last extension and [finish] are deferred into the returned thunk, so
   the per-leaf relation work lands on whichever worker domain claimed
   the structure. Branches are eta-expanded: nothing about a sibling
   subtree is computed until the stream actually reaches it. *)
let structure_thunks ?(order = Partition.Fresh_first) plan =
  let n = plan.n in
  if n = 0 then Seq.return (fun () -> finish plan (root plan))
  else
    let rec expand node () =
      let c = node.depth in
      let child choice : (unit -> structure) Seq.t =
        if c = n - 1 then
          Seq.return (fun () -> finish plan (extend plan node choice))
        else fun () -> expand (extend plan node choice) ()
      in
      let fresh = child Fresh in
      let joins =
        List.mapi
          (fun i (_, members) ->
            if
              List.for_all
                (fun d -> not (Symtab.distinct plan.tab c d))
                members
            then Some (child (Join i))
            else None)
          node.blocks
        |> List.filter_map Fun.id
      in
      let join_seq = Seq.concat (List.to_seq joins) in
      match order with
      | Partition.Fresh_first -> Seq.append fresh join_seq ()
      | Partition.Merge_first -> Seq.append join_seq fresh ()
    in
    expand (root plan)

(* --- the renaming stream -------------------------------------------- *)

(* [structure_thunks] with the image construction stripped out: the
   same restricted-growth recursion, the same [Fresh]/[Join] choice
   points, the same uniqueness filter — yielding only the completed
   representative arrays. Position [i] of this stream names the same
   renaming as position [i] of [structure_thunks], which is what lets
   an incremental session substitute cached structures for stream
   positions without disturbing positional budget caps. Kept textually
   parallel to [expand] above; any change to one must mirror into the
   other. *)
type light_node = {
  l_depth : int;
  l_repr : int array;
  l_blocks : (int * int list) list;
}

let renamings ?(order = Partition.Fresh_first) plan =
  let n = plan.n in
  if n = 0 then Seq.return (Array.make (max n 1) (-1))
  else
    let light_root =
      { l_depth = 0; l_repr = Array.make (max n 1) (-1); l_blocks = [] }
    in
    let light_extend node choice =
      let c = node.l_depth in
      let repr = Array.copy node.l_repr in
      let blocks =
        match choice with
        | Fresh ->
          repr.(c) <- c;
          (c, [ c ]) :: node.l_blocks
        | Join i ->
          let r, _ = List.nth node.l_blocks i in
          repr.(c) <- r;
          List.mapi
            (fun j (br, ms) -> if j = i then (br, c :: ms) else (br, ms))
            node.l_blocks
      in
      { l_depth = c + 1; l_repr = repr; l_blocks = blocks }
    in
    let rec expand node () =
      let c = node.l_depth in
      let child choice : int array Seq.t =
        if c = n - 1 then Seq.return (light_extend node choice).l_repr
        else fun () -> expand (light_extend node choice) ()
      in
      let fresh = child Fresh in
      let joins =
        List.mapi
          (fun i (_, members) ->
            if
              List.for_all
                (fun d -> not (Symtab.distinct plan.tab c d))
                members
            then Some (child (Join i))
            else None)
          node.l_blocks
        |> List.filter_map Fun.id
      in
      let join_seq = Seq.concat (List.to_seq joins) in
      match order with
      | Partition.Fresh_first -> Seq.append fresh join_seq ()
      | Partition.Merge_first -> Seq.append join_seq fresh ()
    in
    expand light_root

(* --- whole images --------------------------------------------------- *)

let image plan map =
  let tab = plan.tab in
  let n = plan.n in
  let seen = Array.make (max n 1) false in
  Array.iter (fun e -> seen.(e) <- true) map;
  let count = ref 0 in
  for i = 0 to n - 1 do
    if seen.(i) then incr count
  done;
  let universe = Array.make !count 0 in
  let w = ref 0 in
  for i = 0 to n - 1 do
    if seen.(i) then begin
      universe.(!w) <- i;
      incr w
    end
  done;
  let rels =
    Array.init (Symtab.rel_count tab) (fun slot ->
        Irel.of_rows
          (Symtab.rel_arity tab slot)
          (List.map
             (fun args -> Array.map (fun a -> Array.unsafe_get map a) args)
             plan.facts_by_slot.(slot)))
  in
  { idb = { Idb.tab; interp = map; universe; rels }; rename = map }

let image_slot plan map slot =
  Irel.of_rows
    (Symtab.rel_arity plan.tab slot)
    (List.map
       (fun args -> Array.map (fun a -> Array.unsafe_get map a) args)
       plan.facts_by_slot.(slot))

let discrete plan = image plan (Array.init (max plan.n 1) Fun.id)

(* --- the naive-mapping stream --------------------------------------- *)

(* Mirrors [Mapping.all_respecting]: base-[n] counters enumerated in
   index order (digit [i] of the counter gives [h(c_i)]), filtered by
   the uniqueness axioms, with the cap checked in the same integer
   arithmetic and raising the same message. The respecting filter runs
   during enumeration; image construction is deferred to the thunk. *)
let mapping_thunks plan =
  let n = plan.n in
  if n = 0 then Seq.return (fun () -> discrete plan)
  else begin
    let total =
      let rec go acc i =
        if i = 0 then acc
        else if acc > mapping_cap / n then
          invalid_arg
            (Printf.sprintf
               "Mapping.all: %d^%d mappings exceeds the enumeration cap" n n)
        else go (acc * n) (i - 1)
      in
      go 1 n
    in
    let distinct = Symtab.distinct_pairs plan.tab in
    let of_index index =
      let map = Array.make n 0 in
      let v = ref index in
      for i = 0 to n - 1 do
        map.(i) <- !v mod n;
        v := !v / n
      done;
      map
    in
    let respects map =
      Array.for_all (fun (i, j) -> map.(i) <> map.(j)) distinct
    in
    Seq.init total of_index
    |> Seq.filter respects
    |> Seq.map (fun map () -> image plan map)
  end

(* The renaming mirror of [mapping_thunks]: the same counters, cap and
   filter, yielding the maps themselves. *)
let mapping_renamings plan =
  let n = plan.n in
  if n = 0 then Seq.return (Array.init (max n 1) Fun.id)
  else begin
    let total =
      let rec go acc i =
        if i = 0 then acc
        else if acc > mapping_cap / n then
          invalid_arg
            (Printf.sprintf
               "Mapping.all: %d^%d mappings exceeds the enumeration cap" n n)
        else go (acc * n) (i - 1)
      in
      go 1 n
    in
    let distinct = Symtab.distinct_pairs plan.tab in
    let of_index index =
      let map = Array.make n 0 in
      let v = ref index in
      for i = 0 to n - 1 do
        map.(i) <- !v mod n;
        v := !v / n
      done;
      map
    in
    let respects map =
      Array.for_all (fun (i, j) -> map.(i) <> map.(j)) distinct
    in
    Seq.init total of_index |> Seq.filter respects
  end
