module Certain = Vardi_certain.Engine
module Resilient = Vardi_resilience.Resilient

type code =
  | Ok
  | Parse_error
  | Semantic_error
  | Exhausted
  | Cancelled
  | Busy

let code_to_string = function
  | Ok -> "ok"
  | Parse_error -> "parse_error"
  | Semantic_error -> "semantic_error"
  | Exhausted -> "exhausted"
  | Cancelled -> "cancelled"
  | Busy -> "busy"

let code_of_string = function
  | "ok" -> Some Ok
  | "parse_error" -> Some Parse_error
  | "semantic_error" -> Some Semantic_error
  | "exhausted" -> Some Exhausted
  | "cancelled" -> Some Cancelled
  | "busy" -> Some Busy
  | _ -> None

type eval_options = {
  kernel : Certain.kernel;
  domains : int;
  policy : Resilient.policy;
  timeout : float option;
  max_structures : int option;
  max_evaluations : int option;
}

let default_options =
  {
    kernel = Certain.Interned;
    domains = 1;
    policy = Resilient.Fail;
    timeout = None;
    max_structures = None;
    max_evaluations = None;
  }

type request =
  | Load of { name : string; path : string }
  | Query of { db : string; query : string; opts : eval_options }
  | Boolean of { db : string; query : string; opts : eval_options }
  | Insert of { db : string; fact : string }
  | Retract of { db : string; fact : string }
  | Close_unknown of { db : string; left : string; right : string; equal : bool }
  | Stats
  | Close
  | Shutdown
  | Sleep of float

(* Decoding: shape problems (missing/ill-typed required fields,
   unknown op) are parse errors; recognized fields with meaningless
   values (unknown kernel name, non-positive cap) are semantic
   errors — same split as the CLI's 2-vs-2 is collapsed to, where
   cmdliner rejects both at parse time, but the wire needs to tell a
   client which layer to fix. *)

let ( let* ) = Result.bind
let result_ok v = Result.Ok v

let require_str j key ~code =
  match Json.str_field key j with
  | Some s -> result_ok s
  | None -> Error (Printf.sprintf "missing or non-string %S field" key, code)

let positive_int_field j key =
  match Json.member key j with
  | None -> result_ok None
  | Some (Json.Num f) when Float.is_integer f && f > 0. ->
    result_ok (Some (int_of_float f))
  | Some _ ->
    Error (Printf.sprintf "%S must be a positive integer" key, Semantic_error)

let options_of_json j =
  let* kernel =
    match Json.member "kernel" j with
    | None -> result_ok default_options.kernel
    | Some (Json.Str "interned") -> result_ok Certain.Interned
    | Some (Json.Str "strings") -> result_ok Certain.Strings
    | Some (Json.Str "compiled") -> result_ok Certain.Compiled
    | Some _ ->
      Error
        ( "\"kernel\" must be \"interned\", \"strings\" or \"compiled\"",
          Semantic_error )
  in
  let* policy =
    match Json.member "policy" j with
    | None -> result_ok default_options.policy
    | Some (Json.Str "fail") -> result_ok Resilient.Fail
    | Some (Json.Str "partial") -> result_ok Resilient.Partial
    | Some (Json.Str "approx") -> result_ok Resilient.Approx
    | Some _ ->
      Error
        ( "\"policy\" must be \"fail\", \"partial\" or \"approx\"",
          Semantic_error )
  in
  let* domains =
    let* d = positive_int_field j "domains" in
    result_ok (Option.value d ~default:default_options.domains)
  in
  let* timeout =
    match Json.member "timeout_ms" j with
    | None -> result_ok None
    | Some (Json.Num ms) when ms > 0. -> result_ok (Some (ms /. 1000.))
    | Some _ ->
      Error ("\"timeout_ms\" must be a positive number", Semantic_error)
  in
  let* max_structures = positive_int_field j "max_structures" in
  let* max_evaluations = positive_int_field j "max_evaluations" in
  result_ok
    { kernel; domains; policy; timeout; max_structures; max_evaluations }

let request_of_json j =
  match j with
  | Json.Obj _ -> (
    let* op = require_str j "op" ~code:Parse_error in
    match op with
    | "load" ->
      let* name = require_str j "db" ~code:Parse_error in
      let* path = require_str j "path" ~code:Parse_error in
      result_ok (Load { name; path })
    | "query" | "boolean" ->
      let* db = require_str j "db" ~code:Parse_error in
      let* query = require_str j "query" ~code:Parse_error in
      let* opts = options_of_json j in
      result_ok
        (if op = "query" then Query { db; query; opts }
         else Boolean { db; query; opts })
    | "insert" | "retract" ->
      let* db = require_str j "db" ~code:Parse_error in
      let* fact = require_str j "fact" ~code:Parse_error in
      result_ok
        (if op = "insert" then Insert { db; fact } else Retract { db; fact })
    | "close_unknown" ->
      let* db = require_str j "db" ~code:Parse_error in
      let* left = require_str j "left" ~code:Parse_error in
      let* right = require_str j "right" ~code:Parse_error in
      let* equal =
        match Json.member "to" j with
        | Some (Json.Str "distinct") -> result_ok false
        | Some (Json.Str "equal") -> result_ok true
        | Some (Json.Str _) ->
          (* Right shape, meaningless value: the semantic layer. *)
          Error ("\"to\" must be \"distinct\" or \"equal\"", Semantic_error)
        | Some _ | None ->
          Error ("missing or non-string \"to\" field", Parse_error)
      in
      result_ok (Close_unknown { db; left; right; equal })
    | "stats" -> result_ok Stats
    | "close" -> result_ok Close
    | "shutdown" -> result_ok Shutdown
    | "sleep" -> (
      match Json.num_field "ms" j with
      | Some ms when ms >= 0. -> result_ok (Sleep (ms /. 1000.))
      | _ -> Error ("\"sleep\" needs a non-negative \"ms\"", Parse_error))
    | op -> Error (Printf.sprintf "unknown op %S" op, Parse_error))
  | _ -> Error ("request must be a JSON object", Parse_error)

let error code msg =
  Json.Obj [ ("code", Json.Str (code_to_string code)); ("error", Json.Str msg) ]

let ok fields = Json.Obj (("code", Json.Str "ok") :: fields)
