module Certain = Vardi_certain.Engine
module Cancel = Vardi_certain.Cancel
module Domain_guard = Vardi_certain.Domain_guard
module Resilient = Vardi_resilience.Resilient
module Budget = Vardi_resilience.Budget
module Obs = Vardi_obs.Obs
module Query = Vardi_logic.Query
module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Parser = Vardi_logic.Parser
module Lexer = Vardi_logic.Lexer
module Session = Vardi_incr.Session
module Relation = Vardi_relational.Relation
module Cw_database = Vardi_cwdb.Cw_database
module Ty_database = Vardi_typed.Ty_database
module Ldb_format = Vardi_format.Ldb_format
module Tldb_format = Vardi_format.Tldb_format
module Wal = Vardi_durable.Wal
module Recovery = Vardi_durable.Recovery
module Store = Vardi_durable.Store

(* When set, every loaded database lives in a directory under
   [data_dir] with a write-ahead log and periodic snapshots, and
   startup recovers whatever the directory holds before the socket
   opens (see {!Vardi_durable}). *)
type durability = {
  data_dir : string;
  sync : Wal.sync;
  snapshot_every : int;
}

type config = {
  socket_path : string;
  workers : int;
  queue_capacity : int;
  debug_sleep : bool;
  preload : (string * string) list;
  durability : durability option;
}

let default_config =
  {
    socket_path = "ldb.sock";
    workers = 2;
    queue_capacity = 16;
    debug_sleep = false;
    preload = [];
    durability = None;
  }

(* --- one-shot synchronization between connection thread and worker - *)

type ivar = {
  iv_lock : Mutex.t;
  iv_filled : Condition.t;
  mutable iv_value : Json.t option;
}

let ivar () =
  { iv_lock = Mutex.create (); iv_filled = Condition.create (); iv_value = None }

let ivar_fill iv v =
  Mutex.lock iv.iv_lock;
  iv.iv_value <- Some v;
  Condition.signal iv.iv_filled;
  Mutex.unlock iv.iv_lock

let ivar_await iv =
  Mutex.lock iv.iv_lock;
  while iv.iv_value = None do
    Condition.wait iv.iv_filled iv.iv_lock
  done;
  let v = Option.get iv.iv_value in
  Mutex.unlock iv.iv_lock;
  v

(* --- server state -------------------------------------------------- *)

(* Each loaded database is resident as an incremental session: the
   interned symtab, quotient-structure cache and per-structure memos
   survive across requests and mutations. The generation is bumped on
   (re)load; mutation invalidation is finer and lives inside the
   session (see {!Vardi_incr.Session}). *)
type db_entry = {
  session : Session.t;
  generation : int;
  store : Store.t option;  (* [Some] iff the server runs durable *)
}

type state = {
  config : config;
  listener : Unix.file_descr;
  pool : Pool.t;
  cache : Plan_cache.t;
  dbs : (string, db_entry) Hashtbl.t;
  dbs_lock : Mutex.t;
  next_generation : int Atomic.t;
  requests : int Atomic.t;
  code_counts : (Protocol.code * int Atomic.t) list;
  stopping : bool Atomic.t;
  draining : bool Atomic.t;  (* SIGTERM: answer queued jobs first *)
  torn_down : bool Atomic.t;
  conns_lock : Mutex.t;
  mutable conns : (Thread.t * Unix.file_descr) list;
}

let all_codes =
  Protocol.
    [ Ok; Parse_error; Semantic_error; Exhausted; Cancelled; Busy ]

let count_response state (resp : Json.t) =
  Atomic.incr state.requests;
  Obs.count "serve.request" 1;
  match Option.bind (Json.str_field "code" resp) Protocol.code_of_string with
  | None -> ()
  | Some code ->
    Obs.count ("serve.code." ^ Protocol.code_to_string code) 1;
    List.iter
      (fun (c, n) -> if c = code then Atomic.incr n)
      state.code_counts

let lookup_db state name =
  Mutex.lock state.dbs_lock;
  let entry = Hashtbl.find_opt state.dbs name in
  Mutex.unlock state.dbs_lock;
  entry

(* --- request handlers ---------------------------------------------- *)

let install_entry state name entry =
  Mutex.lock state.dbs_lock;
  let previous = Hashtbl.find_opt state.dbs name in
  Hashtbl.replace state.dbs name entry;
  Mutex.unlock state.dbs_lock;
  (* A replaced durable entry's log descriptor is released after its
     final flush; the new entry's [Store.create] already started the
     fresh lineage on disk. *)
  match previous with
  | Some { store = Some old; _ } -> ( try Store.close old with _ -> ())
  | _ -> ()

let do_load state ~name ~path =
  match
    if Filename.check_suffix path ".tldb" then
      Ty_database.to_cw (Tldb_format.load path)
    else Ldb_format.load path
  with
  | db ->
    let generation = Atomic.fetch_and_add state.next_generation 1 in
    let entry =
      match state.config.durability with
      | None -> { session = Session.create db; generation; store = None }
      | Some d ->
        (* (Re)loading starts a fresh lineage: snapshot at seq 0, empty
           log — the previous directory contents are superseded. *)
        let dir = Recovery.db_dir ~data_dir:d.data_dir ~name in
        let store =
          Store.create ~dir ~sync:d.sync ~snapshot_every:d.snapshot_every db
        in
        { session = Store.session store; generation; store = Some store }
    in
    install_entry state name entry;
    Protocol.ok
      [
        ("db", Json.Str name);
        ("constants", Json.Num (float_of_int (List.length (Cw_database.constants db))));
        ("facts", Json.Num (float_of_int (List.length (Cw_database.facts db))));
        ("durable", Json.Bool (entry.store <> None));
      ]
  | exception Ldb_format.Syntax_error (line, msg) ->
    Protocol.error Protocol.Parse_error
      (Printf.sprintf "%s: syntax error at line %d: %s" path line msg)
  | exception Tldb_format.Syntax_error (line, msg) ->
    Protocol.error Protocol.Parse_error
      (Printf.sprintf "%s: syntax error at line %d: %s" path line msg)
  | exception Sys_error msg -> Protocol.error Protocol.Semantic_error msg
  | exception Invalid_argument msg ->
    Protocol.error Protocol.Semantic_error msg

let budget_of_options (opts : Protocol.eval_options) =
  Budget.make ?timeout:opts.timeout ?max_structures:opts.max_structures
    ?max_evaluations:opts.max_evaluations ()

let resilient_fields (rstats : Resilient.stats) extra =
  let base =
    [
      ("source", Json.Str (Resilient.source_to_string rstats.source));
      ("wall_ms", Json.Num (Int64.to_float rstats.wall_ns /. 1e6));
    ]
  in
  let tripped =
    match rstats.tripped with
    | Some r -> [ ("tripped", Json.Str (Cancel.reason_to_string r)) ]
    | None -> []
  in
  let scan =
    match rstats.scan with
    | Some s ->
      [
        ("structures", Json.Num (float_of_int s.Certain.structures));
        ("evaluations", Json.Num (float_of_int s.Certain.evaluations));
      ]
    | None -> []
  in
  base @ tripped @ scan @ extra

let exhausted_response rstats =
  match
    Protocol.error Protocol.Exhausted "budget exhausted under policy fail"
  with
  | Json.Obj fields -> Json.Obj (fields @ resilient_fields rstats [])
  | other -> other

let rows_of_relation r =
  Json.List
    (List.map
       (fun tuple -> Json.List (List.map (fun c -> Json.Str c) tuple))
       (Relation.tuples r))

(* The evaluation job proper — runs on a pool worker domain. Must not
   raise: every outcome, including engine Invalid_argument, becomes a
   protocol response. *)
let evaluate state ~want_boolean ~(opts : Protocol.eval_options) entry ~db_name
    ~query_text q =
  Obs.span "serve.evaluate" (fun () ->
      try
        let session = entry.session in
        (* The delta epoch is sampled before preparing; a mutation
           racing between the sample and the prepare can bind a plan
           keyed at epoch [n] to view [n+1] — harmless, since every
           plan is bound to a single consistent view and the next
           post-mutation lookup misses on the new epoch anyway. *)
        let delta = Session.delta_epoch session in
        let prepared, cache_verdict =
          Plan_cache.find_or_prepare state.cache ~db_name
            ~generation:entry.generation ~delta ~query_text
            ~kernel:opts.kernel (fun () ->
              match opts.kernel with
              | Certain.Interned -> Session.prepare session q
              | Certain.Compiled ->
                Session.prepare ~kernel:Certain.Compiled session q
              | Certain.Strings ->
                Certain.prepare ~kernel:Certain.Strings (Session.db session) q)
        in
        let cache_field =
          ( "cache",
            Json.Str (match cache_verdict with `Hit -> "hit" | `Miss -> "miss")
          )
        in
        let delta_field = ("delta", Json.Num (float_of_int delta)) in
        let budget = budget_of_options opts in
        let qualified_tag = function
          | Resilient.Exact _ -> "exact"
          | Resilient.Lower_bound _ -> "lower_bound"
          | Resilient.Upper_bound _ -> "upper_bound"
          | Resilient.Exhausted -> assert false
        in
        if want_boolean || Query.is_boolean q then begin
          let qualified, rstats =
            Resilient.prepared_boolean_stats ~policy:opts.policy
              ~domains:opts.domains ~budget prepared
          in
          match qualified with
          | Resilient.Exhausted -> exhausted_response rstats
          | Resilient.Exact v | Resilient.Lower_bound v
          | Resilient.Upper_bound v ->
            Protocol.ok
              (resilient_fields rstats
                 [
                   ("value", Json.Bool v);
                   ("qualified", Json.Str (qualified_tag qualified));
                   cache_field;
                   delta_field;
                 ])
        end
        else begin
          let qualified, rstats =
            Resilient.prepared_answer_stats ~policy:opts.policy
              ~domains:opts.domains ~budget prepared
          in
          match qualified with
          | Resilient.Exhausted -> exhausted_response rstats
          | Resilient.Exact r | Resilient.Lower_bound r
          | Resilient.Upper_bound r ->
            Protocol.ok
              (resilient_fields rstats
                 [
                   ("rows", rows_of_relation r);
                   ("cardinality", Json.Num (float_of_int (Relation.cardinal r)));
                   ("qualified", Json.Str (qualified_tag qualified));
                   cache_field;
                   delta_field;
                 ])
        end
      with
      | Invalid_argument msg -> Protocol.error Protocol.Semantic_error msg
      | Sys.Break as e -> raise e
      | e ->
        Protocol.error Protocol.Semantic_error
          ("internal error: " ^ Printexc.to_string e))

(* Submit a job and wait for its response on this connection thread.
   Worker domains multiplex across all in-flight requests; this thread
   just parks on the ivar. *)
let submit_and_wait state job =
  let iv = ivar () in
  match
    Pool.submit state.pool (fun ~cancelled ->
        let resp =
          if cancelled then
            Protocol.error Protocol.Cancelled "server shutting down"
          else job ()
        in
        ivar_fill iv resp)
  with
  | `Accepted -> ivar_await iv
  | `Busy -> Protocol.error Protocol.Busy "request queue full"
  | `Stopping -> Protocol.error Protocol.Cancelled "server shutting down"

let do_eval state ~want_boolean ~db_name ~query_text ~opts =
  match lookup_db state db_name with
  | None ->
    Protocol.error Protocol.Semantic_error
      (Printf.sprintf "unknown database %S (load it first)" db_name)
  | Some entry -> (
    match Parser.query query_text with
    | exception Parser.Parse_error (pos, msg) ->
      Protocol.error Protocol.Parse_error
        (Printf.sprintf "query syntax error at offset %d: %s" pos msg)
    | exception Lexer.Lex_error (pos, msg) ->
      Protocol.error Protocol.Parse_error
        (Printf.sprintf "query lexical error at offset %d: %s" pos msg)
    | q ->
      if want_boolean && not (Query.is_boolean q) then
        Protocol.error Protocol.Semantic_error
          "op \"boolean\" requires a Boolean query (empty head)"
      else
        submit_and_wait state (fun () ->
            evaluate state ~want_boolean ~opts entry ~db_name ~query_text q))

(* --- mutations ------------------------------------------------------

   Mutations run on the connection thread: they are cheap (a symtab
   reuse or rebuild, never a scan), and the session serializes them
   internally, so there is no reason to pay the pool round-trip. *)

let parse_fact text =
  match Parser.formula text with
  | exception Parser.Parse_error (pos, msg) ->
    Error
      ( Printf.sprintf "fact syntax error at offset %d: %s" pos msg,
        Protocol.Parse_error )
  | exception Lexer.Lex_error (pos, msg) ->
    Error
      ( Printf.sprintf "fact lexical error at offset %d: %s" pos msg,
        Protocol.Parse_error )
  | Formula.Atom (p, ts) when List.for_all Term.is_const ts ->
    Result.Ok
      {
        Cw_database.pred = p;
        args =
          List.filter_map
            (function Term.Const c -> Some c | Term.Var _ -> None)
            ts;
      }
  | _ ->
    Error
      ( "\"fact\" must be a ground atom, e.g. \"P(a, b)\"",
        Protocol.Semantic_error )

let mutation_ok ~db_name entry =
  let session = entry.session in
  let db = Session.db session in
  Protocol.ok
    [
      ("db", Json.Str db_name);
      ("delta", Json.Num (float_of_int (Session.delta_epoch session)));
      ("facts", Json.Num (float_of_int (List.length (Cw_database.facts db))));
      ( "constants",
        Json.Num (float_of_int (List.length (Cw_database.constants db))) );
      (* the durability promise this very ack carries: [true] means the
         mutation was in the write-ahead log before this response *)
      ("durable", Json.Bool (entry.store <> None));
    ]

(* The write-ahead discipline lives in [Store.commit]: the record is
   logged (and synced per the --sync policy) before the session moves
   and before the [ok] below is written. Without durability the
   session applies directly, as before. *)
let commit_mutation entry (m : Session.mutation) =
  match entry.store with
  | Some store -> ignore (Store.commit store m)
  | None -> ignore (Session.apply entry.session m)

let with_db state db_name f =
  match lookup_db state db_name with
  | None ->
    Protocol.error Protocol.Semantic_error
      (Printf.sprintf "unknown database %S (load it first)" db_name)
  | Some entry -> (
    match f entry with
    | resp -> resp
    | exception Invalid_argument msg ->
      Protocol.error Protocol.Semantic_error msg)

let do_fact_mutation state ~db_name ~fact_text wrap =
  with_db state db_name (fun entry ->
      match parse_fact fact_text with
      | Error (msg, code) -> Protocol.error code msg
      | Result.Ok fact ->
        commit_mutation entry (wrap fact);
        mutation_ok ~db_name entry)

let do_close_unknown state ~db_name ~left ~right ~equal =
  with_db state db_name (fun entry ->
      commit_mutation entry (Session.Close { left; right; equal });
      mutation_ok ~db_name entry)

let do_stats state =
  let hits, misses, entries = Plan_cache.stats state.cache in
  Mutex.lock state.dbs_lock;
  let named =
    Hashtbl.fold (fun name entry acc -> (name, entry) :: acc) state.dbs []
  in
  Mutex.unlock state.dbs_lock;
  let names = List.map fst named in
  Protocol.ok
    [
      ("requests", Json.Num (float_of_int (Atomic.get state.requests)));
      ( "codes",
        Json.Obj
          (List.map
             (fun (c, n) ->
               ( Protocol.code_to_string c,
                 Json.Num (float_of_int (Atomic.get n)) ))
             state.code_counts) );
      ( "plan_cache",
        Json.Obj
          [
            ("hits", Json.Num (float_of_int hits));
            ("misses", Json.Num (float_of_int misses));
            ("entries", Json.Num (float_of_int entries));
          ] );
      ( "dbs",
        Json.List
          (List.map (fun n -> Json.Str n) (List.sort compare names)) );
      ( "sessions",
        Json.Obj
          (List.map
             (fun (name, entry) ->
               let s = Session.stats entry.session in
               let num n = Json.Num (float_of_int n) in
               let durable_fields =
                 match entry.store with
                 | None -> []
                 | Some store ->
                   let c = Store.wal_counters store in
                   [
                     ("seq", num (Store.seq store));
                     ("wal_appends", num c.Wal.c_appends);
                     ("wal_fsyncs", num c.Wal.c_fsyncs);
                     ("wal_bytes", num c.Wal.c_bytes);
                     ("snapshots", num (Store.snapshots store));
                   ]
               in
               ( name,
                 Json.Obj
                   ([
                      ("delta", num s.Session.s_delta_epoch);
                      ("memo_hits", num s.Session.s_memo_hits);
                      ("memo_misses", num s.Session.s_memo_misses);
                      ("slot_reuses", num s.Session.s_slot_reuses);
                      ("slot_rebuilds", num s.Session.s_slot_rebuilds);
                      ("structures_cached", num s.Session.s_structures_cached);
                    ]
                   @ durable_fields) ))
             (List.sort compare named)) );
      ("durable", Json.Bool (state.config.durability <> None));
      ("workers", Json.Num (float_of_int (Pool.workers state.pool)));
      ( "queue_capacity",
        Json.Num (float_of_int (Pool.queue_capacity state.pool)) );
    ]

(* Shutdown only flips the flag: the accept loop polls it between
   short [select] waits (closing the listener from this connection
   thread would not reliably wake a thread already blocked in
   [accept]). The loop exits, and the main thread runs the full
   teardown — pool stop, connection drain, joins. *)
let request_shutdown state = Atomic.set state.stopping true

(* Returns (response, keep_connection_open). *)
let process state line =
  match Json.parse line with
  | exception Json.Parse_error msg ->
    (Protocol.error Protocol.Parse_error msg, true)
  | j -> (
    match Protocol.request_of_json j with
    | Error (msg, code) -> (Protocol.error code msg, true)
    | Ok (Protocol.Load { name; path }) -> (do_load state ~name ~path, true)
    | Ok (Protocol.Query { db; query; opts }) ->
      (do_eval state ~want_boolean:false ~db_name:db ~query_text:query ~opts, true)
    | Ok (Protocol.Boolean { db; query; opts }) ->
      (do_eval state ~want_boolean:true ~db_name:db ~query_text:query ~opts, true)
    | Ok (Protocol.Insert { db; fact }) ->
      ( do_fact_mutation state ~db_name:db ~fact_text:fact (fun f ->
            Session.Insert f),
        true )
    | Ok (Protocol.Retract { db; fact }) ->
      ( do_fact_mutation state ~db_name:db ~fact_text:fact (fun f ->
            Session.Retract f),
        true )
    | Ok (Protocol.Close_unknown { db; left; right; equal }) ->
      (do_close_unknown state ~db_name:db ~left ~right ~equal, true)
    | Ok Protocol.Stats -> (do_stats state, true)
    | Ok Protocol.Close -> (Protocol.ok [ ("closing", Json.Bool true) ], false)
    | Ok Protocol.Shutdown ->
      request_shutdown state;
      (Protocol.ok [ ("shutting_down", Json.Bool true) ], false)
    | Ok (Protocol.Sleep seconds) ->
      if not state.config.debug_sleep then
        ( Protocol.error Protocol.Semantic_error
            "op \"sleep\" requires --debug-sleep",
          true )
      else
        ( submit_and_wait state (fun () ->
              Unix.sleepf seconds;
              Protocol.ok [ ("slept_ms", Json.Num (seconds *. 1000.)) ]),
          true ))

(* --- connections --------------------------------------------------- *)

let handle_connection state fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (* Teardown runs on every exit path — normal close, client vanishing
     mid-line, a write hitting a closed peer, server shutdown cutting
     the descriptor — and always flushes the ambient trace sink so a
     long-lived daemon never strands buffered JSON-lines events. *)
  Fun.protect
    ~finally:(fun () ->
      Obs.flush ();
      close_out_noerr oc)
    (fun () ->
      let rec loop () =
        match input_line ic with
        | exception (End_of_file | Sys_error _) -> ()
        | line when String.trim line = "" -> loop ()
        | line ->
          let resp, keep_open = process state line in
          count_response state resp;
          (match
             output_string oc (Json.to_string resp);
             output_char oc '\n';
             flush oc
           with
          | () -> Obs.flush (); if keep_open then loop ()
          | exception Sys_error _ -> ())
      in
      loop ())

(* Registration holds the lock across [Thread.create]: a handler that
   finishes instantly blocks in its unregister until the entry exists,
   so the list never leaks an entry for a thread that already died.

   The thread is created under a SIGINT mask it then inherits: Ctrl-C
   must only ever be delivered to the accept loop's thread, which owns
   teardown. A [Sys.Break] raised inside a connection thread (or a
   pool worker — {!Pool} masks the same way) would kill just that
   thread and leave the server running with no one to interrupt. *)
let register_connection state fd handler =
  let parked = ref None in
  Domain_guard.masked
    ~park:(fun e -> if !parked = None then parked := Some e)
    (fun () ->
      Mutex.lock state.conns_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock state.conns_lock)
        (fun () ->
          let thread = Thread.create handler () in
          state.conns <- (thread, fd) :: state.conns));
  match !parked with Some e -> raise e | None -> ()

let unregister_connection state fd =
  Mutex.lock state.conns_lock;
  state.conns <- List.filter (fun (_, fd') -> fd' <> fd) state.conns;
  Mutex.unlock state.conns_lock

(* --- lifecycle ----------------------------------------------------- *)

let teardown state =
  if not (Atomic.exchange state.torn_down true) then begin
    Atomic.set state.stopping true;
    (try Unix.close state.listener with Unix.Unix_error _ -> ());
    (* Stop the pool first: queued jobs get their [cancelled]
       responses — or, on the SIGTERM drain path, their real ones —
       in-flight jobs finish, worker domains are joined; after this no
       domain is alive. *)
    Pool.stop ~drain:(Atomic.get state.draining) state.pool;
    (* Cut idle connections blocked in [input_line], then join every
       connection thread so their teardown (flush + close) has run
       before the process exits. *)
    Mutex.lock state.conns_lock;
    let conns = state.conns in
    Mutex.unlock state.conns_lock;
    List.iter
      (fun (_, fd) ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (thread, _) -> Thread.join thread) conns;
    (* Every shutdown path parts with a checkpoint: acked mutations are
       already safe in the WAL, but a fresh snapshot + reset log makes
       the next startup replay-free. *)
    Mutex.lock state.dbs_lock;
    let entries = Hashtbl.fold (fun _ e acc -> e :: acc) state.dbs [] in
    Mutex.unlock state.dbs_lock;
    List.iter
      (fun entry ->
        match entry.store with
        | None -> ()
        | Some store ->
          (try Store.checkpoint store with _ -> ());
          (try Store.close store with _ -> ()))
      entries;
    (try Unix.unlink state.config.socket_path with Unix.Unix_error _ -> ());
    Obs.flush ()
  end

(* A leftover socket file is only removed after proving no server is
   behind it: connect succeeding means one is (refuse loudly — a blind
   unlink would steal its clients); ECONNREFUSED means the previous
   daemon died without its teardown (crash, kill -9) and left the name
   dangling. Anything that is not a socket is never touched. *)
let remove_stale_socket path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect fd (Unix.ADDR_UNIX path) with
          | () -> `Live
          | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Dead
          | exception Unix.Unix_error (e, _, _) -> `Unknown e)
    in
    match verdict with
    | `Dead -> Unix.unlink path
    | `Live ->
      invalid_arg
        (Printf.sprintf
           "%s: a server is already listening on this socket; shut it down \
            first or pick a different --socket"
           path)
    | `Unknown e ->
      invalid_arg
        (Printf.sprintf "%s: cannot probe existing socket (%s); remove it \
                         manually if the server is gone"
           path (Unix.error_message e)))
  | _ ->
    invalid_arg
      (Printf.sprintf
         "%s: refusing to replace an existing non-socket file" path)

let recover_data_dir state (d : durability) =
  List.iter
    (fun name ->
      let dir = Recovery.db_dir ~data_dir:d.data_dir ~name in
      let store, report =
        Store.open_ ~dir ~sync:d.sync ~snapshot_every:d.snapshot_every ()
      in
      Obs.count "serve.recovered" 1;
      if report.Recovery.r_torn_bytes > 0 then
        Obs.count "serve.recovered.torn" 1;
      let generation = Atomic.fetch_and_add state.next_generation 1 in
      install_entry state name
        { session = Store.session store; generation; store = Some store })
    (Recovery.list ~data_dir:d.data_dir)

let run config =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  remove_stale_socket config.socket_path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let state =
    match
      Unix.bind listener (Unix.ADDR_UNIX config.socket_path);
      Unix.listen listener 64
    with
    | () ->
      {
        config;
        listener;
        pool =
          Pool.create ~workers:config.workers
            ~queue_capacity:config.queue_capacity ();
        cache = Plan_cache.create ();
        dbs = Hashtbl.create 8;
        dbs_lock = Mutex.create ();
        next_generation = Atomic.make 0;
        requests = Atomic.make 0;
        code_counts = List.map (fun c -> (c, Atomic.make 0)) all_codes;
        stopping = Atomic.make false;
        draining = Atomic.make false;
        torn_down = Atomic.make false;
        conns_lock = Mutex.create ();
        conns = [];
      }
    | exception e ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      raise e
  in
  Fun.protect
    ~finally:(fun () -> teardown state)
    (fun () ->
      (* SIGTERM = graceful drain: flip the flags and let the accept
         loop notice — teardown then waits for queued jobs, answers
         them, checkpoints every durable store, and [run] returns
         normally (exit 0). SIGINT keeps its Sys.Break path. *)
      (try
         Sys.set_signal Sys.sigterm
           (Sys.Signal_handle
              (fun _ ->
                Atomic.set state.draining true;
                Atomic.set state.stopping true))
       with Invalid_argument _ -> ());
      (* Recovery precedes the first accept: every database directory
         under the data dir is resident — snapshot loaded, WAL tail
         replayed — before any client can ask. Unrecoverable corruption
         (Recovery.Corrupt) propagates and fails startup. *)
      (match config.durability with
      | Some d -> recover_data_dir state d
      | None -> ());
      (* Preloads fail fast: a server that can't load its databases
         should die at startup, through the CLI's usual error path.
         A name recovery already restored is NOT reloaded — restarting
         with the same command line must keep the recovered mutations,
         not reset the database to its seed file. *)
      List.iter
        (fun (name, path) ->
          if lookup_db state name = None then
            match do_load state ~name ~path with
            | Json.Obj fields when List.assoc_opt "error" fields <> None ->
              let msg =
                match List.assoc_opt "error" fields with
                | Some (Json.Str m) -> m
                | _ -> "preload failed"
              in
              invalid_arg (Printf.sprintf "--db %s=%s: %s" name path msg)
            | _ -> ())
        config.preload;
      Obs.count "serve.start" 1;
      (* [select] with a short timeout instead of a bare blocking
         [accept]: a [shutdown] request arrives on a connection thread
         and only flips [stopping], so the loop must wake on its own
         to notice. [accept] after a readable [select] cannot block. *)
      let rec accept_loop () =
        if not (Atomic.get state.stopping) then
          match Unix.select [ state.listener ] [] [] 0.1 with
          | [], _, _ -> accept_loop ()
          | _ :: _, _, _ -> (
            match Unix.accept state.listener with
            | fd, _ ->
              if Atomic.get state.stopping then (
                try Unix.close fd with Unix.Unix_error _ -> ())
              else begin
                register_connection state fd (fun () ->
                    Fun.protect
                      ~finally:(fun () -> unregister_connection state fd)
                      (fun () -> handle_connection state fd));
                accept_loop ()
              end
            | exception
                Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
              accept_loop ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      in
      accept_loop ())
