module Certain = Vardi_certain.Engine
module Obs = Vardi_obs.Obs

type key = {
  db_name : string;
  generation : int;
  delta : int;
  query_text : string;
  kernel : Certain.kernel;
}

type t = {
  lock : Mutex.t;
  table : (key, Certain.prepared) Hashtbl.t;
  capacity : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    capacity;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let locked cache f =
  Mutex.lock cache.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache.lock) f

let find_or_prepare cache ~db_name ~generation ~delta ~query_text ~kernel
    prepare =
  let key = { db_name; generation; delta; query_text; kernel } in
  match locked cache (fun () -> Hashtbl.find_opt cache.table key) with
  | Some prepared ->
    Atomic.incr cache.hits;
    Obs.count "serve.plan_cache.hit" 1;
    (prepared, `Hit)
  | None ->
    Atomic.incr cache.misses;
    Obs.count "serve.plan_cache.miss" 1;
    (* Prepare outside the lock: compilation can be slow and must not
       stall every other worker's lookups. *)
    let prepared = prepare () in
    locked cache (fun () ->
        if
          Hashtbl.length cache.table >= cache.capacity
          && not (Hashtbl.mem cache.table key)
        then Hashtbl.reset cache.table;
        Hashtbl.replace cache.table key prepared);
    (prepared, `Miss)

let stats cache =
  ( Atomic.get cache.hits,
    Atomic.get cache.misses,
    locked cache (fun () -> Hashtbl.length cache.table) )
