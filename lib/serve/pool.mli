(** The serve layer's shared domain pool: a fixed set of OCaml 5
    worker domains draining one bounded request queue.

    This is the admission-control half of the server. Connection
    threads {!submit} jobs; a full queue answers [`Busy] immediately
    (the protocol's backpressure code) instead of letting latency grow
    without bound, and a stopping pool answers [`Stopping]. Workers
    are spawned and joined through {!Vardi_certain.Domain_guard} — the
    same SIGINT discipline as the engine's scan scheduler, so Ctrl-C
    during a served query never orphans a domain.

    A job is a closure [cancelled:bool -> unit]: it runs with
    [~cancelled:false] on a worker, or with [~cancelled:true] (on the
    stopping thread) if the pool shuts down before the job was
    claimed — the server uses that to answer queued requests with the
    [cancelled] protocol code rather than dropping them silently. Jobs
    must not raise; an escaped exception is caught, counted
    ([serve.pool.job_error]) and dropped. *)

type t

(** [create ~workers ~queue_capacity ()] spawns [workers] (>= 1)
    domains over a queue holding at most [queue_capacity] (>= 1)
    waiting jobs (jobs being executed don't count against it). *)
val create : workers:int -> queue_capacity:int -> unit -> t

val submit :
  t -> (cancelled:bool -> unit) -> [ `Accepted | `Busy | `Stopping ]

(** [stop pool] rejects further submissions, runs every still-queued
    job with [~cancelled:true], lets in-flight jobs finish, and joins
    all worker domains before returning. Idempotent.

    [~drain:true] is the graceful variant (the server's SIGTERM path):
    new submissions are refused ([`Stopping]) immediately, but jobs
    already queued are left for the workers and [stop] waits until the
    queue is empty before shutting down — every accepted job gets its
    real response instead of a [cancelled] one. *)
val stop : ?drain:bool -> t -> unit

val workers : t -> int
val queue_capacity : t -> int
