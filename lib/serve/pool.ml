module Domain_guard = Vardi_certain.Domain_guard
module Obs = Vardi_obs.Obs

type job = cancelled:bool -> unit

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  emptied : Condition.t;
      (* broadcast whenever a worker pops the queue empty; [stop ~drain]
         waits on it so queued jobs get real answers before shutdown *)
  queue : job Queue.t;
  queue_capacity : int;
  mutable stopping : bool;
  mutable draining : bool;
  mutable domains : unit Domain.t list;
  workers : int;
}

let run_job job ~cancelled =
  try job ~cancelled
  with e ->
    (* The job owns its own error reporting (it writes a protocol
       response); anything escaping here is a server bug, and a worker
       that dies takes 1/workers of the capacity with it — so count
       and keep draining. *)
    ignore e;
    Obs.count "serve.pool.job_error" 1

let worker_loop pool () =
  Mutex.lock pool.lock;
  let rec loop () =
    if not (Queue.is_empty pool.queue) then begin
      let job = Queue.pop pool.queue in
      if Queue.is_empty pool.queue then Condition.broadcast pool.emptied;
      Mutex.unlock pool.lock;
      run_job job ~cancelled:false;
      Mutex.lock pool.lock;
      loop ()
    end
    else if pool.stopping then Mutex.unlock pool.lock
    else begin
      Condition.wait pool.nonempty pool.lock;
      loop ()
    end
  in
  loop ()

let create ~workers ~queue_capacity () =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Pool.create: queue_capacity must be >= 1";
  let pool =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      emptied = Condition.create ();
      queue = Queue.create ();
      queue_capacity;
      stopping = false;
      draining = false;
      domains = [];
      workers;
    }
  in
  let parked = Atomic.make None in
  let park e = ignore (Atomic.compare_and_set parked None (Some e)) in
  pool.domains <- Domain_guard.spawn_list ~park workers (worker_loop pool);
  (match Atomic.get parked with Some e -> raise e | None -> ());
  pool

let submit pool job =
  Mutex.lock pool.lock;
  let verdict =
    if pool.stopping || pool.draining then `Stopping
    else if Queue.length pool.queue >= pool.queue_capacity then `Busy
    else begin
      Queue.push job pool.queue;
      Condition.signal pool.nonempty;
      `Accepted
    end
  in
  Mutex.unlock pool.lock;
  (match verdict with
  | `Busy -> Obs.count "serve.pool.busy" 1
  | `Accepted | `Stopping -> ());
  verdict

let stop ?(drain = false) pool =
  Mutex.lock pool.lock;
  if pool.stopping then Mutex.unlock pool.lock
  else begin
    if drain then begin
      (* Graceful path (SIGTERM): refuse new work but let the workers
         answer everything already accepted before we claim the queue —
         after the wait below it is empty, so the orphan sweep finds
         nothing and every queued job got a real response. *)
      pool.draining <- true;
      while not (Queue.is_empty pool.queue) do
        Condition.wait pool.emptied pool.lock
      done
    end;
    pool.stopping <- true;
    (* Claim every not-yet-started job while holding the lock, so each
       job is run exactly once: either by a worker (~cancelled:false)
       or here (~cancelled:true). *)
    let orphaned = ref [] in
    while not (Queue.is_empty pool.queue) do
      orphaned := Queue.pop pool.queue :: !orphaned
    done;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    List.iter (fun job -> run_job job ~cancelled:true) (List.rev !orphaned);
    let parked = Atomic.make None in
    let park e = ignore (Atomic.compare_and_set parked None (Some e)) in
    Domain_guard.join_list ~park pool.domains;
    pool.domains <- [];
    match Atomic.get parked with Some e -> raise e | None -> ()
  end

let workers pool = pool.workers
let queue_capacity pool = pool.queue_capacity
