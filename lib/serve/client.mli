(** Minimal blocking client for the serve protocol — what the tests,
    the [bench --serve] load generator and the CI smoke driver speak.
    One request line out, one response line back, in order. *)

type t

(** [connect path] connects to the Unix-domain socket at [path].
    @raise Unix.Unix_error when nothing is listening. *)
val connect : string -> t

(** [connect_retry ?attempts ?delay path] retries {!connect} while the
    server is still starting up ([ENOENT]/[ECONNREFUSED]), sleeping
    [delay] seconds (default [0.05]) between the [attempts] (default
    [100]) tries. *)
val connect_retry : ?attempts:int -> ?delay:float -> string -> t

(** [request c j] sends one request and blocks for its response line.
    @raise End_of_file if the server closed the connection first.
    @raise Json.Parse_error on a malformed response (server bug). *)
val request : t -> Json.t -> Json.t

(** [request_line c line] sends a raw line — deliberately malformed
    requests for protocol tests. *)
val request_line : t -> string -> Json.t

val close : t -> unit
