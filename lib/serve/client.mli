(** Minimal blocking client for the serve protocol — what the tests,
    the [bench --serve] load generator and the CI smoke driver speak.
    One request line out, one response line back, in order.

    {2 Retries}

    Both retry surfaces use capped exponential backoff with full
    jitter (cap 2 s): attempt [n] sleeps uniformly in
    [[cap_n/2, cap_n]] with [cap_n = min (backoff_ms * 2^n) 2000] ms.
    They retry only outcomes that provably did not execute the
    request: a refused/absent socket on {!connect}, a received [busy]
    response on {!request_retry}. A connection dropped {e after} a
    request was written ([End_of_file]) is never retried here — the
    server may have committed a mutation before dying, and resending
    would double-apply it; that ambiguity is the caller's to resolve
    (see PROTOCOL.md, "Retries and idempotency"). *)

type t

(** [connect ?retries ?backoff_ms path] connects to the Unix-domain
    socket at [path]. With [retries = 0] (default) a single attempt;
    otherwise up to [retries] additional attempts on
    [ENOENT]/[ECONNREFUSED] with backoff from [backoff_ms] (default
    25).
    @raise Unix.Unix_error when the last attempt still fails. *)
val connect : ?retries:int -> ?backoff_ms:int -> string -> t

(** [connect_retry ?attempts ?delay path] retries {!connect} while the
    server is still starting up ([ENOENT]/[ECONNREFUSED]), sleeping a
    fixed [delay] seconds (default [0.05]) between the [attempts]
    (default [100]) tries — the test harness's simpler knob. *)
val connect_retry : ?attempts:int -> ?delay:float -> string -> t

(** [request c j] sends one request and blocks for its response line.
    @raise End_of_file if the server closed the connection first.
    @raise Json.Parse_error on a malformed response (server bug). *)
val request : t -> Json.t -> Json.t

(** [request_retry ?retries ?backoff_ms c j] is {!request}, resending
    (up to [retries] times, default [0]) when the response is the
    [busy] backpressure code. Safe for mutations: [busy] means the
    request was never admitted. *)
val request_retry : ?retries:int -> ?backoff_ms:int -> t -> Json.t -> Json.t

(** [request_line c line] sends a raw line — deliberately malformed
    requests for protocol tests. *)
val request_line : t -> string -> Json.t

val close : t -> unit
