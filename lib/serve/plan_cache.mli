(** Shared plan cache: one {!Vardi_certain.Engine.prepared} per
    (database, query text, kernel), reused across requests, clients
    and worker domains.

    The key is [(db name, generation, query, kernel)]. The generation
    is bumped by the server every time a name is (re)loaded, so a
    reload naturally invalidates every plan prepared against the old
    vocabulary and data — stale entries are dropped lazily on the next
    lookup miss sweep. Prepared values are immutable
    ({!Vardi_certain.Engine.prepare}), so a cached plan may be
    evaluated concurrently from any number of pool workers.

    Hits and misses are counted and surfaced both through {!stats} (the
    serve [stats] op) and as {!Vardi_obs.Obs} counters
    [serve.plan_cache.hit] / [serve.plan_cache.miss]. *)

type t

(** [create ?capacity ()] — [capacity] (default [256]) bounds the
    number of resident plans; on overflow the whole table is dropped
    (plans are cheap to rebuild relative to scans, and the bound only
    exists to keep a pathological client from growing the table
    without limit). *)
val create : ?capacity:int -> unit -> t

(** [find_or_prepare cache ~db_name ~generation ~query_text ~kernel
    lb q] returns the cached plan for the key, or prepares, caches and
    returns a fresh one. The preparation itself runs outside the cache
    lock — two racing misses on the same key may both prepare, and the
    later insert wins; both plans are valid.
    @raise Invalid_argument as {!Vardi_certain.Engine.prepare}. *)
val find_or_prepare :
  t ->
  db_name:string ->
  generation:int ->
  query_text:string ->
  kernel:Vardi_certain.Engine.kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  Vardi_certain.Engine.prepared * [ `Hit | `Miss ]

(** [(hits, misses, entries)] since {!create}. *)
val stats : t -> int * int * int
