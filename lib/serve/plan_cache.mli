(** Shared plan cache: one {!Vardi_certain.Engine.prepared} per
    (database, query text, kernel), reused across requests, clients
    and worker domains.

    The key is [(db name, generation, delta epoch, query, kernel)] —
    two-level invalidation:

    - The {e generation} is bumped by the server every time a name is
      (re)loaded, so a reload invalidates every plan prepared against
      the old vocabulary and data.
    - The {e delta epoch} is the resident session's mutation counter
      ([Vardi_incr.Session.delta_epoch]). A mutation moves it, so the
      next lookup re-binds the query against the post-delta view — but
      unlike a generation bump, this is cheap: the heavy state (the
      symtab, the quotient-structure cache, the per-structure memos)
      persists {e inside} the session and is invalidated selectively,
      per slot the delta touched; re-binding costs one query
      compilation, not a rescan.

    Stale entries under either key component are dropped lazily by the
    capacity sweep. Prepared values are immutable, so a cached plan may
    be evaluated concurrently from any number of pool workers.

    Hits and misses are counted and surfaced both through {!stats} (the
    serve [stats] op) and as {!Vardi_obs.Obs} counters
    [serve.plan_cache.hit] / [serve.plan_cache.miss]. *)

type t

(** [create ?capacity ()] — [capacity] (default [256]) bounds the
    number of resident plans; on overflow the whole table is dropped
    (plans are cheap to rebuild relative to scans, and the bound only
    exists to keep a pathological client from growing the table
    without limit). *)
val create : ?capacity:int -> unit -> t

(** [find_or_prepare cache ~db_name ~generation ~delta ~query_text
    ~kernel prepare] returns the cached plan for the key, or calls
    [prepare ()], caches and returns the fresh plan. The preparation
    runs outside the cache lock — two racing misses on the same key may
    both prepare, and the later insert wins; both plans are valid.
    @raise Invalid_argument as the supplied [prepare]. *)
val find_or_prepare :
  t ->
  db_name:string ->
  generation:int ->
  delta:int ->
  query_text:string ->
  kernel:Vardi_certain.Engine.kernel ->
  (unit -> Vardi_certain.Engine.prepared) ->
  Vardi_certain.Engine.prepared * [ `Hit | `Miss ]

(** [(hits, misses, entries)] since {!create}. *)
val stats : t -> int * int * int
