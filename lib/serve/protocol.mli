(** The serve wire protocol: line-delimited JSON requests and
    responses over a Unix-domain socket.

    One request per line, one response line per request, in order.
    Requests are objects dispatched on ["op"]:

    {v
    {"op":"load","db":"g","path":"graph.ldb"}
    {"op":"query","db":"g","query":"(x). P(x)","timeout_ms":500}
    {"op":"boolean","db":"g","query":"(). exists x. P(x)"}
    {"op":"insert","db":"g","fact":"P(a)"}
    {"op":"retract","db":"g","fact":"P(a)"}
    {"op":"close_unknown","db":"g","left":"a","right":"b","to":"distinct"}
    {"op":"stats"}
    {"op":"close"}
    {"op":"shutdown"}
    v}

    [query]/[boolean] accept optional ["kernel"] ("interned" default,
    or "strings"), ["domains"], ["policy"] ("fail" default, "partial",
    "approx"), ["timeout_ms"], ["max_structures"],
    ["max_evaluations"]. Every response carries a ["code"] from the
    exit-code taxonomy mapped onto the wire.

    The complete specification — framing, every op's request and
    response fields, the code taxonomy, budget fields, [cache]/[delta]
    semantics and versioning — lives in [docs/PROTOCOL.md]; this
    interface is the implementation's type-level summary. *)

(** Protocol outcome codes — the CLI exit taxonomy on the wire. [Ok]
    covers both affirmative and refuted/empty results (the verdict
    travels in the payload; the 0/1 exit split is a process-level
    convention). [Exhausted] mirrors exit 124, [Cancelled] exit 130;
    [Busy] is the admission-control rejection, with no one-shot
    counterpart. *)
type code =
  | Ok
  | Parse_error  (** malformed JSON, unknown op, or query syntax error *)
  | Semantic_error
      (** well-formed but meaningless: unknown database, vocabulary or
          arity violation, budget on a non-budgetable engine *)
  | Exhausted  (** per-request budget tripped under policy [fail] *)
  | Cancelled  (** server shutting down before the request ran *)
  | Busy  (** request queue full — back off and retry *)

val code_to_string : code -> string
val code_of_string : string -> code option

(** Per-request evaluation options, defaulted as the one-shot CLI
    defaults them. *)
type eval_options = {
  kernel : Vardi_certain.Engine.kernel;
  domains : int;
  policy : Vardi_resilience.Resilient.policy;
  timeout : float option;  (** seconds, from ["timeout_ms"] *)
  max_structures : int option;
  max_evaluations : int option;
}

val default_options : eval_options

type request =
  | Load of { name : string; path : string }
  | Query of { db : string; query : string; opts : eval_options }
  | Boolean of { db : string; query : string; opts : eval_options }
  | Insert of { db : string; fact : string }
      (** [fact] is a ground atom in query syntax, e.g. ["P(a, b)"] *)
  | Retract of { db : string; fact : string }
  | Close_unknown of {
      db : string;
      left : string;
      right : string;
      equal : bool;
          (** [false] closes the pair to {e distinct} (adds the
              uniqueness axiom); [true] closes it to {e equal} ([right]
              merges into [left]) *)
    }
  | Stats
  | Close
  | Shutdown
  | Sleep of float
      (** seconds; debug-only — the server rejects it unless started
          with [debug_sleep], tests use it to pin down backpressure *)

(** [request_of_json j] decodes a request, or an error message plus
    the code to answer with ([Parse_error] for shape problems,
    [Semantic_error] for bad option values). *)
val request_of_json : Json.t -> (request, string * code) result

(** [error code msg] is the uniform error response
    [{"code":..., "error":msg}]. *)
val error : code -> string -> Json.t

(** [ok fields] is [{"code":"ok", ...fields}]. *)
val ok : (string * Json.t) list -> Json.t
