type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* Capped exponential backoff with full jitter: attempt [n] (0-based)
   sleeps uniformly in [cap/2, cap] where cap = min (base * 2^n) 2s —
   the jitter keeps a herd of retrying clients from re-arriving in
   lockstep at a server that just answered all of them [busy]. *)
let backoff_delay rng ~backoff_ms attempt =
  let cap_ms = 2000. in
  let exp_ms = float_of_int backoff_ms *. (2. ** float_of_int attempt) in
  let capped = Float.min cap_ms exp_ms in
  let jittered = (capped /. 2.) +. Random.State.float rng (capped /. 2.) in
  jittered /. 1000.

let connect_once path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect ?(retries = 0) ?(backoff_ms = 25) path =
  if retries = 0 then connect_once path
  else begin
    let rng = Random.State.make_self_init () in
    let rec go attempt =
      match connect_once path with
      | c -> c
      | exception
          Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
        when attempt < retries ->
        Unix.sleepf (backoff_delay rng ~backoff_ms attempt);
        go (attempt + 1)
    in
    go 0
  end

let connect_retry ?(attempts = 100) ?(delay = 0.05) path =
  let rec go n =
    match connect_once path with
    | c -> c
    | exception
        Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 1 ->
      Unix.sleepf delay;
      go (n - 1)
  in
  go attempts

let request_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc;
  Json.parse (input_line c.ic)

let request c j = request_line c (Json.to_string j)

let is_busy resp =
  match Json.str_field "code" resp with Some "busy" -> true | _ -> false

(* Only a *received* [busy] response is retried: the request provably
   did not run, so resending cannot double-apply anything. A dropped
   connection (End_of_file) after a mutation was sent is ambiguous —
   the server may have committed it before dying — so it propagates to
   the caller, who must decide idempotency for itself (PROTOCOL.md,
   "Retries"). *)
let request_retry ?(retries = 0) ?(backoff_ms = 25) c j =
  if retries = 0 then request c j
  else begin
    let rng = Random.State.make_self_init () in
    let rec go attempt =
      let resp = request c j in
      if is_busy resp && attempt < retries then begin
        Unix.sleepf (backoff_delay rng ~backoff_ms attempt);
        go (attempt + 1)
      end
      else resp
    in
    go 0
  end

let close c =
  (* [ic] and [oc] wrap the same descriptor; closing the output side
     flushes and closes it for both. *)
  close_out_noerr c.oc
