type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect_retry ?(attempts = 100) ?(delay = 0.05) path =
  let rec go n =
    match connect path with
    | c -> c
    | exception
        Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 1 ->
      Unix.sleepf delay;
      go (n - 1)
  in
  go attempts

let request_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc;
  Json.parse (input_line c.ic)

let request c j = request_line c (Json.to_string j)

let close c =
  (* [ic] and [oc] wrap the same descriptor; closing the output side
     flushes and closes it for both. *)
  close_out_noerr c.oc
