(** The [ldb serve] daemon: a Unix-domain-socket server that keeps CW
    logical databases resident and answers line-delimited JSON
    requests ({!Protocol}) over a shared worker-domain pool
    ({!Pool}) with a shared plan cache ({!Plan_cache}).

    Layering per connection: the accept loop (caller's thread) hands
    each connection to a lightweight systhread that reads request
    lines, decodes them, and submits evaluation jobs to the domain
    pool; the connection thread blocks for its response while worker
    domains multiplex across all in-flight requests. A full queue is
    answered [busy] without blocking — admission control instead of
    unbounded latency.

    Per-request budgets ride the existing resilience machinery: the
    request's [timeout_ms]/[max_structures]/[max_evaluations] become a
    {!Vardi_resilience.Budget.t}, and a trip under policy [fail] is
    answered with the [exhausted] code (exit 124's wire form).

    {2 Durability}

    With [config.durability] set, every loaded database lives in a
    directory under [data_dir] with a write-ahead log and periodic
    snapshots ({!Vardi_durable.Store}): each acknowledged mutation is
    in the log {e before} its [ok] response is written (synced per the
    [sync] policy), and startup recovers every database directory —
    snapshot plus WAL tail — before the socket accepts its first
    client. Mutation acks and [stats] carry a [durable] field.
    Unrecoverable on-disk corruption ({!Vardi_durable.Recovery.Corrupt})
    fails startup instead of silently serving partial history.

    Teardown discipline: every connection flushes the ambient
    {!Vardi_obs.Obs} sink and closes its descriptor on every exit
    path; {!run} returns only after the pool's worker domains are all
    joined ({!Vardi_certain.Domain_guard}), also when it is leaving on
    [Sys.Break] — so a Ctrl-C exit never orphans a domain. Durable
    stores are checkpointed (fresh snapshot, reset log) on every
    shutdown path. SIGTERM is the graceful drain: the server stops
    accepting, answers every already-queued job for real
    ({!Pool.stop} with [~drain:true]), checkpoints, and {!run} returns
    normally so the process exits 0. *)

type durability = {
  data_dir : string;  (** one subdirectory per database name *)
  sync : Vardi_durable.Wal.sync;  (** fsync policy for the logs *)
  snapshot_every : int;  (** auto-checkpoint threshold; 0 disables *)
}

type config = {
  socket_path : string;
  workers : int;  (** domain-pool size, >= 1 *)
  queue_capacity : int;  (** waiting requests admitted before [busy] *)
  debug_sleep : bool;
      (** accept the [sleep] op (tests use it to hold workers busy) *)
  preload : (string * string) list;
      (** [(name, path)] databases loaded before accepting clients —
          except names startup recovery already restored: a restart
          with the same command line keeps recovered mutations rather
          than resetting to the seed file *)
  durability : durability option;  (** [None] = in-memory only *)
}

val default_config : config

(** [run config] binds [config.socket_path], serves until a [shutdown]
    request (or SIGTERM) arrives, then tears down and returns. On
    [Sys.Break] it tears down identically (every worker domain joined,
    socket file removed) and re-raises, so the process exits through
    the CLI's 130 path.

    A pre-existing socket file is only replaced after probing it: if a
    server answers the connect, [run] refuses ([Invalid_argument])
    rather than stealing its clients; only a dead socket (connect
    refused — the residue of a crashed daemon) is unlinked.
    @raise Unix.Unix_error when the socket cannot be bound.
    @raise Invalid_argument on a nonsensical [config] (see
    {!Pool.create}), a live or un-probeable existing socket, or a
    non-socket file at [socket_path].
    @raise Vardi_durable.Recovery.Corrupt when a database directory
    under [durability.data_dir] is unrecoverable. *)
val run : config -> unit
