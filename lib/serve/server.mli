(** The [ldb serve] daemon: a Unix-domain-socket server that keeps CW
    logical databases resident and answers line-delimited JSON
    requests ({!Protocol}) over a shared worker-domain pool
    ({!Pool}) with a shared plan cache ({!Plan_cache}).

    Layering per connection: the accept loop (caller's thread) hands
    each connection to a lightweight systhread that reads request
    lines, decodes them, and submits evaluation jobs to the domain
    pool; the connection thread blocks for its response while worker
    domains multiplex across all in-flight requests. A full queue is
    answered [busy] without blocking — admission control instead of
    unbounded latency.

    Per-request budgets ride the existing resilience machinery: the
    request's [timeout_ms]/[max_structures]/[max_evaluations] become a
    {!Vardi_resilience.Budget.t}, and a trip under policy [fail] is
    answered with the [exhausted] code (exit 124's wire form).

    Teardown discipline: every connection flushes the ambient
    {!Vardi_obs.Obs} sink and closes its descriptor on every exit
    path; {!run} returns only after the pool's worker domains are all
    joined ({!Vardi_certain.Domain_guard}), also when it is leaving on
    [Sys.Break] — so a Ctrl-C exit never orphans a domain. *)

type config = {
  socket_path : string;
  workers : int;  (** domain-pool size, >= 1 *)
  queue_capacity : int;  (** waiting requests admitted before [busy] *)
  debug_sleep : bool;
      (** accept the [sleep] op (tests use it to hold workers busy) *)
  preload : (string * string) list;
      (** [(name, path)] databases loaded before accepting clients *)
}

val default_config : config

(** [run config] binds [config.socket_path] (replacing a stale socket
    file), serves until a [shutdown] request arrives, then tears down
    and returns. On [Sys.Break] it tears down identically (every
    worker domain joined, socket file removed) and re-raises, so the
    process exits through the CLI's 130 path.
    @raise Unix.Unix_error when the socket cannot be bound.
    @raise Invalid_argument on a nonsensical [config] (see {!Pool.create}). *)
val run : config -> unit
