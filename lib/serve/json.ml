type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing ------------------------------------------------------ *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          go v)
        vs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------- *)

(* Plain recursive descent over a cursor. Errors carry the byte
   offset — protocol responses echo the message, so keep it short. *)

type cursor = { s : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      true
    | _ -> false
  do
    ()
  done

let expect cur c =
  match peek cur with
  | Some d when d = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.s
    && String.sub cur.s cur.pos n = word
  then (
    cur.pos <- cur.pos + n;
    value)
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
      advance cur;
      match peek cur with
      | None -> fail cur "unterminated escape"
      | Some c ->
        advance cur;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if cur.pos + 4 > String.length cur.s then
            fail cur "truncated \\u escape";
          let hex = String.sub cur.s cur.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail cur "bad \\u escape"
          in
          cur.pos <- cur.pos + 4;
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else fail cur "non-ASCII \\u escape unsupported"
        | _ -> fail cur "bad escape");
        go ())
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek cur with Some c when is_num_char c -> advance cur; true | _ -> false do
    ()
  done;
  let text = String.sub cur.s start (cur.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail cur "bad number"

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '"' -> Str (parse_string cur)
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then (
      advance cur;
      Obj [])
    else
      let rec fields acc =
        skip_ws cur;
        let key = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance cur;
          List.rev ((key, v) :: acc)
        | _ -> fail cur "expected ',' or '}'"
      in
      Obj (fields [])
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then (
      advance cur;
      List [])
    else
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']'"
      in
      List (items [])
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number cur)
  | Some c -> fail cur (Printf.sprintf "unexpected '%c'" c)

let parse s =
  let cur = { s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* --- accessors ----------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let str_field key v = Option.bind (member key v) to_str
let num_field key v = Option.bind (member key v) to_num
let bool_field key v = Option.bind (member key v) to_bool
