(** Minimal JSON for the serve protocol.

    The wire format is line-delimited JSON and the toolchain has no
    JSON library, so this is a small self-contained value type with a
    recursive-descent parser and a printer. It covers exactly what the
    protocol needs — objects, arrays, strings with the standard
    escapes, numbers, booleans, null — and nothing more (no unicode
    \u escapes beyond ASCII, no streaming). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** [parse s] parses one JSON value, requiring it to consume all of
    [s] (trailing whitespace allowed).
    @raise Parse_error on malformed input. *)
val parse : string -> t

(** Compact one-line rendering — safe as a JSON-lines record. *)
val to_string : t -> string

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_str : t -> string option
val to_num : t -> float option
val to_bool : t -> bool option

(** [str_field k o] / [num_field k o] / [bool_field k o] combine
    {!member} with the coercion. *)
val str_field : string -> t -> string option

val num_field : string -> t -> float option
val bool_field : string -> t -> bool option
