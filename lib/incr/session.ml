module Cw_database = Vardi_cwdb.Cw_database
module Query = Vardi_logic.Query
module Formula = Vardi_logic.Formula
module Symtab = Vardi_interned.Symtab
module Irel = Vardi_interned.Irel
module Idb = Vardi_interned.Idb
module Iscan = Vardi_interned.Iscan
module Certain = Vardi_certain.Engine
module Obs = Vardi_obs.Obs

(* Renaming arrays as hash keys. The generic [Hashtbl.hash] only
   inspects a bounded prefix, and restricted-growth arrays share long
   prefixes (they differ mostly in the later positions), so the cache
   needs a full-array hash to avoid degenerate buckets. *)
module Rkey = struct
  type t = int array

  let equal (a : int array) (b : int array) =
    Array.length a = Array.length b
    &&
    let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
    go (Array.length a - 1)

  let hash (a : int array) =
    Array.fold_left (fun h x -> (h * 31) + x + 1) (Array.length a) a
    land max_int
end

module Rtbl = Hashtbl.Make (Rkey)

(* One immutable snapshot of the resident database. Mutations swap the
   session's current view; a prepared query captures the view it was
   prepared against, so in-flight scans are never disturbed. *)
type view = {
  v_db : Cw_database.t;
  v_plan : Iscan.plan;
  v_tab_epoch : int;  (* bumped when the constant coding changes (merge) *)
  v_slot_epochs : int array;  (* per relation slot; bumped by fact deltas *)
  v_delta_epoch : int;  (* bumped by every mutation; outer caches key on it *)
}

(* One cached quotient structure: the universe depends only on the
   renaming; each relation slot carries the slot epoch it was derived
   at ([-1] = never built). *)
type centry = {
  c_universe : int array;
  c_slots : (int * Irel.t) array;
}

type memo_rel = {
  m_sig : int array;
  m_rel : Irel.t;
}

type memo_bool = {
  b_sig : int array;
  b_val : bool;
}

type query_entry = {
  qe_deps : int array;  (* relation slots the query reads, sorted *)
  qe_rels : memo_rel Rtbl.t;  (* renaming -> image answer *)
  qe_bools : memo_bool Rtbl.t;  (* renaming -> Boolean check *)
}

(* A materialized renaming stream. The partition enumeration depends
   only on the symtab (the constant count and the distinct matrix),
   never on the facts, so across fact deltas — which keep the symtab
   physically intact — the stream is bit-identical and the tree walk
   can be paid once. Keyed on physical symtab identity: a
   distinct-closure or a merge installs a new symtab and the entry
   simply stops matching. *)
type ren_entry = {
  re_tab : Symtab.t;
  re_order : Certain.order;
  re_reprs : int array array;
}

type t = {
  lock : Mutex.t;  (* guards view, cache, queries and the memo tables *)
  capacity : int;
  mutable view : view;
  mutable cache_era : int;  (* tab epoch the structure cache speaks *)
  cache : centry Rtbl.t;
  mutable ren_cache : ren_entry list;  (* at most one per live (tab, order) *)
  queries : (Query.t, query_entry) Hashtbl.t;
  memo_hits : int Atomic.t;
  memo_misses : int Atomic.t;
  slot_reuses : int Atomic.t;
  slot_rebuilds : int Atomic.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(cache_capacity = 4096) ?(delta_epoch = 0) db =
  let plan = Iscan.prepare db in
  let k = Symtab.rel_count (Iscan.symtab plan) in
  {
    lock = Mutex.create ();
    capacity = max 1 cache_capacity;
    view =
      {
        v_db = db;
        v_plan = plan;
        v_tab_epoch = 0;
        v_slot_epochs = Array.make (max k 1) 0;
        v_delta_epoch = delta_epoch;
      };
    cache_era = 0;
    cache = Rtbl.create 256;
    ren_cache = [];
    queries = Hashtbl.create 16;
    memo_hits = Atomic.make 0;
    memo_misses = Atomic.make 0;
    slot_reuses = Atomic.make 0;
    slot_rebuilds = Atomic.make 0;
  }

let db t = locked t (fun () -> t.view.v_db)
let delta_epoch t = locked t (fun () -> t.view.v_delta_epoch)

(* --- mutations ------------------------------------------------------ *)

(* Fact deltas keep the symtab: inserting or retracting a fact changes
   neither the constant set nor the distinct pairs, so the codes (and
   every code array in the caches) stay valid; only the touched
   predicate's slot epoch moves. *)
let install_fact_delta t v db pred =
  let tab = Iscan.symtab v.v_plan in
  let slot =
    match Symtab.rel_slot tab pred with
    | Some s -> s
    | None -> assert false (* the fact was validated against the vocabulary *)
  in
  let slot_epochs = Array.copy v.v_slot_epochs in
  slot_epochs.(slot) <- slot_epochs.(slot) + 1;
  t.view <-
    {
      v_db = db;
      v_plan = Iscan.prepare ~tab db;
      v_tab_epoch = v.v_tab_epoch;
      v_slot_epochs = slot_epochs;
      v_delta_epoch = v.v_delta_epoch + 1;
    };
  Obs.count "incr.mutation" 1

let insert t fact =
  locked t (fun () ->
      let v = t.view in
      let db = Cw_database.add_fact v.v_db fact in
      (* Adding a present fact is a no-op: skip the epoch bump so warm
         caches stay warm. *)
      if not (Cw_database.equal db v.v_db) then
        install_fact_delta t v db fact.Cw_database.pred)

let retract t fact =
  locked t (fun () ->
      let v = t.view in
      let db = Cw_database.remove_fact v.v_db fact in
      install_fact_delta t v db fact.Cw_database.pred)

let close_unknown t c d ~to_ =
  locked t (fun () ->
      let v = t.view in
      match to_ with
      | `Distinct ->
        let db = Cw_database.add_distinct v.v_db c d in
        if not (Cw_database.equal db v.v_db) then begin
          (* Codes and facts are unchanged — the new uniqueness axiom
             only prunes the partition enumeration. The symtab must be
             rebuilt (it bakes in the distinct matrix), but every
             cached structure and memo entry stays valid: quotient
             structures and their per-query answers never consult the
             distinct pairs. *)
          t.view <-
            {
              v_db = db;
              v_plan = Iscan.prepare db;
              v_tab_epoch = v.v_tab_epoch;
              v_slot_epochs = v.v_slot_epochs;
              v_delta_epoch = v.v_delta_epoch + 1;
            };
          Obs.count "incr.mutation" 1
        end
      | `Equal ->
        let db = Cw_database.merge_constants v.v_db ~keep:c ~drop:d in
        (* The merge re-codes the constants: every cached code array is
           orphaned, so this is the one mutation that resets the world. *)
        let plan = Iscan.prepare db in
        let k = Symtab.rel_count (Iscan.symtab plan) in
        let tab_epoch = v.v_tab_epoch + 1 in
        Rtbl.reset t.cache;
        Hashtbl.reset t.queries;
        t.cache_era <- tab_epoch;
        t.view <-
          {
            v_db = db;
            v_plan = plan;
            v_tab_epoch = tab_epoch;
            v_slot_epochs = Array.make (max k 1) 0;
            v_delta_epoch = v.v_delta_epoch + 1;
          };
        Obs.count "incr.mutation" 1)

(* --- mutations as data (the durable layer's replay entry point) ----- *)

type mutation =
  | Insert of Cw_database.fact
  | Retract of Cw_database.fact
  | Close of { left : string; right : string; equal : bool }

let apply t m =
  let before = delta_epoch t in
  (match m with
  | Insert fact -> insert t fact
  | Retract fact -> retract t fact
  | Close { left; right; equal } ->
    close_unknown t left right ~to_:(if equal then `Equal else `Distinct));
  delta_epoch t > before

(* --- the structure cache -------------------------------------------- *)

(* Mirrors the universe computation of [Iscan.image]: the sorted set of
   codes the renaming maps onto. *)
let universe_of n repr =
  let seen = Array.make (max n 1) false in
  Array.iter (fun e -> if e >= 0 then seen.(e) <- true) repr;
  let count = ref 0 in
  for i = 0 to n - 1 do
    if seen.(i) then incr count
  done;
  let u = Array.make !count 0 in
  let w = ref 0 in
  for i = 0 to n - 1 do
    if seen.(i) then begin
      u.(!w) <- i;
      incr w
    end
  done;
  u

(* [needed] marks the slots the consuming prepared query reads. Stale
   non-needed slots are passed through as-is: the compiled answer plan
   and the Boolean check only ever dereference the query's own
   predicates, and the store-back below records true epochs, so a stale
   pass-through can never be mistaken for fresh data by anyone else. *)
let structure_for t view needed repr =
  let plan = view.v_plan in
  let tab = Iscan.symtab plan in
  let nslots = Symtab.rel_count tab in
  let cached =
    locked t (fun () ->
        if t.cache_era <> view.v_tab_epoch then `Bypass
        else
          match Rtbl.find_opt t.cache repr with
          | Some e -> `Hit (e.c_universe, e.c_slots)
          | None -> `Miss)
  in
  match cached with
  | `Bypass ->
    (* A scan whose view predates a merge: the shared cache now speaks
       a different constant coding, so build fresh and leave it be. *)
    Iscan.image plan repr
  | (`Hit _ | `Miss) as c ->
    let universe =
      match c with
      | `Hit (u, _) -> u
      | `Miss -> universe_of (Symtab.size tab) repr
    in
    let slots =
      match c with
      | `Hit (_, s) -> Array.copy s
      | `Miss -> Array.make nslots (-1, Irel.empty 0)
    in
    let reused = ref 0 in
    let rebuilt = ref 0 in
    let rels =
      Array.init nslots (fun slot ->
          let want = view.v_slot_epochs.(slot) in
          let have, rel = slots.(slot) in
          if have = want then begin
            incr reused;
            rel
          end
          else if not needed.(slot) then rel
          else begin
            let rel = Iscan.image_slot plan repr slot in
            slots.(slot) <- (want, rel);
            incr rebuilt;
            rel
          end)
    in
    if !reused > 0 then begin
      ignore (Atomic.fetch_and_add t.slot_reuses !reused);
      Obs.count "incr.slot_reuse" !reused
    end;
    if !rebuilt > 0 then begin
      ignore (Atomic.fetch_and_add t.slot_rebuilds !rebuilt);
      Obs.count "incr.slot_rebuild" !rebuilt
    end;
    (* Nothing to publish on a rebuild-free hit — skip the lock. *)
    (if !rebuilt > 0 || c = `Miss then
       locked t (fun () ->
           if t.cache_era = view.v_tab_epoch then
             match Rtbl.find_opt t.cache repr with
             | Some entry ->
               (* Monotonic store-back: never clobber a slot a newer
                  view already refreshed. *)
               Array.iteri
                 (fun slot ((ep, _) as cell) ->
                   let cur, _ = entry.c_slots.(slot) in
                   if ep > cur then entry.c_slots.(slot) <- cell)
                 slots
             | None ->
               if Rtbl.length t.cache < t.capacity then
                 Rtbl.replace t.cache repr
                   { c_universe = universe; c_slots = slots }));
    { Iscan.idb = { Idb.tab; interp = repr; universe; rels }; rename = repr }

(* --- engine integration --------------------------------------------- *)

(* Force at most [bound + 1] elements; [None] means the stream is too
   long to be worth materializing (fall back to streaming it). *)
let materialize_bounded seq bound =
  let acc = ref [] in
  let n = ref 0 in
  let rec go s =
    if !n > bound then None
    else
      match s () with
      | Seq.Nil -> Some (Array.of_list (List.rev !acc))
      | Seq.Cons (x, rest) ->
        incr n;
        acc := x :: !acc;
        go rest
  in
  go seq

let cached_renamings t view order =
  let tab = Iscan.symtab view.v_plan in
  let find () =
    List.find_opt
      (fun e -> e.re_tab == tab && e.re_order = order)
      t.ren_cache
  in
  match locked t find with
  | Some e -> Some e.re_reprs
  | None -> (
    match
      materialize_bounded (Iscan.renamings ~order view.v_plan) t.capacity
    with
    | None -> None
    | Some reprs ->
      locked t (fun () ->
          if find () = None then
            t.ren_cache <-
              { re_tab = tab; re_order = order; re_reprs = reprs }
              :: List.filteri (fun i _ -> i < 3) t.ren_cache);
      Some reprs)

let source_for t view needed =
  let plan = view.v_plan in
  {
    Certain.source_plan = plan;
    source_thunks =
      (fun algorithm order ->
        let reprs =
          match algorithm with
          | Certain.Naive_mappings -> Iscan.mapping_renamings plan
          | Certain.Kernel_partitions -> (
            match cached_renamings t view order with
            | Some arr -> Array.to_seq arr
            | None -> Iscan.renamings ~order plan)
        in
        Seq.map (fun repr () -> structure_for t view needed repr) reprs);
    source_discrete =
      (fun () ->
        let n = Symtab.size (Iscan.symtab plan) in
        structure_for t view needed (Array.init (max n 1) Fun.id));
  }

let deps_of tab q =
  Formula.free_preds (Query.body q)
  |> List.filter_map (fun (name, _arity) -> Symtab.rel_slot tab name)
  |> List.sort_uniq Int.compare
  |> Array.of_list

(* The dependency signature a memo entry is tagged with: the tab epoch
   plus the slot epochs of exactly the predicates the query reads. A
   delta on any other predicate leaves the signature unchanged, so the
   memo keeps hitting across it. *)
let signature_of view deps =
  Array.append
    [| view.v_tab_epoch |]
    (Array.map (fun slot -> view.v_slot_epochs.(slot)) deps)

let query_entry t view q =
  locked t (fun () ->
      match Hashtbl.find_opt t.queries q with
      | Some e -> e
      | None ->
        let e =
          {
            qe_deps = deps_of (Iscan.symtab view.v_plan) q;
            qe_rels = Rtbl.create 64;
            qe_bools = Rtbl.create 64;
          }
        in
        if Hashtbl.length t.queries < t.capacity then
          Hashtbl.replace t.queries q e;
        e)

let wrap_answer t entry signature base (s : Iscan.structure) =
  let key = s.Iscan.rename in
  let hit =
    locked t (fun () ->
        match Rtbl.find_opt entry.qe_rels key with
        | Some { m_sig; m_rel } when m_sig = signature -> Some m_rel
        | Some _ | None -> None)
  in
  match hit with
  | Some r ->
    Atomic.incr t.memo_hits;
    Obs.count "incr.memo_hit" 1;
    r
  | None ->
    let r = base s in
    Atomic.incr t.memo_misses;
    Obs.count "incr.memo_miss" 1;
    locked t (fun () ->
        if Rtbl.mem entry.qe_rels key || Rtbl.length entry.qe_rels < t.capacity
        then Rtbl.replace entry.qe_rels key { m_sig = signature; m_rel = r });
    r

let wrap_check t entry signature base (s : Iscan.structure) =
  let key = s.Iscan.rename in
  let hit =
    locked t (fun () ->
        match Rtbl.find_opt entry.qe_bools key with
        | Some { b_sig; b_val } when b_sig = signature -> Some b_val
        | Some _ | None -> None)
  in
  match hit with
  | Some r ->
    Atomic.incr t.memo_hits;
    Obs.count "incr.memo_hit" 1;
    r
  | None ->
    let r = base s in
    Atomic.incr t.memo_misses;
    Obs.count "incr.memo_miss" 1;
    locked t (fun () ->
        if
          Rtbl.mem entry.qe_bools key
          || Rtbl.length entry.qe_bools < t.capacity
        then Rtbl.replace entry.qe_bools key { b_sig = signature; b_val = r });
    r

let prepare ?(kernel = Certain.Interned) t q =
  let view = locked t (fun () -> t.view) in
  let entry = query_entry t view q in
  let signature = signature_of view entry.qe_deps in
  let needed =
    let n = Symtab.rel_count (Iscan.symtab view.v_plan) in
    let a = Array.make (max n 1) false in
    Array.iter (fun slot -> a.(slot) <- true) entry.qe_deps;
    a
  in
  (* The memo tables are shared across kernels on purpose: both produce
     identical per-structure results (the kernel-parity contract), so a
     value cached under one kernel is a sound hit under the other. *)
  Certain.prepare_with ~kernel
    ~source:(source_for t view needed)
    ~wrap_answer:(wrap_answer t entry signature)
    ~wrap_check:(wrap_check t entry signature)
    view.v_db q

(* --- stats ----------------------------------------------------------- *)

type stats = {
  s_delta_epoch : int;
  s_tab_epoch : int;
  s_memo_hits : int;
  s_memo_misses : int;
  s_slot_reuses : int;
  s_slot_rebuilds : int;
  s_structures_cached : int;
  s_queries_tracked : int;
}

let stats t =
  locked t (fun () ->
      {
        s_delta_epoch = t.view.v_delta_epoch;
        s_tab_epoch = t.view.v_tab_epoch;
        s_memo_hits = Atomic.get t.memo_hits;
        s_memo_misses = Atomic.get t.memo_misses;
        s_slot_reuses = Atomic.get t.slot_reuses;
        s_slot_rebuilds = Atomic.get t.slot_rebuilds;
        s_structures_cached = Rtbl.length t.cache;
        s_queries_tracked = Hashtbl.length t.queries;
      })

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>delta epoch: %d (tab epoch %d)@,\
     memo: %d hits, %d misses@,\
     slots: %d reused, %d rebuilt@,\
     cached: %d structures, %d queries@]"
    s.s_delta_epoch s.s_tab_epoch s.s_memo_hits s.s_memo_misses s.s_slot_reuses
    s.s_slot_rebuilds s.s_structures_cached s.s_queries_tracked
