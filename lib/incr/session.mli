(** Incremental evaluation sessions: a resident CW database that keeps
    the interned kernel's heavy state — the {!Vardi_interned.Symtab},
    the {!Vardi_interned.Iscan} partition-tree quotients, and
    per-structure evaluation results — alive across queries and
    mutations, so a query after a small delta pays only for what the
    delta touched instead of rescanning the world.

    {2 The invalidation story}

    A session owns a current {e view}: the database, its interned plan,
    and three kinds of epoch counters.

    - {e Slot epochs}, one per relation slot. [insert]/[retract] bump
      only the mutated predicate's slot. The quotient-structure cache
      tags every cached relation slot with the epoch it was built at,
      so a later scan reuses the untouched slots of each cached
      structure and re-derives exactly the mutated ones
      ({!Vardi_interned.Iscan.image_slot}).
    - The {e tab epoch}, bumped only when the constant coding itself
      changes — today that is [close_unknown ~to_:`Equal] (a constant
      merge). A tab-epoch bump orphans the whole structure cache and
      every memo entry, because code arrays from different codings are
      not comparable. Closing a pair to {e distinct} changes neither
      codes nor facts: the partition enumeration shrinks, but every
      cached structure and memo entry stays valid.
    - The {e delta epoch}, bumped on every successful mutation. It
      never invalidates anything inside the session; it is the cheap
      fingerprint outer caches key on (the serve layer's plan cache
      re-binds a prepared query when it observes a new delta epoch —
      re-binding is cheap precisely because the session retains the
      heavy state).

    Per-query memo entries are finer than the delta epoch: each is
    tagged with a {e dependency signature} — the tab epoch plus the
    slot epochs of the predicates the query actually mentions
    ({!Vardi_logic.Formula.free_preds}). A delta on a predicate the
    query never reads leaves its signature unchanged, so re-running the
    query after such a delta hits the memo for every structure.

    {2 Engine integration}

    {!prepare} returns an ordinary {!Vardi_certain.Engine.prepared}
    built with [Certain.prepare_with]: the structure stream comes from
    the session's cache via {!Vardi_interned.Iscan.renamings} (same
    renaming at every stream position as a fresh scan, so positional
    budget caps trip identically incremental-vs-fresh, and memo hits
    still charge the [structures]/[evaluations] stats), and the
    per-structure answer/check functions are wrapped with the memo.
    The prepared value captures one immutable view: mutations swap the
    session's current view and never disturb in-flight scans.

    All operations are thread-safe; mutations serialize against each
    other and against cache maintenance, while scans only touch the
    locks briefly per structure. *)

type t

(** [create db] starts a session resident on [db].
    [cache_capacity] bounds both the quotient-structure cache and each
    per-query memo table (entries, not bytes; default [4096]); beyond
    the bound existing entries are still served but new ones are not
    added. [delta_epoch] (default [0]) is the epoch the session starts
    at — crash recovery passes the snapshot's recorded epoch so that
    after replaying the log tail the recovered session reports the same
    delta epoch the lost process would have (outer plan caches key on
    it). *)
val create :
  ?cache_capacity:int -> ?delta_epoch:int -> Vardi_cwdb.Cw_database.t -> t

(** The current database (the latest view's). *)
val db : t -> Vardi_cwdb.Cw_database.t

(** The current delta epoch: [0] at {!create}, bumped by every
    successful mutation. Outer caches key on this. *)
val delta_epoch : t -> int

(** [insert t fact] adds an atomic fact axiom. Inserting a fact already
    present is a no-op (no epoch bump — caches stay warm).
    @raise Invalid_argument on vocabulary/arity violations, as
    {!Vardi_cwdb.Cw_database.add_fact}. *)
val insert : t -> Vardi_cwdb.Cw_database.fact -> unit

(** [retract t fact] removes an atomic fact axiom.
    @raise Invalid_argument if the fact is absent or invalid, as
    {!Vardi_cwdb.Cw_database.remove_fact}. *)
val retract : t -> Vardi_cwdb.Cw_database.fact -> unit

(** [close_unknown t c d ~to_] closes the unknown pair [(c, d)]:
    [`Distinct] adds the uniqueness axiom [¬(c = d)] (a no-op when
    already present); [`Equal] merges [d] into [c]
    ({!Vardi_cwdb.Cw_database.merge_constants} — [c] survives). A merge
    changes the constant coding, so it is the one mutation that resets
    the structure cache and memos.
    @raise Invalid_argument as the underlying database operations. *)
val close_unknown :
  t -> string -> string -> to_:[ `Distinct | `Equal ] -> unit

(** Mutations as first-class data: what the durable layer's write-ahead
    log records and startup recovery replays. [Close] with
    [equal = false] is [close_unknown ~to_:`Distinct]; with
    [equal = true] it is the merge ([left] survives, [right] drops). *)
type mutation =
  | Insert of Vardi_cwdb.Cw_database.fact
  | Retract of Vardi_cwdb.Cw_database.fact
  | Close of { left : string; right : string; equal : bool }

(** [apply t m] applies one mutation through {!insert} / {!retract} /
    {!close_unknown} and reports whether the delta epoch moved ([false]
    = the mutation was a no-op, e.g. inserting a present fact). The
    epoch comparison samples before and after, so the verdict is only
    meaningful when mutations on [t] are externally serialized (the
    durable layer holds its commit lock across the call).
    @raise Invalid_argument as the underlying operation. *)
val apply : t -> mutation -> bool

(** [prepare ?kernel t q] prepares [q] against the session's current
    view. The result is a standard engine
    {!Vardi_certain.Engine.prepared} — evaluate it through
    [Certain.prepared_*_stats] or
    [Vardi_resilience.Resilient.prepared_*]. It captures the view at
    call time; after a mutation, call [prepare] again (the heavy state
    persists in the session, so re-preparing costs one query
    compilation, not a rescan). [?kernel] selects [Interned] (default)
    or [Compiled]; both share the session's structure cache and memo
    tables — sound because the kernels are observationally identical.
    @raise Invalid_argument as [Certain.prepare], or if [kernel] is
    [Strings] (sessions cache interned structures). *)
val prepare :
  ?kernel:Vardi_certain.Engine.kernel ->
  t ->
  Vardi_logic.Query.t ->
  Vardi_certain.Engine.prepared

(** Cumulative session counters (monotonic except where noted). *)
type stats = {
  s_delta_epoch : int;  (** current delta epoch *)
  s_tab_epoch : int;  (** current tab epoch (merges so far) *)
  s_memo_hits : int;
      (** per-structure evaluations answered from the memo *)
  s_memo_misses : int;  (** per-structure evaluations actually run *)
  s_slot_reuses : int;
      (** cached relation slots served without rebuilding *)
  s_slot_rebuilds : int;
      (** relation slots re-derived because their epoch moved *)
  s_structures_cached : int;
      (** quotient structures currently in the cache (not monotonic) *)
  s_queries_tracked : int;
      (** distinct queries with a live memo table (not monotonic) *)
}

val stats : t -> stats
val pp_stats : stats Fmt.t
