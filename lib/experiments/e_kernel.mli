(** E15 — interned kernel vs string kernel on the certain-answer scan.

    Times {!Vardi_certain.Engine.answer} with [~kernel:Interned] and
    [~kernel:Strings] on the E1 workload family (|C| = 7, unknowns
    0–7) plus the E1-medium instance (|C| = 16, 2 unknowns), reporting
    the speedup and an equality check per row. The speedup should grow
    with the partition count: the interned kernel amortizes its
    per-scan interning across structures, and shares quotient prefixes
    along the partition-enumeration tree. *)

val e15 : unit -> Table.t
