(* Each runner executes under an [experiment.<id>] span, so a trace of
   a full report run shows per-experiment wall time with the engine
   sub-spans nested beneath. *)
let spanned (id, description, run) =
  (id, description, fun () -> Vardi_obs.Obs.span ("experiment." ^ id) run)

let all =
  List.map spanned
  [
    ("E1", "exact cost vs unknowns (Thm 1 / Cor 2)", E_scaling.e1);
    ("E2", "precise second-order simulation (Thm 3)", E_precise.e2);
    ("E3", "3-colorability reduction (Thm 5)", E_reductions.e3);
    ("E4", "QBF via first-order queries (Thm 7)", E_reductions.e4);
    ("E5", "QBF via second-order queries (Thm 9)", E_reductions.e5);
    ("E6", "approximation quality (Thms 11-13)", E_quality.e6);
    ("E7", "approximation scaling (Thm 14)", E_scaling.e7);
    ("E8", "alpha_P formula size (Lemma 10)", E_alpha.e8);
    ("E9", "virtual NE storage (Section 5)", E_storage.e9);
    ("E10", "expression complexity ratio (Section 4)", E_scaling.e10);
    ("E11", "naive-tables baseline (Introduction)", E_baselines.e11);
    ("E12", "one-sided deciders and their residue", E_oneside.e12);
    ("E15", "interned vs string evaluation kernel", E_kernel.e15);
    ("A1", "ablation: naive vs kernel exact engine", Ablations.a1);
    ("A2", "ablation: direct vs algebra back end", Ablations.a2);
    ("A3", "ablation: semantic vs syntactic alpha", Ablations.a3);
    ("A4", "ablation: countermodel search order", Ablations.a4);
  ]

let run_all () = List.map (fun (_, _, run) -> run ()) all

let find id =
  let id = String.uppercase_ascii id in
  List.find_map
    (fun (id', _, run) ->
      if String.equal id (String.uppercase_ascii id') then Some run else None)
    all
