module Certain = Vardi_certain.Engine
module Approx = Vardi_approx.Evaluate
module Translate = Vardi_approx.Translate
module Mapping = Vardi_cwdb.Mapping
module Partition = Vardi_cwdb.Partition
module Relation = Vardi_relational.Relation

let a1 () =
  let rows =
    List.map
      (fun constants ->
        (* Worst case for both: everything unknown. *)
        let db =
          Workloads.parametric_db ~constants ~unknowns:constants ~seed:3
        in
        (* A certainly-true positive sentence: both engines must scan
           their whole structure space (no early exit), making the
           'visited' columns comparable. *)
        let q = Vardi_logic.Parser.query "(). exists x, y. R(x, y)" in
        let mappings = Mapping.count_all db in
        let partitions = Partition.count_valid db in
        let (naive, naive_stats), naive_ms =
          Table.time (fun () ->
              Certain.certain_boolean_stats ~algorithm:Certain.Naive_mappings
                db q)
        in
        let (kernel, kernel_stats), kernel_ms =
          Table.time (fun () ->
              Certain.certain_boolean_stats
                ~algorithm:Certain.Kernel_partitions db q)
        in
        [
          string_of_int constants;
          string_of_int mappings;
          string_of_int partitions;
          string_of_int naive_stats.Certain.structures;
          string_of_int kernel_stats.Certain.structures;
          Table.ms naive_ms;
          Table.ms kernel_ms;
          string_of_bool (naive = kernel);
        ])
      [ 2; 3; 4; 5; 6 ]
  in
  Table.make ~id:"A1"
    ~title:"ablation: naive mapping enumeration vs kernel partitions"
    ~paper_claim:
      "Thm 1 quantifies over |C|^|C| mappings; only their kernels matter \
       (image databases of equal-kernel mappings are isomorphic)"
    ~header:
      [
        "|C|";
        "|C|^|C|";
        "partitions";
        "naive visited";
        "kernel visited";
        "naive ms";
        "kernel ms";
        "agree";
      ]
    rows

let a2 () =
  (* A query whose naive compilation produces a deep plan: universal
     quantification (double complement), equalities (selections over
     domain paddings), and a redundant tautological conjunct the
     optimizer folds away. *)
  let q =
    Vardi_logic.Parser.query
      "(x). (forall y. R(x, y) -> y != x) /\\ (exists z. R(z, x) /\\ z = z) \
       /\\ x = x"
  in
  let rows =
    List.map
      (fun constants ->
        let db =
          Workloads.parametric_db ~constants ~unknowns:(constants / 4) ~seed:5
        in
        let direct, direct_ms =
          Table.time (fun () -> Approx.answer ~backend:Approx.Direct db q)
        in
        let algebra, algebra_ms =
          Table.time (fun () -> Approx.answer ~backend:Approx.Algebra db q)
        in
        let optimized, optimized_ms =
          Table.time (fun () ->
              Approx.answer ~backend:Approx.Algebra_optimized db q)
        in
        let hat = Vardi_approx.Translate.query Vardi_approx.Translate.Semantic q in
        let ph2 = Vardi_cwdb.Ph.ph2 db in
        let plan = Vardi_relational.Compile.query ph2 hat in
        let plan' = Vardi_relational.Optimizer.optimize ph2 plan in
        [
          string_of_int constants;
          Table.ms direct_ms;
          Table.ms algebra_ms;
          Table.ms optimized_ms;
          Printf.sprintf "%d->%d"
            (Vardi_relational.Algebra.size plan)
            (Vardi_relational.Algebra.size plan');
          string_of_bool
            (Relation.equal direct algebra && Relation.equal direct optimized);
        ])
      [ 4; 8; 16; 32 ]
  in
  Table.make ~id:"A2"
    ~title:"ablation: direct evaluation vs relational-algebra back end"
    ~paper_claim:
      "Section 5: the approximation 'can be practically implemented on the \
       top of existing database management systems' — all routes compute \
       the same answers"
    ~header:
      [ "|C|"; "direct ms"; "algebra ms"; "optimized ms"; "plan nodes"; "same answers" ]
    ~notes:
      [
        "the naive algebra pipeline pads subformulas to the full active \
         domain; the optimizer folds constants and pushes selections \
         (plan-node column shows the shrink).";
      ]
    rows

let a4 () =
  let module Graph = Vardi_reductions.Graph in
  let module Three_col = Vardi_reductions.Three_col in
  let rows =
    List.map
      (fun (name, g) ->
        let db = Three_col.database g in
        let run order =
          Table.time (fun () ->
              Certain.certain_boolean_stats ~order db Three_col.query)
        in
        let (fresh_verdict, fresh_stats), fresh_ms = run Certain.Fresh_first in
        let (merge_verdict, merge_stats), merge_ms = run Certain.Merge_first in
        [
          name;
          string_of_bool (not fresh_verdict);
          string_of_int fresh_stats.Certain.structures;
          string_of_int merge_stats.Certain.structures;
          Table.ms fresh_ms;
          Table.ms merge_ms;
          string_of_bool (fresh_verdict = merge_verdict);
        ])
      [
        ("C5", Graph.cycle 5);
        ("C7", Graph.cycle 7);
        ("K4", Graph.complete 4);
        ("rand6", Graph.random ~vertices:6 ~edge_probability:0.5 ~seed:2);
        ("rand7", Graph.random ~vertices:7 ~edge_probability:0.4 ~seed:3);
      ]
  in
  Table.make ~id:"A4"
    ~title:"ablation: structure-visit order for countermodel search (Thm 5)"
    ~paper_claim:
      "the certain-answer countermodels of the 3-colorability reduction are \
       heavily-merged partitions (proper colorings); visiting merged \
       partitions first finds them sooner, while UNSAT instances must \
       exhaust the space either way"
    ~header:
      [
        "graph";
        "3-colorable";
        "fresh-first visited";
        "merge-first visited";
        "fresh ms";
        "merge ms";
        "agree";
      ]
    rows

let a3 () =
  let q = Workloads.mixed_query in
  let rows =
    List.map
      (fun constants ->
        let db =
          Workloads.parametric_db ~constants ~unknowns:(constants / 4) ~seed:5
        in
        let semantic, semantic_ms =
          Table.time (fun () -> Approx.answer ~mode:Translate.Semantic db q)
        in
        let syntactic, syntactic_ms =
          Table.time (fun () -> Approx.answer ~mode:Translate.Syntactic db q)
        in
        [
          string_of_int constants;
          Table.ms semantic_ms;
          Table.ms syntactic_ms;
          string_of_bool (Relation.equal semantic syntactic);
        ])
      [ 4; 8; 16; 32 ]
  in
  Table.make ~id:"A3"
    ~title:"ablation: semantic alpha oracle vs syntactic Lemma-10 formula"
    ~paper_claim:
      "Thm 14 treats alpha_P as a virtually-atomic formula checkable in \
       polynomial time; Lemma 10 supplies the equivalent O(k log k) formula"
    ~header:[ "|C|"; "oracle ms"; "formula ms"; "same answers" ]
    rows
