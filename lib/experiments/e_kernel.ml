module Certain = Vardi_certain.Engine
module Partition = Vardi_cwdb.Partition
module Relation = Vardi_relational.Relation

(* Best-of-three timing of [repeats] back-to-back runs: the small
   |C| = 7 scans finish in microseconds (the survivor set often empties
   after a handful of structures), so a single sample sits at the
   clock's granularity and the speedup column would divide noise. *)
let timed ~repeats f =
  let result = ref None in
  let best = ref infinity in
  for _ = 1 to 3 do
    let r, ms =
      Table.time (fun () ->
          for _ = 2 to repeats do
            ignore (f ())
          done;
          f ())
    in
    result := Some r;
    if ms < !best then best := ms
  done;
  (Option.get !result, !best /. float repeats)

let e15 () =
  let row ?(repeats = 20) label db q =
    let partitions = Partition.count_valid db in
    (* Warm both paths once so plan compilation and major-heap growth
       are not charged to either kernel. *)
    ignore (Certain.answer ~kernel:Certain.Interned db q);
    ignore (Certain.answer ~kernel:Certain.Strings db q);
    let interned, interned_ms =
      timed ~repeats (fun () -> Certain.answer ~kernel:Certain.Interned db q)
    in
    let strings, strings_ms =
      timed ~repeats (fun () -> Certain.answer ~kernel:Certain.Strings db q)
    in
    let speedup =
      if interned_ms <= 0.0 then "n/a"
      else Printf.sprintf "%.2fx" (strings_ms /. interned_ms)
    in
    [
      label;
      string_of_int partitions;
      Table.ms strings_ms;
      Table.ms interned_ms;
      speedup;
      string_of_bool (Relation.equal interned strings);
    ]
  in
  (* The |C| = 7 curve uses the positive query: its certain answer is
     non-empty, so the survivor set never empties and the scan visits
     every partition — the per-structure cost the kernel targets. The
     E1-medium row keeps the bench's mixed query (early exit included)
     so it is comparable with e1/exact-medium in BENCH_5.json. *)
  let curve =
    List.map
      (fun unknowns ->
        let db = Workloads.parametric_db ~constants:7 ~unknowns ~seed:42 in
        (* No "|C|" in the label: these cells land in a markdown
           table. *)
        row (Printf.sprintf "C=7, u=%d" unknowns) db Workloads.positive_query)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let medium =
    row ~repeats:3 "C=16, u=2 (E1-medium)"
      (Workloads.parametric_db ~constants:16 ~unknowns:2 ~seed:7)
      Workloads.mixed_query
  in
  Table.make ~id:"E15"
    ~title:"interned evaluation kernel vs string kernel on the exact scan"
    ~paper_claim:
      "engineering claim (no theorem): interning constants to dense integer \
       codes and sharing quotient prefixes along the partition tree speeds \
       up the Theorem-1 scan without changing any answer"
    ~header:
      [ "workload"; "partitions"; "strings ms"; "interned ms"; "speedup"; "equal" ]
    ~notes:
      [
        "both kernels run the identical structure enumeration order, so the \
         speedup is pure per-structure evaluation cost;";
        "the |C|=7 curve runs the positive query, whose non-empty certain \
         answer forces a full scan over every partition; the E1-medium row \
         runs the bench's mixed query (early exit included) to stay \
         comparable with e1/exact-medium in BENCH_5.json;";
        "at u=0 the scan evaluates a single structure and the interning \
         setup dominates — the interned kernel only pays off once the \
         partition count grows;";
        "equal = the two kernels returned identical relations (the \
         kernel-parity fuzz oracle checks the same across algorithms, \
         orders and domain counts).";
      ]
    (curve @ [ medium ])
