module Certain = Vardi_certain.Engine
module Approx = Vardi_approx.Evaluate
module Partition = Vardi_cwdb.Partition
module Cw_database = Vardi_cwdb.Cw_database
module Relation = Vardi_relational.Relation

let e1 () =
  let constants = 7 in
  let rows =
    List.map
      (fun unknowns ->
        let db = Workloads.parametric_db ~constants ~unknowns ~seed:42 in
        let partitions = Partition.count_valid db in
        let (exact, stats), exact_ms =
          Table.time (fun () -> Certain.answer_stats db Workloads.mixed_query)
        in
        let approx, approx_ms =
          Table.time (fun () -> Approx.answer db Workloads.mixed_query)
        in
        [
          string_of_int unknowns;
          string_of_int partitions;
          string_of_int stats.Certain.pruned_candidates;
          Table.ms exact_ms;
          Table.ms approx_ms;
          string_of_int (Relation.cardinal exact);
          string_of_int (Relation.cardinal approx);
          string_of_bool (Relation.subset approx exact);
        ])
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Table.make ~id:"E1"
    ~title:"exact evaluation cost vs number of unknown constants (|C| = 7)"
    ~paper_claim:
      "Thm 1 / Cor 2: certain answers quantify over all respecting mappings; \
       with no unknowns a single evaluation on Ph1 suffices"
    ~header:
      [
        "unknowns";
        "partitions";
        "pruned";
        "exact ms";
        "approx ms";
        "|exact|";
        "|approx|";
        "sound";
      ]
    ~notes:
      [
        "partitions = kernel partitions examined by the exact engine; 1 when \
         fully specified (Corollary 2);";
        "pruned = candidate tuples discarded by the discrete-structure seed \
         before any per-structure work;";
        "the growth in the partition column is the paper's hidden universal \
         quantification becoming visible.";
      ]
    rows

(* A query with [depth] alternating quantifiers:
   ∃x1 ∀x2 ∃x3 ... (R(x1,x2) ∧ R(x2,x3) ∧ ... → chained disjunction).
   Quantifier depth is the paper's driver for expression complexity. *)
let deep_query depth =
  let module F = Vardi_logic.Formula in
  let module T = Vardi_logic.Term in
  let var i = Printf.sprintf "x%d" i in
  let rec chain i =
    if i >= depth then []
    else F.Atom ("R", [ T.var (var i); T.var (var (i + 1)) ]) :: chain (i + 1)
  in
  let matrix = F.disj (chain 1) in
  let rec wrap i body =
    if i = 0 then body
    else
      wrap (i - 1)
        (if i mod 2 = 1 then F.Exists (var i, body) else F.Forall (var i, body))
  in
  Vardi_logic.Query.boolean (wrap depth matrix)

let e10 () =
  let lb = Workloads.parametric_db ~constants:5 ~unknowns:2 ~seed:13 in
  let pb = Vardi_cwdb.Ph.ph1 lb in
  let partitions = Partition.count_valid lb in
  let rows =
    List.map
      (fun depth ->
        let q = deep_query depth in
        (* Repeat the cheap physical evaluation to get a measurable
           time. *)
        let repeats = 50 in
        let _, physical_ms =
          Table.time (fun () ->
              for _ = 1 to repeats do
                ignore (Vardi_relational.Eval.satisfies pb (Vardi_logic.Query.body q))
              done)
        in
        let physical_ms = physical_ms /. float repeats in
        let (_, stats), logical_ms =
          Table.time (fun () -> Certain.certain_boolean_stats lb q)
        in
        let ratio =
          if physical_ms <= 0.0 then "n/a"
          else Printf.sprintf "%.0f" (logical_ms /. physical_ms)
        in
        [
          string_of_int depth;
          string_of_int (Vardi_logic.Formula.size (Vardi_logic.Query.body q));
          Table.ms physical_ms;
          Table.ms logical_ms;
          string_of_int stats.Certain.structures;
          ratio;
        ])
      [ 2; 4; 6; 8; 10 ]
  in
  Table.make ~id:"E10"
    ~title:
      (Printf.sprintf
         "expression complexity: fixed LB (%d valid partitions), growing query"
         partitions)
    ~paper_claim:
      "Section 4: 'the expression complexity over logical databases is \
       greater only by a constant factor than the expression complexity over \
       physical databases' — the factor is the (query-independent) number of \
       structures"
    ~header:
      [
        "quantifier depth";
        "formula size";
        "physical ms";
        "logical ms";
        "structures";
        "ratio";
      ]
    ~notes:
      [
        "the ratio stays flat as the query grows — that flatness is the \
         paper's constant factor; it is bounded by the structures column \
         (quotient databases are no larger than Ph1, so each pass costs at \
         most one physical evaluation).";
      ]
    rows

let e7 () =
  let exact_budget_partitions = 300_000 in
  let rows =
    List.map
      (fun constants ->
        (* Unknowns scale with the database: the worst-case regime in
           which Theorem 5 predicts exact evaluation collapses. *)
        let unknowns = constants / 2 in
        let db = Workloads.parametric_db ~constants ~unknowns ~seed:7 in
        let partitions =
          Partition.count_valid_up_to (exact_budget_partitions + 1) db
        in
        let approx, approx_ms =
          Table.time (fun () -> Approx.answer db Workloads.mixed_query)
        in
        let exact_ms_cell, sound_cell =
          if partitions > exact_budget_partitions then ("(skipped)", "-")
          else
            let exact, exact_ms =
              Table.time (fun () -> Certain.answer db Workloads.mixed_query)
            in
            (Table.ms exact_ms, string_of_bool (Relation.subset approx exact))
        in
        [
          string_of_int constants;
          string_of_int (Cw_database.size db);
          (if partitions > exact_budget_partitions then
             Printf.sprintf ">%d" exact_budget_partitions
           else string_of_int partitions);
          exact_ms_cell;
          Table.ms approx_ms;
          sound_cell;
        ])
      [ 4; 6; 8; 10; 12; 16; 24; 32 ]
  in
  Table.make ~id:"E7"
    ~title:
      "data-complexity scaling: approximation vs exact (|C|/2 unknowns)"
    ~paper_claim:
      "Thm 14: the approximation has the same (polynomial) data complexity \
       as physical-database evaluation, while exact evaluation is \
       co-NP-complete (Thm 5)"
    ~header:
      [ "|C|"; "db size"; "partitions"; "exact ms"; "approx ms"; "sound" ]
    ~notes:
      [
        "exact evaluation is skipped when the partition count exceeds the \
         budget — the point of the experiment.";
      ]
    rows
