(** The experiment registry: every table of the reproduction, in
    report order. *)

(** [(id, description, runner)] triples: the experiments E1–E12, then
    the ablations A1–A4. Each runner executes under a
    [Vardi_obs.Obs.span] named [experiment.<id>], so tracing a report
    run yields a per-experiment cost breakdown. *)
val all : (string * string * (unit -> Table.t)) list

(** [run_all ()] executes every experiment and returns the tables. *)
val run_all : unit -> Table.t list

(** [find id] looks up one experiment by id (case-insensitive). *)
val find : string -> (unit -> Table.t) option
