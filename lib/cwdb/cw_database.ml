module Vocabulary = Vardi_logic.Vocabulary

type fact = {
  pred : string;
  args : string list;
}

module Fact_set = Set.Make (struct
  type t = fact

  let compare a b =
    let c = String.compare a.pred b.pred in
    if c <> 0 then c else List.compare String.compare a.args b.args
end)

module Pair_set = Set.Make (struct
  type t = string * string

  let compare (a1, a2) (b1, b2) =
    let c = String.compare a1 b1 in
    if c <> 0 then c else String.compare a2 b2
end)

type t = {
  vocabulary : Vocabulary.t;
  facts : Fact_set.t;
  distinct : Pair_set.t;
}

let normalize_pair c d = if String.compare c d <= 0 then (c, d) else (d, c)

let check_fact vocabulary { pred; args } =
  (match Vocabulary.arity_opt vocabulary pred with
  | None ->
    invalid_arg (Printf.sprintf "Cw_database: undeclared predicate %s" pred)
  | Some k ->
    if List.length args <> k then
      invalid_arg
        (Printf.sprintf "Cw_database: fact %s has %d arguments, declared %d"
           pred (List.length args) k));
  List.iter
    (fun c ->
      if not (Vocabulary.mem_constant vocabulary c) then
        invalid_arg
          (Printf.sprintf "Cw_database: fact argument %s is not a constant" c))
    args

let check_pair vocabulary c d =
  if String.equal c d then
    invalid_arg
      (Printf.sprintf "Cw_database: uniqueness axiom ~(%s = %s) is inconsistent"
         c d);
  List.iter
    (fun x ->
      if not (Vocabulary.mem_constant vocabulary x) then
        invalid_arg (Printf.sprintf "Cw_database: %s is not a constant" x))
    [ c; d ]

let make ~vocabulary ~facts ~distinct =
  if Vocabulary.constants vocabulary = [] then
    invalid_arg "Cw_database: the vocabulary needs at least one constant";
  List.iter (check_fact vocabulary) facts;
  List.iter (fun (c, d) -> check_pair vocabulary c d) distinct;
  {
    vocabulary;
    facts = Fact_set.of_list facts;
    distinct =
      Pair_set.of_list (List.map (fun (c, d) -> normalize_pair c d) distinct);
  }

let vocabulary db = db.vocabulary
let constants db = Vocabulary.constants db.vocabulary
let facts db = Fact_set.elements db.facts

let facts_of db p =
  Fact_set.fold
    (fun f acc -> if String.equal f.pred p then f.args :: acc else acc)
    db.facts []
  |> List.rev

let distinct_pairs db = Pair_set.elements db.distinct

let are_distinct db c d =
  (not (String.equal c d)) && Pair_set.mem (normalize_pair c d) db.distinct

let all_pairs cs =
  let rec go acc = function
    | [] -> acc
    | c :: rest -> go (List.fold_left (fun a d -> (c, d) :: a) acc rest) rest
  in
  go [] cs

let is_fully_specified db =
  List.for_all (fun (c, d) -> are_distinct db c d) (all_pairs (constants db))

let fully_specify db =
  {
    db with
    distinct =
      List.fold_left
        (fun acc (c, d) -> Pair_set.add (normalize_pair c d) acc)
        db.distinct
        (all_pairs (constants db));
  }

let known_values db =
  let cs = constants db in
  List.filter
    (fun c ->
      List.for_all
        (fun d -> String.equal c d || are_distinct db c d)
        cs)
    cs

let unknown_values db =
  let known = known_values db in
  List.filter (fun c -> not (List.mem c known)) (constants db)

let add_fact db fact =
  check_fact db.vocabulary fact;
  { db with facts = Fact_set.add fact db.facts }

let add_distinct db c d =
  check_pair db.vocabulary c d;
  { db with distinct = Pair_set.add (normalize_pair c d) db.distinct }

let remove_fact db fact =
  check_fact db.vocabulary fact;
  if not (Fact_set.mem fact db.facts) then
    invalid_arg
      (Printf.sprintf "Cw_database: fact %s(%s) is not in the database"
         fact.pred
         (String.concat ", " fact.args));
  { db with facts = Fact_set.remove fact db.facts }

let merge_constants db ~keep ~drop =
  List.iter
    (fun x ->
      if not (Vocabulary.mem_constant db.vocabulary x) then
        invalid_arg (Printf.sprintf "Cw_database: %s is not a constant" x))
    [ keep; drop ];
  if String.equal keep drop then
    invalid_arg
      (Printf.sprintf "Cw_database: cannot merge constant %s with itself" keep);
  if are_distinct db keep drop then
    invalid_arg
      (Printf.sprintf
         "Cw_database: constants %s and %s carry a uniqueness axiom; closing \
          them to equal is inconsistent"
         keep drop);
  let subst c = if String.equal c drop then keep else c in
  let vocabulary =
    Vocabulary.make
      ~constants:
        (List.filter
           (fun c -> not (String.equal c drop))
           (Vocabulary.constants db.vocabulary))
      ~predicates:(Vocabulary.predicates db.vocabulary)
  in
  let facts =
    Fact_set.fold
      (fun f acc -> Fact_set.add { f with args = List.map subst f.args } acc)
      db.facts Fact_set.empty
  in
  let distinct =
    Pair_set.fold
      (fun (c, d) acc ->
        let c = subst c and d = subst d in
        (* A pair collapsing onto itself would be ¬(keep = keep); it can
           only arise from a (c, d) pair where the merge was checked
           inconsistent above, so this is unreachable — but keep the
           guard so the invariant is local. *)
        if String.equal c d then acc else Pair_set.add (normalize_pair c d) acc)
      db.distinct Pair_set.empty
  in
  { vocabulary; facts; distinct }

let size db =
  Fact_set.cardinal db.facts
  + Pair_set.cardinal db.distinct
  + List.length (constants db)

let equal a b =
  Vocabulary.equal a.vocabulary b.vocabulary
  && Fact_set.equal a.facts b.facts
  && Pair_set.equal a.distinct b.distinct

let pp ppf db =
  let pp_fact ppf f =
    Fmt.pf ppf "%s(%a)" f.pred Fmt.(list ~sep:(any ", ") string) f.args
  in
  let pp_pair ppf (c, d) = Fmt.pf ppf "%s != %s" c d in
  Fmt.pf ppf "@[<v>%a@,facts: %a@,distinct: %a@]" Vocabulary.pp db.vocabulary
    Fmt.(list ~sep:(any "; ") pp_fact)
    (facts db)
    Fmt.(list ~sep:(any "; ") pp_pair)
    (distinct_pairs db)
