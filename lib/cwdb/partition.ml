module String_map = Map.Make (String)

type t = {
  db : Cw_database.t;
  (* Maps each constant to the minimum element of its block. *)
  repr : string String_map.t;
}

let blocks p =
  let by_repr =
    String_map.fold
      (fun c r acc ->
        String_map.update r
          (function None -> Some [ c ] | Some cs -> Some (c :: cs))
          acc)
      p.repr String_map.empty
  in
  String_map.bindings by_repr
  |> List.map (fun (_, cs) -> List.sort String.compare cs)

let representative p c =
  match String_map.find_opt c p.repr with
  | Some r -> r
  | None -> raise Not_found

let to_mapping p =
  Mapping.of_assoc p.db (String_map.bindings p.repr)

let quotient p = Mapping.image_db (to_mapping p)

let discrete db =
  {
    db;
    repr =
      List.fold_left
        (fun acc c -> String_map.add c c acc)
        String_map.empty (Cw_database.constants db);
  }

let of_blocks db blocks =
  let constants = Cw_database.constants db in
  let repr =
    List.fold_left
      (fun acc block ->
        match List.sort String.compare block with
        | [] -> invalid_arg "Partition.of_blocks: empty block"
        | rep :: _ as sorted ->
          List.iter
            (fun c ->
              List.iter
                (fun d ->
                  if Cw_database.are_distinct db c d then
                    invalid_arg
                      (Printf.sprintf
                         "Partition.of_blocks: block merges %s and %s, which \
                          carry a uniqueness axiom"
                         c d))
                sorted)
            sorted;
          List.fold_left
            (fun acc c ->
              if String_map.mem c acc then
                invalid_arg
                  (Printf.sprintf "Partition.of_blocks: %s in two blocks" c);
              String_map.add c rep acc)
            acc sorted)
      String_map.empty blocks
  in
  List.iter
    (fun c ->
      if not (String_map.mem c repr) then
        invalid_arg (Printf.sprintf "Partition.of_blocks: %s not covered" c))
    constants;
  if String_map.cardinal repr <> List.length constants then
    invalid_arg "Partition.of_blocks: blocks mention non-constants";
  { db; repr }

type order =
  | Fresh_first
  | Merge_first

(* Enumerate set partitions by inserting constants one at a time into
   an existing block or a fresh one — the standard restricted-growth
   scheme — skipping insertions that would merge a distinct pair.
   Blocks store members in descending insertion order; constants are
   inserted in ascending order, so the minimum is the last element and
   [List.rev] puts it first when building the representative map.

   Ordering guarantee: with [Fresh_first], "open a fresh block" is
   tried before any merge at every step, so the discrete partition is
   produced first; [Merge_first] mirrors the choice order, producing
   maximally-merged partitions early. *)
let all_valid ?(order = Fresh_first) db =
  let constants = Cw_database.constants db in
  let compatible block c =
    List.for_all (fun d -> not (Cw_database.are_distinct db c d)) block
  in
  let rec expand blocks remaining () =
    match remaining with
    | [] ->
      let repr =
        List.fold_left
          (fun acc block ->
            match block with
            | [] -> acc
            | rep :: _ ->
              List.fold_left (fun acc c -> String_map.add c rep acc) acc block)
          String_map.empty
          (List.map List.rev blocks)
      in
      Seq.Cons ({ db; repr }, Seq.empty)
    | c :: rest ->
      let fresh = expand ([ c ] :: blocks) rest in
      let joins =
        List.mapi
          (fun i block ->
            if compatible block c then
              let blocks' =
                List.mapi (fun j b -> if i = j then c :: b else b) blocks
              in
              Some (expand blocks' rest)
            else None)
          blocks
        |> List.filter_map Fun.id
      in
      (* [Seq.concat] keeps the branch list right-nested; a
         [fold_left Seq.append] here left-nests it, making every
         traversal step re-walk all earlier branches — quadratic in the
         number of join branches. *)
      let join_seq = Seq.concat (List.to_seq joins) in
      (match order with
      | Fresh_first -> Seq.append fresh join_seq ()
      | Merge_first -> Seq.append join_seq fresh ())
  in
  expand [] constants

let count_valid db = Seq.fold_left (fun n _ -> n + 1) 0 (all_valid db)

let count_valid_up_to cap db =
  let rec go n seq =
    if n >= cap then n
    else
      match seq () with
      | Seq.Nil -> n
      | Seq.Cons (_, rest) -> go (n + 1) rest
  in
  go 0 (all_valid db)

let equal a b =
  Cw_database.equal a.db b.db && String_map.equal String.equal a.repr b.repr

let pp ppf p =
  let pp_block ppf b =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") string) b
  in
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any " | ") pp_block) (blocks p)
