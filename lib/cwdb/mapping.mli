(** Mappings [h : C → C] (paper, Section 3.1).

    Theorem 1 characterizes certain answers through all mappings of the
    constant set into itself that {e respect} [T]: whenever
    [¬(ci = cj) ∈ T], [h(ci) ≠ h(cj)]. *)

type t

(** [of_assoc db pairs] builds a mapping over the constants of [db];
    constants missing from [pairs] map to themselves.
    @raise Invalid_argument if a pair mentions a non-constant on either
    side, or if the same constant is bound twice (even to the same
    target). *)
val of_assoc : Cw_database.t -> (string * string) list -> t

val identity : Cw_database.t -> t

(** [apply h c].
    @raise Not_found when [c] is not a constant of the database. *)
val apply : t -> string -> string

val apply_tuple : t -> string list -> string list

(** [respects h] decides whether [h] respects the uniqueness axioms of
    its database. *)
val respects : t -> bool

(** [image_db h] is [h(Ph₁(LB))] (Section 3.1): domain [h(C)],
    constants [h ∘ I], relations [h(I(P))]. *)
val image_db : t -> Vardi_relational.Database.t

(** [all db] enumerates every mapping [h : C → C] — all [|C|^|C|] of
    them, lazily. The cap is checked with exact integer arithmetic, so
    the error fires precisely when [|C|^|C| > 2^24] — never a silent
    float truncation.
    @raise Invalid_argument when [|C|^|C|] exceeds [2^24] (use the
    kernel-partition engine instead at that size). *)
val all : Cw_database.t -> t Seq.t

(** [all_respecting db] is [all db] filtered by {!respects}. *)
val all_respecting : Cw_database.t -> t Seq.t

(** [count_all db] is [|C|^|C|] — the search-space measure reported in
    the paper's discussion of expression complexity ("k is exponential
    in the size of LB"). Computed with overflow-checked integer
    arithmetic, saturating at [max_int] (exact for [|C| <= 15] on
    64-bit). *)
val count_all : Cw_database.t -> int

(** The enumeration cap of {!all}: [2^24]. *)
val enumeration_cap : int

val equal : t -> t -> bool
val pp : t Fmt.t
