(** Closed-world logical databases (paper, Section 2.2).

    A CW logical database [(L, T)] is determined by its {e atomic fact
    axioms} and {e uniqueness axioms}; the domain-closure axiom and the
    completion axioms are implied (paper: "In practice it suffices to
    specify the atomic fact axioms and the uniqueness axioms"). This
    module stores exactly those two components; {!Axioms} reconstructs
    the full five-component theory on demand. *)

(** An atomic fact axiom [P(c1, ..., ck)]. *)
type fact = {
  pred : string;
  args : string list;  (** constant symbols *)
}

type t

(** [make ~vocabulary ~facts ~distinct] builds a CW database.

    Validation, per Section 2.2:
    - every fact predicate is declared in [vocabulary] with the right
      arity, and every fact argument is a constant of [vocabulary];
    - every [distinct] pair consists of two {e different} constants of
      [vocabulary] (an axiom [¬(c = c)] would make the theory
      inconsistent, and the paper assumes no equalities in [T]);
    - the vocabulary has at least one constant (the domain-closure
      axiom needs a nonempty disjunction).

    Pairs are stored unordered ([¬(ci=cj)] is identified with
    [¬(cj=ci)]); duplicates are dropped.

    @raise Invalid_argument when validation fails. *)
val make :
  vocabulary:Vardi_logic.Vocabulary.t ->
  facts:fact list ->
  distinct:(string * string) list ->
  t

val vocabulary : t -> Vardi_logic.Vocabulary.t

(** The constant set [C] of [L], sorted. *)
val constants : t -> string list

(** Atomic fact axioms, sorted. *)
val facts : t -> fact list

(** [facts_of db p] is the list of argument tuples of the atomic facts
    about predicate [p]. *)
val facts_of : t -> string -> string list list

(** Uniqueness axioms as sorted unordered pairs [(ci, cj)] with
    [ci < cj]. *)
val distinct_pairs : t -> (string * string) list

(** [are_distinct db c d] holds when [¬(c = d)] is an axiom. *)
val are_distinct : t -> string -> string -> bool

(** A database is fully specified when every pair of distinct constants
    carries a uniqueness axiom (paper, Section 2.2). *)
val is_fully_specified : t -> bool

(** [fully_specify db] adds all missing uniqueness axioms. *)
val fully_specify : t -> t

(** Constants that are {e known values}: distinct from every other
    constant. The complement is the unknown-value set [U] of Section 5's
    virtual-NE representation. *)
val known_values : t -> string list

val unknown_values : t -> string list

(** [add_fact db fact] and [add_distinct db c d] extend the theory,
    with the same validation as {!make}. *)
val add_fact : t -> fact -> t

val add_distinct : t -> string -> string -> t

(** [remove_fact db fact] retracts an atomic fact axiom.

    @raise Invalid_argument if [fact] fails the {!make} validation or is
    not in the database (retracting an absent fact is almost always a
    caller bug, so it is loud rather than a no-op). *)
val remove_fact : t -> fact -> t

(** [merge_constants db ~keep ~drop] closes the unknown pair
    [(keep, drop)] to {e true}: every occurrence of [drop] in a fact or
    uniqueness axiom is rewritten to [keep], and [drop] leaves the
    vocabulary. This is the CW-database form of adding the equality
    [keep = drop] to the theory (the paper's theories contain no
    equalities, so the merge is performed syntactically).

    @raise Invalid_argument if either constant is undeclared, if
    [keep = drop], or if the pair carries a uniqueness axiom — then the
    equality would contradict [¬(keep = drop)] and the merged theory
    would be inconsistent. *)
val merge_constants : t -> keep:string -> drop:string -> t

(** Size of the database: number of facts plus uniqueness axioms plus
    constants — the data-complexity measure's input size. *)
val size : t -> int

val equal : t -> t -> bool
val pp : t Fmt.t
