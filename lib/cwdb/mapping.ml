module Database = Vardi_relational.Database
module String_map = Map.Make (String)

type t = {
  db : Cw_database.t;
  map : string String_map.t;  (* total on the constants of [db] *)
}

let of_assoc db pairs =
  let constants = Cw_database.constants db in
  let is_constant c = List.mem c constants in
  (* A second binding for [c] would be silently shadowed by an assoc
     lookup; reject the contradiction instead. *)
  let bound =
    List.fold_left
      (fun acc (c, d) ->
        if not (is_constant c && is_constant d) then
          invalid_arg
            (Printf.sprintf "Mapping.of_assoc: %s -> %s mentions a non-constant"
               c d);
        if String_map.mem c acc then
          invalid_arg
            (Printf.sprintf "Mapping.of_assoc: duplicate binding for %s" c);
        String_map.add c d acc)
      String_map.empty pairs
  in
  let map =
    List.fold_left
      (fun acc c ->
        let target =
          match String_map.find_opt c bound with Some d -> d | None -> c
        in
        String_map.add c target acc)
      String_map.empty constants
  in
  { db; map }

let identity db = of_assoc db []

let apply h c =
  match String_map.find_opt c h.map with
  | Some d -> d
  | None -> raise Not_found

let apply_tuple h tuple = List.map (apply h) tuple

let respects h =
  List.for_all
    (fun (c, d) -> not (String.equal (apply h c) (apply h d)))
    (Cw_database.distinct_pairs h.db)

let image_db h = Database.map_elements (apply h) (Ph.ph1 h.db)

let enumeration_cap = 1 lsl 24

(* [n^n] in overflow-checked integer arithmetic, saturating at
   [max_int]. Exact whenever the true value fits in an [int]; the old
   float-based [n ** n] silently lost precision once [n^n] crossed
   2^53. *)
let count_all db =
  let n = List.length (Cw_database.constants db) in
  if n = 0 then 1
  else
    let rec go acc i =
      if i = 0 then acc
      else if acc > max_int / n then max_int
      else go (acc * n) (i - 1)
    in
    go 1 n

let all db =
  let constants = Array.of_list (Cw_database.constants db) in
  let n = Array.length constants in
  if n = 0 then
    (* 0^0 = 1: the unique (empty) mapping. Unreachable through
       [Cw_database.make], which requires a constant, but kept explicit
       rather than papered over with a [max total 1] hack. *)
    Seq.return { db; map = String_map.empty }
  else begin
    (* Check the cap with integers before any counter arithmetic, so
       the error fires exactly when n^n > cap — no float rounding. *)
    let total =
      let rec go acc i =
        if i = 0 then acc
        else if acc > enumeration_cap / n then
          invalid_arg
            (Printf.sprintf
               "Mapping.all: %d^%d mappings exceeds the enumeration cap" n n)
        else go (acc * n) (i - 1)
      in
      go 1 n
    in
    (* Enumerate base-n counters of n digits; digit i gives h(c_i). *)
    let of_index index =
      let rec digits i value acc =
        if i >= n then acc
        else
          digits (i + 1) (value / n)
            (String_map.add constants.(i) constants.(value mod n) acc)
      in
      { db; map = digits 0 index String_map.empty }
    in
    Seq.map of_index (Seq.init total Fun.id)
  end

let all_respecting db = Seq.filter respects (all db)

let equal a b =
  Cw_database.equal a.db b.db && String_map.equal String.equal a.map b.map

let pp ppf h =
  let bindings = String_map.bindings h.map in
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any " -> ") string string))
    bindings
