exception Parse_error of int * string

module String_set = Set.Make (String)

type state = {
  tokens : Lexer.located array;
  mutable cursor : int;
}

let peek st = st.tokens.(st.cursor)
let advance st = st.cursor <- st.cursor + 1

let next st =
  let t = peek st in
  advance st;
  t

let error located msg = raise (Parse_error (located.Lexer.pos, msg))

let expect st token what =
  let t = next st in
  if t.Lexer.token <> token then
    error t
      (Fmt.str "expected %s but found %a" what Lexer.pp_token t.Lexer.token)

let ident st what =
  let t = next st in
  match t.Lexer.token with
  | Lexer.IDENT s -> s
  | Lexer.INT i -> string_of_int i
  | other -> error t (Fmt.str "expected %s but found %a" what Lexer.pp_token other)

(* Comma-separated identifier list for quantifier binders. *)
let rec binders st acc =
  let x = ident st "a variable name" in
  match (peek st).Lexer.token with
  | Lexer.COMMA ->
    advance st;
    binders st (x :: acc)
  | _ -> List.rev (x :: acc)

(* Comma-separated [P/k] list for second-order binders. *)
let rec pred_binders st acc =
  let p = ident st "a predicate name" in
  expect st Lexer.SLASH "'/' before the arity";
  let t = next st in
  let k =
    match t.Lexer.token with
    | Lexer.INT k when k >= 0 -> k
    | other -> error t (Fmt.str "expected an arity but found %a" Lexer.pp_token other)
  in
  match (peek st).Lexer.token with
  | Lexer.COMMA ->
    advance st;
    pred_binders st ((p, k) :: acc)
  | _ -> List.rev ((p, k) :: acc)

let term_of_ident vars name =
  if String_set.mem name vars then Term.Var name else Term.Const name

(* Cap on syntactic nesting. Recursive descent uses the OCaml stack, so
   without a bound adversarial input ("~~~~~...", "((((...") kills the
   process with [Stack_overflow] instead of raising the documented
   [Parse_error]. The cap is far above anything the pretty-printer or a
   human produces, and low enough to stay well inside the stack. [d]
   counts the nesting points where the stack genuinely grows: negation,
   quantifier bodies, parenthesized groups and implication right-hand
   sides (the one right-recursive binary case). *)
let max_nesting = 10_000

let check_nesting st d =
  if d > max_nesting then
    error (peek st)
      (Fmt.str "formula nesting exceeds the maximum depth of %d" max_nesting)

let rec parse_iff st d vars =
  let lhs = parse_implies st d vars in
  match (peek st).Lexer.token with
  | Lexer.DARROW ->
    advance st;
    let rhs = parse_implies st d vars in
    parse_iff_tail st d vars (Formula.Iff (lhs, rhs))
  | _ -> lhs

and parse_iff_tail st d vars acc =
  match (peek st).Lexer.token with
  | Lexer.DARROW ->
    advance st;
    let rhs = parse_implies st d vars in
    parse_iff_tail st d vars (Formula.Iff (acc, rhs))
  | _ -> acc

and parse_implies st d vars =
  let lhs = parse_or st d vars in
  match (peek st).Lexer.token with
  | Lexer.ARROW ->
    advance st;
    check_nesting st d;
    let rhs = parse_implies st (d + 1) vars in
    Formula.Implies (lhs, rhs)
  | _ -> lhs

and parse_or st d vars =
  let lhs = parse_and st d vars in
  parse_or_tail st d vars lhs

and parse_or_tail st d vars acc =
  match (peek st).Lexer.token with
  | Lexer.OR ->
    advance st;
    let rhs = parse_and st d vars in
    parse_or_tail st d vars (Formula.Or (acc, rhs))
  | _ -> acc

and parse_and st d vars =
  let lhs = parse_unary st d vars in
  parse_and_tail st d vars lhs

and parse_and_tail st d vars acc =
  match (peek st).Lexer.token with
  | Lexer.AND ->
    advance st;
    let rhs = parse_unary st d vars in
    parse_and_tail st d vars (Formula.And (acc, rhs))
  | _ -> acc

and parse_unary st d vars =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.NOT ->
    advance st;
    check_nesting st d;
    Formula.Not (parse_unary st (d + 1) vars)
  | Lexer.EXISTS ->
    advance st;
    let xs = binders st [] in
    expect st Lexer.DOT "'.' after the quantified variables";
    let vars' = List.fold_left (fun s x -> String_set.add x s) vars xs in
    check_nesting st d;
    let body = parse_iff st (d + 1) vars' in
    Formula.exists_many xs body
  | Lexer.FORALL ->
    advance st;
    let xs = binders st [] in
    expect st Lexer.DOT "'.' after the quantified variables";
    let vars' = List.fold_left (fun s x -> String_set.add x s) vars xs in
    check_nesting st d;
    let body = parse_iff st (d + 1) vars' in
    Formula.forall_many xs body
  | Lexer.EXISTS2 ->
    advance st;
    let ps = pred_binders st [] in
    expect st Lexer.DOT "'.' after the quantified predicates";
    check_nesting st d;
    let body = parse_iff st (d + 1) vars in
    List.fold_right (fun (p, k) f -> Formula.Exists2 (p, k, f)) ps body
  | Lexer.FORALL2 ->
    advance st;
    let ps = pred_binders st [] in
    expect st Lexer.DOT "'.' after the quantified predicates";
    check_nesting st d;
    let body = parse_iff st (d + 1) vars in
    List.fold_right (fun (p, k) f -> Formula.Forall2 (p, k, f)) ps body
  | _ -> parse_atomic st d vars

and parse_atomic st d vars =
  let t = next st in
  match t.Lexer.token with
  | Lexer.TRUE -> Formula.True
  | Lexer.FALSE -> Formula.False
  | Lexer.LPAREN ->
    check_nesting st d;
    let f = parse_iff st (d + 1) vars in
    expect st Lexer.RPAREN "')'";
    f
  | Lexer.IDENT name -> parse_after_name st vars name
  | Lexer.INT i -> parse_after_name st vars (string_of_int i)
  | other ->
    error t (Fmt.str "expected a formula but found %a" Lexer.pp_token other)

(* After an identifier we may see an atom [P(...)], or an equality
   [t = u] / inequality [t != u] whose left term is the identifier. *)
and parse_after_name st vars name =
  match (peek st).Lexer.token with
  | Lexer.LPAREN ->
    advance st;
    let args =
      match (peek st).Lexer.token with
      | Lexer.RPAREN -> []
      | _ -> parse_terms st vars []
    in
    expect st Lexer.RPAREN "')' closing the argument list";
    Formula.Atom (name, args)
  | Lexer.EQ ->
    advance st;
    let rhs = parse_term st vars in
    Formula.Eq (term_of_ident vars name, rhs)
  | Lexer.NEQ ->
    advance st;
    let rhs = parse_term st vars in
    Formula.Not (Formula.Eq (term_of_ident vars name, rhs))
  | other ->
    error (peek st)
      (Fmt.str "expected '(', '=' or '!=' after %s but found %a" name
         Lexer.pp_token other)

and parse_terms st vars acc =
  let t = parse_term st vars in
  match (peek st).Lexer.token with
  | Lexer.COMMA ->
    advance st;
    parse_terms st vars (t :: acc)
  | _ -> List.rev (t :: acc)

and parse_term st vars =
  let name = ident st "a term" in
  term_of_ident vars name

let make_state input = { tokens = Array.of_list (Lexer.tokenize input); cursor = 0 }

let finish st what =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.EOF -> ()
  | other ->
    error t (Fmt.str "trailing input after %s: %a" what Lexer.pp_token other)

let formula ?(free_vars = []) input =
  let st = make_state input in
  let vars = String_set.of_list free_vars in
  let f = parse_iff st 0 vars in
  finish st "the formula";
  f

let query input =
  let st = make_state input in
  expect st Lexer.LPAREN "'(' opening the query head";
  let head =
    match (peek st).Lexer.token with
    | Lexer.RPAREN -> []
    | _ -> binders st []
  in
  expect st Lexer.RPAREN "')' closing the query head";
  expect st Lexer.DOT "'.' after the query head";
  let vars = String_set.of_list head in
  let body = parse_iff st 0 vars in
  finish st "the query";
  Query.make head body

let term ?(free_vars = []) input =
  let st = make_state input in
  let t = parse_term st (String_set.of_list free_vars) in
  finish st "the term";
  t
