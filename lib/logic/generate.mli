(** Seeded random generation of vocabularies, formulas and queries — the
    substrate of the {!Vardi_fuzz} differential fuzzer and a fuzzing aid
    for engine implementors (the test suite's property-based tests use
    an equivalent QCheck generator; this one has no test-framework
    dependency and is part of the public API).

    All generation is deterministic in the [Random.State.t]. Generated
    formulas are well-formed over the given vocabulary: predicates are
    applied at their declared arity, constants are drawn from the
    vocabulary, and quantified variables are drawn from the profile's
    variable pool. *)

type profile = {
  depth : int;  (** maximum connective nesting (default 3) *)
  quantifier_depth : int;
    (** maximum {e quantifier} nesting, bounded separately from [depth]
        so the certain-answer engines' cost stays predictable
        (default 2) *)
  allow_negation : bool;  (** include [¬], [→] (default true) *)
  allow_quantifiers : bool;  (** include [∃]/[∀] (default true) *)
  var_pool : string list;
    (** names for quantified variables (default [gx]/[gy]/[gz]; keep
        them disjoint from the vocabulary's constants, or the printed
        concrete syntax becomes ambiguous) *)
}

val default_profile : profile

(** [formula ?profile ~state vocabulary ~vars] generates a formula
    whose free variables are drawn from [vars] (possibly fewer, never
    others).
    @raise Invalid_argument when the vocabulary has no predicate and no
    constant and [vars] is empty (no atoms can be built). *)
val formula :
  ?profile:profile ->
  state:Random.State.t ->
  Vocabulary.t ->
  vars:string list ->
  Formula.t

(** [sentence ?profile ~state vocabulary] generates a closed formula
    (free variables are quantified away). *)
val sentence :
  ?profile:profile -> state:Random.State.t -> Vocabulary.t -> Formula.t

(** [query ?profile ~state vocabulary ~arity] generates a query with
    [arity] head variables. *)
val query :
  ?profile:profile ->
  state:Random.State.t ->
  Vocabulary.t ->
  arity:int ->
  Query.t

(** Name pools the vocabulary generator draws from, in order:
    constants [a], [b], ... and predicates [P], [Q], ... (overflow
    falls back to [c<i>] / [P<i>]). Exposed so downstream generators
    (e.g. {!Vardi_fuzz}) can build matching vocabularies. *)
val constant_pool : string list

val predicate_pool : string list

(** [vocabulary ~state ()] generates a random vocabulary with
    [1 .. max_constants] constants (names [a], [b], ...) and
    [1 .. max_predicates] predicates (names [P], [Q], ...) of arity
    [0 .. max_arity]. Defaults: 4 constants, 3 predicates, arity 2.
    Constant and variable-pool names are disjoint by construction.
    @raise Invalid_argument when [max_constants < 1],
    [max_predicates < 1], or [max_arity < 0]. *)
val vocabulary :
  ?max_constants:int ->
  ?max_predicates:int ->
  ?max_arity:int ->
  state:Random.State.t ->
  unit ->
  Vocabulary.t
