type profile = {
  depth : int;
  quantifier_depth : int;
  allow_negation : bool;
  allow_quantifiers : bool;
  var_pool : string list;
}

let default_var_pool = [ "gx"; "gy"; "gz" ]

let default_profile =
  {
    depth = 3;
    quantifier_depth = 2;
    allow_negation = true;
    allow_quantifiers = true;
    var_pool = default_var_pool;
  }

let pick state xs = List.nth xs (Random.State.int state (List.length xs))

let gen_term state vocabulary vars =
  let constants = Vocabulary.constants vocabulary in
  match vars, constants with
  | [], [] -> invalid_arg "Generate: no variables and no constants"
  | [], _ -> Term.const (pick state constants)
  | _, [] -> Term.var (pick state vars)
  | _, _ ->
    if Random.State.bool state then Term.var (pick state vars)
    else Term.const (pick state constants)

let gen_atom state vocabulary vars =
  let predicates = Vocabulary.predicates vocabulary in
  let equality () =
    Formula.Eq (gen_term state vocabulary vars, gen_term state vocabulary vars)
  in
  let can_equate = vars <> [] || Vocabulary.constants vocabulary <> [] in
  if predicates = [] || (can_equate && Random.State.int state 4 = 0) then
    (* Equality needs at least one term source. *)
    equality ()
  else
    let p, k = pick state predicates in
    Formula.Atom (p, List.init k (fun _ -> gen_term state vocabulary vars))

let formula ?(profile = default_profile) ~state vocabulary ~vars =
  let var_pool =
    if profile.var_pool = [] then default_var_pool else profile.var_pool
  in
  let rec go depth qdepth vars =
    if depth = 0 then gen_atom state vocabulary vars
    else
      let choice = Random.State.int state 10 in
      let sub () = go (depth - 1) qdepth vars in
      let quantifiers_ok = profile.allow_quantifiers && qdepth > 0 in
      match choice with
      | 0 | 1 -> gen_atom state vocabulary vars
      | 2 | 3 -> Formula.And (sub (), sub ())
      | 4 | 5 -> Formula.Or (sub (), sub ())
      | 6 when profile.allow_negation -> Formula.Not (sub ())
      | 7 when profile.allow_negation -> Formula.Implies (sub (), sub ())
      | 8 when quantifiers_ok ->
        let x = pick state var_pool in
        Formula.Exists (x, go (depth - 1) (qdepth - 1) (x :: vars))
      | 9 when quantifiers_ok ->
        let x = pick state var_pool in
        Formula.Forall (x, go (depth - 1) (qdepth - 1) (x :: vars))
      | _ -> gen_atom state vocabulary vars
  in
  (* Ensure atoms are constructible. *)
  if
    vars = []
    && Vocabulary.constants vocabulary = []
    && Vocabulary.predicates vocabulary = []
  then invalid_arg "Generate: empty vocabulary and no variables";
  go profile.depth profile.quantifier_depth vars

let sentence ?profile ~state vocabulary =
  let f = formula ?profile ~state vocabulary ~vars:[] in
  (* [vars:[]] can still leak variables through quantifier bodies?
     No: free variables come only from [vars]; quantified ones are
     bound. Close defensively anyway. *)
  Formula.forall_many (Formula.free_vars f) f

let query ?profile ~state vocabulary ~arity =
  let head = List.init arity (Printf.sprintf "q%d") in
  let f = formula ?profile ~state vocabulary ~vars:head in
  Query.make head f

(* ------------------------------------------------------------------ *)
(* Random vocabularies.                                                *)

let constant_pool =
  [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "i"; "j" ]

let predicate_pool = [ "P"; "Q"; "R"; "S"; "T"; "W" ]

let vocabulary ?(max_constants = 4) ?(max_predicates = 3) ?(max_arity = 2)
    ~state () =
  if max_constants < 1 then
    invalid_arg "Generate.vocabulary: max_constants must be at least 1";
  if max_predicates < 1 then
    invalid_arg "Generate.vocabulary: max_predicates must be at least 1";
  if max_arity < 0 then
    invalid_arg "Generate.vocabulary: max_arity must be non-negative";
  let take pool n base =
    List.init n (fun i ->
        match List.nth_opt pool i with
        | Some name -> name
        | None -> Printf.sprintf "%s%d" base i)
  in
  let constants =
    take constant_pool
      (1 + Random.State.int state max_constants)
      "c"
  in
  let predicates =
    take predicate_pool (1 + Random.State.int state max_predicates) "P"
    |> List.map (fun p -> (p, Random.State.int state (max_arity + 1)))
  in
  Vocabulary.make ~constants ~predicates
