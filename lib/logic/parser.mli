(** Recursive-descent parser for the concrete formula/query syntax
    printed by {!Pretty}.

    Variable/constant disambiguation is contextual: an identifier in
    term position denotes a {e variable} when it is bound by an
    enclosing quantifier or listed among [free_vars]; otherwise it
    denotes a {e constant}. This matches the paper's convention where
    queries [(x).φ(x)] declare their variables up front. *)

exception Parse_error of int * string
(** [Parse_error (pos, message)]: syntax error at byte offset [pos]. *)

(** [formula ~free_vars s] parses a formula; identifiers in [free_vars]
    are read as free variables.

    Malformed input raises {!Parse_error} or {!Lexer.Lex_error} — never
    [Stack_overflow] or an assertion failure: syntactic nesting is
    capped (far above anything {!Pretty} prints), so adversarial input
    like a megabyte of [~] or [(] is rejected with a positioned error.
    A query whose head violates {!Query.make}'s well-formedness rules
    (duplicate variables, a free body variable missing from the head)
    raises [Invalid_argument] from {!Query.make}.
    @raise Parse_error or {!Lexer.Lex_error} on malformed input. *)
val formula : ?free_vars:string list -> string -> Formula.t

(** [query s] parses [(x1, ..., xk). φ]. The head identifiers become
    the free variables of the body. *)
val query : string -> Query.t

(** [term ~free_vars s] parses a single term. *)
val term : ?free_vars:string list -> string -> Term.t
