type token =
  | IDENT of string
  | INT of int
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SLASH
  | COLON
  | EQ
  | NEQ
  | AND
  | OR
  | NOT
  | ARROW
  | DARROW
  | EXISTS
  | FORALL
  | EXISTS2
  | FORALL2
  | TRUE
  | FALSE
  | EOF

type located = {
  token : token;
  pos : int;
}

exception Lex_error of int * string

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let keyword = function
  | "exists" -> Some EXISTS
  | "forall" -> Some FORALL
  | "exists2" -> Some EXISTS2
  | "forall2" -> Some FORALL2
  | "not" -> Some NOT
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | _ -> None

let tokenize input =
  let n = String.length input in
  let rec scan i acc =
    if i >= n then List.rev ({ token = EOF; pos = n } :: acc)
    else
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then scan (i + 1) acc
      else if c = '#' then
        let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
        scan (skip i) acc
      else if is_digit c then
        let rec go j = if j < n && is_digit input.[j] then go (j + 1) else j in
        let j = go i in
        let lexeme = String.sub input i (j - i) in
        (* A digit run followed by identifier characters (e.g. [3rd]) is
           an identifier-like constant, not an integer. *)
        if j < n && is_ident_char input.[j] then begin
          let rec go' k =
            if k < n && is_ident_char input.[k] then go' (k + 1) else k
          in
          let k = go' j in
          scan k ({ token = IDENT (String.sub input i (k - i)); pos = i } :: acc)
        end
        else
          (* Digit runs beyond [max_int] are identifier-like constants,
             not lex errors: numerals are constant symbols anyway. *)
          let token =
            match int_of_string_opt lexeme with
            | Some value -> INT value
            | None -> IDENT lexeme
          in
          scan j ({ token; pos = i } :: acc)
      else if is_ident_start c then begin
        let rec go j =
          if j < n && is_ident_char input.[j] then go (j + 1) else j
        in
        let j = go i in
        let lexeme = String.sub input i (j - i) in
        let token =
          match keyword lexeme with Some t -> t | None -> IDENT lexeme
        in
        scan j ({ token; pos = i } :: acc)
      end
      else
        let two = if i + 1 < n then String.sub input i 2 else "" in
        let three = if i + 2 < n then String.sub input i 3 else "" in
        if String.equal three "<->" then
          scan (i + 3) ({ token = DARROW; pos = i } :: acc)
        else if String.equal two "->" then
          scan (i + 2) ({ token = ARROW; pos = i } :: acc)
        else if String.equal two "/\\" then
          scan (i + 2) ({ token = AND; pos = i } :: acc)
        else if String.equal two "\\/" then
          scan (i + 2) ({ token = OR; pos = i } :: acc)
        else if String.equal two "!=" then
          scan (i + 2) ({ token = NEQ; pos = i } :: acc)
        else
          match c with
          | '(' -> scan (i + 1) ({ token = LPAREN; pos = i } :: acc)
          | ')' -> scan (i + 1) ({ token = RPAREN; pos = i } :: acc)
          | ',' -> scan (i + 1) ({ token = COMMA; pos = i } :: acc)
          | '.' -> scan (i + 1) ({ token = DOT; pos = i } :: acc)
          | '/' -> scan (i + 1) ({ token = SLASH; pos = i } :: acc)
          | ':' -> scan (i + 1) ({ token = COLON; pos = i } :: acc)
          | '=' -> scan (i + 1) ({ token = EQ; pos = i } :: acc)
          | '~' -> scan (i + 1) ({ token = NOT; pos = i } :: acc)
          | _ ->
            raise (Lex_error (i, Printf.sprintf "unexpected character %C" c))
  in
  scan 0 []

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %s" s
  | INT i -> Fmt.pf ppf "integer %d" i
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | COMMA -> Fmt.string ppf "','"
  | DOT -> Fmt.string ppf "'.'"
  | SLASH -> Fmt.string ppf "'/'"
  | COLON -> Fmt.string ppf "':'"
  | EQ -> Fmt.string ppf "'='"
  | NEQ -> Fmt.string ppf "'!='"
  | AND -> Fmt.string ppf "'/\\'"
  | OR -> Fmt.string ppf "'\\/'"
  | NOT -> Fmt.string ppf "'~'"
  | ARROW -> Fmt.string ppf "'->'"
  | DARROW -> Fmt.string ppf "'<->'"
  | EXISTS -> Fmt.string ppf "'exists'"
  | FORALL -> Fmt.string ppf "'forall'"
  | EXISTS2 -> Fmt.string ppf "'exists2'"
  | FORALL2 -> Fmt.string ppf "'forall2'"
  | TRUE -> Fmt.string ppf "'true'"
  | FALSE -> Fmt.string ppf "'false'"
  | EOF -> Fmt.string ppf "end of input"
