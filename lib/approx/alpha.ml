module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term

let free_var i = Printf.sprintf "alpha_x%d" i
let bound_y i = Printf.sprintf "alpha_y%d" i

(* conn_0(a, b) = a = b ∨ edge(a, b)
   conn_{m+1}(a, b) =
     ∃z ∀p ∀q (((p = a ∧ q = z) ∨ (p = z ∧ q = b)) → conn_m(p, q))
   Each level introduces fresh names z<m>, p<m>, q<m>, and contains a
   single occurrence of conn_m — the ∀-sharing trick that keeps the
   formula small. conn_m captures connectivity by paths of length at
   most 2^m. *)
let rec conn level (a, b) ~edge =
  if level = 0 then Formula.Or (Formula.Eq (a, b), edge a b)
  else begin
    let z = Printf.sprintf "alpha_z%d" level in
    let p = Printf.sprintf "alpha_p%d" level in
    let q = Printf.sprintf "alpha_q%d" level in
    let tz = Term.var z and tp = Term.var p and tq = Term.var q in
    let guard =
      Formula.Or
        ( Formula.And (Formula.Eq (tp, a), Formula.Eq (tq, tz)),
          Formula.And (Formula.Eq (tp, tz), Formula.Eq (tq, b)) )
    in
    Formula.Exists
      ( z,
        Formula.Forall
          ( p,
            Formula.Forall
              (q, Formula.Implies (guard, conn (level - 1) (tp, tq) ~edge)) ) )
  end

let levels_for nodes =
  (* Paths of length ≤ nodes - 1 suffice; conn_m covers length 2^m. *)
  let rec go m reach = if reach >= nodes - 1 then m else go (m + 1) (reach * 2) in
  go 0 1

let connectivity ~nodes (a, b) ~edge = conn (levels_for nodes) (a, b) ~edge

let formula ~pred ~arity =
  if arity < 1 then invalid_arg "Alpha.formula: arity must be at least 1";
  let xs = List.init arity (fun i -> Term.var (free_var (i + 1))) in
  let y_names = List.init arity (fun i -> bound_y (i + 1)) in
  let ys = List.map Term.var y_names in
  let edge u v =
    Formula.disj
      (List.map2
         (fun xi yi ->
           Formula.Or
             ( Formula.And (Formula.Eq (u, xi), Formula.Eq (v, yi)),
               Formula.And (Formula.Eq (u, yi), Formula.Eq (v, xi)) ))
         xs ys)
  in
  let u = "alpha_u" and v = "alpha_v" in
  let tu = Term.var u and tv = Term.var v in
  let witness =
    Formula.Exists
      ( u,
        Formula.Exists
          ( v,
            Formula.And
              ( Formula.Atom (Vardi_cwdb.Ph.ne_predicate, [ tu; tv ]),
                connectivity ~nodes:(2 * arity) (tu, tv) ~edge ) ) )
  in
  let alpha =
    Formula.forall_many y_names
      (Formula.Implies (Formula.Atom (pred, ys), witness))
  in
  (* Size accounting for the Lemma-10 O(k log k) claim: one event per
     alpha_P built, carrying the formula size (experiment E8 plots the
     same quantity; the trace makes it visible inside real queries). *)
  if Vardi_obs.Obs.enabled () then begin
    Vardi_obs.Obs.count "alpha.instantiations" 1;
    Vardi_obs.Obs.count "alpha.size" (Formula.size alpha)
  end;
  alpha

let instantiated ~pred args =
  let arity = List.length args in
  let body = formula ~pred ~arity in
  let map x =
    let rec find i = function
      | [] -> None
      | t :: rest ->
        if String.equal x (free_var i) then Some t else find (i + 1) rest
    in
    find 1 args
  in
  Formula.substitute map body
