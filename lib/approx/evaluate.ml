module Formula = Vardi_logic.Formula
module Query = Vardi_logic.Query
module Relation = Vardi_relational.Relation
module Eval = Vardi_relational.Eval
module Compile = Vardi_relational.Compile
module Cw_database = Vardi_cwdb.Cw_database
module Query_check = Vardi_cwdb.Query_check
module Ph = Vardi_cwdb.Ph
module Obs = Vardi_obs.Obs

type backend =
  | Direct
  | Algebra
  | Algebra_optimized

type completeness =
  | Complete_fully_specified
  | Complete_positive
  | Sound_only

let completeness lb q =
  if Cw_database.is_fully_specified lb then Complete_fully_specified
  else if Query.is_positive q then Complete_positive
  else Sound_only

let virtuals = Disagree.virtuals

(* The three pipeline stages of A(Q, LB) = Q-hat(Ph2(LB)), each under
   its own span so the CLI/bench breakdown attributes cost to
   translation vs storage vs evaluation. The hat-size counter records
   the Lemma-10 blow-up (dramatic in Syntactic mode, nil in Semantic
   mode where alpha_P stays virtual). *)
let translate mode q =
  Obs.span "approx.translate" (fun () ->
      let hat = Translate.query mode q in
      Obs.count "approx.query_size" (Formula.size (Query.body q));
      Obs.count "approx.hat_size" (Formula.size (Query.body hat));
      hat)

let storage lb = Obs.span "approx.ph2" (fun () -> Ph.ph2 lb)

let answer ?(mode = Translate.Semantic) ?(backend = Direct) lb q =
  Query_check.validate lb q;
  Obs.span "approx.answer" (fun () ->
      let hat = translate mode q in
      let ph2 = storage lb in
      let hooks = match mode with Semantic -> virtuals lb | Syntactic -> Eval.no_virtuals in
      Obs.span "approx.evaluate" (fun () ->
          match backend with
          | Direct -> Eval.answer ~virtuals:hooks ph2 hat
          | Algebra -> Compile.answer ~virtuals:hooks ph2 hat
          | Algebra_optimized -> (
            (* Acyclic-CQ fast path: Semantic-mode hats preserve the
               exists/and structure of CQ inputs (negations become
               alpha$P virtual atoms), so they stay eligible. *)
            match Vardi_relational.Yannakakis.answer ~virtuals:hooks ph2 hat with
            | Some r ->
              Obs.count "approx.acq_fastpath" 1;
              r
            | None ->
              Obs.count "approx.acq_fallback" 1;
              let plan =
                Vardi_relational.Optimizer.optimize ph2 (Compile.query ph2 hat)
              in
              Vardi_relational.Algebra.run ~virtuals:hooks ph2 plan)))

let member ?(mode = Translate.Semantic) lb q tuple =
  Query_check.validate lb q;
  Query_check.validate_tuple lb q tuple;
  Obs.span "approx.member" (fun () ->
      let hat = translate mode q in
      let ph2 = storage lb in
      let hooks = match mode with Semantic -> virtuals lb | Syntactic -> Eval.no_virtuals in
      Obs.span "approx.evaluate" (fun () ->
          Eval.member ~virtuals:hooks ph2 hat tuple))

let boolean ?(mode = Translate.Semantic) lb q =
  Query_check.validate lb q;
  if not (Query.is_boolean q) then
    invalid_arg "Approx.boolean: the query has answer variables";
  Obs.span "approx.boolean" (fun () ->
      let hat = translate mode q in
      let ph2 = storage lb in
      let hooks = match mode with Semantic -> virtuals lb | Syntactic -> Eval.no_virtuals in
      Obs.span "approx.evaluate" (fun () ->
          Eval.satisfies ~virtuals:hooks ph2 (Query.body hat)))
