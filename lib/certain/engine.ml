module Formula = Vardi_logic.Formula
module Query = Vardi_logic.Query
module Vocabulary = Vardi_logic.Vocabulary
module Relation = Vardi_relational.Relation
module Database = Vardi_relational.Database
module Eval = Vardi_relational.Eval
module Algebra = Vardi_relational.Algebra
module Compile = Vardi_relational.Compile
module Cw_database = Vardi_cwdb.Cw_database
module Mapping = Vardi_cwdb.Mapping
module Partition = Vardi_cwdb.Partition
module Ph = Vardi_cwdb.Ph
module Obs = Vardi_obs.Obs
module Symtab = Vardi_interned.Symtab
module Irel = Vardi_interned.Irel
module Iplan = Vardi_interned.Iplan
module Ieval = Vardi_interned.Ieval
module Iscan = Vardi_interned.Iscan
module Icode = Vardi_interned.Icode

type algorithm =
  | Naive_mappings
  | Kernel_partitions

type kernel =
  | Strings
  | Interned
  | Compiled

type order = Vardi_cwdb.Partition.order =
  | Fresh_first
  | Merge_first

type stats = {
  structures : int;
  evaluations : int;
  early_exit : bool;
  pruned_candidates : int;
  wall_ns : int64;
  domains_used : int;
  interrupted : Cancel.reason option;
}

let validate = Vardi_cwdb.Query_check.validate
let validate_tuple = Vardi_cwdb.Query_check.validate_tuple

(* The process-monotonic clock Obs maintains (gettimeofday clamped to
   be non-decreasing), so [wall_ns] intervals can never go negative
   under clock adjustment. *)
let now_ns = Obs.now_ns

(* Every examined structure is an image database together with the
   element renaming that produced it, so a candidate tuple [c] over [C]
   is checked as [h(c) ∈ Q(h(Ph₁))]. *)
type structure = {
  image : Vardi_relational.Database.t;
  rename : string -> string;
}

(* The structure stream is handed out as construction thunks: the
   enumeration step (next partition / next mapping) runs in the
   scheduler's critical section, while the quotient / image-database
   construction — the expensive part — runs in whichever worker domain
   claimed the item. *)
let structure_thunks algorithm order lb =
  match algorithm with
  | Naive_mappings ->
    Seq.map
      (fun h () -> { image = Mapping.image_db h; rename = Mapping.apply h })
      (Mapping.all_respecting lb)
  | Kernel_partitions ->
    Seq.map
      (fun p () ->
        { image = Partition.quotient p; rename = Partition.representative p })
      (Partition.all_valid ~order lb)

let discrete_structure lb =
  (* The discrete partition's quotient is Ph₁ itself (the identity
     renaming), so no partition machinery is needed to build it. *)
  { image = Ph.ph1 lb; rename = Fun.id }

(* The interned mirror of [structure_thunks]: same enumeration orders,
   same deferred-construction split (see Iscan). *)
let interned_thunks algorithm order plan =
  match algorithm with
  | Naive_mappings -> Iscan.mapping_thunks plan
  | Kernel_partitions -> Iscan.structure_thunks ~order plan

(* A pluggable interned structure stream. The engine's scans only need
   three things from a plan: its symtab, its structure stream per
   (algorithm, order), and its discrete seed — so they are bundled
   here, letting an incremental session substitute cached structures
   for stream positions (see Vardi_incr.Session) while the engine's
   scheduling, budget and stats machinery stays oblivious. The
   positional contract carries over: [source_thunks alg ord] must
   enumerate the same renaming at every position as the fresh plan's
   stream would. *)
type scan_source = {
  source_plan : Iscan.plan;
  source_thunks : algorithm -> order -> (unit -> Iscan.structure) Seq.t;
  source_discrete : unit -> Iscan.structure;
}

let source_of_plan plan =
  {
    source_plan = plan;
    source_thunks = (fun algorithm order -> interned_thunks algorithm order plan);
    source_discrete = (fun () -> Iscan.discrete plan);
  }

let rename_row (rename : int array) (row : int array) =
  Array.map (fun c -> Array.unsafe_get rename c) row

(* With [Fresh_first] kernel enumeration the discrete partition is the
   stream's first element; entry points that evaluate it separately as
   a pruning seed drop it from the stream instead of paying for it
   twice. Other algorithm/order combinations revisit it somewhere in
   the middle of the stream, which is sound (its filter is a no-op) and
   costs one extra evaluation. *)
let rest_after_discrete algorithm order thunks =
  match (algorithm, order) with
  | Kernel_partitions, Fresh_first -> Seq.drop 1 thunks
  | Kernel_partitions, Merge_first | Naive_mappings, _ -> thunks

(* --- budget cooperation ------------------------------------------- *)

(* The structure/evaluation caps of a cancellation token truncate the
   structure stream *by position*: the scan admits exactly the first
   [cap] structures of the enumeration order, in every schedule, and
   the token trips only when the enumeration would have continued past
   the cap. Cap trips therefore never halt the in-flight prefix — that
   is what makes the capped verdict and the [structures] stat
   deterministic across worker-domain counts (see Cancel). [spent] is
   the work already charged to the budget before the scan starts (the
   discrete-structure seed of the whole-answer entry points). *)
let admit_within cancel ~structures ~evaluations thunks =
  match cancel with
  | None -> thunks
  | Some token -> (
    match Cancel.scan_cap token ~structures ~evaluations with
    | None -> thunks
    | Some (cap, reason) ->
      let rec admit n seq () =
        if n <= 0 then (
          match seq () with
          | Seq.Nil -> Seq.Nil
          | Seq.Cons _ ->
            (* Work remained beyond the cap: the budget genuinely
               binds. The enumeration step just forced is cheap — the
               expensive quotient lives in the unforced thunk. *)
            Cancel.trip token reason;
            Seq.Nil)
        else
          match seq () with
          | Seq.Nil -> Seq.Nil
          | Seq.Cons (x, rest) -> Seq.Cons (x, admit (n - 1) rest)
      in
      admit cap thunks)

(* Deadline cooperation: checked before every structure in whichever
   domain is about to pay for it, so all workers stop within one
   structure evaluation of the deadline passing. Also the
   fault-injection hook — Cancel.check runs the token's probe. *)
let deadline_passed = function
  | None -> false
  | Some token -> Cancel.check token

(* A trip is reported only when the scan was not decided: a decision
   (countermodel, witness, emptied survivor set) reached inside the
   admitted prefix is exact, whatever the token says. *)
let interruption cancel ~decided =
  match cancel with
  | Some token when not decided -> Cancel.tripped token
  | Some _ | None -> None

(* --- parallel scheduler ------------------------------------------- *)

(* Worker-domain count: the caller's [?domains] is a cap on
   [Domain.recommended_domain_count]. An explicit request above 1 is
   always honored with at least two real domains so the parallel path
   stays exercised (and testable) on single-core hosts. *)
let worker_count requested =
  if requested <= 1 then 1
  else min requested (max 2 (Domain.recommended_domain_count ()))

let chunk_size = 8

type 'a puller = {
  lock : Mutex.t;
  mutable source : 'a Seq.t;
}

let puller seq = { lock = Mutex.create (); source = seq }

(* Claim up to [chunk_size] items (order within a chunk is
   irrelevant — every consumer is commutative). Forcing the sequence
   happens only here, under the lock, so the enumerator state is never
   raced. *)
let next_chunk p =
  Mutex.lock p.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock p.lock)
    (fun () ->
      let rec take n acc seq =
        if n = 0 then (acc, seq)
        else
          match seq () with
          | Seq.Nil -> (acc, Seq.empty)
          | Seq.Cons (x, rest) -> take (n - 1) (x :: acc) rest
      in
      let chunk, rest = take chunk_size [] p.source in
      p.source <- rest;
      chunk)

(* Drive [consume] over every thunk of [thunks] across worker domains,
   stopping as soon as [stop] reports the computation decided. Returns
   the number of structures examined. The first worker exception is
   re-raised in the calling domain. *)
let drive ~domains ~cancel ~stop consume thunks =
  let workers = worker_count domains in
  let examined = Atomic.make 0 in
  let failure = Atomic.make None in
  let p = puller thunks in
  (* Captured on the calling domain so the chunk spans of spawned
     workers (whose own span stack is empty) nest under the entry
     point's span rather than floating as roots. *)
  let scan_span = Obs.current_span_id () in
  let halted () =
    stop () || Atomic.get failure <> None || deadline_passed cancel
  in
  let rec drain () =
    if not (halted ()) then
      match next_chunk p with
      | [] -> ()
      | chunk ->
        (* One span per claimed chunk, opened in the worker domain that
           processes it; the per-chunk counters make the engine's work
           attributable per domain without any hot-loop cost when no
           sink is installed. *)
        Obs.span ?parent:scan_span "certain.chunk" (fun () ->
            let processed = ref 0 in
            List.iter
              (fun thunk ->
                if not (halted ()) then begin
                  Atomic.incr examined;
                  incr processed;
                  consume (thunk ())
                end)
              chunk;
            if Obs.enabled () && !processed > 0 then begin
              Obs.count "certain.structures" !processed;
              Obs.count "certain.evaluations" !processed
            end);
        drain ()
  in
  (* An interrupt must win over a parked worker fault (Ctrl-C is never
     mistaken for a scan failure), and any other exception only fills
     an empty slot so the first fault is the one re-raised. *)
  let park = function
    | Sys.Break -> Atomic.set failure (Some Sys.Break)
    | e -> ignore (Atomic.compare_and_set failure None (Some e))
  in
  let guarded () = try drain () with e -> park e in
  (* Spawn/join edges go through the shared SIGINT-masked helper
     (Domain_guard): the drain in between stays interruptible, and any
     exception is parked, which flips [halted] so workers stop at
     their next poll and the joins are short. *)
  let spawned =
    if workers > 1 then Domain_guard.spawn_list ~park (workers - 1) guarded
    else []
  in
  (try guarded () with e -> park e);
  if spawned <> [] then Domain_guard.join_list ~park spawned;
  (match Atomic.get failure with Some e -> raise e | None -> ());
  Atomic.get examined

(* Quantification over structures: search for one whose [check] equals
   [target] ([target = false] refutes a universal, [target = true]
   witnesses an existential), with an atomic early-exit flag shared by
   all workers. *)
let search ~domains ~cancel ~target thunks check =
  let started = now_ns () in
  let found = Atomic.make false in
  let examined =
    drive ~domains ~cancel
      ~stop:(fun () -> Atomic.get found)
      (fun s -> if Bool.equal (check s) target then Atomic.set found true)
      (admit_within cancel ~structures:0 ~evaluations:0 thunks)
  in
  let found = Atomic.get found in
  Obs.count "certain.early_exit" (if found then 1 else 0);
  ( found,
    {
      structures = examined;
      evaluations = examined;
      early_exit = found;
      pruned_candidates = 0;
      wall_ns = Int64.sub (now_ns ()) started;
      domains_used = worker_count domains;
      interrupted = interruption cancel ~decided:found;
    } )

(* --- decision entry points ---------------------------------------- *)

(* Per-tuple and Boolean deciders: quantify [check] over the structure
   stream of the selected kernel. All kernels enumerate structures in
   the same order — [Compiled] shares the interned stream outright —
   so stats (and capped verdicts) agree. *)
(* [search] is instantiated at a different structure type per kernel,
   so the dispatch happens here rather than via a first-class
   quantifier argument (which would force one monomorphic type). *)
(* [?source] lets a prepared query (see the plan-cache API below) reuse
   the interned database — or an incremental session's cached stream —
   instead of re-interning it on every call. [?wrap_check] wraps the
   per-structure check (a session's per-query memo); the wrapper sees
   the same structures at the same positions, so stats and positional
   caps are unchanged whether or not it hits. *)
let decide_member ~target ~algorithm ~order ~domains ~cancel ~kernel ?source
    lb q tuple =
  match kernel with
  | Strings ->
    search ~domains ~cancel ~target
      (structure_thunks algorithm order lb)
      (fun s -> Eval.member s.image q (List.map s.rename tuple))
  | Interned ->
    let source =
      match source with
      | Some source -> source
      | None -> source_of_plan (Iscan.prepare lb)
    in
    let codes = Symtab.code_tuple (Iscan.symtab source.source_plan) tuple in
    search ~domains ~cancel ~target
      (source.source_thunks algorithm order)
      (fun (s : Iscan.structure) ->
        Ieval.member s.idb q (rename_row s.rename codes))
  | Compiled ->
    let source =
      match source with
      | Some source -> source
      | None -> source_of_plan (Iscan.prepare lb)
    in
    let tab = Iscan.symtab source.source_plan in
    let codes = Symtab.code_tuple tab tuple in
    let cm = Icode.compile_member tab q in
    search ~domains ~cancel ~target
      (source.source_thunks algorithm order)
      (fun (s : Iscan.structure) ->
        Icode.run_member s.idb cm (rename_row s.rename codes))

let decide_boolean ~target ~algorithm ~order ~domains ~cancel ~kernel ?source
    ?wrap_check lb body =
  match kernel with
  | Strings ->
    search ~domains ~cancel ~target
      (structure_thunks algorithm order lb)
      (fun s -> Eval.satisfies s.image body)
  | Interned ->
    let source =
      match source with
      | Some source -> source
      | None -> source_of_plan (Iscan.prepare lb)
    in
    let check (s : Iscan.structure) = Ieval.satisfies s.idb body in
    let check = match wrap_check with Some w -> w check | None -> check in
    search ~domains ~cancel ~target
      (source.source_thunks algorithm order)
      check
  | Compiled ->
    let source =
      match source with
      | Some source -> source
      | None -> source_of_plan (Iscan.prepare lb)
    in
    let cs = Icode.compile_sentence (Iscan.symtab source.source_plan) body in
    let check (s : Iscan.structure) = Icode.run_sentence s.idb cs in
    let check = match wrap_check with Some w -> w check | None -> check in
    search ~domains ~cancel ~target
      (source.source_thunks algorithm order)
      check

let certain_member_stats ?(algorithm = Kernel_partitions)
    ?(order = Fresh_first) ?(domains = 1) ?cancel ?(kernel = Interned) lb q
    tuple =
  validate lb q;
  validate_tuple lb q tuple;
  if Query.is_boolean q then
    invalid_arg "Certain.certain_member: Boolean query; use certain_boolean";
  Obs.span "certain.member" (fun () ->
      let refuted, stats =
        decide_member ~target:false ~algorithm ~order ~domains ~cancel ~kernel
          lb q tuple
      in
      (not refuted, stats))

let certain_member ?algorithm ?order ?domains ?cancel ?kernel lb q tuple =
  fst
    (certain_member_stats ?algorithm ?order ?domains ?cancel ?kernel lb q
       tuple)

let certain_boolean_stats ?(algorithm = Kernel_partitions)
    ?(order = Fresh_first) ?(domains = 1) ?cancel ?(kernel = Interned) lb q =
  validate lb q;
  if not (Query.is_boolean q) then
    invalid_arg "Certain.certain_boolean: the query has answer variables";
  let body = Query.body q in
  Obs.span "certain.boolean" (fun () ->
      let refuted, stats =
        decide_boolean ~target:false ~algorithm ~order ~domains ~cancel
          ~kernel lb body
      in
      (not refuted, stats))

let certain_boolean ?algorithm ?order ?domains ?cancel ?kernel lb q =
  fst (certain_boolean_stats ?algorithm ?order ?domains ?cancel ?kernel lb q)

let possible_member_stats ?(algorithm = Kernel_partitions)
    ?(order = Fresh_first) ?(domains = 1) ?cancel ?(kernel = Interned) lb q
    tuple =
  validate lb q;
  validate_tuple lb q tuple;
  if Query.is_boolean q then
    invalid_arg "Certain.possible_member: Boolean query; use possible_boolean";
  Obs.span "certain.possible_member" (fun () ->
      decide_member ~target:true ~algorithm ~order ~domains ~cancel ~kernel lb
        q tuple)

let possible_member ?algorithm ?order ?domains ?cancel ?kernel lb q tuple =
  fst
    (possible_member_stats ?algorithm ?order ?domains ?cancel ?kernel lb q
       tuple)

let possible_boolean_stats ?(algorithm = Kernel_partitions)
    ?(order = Fresh_first) ?(domains = 1) ?cancel ?(kernel = Interned) lb q =
  validate lb q;
  if not (Query.is_boolean q) then
    invalid_arg "Certain.possible_boolean: the query has answer variables";
  let body = Query.body q in
  Obs.span "certain.possible_boolean" (fun () ->
      decide_boolean ~target:true ~algorithm ~order ~domains ~cancel ~kernel
        lb body)

let possible_boolean ?algorithm ?order ?domains ?cancel ?kernel lb q =
  fst (possible_boolean_stats ?algorithm ?order ?domains ?cancel ?kernel lb q)

(* --- whole-answer entry points ------------------------------------ *)

(* Per-query work hoisted out of the per-structure loop: one NNF pass,
   one compilation to relational algebra, one optimizer pass. The plan
   resolves base relations and constant symbols at run time, so it is
   evaluated against every image database without recompilation.
   Queries outside the algebra (second-order quantifiers) fall back to
   direct Tarskian evaluation — still hoisting everything there is to
   hoist, since [Eval.answer] keeps no per-query state. *)
let prepare_answer lb q =
  match Compile.prepared (Ph.ph1 lb) q with
  | Some plan -> fun s -> Algebra.run s.image plan
  | None -> fun s -> Eval.answer s.image q

(* [|C|^k], saturating at [max_int] — only used for the
   pruned-candidates counter, never for enumeration. *)
let candidate_count lb k =
  let n = List.length (Cw_database.constants lb) in
  let rec go acc i =
    if i = 0 then acc
    else if n <> 0 && acc > max_int / n then max_int
    else go (acc * n) (i - 1)
  in
  go 1 k

(* Interned mirror of [prepare_answer]: the compiled plan is interned
   once against the scan's symtab, so per-structure evaluation touches
   no strings at all. Queries the algebra cannot express fall back to
   the interned Tarskian evaluator. *)
let prepare_answer_interned lb tab q =
  match
    Option.bind (Compile.prepared (Ph.ph1 lb) q) (Iplan.of_algebra tab)
  with
  | Some iplan -> fun (s : Iscan.structure) -> Iplan.run s.idb iplan
  | None -> fun s -> Ieval.answer s.idb q

(* Flat-code mirror of [prepare_answer_interned]: the interned plan is
   further compiled to a packed instruction program (Icode), and the
   non-algebra fallback to a register-machine enumerator. Both
   compilers are total — anything they cannot compile faithfully runs
   through the interpreters they mirror — so this stays drop-in
   observationally equal to the interned preparer. *)
let prepare_answer_compiled lb tab q =
  match
    Option.bind (Compile.prepared (Ph.ph1 lb) q) (Iplan.of_algebra tab)
  with
  | Some iplan ->
    let prog = Icode.compile_plan tab iplan in
    fun (s : Iscan.structure) -> Icode.exec s.idb prog
  | None ->
    let ca = Icode.compile_answer tab q in
    fun s -> Icode.run_answer s.idb ca

(* [prepare_answer_compiled] plus the packed survivor-filter probe: the
   second component tests membership in the structure's image answer
   without unpacking it into rows ([Icode.exec_member]). Only the
   direct (non-prepared) scan uses it — prepared/session paths keep the
   materializing closure so their memo wrappers observe every image. *)
let prepare_member_compiled lb tab q =
  match
    Option.bind (Compile.prepared (Ph.ph1 lb) q) (Iplan.of_algebra tab)
  with
  | Some iplan ->
    let prog = Icode.compile_plan tab iplan in
    ( (fun (s : Iscan.structure) -> Icode.exec s.idb prog),
      fun (s : Iscan.structure) ->
        Icode.exec_member s.idb prog ~rename:s.rename )
  | None ->
    let ca = Icode.compile_answer tab q in
    ( (fun (s : Iscan.structure) -> Icode.run_answer s.idb ca),
      fun (s : Iscan.structure) ->
        let ia = Icode.run_answer s.idb ca in
        fun row -> Irel.mem (rename_row s.rename row) ia )

let answer_stats_interned ~algorithm ~order ~domains ~cancel ?prep ?member lb
    q =
  let started = now_ns () in
  let source, image_answer =
    Obs.span "certain.prepare" (fun () ->
        match prep with
        | Some prep -> prep
        | None ->
          let plan = Iscan.prepare lb in
          ( source_of_plan plan,
            prepare_answer_interned lb (Iscan.symtab plan) q ))
  in
  let plan = source.source_plan in
  let seed =
    Obs.span "certain.seed" (fun () ->
        let seed = image_answer (source.source_discrete ()) in
        Obs.count "certain.structures" 1;
        Obs.count "certain.evaluations" 1;
        seed)
  in
  let pruned = candidate_count lb (Query.arity q) - Irel.cardinal seed in
  Obs.count "certain.pruned" pruned;
  let survivors = Atomic.make seed in
  let remove doomed =
    let rec loop () =
      let cur = Atomic.get survivors in
      let next = Irel.diff cur doomed in
      if not (Atomic.compare_and_set survivors cur next) then loop ()
    in
    loop ()
  in
  let consume (s : Iscan.structure) =
    let mem_row =
      match member with
      | Some m -> m s
      | None ->
        let ia = image_answer s in
        fun row -> Irel.mem (rename_row s.rename row) ia
    in
    let snapshot = Atomic.get survivors in
    let doomed = Irel.filter (fun row -> not (mem_row row)) snapshot in
    if not (Irel.is_empty doomed) then remove doomed
  in
  let examined =
    drive ~domains ~cancel
      ~stop:(fun () -> Irel.is_empty (Atomic.get survivors))
      consume
      (admit_within cancel ~structures:1 ~evaluations:1
         (rest_after_discrete algorithm order
            (source.source_thunks algorithm order)))
  in
  let result = Atomic.get survivors in
  let early = Irel.is_empty result in
  Obs.count "certain.early_exit" (if early then 1 else 0);
  ( Irel.to_relation (Iscan.symtab plan) result,
    {
      structures = examined + 1;
      evaluations = examined + 1;
      early_exit = early;
      pruned_candidates = pruned;
      wall_ns = Int64.sub (now_ns ()) started;
      domains_used = worker_count domains;
      interrupted = interruption cancel ~decided:early;
    } )

let answer_stats_strings ~algorithm ~order ~domains ~cancel ?prep lb q =
  let started = now_ns () in
  let image_answer =
    Obs.span "certain.prepare" (fun () ->
        match prep with Some f -> f | None -> prepare_answer lb q)
  in
  (* Pruning: the certain answer is contained in the answer over every
     structure, in particular the discrete one (Ph₁ under the identity
     renaming — always a valid structure). Seeding the survivor set
     from it replaces the full |C|^k candidate relation. *)
  let seed =
    Obs.span "certain.seed" (fun () ->
        let seed = image_answer (discrete_structure lb) in
        Obs.count "certain.structures" 1;
        Obs.count "certain.evaluations" 1;
        seed)
  in
  let pruned = candidate_count lb (Query.arity q) - Relation.cardinal seed in
  Obs.count "certain.pruned" pruned;
  let survivors = Atomic.make seed in
  let remove doomed =
    let rec loop () =
      let cur = Atomic.get survivors in
      let next = Relation.diff cur doomed in
      if not (Atomic.compare_and_set survivors cur next) then loop ()
    in
    loop ()
  in
  let consume s =
    let ia = image_answer s in
    let snapshot = Atomic.get survivors in
    let doomed =
      Relation.filter
        (fun tuple -> not (Relation.mem (List.map s.rename tuple) ia))
        snapshot
    in
    if not (Relation.is_empty doomed) then remove doomed
  in
  let examined =
    drive ~domains ~cancel
      ~stop:(fun () -> Relation.is_empty (Atomic.get survivors))
      consume
      (admit_within cancel ~structures:1 ~evaluations:1
         (rest_after_discrete algorithm order
            (structure_thunks algorithm order lb)))
  in
  let result = Atomic.get survivors in
  let early = Relation.is_empty result in
  Obs.count "certain.early_exit" (if early then 1 else 0);
  ( result,
    {
      structures = examined + 1;
      evaluations = examined + 1;
      early_exit = early;
      pruned_candidates = pruned;
      wall_ns = Int64.sub (now_ns ()) started;
      domains_used = worker_count domains;
      interrupted = interruption cancel ~decided:early;
    } )

let answer_stats ?(algorithm = Kernel_partitions) ?(order = Fresh_first)
    ?(domains = 1) ?cancel ?(kernel = Interned) lb q =
  validate lb q;
  Obs.span "certain.answer" (fun () ->
      match kernel with
      | Strings -> answer_stats_strings ~algorithm ~order ~domains ~cancel lb q
      | Interned ->
        answer_stats_interned ~algorithm ~order ~domains ~cancel lb q
      | Compiled ->
        let plan = Iscan.prepare lb in
        let image_answer, member =
          prepare_member_compiled lb (Iscan.symtab plan) q
        in
        answer_stats_interned ~algorithm ~order ~domains ~cancel
          ~prep:(source_of_plan plan, image_answer)
          ~member lb q)

let answer ?algorithm ?order ?domains ?cancel ?kernel lb q =
  fst (answer_stats ?algorithm ?order ?domains ?cancel ?kernel lb q)

let candidates lb k =
  Relation.full ~domain:(Cw_database.constants lb) k

let possible_answer_stats_interned ~algorithm ~order ~domains ~cancel ?prep lb
    q =
  let started = now_ns () in
  let source, image_answer =
    Obs.span "certain.prepare" (fun () ->
        match prep with
        | Some prep -> prep
        | None ->
          let plan = Iscan.prepare lb in
          ( source_of_plan plan,
            prepare_answer_interned lb (Iscan.symtab plan) q ))
  in
  let plan = source.source_plan in
  let tab = Iscan.symtab plan in
  (* Same cap, same message as [candidates] on the string side. *)
  let all_candidates =
    Irel.full ~domain:(Array.init (Symtab.size tab) Fun.id) (Query.arity q)
  in
  let total = Irel.cardinal all_candidates in
  let seed =
    Obs.span "certain.seed" (fun () ->
        let seed = image_answer (source.source_discrete ()) in
        Obs.count "certain.structures" 1;
        Obs.count "certain.evaluations" 1;
        seed)
  in
  Obs.count "certain.pruned" (Irel.cardinal seed);
  let found = Atomic.make seed in
  let saturated () = Irel.cardinal (Atomic.get found) >= total in
  let add gained =
    let rec loop () =
      let cur = Atomic.get found in
      let next = Irel.union cur gained in
      if not (Atomic.compare_and_set found cur next) then loop ()
    in
    loop ()
  in
  let consume (s : Iscan.structure) =
    let ia = image_answer s in
    let remaining = Irel.diff all_candidates (Atomic.get found) in
    let gained =
      Irel.filter (fun row -> Irel.mem (rename_row s.rename row) ia) remaining
    in
    if not (Irel.is_empty gained) then add gained
  in
  let examined =
    drive ~domains ~cancel ~stop:saturated consume
      (admit_within cancel ~structures:1 ~evaluations:1
         (rest_after_discrete algorithm order
            (source.source_thunks algorithm order)))
  in
  let result = Atomic.get found in
  let early = Irel.cardinal result >= total in
  Obs.count "certain.early_exit" (if early then 1 else 0);
  ( Irel.to_relation tab result,
    {
      structures = examined + 1;
      evaluations = examined + 1;
      early_exit = early;
      pruned_candidates = Irel.cardinal seed;
      wall_ns = Int64.sub (now_ns ()) started;
      domains_used = worker_count domains;
      interrupted = interruption cancel ~decided:early;
    } )

let possible_answer_stats_strings ~algorithm ~order ~domains ~cancel ?prep lb
    q =
  let started = now_ns () in
  let image_answer =
    Obs.span "certain.prepare" (fun () ->
        match prep with Some f -> f | None -> prepare_answer lb q)
  in
  (* The candidate relation is built once (not per structure); the
     discrete structure seeds the found set — every tuple it answers is
     witnessed and needs no further search. *)
  let all_candidates = candidates lb (Query.arity q) in
  let total = Relation.cardinal all_candidates in
  let seed =
    Obs.span "certain.seed" (fun () ->
        let seed = image_answer (discrete_structure lb) in
        Obs.count "certain.structures" 1;
        Obs.count "certain.evaluations" 1;
        seed)
  in
  Obs.count "certain.pruned" (Relation.cardinal seed);
  let found = Atomic.make seed in
  let saturated () = Relation.cardinal (Atomic.get found) >= total in
  let add gained =
    let rec loop () =
      let cur = Atomic.get found in
      let next = Relation.union cur gained in
      if not (Atomic.compare_and_set found cur next) then loop ()
    in
    loop ()
  in
  let consume s =
    let ia = image_answer s in
    let remaining = Relation.diff all_candidates (Atomic.get found) in
    let gained =
      Relation.filter
        (fun tuple -> Relation.mem (List.map s.rename tuple) ia)
        remaining
    in
    if not (Relation.is_empty gained) then add gained
  in
  let examined =
    drive ~domains ~cancel ~stop:saturated consume
      (admit_within cancel ~structures:1 ~evaluations:1
         (rest_after_discrete algorithm order
            (structure_thunks algorithm order lb)))
  in
  let result = Atomic.get found in
  let early = Relation.cardinal result >= total in
  Obs.count "certain.early_exit" (if early then 1 else 0);
  ( result,
    {
      structures = examined + 1;
      evaluations = examined + 1;
      early_exit = early;
      pruned_candidates = Relation.cardinal seed;
      wall_ns = Int64.sub (now_ns ()) started;
      domains_used = worker_count domains;
      interrupted = interruption cancel ~decided:early;
    } )

let possible_answer_stats ?(algorithm = Kernel_partitions)
    ?(order = Fresh_first) ?(domains = 1) ?cancel ?(kernel = Interned) lb q =
  validate lb q;
  Obs.span "certain.possible_answer" (fun () ->
      match kernel with
      | Strings ->
        possible_answer_stats_strings ~algorithm ~order ~domains ~cancel lb q
      | Interned ->
        possible_answer_stats_interned ~algorithm ~order ~domains ~cancel lb q
      | Compiled ->
        let plan = Iscan.prepare lb in
        possible_answer_stats_interned ~algorithm ~order ~domains ~cancel
          ~prep:
            ( source_of_plan plan,
              prepare_answer_compiled lb (Iscan.symtab plan) q )
          lb q)

let possible_answer ?algorithm ?order ?domains ?cancel ?kernel lb q =
  fst (possible_answer_stats ?algorithm ?order ?domains ?cancel ?kernel lb q)

(* --- prepared queries (the plan-cache contract) -------------------- *)

(* A [prepared] bundles everything per-(database, query, kernel) that
   the entry points above rebuild on every call: the interned database
   ([Iscan.prepare] — symtab, coded facts, per-depth buckets) and, for
   relational queries, the compiled image-answer plan. All pieces are
   immutable after [prepare], so one prepared query can serve any
   number of concurrent scans — the serve layer's plan cache counts on
   it. Boolean queries skip the compile (the deciders evaluate the body
   directly); [prepared_answer_stats] on a Boolean-headed query falls
   back to compiling on the fly, exactly like the unprepared path. *)
type prepared = {
  p_lb : Cw_database.t;
  p_query : Query.t;
  p_kernel : kernel;
  p_impl : prepared_impl;
}

and prepared_impl =
  | Prepared_strings of (structure -> Relation.t) option
  | Prepared_interned of {
      pi_source : scan_source;
      pi_answer : (Iscan.structure -> Irel.t) option;
      pi_check :
        ((Iscan.structure -> bool) -> Iscan.structure -> bool) option;
    }

let prepare ?(kernel = Interned) lb q =
  validate lb q;
  Obs.span "certain.prepare" (fun () ->
      let impl =
        match kernel with
        | Strings ->
          Prepared_strings
            (if Query.is_boolean q then None else Some (prepare_answer lb q))
        | Interned ->
          let plan = Iscan.prepare lb in
          Prepared_interned
            {
              pi_source = source_of_plan plan;
              pi_answer =
                (if Query.is_boolean q then None
                 else Some (prepare_answer_interned lb (Iscan.symtab plan) q));
              pi_check = None;
            }
        | Compiled ->
          let plan = Iscan.prepare lb in
          Prepared_interned
            {
              pi_source = source_of_plan plan;
              pi_answer =
                (if Query.is_boolean q then None
                 else Some (prepare_answer_compiled lb (Iscan.symtab plan) q));
              pi_check = None;
            }
      in
      { p_lb = lb; p_query = q; p_kernel = kernel; p_impl = impl })

let prepare_with ?(kernel = Interned) ~source ?wrap_answer ?wrap_check lb q =
  validate lb q;
  let prepare_base =
    match kernel with
    | Interned -> prepare_answer_interned
    | Compiled -> prepare_answer_compiled
    | Strings ->
      invalid_arg "Certain.prepare_with: kernel must be Interned or Compiled"
  in
  Obs.span "certain.prepare" (fun () ->
      let pi_answer =
        if Query.is_boolean q then None
        else
          let base = prepare_base lb (Iscan.symtab source.source_plan) q in
          Some (match wrap_answer with Some w -> w base | None -> base)
      in
      {
        p_lb = lb;
        p_query = q;
        p_kernel = kernel;
        p_impl =
          Prepared_interned { pi_source = source; pi_answer; pi_check = wrap_check };
      })

let prepared_db p = p.p_lb
let prepared_query p = p.p_query
let prepared_kernel p = p.p_kernel

(* Boolean-headed prepared queries carry no answer closure; rebuild one
   on the fly with the kernel the query was prepared for. ([Strings]
   never pairs with [Prepared_interned]; the branch is just totality.) *)
let prepared_image_answer p pi_source =
  let tab = Iscan.symtab pi_source.source_plan in
  match p.p_kernel with
  | Compiled -> prepare_answer_compiled p.p_lb tab p.p_query
  | Strings | Interned -> prepare_answer_interned p.p_lb tab p.p_query

let prepared_answer_stats ?(algorithm = Kernel_partitions)
    ?(order = Fresh_first) ?(domains = 1) ?cancel p =
  Obs.span "certain.answer" (fun () ->
      match p.p_impl with
      | Prepared_strings ia ->
        let prep =
          match ia with Some f -> f | None -> prepare_answer p.p_lb p.p_query
        in
        answer_stats_strings ~algorithm ~order ~domains ~cancel ~prep p.p_lb
          p.p_query
      | Prepared_interned { pi_source; pi_answer; _ } ->
        let image_answer =
          match pi_answer with
          | Some f -> f
          | None -> prepared_image_answer p pi_source
        in
        answer_stats_interned ~algorithm ~order ~domains ~cancel
          ~prep:(pi_source, image_answer) p.p_lb p.p_query)

let prepared_possible_answer_stats ?(algorithm = Kernel_partitions)
    ?(order = Fresh_first) ?(domains = 1) ?cancel p =
  Obs.span "certain.possible_answer" (fun () ->
      match p.p_impl with
      | Prepared_strings ia ->
        let prep =
          match ia with Some f -> f | None -> prepare_answer p.p_lb p.p_query
        in
        possible_answer_stats_strings ~algorithm ~order ~domains ~cancel ~prep
          p.p_lb p.p_query
      | Prepared_interned { pi_source; pi_answer; _ } ->
        let image_answer =
          match pi_answer with
          | Some f -> f
          | None -> prepared_image_answer p pi_source
        in
        possible_answer_stats_interned ~algorithm ~order ~domains ~cancel
          ~prep:(pi_source, image_answer) p.p_lb p.p_query)

let prepared_boolean_decide ~target ~span ~name ?(algorithm = Kernel_partitions)
    ?(order = Fresh_first) ?(domains = 1) ?cancel p =
  if not (Query.is_boolean p.p_query) then
    invalid_arg (Printf.sprintf "Certain.%s: the query has answer variables" name);
  let body = Query.body p.p_query in
  Obs.span span (fun () ->
      match p.p_impl with
      | Prepared_strings _ ->
        decide_boolean ~target ~algorithm ~order ~domains ~cancel
          ~kernel:Strings p.p_lb body
      | Prepared_interned { pi_source; pi_check; _ } ->
        decide_boolean ~target ~algorithm ~order ~domains ~cancel
          ~kernel:p.p_kernel ~source:pi_source ?wrap_check:pi_check p.p_lb
          body)

let prepared_certain_boolean_stats ?algorithm ?order ?domains ?cancel p =
  let refuted, stats =
    prepared_boolean_decide ~target:false ~span:"certain.boolean"
      ~name:"prepared_certain_boolean" ?algorithm ?order ?domains ?cancel p
  in
  (not refuted, stats)

let prepared_possible_boolean_stats ?algorithm ?order ?domains ?cancel p =
  prepared_boolean_decide ~target:true ~span:"certain.possible_boolean"
    ~name:"prepared_possible_boolean" ?algorithm ?order ?domains ?cancel p
