(** SIGINT-safe domain spawning and joining — the shared discipline of
    every worker pool in the system.

    A [Sys.Break] raised inside [Domain.spawn] (domain created, handle
    not yet captured) or between two joins orphans a running domain,
    and a process that then exits 130 tears the runtime down under it —
    a segfault instead of an interrupt. Both the parallel scan
    scheduler ({!Engine}) and the serve worker pool
    ([Vardi_serve.Pool]) therefore spawn and join only through this
    module: SIGINT is masked across those two edges (workers inherit
    the mask, so the signal is only ever delivered once the spawning
    domain lifts it), the work in between stays interruptible, and any
    exception is parked with the caller's [park] so every domain is
    joined before anything re-raises. *)

(** [masked ~park f] runs [f] with SIGINT blocked, restoring the
    previous signal mask afterwards even when [f] raises (the exception
    is handed to [park], never thrown past the mask restore). On
    platforms without [sigprocmask] the mask step is skipped and [f]
    still runs under the same parking contract. *)
val masked : park:(exn -> unit) -> (unit -> unit) -> unit

(** [spawn_list ~park n worker] spawns [n] domains running [worker]
    under one SIGINT-masked section, returning the handles it managed
    to capture (all [n] unless spawning itself raised, in which case
    the exception is parked and the partial list is returned — join it
    anyway). [worker] must not let exceptions escape; wrap it with the
    same [park]. *)
val spawn_list : park:(exn -> unit) -> int -> (unit -> unit) -> unit Domain.t list

(** [join_list ~park domains] joins every domain under one
    SIGINT-masked section; each join's exception is parked so no domain
    is left unjoined. *)
val join_list : park:(exn -> unit) -> unit Domain.t list -> unit
