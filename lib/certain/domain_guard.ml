(* Spawning and joining must not be interrupted: a [Sys.Break] raised
   inside [Domain.spawn] (domain created, handle not yet captured) or
   between two joins orphans a running domain, and a process that then
   exits 130 tears the runtime down under it — a segfault instead of an
   interrupt. SIGINT is masked across those two edges (workers inherit
   the mask, so the signal is only ever delivered once the spawning
   domain lifts it); the work in between stays interruptible, and any
   exception is parked so every domain is joined before it re-raises. *)

let masked ~park f =
  let saved =
    try Some (Unix.sigprocmask Unix.SIG_BLOCK [ Sys.sigint ])
    with Invalid_argument _ -> None
  in
  (try f () with e -> park e);
  match saved with
  | None -> ()
  | Some mask -> ignore (Unix.sigprocmask Unix.SIG_SETMASK mask)

let spawn_list ~park n worker =
  let spawned = ref [] in
  masked ~park (fun () ->
      for _ = 1 to n do
        spawned := Domain.spawn worker :: !spawned
      done);
  !spawned

let join_list ~park domains =
  masked ~park (fun () ->
      List.iter (fun d -> try Domain.join d with e -> park e) domains)
