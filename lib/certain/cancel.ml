(* Cooperative cancellation token for the structure scan. See the .mli
   for the determinism contract: caps truncate the stream by position
   (exact, schedule-independent), the deadline halts cooperatively
   (prompt, wall-clock dependent). *)

type reason =
  | Deadline
  | Structures
  | Evaluations

let reason_to_string = function
  | Deadline -> "deadline"
  | Structures -> "structure cap"
  | Evaluations -> "evaluation cap"

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

type t = {
  deadline_ns : int64 option;
  max_structures : int option;
  max_evaluations : int option;
  probe : (unit -> unit) option;
  state : reason option Atomic.t;
}

let create ?deadline_ns ?max_structures ?max_evaluations ?probe () =
  let positive name = function
    | Some n when n < 1 ->
      invalid_arg (Printf.sprintf "Cancel.create: %s must be positive" name)
    | _ -> ()
  in
  positive "max_structures" max_structures;
  positive "max_evaluations" max_evaluations;
  { deadline_ns; max_structures; max_evaluations; probe; state = Atomic.make None }

let unlimited () = create ()

let tripped t = Atomic.get t.state

(* First reason wins; losing the race means someone else recorded one. *)
let trip t reason = ignore (Atomic.compare_and_set t.state None (Some reason))

let check t =
  (match t.probe with Some f -> f () | None -> ());
  match t.deadline_ns with
  | Some d when Int64.compare (Vardi_obs.Obs.now_ns ()) d >= 0 ->
    trip t Deadline;
    true
  | Some _ | None -> false

let scan_cap t ~structures ~evaluations =
  let remaining spent = function
    | None -> None
    | Some cap -> Some (max 0 (cap - spent))
  in
  match
    ( remaining structures t.max_structures,
      remaining evaluations t.max_evaluations )
  with
  | None, None -> None
  | Some s, None -> Some (s, Structures)
  | None, Some e -> Some (e, Evaluations)
  | Some s, Some e -> if s <= e then Some (s, Structures) else Some (e, Evaluations)
