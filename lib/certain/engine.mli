(** Exact evaluation of queries over CW logical databases, by
    Theorem 1:

    [c ∈ Q(LB)]  iff  [h(c) ∈ Q(h(Ph₁(LB)))] for every [h : C → C]
    that respects [T].

    Two interchangeable algorithms:
    - {!Naive_mappings} enumerates all [|C|^|C|] mappings — the literal
      statement of Theorem 1; usable only on tiny databases and kept as
      a cross-validation reference.
    - {!Kernel_partitions} quantifies over kernel partitions instead
      (see {!Vardi_cwdb.Partition}), shrinking the space to at most
      Bell(|C|) and exploiting uniqueness axioms for pruning. This is
      the default.

    Both are exponential in general — necessarily so, since Theorem 5
    shows the problem co-NP-complete — which is the paper's motivation
    for the {!Vardi_approx} approximation. The engine makes the
    exponential sweep as cheap as it can be:

    - {e Parallelism}: every entry point takes [?domains] (default
      [1]); with [domains > 1] the structure stream is chunked across
      OCaml 5 [Domain.spawn] workers sharing an atomic early-exit
      flag, so one refuting (or witnessing) structure stops all
      workers. The worker count is [Domain.recommended_domain_count]
      capped by [?domains] (an explicit request above 1 always gets at
      least two domains, so the parallel path is exercised even on
      single-core hosts). Results are identical to the sequential
      engine for every entry point.
    - {e Pruning}: {!answer} seeds its survivor set from the discrete
      structure's answer (the Ph₁ image) instead of the full [|C|^k]
      candidate relation — sound because the certain answer is
      contained in every structure's answer; {!possible_answer} seeds
      its found set the same way and stops as soon as it saturates.
    - {e Plan reuse}: per-query work (NNF, compilation to relational
      algebra via {!Vardi_relational.Compile.prepared}, optimization)
      runs once per query, outside the per-structure loop; each
      structure pays only plan evaluation.

    {2 Budgets}

    Every entry point takes [?cancel], a {!Cancel} token carrying a
    wall-clock deadline and structure/evaluation caps. Caps truncate
    the structure stream by position, so capped runs are deterministic
    across worker-domain counts; the deadline is checked cooperatively
    before each structure in every worker domain. When the budget
    trips before a decision, the call still returns promptly and
    normally, with {!stats.interrupted} naming the tripped dimension —
    the raw partial value is one-sided (see the field doc), and
    [Vardi_resilience.Resilient] is the layer that degrades it into an
    honestly-qualified answer.

    {2 Observability}

    Every entry point is instrumented with {!Vardi_obs.Obs}: a span per
    call ([certain.answer], [certain.boolean], ...), sub-spans for plan
    preparation ([certain.prepare]), the discrete-structure seed
    ([certain.seed]) and each chunk of the structure scan
    ([certain.chunk], opened in the worker domain that claimed the
    chunk), plus counters [certain.structures], [certain.evaluations],
    [certain.pruned] and [certain.early_exit] attributed to the
    emitting domain. With no sink installed (the default) each
    instrumentation point costs one atomic load; the counters, summed
    across domains, equal the corresponding {!stats} fields exactly —
    the test suite enforces this for [domains = 4]. *)

type algorithm =
  | Naive_mappings
  | Kernel_partitions

(** Structure-visit order for [Kernel_partitions] (ignored by
    [Naive_mappings]): [Fresh_first] visits the discrete partition
    first; [Merge_first] visits heavily-merged partitions first, which
    finds countermodels faster when they require merging many unknowns
    (ablation A4). Default: [Fresh_first]. *)
type order = Vardi_cwdb.Partition.order =
  | Fresh_first
  | Merge_first

(** Evaluation kernel for the structure scan. {!Interned} (the
    default) runs the whole scan on integer codes: constants are
    interned once per call into a dense symtab
    ({!Vardi_interned.Symtab}), tuples are [int array]s in sorted
    array-backed relations ({!Vardi_interned.Irel}), compiled plans
    execute entirely on codes ({!Vardi_interned.Iplan}), and quotient
    images are built incrementally along the partition-enumeration
    tree, sharing unchanged relations with the parent node
    ({!Vardi_interned.Iscan}). Strings reappear only in the returned
    relation. {!Compiled} goes one step further: it shares the
    interned structure stream but compiles the per-structure
    evaluators to flat code once per call
    ({!Vardi_interned.Icode}) — relational plans become packed-integer
    instruction programs with pre-resolved slots and divisors, and
    formula checks become register-allocated closure chains — so the
    per-tuple path has no AST dispatch and no polymorphic comparison
    at all. {!Strings} is the original string-keyed path, kept as the
    differential-testing reference. All three kernels enumerate
    structures in the same order, so results, stats and positional
    budget caps agree bit-for-bit — the three-way kernel-parity fuzz
    oracle enforces this. *)
type kernel =
  | Strings
  | Interned
  | Compiled

(** Work counters for the complexity experiments and the CLI. *)
type stats = {
  structures : int;
    (** image databases examined (mappings or partitions) *)
  evaluations : int;  (** query evaluations performed *)
  early_exit : bool;
    (** the scan was decided before exhausting the structure space: a
        countermodel refuted a universal, a witness settled an
        existential, the survivor set emptied, or the possible answer
        saturated. Deterministic — it depends only on the verdict, not
        on scheduling. *)
  pruned_candidates : int;
    (** for {!answer_stats}: candidate tuples eliminated by the
        discrete-image seed without per-structure work ([|C|^k] minus
        the seed size, saturating); for {!possible_answer_stats}:
        candidates witnessed by the seed alone; [0] for the
        per-tuple/Boolean deciders *)
  wall_ns : int64;  (** wall-clock nanoseconds for the whole call *)
  domains_used : int;
    (** worker domains the scan actually ran on: [1] for a sequential
        call, otherwise [?domains] capped by
        [Domain.recommended_domain_count] (but at least [2], so the
        parallel path is exercised even on single-core hosts) *)
  interrupted : Cancel.reason option;
    (** [Some reason] when the [?cancel] budget tripped before the scan
        was decided — the returned value then reflects only the
        structures actually examined and {e must not} be read as the
        exact semantics: for the universal entry points
        ([certain_*], {!answer}) it is an over-approximation (nothing
        in the admitted prefix refuted it), for the existential ones
        ([possible_*]) an under-approximation. [None] means the result
        is exact, even if the token also tripped — a decision reached
        inside the admitted prefix is a decision. See {!Cancel} for the
        determinism contract and [Vardi_resilience.Resilient] for the
        layer that turns interrupted scans into qualified answers. *)
}

(** [certain_member ?algorithm ?order ?domains lb q c] decides
    [c ∈ Q(LB)], with early exit on the first countermodel.

    @raise Invalid_argument when [c]'s length differs from the query
    arity, when a member of [c] is not a constant of [LB], when the
    query mentions a predicate or constant outside the vocabulary of
    [LB], or when the query head is empty (use {!certain_boolean}). *)
val certain_member :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?kernel:kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  string list ->
  bool

val certain_member_stats :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?kernel:kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  string list ->
  bool * stats

(** [certain_boolean ?algorithm ?order ?domains lb q] decides
    [T ⊨f φ] for a Boolean query [(). φ] — [LAS(Q)] membership for
    Boolean queries.
    @raise Invalid_argument if the query is not Boolean or mentions
    symbols outside the vocabulary. *)
val certain_boolean :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?kernel:kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  bool

val certain_boolean_stats :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?kernel:kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  bool * stats

(** [answer ?algorithm ?order ?domains lb q] is the full certain answer
    [Q(LB)], a relation over the constant set [C]. The survivor set is
    seeded from the discrete structure's answer (never the full [C^k]
    relation) and each further structure pays one evaluation of the
    pre-compiled plan; the scan stops once the survivor set empties. *)
val answer :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?kernel:kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  Vardi_relational.Relation.t

val answer_stats :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?kernel:kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  Vardi_relational.Relation.t * stats

(** {1 The dual modality}

    A tuple is a {e possible} answer when {e some} respecting mapping
    admits it: [possible_member lb q c] iff
    [∃h. h(c) ∈ Q(h(Ph₁(LB)))]. For Boolean queries,
    [possible φ ⟺ ¬ certain (¬φ)]. Not studied by the paper directly
    but implicit in its model-theoretic semantics; exposed because the
    3-colorability reduction (Theorem 5) naturally asks a possibility
    question. *)

val possible_member :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?kernel:kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  string list ->
  bool

val possible_member_stats :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?kernel:kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  string list ->
  bool * stats

val possible_boolean :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?kernel:kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  bool

val possible_boolean_stats :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?kernel:kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  bool * stats

(** [possible_answer ?algorithm ?order ?domains lb q] is the union over
    all structures of the admitted tuples. The candidate relation is
    materialized once (guarded by {!Vardi_relational.Relation.full}'s
    enumeration cap), the found set is seeded from the discrete
    structure, and the scan stops as soon as every candidate is
    found. *)
val possible_answer :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?kernel:kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  Vardi_relational.Relation.t

val possible_answer_stats :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  ?kernel:kernel ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  Vardi_relational.Relation.t * stats

(** [validate lb q] performs the vocabulary/arity checks shared by all
    entry points.
    @raise Invalid_argument on failure. *)
val validate : Vardi_cwdb.Cw_database.t -> Vardi_logic.Query.t -> unit

(** {1 Prepared queries}

    The entry points above redo per-(database, query) work on every
    call: validation, interning the database ({!Vardi_interned.Iscan}),
    NNF, compilation to relational algebra and the optimizer pass. A
    {!prepared} pays all of that once, up front, and can then be
    evaluated any number of times — the contract behind the serve
    layer's plan cache ([Vardi_serve.Plan_cache]). Every piece inside a
    prepared query is immutable, so a single value may be evaluated
    concurrently from any number of domains. *)

(** A query prepared against a specific database and kernel. *)
type prepared

(** [prepare ?kernel lb q] validates [q] against [lb] and performs all
    per-query compilation under one [certain.prepare] span. For
    relational queries the image-answer plan is compiled eagerly; for
    Boolean queries there is no plan to compile (the deciders evaluate
    the body directly).
    @raise Invalid_argument as {!validate}. *)
val prepare :
  ?kernel:kernel -> Vardi_cwdb.Cw_database.t -> Vardi_logic.Query.t -> prepared

(** {1 Pluggable structure sources}

    An interned scan only needs three things from its plan: the symtab,
    the structure stream per (algorithm, order), and the discrete seed.
    A {!scan_source} bundles them, so a caller that {e owns} structures
    across calls — the incremental session ([Vardi_incr.Session]) with
    its partition-tree cache — can substitute cached structures for
    stream positions while the engine's scheduling, budget and stats
    machinery stays oblivious.

    Contract: [source_thunks alg ord] must yield, at every position,
    the same renaming that [Iscan.structure_thunks] (resp.
    [mapping_thunks]) over [source_plan] would yield there — that is
    what keeps positional budget caps and stats identical between a
    cached and a fresh scan (see {!Vardi_interned.Iscan.renamings}). *)
type scan_source = {
  source_plan : Vardi_interned.Iscan.plan;
  source_thunks :
    algorithm -> order -> (unit -> Vardi_interned.Iscan.structure) Seq.t;
  source_discrete : unit -> Vardi_interned.Iscan.structure;
}

(** The trivial source: fresh structures from the plan's own streams —
    exactly what the unprepared entry points use internally. *)
val source_of_plan : Vardi_interned.Iscan.plan -> scan_source

(** [prepare_with ?kernel ~source ?wrap_answer ?wrap_check lb q] is
    {!prepare} on the {!Interned} kernel (or {!Compiled}, via
    [?kernel]) with the structure stream taken from [source] instead
    of a fresh [Iscan.prepare]. [wrap_answer] wraps the compiled
    per-structure image-answer function (a session's per-query result
    memo); [wrap_check] likewise wraps the Boolean per-structure check
    used by the prepared Boolean deciders. Wrappers see the same
    structures at the same stream positions as the unwrapped scan, so
    memo hits change no stats and move no budget caps.
    @raise Invalid_argument as {!validate}, or if [kernel] is
    {!Strings} (which has no interned structure stream to share). *)
val prepare_with :
  ?kernel:kernel ->
  source:scan_source ->
  ?wrap_answer:
    ((Vardi_interned.Iscan.structure -> Vardi_interned.Irel.t) ->
    Vardi_interned.Iscan.structure ->
    Vardi_interned.Irel.t) ->
  ?wrap_check:
    ((Vardi_interned.Iscan.structure -> bool) ->
    Vardi_interned.Iscan.structure ->
    bool) ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  prepared

val prepared_db : prepared -> Vardi_cwdb.Cw_database.t
val prepared_query : prepared -> Vardi_logic.Query.t
val prepared_kernel : prepared -> kernel

(** [prepared_answer_stats p] is {!answer_stats} evaluated through the
    prepared plan — same results, same stats, same spans, minus the
    per-call preparation cost. The kernel is the one fixed at
    {!prepare} time. *)
val prepared_answer_stats :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  prepared ->
  Vardi_relational.Relation.t * stats

val prepared_possible_answer_stats :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  prepared ->
  Vardi_relational.Relation.t * stats

(** [prepared_certain_boolean_stats p] is {!certain_boolean_stats}
    through the prepared plan.
    @raise Invalid_argument if the prepared query is not Boolean. *)
val prepared_certain_boolean_stats :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  prepared ->
  bool * stats

val prepared_possible_boolean_stats :
  ?algorithm:algorithm ->
  ?order:order ->
  ?domains:int ->
  ?cancel:Cancel.t ->
  prepared ->
  bool * stats
