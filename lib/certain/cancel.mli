(** Cooperative cancellation for the structure scan.

    Exact certain-answer evaluation is co-NP-complete (Theorem 5), so
    any caller serving real traffic needs a way to bound a scan that
    will not finish. A {!t} is a budget token threaded into every
    {!Engine} entry point via [?cancel]: it carries an absolute
    wall-clock deadline and caps on the number of structures and query
    evaluations, and it records the first limit that tripped.

    The engine honors the token {e cooperatively} and
    {e deterministically}:

    - The structure and evaluation caps truncate the structure stream
      {e by position} — the scan examines exactly the first [cap]
      structures of the enumeration order and no others, in every
      schedule. The same seed, budget, algorithm and order therefore
      yield the same verdict and the same [structures] stat whether the
      scan runs on 1 domain or 8: a decision (countermodel, witness,
      emptied survivor set) present in the admitted prefix is found by
      every schedule, and a budget trip means the whole prefix was
      examined.
    - The deadline is checked before each structure in every worker
      domain, so all OCaml 5 domains stop within one structure
      evaluation of the deadline passing. Deadline trips are inherently
      wall-clock dependent and make no determinism promise.

    A trip never raises and never discards the machinery's invariants;
    the entry point returns normally with
    {!Engine.stats.interrupted}[ = Some reason], and the caller decides
    what the partial result is worth (see [Vardi_resilience.Resilient]
    for the policy layer). *)

(** The first budget dimension that tripped. *)
type reason =
  | Deadline  (** the wall-clock deadline passed mid-scan *)
  | Structures  (** the structure-count cap was reached *)
  | Evaluations  (** the evaluation-count cap was reached *)

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit

(** A cancellation token. Tokens are single-use: once tripped they stay
    tripped, and the recorded reason is the first one that fired. *)
type t

(** [create ()] builds a token.

    @param deadline_ns absolute deadline on the {!Vardi_obs.Obs.now_ns}
    clock (not a duration).
    @param max_structures cap on structures examined by the call,
    including the discrete-structure seed of the whole-answer entry
    points; must be positive.
    @param max_evaluations cap on query evaluations, likewise
    including the seed; must be positive.
    @param probe called once per cooperative check, in whichever worker
    domain performs it — the fault-injection hook
    ([Vardi_resilience.Faults.probe]); an exception it raises aborts
    the scan like any other worker failure.
    @raise Invalid_argument on a non-positive cap. *)
val create :
  ?deadline_ns:int64 ->
  ?max_structures:int ->
  ?max_evaluations:int ->
  ?probe:(unit -> unit) ->
  unit ->
  t

(** A token that never trips on its own (no deadline, no caps, no
    probe); it can still be tripped manually with {!trip}. *)
val unlimited : unit -> t

(** [tripped t] is the first reason recorded, if any. *)
val tripped : t -> reason option

(** [trip t reason] records [reason] unless the token already tripped.
    Idempotent and safe from any domain. *)
val trip : t -> reason -> unit

(** [check t] runs the probe (if any), then trips and returns [true]
    when the deadline has passed. The engine calls this before every
    structure; cap trips are {e not} reported here (they act by stream
    truncation and must not halt the in-flight prefix, or the
    determinism guarantee above would break). *)
val check : t -> bool

(** [scan_cap t ~structures ~evaluations] is the number of further
    structures the scan may admit, given that it already spent
    [structures] and [evaluations] (the seed), together with the budget
    dimension that binds — [None] when neither cap is set. The engine
    truncates the structure stream to this length and calls
    {!trip} when the enumeration would have continued past it. *)
val scan_cap : t -> structures:int -> evaluations:int -> (int * reason) option
