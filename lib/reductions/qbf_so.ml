module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query
module Vocabulary = Vardi_logic.Vocabulary
module Cw_database = Vardi_cwdb.Cw_database

let constant i j = Printf.sprintf "b%d_%d" i j

let r_predicate (p, q, r) (i, j, l) =
  Printf.sprintf "R%d%d%d_%d_%d_%d" p q r i j l

let n_predicate i = Printf.sprintf "N%d" i

let sign_of_literal { Qbf.positive; _ } = if positive then 1 else 0

(* The clause signature: sign exponents and blocks, in clause order. *)
let clause_key ((l1, l2, l3) : Qbf.clause3) =
  ( (sign_of_literal l1, sign_of_literal l2, sign_of_literal l3),
    (l1.Qbf.var.block, l2.Qbf.var.block, l3.Qbf.var.block) )

let clauses_of qbf =
  match Qbf.cnf3_clauses qbf with
  | Some cs -> cs
  | None -> invalid_arg "Qbf_so: the matrix is not in 3-CNF"

let used_predicates qbf =
  List.sort_uniq compare
    (List.map
       (fun cl ->
         let signs, blocks = clause_key cl in
         r_predicate signs blocks)
       (clauses_of qbf))

let database qbf =
  let sizes = Qbf.blocks qbf in
  let constants =
    "1"
    :: List.concat
         (List.mapi
            (fun bi size -> List.init size (fun j -> constant (bi + 1) (j + 1)))
            sizes)
  in
  let predicates =
    (n_predicate 1, 1) :: List.map (fun p -> (p, 3)) (used_predicates qbf)
  in
  let clause_fact cl =
    let (l1, l2, l3) = cl in
    let signs, blocks = clause_key cl in
    {
      Cw_database.pred = r_predicate signs blocks;
      args =
        [
          constant l1.Qbf.var.block l1.Qbf.var.index;
          constant l2.Qbf.var.block l2.Qbf.var.index;
          constant l3.Qbf.var.block l3.Qbf.var.index;
        ];
    }
  in
  let facts =
    { Cw_database.pred = n_predicate 1; args = [ "1" ] }
    :: List.map clause_fact (clauses_of qbf)
  in
  (* Constants of blocks ≥ 2 are pairwise distinct and distinct from
     the first-block constants and from 1; first-block constants stay
     mergeable with anything (they carry the simulated ∀ choice). *)
  let later_constants =
    List.concat
      (List.mapi
         (fun bi size ->
           if bi = 0 then []
           else List.init size (fun j -> constant (bi + 1) (j + 1)))
         sizes)
  in
  let rec pairs = function
    | [] -> []
    | c :: rest -> List.map (fun d -> (c, d)) rest @ pairs rest
  in
  let distinct = pairs later_constants in
  Cw_database.make
    ~vocabulary:(Vocabulary.make ~constants ~predicates)
    ~facts ~distinct

let xi_for pred_name (signs, blocks) =
  let p, q, r = signs in
  let i, j, l = blocks in
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let literal sign block term =
    let atom = Formula.Atom (n_predicate block, [ term ]) in
    if sign = 1 then atom else Formula.Not atom
  in
  Formula.forall_many [ "x"; "y"; "z" ]
    (Formula.Implies
       ( Formula.Atom (pred_name, [ x; y; z ]),
         Formula.disj [ literal p i x; literal q j y; literal r l z ] ))

let query qbf =
  let keys =
    List.sort_uniq compare (List.map clause_key (clauses_of qbf))
  in
  let xi =
    Formula.conj
      (List.map
         (fun (signs, blocks) ->
           xi_for (r_predicate signs blocks) (signs, blocks))
         keys)
  in
  (* Second-order prefix over N₂ ... Nₖ₊₁; block i is universal when i
     is odd, and the prefix starts at block 2, hence existentially. *)
  let k1 = Qbf.block_count qbf in
  let rec wrap i =
    if i > k1 then xi
    else
      let inner = wrap (i + 1) in
      if Qbf.universal_block qbf i then Formula.Forall2 (n_predicate i, 1, inner)
      else Formula.Exists2 (n_predicate i, 1, inner)
  in
  Query.boolean (wrap 2)

let eval_via_certain ?algorithm qbf =
  let module Obs = Vardi_obs.Obs in
  Obs.span "reduce.qbf_so" (fun () ->
      let db, q =
        Obs.span "reduce.qbf_so.encode" (fun () -> (database qbf, query qbf))
      in
      Obs.count "reduce.qbf_so.query_size"
        (Vardi_logic.Formula.size (Query.body q));
      Obs.span "reduce.qbf_so.decide" (fun () ->
          Vardi_certain.Engine.certain_boolean ?algorithm db q))
