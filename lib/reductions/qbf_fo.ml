module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query
module Vocabulary = Vardi_logic.Vocabulary
module Cw_database = Vardi_cwdb.Cw_database

let first_block_constant j = Printf.sprintf "c%d" j
let n_predicate j = Printf.sprintf "N%d" j
let y_variable i j = Printf.sprintf "y_%d_%d" i j

(* χ: replace x_{1,j} by N_j(1) and x_{i,j} (i ≥ 2) by M(y_{i,j}). *)
let rec chi = function
  | Qbf.Lit { positive; var = { block; index } } ->
    let atom =
      if block = 1 then
        Formula.Atom (n_predicate index, [ Term.const "1" ])
      else Formula.Atom ("M", [ Term.var (y_variable block index) ])
    in
    if positive then atom else Formula.Not atom
  | Qbf.Not m -> Formula.Not (chi m)
  | Qbf.And (a, b) -> Formula.And (chi a, chi b)
  | Qbf.Or (a, b) -> Formula.Or (chi a, chi b)

let query qbf =
  let sizes = Qbf.blocks qbf in
  let body = chi (Qbf.matrix qbf) in
  (* Wrap blocks k+1, k, ..., 2 (innermost first). *)
  let rec wrap i sizes body =
    match sizes with
    | [] -> body
    | size :: rest ->
      let inner = wrap (i + 1) rest body in
      if i = 1 then inner
      else
        let ys = List.init size (fun j -> y_variable i (j + 1)) in
        if Qbf.universal_block qbf i then Formula.forall_many ys inner
        else Formula.exists_many ys inner
  in
  Query.boolean (wrap 1 sizes body)

let database qbf =
  let m1 = List.hd (Qbf.blocks qbf) in
  let constants =
    "0" :: "1" :: List.init m1 (fun j -> first_block_constant (j + 1))
  in
  let predicates =
    ("M", 1) :: List.init m1 (fun j -> (n_predicate (j + 1), 1))
  in
  let facts =
    { Cw_database.pred = "M"; args = [ "1" ] }
    :: List.init m1 (fun j ->
           {
             Cw_database.pred = n_predicate (j + 1);
             args = [ first_block_constant (j + 1) ];
           })
  in
  Cw_database.make
    ~vocabulary:(Vocabulary.make ~constants ~predicates)
    ~facts
    ~distinct:[ ("0", "1") ]

let eval_via_certain ?algorithm qbf =
  let module Obs = Vardi_obs.Obs in
  Obs.span "reduce.qbf_fo" (fun () ->
      let db, q =
        Obs.span "reduce.qbf_fo.encode" (fun () -> (database qbf, query qbf))
      in
      Obs.count "reduce.qbf_fo.query_size"
        (Vardi_logic.Formula.size (Query.body q));
      Obs.span "reduce.qbf_fo.decide" (fun () ->
          Vardi_certain.Engine.certain_boolean ?algorithm db q))
