module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query
module Vocabulary = Vardi_logic.Vocabulary
module Cw_database = Vardi_cwdb.Cw_database
module Mapping = Vardi_cwdb.Mapping

let vertex_constant v = Printf.sprintf "v%d" v

let query =
  let y = Term.var "y" and x = Term.var "x" in
  Query.boolean
    (Formula.Implies
       ( Formula.Forall ("y", Formula.Atom ("M", [ y ])),
         Formula.Exists ("x", Formula.Atom ("R", [ x; x ])) ))

let colors = [ "1"; "2"; "3" ]

let database g =
  let vertex_constants =
    List.init (Graph.vertex_count g) vertex_constant
  in
  let vocabulary =
    Vocabulary.make
      ~constants:(colors @ vertex_constants)
      ~predicates:[ ("M", 1); ("R", 2) ]
  in
  let m_facts =
    List.map (fun c -> { Cw_database.pred = "M"; args = [ c ] }) colors
  in
  let r_facts =
    List.map
      (fun (u, v) ->
        {
          Cw_database.pred = "R";
          args = [ vertex_constant u; vertex_constant v ];
        })
      (Graph.edges g)
  in
  Cw_database.make ~vocabulary
    ~facts:(m_facts @ r_facts)
    ~distinct:[ ("1", "2"); ("1", "3"); ("2", "3") ]

let colorable_via_certain ?algorithm ?order g =
  let module Obs = Vardi_obs.Obs in
  Obs.span "reduce.three_col" (fun () ->
      let db = Obs.span "reduce.three_col.encode" (fun () -> database g) in
      Obs.count "reduce.three_col.vertices" (Graph.vertex_count g);
      Obs.count "reduce.three_col.edges" (List.length (Graph.edges g));
      Obs.span "reduce.three_col.decide" (fun () ->
          not (Vardi_certain.Engine.certain_boolean ?algorithm ?order db query)))

(* The proof normalizes h to be the identity on {1,2,3}; an arbitrary
   countermodel may instead send the color constants elsewhere
   (injectively, by the uniqueness axioms), so compare h(c_v) against
   h(1), h(2), h(3) rather than against the literals. *)
let coloring_of_mapping g h =
  let n = Graph.vertex_count g in
  match List.map (fun c -> Mapping.apply h c) colors with
  | exception Not_found -> None
  | color_images ->
    let color_of e =
      let rec find i = function
        | [] -> None
        | img :: rest ->
          if String.equal img e then Some i else find (i + 1) rest
      in
      find 0 color_images
    in
    let coloring = Array.make (max n 1) (-1) in
    let ok = ref true in
    for v = 0 to n - 1 do
      match
        try color_of (Mapping.apply h (vertex_constant v))
        with Not_found -> None
      with
      | Some c -> coloring.(v) <- c
      | None -> ok := false
    done;
    let witness = Array.sub coloring 0 n in
    if !ok && Graph.is_proper_coloring g witness then Some witness else None
