module Session = Vardi_incr.Session
module Cw_database = Vardi_cwdb.Cw_database

type t = {
  s_dir : string;
  s_sync : Wal.sync;
  wal : Wal.t;
  snapshot_every : int;
  lock : Mutex.t;
  s_session : Session.t;
  mutable seq : int;
  mutable since : int;  (* records committed since the last checkpoint *)
  mutable snapshots : int;
  mutable closed : bool;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let create ~dir ?(sync = Wal.Always) ?batch_interval ?(snapshot_every = 64)
    ?cache_capacity db =
  mkdir_p dir;
  List.iter
    (fun f -> if Sys.file_exists f then Sys.remove f)
    [ Snapshot.path dir; Snapshot.tmp_path dir; Wal.path dir ];
  Snapshot.write ~dir ~seq:0 ~delta:0 db;
  let wal = Wal.open_ ~sync ?batch_interval (Wal.path dir) in
  {
    s_dir = dir;
    s_sync = sync;
    wal;
    snapshot_every;
    lock = Mutex.create ();
    s_session = Session.create ?cache_capacity db;
    seq = 0;
    since = 0;
    snapshots = 1;
    closed = false;
  }

let open_ ~dir ?(sync = Wal.Always) ?batch_interval ?(snapshot_every = 64)
    ?cache_capacity () =
  let report = Recovery.recover ?cache_capacity dir in
  let wal = Wal.open_ ~sync ?batch_interval (Wal.path dir) in
  ( {
      s_dir = dir;
      s_sync = sync;
      wal;
      snapshot_every;
      lock = Mutex.create ();
      s_session = report.r_session;
      seq = report.r_seq;
      since = report.r_replayed;
      snapshots = 0;
      closed = false;
    },
    report )

let session t = t.s_session
let dir t = t.s_dir
let sync t = t.s_sync
let seq t = Mutex.protect t.lock (fun () -> t.seq)
let snapshots t = Mutex.protect t.lock (fun () -> t.snapshots)
let wal_counters t = Wal.counters t.wal

let checkpoint_locked t =
  Snapshot.write ~dir:t.s_dir ~seq:t.seq
    ~delta:(Session.delta_epoch t.s_session)
    (Session.db t.s_session);
  Wal.reset t.wal;
  t.since <- 0;
  t.snapshots <- t.snapshots + 1

(* Would [m] change [db]? Raises Invalid_argument exactly when the
   session mutator would, so nothing invalid is ever logged. The
   databases are persistent values, so probing by running the
   functional operation is side-effect free. *)
let probe db (m : Session.mutation) =
  match m with
  | Session.Insert f ->
    if List.mem f.args (Cw_database.facts_of db f.pred) then `Noop
    else begin
      ignore (Cw_database.add_fact db f);
      `Changes
    end
  | Session.Retract f ->
    ignore (Cw_database.remove_fact db f);
    `Changes
  | Session.Close { left; right; equal = false } ->
    if Cw_database.are_distinct db left right then `Noop
    else begin
      ignore (Cw_database.add_distinct db left right);
      `Changes
    end
  | Session.Close { left; right; equal = true } ->
    ignore (Cw_database.merge_constants db ~keep:left ~drop:right);
    `Changes

let commit t m =
  Mutex.protect t.lock (fun () ->
      if t.closed then invalid_arg "Store.commit: store is closed";
      match probe (Session.db t.s_session) m with
      | `Noop -> `Noop
      | `Changes ->
        let seq = t.seq + 1 in
        Wal.append t.wal ~seq m;
        (* write-ahead holds from here: the record is in the log (and
           durable per the sync policy) before the state moves *)
        ignore (Session.apply t.s_session m);
        t.seq <- seq;
        t.since <- t.since + 1;
        if t.snapshot_every > 0 && t.since >= t.snapshot_every then
          checkpoint_locked t;
        `Applied seq)

let checkpoint t =
  Mutex.protect t.lock (fun () ->
      if t.closed then invalid_arg "Store.checkpoint: store is closed";
      checkpoint_locked t)

let flush t = Wal.flush t.wal

let close t =
  Mutex.protect t.lock (fun () -> t.closed <- true);
  Wal.close t.wal

let abandon t =
  Mutex.protect t.lock (fun () -> t.closed <- true);
  Wal.abandon t.wal
