(** Per-database write-ahead log: the append-only record file that
    makes acknowledged mutations survive a crash.

    {2 File format}

    The file opens with an 8-byte magic header ([LDBWAL1\n]); after it,
    a sequence of length-prefixed records:

    {v
    +----------------+---------------------------+----------------+
    | length (u32 BE)| payload (length bytes)    | CRC32 (u32 BE) |
    +----------------+---------------------------+----------------+
    payload = seq (u64 BE) · op tag (1 byte) · op-specific fields
    v}

    The CRC covers the payload only. Sequence numbers are monotone
    (+1 per record) across the database's whole lineage — a snapshot
    truncates the log but the numbering continues, so recovery can tell
    stale pre-snapshot records from the tail it must replay.

    {2 Failure taxonomy on read}

    {!scan} distinguishes two kinds of damage:
    - a {e torn tail} — the file ends inside a record (incomplete
      length/payload/CRC, or a CRC mismatch on the final record, or a
      length field too damaged to frame a record inside the file).
      That is what an interrupted write leaves behind; the tail is
      reported (and {!truncate_torn} drops it) and everything before it
      is served.
    - {e mid-log corruption} — a CRC mismatch, undecodable payload or
      sequence discontinuity with valid records after it. No write
      interruption produces that shape; it means the file was damaged
      at rest, and {!scan} refuses with {!Corrupt} rather than silently
      dropping acknowledged history.

    {2 Fault points}

    Writes visit {!Vardi_resilience.Faults} as ["wal.append"] (before
    any byte), ["wal.append.short"] (torn-write injection via
    [Faults.short_write]) and ["wal.fsync"] (record complete, fsync
    pending); {!scan} visits ["recovery.read"]. *)

type mutation = Vardi_incr.Session.mutation

(** When an {e acknowledged} append is durable:
    - [Always] — fsync before {!append} returns; an ack implies the
      record is on stable storage.
    - [Batch] — appends are written (and the channel flushed) eagerly
      but fsync'd by a background coalescing thread within the open
      call's [batch_interval]; an ack implies durability after at most
      that interval.
    - [Never] — no fsync; durability is whenever the OS writes back. *)
type sync = Always | Batch | Never

val sync_to_string : sync -> string
val sync_of_string : string -> sync option

(** [path dir] is the log's conventional location ([dir/wal.log]). *)
val path : string -> string

(** {1 Appending} *)

type t

(** [open_ ?sync ?batch_interval path] opens (creating, with the magic
    header, if missing or empty) the log for appending. The caller is
    expected to have run recovery first on a dirty file — an appender
    never inspects existing records. [batch_interval] (seconds, default
    [0.02]) bounds the [Batch] coalescing delay. *)
val open_ : ?sync:sync -> ?batch_interval:float -> string -> t

(** [append t ~seq m] appends one record and applies the sync policy.
    Write-ahead discipline is the caller's: append must succeed before
    the mutation is applied or acknowledged.
    @raise Vardi_resilience.Faults.Injected at the armed crash points.
    @raise Invalid_argument if [t] is closed. *)
val append : t -> seq:int -> mutation -> unit

(** [flush t] flushes the channel and fsyncs if anything is pending. *)
val flush : t -> unit

(** [reset t] truncates the log back to the bare header — called after
    a snapshot has made its records redundant. Fsyncs. *)
val reset : t -> unit

(** [close t] flushes, fsyncs (unless [Never]) and closes. *)
val close : t -> unit

(** [abandon t] closes the descriptor without flushing anything beyond
    what {!append} already pushed — the tests' simulated [kill -9]. *)
val abandon : t -> unit

type counters = {
  c_appends : int;  (** records appended since {!open_} *)
  c_fsyncs : int;  (** fsync calls issued *)
  c_bytes : int;  (** record bytes appended since {!open_} *)
}

val counters : t -> counters

(** {1 Scanning (the recovery read path)} *)

type entry = {
  e_seq : int;
  e_mutation : mutation;
  e_off : int;  (** byte offset of the record's length prefix *)
  e_len : int;  (** total record length (prefix + payload + CRC) *)
}

type scan = {
  entries : entry list;  (** valid records, in file order *)
  good : int;  (** byte offset just past the last valid record *)
  torn : int;  (** torn-tail bytes after [good] ([0] = clean) *)
}

exception Corrupt of { offset : int; reason : string }

(** [scan path] reads and validates the whole log. A missing file scans
    as empty.
    @raise Corrupt on mid-log corruption (see the failure taxonomy
    above). *)
val scan : string -> scan

(** [truncate_torn path ~good] drops a torn tail at the byte level
    (ftruncate to [good], fsync). Idempotent. *)
val truncate_torn : string -> good:int -> unit

(** [corrupt path ~bit] flips one bit of the file in place — the
    directed bit-rot injection recovery tests and the checked-in
    corpus generator use. *)
val corrupt : string -> bit:int -> unit
