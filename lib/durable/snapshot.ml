module Faults = Vardi_resilience.Faults
module Ldb_format = Vardi_format.Ldb_format

let path dir = Filename.concat dir "snapshot.ldb"
let tmp_path dir = Filename.concat dir "snapshot.ldb.tmp"

type meta = { seq : int; delta : int; db : Vardi_cwdb.Cw_database.t }

exception Corrupt of string

let fsync_dir dir =
  (* Directory fsync commits the rename itself; some filesystems refuse
     fsync on a directory fd — then the rename's durability rides on the
     next journal commit, which is the best available. *)
  match Unix.openfile dir [ O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let write_all fd s pos len =
  let p = ref pos and n = ref len in
  while !n > 0 do
    let k = Unix.write_substring fd s !p !n in
    p := !p + k;
    n := !n - k
  done

let write ~dir ~seq ~delta db =
  Faults.point "snapshot.write";
  let body =
    Printf.sprintf "# ldb-snapshot 1\n# seq %d\n# delta %d\n%s" seq delta
      (Ldb_format.print db)
  in
  let tmp = tmp_path dir in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      (match
         Faults.short_write ~total:(String.length body) "snapshot.write.short"
       with
      | Some k ->
        write_all fd body 0 k;
        (* crash before the rename: the stale .tmp is recovery's to sweep *)
        raise (Faults.Injected "snapshot.write.short")
      | None -> ());
      write_all fd body 0 (String.length body);
      Unix.fsync fd);
  Unix.rename tmp (path dir);
  fsync_dir dir

let header_int ~key line =
  let prefix = "# " ^ key ^ " " in
  if String.length line > String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then
    int_of_string_opt
      (String.sub line (String.length prefix)
         (String.length line - String.length prefix))
  else None

let read dir =
  let file = path dir in
  if not (Sys.file_exists file) then None
  else begin
    let text =
      let ic = In_channel.open_bin file in
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () -> In_channel.input_all ic)
    in
    match String.split_on_char '\n' text with
    | "# ldb-snapshot 1" :: seq_line :: delta_line :: _ -> begin
      match (header_int ~key:"seq" seq_line, header_int ~key:"delta" delta_line) with
      | Some seq, Some delta -> begin
        match Ldb_format.parse text with
        | db -> Some { seq; delta; db }
        | exception Ldb_format.Syntax_error (line, msg) ->
          raise (Corrupt (Printf.sprintf "snapshot body: line %d: %s" line msg))
        | exception Invalid_argument msg ->
          raise (Corrupt ("snapshot body: " ^ msg))
      end
      | _ -> raise (Corrupt "snapshot header: bad seq/delta lines")
    end
    | _ -> raise (Corrupt "snapshot header: missing '# ldb-snapshot 1' line")
  end
