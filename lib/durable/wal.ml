module Faults = Vardi_resilience.Faults
module Session = Vardi_incr.Session
module Cw_database = Vardi_cwdb.Cw_database

type mutation = Session.mutation

type sync = Always | Batch | Never

let sync_to_string = function
  | Always -> "always"
  | Batch -> "batch"
  | Never -> "never"

let sync_of_string = function
  | "always" -> Some Always
  | "batch" -> Some Batch
  | "never" -> Some Never
  | _ -> None

let path dir = Filename.concat dir "wal.log"

let magic = "LDBWAL1\n"
let header_len = String.length magic

(* --- record encoding ---------------------------------------------- *)

let tag_insert = 0
let tag_retract = 1
let tag_close_distinct = 2
let tag_close_equal = 3

let add_u16 b n =
  if n < 0 || n > 0xFFFF then invalid_arg "Wal: field too long";
  Buffer.add_char b (Char.chr (n lsr 8));
  Buffer.add_char b (Char.chr (n land 0xFF))

let add_str b s =
  add_u16 b (String.length s);
  Buffer.add_string b s

let add_u64 b n =
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr ((n lsr ((7 - i) * 8)) land 0xFF))
  done

let encode_payload ~seq (m : mutation) =
  let b = Buffer.create 64 in
  add_u64 b seq;
  (match m with
  | Session.Insert { pred; args } | Session.Retract { pred; args } ->
    Buffer.add_char b
      (Char.chr (match m with Session.Insert _ -> tag_insert | _ -> tag_retract));
    add_str b pred;
    add_u16 b (List.length args);
    List.iter (add_str b) args
  | Session.Close { left; right; equal } ->
    Buffer.add_char b (Char.chr (if equal then tag_close_equal else tag_close_distinct));
    add_str b left;
    add_str b right);
  Buffer.contents b

exception Decode of string

let get_u16 s pos =
  if pos + 2 > String.length s then raise (Decode "truncated field");
  (Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1]

let get_str s pos =
  let len = get_u16 s pos in
  if pos + 2 + len > String.length s then raise (Decode "truncated string");
  (String.sub s (pos + 2) len, pos + 2 + len)

let decode_payload s =
  if String.length s < 9 then raise (Decode "payload too short");
  let seq = ref 0 in
  for i = 0 to 7 do
    seq := (!seq lsl 8) lor Char.code s.[i]
  done;
  let tag = Char.code s.[8] in
  let m =
    if tag = tag_insert || tag = tag_retract then begin
      let pred, pos = get_str s 9 in
      let nargs = get_u16 s pos in
      let pos = ref (pos + 2) in
      let args = ref [] in
      for _ = 1 to nargs do
        let a, p = get_str s !pos in
        pos := p;
        args := a :: !args
      done;
      let args = List.rev !args in
      if !pos <> String.length s then raise (Decode "trailing bytes");
      let fact = { Cw_database.pred; args } in
      if tag = tag_insert then Session.Insert fact else Session.Retract fact
    end
    else if tag = tag_close_distinct || tag = tag_close_equal then begin
      let left, pos = get_str s 9 in
      let right, pos = get_str s pos in
      if pos <> String.length s then raise (Decode "trailing bytes");
      Session.Close { left; right; equal = tag = tag_close_equal }
    end
    else raise (Decode (Printf.sprintf "unknown op tag %d" tag))
  in
  (!seq, m)

let put_u32 bytes pos (v : int32) =
  let v = Int32.to_int v land 0xFFFFFFFF in
  Bytes.set bytes pos (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set bytes (pos + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set bytes (pos + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set bytes (pos + 3) (Char.chr (v land 0xFF))

let get_u32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

(* [len | payload | crc32(payload)] as one string, written in one go so
   a torn append can only ever damage the file's tail. *)
let frame payload =
  let plen = String.length payload in
  let b = Bytes.create (4 + plen + 4) in
  put_u32 b 0 (Int32.of_int plen);
  Bytes.blit_string payload 0 b 4 plen;
  put_u32 b (4 + plen) (Crc32.digest payload);
  Bytes.unsafe_to_string b

(* --- appender ------------------------------------------------------ *)

type t = {
  fd : Unix.file_descr;
  sync : sync;
  lock : Mutex.t;
  mutable writable : bool;  (* false after close/abandon or a torn write *)
  mutable fd_open : bool;
  mutable dirty : bool;  (* Batch: bytes written since the last fsync *)
  mutable flusher : Thread.t option;
  mutable appends : int;
  mutable fsyncs : int;
  mutable bytes : int;
}

let write_all fd s pos len =
  let p = ref pos and n = ref len in
  while !n > 0 do
    let k = Unix.write_substring fd s !p !n in
    p := !p + k;
    n := !n - k
  done

let rec flusher_loop t interval =
  Thread.delay interval;
  let continue =
    Mutex.protect t.lock (fun () ->
        if not t.fd_open then false
        else begin
          if t.dirty then begin
            (try
               Unix.fsync t.fd;
               t.fsyncs <- t.fsyncs + 1
             with Unix.Unix_error _ -> ());
            t.dirty <- false
          end;
          true
        end)
  in
  if continue then flusher_loop t interval

let open_ ?(sync = Always) ?(batch_interval = 0.02) file =
  let fd = Unix.openfile file [ O_WRONLY; O_CREAT; O_APPEND ] 0o644 in
  if (Unix.fstat fd).st_size = 0 then begin
    write_all fd magic 0 header_len;
    Unix.fsync fd
  end;
  let t =
    {
      fd;
      sync;
      lock = Mutex.create ();
      writable = true;
      fd_open = true;
      dirty = false;
      flusher = None;
      appends = 0;
      fsyncs = 0;
      bytes = 0;
    }
  in
  (match sync with
  | Batch -> t.flusher <- Some (Thread.create (fun () -> flusher_loop t batch_interval) ())
  | Always | Never -> ());
  t

let append t ~seq m =
  Faults.point "wal.append";
  let record = frame (encode_payload ~seq m) in
  let total = String.length record in
  Mutex.protect t.lock (fun () ->
      if not t.writable then invalid_arg "Wal.append: log is closed";
      (match Faults.short_write ~total "wal.append.short" with
      | Some k ->
        (* a torn write: only the first [k] bytes reach the file, and the
           log refuses further appends so the tear stays at the tail. *)
        write_all t.fd record 0 k;
        t.writable <- false;
        raise (Faults.Injected "wal.append.short")
      | None -> ());
      write_all t.fd record 0 total;
      t.appends <- t.appends + 1;
      t.bytes <- t.bytes + total;
      match t.sync with
      | Always ->
        Faults.point "wal.fsync";
        Unix.fsync t.fd;
        t.fsyncs <- t.fsyncs + 1
      | Batch -> t.dirty <- true
      | Never -> ())

let flush t =
  Mutex.protect t.lock (fun () ->
      if t.fd_open then begin
        Unix.fsync t.fd;
        t.fsyncs <- t.fsyncs + 1;
        t.dirty <- false
      end)

let reset t =
  Mutex.protect t.lock (fun () ->
      if not t.writable then invalid_arg "Wal.reset: log is closed";
      Unix.ftruncate t.fd header_len;
      (* O_APPEND repositions every write at the new end of file. *)
      Unix.fsync t.fd;
      t.fsyncs <- t.fsyncs + 1;
      t.dirty <- false)

let join_flusher t =
  match t.flusher with
  | None -> ()
  | Some th ->
    t.flusher <- None;
    Thread.join th

let close t =
  Mutex.protect t.lock (fun () ->
      if t.fd_open then begin
        (match t.sync with
        | Never -> ()
        | Always | Batch ->
          (try
             Unix.fsync t.fd;
             t.fsyncs <- t.fsyncs + 1
           with Unix.Unix_error _ -> ()));
        Unix.close t.fd;
        t.fd_open <- false;
        t.writable <- false
      end);
  join_flusher t

let abandon t =
  Mutex.protect t.lock (fun () ->
      if t.fd_open then begin
        Unix.close t.fd;
        t.fd_open <- false;
        t.writable <- false
      end);
  join_flusher t

type counters = { c_appends : int; c_fsyncs : int; c_bytes : int }

let counters t =
  Mutex.protect t.lock (fun () ->
      { c_appends = t.appends; c_fsyncs = t.fsyncs; c_bytes = t.bytes })

(* --- scanning ------------------------------------------------------ *)

type entry = { e_seq : int; e_mutation : mutation; e_off : int; e_len : int }
type scan = { entries : entry list; good : int; torn : int }

exception Corrupt of { offset : int; reason : string }

let read_file file =
  let ic = In_channel.open_bin file in
  Fun.protect
    ~finally:(fun () -> In_channel.close ic)
    (fun () -> In_channel.input_all ic)

let scan file =
  Faults.point "recovery.read";
  if not (Sys.file_exists file) then { entries = []; good = 0; torn = 0 }
  else begin
    let data = read_file file in
    let size = String.length data in
    if size = 0 then { entries = []; good = 0; torn = 0 }
    else if size < header_len then
      (* a crash inside the initial header write *)
      { entries = []; good = 0; torn = size }
    else if String.sub data 0 header_len <> magic then
      raise (Corrupt { offset = 0; reason = "bad magic header" })
    else begin
      let entries = ref [] in
      let off = ref header_len in
      let torn_at = ref None in
      let last_seq = ref None in
      (try
         while !off < size && !torn_at = None do
           let start = !off in
           if size - start < 4 then torn_at := Some start
           else begin
             let plen = get_u32 data start in
             let record_end = start + 4 + plen + 4 in
             if plen < 9 || record_end > size then
               (* the length cannot frame a record inside the file: the
                  shape an interrupted append leaves — a torn tail. *)
               torn_at := Some start
             else begin
               let payload = String.sub data (start + 4) plen in
               let stored = Int32.of_int (get_u32 data (start + 4 + plen)) in
               let computed =
                 Int32.logand (Crc32.digest payload) 0xFFFFFFFFl
               in
               if Int32.logand stored 0xFFFFFFFFl <> computed then begin
                 if record_end = size then torn_at := Some start
                 else
                   raise
                     (Corrupt { offset = start; reason = "CRC mismatch" })
               end
               else begin
                 let seq, m =
                   try decode_payload payload
                   with Decode reason ->
                     raise (Corrupt { offset = start; reason })
                 in
                 (match !last_seq with
                 | Some s when seq <> s + 1 ->
                   raise
                     (Corrupt
                        {
                          offset = start;
                          reason =
                            Printf.sprintf
                              "sequence gap: %d after %d" seq s;
                        })
                 | _ -> ());
                 last_seq := Some seq;
                 entries :=
                   {
                     e_seq = seq;
                     e_mutation = m;
                     e_off = start;
                     e_len = record_end - start;
                   }
                   :: !entries;
                 off := record_end
               end
             end
           end
         done
       with Decode reason -> raise (Corrupt { offset = !off; reason }));
      let good = match !torn_at with Some at -> at | None -> !off in
      { entries = List.rev !entries; good; torn = size - good }
    end
  end

let truncate_torn file ~good =
  let fd = Unix.openfile file [ O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd good;
      Unix.fsync fd)

let corrupt file ~bit =
  let fd = Unix.openfile file [ O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let pos = bit / 8 in
      let buf = Bytes.create 1 in
      ignore (Unix.lseek fd pos SEEK_SET);
      if Unix.read fd buf 0 1 <> 1 then invalid_arg "Wal.corrupt: out of range";
      Bytes.set buf 0
        (Char.chr (Char.code (Bytes.get buf 0) lxor (1 lsl (bit mod 8))));
      ignore (Unix.lseek fd pos SEEK_SET);
      ignore (Unix.write fd buf 0 1);
      Unix.fsync fd)
