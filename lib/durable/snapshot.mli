(** Database snapshots: the compaction half of durability.

    A snapshot is a valid [.ldb] text file (readable by [ldb] and every
    {!Vardi_format.Ldb_format} consumer) prefixed with comment header
    lines the recovery path reads back:

    {v
    # ldb-snapshot 1
    # seq 42
    # delta 40
    predicate TEACHES/2
    ...
    v}

    [seq] is the WAL sequence number of the last mutation folded into
    the snapshot (so recovery replays exactly the records after it) and
    [delta] is the session's delta epoch at that point (so a recovered
    session reports the same epoch the lost process would have).

    {!write} never overwrites in place: it writes [snapshot.ldb.tmp],
    fsyncs, atomically renames over [snapshot.ldb], and fsyncs the
    directory — a crash at any point leaves either the old snapshot or
    the new one, never a hybrid. It visits the
    {!Vardi_resilience.Faults} points ["snapshot.write"] and
    ["snapshot.write.short"]. *)

(** [dir/snapshot.ldb]. *)
val path : string -> string

(** The staging file {!write} renames from ([dir/snapshot.ldb.tmp]);
    recovery deletes a stale one left by a crash mid-write. *)
val tmp_path : string -> string

type meta = { seq : int; delta : int; db : Vardi_cwdb.Cw_database.t }

exception Corrupt of string

(** [write ~dir ~seq ~delta db] atomically replaces [dir]'s snapshot.
    @raise Vardi_resilience.Faults.Injected at the armed crash points
    (the staging [.tmp] may remain; the published snapshot is intact). *)
val write : dir:string -> seq:int -> delta:int -> Vardi_cwdb.Cw_database.t -> unit

(** [read dir] loads the published snapshot; [None] when the directory
    has none.
    @raise Corrupt when the file exists but its header or body does not
    parse — a snapshot is published atomically, so damage means the
    file was corrupted at rest and recovery must refuse. *)
val read : string -> meta option
