(** Startup recovery: rebuild a resident session from a database
    directory's snapshot and WAL tail.

    A durable database lives in one directory holding [snapshot.ldb]
    (see {!Snapshot}) and [wal.log] (see {!Wal}). Recovery:

    + deletes a stale [snapshot.ldb.tmp] left by a crash mid-snapshot;
    + loads the snapshot (a directory with neither file recovers as
      absent — {!recover} raises; the {!Store} creates fresh instead);
    + scans the WAL, truncating a {e torn tail} (the residue of an
      interrupted append — those bytes were never acknowledged) but
      {b refusing} on {e mid-log} corruption, because every complete
      record before a valid record was acknowledged and silently
      dropping it would un-happen an acked mutation;
    + replays, through {!Vardi_incr.Session.apply}, exactly the records
      with sequence numbers after the snapshot's — records at or below
      it are stale duplicates from a crash between snapshot publication
      and log reset, and are skipped;
    + requires the replayed records to continue the snapshot's sequence
      contiguously, so the recovered session's delta epoch (snapshot
      epoch + replayed records) matches the lost process's exactly.

    Database {e names} (arbitrary strings on the wire) map to directory
    names through a conservative percent-encoding, {!encode_name}, so a
    data dir enumerates cleanly with {!list}. *)

(** [encode_name name] percent-encodes everything outside
    [A-Za-z0-9._-] (and encodes a leading dot), so any wire database
    name is a safe, flat directory name. *)
val encode_name : string -> string

(** Inverse of {!encode_name} (returns the input unchanged when no
    escapes are present). *)
val decode_name : string -> string

(** [db_dir ~data_dir ~name] is [data_dir/encode_name name]. *)
val db_dir : data_dir:string -> name:string -> string

(** [list ~data_dir] is the decoded names of the database directories
    under [data_dir] (sorted; empty when the directory is missing). *)
val list : data_dir:string -> string list

type report = {
  r_session : Vardi_incr.Session.t;  (** the recovered resident session *)
  r_seq : int;  (** last applied sequence number *)
  r_delta : int;  (** the recovered session's delta epoch *)
  r_snapshot_seq : int;  (** sequence the snapshot was taken at *)
  r_replayed : int;  (** WAL records applied on top of the snapshot *)
  r_skipped : int;  (** stale records at or below the snapshot seq *)
  r_torn_bytes : int;  (** torn-tail bytes dropped (0 = clean) *)
}

(** Unrecoverable damage: mid-log WAL corruption ({!Wal.Corrupt}),
    snapshot damage ({!Snapshot.Corrupt}), a WAL that does not continue
    the snapshot's sequence, or a record the database refuses to
    replay. The payload says where and why; callers exit 2. *)
exception Corrupt of string

(** [recover ?cache_capacity ?truncate dir] rebuilds the session.
    [truncate] (default [true]) physically drops a torn WAL tail;
    [~truncate:false] is the read-only verification mode ([ldb recover
    --verify]) — same checks, no writes.
    @raise Corrupt as above.
    @raise Sys_error when [dir] has no snapshot (nothing to recover). *)
val recover : ?cache_capacity:int -> ?truncate:bool -> string -> report

(** [verify dir] is [recover ~truncate:false dir]. *)
val verify : ?cache_capacity:int -> string -> report
