module Faults = Vardi_resilience.Faults
module Session = Vardi_incr.Session

(* --- name <-> directory encoding ----------------------------------- *)

let safe_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '-'

let encode_name name =
  let b = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      if safe_char c && not (i = 0 && c = '.') then Buffer.add_char b c
      else Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    name;
  Buffer.contents b

let decode_name enc =
  let b = Buffer.create (String.length enc) in
  let i = ref 0 in
  let n = String.length enc in
  while !i < n do
    if enc.[!i] = '%' && !i + 2 < n then begin
      match int_of_string_opt ("0x" ^ String.sub enc (!i + 1) 2) with
      | Some code ->
        Buffer.add_char b (Char.chr code);
        i := !i + 3
      | None ->
        Buffer.add_char b enc.[!i];
        incr i
    end
    else begin
      Buffer.add_char b enc.[!i];
      incr i
    end
  done;
  Buffer.contents b

let db_dir ~data_dir ~name = Filename.concat data_dir (encode_name name)

let list ~data_dir =
  match Sys.readdir data_dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Sys.is_directory (Filename.concat data_dir n))
    |> List.map decode_name
    |> List.sort String.compare

(* --- recovery ------------------------------------------------------ *)

type report = {
  r_session : Session.t;
  r_seq : int;
  r_delta : int;
  r_snapshot_seq : int;
  r_replayed : int;
  r_skipped : int;
  r_torn_bytes : int;
}

exception Corrupt of string

let recover ?cache_capacity ?(truncate = true) dir =
  Faults.point "recovery.read";
  (* A crash mid-snapshot leaves a staging file; it was never published,
     so it carries no acknowledged state and is swept first. *)
  let tmp = Snapshot.tmp_path dir in
  if truncate && Sys.file_exists tmp then Sys.remove tmp;
  let snap =
    match Snapshot.read dir with
    | Some meta -> meta
    | None -> raise (Sys_error (dir ^ ": no snapshot to recover from"))
    | exception Snapshot.Corrupt reason ->
      raise (Corrupt (Snapshot.path dir ^ ": " ^ reason))
  in
  let wal_file = Wal.path dir in
  let scan =
    try Wal.scan wal_file
    with Wal.Corrupt { offset; reason } ->
      raise
        (Corrupt
           (Printf.sprintf
              "%s: unrecoverable corruption at byte %d: %s (a torn tail \
               would be truncated, but damage before intact records means \
               acknowledged history was lost)"
              wal_file offset reason))
  in
  if truncate && scan.torn > 0 then Wal.truncate_torn wal_file ~good:scan.good;
  let session = Session.create ?cache_capacity ~delta_epoch:snap.delta snap.db in
  let seq = ref snap.seq in
  let replayed = ref 0 in
  let skipped = ref 0 in
  List.iter
    (fun (e : Wal.entry) ->
      if e.e_seq <= snap.seq then incr skipped
        (* a crash between snapshot publication and WAL reset leaves the
           whole old log behind; its records are already in the snapshot *)
      else if e.e_seq <> !seq + 1 then
        raise
          (Corrupt
             (Printf.sprintf
                "%s: WAL does not continue the snapshot: expected seq %d, \
                 found %d"
                wal_file (!seq + 1) e.e_seq))
      else begin
        (match Session.apply session e.e_mutation with
        | true -> ()
        | false ->
          (* the log never records no-ops, so a record that replays as
             one means log and snapshot disagree about history *)
          raise
            (Corrupt
               (Printf.sprintf
                  "%s: record seq %d replayed as a no-op — log and \
                   snapshot disagree"
                  wal_file e.e_seq))
        | exception Invalid_argument msg ->
          raise
            (Corrupt
               (Printf.sprintf "%s: record seq %d does not apply: %s"
                  wal_file e.e_seq msg)));
        incr seq;
        incr replayed
      end)
    scan.entries;
  {
    r_session = session;
    r_seq = !seq;
    r_delta = Session.delta_epoch session;
    r_snapshot_seq = snap.seq;
    r_replayed = !replayed;
    r_skipped = !skipped;
    r_torn_bytes = scan.torn;
  }

let verify ?cache_capacity dir = recover ?cache_capacity ~truncate:false dir
