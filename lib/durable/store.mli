(** A durable store: one database directory ({!Snapshot} +  {!Wal})
    bound to one resident {!Vardi_incr.Session}, with the write-ahead
    commit discipline the serve daemon's durability contract rests on.

    {!commit} serializes mutations under an internal lock and performs,
    in order: a {e probe} of the current database (reject invalid
    mutations and detect no-ops {e before} anything is logged — the WAL
    only ever records mutations that will apply and move the delta
    epoch), the WAL append (with the configured {!Wal.sync} policy),
    and only then the in-memory apply. A mutation is thus never
    acknowledged before it is logged, and never logged unless it will
    succeed.

    Every [snapshot_every] committed records the store {e checkpoints}:
    writes a fresh snapshot (atomic rename) and resets the WAL, so the
    log stays short and recovery stays fast. *)

type t

(** [create ~dir ?sync ?snapshot_every ?cache_capacity db] starts a
    {b fresh} lineage in [dir] (created if missing; any previous
    snapshot/WAL there is discarded): snapshot of [db] at seq [0],
    delta epoch [0], empty log. [snapshot_every] (default [64]; [0]
    disables) is the auto-checkpoint record threshold. *)
val create :
  dir:string ->
  ?sync:Wal.sync ->
  ?batch_interval:float ->
  ?snapshot_every:int ->
  ?cache_capacity:int ->
  Vardi_cwdb.Cw_database.t ->
  t

(** [open_ ~dir ... ()] recovers an existing lineage
    ({!Recovery.recover}, truncating any torn tail) and reopens its log
    for appending.
    @raise Recovery.Corrupt and [Sys_error] as {!Recovery.recover}. *)
val open_ :
  dir:string ->
  ?sync:Wal.sync ->
  ?batch_interval:float ->
  ?snapshot_every:int ->
  ?cache_capacity:int ->
  unit ->
  t * Recovery.report

(** The store's resident session. Queries go straight to it; mutations
    must go through {!commit}. *)
val session : t -> Vardi_incr.Session.t

val dir : t -> string
val sync : t -> Wal.sync

(** Last committed sequence number (0 = none since {!create}). *)
val seq : t -> int

(** Checkpoints taken since open (auto + explicit). *)
val snapshots : t -> int

val wal_counters : t -> Wal.counters

(** [commit t m] runs the write-ahead commit. [`Applied seq] means the
    mutation is logged (durable per the sync policy) and applied;
    [`Noop] means it would not change the database — nothing was
    logged or applied.
    @raise Invalid_argument when the mutation is invalid (same
    conditions as the session mutators) or the store is closed.
    @raise Vardi_resilience.Faults.Injected at the durable layer's
    crash points — the store refuses further commits; recover from
    disk. *)
val commit : t -> Vardi_incr.Session.mutation -> [ `Applied of int | `Noop ]

(** [checkpoint t] forces a snapshot + WAL reset now. *)
val checkpoint : t -> unit

(** [flush t] fsyncs pending WAL bytes (meaningful under [Batch]). *)
val flush : t -> unit

(** [close t] flushes and closes the log. The session stays usable for
    reads; further {!commit}s raise. *)
val close : t -> unit

(** [abandon t] drops the log descriptor without flushing — the
    simulated [kill -9] the crash-recovery oracle uses. On-disk state
    is exactly what the sync policy had already persisted. *)
val abandon : t -> unit
