exception Injected of string

type plan = { seed : int; rate : float }

let current : plan option Atomic.t = Atomic.make None
let visits = Atomic.make 0

let arm ~seed ?(rate = 0.05) () =
  let rate = Float.max 0. (Float.min 1. rate) in
  Atomic.set current (Some { seed; rate });
  Atomic.set visits 0

let disarm () = Atomic.set current None
let armed () = Atomic.get current <> None

let with_faults ~seed ?rate f =
  let saved = Atomic.get current in
  arm ~seed ?rate ();
  Fun.protect ~finally:(fun () -> Atomic.set current saved) f

(* splitmix64-style finalizer: the firing decision for one visit
   depends only on (seed, visit index, point name), so a given plan
   replays the same decisions for the same visit order. *)
let mix seed visit name =
  let z = ref (Int64.of_int (seed lxor (visit * 0x9E3779B9) lxor Hashtbl.hash name)) in
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L;
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 27)) 0x94D049BB133111EBL;
  Int64.logxor !z (Int64.shift_right_logical !z 31)

let fires plan visit name =
  let h = Int64.to_int (Int64.logand (mix plan.seed visit name) 0xFFFFFFL) in
  float_of_int h < plan.rate *. float_of_int 0x1000000

let point name =
  match Atomic.get current with
  | None -> ()
  | Some plan ->
    let visit = Atomic.fetch_and_add visits 1 in
    if fires plan visit name then raise (Injected name)

let probe () = point "scan.worker"

(* Auxiliary deterministic draw for a firing visit: where a short write
   stops, or which bit a flip corrupts. Re-mixes the same (seed, visit)
   coordinates under a derived name so the draw is independent of the
   firing decision but replays with it. *)
let draw plan visit name modulus =
  if modulus <= 0 then 0
  else
    Int64.to_int
      (Int64.rem
         (Int64.logand (mix plan.seed visit (name ^ "#aux")) Int64.max_int)
         (Int64.of_int modulus))

let short_write ~total name =
  match Atomic.get current with
  | None -> None
  | Some plan ->
    let visit = Atomic.fetch_and_add visits 1 in
    if fires plan visit name then Some (draw plan visit name total) else None

let flip_bit ~bits name =
  match Atomic.get current with
  | None -> None
  | Some plan ->
    let visit = Atomic.fetch_and_add visits 1 in
    if fires plan visit name then Some (draw plan visit name bits) else None

let raising_sink ?(after = 0) () =
  let seen = Atomic.make 0 in
  {
    Vardi_obs.Obs.emit =
      (fun _ ->
        if Atomic.fetch_and_add seen 1 >= after then raise (Injected "obs.sink"));
    flush = (fun () -> raise (Injected "obs.sink"));
  }
