(** Resilient evaluation: exact while the budget lasts, honest
    degradation when it does not.

    Theorem 5 makes exact certain-answer evaluation co-NP-complete, so
    an engine serving real traffic will meet inputs it cannot finish.
    This layer runs the exact {!Vardi_certain.Engine} scan under a
    {!Budget} and, when the budget trips or the scan dies (an injected
    or real worker fault), degrades per {!policy} instead of hanging or
    crashing. The principled fallback is the paper's own Section 5
    approximation — sound always (Theorem 11), complete on fully
    specified databases and positive queries (Theorems 12/13).

    {2 The qualified-answer lattice}

    Every result says exactly how much it claims:

    {v
            Upper_bound a      a ⊇ Q(LB)   (unrefuted survivors of the
                 |                          interrupted exact scan)
             Exact a           a = Q(LB)
                 |
            Lower_bound a      a ⊆ Q(LB)   (Theorem-11 approximation)

            Exhausted          no claim    (Fail policy)
    v}

    For Boolean queries the same lattice reads pointwise on the
    verdict: [Lower_bound true] entails the sentence is certain (the
    approximation is sound), [Upper_bound true] only means no
    countermodel was met before the budget tripped, and
    [Lower_bound false] / [Upper_bound false] decide nothing beyond
    their bound.

    The fuzz oracles ([resilient-*] in [Vardi_fuzz.Oracle]) enforce the
    lattice differentially: on every generated instance,
    [Lower_bound a] implies [a ⊆ Q(LB)], [Upper_bound a] implies
    [Q(LB) ⊆ a], [Exact a] implies equality — with and without
    injected faults. *)

type policy =
  | Fail
      (** exhaustion is an error: return {!Exhausted} (the CLI maps it
          to exit code 124); a scan exception propagates *)
  | Partial
      (** on budget exhaustion return the interrupted scan's survivor
          set as {!Upper_bound}; on a scan failure there is no partial
          scan to report, so fall back like [Approx] *)
  | Approx
      (** fall back to the Theorem-11 approximation: {!Lower_bound},
          sound unconditionally *)

type 'a qualified =
  | Exact of 'a  (** the budget sufficed; this is [Q(LB)] *)
  | Lower_bound of 'a  (** sound under-approximation: [⊆ Q(LB)] *)
  | Upper_bound of 'a  (** unrefuted over-approximation: [⊇ Q(LB)] *)
  | Exhausted  (** budget tripped under [Fail]; no claim *)

(** Which computation produced the returned value. *)
type source =
  | Exact_scan  (** the exact engine finished within budget *)
  | Partial_scan  (** the interrupted exact scan's survivors *)
  | Approx_fallback  (** the Section 5 approximation *)
  | No_answer  (** nothing was returned ({!Exhausted}) *)

(** Honest provenance for every call — the stats never claim more than
    the result delivers: [source = Exact_scan] iff the result is
    {!Exact}, [tripped]/[scan_failure] record why degradation happened,
    and [scan] keeps the engine's own counters (structures visited
    before the abort included). *)
type stats = {
  source : source;
  tripped : Vardi_certain.Cancel.reason option;
      (** budget dimension that tripped, if one did *)
  scan_failure : string option;
      (** printed exception when the exact scan died (e.g. an injected
          worker fault) instead of tripping *)
  scan : Vardi_certain.Engine.stats option;
      (** the exact scan's counters — present whenever the scan
          returned, complete or interrupted; [None] when it raised *)
  wall_ns : int64;  (** wall clock for the whole resilient call *)
}

(** [answer ~budget lb q] evaluates the certain answer [Q(LB)] under
    [budget] and degrades per [policy] (default [Fail]).

    [?algorithm], [?order], [?domains], [?kernel] are passed to the
    exact engine.
    Emits a [resilience.answer] span and, when degradation happens,
    [resilience.budget_trip] / [resilience.scan_failure] /
    [resilience.fallback] counters.

    @raise Invalid_argument when the query mentions symbols outside the
    vocabulary (validated {e before} the scan, so user errors are never
    swallowed by degradation).
    Under [policy = Fail] a scan exception (injected fault, real bug)
    propagates; [Partial] and [Approx] degrade it to the approximation
    fallback. *)
val answer :
  ?policy:policy ->
  ?algorithm:Vardi_certain.Engine.algorithm ->
  ?order:Vardi_certain.Engine.order ->
  ?domains:int ->
  ?kernel:Vardi_certain.Engine.kernel ->
  ?budget:Budget.t ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  Vardi_relational.Relation.t qualified

val answer_stats :
  ?policy:policy ->
  ?algorithm:Vardi_certain.Engine.algorithm ->
  ?order:Vardi_certain.Engine.order ->
  ?domains:int ->
  ?kernel:Vardi_certain.Engine.kernel ->
  ?budget:Budget.t ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  Vardi_relational.Relation.t qualified * stats

(** [boolean ~budget lb q] — the same contract for a Boolean query.
    @raise Invalid_argument when [q] has answer variables. *)
val boolean :
  ?policy:policy ->
  ?algorithm:Vardi_certain.Engine.algorithm ->
  ?order:Vardi_certain.Engine.order ->
  ?domains:int ->
  ?kernel:Vardi_certain.Engine.kernel ->
  ?budget:Budget.t ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  bool qualified

val boolean_stats :
  ?policy:policy ->
  ?algorithm:Vardi_certain.Engine.algorithm ->
  ?order:Vardi_certain.Engine.order ->
  ?domains:int ->
  ?kernel:Vardi_certain.Engine.kernel ->
  ?budget:Budget.t ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  bool qualified * stats

(** [prepared_answer_stats p] is {!answer_stats} evaluated through a
    {!Vardi_certain.Engine.prepared} query — per-query compilation was
    paid once at prepare time (the serve layer's plan-cache path). The
    kernel is the one fixed at prepare time; the approximation fallback
    recompiles from the stored database and query, which only happens
    on degradation paths. *)
val prepared_answer_stats :
  ?policy:policy ->
  ?algorithm:Vardi_certain.Engine.algorithm ->
  ?order:Vardi_certain.Engine.order ->
  ?domains:int ->
  ?budget:Budget.t ->
  Vardi_certain.Engine.prepared ->
  Vardi_relational.Relation.t qualified * stats

(** [prepared_boolean_stats p] is {!boolean_stats} through a prepared
    query.
    @raise Invalid_argument if the prepared query is not Boolean. *)
val prepared_boolean_stats :
  ?policy:policy ->
  ?algorithm:Vardi_certain.Engine.algorithm ->
  ?order:Vardi_certain.Engine.order ->
  ?domains:int ->
  ?budget:Budget.t ->
  Vardi_certain.Engine.prepared ->
  bool qualified * stats

val pp_qualified :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a qualified -> unit

val source_to_string : source -> string
val pp_stats : Format.formatter -> stats -> unit
