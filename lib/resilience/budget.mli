(** Evaluation budgets — the declarative face of
    {!Vardi_certain.Cancel}.

    A budget says how much an exact certain-answer scan may cost before
    it must give up: wall-clock time, structures examined, query
    evaluations performed. {!start} turns it into a live cancellation
    token (fixing the deadline as "now + timeout") that the
    {!Vardi_certain.Engine} entry points honor cooperatively; the
    {!Resilient} layer does this wiring for you and adds the
    degradation policy. *)

type t = {
  timeout : float option;  (** wall-clock limit in seconds *)
  max_structures : int option;
      (** cap on structures examined, seed included *)
  max_evaluations : int option;
      (** cap on query evaluations, seed included *)
}

(** No limits: {!Resilient} entry points behave exactly like the raw
    engine under this budget. *)
val unlimited : t

(** [make ()] builds a budget from whichever limits are given.
    @raise Invalid_argument when [timeout] is not finite and positive,
    or a cap is not positive. *)
val make :
  ?timeout:float -> ?max_structures:int -> ?max_evaluations:int -> unit -> t

val is_unlimited : t -> bool

(** [start budget] arms the budget: a fresh single-use token whose
    deadline is [now + timeout] on the {!Vardi_obs.Obs.now_ns} clock.
    [?probe] is threaded through to {!Vardi_certain.Cancel.create} —
    the fault-injection hook. *)
val start : ?probe:(unit -> unit) -> t -> Vardi_certain.Cancel.t

(** Prints like ["timeout=2.0s structures<=500"]; ["unlimited"] when no
    limit is set. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
