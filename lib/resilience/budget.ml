module Cancel = Vardi_certain.Cancel
module Obs = Vardi_obs.Obs

type t = {
  timeout : float option;
  max_structures : int option;
  max_evaluations : int option;
}

let unlimited = { timeout = None; max_structures = None; max_evaluations = None }

let make ?timeout ?max_structures ?max_evaluations () =
  (match timeout with
  | Some s when not (Float.is_finite s && s > 0.) ->
    invalid_arg "Budget.make: timeout must be finite and positive"
  | _ -> ());
  let positive name = function
    | Some n when n < 1 ->
      invalid_arg (Printf.sprintf "Budget.make: %s must be positive" name)
    | _ -> ()
  in
  positive "max_structures" max_structures;
  positive "max_evaluations" max_evaluations;
  { timeout; max_structures; max_evaluations }

let is_unlimited b =
  b.timeout = None && b.max_structures = None && b.max_evaluations = None

let start ?probe b =
  let deadline_ns =
    Option.map
      (fun s -> Int64.add (Obs.now_ns ()) (Int64.of_float (s *. 1e9)))
      b.timeout
  in
  Cancel.create ?deadline_ns ?max_structures:b.max_structures
    ?max_evaluations:b.max_evaluations ?probe ()

let to_string b =
  if is_unlimited b then "unlimited"
  else
    String.concat " "
      (List.filter_map Fun.id
         [
           Option.map (Printf.sprintf "timeout=%gs") b.timeout;
           Option.map (Printf.sprintf "structures<=%d") b.max_structures;
           Option.map (Printf.sprintf "evaluations<=%d") b.max_evaluations;
         ])

let pp ppf b = Format.pp_print_string ppf (to_string b)
