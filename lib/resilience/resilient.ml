module Certain = Vardi_certain.Engine
module Cancel = Vardi_certain.Cancel
module Approximation = Vardi_approx.Evaluate
module Query = Vardi_logic.Query
module Obs = Vardi_obs.Obs

type policy =
  | Fail
  | Partial
  | Approx

type 'a qualified =
  | Exact of 'a
  | Lower_bound of 'a
  | Upper_bound of 'a
  | Exhausted

type source =
  | Exact_scan
  | Partial_scan
  | Approx_fallback
  | No_answer

type stats = {
  source : source;
  tripped : Cancel.reason option;
  scan_failure : string option;
  scan : Certain.stats option;
  wall_ns : int64;
}

(* The common shape of answer/boolean: run the exact scan under the
   armed budget, then qualify. [scan] runs the engine; [fallback]
   computes the Theorem-11 approximation (the sound Lower_bound).
   Exceptions from the scan are degradation events, never crashes —
   except under Fail, whose contract is to propagate. Input validation
   runs before anything else so Invalid_argument is never swallowed. *)
let evaluate ~span ~policy ~budget ~scan ~fallback =
  Obs.span span (fun () ->
      let started = Obs.now_ns () in
      let finish source tripped scan_failure scan_stats result =
        ( result,
          {
            source;
            tripped;
            scan_failure;
            scan = scan_stats;
            wall_ns = Int64.sub (Obs.now_ns ()) started;
          } )
      in
      let approx_fallback ~tripped ~scan_failure ~scan_stats =
        Obs.count "resilience.fallback" 1;
        finish Approx_fallback tripped scan_failure scan_stats
          (Lower_bound (fallback ()))
      in
      let token = Budget.start ~probe:Faults.probe budget in
      match scan token with
      | result, (scan_stats : Certain.stats) -> (
        match scan_stats.Certain.interrupted with
        | None -> finish Exact_scan None None (Some scan_stats) (Exact result)
        | Some reason -> (
          Obs.count "resilience.budget_trip" 1;
          match policy with
          | Fail ->
            finish No_answer (Some reason) None (Some scan_stats) Exhausted
          | Partial ->
            finish Partial_scan (Some reason) None (Some scan_stats)
              (Upper_bound result)
          | Approx ->
            approx_fallback ~tripped:(Some reason) ~scan_failure:None
              ~scan_stats:(Some scan_stats)))
      | exception Sys.Break ->
        (* an async interrupt is not a degradation event *)
        raise Sys.Break
      | exception e ->
        Obs.count "resilience.scan_failure" 1;
        (match policy with
        | Fail -> raise e
        | Partial | Approx ->
          approx_fallback ~tripped:None
            ~scan_failure:(Some (Printexc.to_string e)) ~scan_stats:None))

let answer_stats ?(policy = Fail) ?algorithm ?order ?domains ?kernel
    ?(budget = Budget.unlimited) lb q =
  Vardi_cwdb.Query_check.validate lb q;
  evaluate ~span:"resilience.answer" ~policy ~budget
    ~scan:(fun cancel ->
      Certain.answer_stats ?algorithm ?order ?domains ?kernel ~cancel lb q)
    ~fallback:(fun () -> Approximation.answer lb q)

let answer ?policy ?algorithm ?order ?domains ?kernel ?budget lb q =
  fst (answer_stats ?policy ?algorithm ?order ?domains ?kernel ?budget lb q)

let boolean_stats ?(policy = Fail) ?algorithm ?order ?domains ?kernel
    ?(budget = Budget.unlimited) lb q =
  Vardi_cwdb.Query_check.validate lb q;
  if not (Query.is_boolean q) then
    invalid_arg "Resilient.boolean: the query has answer variables";
  evaluate ~span:"resilience.boolean" ~policy ~budget
    ~scan:(fun cancel ->
      Certain.certain_boolean_stats ?algorithm ?order ?domains ?kernel ~cancel
        lb q)
    ~fallback:(fun () -> Approximation.boolean lb q)

let boolean ?policy ?algorithm ?order ?domains ?kernel ?budget lb q =
  fst (boolean_stats ?policy ?algorithm ?order ?domains ?kernel ?budget lb q)

(* Prepared variants: same contract, but the per-query compilation was
   paid at [Certain.prepare] time — these are what the serve layer's
   plan cache evaluates. Validation already ran inside [prepare]; the
   approximation fallback recompiles from the stored (db, query), which
   is acceptable because it only runs on degradation paths. *)

let prepared_answer_stats ?(policy = Fail) ?algorithm ?order ?domains
    ?(budget = Budget.unlimited) p =
  evaluate ~span:"resilience.answer" ~policy ~budget
    ~scan:(fun cancel ->
      Certain.prepared_answer_stats ?algorithm ?order ?domains ~cancel p)
    ~fallback:(fun () ->
      Approximation.answer (Certain.prepared_db p) (Certain.prepared_query p))

let prepared_boolean_stats ?(policy = Fail) ?algorithm ?order ?domains
    ?(budget = Budget.unlimited) p =
  if not (Query.is_boolean (Certain.prepared_query p)) then
    invalid_arg "Resilient.prepared_boolean: the query has answer variables";
  evaluate ~span:"resilience.boolean" ~policy ~budget
    ~scan:(fun cancel ->
      Certain.prepared_certain_boolean_stats ?algorithm ?order ?domains ~cancel
        p)
    ~fallback:(fun () ->
      Approximation.boolean (Certain.prepared_db p) (Certain.prepared_query p))

let pp_qualified pp_value ppf = function
  | Exact v -> Format.fprintf ppf "exact %a" pp_value v
  | Lower_bound v -> Format.fprintf ppf "lower bound %a" pp_value v
  | Upper_bound v -> Format.fprintf ppf "upper bound %a" pp_value v
  | Exhausted -> Format.pp_print_string ppf "exhausted"

let source_to_string = function
  | Exact_scan -> "exact scan"
  | Partial_scan -> "partial scan"
  | Approx_fallback -> "Theorem-11 approximation"
  | No_answer -> "no answer"

let pp_stats ppf s =
  Format.fprintf ppf "source: %s" (source_to_string s.source);
  (match s.tripped with
  | Some r -> Format.fprintf ppf "  budget tripped: %a" Cancel.pp_reason r
  | None -> ());
  (match s.scan_failure with
  | Some msg -> Format.fprintf ppf "  scan failure: %s" msg
  | None -> ());
  (match s.scan with
  | Some scan ->
    Format.fprintf ppf "  structures visited: %d" scan.Certain.structures
  | None -> ());
  Format.fprintf ppf "  wall: %.1f ms" (Int64.to_float s.wall_ns /. 1e6)
