(** Seeded fault injection for resilience testing.

    The module keeps one process-wide fault {e plan} (seed + firing
    rate), armed and disarmed explicitly. Code under test exposes named
    fault {e points}; when the plan is armed, each point visit draws a
    deterministic pseudo-random decision from
    [(seed, visit counter, point name)] and either returns or raises
    {!Injected}. When no plan is armed a point costs one atomic load —
    cheap enough to leave in production paths permanently, which is the
    point: the fuzzer exercises the exact same code real traffic runs.

    The injectable faults, mirroring the failure modes the resilience
    invariants cover:

    - {b killing a worker chunk}: {!probe} is wired (by
      {!Resilient}) into the cancellation token's per-structure check,
      so a firing raises inside whichever OCaml 5 worker domain was
      scanning — the engine's failure machinery re-raises it at the
      entry point, where {!Resilient} degrades instead of crashing;
    - {b a raising observability sink}: {!raising_sink} is an
      {!Vardi_obs.Obs} sink whose [emit] raises after a set number of
      events — the hardened Obs layer must catch, count and disable it;
    - {b a failing corpus/file read}: [Vardi_fuzz.Corpus.load] visits
      the ["corpus.read"] point before touching the file.

    Firing decisions are deterministic in the visit counter, but under
    parallel scans the counter order depends on scheduling; the fuzz
    oracles therefore assert invariants (no leaked exception, sound
    bounds, honest stats) rather than exact outcomes. *)

(** Raised by a firing fault point; the payload is the point name. *)
exception Injected of string

(** [arm ~seed ?rate ()] installs a plan and resets the visit counter.
    [rate] is the per-visit firing probability, clamped to [0. .. 1.]
    (default [0.05]); [rate:1.] makes every point fire — handy for
    directed tests. *)
val arm : seed:int -> ?rate:float -> unit -> unit

(** [disarm ()] removes the plan; points become no-ops again. *)
val disarm : unit -> unit

val armed : unit -> bool

(** [with_faults ~seed ?rate f] runs [f] under an armed plan, then
    restores whatever plan (or none) was armed before — also on
    exception. *)
val with_faults : seed:int -> ?rate:float -> (unit -> 'a) -> 'a

(** [point name] visits the named fault point.
    @raise Injected when the armed plan fires. *)
val point : string -> unit

(** The fault point {!Resilient} wires into cancellation tokens; fires
    as ["scan.worker"], from inside a worker domain. *)
val probe : unit -> unit

(** [short_write ~total name] is the durable file layer's torn-write
    injection: when the armed plan fires, [Some k] with
    [0 <= k < total] — the caller should persist only the first [k]
    bytes of its [total]-byte write and then crash (raise {!Injected}).
    [None] when disarmed or the visit does not fire. The durable layer
    visits it as ["wal.append.short"] and ["snapshot.write.short"];
    the plain crash points are ["wal.append"], ["wal.fsync"],
    ["snapshot.write"] and ["recovery.read"] via {!point}. *)
val short_write : total:int -> string -> int option

(** [flip_bit ~bits name] draws a bit offset in [0 .. bits - 1] to
    corrupt when the armed plan fires — the bit-rot half of the durable
    file-layer injection (directed recovery tests flip a drawn bit and
    assert the CRC catches it). *)
val flip_bit : bits:int -> string -> int option

(** [raising_sink ?after ()] is a sink whose [emit] raises
    [Injected "obs.sink"] on every event after the first [after]
    (default [0] — every event) and whose [flush] raises likewise.
    Independent of the armed plan: it always misbehaves, because its
    job is to prove the Obs hardening catches it. *)
val raising_sink : ?after:int -> unit -> Vardi_obs.Obs.sink
