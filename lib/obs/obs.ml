(* Structured tracing and metrics. Zero dependencies beyond the
   standard library and Unix; safe under OCaml 5 domains.

   Design constraints, in order:
   1. The disabled path must be as close to free as possible — one
      atomic load per span/count call — because every engine hot loop
      is instrumented unconditionally.
   2. Events must carry the worker domain that produced them, so the
      parallel certain-answer engine's cost is attributable per domain.
   3. Sinks are pluggable values, not functors: the CLI composes them
      at run time (console + file, buffer + console, ...). *)

(* --- clock ---------------------------------------------------------- *)

(* The stdlib exposes no monotonic clock, so we clamp gettimeofday to
   be non-decreasing process-wide: a backward step (NTP, VM migration)
   yields a zero-length interval instead of a negative one. *)
let last_ns = Atomic.make 0L

let now_ns () =
  let t = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let rec clamp () =
    let prev = Atomic.get last_ns in
    if Int64.compare t prev <= 0 then prev
    else if Atomic.compare_and_set last_ns prev t then t
    else clamp ()
  in
  clamp ()

(* --- events --------------------------------------------------------- *)

type event =
  | Span_open of {
      id : int;
      parent : int option;
      name : string;
      domain : int;
      at_ns : int64;
    }
  | Span_close of {
      id : int;
      name : string;
      domain : int;
      at_ns : int64;
      elapsed_ns : int64;
    }
  | Count of { name : string; span : int option; domain : int; value : int }

type sink = { emit : event -> unit; flush : unit -> unit }

let null_sink = { emit = ignore; flush = ignore }

let tee sinks =
  {
    emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
  }

(* --- the ambient sink ----------------------------------------------- *)

let current : sink option Atomic.t = Atomic.make None
let enabled () = Atomic.get current <> None

(* Sink hardening: an exception escaping a user-installed sink must
   never crash or deadlock an engine — emission happens inside worker
   domains and inside Fun.protect finalizers. The first escape counts
   the error and disables the offending sink (the CAS only removes the
   sink that failed, never one installed concurrently since); later
   instrumentation points see no sink and fall back to the null path. *)
let sink_error_total = Atomic.make 0
let sink_errors () = Atomic.get sink_error_total

let disable_failed cur =
  Atomic.incr sink_error_total;
  ignore (Atomic.compare_and_set current cur None)

let install s = Atomic.set current (Some s)

let uninstall () =
  match Atomic.exchange current None with
  | None -> ()
  | Some s -> ( try s.flush () with _ -> Atomic.incr sink_error_total)

let flush () =
  match Atomic.get current with
  | None -> ()
  | Some s -> ( try s.flush () with _ -> disable_failed (Some s))

let with_sink s f =
  install s;
  Fun.protect ~finally:uninstall f

(* --- spans and counters --------------------------------------------- *)

let next_id = Atomic.make 1

(* Per-domain stack of open span ids: nesting is tracked where the work
   runs, so a worker domain's chunk spans are children of whatever that
   domain opened, never of another domain's spans. Root spans opened on
   the main domain and worker spans opened inside [Domain.spawn] both
   get the right parent without any cross-domain coordination. *)
let stack_key : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let domain_id () = (Domain.self () :> int)

let current_span () =
  match !(Domain.DLS.get stack_key) with [] -> None | id :: _ -> Some id

let current_span_id = current_span

let emit ev =
  match Atomic.get current with
  | None -> ()
  | Some s as cur -> (
    (* Sys.Break is the user's interrupt arriving during the emit, not
       a sink bug: let it propagate instead of disabling the sink. *)
    try s.emit ev with
    | Sys.Break -> raise Sys.Break
    | _ -> disable_failed cur)

let span ?parent name f =
  if not (enabled ()) then f ()
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let stack = Domain.DLS.get stack_key in
    (* The innermost span open on this domain wins; [?parent] only
       adopts spans opened on a domain with an empty stack — the worker
       domains of a parallel scan, whose chunks should nest under the
       scan's span on the spawning domain. *)
    let parent =
      match current_span () with Some p -> Some p | None -> parent
    in
    let t0 = now_ns () in
    emit (Span_open { id; parent; name; domain = domain_id (); at_ns = t0 });
    stack := id :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with top :: rest when top = id -> stack := rest | _ -> ());
        let t1 = now_ns () in
        emit
          (Span_close
             {
               id;
               name;
               domain = domain_id ();
               at_ns = t1;
               elapsed_ns = Int64.sub t1 t0;
             }))
      f
  end

let count name value =
  if enabled () then
    emit (Count { name; span = current_span (); domain = domain_id (); value })

(* --- in-memory ring buffer ------------------------------------------ *)

type buffer = {
  lock : Mutex.t;
  ring : event option array;
  mutable next : int; (* write position *)
  mutable stored : int; (* min (writes, capacity) *)
  mutable dropped : int; (* writes - stored *)
}

let buffer ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Obs.buffer: capacity must be positive";
  {
    lock = Mutex.create ();
    ring = Array.make capacity None;
    next = 0;
    stored = 0;
    dropped = 0;
  }

let locked b f =
  Mutex.lock b.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock b.lock) f

let buffer_sink b =
  let emit ev =
    locked b (fun () ->
        let cap = Array.length b.ring in
        b.ring.(b.next) <- Some ev;
        b.next <- (b.next + 1) mod cap;
        if b.stored < cap then b.stored <- b.stored + 1
        else b.dropped <- b.dropped + 1)
  in
  { emit; flush = ignore }

let events b =
  locked b (fun () ->
      let cap = Array.length b.ring in
      let start = (b.next - b.stored + cap) mod cap in
      List.init b.stored (fun i ->
          match b.ring.((start + i) mod cap) with
          | Some ev -> ev
          | None -> assert false))

let dropped b = locked b (fun () -> b.dropped)

let reset b =
  locked b (fun () ->
      Array.fill b.ring 0 (Array.length b.ring) None;
      b.next <- 0;
      b.stored <- 0;
      b.dropped <- 0)

(* --- aggregation ----------------------------------------------------- *)

module String_map = Map.Make (String)
module Int_map = Map.Make (Int)

let counter_totals evs =
  List.fold_left
    (fun m ev ->
      match ev with
      | Count { name; value; _ } ->
        String_map.update name
          (fun v -> Some (Option.value v ~default:0 + value))
          m
      | Span_open _ | Span_close _ -> m)
    String_map.empty evs
  |> String_map.bindings

let counters_by_domain evs =
  List.fold_left
    (fun m ev ->
      match ev with
      | Count { name; domain; value; _ } ->
        String_map.update name
          (fun per ->
            let per = Option.value per ~default:Int_map.empty in
            Some
              (Int_map.update domain
                 (fun v -> Some (Option.value v ~default:0 + value))
                 per))
          m
      | Span_open _ | Span_close _ -> m)
    String_map.empty evs
  |> String_map.bindings
  |> List.map (fun (name, per) -> (name, Int_map.bindings per))

(* --- span forest reconstruction -------------------------------------- *)

type tree = {
  tree_name : string;
  tree_domain : int;
  tree_elapsed_ns : int64;
  tree_counts : (string * int) list;
  tree_children : tree list;
}

type node = {
  n_name : string;
  n_domain : int;
  n_open : int64;
  n_parent : int option;
  mutable n_elapsed : int64 option; (* None while still open *)
  mutable n_counts : (string * int) list; (* reversed *)
  mutable n_children : int list; (* reversed *)
}

let spans evs =
  let nodes : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let roots = ref [] in
  (* Spans still open when the snapshot was taken are closed at the
     latest timestamp seen, so partial traces still render. *)
  let horizon = ref 0L in
  List.iter
    (fun ev ->
      match ev with
      | Span_open { id; parent; name; domain; at_ns } ->
        if Int64.compare at_ns !horizon > 0 then horizon := at_ns;
        let n =
          {
            n_name = name;
            n_domain = domain;
            n_open = at_ns;
            n_parent = parent;
            n_elapsed = None;
            n_counts = [];
            n_children = [];
          }
        in
        Hashtbl.replace nodes id n;
        (match parent with
        | Some p when Hashtbl.mem nodes p ->
          let pn = Hashtbl.find nodes p in
          pn.n_children <- id :: pn.n_children
        | Some _ | None -> roots := id :: !roots)
      | Span_close { id; at_ns; elapsed_ns; _ } -> (
        if Int64.compare at_ns !horizon > 0 then horizon := at_ns;
        match Hashtbl.find_opt nodes id with
        | Some n -> n.n_elapsed <- Some elapsed_ns
        | None -> () (* open event fell off the ring buffer *))
      | Count { name; span; value; _ } -> (
        match span with
        | Some id when Hashtbl.mem nodes id ->
          let n = Hashtbl.find nodes id in
          n.n_counts <- (name, value) :: n.n_counts
        | Some _ | None -> ()))
    evs;
  let merge_counts counts =
    List.fold_left
      (fun m (name, v) ->
        String_map.update name
          (fun cur -> Some (Option.value cur ~default:0 + v))
          m)
      String_map.empty counts
    |> String_map.bindings
  in
  let rec build id =
    let n = Hashtbl.find nodes id in
    {
      tree_name = n.n_name;
      tree_domain = n.n_domain;
      tree_elapsed_ns =
        (match n.n_elapsed with
        | Some e -> e
        | None -> Int64.max 0L (Int64.sub !horizon n.n_open));
      tree_counts = merge_counts (List.rev n.n_counts);
      tree_children = List.rev_map build n.n_children;
    }
  in
  List.rev_map build !roots

(* --- pretty printing -------------------------------------------------- *)

let pp_duration ppf ns =
  let ns = Int64.to_float ns in
  if ns >= 1e9 then Format.fprintf ppf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Format.fprintf ppf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Format.fprintf ppf "%.1f us" (ns /. 1e3)
  else Format.fprintf ppf "%.0f ns" ns

let pp_counts ppf = function
  | [] -> ()
  | counts ->
    Format.fprintf ppf "  {%s}"
      (String.concat ", "
         (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) counts))

(* Sibling leaves sharing a name (the per-chunk spans of the parallel
   scan) collapse into one "name xN" line with summed time and
   counters; anything with children prints individually. *)
let rec pp_forest ppf ~indent trees =
  let rec emit_siblings = function
    | [] -> ()
    | t :: rest when t.tree_children = [] ->
      let same, others =
        List.partition
          (fun u -> u.tree_children = [] && String.equal u.tree_name t.tree_name)
          rest
      in
      let group = t :: same in
      let total =
        List.fold_left
          (fun acc u -> Int64.add acc u.tree_elapsed_ns)
          0L group
      in
      let counts =
        List.concat_map (fun u -> u.tree_counts) group
        |> List.fold_left
             (fun m (name, v) ->
               String_map.update name
                 (fun cur -> Some (Option.value cur ~default:0 + v))
                 m)
             String_map.empty
        |> String_map.bindings
      in
      let label =
        if List.length group > 1 then
          Printf.sprintf "%s x%d" t.tree_name (List.length group)
        else t.tree_name
      in
      Format.fprintf ppf "%s%-*s %a%a@." indent
        (max 1 (36 - String.length indent))
        label pp_duration total pp_counts counts;
      emit_siblings others
    | t :: rest ->
      Format.fprintf ppf "%s%-*s %a [d%d]%a@." indent
        (max 1 (36 - String.length indent))
        t.tree_name pp_duration t.tree_elapsed_ns t.tree_domain pp_counts
        t.tree_counts;
      pp_forest ppf ~indent:(indent ^ "  ") t.tree_children;
      emit_siblings rest
  in
  emit_siblings trees

let pp_spans ppf evs =
  match spans evs with
  | [] -> Format.fprintf ppf "(no spans recorded)@."
  | forest -> pp_forest ppf ~indent:"" forest

let pp_counters ppf evs =
  match counters_by_domain evs with
  | [] -> Format.fprintf ppf "(no counters recorded)@."
  | counters ->
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, per_domain) ->
        let total = List.fold_left (fun acc (_, v) -> acc + v) 0 per_domain in
        let breakdown =
          match per_domain with
          | [ _ ] -> "" (* a single domain adds no information *)
          | _ ->
            Printf.sprintf "  [%s]"
              (String.concat ", "
                 (List.map
                    (fun (d, v) -> Printf.sprintf "d%d=%d" d v)
                    per_domain))
        in
        Format.fprintf ppf "  %-36s %d%s@." name total breakdown)
      counters

let console_sink ?(counters = true) ppf =
  let b = buffer () in
  let s = buffer_sink b in
  let flush () =
    let evs = events b in
    if evs <> [] then begin
      pp_spans ppf evs;
      if counters then pp_counters ppf evs;
      let d = dropped b in
      if d > 0 then
        Format.fprintf ppf "(ring buffer overflowed: %d events dropped)@." d
    end;
    Format.pp_print_flush ppf ();
    reset b
  in
  { emit = s.emit; flush }

(* --- JSON lines ------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_to_json ev =
  let opt_int = function None -> "null" | Some i -> string_of_int i in
  match ev with
  | Span_open { id; parent; name; domain; at_ns } ->
    Printf.sprintf
      {|{"type":"span_open","id":%d,"parent":%s,"name":"%s","domain":%d,"at_ns":%Ld}|}
      id (opt_int parent) (json_escape name) domain at_ns
  | Span_close { id; name; domain; at_ns; elapsed_ns } ->
    Printf.sprintf
      {|{"type":"span_close","id":%d,"name":"%s","domain":%d,"at_ns":%Ld,"elapsed_ns":%Ld}|}
      id (json_escape name) domain at_ns elapsed_ns
  | Count { name; span; domain; value } ->
    Printf.sprintf
      {|{"type":"count","name":"%s","span":%s,"domain":%d,"value":%d}|}
      (json_escape name) (opt_int span) domain value

let jsonl_sink oc =
  let lock = Mutex.create () in
  let emit ev =
    let line = event_to_json ev in
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        output_string oc line;
        output_char oc '\n')
  in
  let flush () =
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () -> Stdlib.flush oc)
  in
  { emit; flush }
