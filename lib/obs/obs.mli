(** Structured tracing and metrics for the query engines.

    A zero-dependency observability substrate: monotonic-clock {e spans}
    with parent/child nesting, named {e counters} with per-domain
    accounting, and pluggable {e sinks} that receive the resulting event
    stream. The exact engine ([Vardi_certain.Engine]), the approximation
    pipeline ([Vardi_approx]), the hardness reductions
    ([Vardi_reductions]) and the experiment registry
    ([Vardi_experiments.Registry]) are instrumented with it; [ldb query
    --trace] and [bench/main.ml] render the output.

    {2 Cost model}

    By default no sink is installed and every instrumentation point
    costs a single atomic load — the {e null-sink} fast path, cheap
    enough to leave in the engines' hot loops unconditionally (verified
    by the E1-medium micro-benchmark). Installing a sink turns the same
    calls into event emissions; sinks serialize internally, so emission
    is safe from any number of worker domains.

    {2 Concurrency}

    Span nesting is tracked per domain (via [Domain.DLS]): a span opened
    inside a worker domain is a child of the most recent span opened
    {e by that domain}, never of another domain's spans. Every event
    records the integer id of the domain that produced it, which is what
    makes per-worker cost attribution possible.

    {2 Typical use}

    {[
      let buf = Obs.buffer () in
      Obs.with_sink (Obs.buffer_sink buf) (fun () ->
          ignore (Certain.answer ~domains:4 db q));
      Obs.pp_spans Fmt.stdout (Obs.events buf);
      Obs.pp_counters Fmt.stdout (Obs.events buf)
    ]} *)

(** {1 Clock} *)

(** [now_ns ()] is the current time in nanoseconds, clamped to be
    non-decreasing across the whole process (the standard library has no
    raw monotonic clock, so a backward wall-clock step yields a
    zero-length interval rather than a negative one). *)
val now_ns : unit -> int64

(** {1 Events} *)

(** The event stream delivered to sinks. Span ids are unique across the
    process lifetime; [domain] is the integer id of the emitting domain
    ([(Domain.self () :> int)]). *)
type event =
  | Span_open of {
      id : int;
      parent : int option;  (** enclosing span on the same domain *)
      name : string;
      domain : int;
      at_ns : int64;
    }
  | Span_close of {
      id : int;
      name : string;
      domain : int;
      at_ns : int64;
      elapsed_ns : int64;  (** close minus open, never negative *)
    }
  | Count of {
      name : string;
      span : int option;  (** innermost open span on the emitting domain *)
      domain : int;
      value : int;
    }

(** A sink consumes events. [emit] must be thread-safe — the engines
    call it concurrently from worker domains; [flush] is called by
    {!uninstall} and should make buffered output durable (write the
    console report, flush the channel, ...).

    Sinks are {e hardened}: an exception escaping [emit] never reaches
    the instrumented engine. The first escape disables the offending
    sink (subsequent instrumentation points take the null path) and is
    counted in {!sink_errors}; an exception from [flush] is likewise
    swallowed and counted. A sink composed with {!tee} is disabled as a
    whole — the tee cannot know which branch is healthy. *)
type sink = { emit : event -> unit; flush : unit -> unit }

(** The sink that discards everything. Installing it is equivalent to —
    but slightly more expensive than — installing no sink at all; prefer
    {!uninstall}. *)
val null_sink : sink

(** [tee sinks] forwards every event (and flush) to each sink in
    [sinks], in order. *)
val tee : sink list -> sink

(** {1 Installation}

    One ambient sink serves the whole process; the engines write to
    whatever is installed at call time. *)

(** [enabled ()] is [true] when a sink is installed. Instrumented code
    may use it to skip building expensive event payloads; {!span} and
    {!count} already check it internally. *)
val enabled : unit -> bool

(** [install s] makes [s] the ambient sink, replacing (without
    flushing) any previous one. *)
val install : sink -> unit

(** [uninstall ()] removes the ambient sink, if any, and flushes it. *)
val uninstall : unit -> unit

(** [flush ()] flushes the ambient sink, if any, without removing it.
    Long-lived processes (the serve daemon) call this at request or
    connection boundaries so a crash never strands buffered trace
    lines. A sink whose [flush] raises is disabled, as with [emit]. *)
val flush : unit -> unit

(** [sink_errors ()] is the process-lifetime count of exceptions caught
    escaping a sink's [emit] or [flush] (the [obs.sink_errors] counter;
    each error also disabled the sink that raised). Regression suites
    read the delta around a run; a healthy run leaves it unchanged. *)
val sink_errors : unit -> int

(** [with_sink s f] runs [f] with [s] installed, then uninstalls and
    flushes it — also on exception. *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** {1 Instrumentation points} *)

(** [span ?parent name f] runs [f] inside a named span: a [Span_open]
    event, [f ()], then a matching [Span_close] carrying the elapsed
    time. The span nests under the innermost span already open on the
    calling domain; when that domain has no open span, [?parent] (a
    span id from {!current_span_id}, typically captured before
    [Domain.spawn]) is adopted instead, so worker-domain spans can nest
    under the scan that spawned them. When no sink is installed this is
    exactly [f ()] after one atomic load. Exceptions from [f] still
    close the span and propagate. *)
val span : ?parent:int -> string -> (unit -> 'a) -> 'a

(** [current_span_id ()] is the id of the innermost span open on the
    calling domain, if any — capture it before spawning workers and
    pass it as [?parent] to their spans. *)
val current_span_id : unit -> int option

(** [count name value] emits a [Count] event attributing [value] to
    counter [name] on the calling domain, tagged with the innermost open
    span. No-op (one atomic load) when no sink is installed. Counters
    are cumulative: aggregation sums all events of the same name. *)
val count : string -> int -> unit

(** {1 In-memory ring buffer} *)

(** A bounded, mutex-protected event store. When full, the oldest
    events are overwritten and counted as dropped. *)
type buffer

(** [buffer ?capacity ()] creates an empty ring buffer. Default
    capacity: 65536 events.
    @raise Invalid_argument when [capacity < 1]. *)
val buffer : ?capacity:int -> unit -> buffer

(** [buffer_sink b] is a sink that appends every event to [b]. *)
val buffer_sink : buffer -> sink

(** [events b] is a snapshot of the stored events, oldest first. *)
val events : buffer -> event list

(** [dropped b] is the number of events lost to ring overflow. *)
val dropped : buffer -> int

(** [reset b] empties the buffer and zeroes the drop count. *)
val reset : buffer -> unit

(** {1 Aggregation} *)

(** [counter_totals evs] sums the [Count] events of [evs] per counter
    name, sorted by name. *)
val counter_totals : event list -> (string * int) list

(** [counters_by_domain evs] refines {!counter_totals} by emitting
    domain: for each counter name (sorted), the per-domain subtotals as
    [(domain, total)] pairs sorted by domain id. The regression suite
    checks that the engine's [stats] totals equal the sum of these
    subtotals. *)
val counters_by_domain : event list -> (string * (int * int) list) list

(** A reconstructed span with its children (in open order), the
    counters attributed to it (summed per name), and its duration.
    Spans still open when the snapshot was taken are closed at the
    latest timestamp seen. *)
type tree = {
  tree_name : string;
  tree_domain : int;
  tree_elapsed_ns : int64;
  tree_counts : (string * int) list;
  tree_children : tree list;
}

(** [spans evs] rebuilds the span forest from an event list (roots in
    open order). Orphaned events — e.g. a close whose open fell off the
    ring buffer — are dropped. *)
val spans : event list -> tree list

(** {1 Rendering sinks and printers} *)

(** [pp_spans ppf evs] prints the span forest as an indented tree with
    durations and per-span counters. Runs of childless sibling spans
    with the same name (the parallel scan's chunk spans) collapse into
    one [name xN] line with summed time and counters. *)
val pp_spans : Format.formatter -> event list -> unit

(** [pp_counters ppf evs] prints each counter's total and, when more
    than one domain contributed, the per-domain breakdown. *)
val pp_counters : Format.formatter -> event list -> unit

(** [console_sink ?counters ppf] buffers events and, on flush, prints
    the {!pp_spans} tree — followed by the {!pp_counters} table unless
    [counters] is [false] (default [true]) — to [ppf]. *)
val console_sink : ?counters:bool -> Format.formatter -> sink

(** [event_to_json ev] is [ev] as a single-line JSON object with fields
    [type] ([span_open] | [span_close] | [count]) plus the event's
    payload fields; absent options encode as [null]. *)
val event_to_json : event -> string

(** [jsonl_sink oc] writes each event immediately to [oc] as one JSON
    line (see {!event_to_json}); [flush] flushes the channel. The caller
    keeps ownership of [oc] and closes it after {!uninstall}. *)
val jsonl_sink : out_channel -> sink
