(* The benchmark harness.

   Part 1 re-runs every experiment (E1-E12 and the A1-A4 ablations —
   the full Experiments.Registry.all) and prints its result table — one
   table per theorem of the paper's evaluation; EXPERIMENTS.md records
   a reference run.

   Part 2 runs Bechamel micro-benchmarks, one Test.make per experiment,
   timing the representative operation behind each table with OLS
   regression over the monotonic clock.

   Part 3 prints a per-phase breakdown of the E1-medium workload
   through the Vardi_obs span layer, next to the Bechamel numbers.

   Run with: dune exec bench/main.exe
   (pass --tables-only or --micro-only to restrict;
    --json FILE additionally writes the micro-benchmark estimates as
    JSON — BENCH_<pr>.json files are reference snapshots of it;
    --e1-sanity [--kernel interned|strings|compiled] is the CI smoke
    gate: one verified E1-medium run on the selected kernel) *)

open Bechamel
open Toolkit
module Experiments = Vardi_experiments
module Workloads = Vardi_experiments.Workloads

let print_tables () =
  Fmt.pr "============================================================@.";
  Fmt.pr " Experiment report: Vardi, Querying Logical Databases (1985)@.";
  Fmt.pr "============================================================@.";
  List.iter
    (fun (_, _, run) -> Fmt.pr "%a@." Experiments.Table.pp (run ()))
    Experiments.Registry.all

(* --- Bechamel micro-benchmarks, one per experiment --- *)

let stage = Staged.stage

let micro_tests () =
  let module Certain = Vardi_certain.Engine in
  let module Approx = Vardi_approx.Evaluate in
  let module Precise = Vardi_approx.Precise_simulation in
  let module Alpha = Vardi_approx.Alpha in
  let module Ne_virtual = Vardi_cwdb.Ne_virtual in
  let module Graph = Vardi_reductions.Graph in
  let module Qbf = Vardi_reductions.Qbf in
  let module Three_col = Vardi_reductions.Three_col in
  let module Qbf_fo = Vardi_reductions.Qbf_fo in
  let module Qbf_so = Vardi_reductions.Qbf_so in
  let db_small = Workloads.parametric_db ~constants:5 ~unknowns:3 ~seed:42 in
  let db_medium = Workloads.parametric_db ~constants:16 ~unknowns:2 ~seed:7 in
  let db_tiny = Workloads.parametric_db ~constants:2 ~unknowns:2 ~seed:11 in
  let graph = Graph.random ~vertices:5 ~edge_probability:0.5 ~seed:1 in
  let qbf_fo = Qbf.random_cnf3 ~blocks:[ 2; 2 ] ~clauses:3 ~seed:5 in
  let qbf_so = Qbf.random_cnf3 ~blocks:[ 1; 1 ] ~clauses:2 ~seed:3 in
  let q = Workloads.mixed_query in
  [
    Test.make ~name:"e1/exact-vs-unknowns"
      (stage (fun () -> Certain.answer db_small q));
    Test.make ~name:"e1/exact-medium"
      (stage (fun () -> Certain.answer db_medium q));
    (* The same scan on the string-keyed reference kernel: the gap to
       e1/exact-medium is the interned kernel's speedup (E15). *)
    Test.make ~name:"e1/exact-medium-strings"
      (stage (fun () -> Certain.answer ~kernel:Certain.Strings db_medium q));
    (* The same scan with the per-structure evaluators compiled to flat
       code: the gap to e1/exact-medium is the compiled kernel's
       speedup over the interned interpreter (E18). *)
    Test.make ~name:"e1/exact-medium-compiled"
      (stage (fun () -> Certain.answer ~kernel:Certain.Compiled db_medium q));
    Test.make ~name:"e1/exact-medium-par4"
      (stage (fun () -> Certain.answer ~domains:4 db_medium q));
    Test.make ~name:"e2/precise-simulation"
      (stage (fun () -> Precise.answer db_tiny Workloads.positive_query));
    Test.make ~name:"e3/three-colorability"
      (stage (fun () -> Three_col.colorable_via_certain graph));
    Test.make ~name:"e4/qbf-fo"
      (stage (fun () -> Qbf_fo.eval_via_certain qbf_fo));
    Test.make ~name:"e5/qbf-so"
      (stage (fun () -> Qbf_so.eval_via_certain qbf_so));
    Test.make ~name:"e6/approx-quality"
      (stage (fun () -> Approx.answer db_small q));
    Test.make ~name:"e7/approx-scaling"
      (stage (fun () -> Approx.answer db_medium q));
    Test.make ~name:"e8/alpha-size"
      (stage (fun () -> Alpha.formula ~pred:"P" ~arity:8));
    Test.make ~name:"e9/virtual-ne"
      (stage (fun () -> Ne_virtual.make db_medium));
    Test.make ~name:"e10/expression-ratio"
      (stage (fun () ->
           Certain.certain_boolean db_small Workloads.negative_sentence));
    Test.make ~name:"e11/naive-tables"
      (stage (fun () -> Vardi_approx.Naive_tables.answer db_medium q));
    Test.make ~name:"e12/sampling"
      (stage (fun () ->
           Vardi_certain.Sampling.boolean ~samples:8 ~seed:1 db_small
             Workloads.negative_sentence));
    Test.make ~name:"abl/naive-exact"
      (stage (fun () ->
           Certain.certain_boolean ~algorithm:Certain.Naive_mappings db_tiny
             Workloads.negative_sentence));
    Test.make ~name:"abl/algebra-backend"
      (stage (fun () -> Approx.answer ~backend:Approx.Algebra db_medium q));
    Test.make ~name:"abl/optimized-backend"
      (stage (fun () ->
           Approx.answer ~backend:Approx.Algebra_optimized db_medium q));
    Test.make ~name:"abl/syntactic-alpha"
      (stage (fun () ->
           Approx.answer ~mode:Vardi_approx.Translate.Syntactic db_medium q));
    Test.make ~name:"abl/merge-first"
      (stage (fun () ->
           Certain.certain_boolean ~order:Certain.Merge_first db_small
             Workloads.negative_sentence));
    Test.make ~name:"extra/reiter"
      (stage (fun () -> Vardi_approx.Reiter.answer db_small q));
    Test.make ~name:"extra/explain"
      (stage (fun () ->
           Vardi_certain.Explain.boolean db_small Workloads.negative_sentence));
    (* Observability overhead on the E1-medium hot path. The first
       entry repeats e1/exact-medium under a different name: the engine
       is instrumented unconditionally, so the delta between the two
       identically-coded entries is the measurement noise floor, and
       the disabled-sink cost must sit inside it (acceptance: < 3%).
       The second entry installs an in-memory sink, showing what full
       event collection costs. *)
    Test.make ~name:"obs/e1-medium-nullsink"
      (stage (fun () -> Certain.answer db_medium q));
    Test.make ~name:"obs/e1-medium-memsink"
      (stage (fun () ->
           let buf = Logicaldb.Obs.buffer () in
           Logicaldb.Obs.with_sink (Logicaldb.Obs.buffer_sink buf) (fun () ->
               Certain.answer db_medium q)));
    (* Cancellation overhead on the same hot path. The first entry
       threads a token whose generous limits never trip (but whose
       deadline check runs per chunk and whose caps truncate the
       stream positionally); the second goes through the full
       Resilient layer with an equally generous budget. Both must sit
       within the noise floor of e1/exact-medium (acceptance: < 3%,
       recorded in EXPERIMENTS.md E13). *)
    Test.make ~name:"resil/e1-medium-cancel"
      (stage (fun () ->
           let cancel =
             Logicaldb.Cancel.create
               ~deadline_ns:
                 (Int64.add (Logicaldb.Obs.now_ns ()) 3_600_000_000_000L)
               ~max_structures:max_int ~max_evaluations:max_int ()
           in
           Certain.answer ~cancel db_medium q));
    Test.make ~name:"resil/e1-medium-resilient"
      (stage (fun () ->
           Logicaldb.Resilient.answer
             ~budget:
               (Logicaldb.Budget.make ~timeout:3600. ~max_structures:max_int
                  ())
             db_medium q));
  ]

let quota_seconds = 0.3

let run_micro_tests ?(quota = quota_seconds) tests =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.concat_map
    (fun test ->
      List.map
        (fun elt ->
          let raw = Benchmark.run cfg [ Instance.monotonic_clock ] elt in
          let result = Analyze.one ols Instance.monotonic_clock raw in
          let estimate =
            match Analyze.OLS.estimates result with
            | Some (e :: _) -> e
            | Some [] | None -> Float.nan
          in
          let r2 = Analyze.OLS.r_square result in
          let r2_text =
            match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-"
          in
          let human ns =
            if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
            else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
            else Printf.sprintf "%8.0f ns" ns
          in
          Fmt.pr "  %-24s %s   (r2 = %s)@." (Test.Elt.name elt)
            (human estimate) r2_text;
          (Test.Elt.name elt, estimate, r2))
        (Test.elements test))
    tests

let run_micro () =
  Fmt.pr "@.=== Bechamel micro-benchmarks (OLS on the monotonic clock) ===@.";
  run_micro_tests (micro_tests ())

(* --- machine-readable results (--json FILE) ---

   Schema "vardi-bench/1", documented in EXPERIMENTS.md: one object per
   micro-benchmark with the OLS nanoseconds-per-run estimate and its
   r². Written by hand — the repo deliberately has no JSON
   dependency. *)

let json_escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let write_json ?(quota = quota_seconds) path results =
  let out = open_out path in
  let benchmarks =
    List.map
      (fun (name, ns, r2) ->
        Printf.sprintf
          "    { \"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s }"
          (json_escape name) (json_float ns)
          (match r2 with Some r -> json_float r | None -> "null"))
      results
  in
  Printf.fprintf out
    "{\n\
    \  \"schema\": \"vardi-bench/1\",\n\
    \  \"quota_s\": %s,\n\
    \  \"benchmarks\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (json_float quota)
    (String.concat ",\n" benchmarks);
  close_out out;
  Fmt.pr "@.wrote %s (%d benchmarks)@." path (List.length results)

(* --- CI sanity gate (--e1-sanity --kernel interned|strings|compiled) ---

   One timed run of the E1-medium workload on the selected kernel,
   verified against a reference kernel's answer (strings for interned,
   interned for the other two). Exits non-zero on disagreement, so the
   CI kernel-smoke job fails loudly if the kernels ever diverge. *)

let e1_sanity kernel_name =
  let module Certain = Vardi_certain.Engine in
  let kernel, other, other_name =
    match kernel_name with
    | "interned" -> (Certain.Interned, Certain.Strings, "strings")
    | "strings" -> (Certain.Strings, Certain.Interned, "interned")
    | "compiled" -> (Certain.Compiled, Certain.Interned, "interned")
    | v ->
      Fmt.epr "unknown --kernel %S (expected interned, strings or compiled)@."
        v;
      exit 2
  in
  let db = Workloads.parametric_db ~constants:16 ~unknowns:2 ~seed:7 in
  let q = Workloads.mixed_query in
  ignore (Certain.answer ~kernel db q) (* warm-up *);
  let t0 = Logicaldb.Obs.now_ns () in
  let answer = Certain.answer ~kernel db q in
  let elapsed_ms =
    Int64.to_float (Int64.sub (Logicaldb.Obs.now_ns ()) t0) /. 1e6
  in
  let reference = Certain.answer ~kernel:other db q in
  if not (Vardi_relational.Relation.equal answer reference) then begin
    Fmt.epr "e1-sanity: kernel %s disagrees with %s on E1-medium@."
      kernel_name other_name;
    exit 1
  end;
  Fmt.pr "e1-sanity: kernel %-8s E1-medium %.2f ms, answers agree@."
    kernel_name elapsed_ms

(* [value_of flag args] is the argument following [flag], if any. *)
let rec value_of flag = function
  | [] | [ _ ] -> None
  | a :: value :: _ when String.equal a flag -> Some value
  | _ :: rest -> value_of flag rest

(* --- the incremental-evaluation benchmark (--incr) ---

   E17 (EXPERIMENTS.md, BENCH_7.json): query-after-a-small-delta on
   the E1-medium workload, four rows.

   - incr/fresh-after-delta     one fact toggled on R in a plain
                                database, then a from-scratch
                                [Certain.answer] — the rescan baseline.
   - incr/session-after-delta-independent
                                the same toggle through an
                                [Incr_session], then a query that never
                                reads R: every per-structure result is
                                a memo hit. The headline row — the
                                acceptance bar is >= 3x over the fresh
                                baseline.
   - incr/session-after-delta-dependent
                                the toggle plus the mixed query that
                                does read R: memos miss, but the cached
                                quotient structures rebuild only the R
                                slot.
   - incr/session-requery       no delta, plan-cache-hot re-evaluation:
                                the pure-memo floor.
   - incr/mutation-only         one insert-or-retract toggle, no query:
                                the fixed cost of a fact delta.
   - incr/prepare-only          [Session.prepare] alone: what the serve
                                layer pays to re-bind a plan after a
                                delta moves the plan-cache key.

   Before timing, incremental answers are checked against from-scratch
   answers after both the insert and the retract — a silent divergence
   would make the speedup meaningless. *)

let incr_bench args =
  let module Certain = Vardi_certain.Engine in
  let module Session = Logicaldb.Incr_session in
  let module Cw = Logicaldb.Cw_database in
  let module Relation = Vardi_relational.Relation in
  Fmt.pr "=== E17: incremental evaluation — query after a small delta ===@.";
  let db0 = Workloads.parametric_db ~constants:16 ~unknowns:2 ~seed:7 in
  let dep_q = Workloads.mixed_query in
  let indep_q = Logicaldb.query "(x). ~P(x)" in
  let delta_fact =
    let constants = Cw.constants db0 in
    let existing = Cw.facts db0 in
    let candidates =
      List.concat_map
        (fun c ->
          List.map (fun d -> { Cw.pred = "R"; args = [ c; d ] }) constants)
        constants
    in
    match List.find_opt (fun f -> not (List.mem f existing)) candidates with
    | Some f -> f
    | None ->
      Fmt.epr "incr-bench: R is full on the E1-medium workload@.";
      exit 1
  in
  let check_parity label q =
    let s = Session.create db0 in
    let agree () =
      let fresh = Certain.answer (Session.db s) q in
      let incr, _ = Certain.prepared_answer_stats (Session.prepare s q) in
      Relation.equal fresh incr
    in
    Session.insert s delta_fact;
    let after_insert = agree () in
    Session.retract s delta_fact;
    if not (after_insert && agree ()) then begin
      Fmt.epr
        "incr-bench: incremental answers diverge from fresh rescan (%s)@."
        label;
      exit 1
    end
  in
  check_parity "dependent query" dep_q;
  check_parity "independent query" indep_q;
  (* Each timed run performs exactly one mutation (alternating insert /
     retract of the same fact, so state is re-appliable across
     Bechamel's many iterations) followed by one full query. *)
  let toggled_session q =
    let s = Session.create db0 in
    let present = ref false in
    ( s,
      fun () ->
        if !present then Session.retract s delta_fact
        else Session.insert s delta_fact;
        present := not !present;
        Certain.prepared_answer_stats (Session.prepare s q) )
  in
  let fresh_thunk =
    let db = ref db0 in
    let present = ref false in
    fun () ->
      (db :=
         if !present then Cw.remove_fact !db delta_fact
         else Cw.add_fact !db delta_fact);
      present := not !present;
      Certain.answer !db indep_q
  in
  let indep_session, indep_thunk = toggled_session indep_q in
  let _, dep_thunk = toggled_session dep_q in
  let requery_thunk =
    let s = Session.create db0 in
    let prepared = Session.prepare s dep_q in
    fun () -> Certain.prepared_answer_stats prepared
  in
  let results =
    run_micro_tests
      [
        Test.make ~name:"incr/fresh-after-delta" (stage fresh_thunk);
        Test.make ~name:"incr/session-after-delta-independent"
          (stage indep_thunk);
        Test.make ~name:"incr/session-after-delta-dependent"
          (stage dep_thunk);
        Test.make ~name:"incr/session-requery" (stage requery_thunk);
        (let s = Session.create db0 in
         let present = ref false in
         Test.make ~name:"incr/mutation-only"
           (stage (fun () ->
                if !present then Session.retract s delta_fact
                else Session.insert s delta_fact;
                present := not !present)));
        (let s = Session.create db0 in
         Test.make ~name:"incr/prepare-only"
           (stage (fun () -> Session.prepare s indep_q)));
      ]
  in
  let ns name =
    List.find_map
      (fun (n, e, _) -> if String.equal n name then Some e else None)
      results
  in
  (match (ns "incr/fresh-after-delta", ns "incr/session-after-delta-independent")
  with
  | Some fresh, Some incr when incr > 0. ->
    Fmt.pr "@.  speedup (fresh rescan / incremental, independent delta): \
            %.1fx@."
      (fresh /. incr)
  | _ -> ());
  Fmt.pr "  %a@." Session.pp_stats (Session.stats indep_session);
  Option.iter
    (fun path -> write_json path results)
    (value_of "--json" args)

(* --- the durability benchmark (--durable) ---

   E19 (EXPERIMENTS.md, BENCH_9.json): what the write-ahead log costs,
   and what recovery costs, on the E17 delta-then-query workload.

   - durable/delta-query-none     the baseline: one fact toggle through
                                  a bare [Incr_session] plus one
                                  dependent-query evaluation — E17's
                                  session-after-delta-dependent shape.
   - durable/delta-query-{never,batch,always}
                                  the same toggle+query through a
                                  [Durable_store]: probe, WAL append
                                  (with the named fsync policy), apply,
                                  query. The acceptance bar is batch
                                  overhead <= 15% over the baseline.
   - durable/recover-{100,1000,5000}
                                  full recovery (snapshot load + log
                                  scan + replay) of a directory whose
                                  WAL holds that many records — how
                                  startup cost scales with log length.

   Before timing, a commit/kill/recover round-trip is checked for
   equality (database and delta epoch) — a benchmark of a recovery
   that loses data would be meaningless. *)

let durable_bench args =
  let module Certain = Vardi_certain.Engine in
  let module Session = Logicaldb.Incr_session in
  let module Cw = Logicaldb.Cw_database in
  let module Store = Logicaldb.Durable_store in
  let module Wal = Logicaldb.Wal in
  let module Recovery = Logicaldb.Recovery in
  Fmt.pr "=== E19: durability — WAL overhead and recovery time ===@.";
  let db0 = Workloads.parametric_db ~constants:16 ~unknowns:2 ~seed:7 in
  let dep_q = Workloads.mixed_query in
  let delta_fact =
    let constants = Cw.constants db0 in
    let existing = Cw.facts db0 in
    let candidates =
      List.concat_map
        (fun c ->
          List.map (fun d -> { Cw.pred = "R"; args = [ c; d ] }) constants)
        constants
    in
    match List.find_opt (fun f -> not (List.mem f existing)) candidates with
    | Some f -> f
    | None ->
      Fmt.epr "durable-bench: R is full on the E1-medium workload@.";
      exit 1
  in
  let root = Filename.temp_file "durable_bench" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  (* Correctness gate: a committed prefix must survive an abandoned
     descriptor (the simulated kill -9) bit-for-bit. *)
  (let dir = Filename.concat root "gate" in
   let store = Store.create ~dir ~sync:Wal.Always ~snapshot_every:0 db0 in
   ignore (Store.commit store (Session.Insert delta_fact));
   ignore (Store.commit store (Session.Retract delta_fact));
   ignore (Store.commit store (Session.Insert delta_fact));
   let wanted = Session.db (Store.session store) in
   let delta = Session.delta_epoch (Store.session store) in
   Store.abandon store;
   let report = Recovery.verify dir in
   if
     not
       (Cw.equal (Session.db report.Recovery.r_session) wanted
       && Session.delta_epoch report.Recovery.r_session = delta)
   then begin
     Fmt.epr "durable-bench: recovery diverges from the committed state@.";
     exit 1
   end);
  let toggle apply =
    let present = ref false in
    fun () ->
      (if !present then apply (Session.Retract delta_fact)
       else apply (Session.Insert delta_fact));
      present := not !present
  in
  let session_thunk =
    let s = Session.create db0 in
    let step = toggle (fun m -> ignore (Session.apply s m)) in
    fun () ->
      step ();
      Certain.prepared_answer_stats (Session.prepare s dep_q)
  in
  let store_thunk name sync =
    let dir = Filename.concat root name in
    let store = Store.create ~dir ~sync ~snapshot_every:0 db0 in
    let s = Store.session store in
    let step = toggle (fun m -> ignore (Store.commit store m)) in
    fun () ->
      step ();
      Certain.prepared_answer_stats (Session.prepare s dep_q)
  in
  let recovery_dir n =
    let dir = Filename.concat root (Printf.sprintf "recover%d" n) in
    let store = Store.create ~dir ~sync:Wal.Never ~snapshot_every:0 db0 in
    let step = toggle (fun m -> ignore (Store.commit store m)) in
    for _ = 1 to n do
      step ()
    done;
    Store.abandon store;
    dir
  in
  let results =
    run_micro_tests
      [
        Test.make ~name:"durable/delta-query-none" (stage session_thunk);
        Test.make ~name:"durable/delta-query-never"
          (stage (store_thunk "never" Wal.Never));
        Test.make ~name:"durable/delta-query-batch"
          (stage (store_thunk "batch" Wal.Batch));
        Test.make ~name:"durable/delta-query-always"
          (stage (store_thunk "always" Wal.Always));
        (let d = recovery_dir 100 in
         Test.make ~name:"durable/recover-100"
           (stage (fun () -> Recovery.verify d)));
        (let d = recovery_dir 1000 in
         Test.make ~name:"durable/recover-1000"
           (stage (fun () -> Recovery.verify d)));
        (let d = recovery_dir 5000 in
         Test.make ~name:"durable/recover-5000"
           (stage (fun () -> Recovery.verify d)));
      ]
  in
  let ns name =
    List.find_map
      (fun (n, e, _) -> if String.equal n name then Some e else None)
      results
  in
  (match (ns "durable/delta-query-none", ns "durable/delta-query-batch") with
  | Some base, Some batch when base > 0. ->
    Fmt.pr "@.  WAL overhead (--sync=batch over in-memory): %+.1f%%@."
      ((batch -. base) /. base *. 100.)
  | _ -> ());
  (match (ns "durable/delta-query-none", ns "durable/delta-query-always") with
  | Some base, Some always when base > 0. ->
    Fmt.pr "  WAL overhead (--sync=always over in-memory): %+.1f%%@."
      ((always -. base) /. base *. 100.)
  | _ -> ());
  Option.iter (fun path -> write_json path results) (value_of "--json" args)

(* --- the acyclic-query benchmark (--acq / --acq-sanity) ---

   E20 (EXPERIMENTS.md, BENCH_10.json): what the acyclic-query fast
   path buys. A growing-domain sweep over a 3-atom path CQ compares
   three evaluation strategies on the same database:

   - acq/path-nNNN-naive       the unoptimized compiled plan: every
                               atom padded to the full variable width
                               with domain products (intermediates grow
                               like n^3 here);
   - acq/path-nNNN-optimized   the same plan through the optimizer's
                               join-fusion rewrites (Join/Semijoin
                               operators, no padding);
   - acq/path-nNNN-fast        the Yannakakis evaluator: join tree,
                               two semijoin passes, bottom-up joins
                               with early projection.

   Larger sizes run only the two join-based strategies (the naive plan
   would materialize tens of millions of tuples). A star CQ row shows
   the effect is not path-specific, a triangle row pins the cyclic
   fallback, and an approx-pipeline pair times A(Q,LB) end-to-end with
   the Direct backend vs the optimized backend's fast-path dispatch.

   Every timed plan is first checked for answer equality against the
   Tarskian evaluator (small sizes) or across strategies (large
   sizes) — a benchmark of a wrong answer would be meaningless.

   This mode also re-measures durable/delta-query-always and
   durable/recover-100 (their BENCH_9.json rows had low OLS
   confidence) at this mode's longer quota; the BENCH_10.json rows
   supersede them. *)

let acq_quota = 1.0

module Acq = struct
  module L = Logicaldb

  let e i = Printf.sprintf "e%03d" i

  (* Three shifted successor chains over a domain of [n] elements:
     |R| = |S| = |T| = n, so the acyclic strategies are linear in [n]
     while the padded plan pays n^3. *)
  let db n =
    let domain = List.init n e in
    let chain shift =
      L.Relation.of_tuples 2
        (List.init n (fun i -> [ e i; e ((i + shift) mod n) ]))
    in
    L.Database.make
      ~vocabulary:
        (L.Vocabulary.make ~constants:[]
           ~predicates:[ ("R", 2); ("S", 2); ("T", 2) ])
      ~domain ~constants:[]
      ~relations:[ ("R", chain 1); ("S", chain 2); ("T", chain 3) ]

  let path_q =
    L.Parser.query
      "(x, w). exists y. exists z. R(x, y) /\\ S(y, z) /\\ T(z, w)"

  let star_q =
    L.Parser.query
      "(h). exists a. exists b. exists c. R(h, a) /\\ S(h, b) /\\ T(h, c)"

  let triangle_q =
    L.Parser.query "(x). exists y. exists z. R(x, y) /\\ S(y, z) /\\ T(z, x)"

  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Fmt.epr "acq-bench: %s@." msg;
        exit 1)
      fmt

  (* Correctness gates at sizes where the Tarskian evaluator is cheap:
     all four strategies must agree on the acyclic queries, detection
     must actually fire (a fast path that always falls back would
     "win" every benchmark), and the triangle must be rejected as
     cyclic yet still answered correctly by the fallback. *)
  let gate () =
    List.iter
      (fun n ->
        let db = db n in
        List.iter
          (fun (qname, q) ->
            let reference = L.Eval.answer db q in
            (match L.Yannakakis.answer db q with
            | None -> fail "fast path not taken on %s at n=%d" qname n
            | Some fast ->
              if not (L.Relation.equal fast reference) then
                fail "fast path wrong on %s at n=%d" qname n);
            let naive = L.Compile.query db q in
            if not (L.Relation.equal (L.Algebra.run db naive) reference) then
              fail "naive plan wrong on %s at n=%d" qname n;
            if
              not
                (L.Relation.equal
                   (L.Algebra.run db (L.Optimizer.optimize db naive))
                   reference)
            then fail "optimized plan wrong on %s at n=%d" qname n)
          [ ("path", path_q); ("star", star_q) ];
        (match L.Yannakakis.plan db triangle_q with
        | Some _ -> fail "triangle accepted as acyclic at n=%d" n
        | None -> ());
        if
          not
            (L.Relation.equal
               (L.Algebra.run db
                  (L.Optimizer.optimize db (L.Compile.query db triangle_q)))
               (L.Eval.answer db triangle_q))
        then fail "triangle fallback wrong at n=%d" n)
      [ 8; 16 ];
    Fmt.pr "  correctness gates passed (n = 8, 16; path, star, triangle)@."

  (* One size's strategy plans, parity-checked against each other so
     the large sizes stay verified without the Tarskian evaluator. *)
  let plans n q qname =
    let db = db n in
    let naive = L.Compile.query db q in
    let optimized = L.Optimizer.optimize db naive in
    let yplan =
      match L.Yannakakis.plan db q with
      | Some p -> p
      | None -> fail "fast path not taken on %s at n=%d" qname n
    in
    let fast_answer = L.Yannakakis.run db yplan in
    if not (L.Relation.equal fast_answer (L.Algebra.run db optimized)) then
      fail "fast and optimized answers diverge on %s at n=%d" qname n;
    (db, naive, optimized, yplan)
end

let acq_durable_retest_tests root =
  (* E19 follow-up: the BENCH_9.json rows for these two benchmarks had
     low OLS confidence (r² 0.19 and 0.71) at the default 0.3 s quota;
     re-measured here at [acq_quota] so BENCH_10.json supersedes
     them. Setup mirrors [durable_bench]. *)
  let module Certain = Vardi_certain.Engine in
  let module Session = Logicaldb.Incr_session in
  let module Cw = Logicaldb.Cw_database in
  let module Store = Logicaldb.Durable_store in
  let module Wal = Logicaldb.Wal in
  let module Recovery = Logicaldb.Recovery in
  let db0 = Workloads.parametric_db ~constants:16 ~unknowns:2 ~seed:7 in
  let dep_q = Workloads.mixed_query in
  let delta_fact =
    let constants = Cw.constants db0 in
    let existing = Cw.facts db0 in
    let candidates =
      List.concat_map
        (fun c ->
          List.map (fun d -> { Cw.pred = "R"; args = [ c; d ] }) constants)
        constants
    in
    match List.find_opt (fun f -> not (List.mem f existing)) candidates with
    | Some f -> f
    | None ->
      Fmt.epr "acq-bench: R is full on the E1-medium workload@.";
      exit 1
  in
  let toggle apply =
    let present = ref false in
    fun () ->
      (if !present then apply (Session.Retract delta_fact)
       else apply (Session.Insert delta_fact));
      present := not !present
  in
  let always_thunk =
    let dir = Filename.concat root "always" in
    let store = Store.create ~dir ~sync:Wal.Always ~snapshot_every:0 db0 in
    let s = Store.session store in
    let step = toggle (fun m -> ignore (Store.commit store m)) in
    fun () ->
      step ();
      Certain.prepared_answer_stats (Session.prepare s dep_q)
  in
  let recover_dir =
    let dir = Filename.concat root "recover100" in
    let store = Store.create ~dir ~sync:Wal.Never ~snapshot_every:0 db0 in
    let step = toggle (fun m -> ignore (Store.commit store m)) in
    for _ = 1 to 100 do
      step ()
    done;
    Store.abandon store;
    dir
  in
  [
    Test.make ~name:"durable/delta-query-always" (stage always_thunk);
    Test.make ~name:"durable/recover-100"
      (stage (fun () -> Recovery.verify recover_dir));
  ]

let acq_bench args =
  let module L = Logicaldb in
  Fmt.pr "=== E20: acyclic-query fast path — Yannakakis vs naive ===@.";
  Acq.gate ();
  let sweep_sizes = [ 16; 32; 64 ] in
  let fast_only_sizes = [ 128; 256 ] in
  let name n strategy = Printf.sprintf "acq/path-n%03d-%s" n strategy in
  let sweep_tests =
    List.concat_map
      (fun n ->
        let db, naive, optimized, yplan = Acq.plans n Acq.path_q "path" in
        [
          Test.make ~name:(name n "naive")
            (stage (fun () -> L.Algebra.run db naive));
          Test.make ~name:(name n "optimized")
            (stage (fun () -> L.Algebra.run db optimized));
          Test.make ~name:(name n "fast")
            (stage (fun () -> L.Yannakakis.run db yplan));
        ])
      sweep_sizes
    @ List.concat_map
        (fun n ->
          let db, _, optimized, yplan = Acq.plans n Acq.path_q "path" in
          [
            Test.make ~name:(name n "optimized")
              (stage (fun () -> L.Algebra.run db optimized));
            Test.make ~name:(name n "fast")
              (stage (fun () -> L.Yannakakis.run db yplan));
          ])
        fast_only_sizes
  in
  let star_tests =
    let db, naive, optimized, yplan = Acq.plans 32 Acq.star_q "star" in
    [
      Test.make ~name:"acq/star-n032-naive"
        (stage (fun () -> L.Algebra.run db naive));
      Test.make ~name:"acq/star-n032-optimized"
        (stage (fun () -> L.Algebra.run db optimized));
      Test.make ~name:"acq/star-n032-fast"
        (stage (fun () -> L.Yannakakis.run db yplan));
    ]
  in
  let triangle_tests =
    let db = Acq.db 32 in
    (match L.Yannakakis.plan db Acq.triangle_q with
    | Some _ -> Acq.fail "triangle accepted as acyclic at n=32"
    | None -> ());
    let optimized = L.Optimizer.optimize db (L.Compile.query db Acq.triangle_q) in
    [
      Test.make ~name:"acq/triangle-n032-fallback"
        (stage (fun () -> L.Algebra.run db optimized));
    ]
  in
  let approx_tests =
    (* End-to-end A(Q,LB) on the E1-medium workload: the optimized
       backend dispatches this acyclic CQ to the fast path; Direct is
       the Tarskian pipeline. *)
    let adb = Workloads.parametric_db ~constants:16 ~unknowns:2 ~seed:7 in
    let aq = L.Parser.query "(x, z). exists y. R(x, y) /\\ R(y, z)" in
    let hat = L.Translate.query L.Translate.Semantic aq in
    let ph2 = L.Ph.ph2 adb in
    (match
       L.Yannakakis.answer ~virtuals:(L.Disagree.virtuals adb) ph2 hat
     with
    | None -> Acq.fail "approx E2E query not dispatched to the fast path"
    | Some _ -> ());
    let direct = L.Approx.answer ~backend:L.Approx.Direct adb aq in
    let optimized =
      L.Approx.answer ~backend:L.Approx.Algebra_optimized adb aq
    in
    if not (L.Relation.equal direct optimized) then
      Acq.fail "approx backends disagree on the E2E query";
    [
      Test.make ~name:"acq/approx-e2e-direct"
        (stage (fun () -> L.Approx.answer ~backend:L.Approx.Direct adb aq));
      Test.make ~name:"acq/approx-e2e-optimized"
        (stage (fun () ->
             L.Approx.answer ~backend:L.Approx.Algebra_optimized adb aq));
    ]
  in
  let root = Filename.temp_file "acq_bench" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  let results =
    run_micro_tests ~quota:acq_quota
      (sweep_tests @ star_tests @ triangle_tests @ approx_tests
      @ acq_durable_retest_tests root)
  in
  let ns n =
    List.find_map
      (fun (nm, e, _) -> if String.equal nm n then Some e else None)
      results
  in
  (match (ns (name 64 "naive"), ns (name 64 "fast")) with
  | Some naive, Some fast when fast > 0. ->
    Fmt.pr "@.  speedup at n=64 (fast over naive): %.1fx@." (naive /. fast)
  | _ -> ());
  Option.iter
    (fun path -> write_json ~quota:acq_quota path results)
    (value_of "--json" args)

(* CI gate (--acq-sanity [--min-speedup F]): the correctness gates plus
   one wall-clock comparison at the largest common sweep size — the
   fast path must beat the naive padded plan by the required factor
   (default 5x; BENCH_10.json records ~the real separation, this floor
   just keeps CI robust to noisy runners). *)
let acq_sanity args =
  let module L = Logicaldb in
  Fmt.pr "=== acq sanity: correctness gates + speedup floor ===@.";
  Acq.gate ();
  let floor =
    match value_of "--min-speedup" args with
    | Some s -> float_of_string s
    | None -> 5.0
  in
  let n = 64 in
  let db, naive, _optimized, yplan = Acq.plans n Acq.path_q "path" in
  let fast_answer = L.Yannakakis.run db yplan in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_naive, naive_answer = time (fun () -> L.Algebra.run db naive) in
  if not (L.Relation.equal naive_answer fast_answer) then begin
    Fmt.epr "acq-sanity: naive and fast answers diverge at n=%d@." n;
    exit 1
  end;
  let runs = 50 in
  let t_fast, () =
    time (fun () ->
        for _ = 1 to runs do
          ignore (L.Yannakakis.run db yplan)
        done)
  in
  let t_fast = t_fast /. float_of_int runs in
  let factor = if t_fast > 0. then t_naive /. t_fast else Float.infinity in
  Fmt.pr "  n=%d: naive %.1f ms, fast %.3f ms — speedup %.1fx (floor %.1fx)@."
    n (t_naive *. 1e3) (t_fast *. 1e3) factor floor;
  if factor < floor then begin
    Fmt.epr "acq-sanity: speedup %.1fx below the %.1fx floor@." factor floor;
    exit 1
  end

(* --- Part 3: per-phase breakdown through the observability layer --- *)

let phase_breakdown () =
  let module Obs = Logicaldb.Obs in
  let module Certain = Vardi_certain.Engine in
  Fmt.pr "@.=== E1-medium per-phase breakdown (Vardi_obs spans) ===@.";
  let db_medium = Workloads.parametric_db ~constants:16 ~unknowns:2 ~seed:7 in
  let q = Workloads.mixed_query in
  ignore (Certain.answer db_medium q) (* warm-up: plan + minor heap *);
  let buf = Obs.buffer () in
  Obs.with_sink (Obs.buffer_sink buf) (fun () ->
      ignore (Certain.answer ~domains:4 db_medium q));
  let evs = Obs.events buf in
  Obs.pp_spans Fmt.stdout evs;
  Obs.pp_counters Fmt.stdout evs

(* --- Part 4: the serve load generator (--serve) ---

   Drives [ldb serve] with N concurrent clients and records per-request
   latency, so "the daemon handles heavy traffic" is a measured claim
   (EXPERIMENTS.md E16, BENCH_6.json). Two modes: with --socket PATH it
   drives an already-running external server (the CI smoke job); with
   no --socket it hosts the server in-process on a private socket and
   tears it down afterwards. --mixed salts the load with one malformed
   line and one budget-exhausted request per run, asserting the
   protocol's error codes under concurrency; any unexpected code fails
   the run. *)

let serve_bench args =
  let module Serve = Logicaldb.Serve in
  let module Client = Logicaldb.Serve_client in
  let module Json = Logicaldb.Serve_json in
  let module Obs = Logicaldb.Obs in
  let int_arg flag default =
    match value_of flag args with
    | None -> default
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n > 0 -> n
      | _ ->
        Fmt.epr "%s expects a positive integer, got %S@." flag v;
        exit 2)
  in
  let clients = int_arg "--clients" 8 in
  let per_client = int_arg "--requests" 25 in
  let workers = int_arg "--workers" 2 in
  let queue_capacity = int_arg "--queue" 64 in
  (* --retries N: connect with backoff while the server is coming up,
     and resend on the busy backpressure code (capped exponential
     backoff + jitter, Client's policy) — 0 = fail fast, the default. *)
  let retries =
    match value_of "--retries" args with
    | None -> 0
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> n
      | _ ->
        Fmt.epr "--retries expects a non-negative integer, got %S@." v;
        exit 2)
  in
  let mixed = List.mem "--mixed" args in
  let json_path = value_of "--json" args in
  let external_socket = value_of "--socket" args in
  let shutdown_after = external_socket = None || List.mem "--shutdown" args in
  (* The workload database: medium-sized, so each request does real
     scan work but a single run stays in seconds. *)
  let db = Workloads.parametric_db ~constants:12 ~unknowns:2 ~seed:7 in
  let db_path = Filename.temp_file "serve_bench" ".ldb" in
  let oc = open_out db_path in
  output_string oc (Logicaldb.Ldb_format.print db);
  close_out oc;
  let query_mix =
    [|
      `Query "(x). (exists y. R(x, y)) /\\ ~P(x)";
      `Query "(x). exists y. R(x, y) /\\ P(y)";
      `Query "(x). ~P(x)";
      `Boolean "(). exists x. ~P(x) /\\ (exists y. R(x, y))";
    |]
  in
  let socket_path, server_thread =
    match external_socket with
    | Some path -> (path, None)
    | None ->
      let path = Filename.temp_file "serve_bench" ".sock" in
      let thread =
        Thread.create
          (fun () ->
            Serve.run
              {
                Serve.socket_path = path;
                workers;
                queue_capacity;
                debug_sleep = false;
                preload = [];
                durability = None;
              })
          ()
      in
      (path, Some thread)
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove db_path with Sys_error _ -> ())
    (fun () ->
      let setup = Client.connect_retry socket_path in
      let load_resp =
        Client.request setup
          (Json.Obj
             [
               ("op", Json.Str "load");
               ("db", Json.Str "bench");
               ("path", Json.Str db_path);
             ])
      in
      (match Json.str_field "code" load_resp with
      | Some "ok" -> ()
      | _ ->
        Fmt.epr "serve-bench: load failed: %s@." (Json.to_string load_resp);
        exit 1);
      (* One warm-up pass per query shape, so the measured section sees
         the plan cache hot — the steady state a resident server is
         for. The cold misses are still visible in the cache counters
         below. *)
      Array.iter
        (fun shape ->
          let op, text =
            match shape with
            | `Query t -> ("query", t)
            | `Boolean t -> ("boolean", t)
          in
          ignore
            (Client.request setup
               (Json.Obj
                  [
                    ("op", Json.Str op);
                    ("db", Json.Str "bench");
                    ("query", Json.Str text);
                  ])))
        query_mix;
      let unexpected = Atomic.make 0 in
      let latencies = Array.make clients [||] in
      let client_thread idx () =
        let c =
          if retries > 0 then Client.connect ~retries socket_path
          else Client.connect_retry socket_path
        in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            let lat = Array.make per_client 0. in
            for i = 0 to per_client - 1 do
              let expect_code, send =
                if mixed && idx = 0 && i = 0 then
                  ("parse_error", fun () -> Client.request_line c "not json")
                else if mixed && idx = 0 && i = 1 then
                  ( "exhausted",
                    fun () ->
                      Client.request c
                        (Json.Obj
                           [
                             ("op", Json.Str "query");
                             ("db", Json.Str "bench");
                             ( "query",
                               Json.Str "(x). (exists y. R(x, y)) /\\ ~P(x)"
                             );
                             ("max_structures", Json.Num 1.);
                           ]) )
                else
                  let op, text =
                    match query_mix.((idx + i) mod Array.length query_mix) with
                    | `Query t -> ("query", t)
                    | `Boolean t -> ("boolean", t)
                  in
                  ( "ok",
                    fun () ->
                      Client.request_retry ~retries c
                        (Json.Obj
                           [
                             ("op", Json.Str op);
                             ("db", Json.Str "bench");
                             ("query", Json.Str text);
                           ]) )
              in
              let t0 = Obs.now_ns () in
              let resp = send () in
              lat.(i) <- Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e6;
              match Json.str_field "code" resp with
              | Some code when code = expect_code -> ()
              | _ ->
                Atomic.incr unexpected;
                Fmt.epr "serve-bench: client %d expected %s, got %s@." idx
                  expect_code (Json.to_string resp)
            done;
            latencies.(idx) <- lat)
      in
      let threads = List.init clients (fun i -> Thread.create (client_thread i) ()) in
      List.iter Thread.join threads;
      let stats_resp =
        Client.request setup (Json.Obj [ ("op", Json.Str "stats") ])
      in
      if shutdown_after then
        ignore (Client.request setup (Json.Obj [ ("op", Json.Str "shutdown") ]));
      Client.close setup;
      Option.iter Thread.join server_thread;
      let all = Array.concat (Array.to_list latencies) in
      Array.sort compare all;
      let n = Array.length all in
      let percentile q =
        if n = 0 then Float.nan
        else all.(min (n - 1) (int_of_float (Float.round (q *. float_of_int (n - 1)))))
      in
      let mean =
        if n = 0 then Float.nan
        else Array.fold_left ( +. ) 0. all /. float_of_int n
      in
      let p50 = percentile 0.50
      and p90 = percentile 0.90
      and p99 = percentile 0.99
      and p_max = if n = 0 then Float.nan else all.(n - 1) in
      Fmt.pr
        "serve-bench: %d clients x %d requests (workers=%d queue=%d%s)@."
        clients per_client workers queue_capacity
        (if mixed then ", mixed load" else "");
      Fmt.pr
        "  latency ms: p50 %.3f  p90 %.3f  p99 %.3f  max %.3f  mean %.3f@."
        p50 p90 p99 p_max mean;
      let cache_field name =
        Option.bind (Json.member "plan_cache" stats_resp) (Json.num_field name)
      in
      (match (cache_field "hits", cache_field "misses") with
      | Some h, Some m -> Fmt.pr "  plan cache: %.0f hits, %.0f misses@." h m
      | _ -> ());
      Option.iter
        (fun path ->
          let out = open_out path in
          Printf.fprintf out
            "{\n\
            \  \"schema\": \"vardi-serve-bench/1\",\n\
            \  \"clients\": %d,\n\
            \  \"requests_per_client\": %d,\n\
            \  \"workers\": %d,\n\
            \  \"queue_capacity\": %d,\n\
            \  \"mixed\": %b,\n\
            \  \"total_requests\": %d,\n\
            \  \"latency_ms\": { \"p50\": %s, \"p90\": %s, \"p99\": %s, \
             \"max\": %s, \"mean\": %s },\n\
            \  \"server_stats\": %s\n\
             }\n"
            clients per_client workers queue_capacity mixed n (json_float p50)
            (json_float p90) (json_float p99) (json_float p_max)
            (json_float mean)
            (Json.to_string stats_resp);
          close_out out;
          Fmt.pr "wrote %s@." path)
        json_path;
      if Atomic.get unexpected > 0 then begin
        Fmt.epr "serve-bench: %d unexpected response codes@."
          (Atomic.get unexpected);
        exit 1
      end;
      Fmt.pr "serve-bench: all %d responses carried their expected codes@." n)

(* --- Part 5: the serve mutation smoke (--serve-mutate) ---

   Drives a running [ldb serve] daemon through the mutation wire ops
   (insert / retract / close_unknown) against a database file, checks
   every response code, and prints the final certain answer of the
   probe query as sorted CSV rows on stdout — the same shape [ldb
   query] prints — so the CI incr-smoke job can diff it against the
   one-shot pipeline (ldb mutate --output F && ldb query F). The
   script is written for data/socrates.ldb: it inserts
   TEACHES(mystery, socrates), round-trips an insert/retract pair
   (which must leave no trace), closes (socrates, mystery) to
   distinct, and throws two malformed mutations at the wire to pin
   their error codes. Any unexpected code exits 1. *)

let serve_mutate_bench args =
  let module Client = Logicaldb.Serve_client in
  let module Json = Logicaldb.Serve_json in
  let required flag =
    match value_of flag args with
    | Some v -> v
    | None ->
      Fmt.epr "--serve-mutate requires %s@." flag;
      exit 2
  in
  let db_path = required "--db" in
  let socket = required "--socket" in
  let shutdown_after = List.mem "--shutdown" args in
  let c = Client.connect_retry socket in
  let str k v = (k, Json.Str v) in
  let expect code label fields =
    let resp = Client.request c (Json.Obj fields) in
    (match Json.str_field "code" resp with
    | Some got when got = code -> ()
    | _ ->
      Fmt.epr "serve-mutate: %s expected code %s, got %s@." label code
        (Json.to_string resp);
      exit 1);
    resp
  in
  let op name rest = ("op", Json.Str name) :: rest in
  let on_db rest = str "db" "incr" :: rest in
  let probe = "(x, y). TEACHES(x, y)" in
  ignore (expect "ok" "load" (op "load" (on_db [ str "path" db_path ])));
  ignore (expect "ok" "probe" (op "query" (on_db [ str "query" probe ])));
  ignore
    (expect "ok" "insert"
       (op "insert" (on_db [ str "fact" "TEACHES(mystery, socrates)" ])));
  ignore
    (expect "ok" "insert (round-trip)"
       (op "insert" (on_db [ str "fact" "TEACHES(plato, mystery)" ])));
  ignore
    (expect "ok" "retract (round-trip)"
       (op "retract" (on_db [ str "fact" "TEACHES(plato, mystery)" ])));
  ignore
    (expect "ok" "close_unknown"
       (op "close_unknown"
          (on_db
             [ str "left" "socrates"; str "right" "mystery"; str "to" "distinct" ])));
  ignore
    (expect "parse_error" "malformed fact"
       (op "insert" (on_db [ str "fact" "((" ])));
  ignore
    (expect "semantic_error" "absent retract"
       (op "retract" (on_db [ str "fact" "TEACHES(plato, plato)" ])));
  let final = expect "ok" "final query" (op "query" (on_db [ str "query" probe ])) in
  let rows =
    match Json.member "rows" final with
    | Some (Json.List rs) ->
      List.filter_map
        (function
          | Json.List cells -> Some (List.filter_map Json.to_str cells)
          | _ -> None)
        rs
      |> List.sort compare
    | _ ->
      Fmt.epr "serve-mutate: final response without rows: %s@."
        (Json.to_string final);
      exit 1
  in
  if shutdown_after then
    ignore (Client.request c (Json.Obj [ ("op", Json.Str "shutdown") ]));
  Client.close c;
  List.iter (fun row -> Fmt.pr "%s@." (String.concat ", " row)) rows;
  Fmt.epr "serve-mutate: script complete, %d final rows@." (List.length rows)

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--serve-mutate" args then serve_mutate_bench args
  else if List.mem "--serve" args then serve_bench args
  else if List.mem "--incr" args then incr_bench args
  else if List.mem "--durable" args then durable_bench args
  else if List.mem "--acq-sanity" args then acq_sanity args
  else if List.mem "--acq" args then acq_bench args
  else if List.mem "--e1-sanity" args then
    e1_sanity (Option.value ~default:"interned" (value_of "--kernel" args))
  else begin
    let tables_only = List.mem "--tables-only" args in
    let micro_only = List.mem "--micro-only" args in
    let json = value_of "--json" args in
    if not micro_only then print_tables ();
    if not tables_only then begin
      let results = run_micro () in
      Option.iter (fun path -> write_json path results) json
    end;
    if (not tables_only) && not micro_only then phase_breakdown ();
    Fmt.pr "@.done.@."
  end
