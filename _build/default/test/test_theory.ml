(* Tests for general logical databases: arbitrary finite theories under
   bounded-model finite implication. *)

open Logicaldb

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let f = Parser.formula

(* --- construction --- *)

let test_make_validation () =
  let v = Vocabulary.make ~constants:[ "a" ] ~predicates:[ ("P", 1) ] in
  let expect_invalid axioms =
    match Theory.make ~vocabulary:v ~axioms with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid [ f ~free_vars:[ "x" ] "P(x)" ];
  expect_invalid [ f "Q(a)" ];
  expect_invalid [ f "P(a, a)" ];
  expect_invalid [ f "P(zzz)" ];
  ignore (Theory.make ~vocabulary:v ~axioms:[ f "P(a)" ])

(* --- model enumeration over an unconstrained vocabulary --- *)

let test_model_counts () =
  (* One unary predicate, one constant. Models of the empty theory with
     domain bound 2: n=1: 1 cmap x 2 relations; n=2: 2 cmaps x 4
     relations = 8. Total 10. *)
  let v = Vocabulary.make ~constants:[ "a" ] ~predicates:[ ("P", 1) ] in
  let t = Theory.make ~vocabulary:v ~axioms:[] in
  check_int "empty theory models" 10
    (List.length (List.of_seq (Theory.models ~max_domain:2 t)));
  (* Adding P(a) as an axiom halves each relation choice set. *)
  let t' = Theory.make ~vocabulary:v ~axioms:[ f "P(a)" ] in
  check_int "with one fact" 5
    (List.length (List.of_seq (Theory.models ~max_domain:2 t')))

let test_satisfiability () =
  let v = Vocabulary.make ~constants:[ "a" ] ~predicates:[ ("R", 2) ] in
  (* An irreflexive relation with an edge needs 2 elements. *)
  let needs_two =
    Theory.make ~vocabulary:v
      ~axioms:[ f "exists x, y. R(x, y)"; f "forall x. ~R(x, x)" ]
  in
  check_bool "unsat at bound 1" false (Theory.satisfiable ~max_domain:1 needs_two);
  check_bool "sat at bound 2" true (Theory.satisfiable ~max_domain:2 needs_two);
  (* A plainly inconsistent theory. *)
  let inconsistent =
    Theory.make ~vocabulary:v ~axioms:[ f "R(a, a)"; f "~R(a, a)" ]
  in
  check_bool "inconsistent" false (Theory.satisfiable ~max_domain:2 inconsistent)

let test_entailment () =
  let v = Vocabulary.make ~constants:[ "a" ] ~predicates:[ ("R", 2) ] in
  let t =
    Theory.make ~vocabulary:v
      ~axioms:[ f "exists x, y. R(x, y)"; f "forall x. ~R(x, x)" ]
  in
  (* Any edge in an irreflexive graph joins two distinct elements. *)
  check_bool "entailed" true
    (Theory.entails ~max_domain:3 t (f "exists x, y. R(x, y) /\\ x != y"));
  check_bool "not entailed" false
    (Theory.entails ~max_domain:3 t (f "R(a, a)"));
  (* Entailment rejects free variables. *)
  match Theory.entails ~max_domain:2 t (f ~free_vars:[ "x" ] "R(x, x)") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- agreement with the CW engines --- *)

(* For a CW database, domain closure bounds models by |C|, so bounded
   entailment at |C| is exactly certain evaluation. Tiny unary-only
   databases keep the model space manageable. *)
let gen_tiny_unary_db : Cw_database.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let constants = [ "a"; "b"; "c" ] in
  let* facts =
    list_size (int_bound 2) (map (fun c -> ("P", [ c ])) (oneofl constants))
  in
  let* distinct =
    List.fold_left
      (fun acc pair ->
        let* acc = acc in
        let* keep = bool in
        return (if keep then pair :: acc else acc))
      (return [])
      [ ("a", "b"); ("a", "c"); ("b", "c") ]
  in
  return (database ~predicates:[ ("P", 1) ] ~constants ~facts ~distinct ())

let tiny_sentences =
  List.map Parser.formula
    [
      "P(a)";
      "~P(b)";
      "exists x. P(x)";
      "forall x. P(x)";
      "a != b";
      "P(a) \\/ ~P(a)";
      "forall x. P(x) -> x = a";
    ]

let cw_agreement =
  QCheck2.Test.make ~count:40 ~name:"bounded entailment = certain evaluation"
    ~print:Support.print_db gen_tiny_unary_db
    (fun db ->
      let t = Theory.of_cw db in
      let bound = List.length (Cw_database.constants db) in
      List.for_all
        (fun sentence ->
          Theory.entails ~max_domain:bound t sentence
          = Certain.certain_boolean db (Query.boolean sentence))
        tiny_sentences)

let test_certain_answers_cw () =
  let db = Support.socrates_db () in
  let t = Theory.of_cw db in
  let q = Parser.query "(x). exists y. TEACHES(x, y)" in
  Alcotest.check Support.relation_testable "theory = engine"
    (Certain.answer db q)
    (Theory.certain_answers ~max_domain:3 t q)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "model counts" `Quick test_model_counts;
    Alcotest.test_case "satisfiability" `Quick test_satisfiability;
    Alcotest.test_case "entailment" `Quick test_entailment;
    Support.qcheck_case cw_agreement;
    Alcotest.test_case "certain answers (socrates)" `Slow
      test_certain_answers_cw;
  ]
