(* Tests for the hardness reductions (Theorems 5, 7, 9) against
   independent baseline solvers. *)

open Logicaldb

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- graphs and the coloring baseline --- *)

let test_graph_basics () =
  let g = Graph.make ~vertices:3 ~edges:[ (0, 1); (1, 0); (1, 2) ] in
  check_int "mirrored edges collapse" 2 (List.length (Graph.edges g));
  check_bool "has edge" true (Graph.has_edge g 1 0);
  check_bool "no edge" false (Graph.has_edge g 0 2);
  Alcotest.(check (list int)) "neighbours" [ 0; 2 ] (Graph.neighbours g 1)

let test_coloring_solver () =
  check_bool "K3 is 3-colorable" true (Graph.colorable 3 (Graph.complete 3));
  check_bool "K4 is not 3-colorable" false (Graph.colorable 3 (Graph.complete 4));
  check_bool "odd cycle needs 3" false (Graph.colorable 2 (Graph.cycle 5));
  check_bool "odd cycle 3-colorable" true (Graph.colorable 3 (Graph.cycle 5));
  check_bool "even cycle 2-colorable" true (Graph.colorable 2 (Graph.cycle 6));
  check_bool "petersen 3-colorable" true (Graph.colorable 3 (Graph.petersen ()));
  check_bool "petersen not 2-colorable" false
    (Graph.colorable 2 (Graph.petersen ()));
  check_bool "self-loop uncolorable" false
    (Graph.colorable 3 (Graph.make ~vertices:1 ~edges:[ (0, 0) ]))

let test_coloring_witness () =
  match Graph.coloring 3 (Graph.petersen ()) with
  | None -> Alcotest.fail "petersen should be colorable"
  | Some witness ->
    check_bool "witness proper" true
      (Graph.is_proper_coloring (Graph.petersen ()) witness)

(* --- Theorem 5 --- *)

let test_three_col_database_shape () =
  let g = Graph.cycle 3 in
  let db = Three_col.database g in
  check_int "constants: 3 colors + 3 vertices" 6
    (List.length (Cw_database.constants db));
  check_int "facts: 3 M + 3 R" 6 (List.length (Cw_database.facts db));
  check_int "uniqueness: 3 pairs" 3
    (List.length (Cw_database.distinct_pairs db));
  check_bool "not fully specified" false (Cw_database.is_fully_specified db)

let test_three_col_known_graphs () =
  let cases =
    [
      ("K3", Graph.complete 3, true);
      ("K4", Graph.complete 4, false);
      ("C5", Graph.cycle 5, true);
      ("C4", Graph.cycle 4, true);
      ("triangle+apex", Graph.make ~vertices:4
         ~edges:[ (0, 1); (1, 2); (0, 2); (0, 3); (1, 3); (2, 3) ], false);
      ("empty", Graph.make ~vertices:2 ~edges:[], true);
      ("self-loop", Graph.make ~vertices:2 ~edges:[ (0, 0) ], false);
    ]
  in
  List.iter
    (fun (name, g, expected) ->
      check_bool name expected (Three_col.colorable_via_certain g))
    cases

let test_three_col_witness_extraction () =
  (* Small graph: the witness search enumerates all |C|^|C| mappings. *)
  let g = Graph.cycle 3 in
  let db = Three_col.database g in
  (* Find a countermodel mapping and extract a coloring from it. *)
  let witness =
    Seq.find_map
      (fun h ->
        if Eval.satisfies (Mapping.image_db h) (Query.body Three_col.query)
        then None
        else Three_col.coloring_of_mapping g h)
      (Mapping.all_respecting db)
  in
  match witness with
  | None -> Alcotest.fail "expected a coloring witness"
  | Some coloring ->
    check_bool "extracted coloring proper" true
      (Graph.is_proper_coloring g coloring)

let three_col_agrees_with_solver =
  QCheck2.Test.make ~count:40 ~name:"theorem 5 reduction = solver"
    ~print:(fun (n, p, seed) -> Printf.sprintf "n=%d p=%.2f seed=%d" n p seed)
    QCheck2.Gen.(
      triple (int_range 1 5) (oneofl [ 0.2; 0.5; 0.8 ]) (int_bound 1000))
    (fun (n, p, seed) ->
      let g = Graph.random ~vertices:n ~edge_probability:p ~seed in
      Three_col.colorable_via_certain g = Graph.colorable 3 g)

(* --- QBF --- *)

let qvar b i = { Qbf.block = b; index = i }
let pos b i = { Qbf.positive = true; var = qvar b i }
let neg b i = { Qbf.positive = false; var = qvar b i }

let test_qbf_eval_basics () =
  (* ∀x. x ∨ ¬x *)
  let t1 =
    Qbf.make ~blocks:[ 1 ] ~matrix:(Qbf.Or (Qbf.Lit (pos 1 1), Qbf.Lit (neg 1 1)))
  in
  check_bool "tautology" true (Qbf.eval t1);
  (* ∀x. x *)
  let t2 = Qbf.make ~blocks:[ 1 ] ~matrix:(Qbf.Lit (pos 1 1)) in
  check_bool "forall x. x" false (Qbf.eval t2);
  (* ∀x ∃y. x ↔ y  encoded as (x∧y)∨(¬x∧¬y) *)
  let t3 =
    Qbf.make ~blocks:[ 1; 1 ]
      ~matrix:
        (Qbf.Or
           ( Qbf.And (Qbf.Lit (pos 1 1), Qbf.Lit (pos 2 1)),
             Qbf.And (Qbf.Lit (neg 1 1), Qbf.Lit (neg 2 1)) ))
  in
  check_bool "forall exists iff" true (Qbf.eval t3);
  (* ∀x ∀y. x ↔ y *)
  let t4 =
    Qbf.make ~blocks:[ 2 ]
      ~matrix:
        (Qbf.Or
           ( Qbf.And (Qbf.Lit (pos 1 1), Qbf.Lit (pos 1 2)),
             Qbf.And (Qbf.Lit (neg 1 1), Qbf.Lit (neg 1 2)) ))
  in
  check_bool "forall forall iff" false (Qbf.eval t4)

let test_qbf_cnf3 () =
  let clauses = [ (pos 1 1, neg 1 1, pos 1 1) ] in
  let t = Qbf.of_cnf3 ~blocks:[ 1 ] clauses in
  check_bool "cnf tautology" true (Qbf.eval t);
  match Qbf.cnf3_clauses t with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "clause recovery failed"

let test_qbf_blocks () =
  let t = Qbf.make ~blocks:[ 1; 2; 1 ] ~matrix:(Qbf.Lit (pos 1 1)) in
  check_int "block count" 3 (Qbf.block_count t);
  check_bool "block 1 universal" true (Qbf.universal_block t 1);
  check_bool "block 2 existential" false (Qbf.universal_block t 2);
  check_bool "block 3 universal" true (Qbf.universal_block t 3)

(* --- Theorem 7 --- *)

let test_qbf_fo_fixed_cases () =
  (* ∀x (x ∨ ¬x): true. *)
  let t1 =
    Qbf.make ~blocks:[ 1 ] ~matrix:(Qbf.Or (Qbf.Lit (pos 1 1), Qbf.Lit (neg 1 1)))
  in
  check_bool "B1 tautology via reduction" true (Qbf_fo.eval_via_certain t1);
  (* ∀x. x: false. *)
  let t2 = Qbf.make ~blocks:[ 1 ] ~matrix:(Qbf.Lit (pos 1 1)) in
  check_bool "B1 contradiction via reduction" false (Qbf_fo.eval_via_certain t2);
  (* ∀x ∃y. x ↔ y: true — exercises the FO existential block. *)
  let t3 =
    Qbf.make ~blocks:[ 1; 1 ]
      ~matrix:
        (Qbf.Or
           ( Qbf.And (Qbf.Lit (pos 1 1), Qbf.Lit (pos 2 1)),
             Qbf.And (Qbf.Lit (neg 1 1), Qbf.Lit (neg 2 1)) ))
  in
  check_bool "B2 via reduction" true (Qbf_fo.eval_via_certain t3);
  (* ∀x ∃y. y ∧ ¬x: false (fails for x = true). *)
  let t4 =
    Qbf.make ~blocks:[ 1; 1 ]
      ~matrix:(Qbf.And (Qbf.Lit (pos 2 1), Qbf.Lit (neg 1 1)))
  in
  check_bool "B2 false via reduction" false (Qbf_fo.eval_via_certain t4)

let test_qbf_fo_query_shape () =
  let t =
    Qbf.make ~blocks:[ 2; 1; 1 ] ~matrix:(Qbf.Lit (pos 1 1))
  in
  let query = Qbf_fo.query t in
  check_bool "boolean" true (Query.is_boolean query);
  (* prefix ∃y₂ ∀y₃ over a quantifier-free matrix: Σ₂ *)
  Alcotest.(check (option int))
    "sigma rank" (Some 2)
    (Formula.fo_sigma_rank (Query.body query));
  let db = Qbf_fo.database t in
  check_int "constants 0,1,c1,c2" 4 (List.length (Cw_database.constants db));
  check_int "uniqueness only 0 != 1" 1
    (List.length (Cw_database.distinct_pairs db))

let qbf_fo_agrees =
  QCheck2.Test.make ~count:30 ~name:"theorem 7 reduction = direct QBF"
    ~print:(fun (b, c, s) ->
      Printf.sprintf "blocks=%s clauses=%d seed=%d"
        (String.concat "," (List.map string_of_int b))
        c s)
    QCheck2.Gen.(
      triple
        (oneofl [ [ 2 ]; [ 1; 2 ]; [ 2; 1 ]; [ 2; 2 ]; [ 1; 1; 1 ] ])
        (int_range 1 4) (int_bound 1000))
    (fun (blocks, clauses, seed) ->
      let qbf = Qbf.random_cnf3 ~blocks ~clauses ~seed in
      Qbf_fo.eval_via_certain qbf = Qbf.eval qbf)

(* --- Theorem 9 --- *)

let test_qbf_so_fixed_cases () =
  (* ∀x. x ∨ ¬x  (3-CNF with a repeated literal). *)
  let t1 = Qbf.of_cnf3 ~blocks:[ 1 ] [ (pos 1 1, neg 1 1, pos 1 1) ] in
  check_bool "B1 tautology via SO reduction" true (Qbf_so.eval_via_certain t1);
  (* ∀x. x. *)
  let t2 = Qbf.of_cnf3 ~blocks:[ 1 ] [ (pos 1 1, pos 1 1, pos 1 1) ] in
  check_bool "B1 contradiction via SO reduction" false
    (Qbf_so.eval_via_certain t2);
  (* ∀x ∃y. (x ∨ y) ∧ (¬x ∨ ¬y): y = ¬x works — true. *)
  let t3 =
    Qbf.of_cnf3 ~blocks:[ 1; 1 ]
      [
        (pos 1 1, pos 2 1, pos 2 1);
        (neg 1 1, neg 2 1, neg 2 1);
      ]
  in
  check_bool "B2 via SO reduction" true (Qbf_so.eval_via_certain t3);
  (* ∀x ∃y. y ∧ ¬x: false. *)
  let t4 =
    Qbf.of_cnf3 ~blocks:[ 1; 1 ]
      [
        (pos 2 1, pos 2 1, pos 2 1);
        (neg 1 1, neg 1 1, neg 1 1);
      ]
  in
  check_bool "B2 false via SO reduction" false (Qbf_so.eval_via_certain t4)

let test_qbf_so_query_shape () =
  let t =
    Qbf.of_cnf3 ~blocks:[ 1; 1; 1 ] [ (pos 1 1, pos 2 1, pos 3 1) ]
  in
  let query = Qbf_so.query t in
  check_bool "boolean" true (Query.is_boolean query);
  (* Prefix ∃N₂ ∀N₃: Σ₂ in the second-order sense. *)
  Alcotest.(check (option int))
    "SO sigma rank" (Some 2)
    (Formula.so_sigma_rank (Query.body query))

let qbf_so_agrees =
  QCheck2.Test.make ~count:15 ~name:"theorem 9 reduction = direct QBF"
    ~print:(fun (b, c, s) ->
      Printf.sprintf "blocks=%s clauses=%d seed=%d"
        (String.concat "," (List.map string_of_int b))
        c s)
    QCheck2.Gen.(
      triple
        (oneofl [ [ 1; 1 ]; [ 2; 1 ]; [ 1; 2 ] ])
        (int_range 1 3) (int_bound 1000))
    (fun (blocks, clauses, seed) ->
      let qbf = Qbf.random_cnf3 ~blocks ~clauses ~seed in
      Qbf_so.eval_via_certain qbf = Qbf.eval qbf)

(* --- deeper alternation (k = 4, 5) fixed cases --- *)

let test_qbf_fo_deep_alternation () =
  (* ∀x₁ ∃x₂ ∀x₃ ∃x₄ ((x₁↔x₂) ∧ (x₃↔x₄)): true — choose x₂ = x₁,
     x₄ = x₃. Five-block variant adds ∀x₅ . (x₅ ∨ ¬x₅). *)
  let iff_lit i j =
    Qbf.Or
      ( Qbf.And (Qbf.Lit (pos i 1), Qbf.Lit (pos j 1)),
        Qbf.And (Qbf.Lit (neg i 1), Qbf.Lit (neg j 1)) )
  in
  let b4 =
    Qbf.make ~blocks:[ 1; 1; 1; 1 ]
      ~matrix:(Qbf.And (iff_lit 1 2, iff_lit 3 4))
  in
  check_bool "B4 true" true (Qbf.eval b4);
  check_bool "B4 via reduction" true (Qbf_fo.eval_via_certain b4);
  let b4_false =
    (* ∀x₁ ∃x₂ ∀x₃ ∃x₄ ((x₁↔x₂) ∧ (x₃↔x₂)): false — x₂ is chosen
       before x₃, so it cannot track it. *)
    Qbf.make ~blocks:[ 1; 1; 1; 1 ]
      ~matrix:(Qbf.And (iff_lit 1 2, iff_lit 3 2))
  in
  check_bool "B4 false" false (Qbf.eval b4_false);
  check_bool "B4 false via reduction" false (Qbf_fo.eval_via_certain b4_false);
  let b5 =
    Qbf.make ~blocks:[ 1; 1; 1; 1; 1 ]
      ~matrix:
        (Qbf.And
           ( Qbf.And (iff_lit 1 2, iff_lit 3 4),
             Qbf.Or (Qbf.Lit (pos 5 1), Qbf.Lit (neg 5 1)) ))
  in
  check_bool "B5 via reduction" true (Qbf_fo.eval_via_certain b5);
  (* The encoded query's prefix rank tracks k. *)
  Alcotest.(check (option int))
    "B5 rank" (Some 4)
    (Formula.fo_sigma_rank (Query.body (Qbf_fo.query b5)))

let test_three_col_corners () =
  (* Isolated vertices never block colorability. *)
  let g = Graph.make ~vertices:5 ~edges:[ (0, 1) ] in
  check_bool "mostly isolated" true (Three_col.colorable_via_certain g);
  (* A graph needing exactly 3 colors plus an isolated vertex. *)
  let g2 = Graph.make ~vertices:4 ~edges:[ (0, 1); (1, 2); (0, 2) ] in
  check_bool "triangle + isolated" true (Three_col.colorable_via_certain g2);
  (* Merge-first and fresh-first orders agree on both outcomes. *)
  List.iter
    (fun g ->
      check_bool "orders agree"
        (Three_col.colorable_via_certain ~order:Certain.Fresh_first g)
        (Three_col.colorable_via_certain ~order:Certain.Merge_first g))
    [ Graph.complete 4; Graph.cycle 5 ]

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "coloring solver" `Quick test_coloring_solver;
    Alcotest.test_case "coloring witness" `Quick test_coloring_witness;
    Alcotest.test_case "theorem 5 database shape" `Quick
      test_three_col_database_shape;
    Alcotest.test_case "theorem 5 known graphs" `Slow
      test_three_col_known_graphs;
    Alcotest.test_case "theorem 5 witness extraction" `Quick
      test_three_col_witness_extraction;
    Support.qcheck_case three_col_agrees_with_solver;
    Alcotest.test_case "qbf eval basics" `Quick test_qbf_eval_basics;
    Alcotest.test_case "qbf cnf3" `Quick test_qbf_cnf3;
    Alcotest.test_case "qbf blocks" `Quick test_qbf_blocks;
    Alcotest.test_case "theorem 7 fixed cases" `Quick test_qbf_fo_fixed_cases;
    Alcotest.test_case "theorem 7 query shape" `Quick test_qbf_fo_query_shape;
    Support.qcheck_case qbf_fo_agrees;
    Alcotest.test_case "deep alternation (B4/B5)" `Slow
      test_qbf_fo_deep_alternation;
    Alcotest.test_case "theorem 5 corners" `Quick test_three_col_corners;
    Alcotest.test_case "theorem 9 fixed cases" `Quick test_qbf_so_fixed_cases;
    Alcotest.test_case "theorem 9 query shape" `Quick test_qbf_so_query_shape;
    Support.qcheck_case qbf_so_agrees;
  ]
