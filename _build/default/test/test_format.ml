(* Tests for the .ldb text format. *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let db_testable = Alcotest.testable Cw_database.pp Cw_database.equal

let sample_text =
  {|# sample database
predicate TEACHES/2 WISE/1
constant mystery
fact TEACHES(socrates, plato)
fact WISE(socrates)
distinct socrates plato
|}

let test_parse_sample () =
  let db = Ldb_format.parse sample_text in
  check
    Alcotest.(list string)
    "constants (explicit + implicit)"
    [ "mystery"; "plato"; "socrates" ]
    (Cw_database.constants db);
  check_int "facts" 2 (List.length (Cw_database.facts db));
  check_bool "distinct" true (Cw_database.are_distinct db "plato" "socrates")

let test_fully_specified_directive () =
  let db = Ldb_format.parse "constant a b c\nfully_specified\n" in
  check_bool "closed" true (Cw_database.is_fully_specified db);
  check_int "all pairs" 3 (List.length (Cw_database.distinct_pairs db))

let test_zero_ary_fact () =
  let db = Ldb_format.parse "predicate FLAG/0\nconstant a\nfact FLAG()\n" in
  check_int "one fact" 1 (List.length (Cw_database.facts db))

let test_syntax_errors () =
  let expect_error text =
    match Ldb_format.parse text with
    | exception Ldb_format.Syntax_error _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" text)
  in
  expect_error "predicate P\n";
  expect_error "predicate P/x\n";
  expect_error "fact P(a\n";
  expect_error "distinct a\n";
  expect_error "distinct a b c\n";
  expect_error "bogus directive\n";
  (* semantic: undeclared predicate arity *)
  expect_error "predicate P/2\nfact P(a)\n"

let test_error_line_numbers () =
  match Ldb_format.parse "constant a\n\n# fine\ndistinct a\n" with
  | exception Ldb_format.Syntax_error (4, _) -> ()
  | exception Ldb_format.Syntax_error (n, _) ->
    Alcotest.failf "wrong line: %d" n
  | _ -> Alcotest.fail "expected a syntax error"

let test_roundtrip_fixtures () =
  List.iter
    (fun db ->
      check db_testable "print/parse round-trip" db
        (Ldb_format.parse (Ldb_format.print db)))
    [
      Support.socrates_db ();
      Support.personnel_db ();
      Support.ripper_db ();
    ]

let roundtrip_random =
  QCheck2.Test.make ~count:150 ~name:"ldb print/parse round-trip"
    ~print:Support.print_db Support.gen_cw_database
    (fun db -> Cw_database.equal db (Ldb_format.parse (Ldb_format.print db)))

let test_file_io () =
  let path = Filename.temp_file "logicaldb" ".ldb" in
  let db = Support.socrates_db () in
  Ldb_format.save path db;
  let loaded = Ldb_format.load path in
  Sys.remove path;
  check db_testable "save/load" db loaded

let suite =
  [
    Alcotest.test_case "parse sample" `Quick test_parse_sample;
    Alcotest.test_case "fully_specified directive" `Quick
      test_fully_specified_directive;
    Alcotest.test_case "zero-ary facts" `Quick test_zero_ary_fact;
    Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
    Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
    Alcotest.test_case "fixture round-trips" `Quick test_roundtrip_fixtures;
    Support.qcheck_case roundtrip_random;
    Alcotest.test_case "file io" `Quick test_file_io;
  ]
