(* Tests for the Theorem 3 precise simulation: Q(LB) = Q′(Ph₂(LB)),
   on deliberately tiny databases (the construction quantifies over
   all binary relations on the domain). *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)

(* Two constants, one unary predicate, no uniqueness axioms: the
   smallest database with a genuine unknown. *)
let tiny_open () =
  database ~predicates:[ ("P", 1) ] ~constants:[ "a"; "b" ]
    ~facts:[ ("P", [ "a" ]) ]
    ()

let tiny_closed () = Cw_database.fully_specify (tiny_open ())

let q s = Parser.query s

let test_query_construction () =
  let db = tiny_open () in
  let q' =
    Precise_simulation.query' (Cw_database.vocabulary db) (q "(x). P(x)")
  in
  check Alcotest.int "head arity preserved" 1 (Query.arity q');
  check_bool "second order" true (not (Query.is_first_order q'));
  (* The quantifier prefix is universal second-order. *)
  (match Query.body q' with
  | Formula.Forall2 (h, 2, Formula.Forall2 (_, 1, _)) ->
    check Alcotest.string "H quantified first" (Precise_simulation.prefix ^ "H") h
  | _ -> Alcotest.fail "unexpected prefix shape");
  (* Rejects queries already mentioning sim$ atoms. *)
  (match
     Precise_simulation.query' (Cw_database.vocabulary db)
       (Query.boolean (Formula.Atom (Precise_simulation.prefix ^ "H", [])))
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let queries_to_check =
  [
    "(x). P(x)";
    "(x). ~P(x)";
    "(). exists x. P(x)";
    "(). forall x. P(x)";
    "(). P(b) \\/ ~P(b)";
    "(x). x = a";
    "(x). x != a";
    "(). a != b";
  ]

let agree_on db name =
  List.iter
    (fun qs ->
      let query = q qs in
      let exact = Certain.answer db query in
      let simulated = Precise_simulation.answer db query in
      check Support.relation_testable
        (Printf.sprintf "%s: %s" name qs)
        exact simulated)
    queries_to_check

let test_theorem3_open () = agree_on (tiny_open ()) "open"
let test_theorem3_closed () = agree_on (tiny_closed ()) "closed"

(* A 3-constant instance with a binary predicate — the largest size
   that stays fast (H ranges over 2^9 relations). *)
let test_theorem3_binary () =
  let db =
    database
      ~predicates:[ ("R", 2) ]
      ~constants:[ "a"; "b"; "c" ]
      ~facts:[ ("R", [ "a"; "b" ]) ]
      ~distinct:[ ("a", "b") ]
      ()
  in
  List.iter
    (fun qs ->
      let query = q qs in
      check Support.relation_testable qs (Certain.answer db query)
        (Precise_simulation.answer db query))
    [ "(). exists x. R(x, b)"; "(). ~R(b, a)"; "(). R(c, b)" ]

let suite =
  [
    Alcotest.test_case "construction shape" `Quick test_query_construction;
    Alcotest.test_case "theorem 3 (open db)" `Slow test_theorem3_open;
    Alcotest.test_case "theorem 3 (fully specified db)" `Slow
      test_theorem3_closed;
    Alcotest.test_case "theorem 3 (binary predicate)" `Slow
      test_theorem3_binary;
  ]
