(* Tests for countermodel explanations and Monte-Carlo refutation. *)

open Logicaldb

let check_bool = Alcotest.(check bool)

let socrates = Support.socrates_db ()
let q s = Parser.query s

(* --- Explain --- *)

let test_explain_certain () =
  match Explain.boolean socrates (q "(). TEACHES(socrates, plato)") with
  | Explain.Certain -> ()
  | Explain.Refuted_by p ->
    Alcotest.failf "unexpected refutation: %a" Partition.pp p

let test_explain_refutation_is_genuine () =
  (* ~TEACHES(mystery, plato) fails exactly when mystery merges with
     socrates; the returned partition must actually refute. *)
  let query = q "(). ~TEACHES(mystery, plato)" in
  match Explain.boolean socrates query with
  | Explain.Certain -> Alcotest.fail "expected a refutation"
  | Explain.Refuted_by p ->
    check_bool "countermodel really refutes" false
      (Eval.satisfies (Partition.quotient p) (Query.body query));
    check_bool "countermodel merges mystery and socrates" true
      (String.equal
         (Partition.representative p "mystery")
         (Partition.representative p "socrates"))

let test_explain_member () =
  let teaches = q "(x). exists y. TEACHES(x, y)" in
  (match Explain.member socrates teaches [ "socrates" ] with
  | Explain.Certain -> ()
  | Explain.Refuted_by _ -> Alcotest.fail "socrates certainly teaches");
  match Explain.member socrates teaches [ "mystery" ] with
  | Explain.Certain -> Alcotest.fail "mystery does not certainly teach"
  | Explain.Refuted_by p ->
    (* In that world, mystery's image must not teach. *)
    check_bool "refuting world" false
      (Eval.member (Partition.quotient p) teaches
         [ Partition.representative p "mystery" ])

(* Explain agrees with the engine verdict. *)
let explain_agrees_with_engine =
  QCheck2.Test.make ~count:120 ~name:"explain = certain_boolean"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let query = Query.boolean sentence in
      let verdict = Explain.boolean db query in
      let certain = Certain.certain_boolean db query in
      match verdict with
      | Explain.Certain -> certain
      | Explain.Refuted_by p ->
        (not certain)
        && not (Eval.satisfies (Partition.quotient p) sentence))

(* --- Sampling --- *)

let test_sampling_refutes_open_negation () =
  (* With enough samples the merged world always shows up for this tiny
     database (3 constants). *)
  check_bool "refuted" true
    (Sampling.boolean ~samples:64 ~seed:7 socrates
       (q "(). ~TEACHES(mystery, plato)")
    = Sampling.Not_certain)

let test_sampling_never_refutes_certain () =
  check_bool "no false refutation" true
    (Sampling.boolean ~samples:64 ~seed:7 socrates
       (q "(). TEACHES(socrates, plato)")
    = Sampling.Probably_certain)

(* Completeness (one-sidedness): Not_certain implies really not
   certain. *)
let sampling_refutations_sound =
  QCheck2.Test.make ~count:120 ~name:"sampling refutations are genuine"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let query = Query.boolean sentence in
      match Sampling.boolean ~samples:8 ~seed:11 db query with
      | Sampling.Not_certain -> not (Certain.certain_boolean db query)
      | Sampling.Probably_certain -> true)

(* Certain sentences always survive sampling. *)
let sampling_passes_certain =
  QCheck2.Test.make ~count:120 ~name:"certain sentences survive sampling"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let query = Query.boolean sentence in
      QCheck2.assume (Certain.certain_boolean db query);
      Sampling.boolean ~samples:16 ~seed:3 db query
      = Sampling.Probably_certain)

(* Random partitions are valid (never merge a distinct pair). *)
let random_partitions_valid =
  QCheck2.Test.make ~count:150 ~name:"sampled partitions respect axioms"
    ~print:Support.print_db Support.gen_cw_database
    (fun db ->
      let state = Random.State.make [| 99 |] in
      List.for_all
        (fun _ ->
          let p = Sampling.random_partition ~state db in
          List.for_all
            (fun (c, d) ->
              not
                (String.equal
                   (Partition.representative p c)
                   (Partition.representative p d)))
            (Cw_database.distinct_pairs db))
        (List.init 10 Fun.id))

let suite =
  [
    Alcotest.test_case "explain certain" `Quick test_explain_certain;
    Alcotest.test_case "explain refutation" `Quick
      test_explain_refutation_is_genuine;
    Alcotest.test_case "explain member" `Quick test_explain_member;
    Support.qcheck_case explain_agrees_with_engine;
    Alcotest.test_case "sampling refutes open negation" `Quick
      test_sampling_refutes_open_negation;
    Alcotest.test_case "sampling spares certain facts" `Quick
      test_sampling_never_refutes_certain;
    Support.qcheck_case sampling_refutations_sound;
    Support.qcheck_case sampling_passes_certain;
    Support.qcheck_case random_partitions_valid;
  ]
