(* Tests for the Section 5 approximation algorithm: translation,
   Lemma 10, and the Theorem 11/12/13 guarantees. *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)

let socrates = Support.socrates_db ()
let personnel = Support.personnel_db ()
let q s = Parser.query s

(* --- disagreement (Lemma 10 semantics) --- *)

let test_disagree_basics () =
  (* (plato) vs (socrates): connected (positionwise), axiom says
     distinct → disagree. *)
  check_bool "distinct pair disagrees" true
    (Disagree.tuples socrates [ "plato" ] [ "socrates" ]);
  (* (mystery) vs (socrates): no axiom separates them. *)
  check_bool "open pair agrees" false
    (Disagree.tuples socrates [ "mystery" ] [ "socrates" ]);
  check_bool "identical tuples agree" false
    (Disagree.tuples socrates [ "plato" ] [ "plato" ])

let test_disagree_transitive_chain () =
  (* Positions chain constants: c=(a, b), d=(b, c) puts a, b, c in one
     component; with ¬(a = c) they disagree even though no position
     holds the pair (a, c) directly. *)
  let db =
    database ~constants:[ "a"; "b"; "c" ] ~distinct:[ ("a", "c") ] ()
  in
  check_bool "chained disagreement" true
    (Disagree.tuples db [ "a"; "b" ] [ "b"; "c" ]);
  (* Without the axiom there is no disagreement. *)
  let db0 = database ~constants:[ "a"; "b"; "c" ] () in
  check_bool "no axiom, no disagreement" false
    (Disagree.tuples db0 [ "a"; "b" ] [ "b"; "c" ])

let test_alpha_holds () =
  (* α_TEACHES(plato, plato): the only fact is (socrates, plato);
     tuples (plato,plato) vs (socrates,plato) — components {plato,
     socrates} via position 1... positions: plato~socrates, plato~plato.
     ¬(socrates = plato) ∈ T → disagree → α holds. *)
  check_bool "provably absent" true
    (Disagree.alpha_holds socrates "TEACHES" [ "plato"; "plato" ]);
  check_bool "not provably absent (unknown)" false
    (Disagree.alpha_holds socrates "TEACHES" [ "mystery"; "plato" ]);
  check_bool "present fact not alpha" false
    (Disagree.alpha_holds socrates "TEACHES" [ "socrates"; "plato" ])

(* Semantic disagreement really is unsatisfiability of
   Unique(T) ∧ c = d: cross-check against the partition engine —
   c and d disagree iff no valid partition merges them positionwise. *)
let disagree_is_unsat =
  QCheck2.Test.make ~count:80 ~name:"disagree = no merging partition"
    ~print:Support.print_db Support.gen_cw_database
    (fun db ->
      let constants = Cw_database.constants db in
      List.for_all
        (fun c1 ->
          List.for_all
            (fun c2 ->
              List.for_all
                (fun d1 ->
                  List.for_all
                    (fun d2 ->
                      let disagree =
                        Disagree.tuples db [ c1; c2 ] [ d1; d2 ]
                      in
                      let mergeable =
                        Seq.exists
                          (fun p ->
                            String.equal
                              (Partition.representative p c1)
                              (Partition.representative p d1)
                            && String.equal
                                 (Partition.representative p c2)
                                 (Partition.representative p d2))
                          (Partition.all_valid db)
                      in
                      disagree = not mergeable)
                    constants)
                constants)
            constants)
        constants)

(* --- the syntactic α formula --- *)

let test_alpha_formula_agrees_semantics () =
  (* Evaluate the Lemma-10 formula on Ph₂ and compare with the
     union-find oracle, on every pair for TEACHES. *)
  let ph2 = Ph.ph2 socrates in
  let constants = Cw_database.constants socrates in
  List.iter
    (fun c1 ->
      List.iter
        (fun c2 ->
          let syntactic =
            Eval.holds ph2
              [ (Alpha.free_var 1, c1); (Alpha.free_var 2, c2) ]
              (Alpha.formula ~pred:"TEACHES" ~arity:2)
          in
          let semantic = Disagree.alpha_holds socrates "TEACHES" [ c1; c2 ] in
          check_bool (Printf.sprintf "alpha(%s, %s)" c1 c2) semantic syntactic)
        constants)
    constants

let test_alpha_formula_size_growth () =
  (* O(k log k): the node count for arity 2k is well under 4x the node
     count for arity k once k is large enough. *)
  let size k = Formula.size (Alpha.formula ~pred:"P" ~arity:k) in
  let s4 = size 4 and s8 = size 8 and s16 = size 16 in
  check_bool "growth 4->8 below quadratic" true (s8 < 4 * s4);
  check_bool "growth 8->16 below quadratic" true (s16 < 4 * s8)

let test_connectivity_formula () =
  (* Connectivity on a concrete little graph, via a database whose E
     relation is the edge set. *)
  let v =
    Vocabulary.make ~constants:[ "a"; "b"; "c"; "d" ] ~predicates:[ ("E", 2) ]
  in
  let edge_rel =
    Relation.of_tuples 2 [ [ "a"; "b" ]; [ "b"; "c" ] ]
  in
  let db =
    Database.make ~vocabulary:v ~domain:[ "a"; "b"; "c"; "d" ]
      ~constants:(List.map (fun c -> (c, c)) [ "a"; "b"; "c"; "d" ])
      ~relations:[ ("E", edge_rel) ]
  in
  let edge u v =
    Formula.Or (Formula.Atom ("E", [ u; v ]), Formula.Atom ("E", [ v; u ]))
  in
  let connected x y =
    let f =
      Alpha.connectivity ~nodes:4 (Term.var "s", Term.var "t") ~edge
    in
    Eval.holds db [ ("s", x); ("t", y) ] f
  in
  check_bool "path a-c" true (connected "a" "c");
  check_bool "reflexive" true (connected "d" "d");
  check_bool "disconnected" false (connected "a" "d")

(* --- the translation --- *)

let test_translate_shapes () =
  let f = Parser.formula "~(socrates = plato)" in
  check Support.formula_testable "inequality becomes NE"
    (Formula.Atom (Ph.ne_predicate, [ Term.const "socrates"; Term.const "plato" ]))
    (Translate.formula Translate.Semantic f);
  let g = Parser.formula ~free_vars:[ "x" ] "~P(x)" in
  check Support.formula_testable "negated atom becomes alpha$"
    (Formula.Atom (Disagree.alpha_predicate "P", [ Term.var "x" ]))
    (Translate.formula Translate.Semantic g)

let test_translate_positive_untouched () =
  let f = Parser.formula "exists x. TEACHES(x, plato) /\\ x = socrates" in
  check Support.formula_testable "positive fixed point" f
    (Translate.formula Translate.Semantic f);
  check Support.formula_testable "positive fixed point (syntactic)" f
    (Translate.formula Translate.Syntactic f)

let test_translate_so_restriction () =
  let f =
    Formula.Exists2 ("Q", 1, Formula.Not (Formula.Atom ("Q", [ Term.const "a" ])))
  in
  (match Translate.formula Translate.Semantic f with
  | exception Translate.Unsupported _ -> ()
  | _ -> Alcotest.fail "semantic mode must reject negated SO atoms");
  (* Syntactic mode accepts it. *)
  ignore (Translate.formula Translate.Syntactic f)

(* --- end-to-end approximation --- *)

let test_approx_examples () =
  check_bool "positive fact" true
    (Approx.boolean socrates (q "(). TEACHES(socrates, plato)"));
  check_bool "provable negation recovered" true
    (Approx.boolean socrates (q "(). ~TEACHES(plato, plato)"));
  check_bool "open negation rejected" false
    (Approx.boolean socrates (q "(). ~TEACHES(mystery, plato)"));
  check_bool "NE from axiom" true
    (Approx.boolean socrates (q "(). socrates != plato"));
  check_bool "open inequality rejected" false
    (Approx.boolean socrates (q "(). mystery != plato"))

(* The paper's motivating incompleteness: approximation may miss
   certain answers on non-positive queries over unknowns. Disjunction
   of complementary unknowns is the classic case. *)
let test_approx_incompleteness_witness () =
  let db =
    database
      ~predicates:[ ("P", 1) ]
      ~constants:[ "a"; "b" ]
      ~facts:[ ("P", [ "a" ]) ]
      ()
  in
  (* P(b) ∨ ¬P(b): certainly true (tautology), but the approximation
     evaluates P(b) = false on Ph₂ and α_P(b) = false (b might equal a),
     so it answers false — sound, not complete. *)
  let tautology = q "(). P(b) \\/ ~P(b)" in
  check_bool "exact says true" true (Certain.certain_boolean db tautology);
  check_bool "approximation misses it" false (Approx.boolean db tautology)

(* Theorem 11: soundness, on random database/query pairs, all three
   modes/backends. *)
let soundness_property mode backend name =
  QCheck2.Test.make ~count:120 ~name ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      Relation.subset
        (Approx.answer ~mode ~backend db query)
        (Certain.answer db query))

let soundness_semantic_direct =
  soundness_property Translate.Semantic Approx.Direct
    "soundness (semantic, direct)"

let soundness_syntactic_direct =
  soundness_property Translate.Syntactic Approx.Direct
    "soundness (syntactic, direct)"

let soundness_semantic_algebra =
  soundness_property Translate.Semantic Approx.Algebra
    "soundness (semantic, algebra)"

(* Theorem 12: completeness on fully specified databases. *)
let completeness_fully_specified =
  QCheck2.Test.make ~count:100 ~name:"theorem 12 (fully specified)"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      let full = Cw_database.fully_specify db in
      Relation.equal (Approx.answer full query) (Certain.answer full query))

(* Theorem 13: completeness on positive queries. *)
let completeness_positive =
  QCheck2.Test.make ~count:150 ~name:"theorem 13 (positive queries)"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      QCheck2.assume (Query.is_positive query);
      Relation.equal (Approx.answer db query) (Certain.answer db query))

(* Every practical mode × backend combination computes the same
   answers. The Syntactic × Algebra combination is excluded here: the
   Lemma-10 subformulas carry ~10 nested quantifiers, and the
   active-domain compiler materializes D^k per quantifier depth — the
   blow-up Theorem 14 avoids by treating α_P as a virtual atom (see
   the note in Evaluate's interface). A fixed-instance check below
   keeps that path correct without the random-instance cost. *)
let modes_agree =
  QCheck2.Test.make ~count:100 ~name:"modes and backends agree"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      let reference = Approx.answer ~mode:Translate.Semantic db query in
      List.for_all
        (fun (mode, backend) ->
          Relation.equal reference (Approx.answer ~mode ~backend db query))
        [
          (Translate.Semantic, Approx.Algebra);
          (Translate.Semantic, Approx.Algebra_optimized);
          (Translate.Syntactic, Approx.Direct);
        ])

let test_syntactic_algebra_fixed () =
  (* Smallest meaningful instance: 2 constants keep the α-formula's
     quantifier tower cheap to materialize. *)
  let db =
    database ~predicates:[ ("P", 1) ] ~constants:[ "a"; "b" ]
      ~facts:[ ("P", [ "a" ]) ]
      ()
  in
  let q = Parser.query "(x). ~P(x)" in
  let reference = Approx.answer db q in
  List.iter
    (fun backend ->
      check Support.relation_testable "syntactic algebra" reference
        (Approx.answer ~mode:Translate.Syntactic ~backend db q))
    [ Approx.Algebra; Approx.Algebra_optimized ]

(* --- the naive-tables baseline (E11's claims as unit/property tests) --- *)

let test_naive_tables_unsound_witness () =
  (* Naive evaluation treats "mystery" as a fresh value, so it accepts
     ~TEACHES(mystery, plato) — which is not certain. *)
  let q = Parser.query "(). ~TEACHES(mystery, plato)" in
  check_bool "naive accepts" true (Naive_tables.boolean socrates q);
  check_bool "but not certain" false (Certain.certain_boolean socrates q);
  check_bool "approximation stays sound" false (Approx.boolean socrates q)

let naive_tables_positive_exact =
  QCheck2.Test.make ~count:150 ~name:"naive tables exact on positive queries"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      QCheck2.assume (Query.is_positive query);
      Relation.equal (Naive_tables.answer db query) (Certain.answer db query))

let naive_tables_contains_certain =
  (* Naive evaluation errs only on the side of unsound extras: Ph1 is
     itself a model of T, so a certain tuple satisfies the query there
     too — certain ⊆ naive always. *)
  QCheck2.Test.make ~count:150 ~name:"certain ⊆ naive (Ph1 is a model)"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      Relation.subset (Certain.answer db query) (Naive_tables.answer db query))

let test_completeness_certificates () =
  check_bool "personnel fully specified" true
    (Approx.completeness personnel (q "(x). ~(exists y. EMP_DEPT(x, y))")
     = Approx.Complete_fully_specified);
  check_bool "positive query" true
    (Approx.completeness socrates (q "(x). exists y. TEACHES(x, y)")
     = Approx.Complete_positive);
  check_bool "sound only" true
    (Approx.completeness socrates (q "(x). ~TEACHES(x, plato)")
     = Approx.Sound_only)

let suite =
  [
    Alcotest.test_case "disagree basics" `Quick test_disagree_basics;
    Alcotest.test_case "disagree chains" `Quick test_disagree_transitive_chain;
    Alcotest.test_case "alpha oracle" `Quick test_alpha_holds;
    Support.qcheck_case disagree_is_unsat;
    Alcotest.test_case "alpha formula = oracle" `Quick
      test_alpha_formula_agrees_semantics;
    Alcotest.test_case "alpha formula size" `Quick test_alpha_formula_size_growth;
    Alcotest.test_case "connectivity formula" `Quick test_connectivity_formula;
    Alcotest.test_case "translate shapes" `Quick test_translate_shapes;
    Alcotest.test_case "positive untouched" `Quick
      test_translate_positive_untouched;
    Alcotest.test_case "SO restriction" `Quick test_translate_so_restriction;
    Alcotest.test_case "approx examples" `Quick test_approx_examples;
    Alcotest.test_case "incompleteness witness" `Quick
      test_approx_incompleteness_witness;
    Support.qcheck_case soundness_semantic_direct;
    Support.qcheck_case soundness_syntactic_direct;
    Support.qcheck_case soundness_semantic_algebra;
    Support.qcheck_case completeness_fully_specified;
    Support.qcheck_case completeness_positive;
    Support.qcheck_case modes_agree;
    Alcotest.test_case "syntactic algebra (fixed)" `Quick
      test_syntactic_algebra_fixed;
    Alcotest.test_case "naive tables unsound" `Quick
      test_naive_tables_unsound_witness;
    Support.qcheck_case naive_tables_positive_exact;
    Support.qcheck_case naive_tables_contains_certain;
    Alcotest.test_case "completeness certificates" `Quick
      test_completeness_certificates;
  ]
