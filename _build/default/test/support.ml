(* Shared helpers and QCheck generators for the test suites. *)

open Logicaldb

let relation_testable =
  Alcotest.testable Relation.pp Relation.equal

let formula_testable =
  Alcotest.testable Pretty.pp_formula Formula.equal

let query_testable = Alcotest.testable Pretty.pp_query Query.equal

(* ------------------------------------------------------------------ *)
(* Paper-flavoured fixture databases.                                  *)

(* The Socrates database: one unknown identity ("mystery" could be
   socrates or plato — no uniqueness axiom separates it). *)
let socrates_db () =
  database
    ~predicates:[ ("TEACHES", 2) ]
    ~constants:[ "socrates"; "plato"; "mystery" ]
    ~facts:[ ("TEACHES", [ "socrates"; "plato" ]) ]
    ~distinct:[ ("socrates", "plato") ]
    ()

(* A fully specified personnel database. *)
let personnel_db () =
  database
    ~predicates:[ ("EMP_DEPT", 2); ("DEPT_MGR", 2) ]
    ~facts:
      [
        ("EMP_DEPT", [ "john"; "toys" ]);
        ("EMP_DEPT", [ "mary"; "books" ]);
        ("DEPT_MGR", [ "toys"; "sue" ]);
        ("DEPT_MGR", [ "books"; "sue" ]);
      ]
    ()
  |> Cw_database.fully_specify

(* The Jack-the-Ripper database from the paper's Section 2.2: two
   names whose identity is unresolved. *)
let ripper_db () =
  database
    ~predicates:[ ("MURDERER", 1); ("POLITICIAN", 1) ]
    ~constants:[ "jack_the_ripper"; "disraeli"; "victoria" ]
    ~facts:
      [ ("MURDERER", [ "jack_the_ripper" ]); ("POLITICIAN", [ "disraeli" ]) ]
    ~distinct:[ ("disraeli", "victoria"); ("jack_the_ripper", "victoria") ]
    ()

(* ------------------------------------------------------------------ *)
(* Random generation for property tests. All sizes are kept tiny so
   the naive reference engines stay fast.                              *)

let gen_constant_pool =
  QCheck2.Gen.oneofl [ [ "a"; "b" ]; [ "a"; "b"; "c" ]; [ "a"; "b"; "c"; "d" ] ]

(* A random CW database over constants from the pool, predicates P/1
   and R/2, random facts and a random consistent set of uniqueness
   axioms. *)
let gen_cw_database : Cw_database.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* constants = gen_constant_pool in
  let pick = oneofl constants in
  let* unary_facts = list_size (int_bound 3) (map (fun c -> ("P", [ c ])) pick) in
  let* binary_facts =
    list_size (int_bound 4)
      (map2 (fun c d -> ("R", [ c; d ])) pick pick)
  in
  let all_pairs =
    let rec go = function
      | [] -> []
      | c :: rest -> List.map (fun d -> (c, d)) rest @ go rest
    in
    go constants
  in
  let* distinct =
    (* Independently keep each pair with probability 1/2. *)
    List.fold_left
      (fun acc pair ->
        let* acc = acc in
        let* keep = bool in
        return (if keep then pair :: acc else acc))
      (return []) all_pairs
  in
  return
    (database ~predicates:[ ("P", 1); ("R", 2) ] ~constants
       ~facts:(unary_facts @ binary_facts)
       ~distinct ())

(* Random first-order formulas over P/1, R/2, variables drawn from
   [vars], constants from [consts]. Depth-bounded. *)
let gen_formula ~vars ~consts : Formula.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let gen_term =
    oneof
      [
        map Term.var (oneofl vars);
        map Term.const (oneofl consts);
      ]
  in
  let gen_atom =
    oneof
      [
        map (fun t -> Formula.Atom ("P", [ t ])) gen_term;
        map2 (fun s t -> Formula.Atom ("R", [ s; t ])) gen_term gen_term;
        map2 (fun s t -> Formula.Eq (s, t)) gen_term gen_term;
      ]
  in
  let gen_var = oneofl vars in
  fix
    (fun self depth ->
      if depth = 0 then gen_atom
      else
        frequency
          [
            (2, gen_atom);
            (2, map2 (fun a b -> Formula.And (a, b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> Formula.Or (a, b)) (self (depth - 1)) (self (depth - 1)));
            (2, map (fun a -> Formula.Not a) (self (depth - 1)));
            (1, map2 (fun a b -> Formula.Implies (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Formula.Iff (a, b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun x a -> Formula.Exists (x, a)) gen_var (self (depth - 1)));
            (2, map2 (fun x a -> Formula.Forall (x, a)) gen_var (self (depth - 1)));
          ])
    3

(* A random sentence (no free variables): quantify away whatever is
   free. *)
let gen_sentence ~consts : Formula.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let vars = [ "x"; "y"; "z" ] in
  let* f = gen_formula ~vars ~consts in
  let* close_universally = bool in
  let close x g =
    if close_universally then Formula.Forall (x, g) else Formula.Exists (x, g)
  in
  return (List.fold_right close (Formula.free_vars f) f)

(* A random query with the given head size. *)
let gen_query ~arity ~consts : Query.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let head = List.init arity (Printf.sprintf "q%d") in
  let vars = head @ [ "x"; "y" ] in
  let* f = gen_formula ~vars ~consts in
  let bound =
    List.filter (fun v -> not (List.mem v head)) (Formula.free_vars f)
  in
  let closed = List.fold_right (fun x g -> Formula.Exists (x, g)) bound f in
  return (Query.make head closed)

(* A random database/query pair sharing a constant pool. *)
let gen_db_and_query ~arity : (Cw_database.t * Query.t) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* db = gen_cw_database in
  let consts = Cw_database.constants db in
  let* q = gen_query ~arity ~consts in
  return (db, q)

let gen_db_and_sentence : (Cw_database.t * Formula.t) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* db = gen_cw_database in
  let* s = gen_sentence ~consts:(Cw_database.constants db) in
  return (db, s)

(* Printers for counterexample reporting. *)
let print_db db = Fmt.str "%a" Cw_database.pp db
let print_formula f = Pretty.formula_to_string f
let print_query q = Pretty.query_to_string q

let print_db_query (db, q) =
  Printf.sprintf "%s\nquery: %s" (print_db db) (print_query q)

let print_db_sentence (db, s) =
  Printf.sprintf "%s\nsentence: %s" (print_db db) (print_formula s)

(* Wrap a QCheck2 test as an alcotest case. *)
let qcheck_case test = QCheck_alcotest.to_alcotest test
