(* Tests for the typed layer (Reiter's extended relational theories
   with types, which the paper omits "for simplicity"). *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)

(* A university database: people enroll in courses; the instructor of
   databases is recorded under a placeholder whose identity is open
   between the known staff. *)
let vocabulary () =
  Ty_vocabulary.make
    ~types:[ "person"; "course" ]
    ~constants:
      [
        ("alice", "person");
        ("bob", "person");
        ("db_teacher", "person");
        ("databases", "course");
        ("logic", "course");
      ]
    ~predicates:
      [ ("ENROLLED", [ "person"; "course" ]); ("TEACHES", [ "person"; "course" ]) ]

let db () =
  Ty_database.make ~vocabulary:(vocabulary ())
    ~facts:
      [
        ("ENROLLED", [ "alice"; "databases" ]);
        ("ENROLLED", [ "bob"; "logic" ]);
        ("TEACHES", [ "db_teacher"; "databases" ]);
      ]
      (* alice and bob are known distinct; the teacher placeholder may
         be alice or bob (or neither). *)
    ~distinct:[ ("alice", "bob") ]

let tvar = Term.var
let tconst = Term.const

(* --- vocabulary validation --- *)

let test_vocabulary_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Ty_vocabulary.make ~types:[ "t" ] ~constants:[ ("c", "nope") ]
        ~predicates:[]);
  expect_invalid (fun () ->
      Ty_vocabulary.make ~types:[ "t" ] ~constants:[]
        ~predicates:[ ("P", [ "nope" ]) ]);
  expect_invalid (fun () ->
      (* conflicting redeclaration *)
      Ty_vocabulary.make ~types:[ "s"; "t" ]
        ~constants:[ ("c", "t"); ("c", "s") ]
        ~predicates:[]);
  expect_invalid (fun () ->
      (* reserved prefix *)
      Ty_vocabulary.make ~types:[ "ty$bad" ] ~constants:[] ~predicates:[]);
  (* consistent redeclaration is fine *)
  ignore
    (Ty_vocabulary.make ~types:[ "t" ]
       ~constants:[ ("c", "t"); ("c", "t") ]
       ~predicates:[]);
  check
    Alcotest.(list string)
    "constants of type" [ "alice"; "bob"; "db_teacher" ]
    (Ty_vocabulary.constants_of_type (vocabulary ()) "person")

let test_database_validation () =
  let v = vocabulary () in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  (* wrong argument type *)
  expect_invalid (fun () ->
      Ty_database.make ~vocabulary:v
        ~facts:[ ("ENROLLED", [ "databases"; "alice" ]) ]
        ~distinct:[]);
  (* wrong arity *)
  expect_invalid (fun () ->
      Ty_database.make ~vocabulary:v ~facts:[ ("ENROLLED", [ "alice" ]) ]
        ~distinct:[]);
  (* cross-type distinct pairs are tolerated (and dropped as redundant) *)
  let db =
    Ty_database.make ~vocabulary:v ~facts:[]
      ~distinct:[ ("alice", "databases") ]
  in
  check_bool "cross-type pair dropped" false
    (Ty_database.is_fully_specified db)

(* --- typechecking --- *)

let test_typecheck () =
  let v = vocabulary () in
  let ok f = Ty_formula.typecheck v ~env:[] f in
  let bad f =
    match Ty_formula.typecheck v ~env:[] f with
    | exception Ty_formula.Type_error _ -> ()
    | () -> Alcotest.fail "expected Type_error"
  in
  ok
    (Ty_formula.Exists
       ( "x",
         "person",
         Ty_formula.Atom ("ENROLLED", [ tvar "x"; tconst "databases" ]) ));
  (* wrong argument type *)
  bad
    (Ty_formula.Exists
       ( "x",
         "course",
         Ty_formula.Atom ("ENROLLED", [ tvar "x"; tconst "databases" ]) ));
  (* cross-type equality *)
  bad (Ty_formula.Eq (tconst "alice", tconst "databases"));
  (* unbound variable *)
  bad (Ty_formula.Atom ("ENROLLED", [ tvar "x"; tconst "databases" ]));
  (* SO variable with signature *)
  ok
    (Ty_formula.Exists2
       ( "Q",
         [ "person" ],
         Ty_formula.Forall
           ( "x",
             "person",
             Ty_formula.Implies
               (Ty_formula.Atom ("Q", [ tvar "x" ]), Ty_formula.Atom ("Q", [ tvar "x" ]))
           ) ));
  bad
    (Ty_formula.Exists2
       ("Q", [ "person" ], Ty_formula.Atom ("Q", [ tconst "databases" ])))

(* --- elaboration semantics --- *)

let test_elaborated_database () =
  let cw = Ty_database.to_cw (db ()) in
  (* type facts present *)
  check_bool "ty$person fact" true
    (List.exists
       (fun f ->
         String.equal f.Cw_database.pred "ty$person"
         && List.equal String.equal f.args [ "alice" ])
       (Cw_database.facts cw));
  (* cross-type pairs automatically distinct *)
  check_bool "cross-type distinct" true
    (Cw_database.are_distinct cw "alice" "databases");
  (* same-type open pair stays open *)
  check_bool "same-type open" false
    (Cw_database.are_distinct cw "alice" "db_teacher")

let test_typed_queries () =
  let db = db () in
  (* Who certainly studies something? Typed quantifier over courses. *)
  let studies =
    Ty_query.make
      [ ("x", "person") ]
      (Ty_formula.Exists
         ("c", "course", Ty_formula.Atom ("ENROLLED", [ tvar "x"; Term.var "c" ])))
  in
  check Support.relation_testable "certain students"
    (Relation.of_tuples 1 [ [ "alice" ]; [ "bob" ] ])
    (Ty_query.certain_answer db studies);
  (* Quantify over persons only: every person is enrolled or teaches?
     Not certain — db_teacher's enrollment is unknown... actually
     db_teacher teaches. Check a true universal. *)
  let all_busy =
    Ty_query.boolean
      (Ty_formula.Forall
         ( "p",
           "person",
           Ty_formula.Or
             ( Ty_formula.Exists
                 ( "c",
                   "course",
                   Ty_formula.Atom ("ENROLLED", [ tvar "p"; tvar "c" ]) ),
               Ty_formula.Exists
                 ( "c",
                   "course",
                   Ty_formula.Atom ("TEACHES", [ tvar "p"; tvar "c" ]) ) ) ))
  in
  check_bool "everyone busy (certain)" true (Ty_query.certain_boolean db all_busy);
  (* The teacher's identity is open: not certainly alice, possibly
     alice. *)
  let teacher_is q_const =
    Ty_query.boolean (Ty_formula.Eq (tconst "db_teacher", tconst q_const))
  in
  check_bool "teacher not certainly alice" false
    (Ty_query.certain_boolean db (teacher_is "alice"));
  let not_alice =
    Ty_query.boolean
      (Ty_formula.Not (Ty_formula.Eq (tconst "db_teacher", tconst "alice")))
  in
  check_bool "possibly alice" true
    (not (Ty_query.certain_boolean db not_alice))

(* --- typed concrete syntax --- *)

let test_typed_parser () =
  let q =
    Ty_parser.query
      "(x : person). exists c : course. ENROLLED(x, c) /\\ ~TEACHES(x, c)"
  in
  check
    Alcotest.(list (pair string string))
    "typed head"
    [ ("x", "person") ]
    q.Ty_query.head;
  Ty_query.typecheck (vocabulary ()) q;
  (* Signature-carrying second-order binders. *)
  let f =
    Ty_parser.formula
      "exists2 Q : (person, course). forall x : person, c : course. Q(x, c) \
       -> ENROLLED(x, c)"
  in
  Ty_formula.typecheck (vocabulary ()) ~env:[] f;
  (* Malformed: missing type annotation. *)
  (match Ty_parser.query "(x). ENROLLED(x, databases)" with
  | exception Ty_parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "untyped head must be rejected")

let test_typed_parser_roundtrip () =
  let formulas =
    [
      "exists x : person. ENROLLED(x, databases)";
      "forall x : person, c : course. ENROLLED(x, c) -> ~TEACHES(x, c)";
      "exists2 Q : (person). forall x : person. Q(x) \\/ ~Q(x)";
      "alice != bob /\\ (TEACHES(alice, logic) <-> false)";
    ]
  in
  List.iter
    (fun text ->
      let f = Ty_parser.formula text in
      let printed = Fmt.str "%a" Ty_parser.pp_formula f in
      let reparsed = Ty_parser.formula printed in
      check_bool (Printf.sprintf "round-trip %s" text) true (f = reparsed))
    formulas;
  let q = Ty_parser.query "(x : person, c : course). ENROLLED(x, c)" in
  let printed = Fmt.str "%a" Ty_parser.pp_query q in
  check_bool "query round-trip" true (q = Ty_parser.query printed)

let test_typed_evaluation_via_parser () =
  let db = db () in
  let q =
    Ty_parser.query "(x : person). exists c : course. ENROLLED(x, c)"
  in
  check Support.relation_testable "parsed typed query evaluates"
    (Relation.of_tuples 1 [ [ "alice" ]; [ "bob" ] ])
    (Ty_query.certain_answer db q)

(* --- the .tldb format --- *)

let sample_tldb =
  {|# typed sample
type person course
constant alice bob db_teacher : person
constant databases logic : course
predicate ENROLLED(person, course)
predicate TEACHES(person, course)
fact ENROLLED(alice, databases)
fact TEACHES(db_teacher, databases)
distinct alice bob
|}

let ty_db_same a b =
  Cw_database.equal (Ty_database.to_cw a) (Ty_database.to_cw b)

let test_tldb_parse () =
  let db = Tldb_format.parse sample_tldb in
  let vocabulary = Ty_database.vocabulary db in
  check Alcotest.(list string) "types" [ "course"; "person" ]
    (Ty_vocabulary.types vocabulary);
  check Alcotest.string "constant type" "course"
    (Ty_vocabulary.constant_type vocabulary "logic");
  check_bool "same-type distinct" false (Ty_database.is_fully_specified db);
  (* unknown: db_teacher (and alice/bob are distinct from each other
     but not from db_teacher). *)
  check_bool "db_teacher unknown" true
    (List.mem "db_teacher" (Ty_database.unknown_values db))

let test_tldb_roundtrip () =
  let db = Tldb_format.parse sample_tldb in
  check_bool "print/parse round-trip" true
    (ty_db_same db (Tldb_format.parse (Tldb_format.print db)));
  let full = Ty_database.fully_specify db in
  check_bool "fully specified round-trip" true
    (ty_db_same full (Tldb_format.parse (Tldb_format.print full)))

let test_tldb_errors () =
  let expect_error text =
    match Tldb_format.parse text with
    | exception Tldb_format.Syntax_error _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" text)
  in
  expect_error "constant a b\n";                     (* missing type *)
  expect_error "type t\nconstant a : t : t\n";       (* double colon *)
  expect_error "type t\npredicate P(t\n";            (* unclosed paren *)
  expect_error "type t\nconstant a : u\n";           (* undeclared type *)
  expect_error "type t\nconstant a : t\nfact P(a)\n" (* undeclared pred *)

(* --- random typed databases for property tests --- *)

let gen_typed_db : Ty_database.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let people = [ "p0"; "p1"; "p2" ] in
  let courses = [ "c0"; "c1" ] in
  let vocabulary =
    Ty_vocabulary.make
      ~types:[ "person"; "course" ]
      ~constants:
        (List.map (fun p -> (p, "person")) people
        @ List.map (fun c -> (c, "course")) courses)
      ~predicates:[ ("LIKES", [ "person"; "course" ]); ("SMART", [ "person" ]) ]
  in
  let* likes =
    list_size (int_bound 3)
      (map2 (fun p c -> ("LIKES", [ p; c ])) (oneofl people) (oneofl courses))
  in
  let* smart = list_size (int_bound 2) (map (fun p -> ("SMART", [ p ])) (oneofl people)) in
  let all_same_type_pairs =
    let rec pairs = function
      | [] -> []
      | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
    in
    pairs people @ pairs courses
  in
  let* distinct =
    List.fold_left
      (fun acc pair ->
        let* acc = acc in
        let* keep = bool in
        return (if keep then pair :: acc else acc))
      (return []) all_same_type_pairs
  in
  return (Ty_database.make ~vocabulary ~facts:(likes @ smart) ~distinct)

let typed_queries =
  let v = Term.var in
  [
    Ty_query.make
      [ ("x", "person") ]
      (Ty_formula.Exists
         ("c", "course", Ty_formula.Atom ("LIKES", [ v "x"; v "c" ])));
    Ty_query.make
      [ ("x", "person") ]
      (Ty_formula.Not (Ty_formula.Atom ("SMART", [ v "x" ])));
    Ty_query.make
      [ ("x", "course") ]
      (Ty_formula.Forall
         ( "p",
           "person",
           Ty_formula.Implies
             ( Ty_formula.Atom ("SMART", [ v "p" ]),
               Ty_formula.Atom ("LIKES", [ v "p"; v "x" ]) ) ));
  ]

let print_typed_db db = Fmt.str "%a" Ty_database.pp db

(* Answers land inside the head's declared types. *)
let typed_answers_well_typed =
  QCheck2.Test.make ~count:100 ~name:"typed answers respect head types"
    ~print:print_typed_db gen_typed_db
    (fun db ->
      let vocabulary = Ty_database.vocabulary db in
      List.for_all
        (fun q ->
          let expected_types = List.map snd q.Ty_query.head in
          Relation.for_all
            (fun tuple ->
              List.for_all2
                (fun tau c ->
                  String.equal (Ty_vocabulary.constant_type vocabulary c) tau)
                expected_types tuple)
            (Ty_query.certain_answer db q))
        typed_queries)

(* Soundness of the approximation survives the elaboration. *)
let typed_approx_sound =
  QCheck2.Test.make ~count:100 ~name:"typed approximation sound"
    ~print:print_typed_db gen_typed_db
    (fun db ->
      List.for_all
        (fun q ->
          Relation.subset (Ty_query.approx_answer db q)
            (Ty_query.certain_answer db q))
        typed_queries)

(* Typed full specification coincides with the elaboration's notion. *)
let typed_fully_specified_coherent =
  QCheck2.Test.make ~count:100 ~name:"typed full specification coherent"
    ~print:print_typed_db gen_typed_db
    (fun db ->
      Ty_database.is_fully_specified db
      = Cw_database.is_fully_specified (Ty_database.to_cw db)
      && Cw_database.is_fully_specified
           (Ty_database.to_cw (Ty_database.fully_specify db)))

let suite =
  [
    Alcotest.test_case "vocabulary validation" `Quick test_vocabulary_validation;
    Alcotest.test_case "database validation" `Quick test_database_validation;
    Alcotest.test_case "typechecking" `Quick test_typecheck;
    Alcotest.test_case "elaborated database" `Quick test_elaborated_database;
    Alcotest.test_case "typed queries" `Quick test_typed_queries;
    Alcotest.test_case "typed parser" `Quick test_typed_parser;
    Alcotest.test_case "typed parser round-trip" `Quick
      test_typed_parser_roundtrip;
    Alcotest.test_case "typed evaluation via parser" `Quick
      test_typed_evaluation_via_parser;
    Alcotest.test_case "tldb parse" `Quick test_tldb_parse;
    Alcotest.test_case "tldb round-trip" `Quick test_tldb_roundtrip;
    Alcotest.test_case "tldb errors" `Quick test_tldb_errors;
    Support.qcheck_case typed_answers_well_typed;
    Support.qcheck_case typed_approx_sound;
    Support.qcheck_case typed_fully_specified_coherent;
  ]
