(* Edge cases and failure injection across the stack: enumeration caps,
   degenerate databases, zero-ary predicates, malformed inputs. *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- enumeration caps --- *)

let test_relation_full_cap () =
  let domain = List.init 64 string_of_int in
  expect_invalid (fun () -> Relation.full ~domain 4)

let test_relation_subsets_cap () =
  let r =
    Relation.of_tuples 1 (List.init 25 (fun i -> [ string_of_int i ]))
  in
  expect_invalid (fun () -> Relation.subsets r)

let test_mapping_enumeration_cap () =
  let db =
    database ~constants:(List.init 12 (Printf.sprintf "c%d")) ()
  in
  expect_invalid (fun () -> Mapping.all db)

let test_so_eval_cap () =
  (* A second-order quantifier over a big domain must refuse, not
     hang. *)
  let vocabulary =
    Vocabulary.make ~constants:(List.init 30 (Printf.sprintf "c%d")) ~predicates:[]
  in
  let elements = List.init 30 (Printf.sprintf "c%d") in
  let db =
    Database.make ~vocabulary ~domain:elements
      ~constants:(List.map (fun c -> (c, c)) elements)
      ~relations:[]
  in
  expect_invalid (fun () ->
      Eval.satisfies db (Parser.formula "exists2 Q/2. exists x. Q(x, x)"))

(* --- degenerate databases --- *)

let singleton_db () = database ~predicates:[ ("P", 1) ] ~constants:[ "only" ] ()

let test_singleton_constant () =
  let db = singleton_db () in
  (* One constant, no facts: the only world has P empty. *)
  check_bool "closed world negation" true
    (Certain.certain_boolean db (Parser.query "(). ~P(only)"));
  check_bool "domain closure" true
    (Certain.certain_boolean db (Parser.query "(). forall x. x = only"));
  check_int "one partition" 1 (Partition.count_valid db);
  (* A single constant is trivially a known value. *)
  check Alcotest.(list string) "no unknowns" [] (Cw_database.unknown_values db)

let test_zero_ary_predicates () =
  let db =
    database ~predicates:[ ("RAINING", 0); ("SUNNY", 0) ] ~constants:[ "w" ]
      ~facts:[ ("RAINING", []) ]
      ()
  in
  check_bool "stored proposition" true
    (Certain.certain_boolean db (Parser.query "(). RAINING()"));
  check_bool "closed-world proposition" true
    (Certain.certain_boolean db (Parser.query "(). ~SUNNY()"));
  (* The approximation agrees on 0-ary negation (its special case). *)
  check_bool "approx proposition" true
    (Approx.boolean db (Parser.query "(). ~SUNNY()"));
  check_bool "approx stored" true
    (Approx.boolean db (Parser.query "(). RAINING()"));
  check_bool "reiter agrees" true
    (Reiter.boolean db (Parser.query "(). ~SUNNY()"))

let test_no_facts_at_all () =
  let db = database ~predicates:[ ("R", 2) ] ~constants:[ "a"; "b" ] () in
  (* Completion makes R empty everywhere. *)
  check_bool "predicate empty" true
    (Certain.certain_boolean db (Parser.query "(). forall x, y. ~R(x, y)"));
  check_bool "approx too" true
    (Approx.boolean db (Parser.query "(). forall x, y. ~R(x, y)"))

(* Everything merged: a database with no uniqueness axioms admits the
   one-element world, where all constants coincide. *)
let test_total_collapse () =
  let db =
    database ~predicates:[ ("P", 1) ] ~constants:[ "a"; "b"; "c" ]
      ~facts:[ ("P", [ "a" ]) ]
      ()
  in
  (* In the all-merged world, P(b) holds; in the discrete world it
     fails: neither P(b) nor ~P(b) is certain. *)
  check_bool "P(b) open" false (Certain.certain_boolean db (Parser.query "(). P(b)"));
  check_bool "~P(b) open" false
    (Certain.certain_boolean db (Parser.query "(). ~P(b)"));
  check_bool "P(b) possible" true
    (Certain.possible_boolean db (Parser.query "(). P(b)"));
  (* But ∃x P(x) is certain — the fact survives every merge. *)
  check_bool "existential certain" true
    (Certain.certain_boolean db (Parser.query "(). exists x. P(x)"))

(* --- the alpha machinery's corners --- *)

let test_alpha_arity_errors () =
  expect_invalid (fun () -> Alpha.formula ~pred:"P" ~arity:0);
  let db = singleton_db () in
  expect_invalid (fun () -> Disagree.alpha_holds db "P" [ "only"; "only" ]);
  expect_invalid (fun () -> Disagree.alpha_holds db "NOPE" [ "only" ])

let test_disagree_length_mismatch () =
  let db = singleton_db () in
  expect_invalid (fun () -> Disagree.tuples db [ "only" ] [])

(* --- compile / translate failure modes --- *)

let test_compile_rejects_second_order () =
  let db = Ph.ph1 (singleton_db ()) in
  match Compile.query db (Parser.query "(). exists2 Q/1. Q(only)") with
  | exception Compile.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_translate_iff_heavy () =
  (* Deeply nested Iff: NNF must still leave a correct, negation-atomic
     body; check semantics against the exact engine on a fully
     specified db (completeness guaranteed). *)
  let db =
    database ~predicates:[ ("P", 1) ] ~constants:[ "a"; "b" ]
      ~facts:[ ("P", [ "a" ]) ]
      ()
    |> Cw_database.fully_specify
  in
  let q =
    Parser.query "(x). (P(x) <-> P(a)) <-> (P(b) <-> P(x))"
  in
  check Support.relation_testable "iff tower"
    (Certain.answer db q) (Approx.answer db q)

let test_precise_simulation_reserved_names () =
  let db = singleton_db () in
  expect_invalid (fun () ->
      Precise_simulation.query'
        (Cw_database.vocabulary db)
        (Query.make [ "sim_z1" ] (Formula.Eq (Term.var "sim_z1", Term.var "sim_z1"))))

(* --- parser obscure corners --- *)

let test_parser_corners () =
  (* Identifiers with primes and digits. *)
  let f = Parser.formula "P'(x1')" in
  check Support.formula_testable "primed names"
    (Formula.Atom ("P'", [ Term.const "x1'" ]))
    f;
  (* Numeric-prefixed identifier is a constant, not an int. *)
  let g = Parser.formula "M(3rd)" in
  check Support.formula_testable "3rd is a name"
    (Formula.Atom ("M", [ Term.const "3rd" ]))
    g;
  (* Deeply nested parens. *)
  let h = Parser.formula "((((true))))" in
  check Support.formula_testable "nested parens" Formula.True h

let test_format_edge_cases () =
  (* CRLF endings and stray whitespace. *)
  let db = Ldb_format.parse "constant a b\r\n  distinct a b\r\n" in
  check_bool "crlf" true (Cw_database.are_distinct db "a" "b");
  (* A comment-only file has no constants — rejected, not looping. *)
  (match Ldb_format.parse "# nothing\n" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty database must be rejected");
  (* Duplicate facts collapse. *)
  let db2 =
    Ldb_format.parse "predicate P/1\nfact P(a)\nfact P(a)\n"
  in
  check_int "dedup" 1 (List.length (Cw_database.facts db2))

(* --- query evaluation meta-invariants --- *)

(* member agrees with answer on every candidate tuple. *)
let member_matches_answer =
  QCheck2.Test.make ~count:80 ~name:"certain_member = answer membership"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      let full_answer = Certain.answer db query in
      List.for_all
        (fun c ->
          Certain.certain_member db query [ c ] = Relation.mem [ c ] full_answer)
        (Cw_database.constants db))

(* Approx.member agrees with Approx.answer. *)
let approx_member_matches_answer =
  QCheck2.Test.make ~count:80 ~name:"approx member = answer membership"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      let full_answer = Approx.answer db query in
      List.for_all
        (fun c ->
          Approx.member db query [ c ] = Relation.mem [ c ] full_answer)
        (Cw_database.constants db))

(* The identity partition's quotient is Ph1 itself. *)
let discrete_quotient_is_ph1 =
  QCheck2.Test.make ~count:80 ~name:"discrete quotient = Ph1"
    ~print:Support.print_db Support.gen_cw_database
    (fun db ->
      Database.equal (Partition.quotient (Partition.discrete db)) (Ph.ph1 db))

let suite =
  [
    Alcotest.test_case "Relation.full cap" `Quick test_relation_full_cap;
    Alcotest.test_case "Relation.subsets cap" `Quick test_relation_subsets_cap;
    Alcotest.test_case "Mapping.all cap" `Quick test_mapping_enumeration_cap;
    Alcotest.test_case "SO evaluation cap" `Quick test_so_eval_cap;
    Alcotest.test_case "singleton constant" `Quick test_singleton_constant;
    Alcotest.test_case "zero-ary predicates" `Quick test_zero_ary_predicates;
    Alcotest.test_case "no facts" `Quick test_no_facts_at_all;
    Alcotest.test_case "total collapse" `Quick test_total_collapse;
    Alcotest.test_case "alpha arity errors" `Quick test_alpha_arity_errors;
    Alcotest.test_case "disagree length mismatch" `Quick
      test_disagree_length_mismatch;
    Alcotest.test_case "compile rejects SO" `Quick
      test_compile_rejects_second_order;
    Alcotest.test_case "iff tower" `Quick test_translate_iff_heavy;
    Alcotest.test_case "reserved sim_ names" `Quick
      test_precise_simulation_reserved_names;
    Alcotest.test_case "parser corners" `Quick test_parser_corners;
    Alcotest.test_case "format edge cases" `Quick test_format_edge_cases;
    Support.qcheck_case member_matches_answer;
    Support.qcheck_case approx_member_matches_answer;
    Support.qcheck_case discrete_quotient_is_ph1;
  ]
