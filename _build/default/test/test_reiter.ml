(* Tests for the reconstructed Reiter proof-theoretic algorithm and the
   paper's Remark (after Theorem 13): on first-order queries it returns
   exactly the same answers as the Section 5 approximation. *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)

let socrates = Support.socrates_db ()
let q s = Parser.query s

let test_fixture_answers () =
  let cases =
    [
      ("(x). TEACHES(x, plato)", [ [ "socrates" ] ]);
      ("(x). ~TEACHES(x, plato)", [ [ "plato" ] ]);
      ("(x, y). TEACHES(x, y)", [ [ "socrates"; "plato" ] ]);
      ("(x). exists y. TEACHES(y, x)", [ [ "plato" ] ]);
      ("(x). x != socrates", [ [ "plato" ] ]);
    ]
  in
  List.iter
    (fun (text, expected) ->
      check Support.relation_testable text
        (Relation.of_tuples
           (Query.arity (q text))
           expected)
        (Reiter.answer socrates (q text)))
    cases

let test_boolean () =
  check_bool "fact" true (Reiter.boolean socrates (q "(). TEACHES(socrates, plato)"));
  check_bool "provable negation" true
    (Reiter.boolean socrates (q "(). ~TEACHES(plato, plato)"));
  check_bool "open negation" false
    (Reiter.boolean socrates (q "(). ~TEACHES(mystery, plato)"));
  (* Certain but not provable: every model's TEACHES tuples start with
     (the value of) socrates, yet the row x = mystery is neither
     provably outside TEACHES nor provably equal to socrates — so the
     proof-theoretic answer is false while the exact answer is true.
     Sound, not complete. *)
  let universal = q "(). forall x, y. TEACHES(x, y) -> x = socrates" in
  check_bool "incomplete on certain universal" false
    (Reiter.boolean socrates universal);
  check_bool "...which is nonetheless certain" true
    (Certain.certain_boolean socrates universal)

let test_second_order_rejected () =
  match
    Reiter.answer socrates
      (Query.boolean
         (Formula.Exists2 ("Q", 1, Formula.Atom ("Q", [ Term.const "plato" ]))))
  with
  | exception Reiter.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

(* The Remark: Reiter's answers = the approximation's answers, on
   random first-order database/query pairs. *)
let remark_reiter_equals_approx =
  QCheck2.Test.make ~count:200 ~name:"remark: Reiter = Section 5 approximation"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      Relation.equal (Reiter.answer db query) (Approx.answer db query))

let remark_reiter_equals_approx_binary =
  QCheck2.Test.make ~count:100
    ~name:"remark: Reiter = approximation (binary heads)"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:2)
    (fun (db, query) ->
      Relation.equal (Reiter.answer db query) (Approx.answer db query))

(* Soundness of the reconstruction, independently. *)
let reiter_sound =
  QCheck2.Test.make ~count:120 ~name:"Reiter sound w.r.t. certain answers"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      Relation.subset (Reiter.answer db query) (Certain.answer db query))

(* Completeness on the two complete fragments transfers. *)
let reiter_complete_fragments =
  QCheck2.Test.make ~count:100 ~name:"Reiter complete on Thm 12/13 fragments"
    ~print:Support.print_db_query
    (Support.gen_db_and_query ~arity:1)
    (fun (db, query) ->
      let full = Cw_database.fully_specify db in
      Relation.equal (Reiter.answer full query) (Certain.answer full query)
      && (not (Query.is_positive query)
         || Relation.equal (Reiter.answer db query) (Certain.answer db query)))

let suite =
  [
    Alcotest.test_case "fixture answers" `Quick test_fixture_answers;
    Alcotest.test_case "boolean queries" `Quick test_boolean;
    Alcotest.test_case "second order rejected" `Quick test_second_order_rejected;
    Support.qcheck_case remark_reiter_equals_approx;
    Support.qcheck_case remark_reiter_equals_approx_binary;
    Support.qcheck_case reiter_sound;
    Support.qcheck_case reiter_complete_fragments;
  ]
