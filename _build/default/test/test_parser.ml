(* Parser and pretty-printer tests, including the round-trip property. *)

open Logicaldb

let check = Alcotest.check

let parses expected input =
  let head = Query.head expected in
  let got = Parser.formula ~free_vars:head input in
  check Support.formula_testable input (Query.body expected) got

let test_atoms () =
  let q = Query.make [ "x" ] (Formula.Atom ("P", [ Term.var "x" ])) in
  parses q "P(x)";
  let q2 =
    Query.make [ "x" ]
      (Formula.Atom ("R", [ Term.var "x"; Term.const "alice" ]))
  in
  parses q2 "R(x, alice)";
  let q3 = Query.make [] (Formula.Atom ("Z", [])) in
  parses q3 "Z()"

let test_equalities () =
  let q =
    Query.make [ "x" ] (Formula.Eq (Term.var "x", Term.const "a"))
  in
  parses q "x = a";
  let q2 =
    Query.make [ "x" ]
      (Formula.Not (Formula.Eq (Term.var "x", Term.const "a")))
  in
  parses q2 "x != a"

let test_numeric_constants () =
  let q = Query.make [] (Formula.Eq (Term.const "1", Term.const "2")) in
  parses q "1 = 2";
  let q2 = Query.make [] (Formula.Atom ("M", [ Term.const "3" ])) in
  parses q2 "M(3)"

let test_connective_precedence () =
  let p = Formula.Atom ("A", []) in
  let q = Formula.Atom ("B", []) in
  let r = Formula.Atom ("C", []) in
  let got = Parser.formula "A() \\/ B() /\\ C()" in
  check Support.formula_testable "and binds tighter"
    (Formula.Or (p, Formula.And (q, r)))
    got;
  let got2 = Parser.formula "A() -> B() -> C()" in
  check Support.formula_testable "implies right assoc"
    (Formula.Implies (p, Formula.Implies (q, r)))
    got2;
  let got3 = Parser.formula "~A() /\\ B()" in
  check Support.formula_testable "not binds tightest"
    (Formula.And (Formula.Not p, q))
    got3

let test_quantifiers () =
  let got = Parser.formula "exists x, y. R(x, y)" in
  check Support.formula_testable "multi-binder"
    (Formula.Exists
       ("x", Formula.Exists ("y", Formula.Atom ("R", [ Term.var "x"; Term.var "y" ]))))
    got;
  (* Maximal scope: the conjunction is inside the quantifier. *)
  let got2 = Parser.formula "exists x. P(x) /\\ Q(x)" in
  check Support.formula_testable "maximal scope"
    (Formula.Exists
       ( "x",
         Formula.And
           (Formula.Atom ("P", [ Term.var "x" ]), Formula.Atom ("Q", [ Term.var "x" ])) ))
    got2;
  (* Parenthesized: the quantifier closes early, x is a constant
     outside. *)
  let got3 = Parser.formula "(exists x. P(x)) /\\ Q(x)" in
  check Support.formula_testable "parens close scope"
    (Formula.And
       ( Formula.Exists ("x", Formula.Atom ("P", [ Term.var "x" ])),
         Formula.Atom ("Q", [ Term.const "x" ]) ))
    got3

let test_second_order () =
  let got = Parser.formula "exists2 Q/1. forall x. Q(x)" in
  check Support.formula_testable "SO binder"
    (Formula.Exists2
       ("Q", 1, Formula.Forall ("x", Formula.Atom ("Q", [ Term.var "x" ]))))
    got

let test_query_heads () =
  let q = Parser.query "(x, y). R(x, y)" in
  check Alcotest.(list string) "head" [ "x"; "y" ] (Query.head q);
  let b = Parser.query "(). exists x. P(x)" in
  check Alcotest.bool "boolean" true (Query.is_boolean b)

let test_paper_query () =
  (* The paper's Section 2.1 example. *)
  let q =
    Parser.query
      "(x1, x2). exists y. EMP_DEPT(x1, y) /\\ DEPT_MGR(y, x2)"
  in
  check Alcotest.int "arity" 2 (Query.arity q);
  check Alcotest.bool "first order" true (Query.is_first_order q);
  check Alcotest.bool "positive" true (Query.is_positive q)

let test_errors () =
  let expect_parse_error input =
    match Parser.formula input with
    | exception Parser.Parse_error _ -> ()
    | exception Lexer.Lex_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "%S should not parse" input)
  in
  expect_parse_error "P(x";
  expect_parse_error "P(x))";
  expect_parse_error "exists . P(x)";
  expect_parse_error "P(x) /\\";
  expect_parse_error "@";
  expect_parse_error "exists2 Q. Q(x)"

let test_comments_whitespace () =
  let got = Parser.formula "  P(a)   # trailing comment" in
  check Support.formula_testable "comment ignored"
    (Formula.Atom ("P", [ Term.const "a" ]))
    got

(* Round-trip: parse (print f) = f on random formulas. Free variables
   of the printed formula must be re-declared to the parser. *)
let roundtrip =
  QCheck2.Test.make ~count:500 ~name:"pretty/parse round-trip"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (_, sentence) ->
      let printed = Pretty.formula_to_string sentence in
      let reparsed = Parser.formula printed in
      Formula.equal sentence reparsed)

let roundtrip_query =
  QCheck2.Test.make ~count:300 ~name:"query round-trip"
    ~print:(fun (db, q) -> Support.print_db_query (db, q))
    (Support.gen_db_and_query ~arity:2)
    (fun (_, q) ->
      let printed = Pretty.query_to_string q in
      Query.equal q (Parser.query printed))

let suite =
  [
    Alcotest.test_case "atoms" `Quick test_atoms;
    Alcotest.test_case "equalities" `Quick test_equalities;
    Alcotest.test_case "numeric constants" `Quick test_numeric_constants;
    Alcotest.test_case "precedence" `Quick test_connective_precedence;
    Alcotest.test_case "quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "second order" `Quick test_second_order;
    Alcotest.test_case "query heads" `Quick test_query_heads;
    Alcotest.test_case "paper query" `Quick test_paper_query;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "comments" `Quick test_comments_whitespace;
    Support.qcheck_case roundtrip;
    Support.qcheck_case roundtrip_query;
  ]
