test/test_cwdb.ml: Alcotest Axioms Cw_database Database Hashtbl List Logicaldb Mapping Ne_virtual Option Parser Partition Ph QCheck2 Query_check Relation Seq Support Vocabulary
