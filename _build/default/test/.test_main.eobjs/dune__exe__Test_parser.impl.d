test/test_parser.ml: Alcotest Formula Lexer Logicaldb Parser Pretty Printf QCheck2 Query Support Term
