test/test_logic.ml: Alcotest Eval Formula List Logicaldb Nnf Option Ph Prenex QCheck2 Simplify String Support Term Vocabulary
