test/test_certain.ml: Alcotest Certain Cw_database Eval Formula List Logicaldb Mapping Parser Ph Pretty QCheck2 Query Relation Seq Support
