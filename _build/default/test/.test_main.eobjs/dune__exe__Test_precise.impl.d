test/test_precise.ml: Alcotest Certain Cw_database Formula List Logicaldb Parser Precise_simulation Printf Query Support
