test/test_reductions.ml: Alcotest Certain Cw_database Eval Formula Graph List Logicaldb Mapping Printf QCheck2 Qbf Qbf_fo Qbf_so Query Seq String Support Three_col
