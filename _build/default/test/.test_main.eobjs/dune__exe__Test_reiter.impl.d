test/test_reiter.ml: Alcotest Approx Certain Cw_database Formula List Logicaldb Parser QCheck2 Query Reiter Relation Support Term
