test/test_relational.ml: Alcotest Algebra Compile Database Eval Formula List Logicaldb Parser Ph QCheck2 Query Relation String Support Term Vocabulary
