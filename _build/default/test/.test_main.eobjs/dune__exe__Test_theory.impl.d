test/test_theory.ml: Alcotest Certain Cw_database List Logicaldb Parser QCheck2 Query Support Theory Vocabulary
