test/test_typed.ml: Alcotest Cw_database Fmt List Logicaldb Printf QCheck2 Relation String Support Term Tldb_format Ty_database Ty_formula Ty_parser Ty_query Ty_vocabulary
