test/test_explain_sampling.ml: Alcotest Certain Cw_database Eval Explain Fun List Logicaldb Parser Partition QCheck2 Query Random Sampling String Support
