test/test_semantics.ml: Alcotest Approx Axioms Certain Cw_database Database Eval List Logicaldb Parser Ph Pretty Printf Query Relation Seq Support Vocabulary
