test/test_optimizer.ml: Alcotest Algebra Approx Compile Database Fmt List Logicaldb Optimizer Ph QCheck2 Relation Support Vocabulary
