test/support.ml: Alcotest Cw_database Fmt Formula List Logicaldb Pretty Printf QCheck2 QCheck_alcotest Query Relation Term
