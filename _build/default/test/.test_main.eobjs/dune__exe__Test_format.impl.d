test/test_format.ml: Alcotest Cw_database Filename Ldb_format List Logicaldb Printf QCheck2 Support Sys
